module mirabel

go 1.21
