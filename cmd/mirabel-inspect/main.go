// mirabel-inspect is the User Interface component's command-line
// surrogate (paper §3: "physical users can interact with LEDMS, set
// parameters, and analyze the data"): it opens a node's durable store
// read-only and prints the multidimensional schema's contents —
// table cardinalities, the flex-offer lifecycle breakdown, per-actor
// energy totals and recent schedules. Inspection never mutates the
// store: a mistyped path is an error, not a fabricated empty store.
//
//	mirabel-inspect -data /tmp/brp1
//	mirabel-inspect -data /tmp/brp1 -offers -measurements
//
// The one write it can perform is explicit: -prune-before runs the
// store's retention sweep (WAL-logged) and reports what fell.
//
//	mirabel-inspect -data /tmp/brp1 -prune-before 480
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mirabel-inspect: ")
	dataDir := flag.String("data", "", "store directory")
	showOffers := flag.Bool("offers", false, "list flex-offer records")
	showMeasurements := flag.Bool("measurements", false, "summarize measurements per actor")
	pruneBefore := flag.Int64("prune-before", -1, "prune measurements with slot < this value (opens the store writable)")
	flag.Parse()
	if *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Validate the path read-only first: even the prune path must not
	// fabricate an empty store out of a typo.
	st, err := store.OpenReadOnly(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	if *pruneBefore >= 0 {
		if err := st.Close(); err != nil {
			log.Fatal(err)
		}
		st, err = store.Open(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
	}
	defer st.Close()

	if *pruneBefore >= 0 {
		n, err := st.PruneMeasurements(flexoffer.Time(*pruneBefore))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pruned %d measurements before slot %d\n", n, *pruneBefore)
	}

	stats := st.Stats()
	fmt.Printf("store %s\n", *dataDir)
	fmt.Printf("  dimensions: %d actors, %d energy types, %d market areas\n",
		stats.Actors, stats.EnergyTypes, stats.MarketAreas)
	fmt.Printf("  facts:      %d measurements, %d offers, %d forecasts, %d prices, %d contracts, %d model params\n",
		stats.Measurements, stats.Offers, stats.Forecasts, stats.Prices, stats.Contracts, stats.ModelParamsEntries)

	if counts := st.CountOffersByState(); len(counts) > 0 {
		fmt.Println("  flex-offer lifecycle:")
		for _, state := range []store.OfferState{
			store.OfferReceived, store.OfferAccepted, store.OfferScheduled,
			store.OfferExecuted, store.OfferExpired, store.OfferRejected,
		} {
			if n := counts[state]; n > 0 {
				fmt.Printf("    %-10s %d\n", state, n)
			}
		}
	}

	if *showOffers {
		fmt.Println("  offers:")
		for _, rec := range st.Offers(store.OfferFilter{}) {
			f := rec.Offer
			fmt.Printf("    #%-6d %-10s owner=%-16s window=[%d,%d] slices=%d energy=[%.1f,%.1f]kWh",
				f.ID, rec.State, rec.Owner, f.EarliestStart, f.LatestStart, f.NumSlices(),
				f.MinTotalEnergy(), f.MaxTotalEnergy())
			if rec.Schedule != nil {
				fmt.Printf(" scheduled@%d (%.1f kWh)", rec.Schedule.Start, rec.Schedule.TotalEnergy())
			}
			fmt.Println()
		}
	}

	if *showMeasurements {
		fmt.Println("  energy per actor:")
		perActor := map[string]float64{}
		var lo, hi flexoffer.Time
		first := true
		for _, m := range st.Measurements(store.MeasurementFilter{}) {
			perActor[m.Actor] += m.KWh
			if first || m.Slot < lo {
				lo = m.Slot
			}
			if first || m.Slot > hi {
				hi = m.Slot
			}
			first = false
		}
		for actor, kwh := range perActor {
			fmt.Printf("    %-20s %.2f kWh\n", actor, kwh)
		}
		if !first {
			fmt.Printf("    slot range [%d, %d]\n", lo, hi)
		}
	}
}
