// mirabel-sim runs a chaos-capable EDMS population simulation in one
// process: stateful prosumer households sharded across worker
// goroutines issue flex-offers and acked measurement batches to durable
// BRP nodes, which aggregate, schedule and deliver micro schedules back
// — while a seeded fault injector (internal/chaos) drops messages,
// injects latency and ambiguous errors, cuts partitions and
// crash-restarts whole nodes mid-run. The end-of-run report asserts the
// durability contract (zero acked-event loss, verified settlement
// chains) and prints throughput, latency percentiles and every
// degradation counter.
//
//	mirabel-sim -prosumers 10000 -brps 4 -cycles 12 \
//	    -faults 'drop=0.1,spike=0.05:20ms,crash=brp-0@3+2' -churn 0.01
//
// Runs are reproducible: the same -seed and -faults replay the same
// fault decisions, churn draws and search, so a failing chaos run is a
// repro case, not an anecdote.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mirabel-sim: ")
	cfg := simConfig{}
	flag.IntVar(&cfg.Prosumers, "prosumers", 2000, "prosumer households")
	flag.IntVar(&cfg.BRPs, "brps", 4, "BRP nodes")
	flag.IntVar(&cfg.Shards, "shards", 4, "worker goroutines driving the population")
	flag.IntVar(&cfg.Cycles, "cycles", 12, "scheduling cycles to run")
	flag.IntVar(&cfg.SlotsPerCycle, "slots", 4, "event-time slots per cycle")
	flag.IntVar(&cfg.StartSlot, "start-slot", 66, "event-time slot the run starts at (default 16:30, before the evening surge)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "run seed (workload, churn, faults, search)")
	flag.StringVar(&cfg.Faults, "faults", "", "fault schedule, e.g. 'drop=0.1,lat=1ms:2ms,part=brp-1@3-4,crash=brp-0@3+2'")
	flag.Float64Var(&cfg.Churn, "churn", 0, "per-household per-cycle probability of leaving mid-contract")
	flag.DurationVar(&cfg.Budget, "budget", 500*time.Millisecond, "per-cycle scheduling time budget")
	flag.IntVar(&cfg.Iters, "iters", 0, "scheduling iteration bound (0 = time budget only; set for deterministic planning)")
	flag.DurationVar(&cfg.Pace, "pace", 0, "wall-clock duration of one event-time slot (0 = free-running)")
	flag.StringVar(&cfg.Dir, "dir", "", "durable state root (default: a fresh temp dir, removed on exit)")
	flag.BoolVar(&cfg.Breaker, "breaker", false, "circuit breaking on BRP outbound traffic")
	flag.Int64Var(&cfg.CompactBytes, "ingest-compact", 1<<20, "ingest journal compaction threshold in bytes (0 = off)")
	flag.IntVar(&cfg.MeasureEvery, "measure-every", 8, "every Nth household reports an acked measurement batch per cycle")
	flag.Parse()
	cfg.Logf = log.Printf

	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "mirabel-sim-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}

	// Ctrl-C cancels the cycle loop; recovery, verification and the
	// report still run over the work completed so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := runSim(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	printReport(os.Stdout, res)
	if len(res.LostOffers) > 0 || len(res.LostMeasurements) > 0 {
		log.Fatalf("FAIL: %d acked offers and %d acked measurements lost",
			len(res.LostOffers), len(res.LostMeasurements))
	}
	for name, v := range res.Ledgers {
		if !v.OK {
			log.Fatalf("FAIL: %s settlement chain broken: %s", name, v.Reason)
		}
	}
}

func printReport(w io.Writer, r *simResult) {
	fmt.Fprintf(w, "run: %d cycles in %v\n", r.Cycles, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "offers: %d submitted, %d acked (%d accepted), %d failed, %d re-offered — %.0f acked offers/s\n",
		r.OffersSubmitted, r.OffersAcked, r.OffersAccepted, r.OffersFailed, r.Reoffered, r.OffersPerSec())
	fmt.Fprintf(w, "schedules: %d planned, %d delivered — %.0f schedules/s; %d expired, %d reconciled\n",
		r.MicroSchedules, r.SchedulesDelivered, r.SchedulesPerSec(), r.Expired, r.Reconciled)
	fmt.Fprintf(w, "measurements: %d facts acked, %d batches failed\n", r.MeasAcked, r.MeasFailed)
	fmt.Fprintf(w, "cycle latency: p50=%v p95=%v p99=%v over %d node-cycles (%d errors)\n",
		r.LatencyPercentile(0.50).Round(time.Microsecond),
		r.LatencyPercentile(0.95).Round(time.Microsecond),
		r.LatencyPercentile(0.99).Round(time.Microsecond),
		len(r.CycleLatencies), r.CycleErrors)
	fmt.Fprintf(w, "churn: %d households left mid-contract (%d deferred past a dead BRP), %d offers cancelled, %.2f EUR penalties\n",
		r.ChurnLeft, r.ChurnDeferred, r.CancelledOffers, r.CancelPenaltyEUR)

	fmt.Fprintf(w, "chaos: %d kills, %d restarts, %d partitions cut, %d healed; %d pending offers recovered across restarts\n",
		r.Controller.Kills, r.Controller.Restarts, r.Controller.PartsCut, r.Controller.Healed, r.RecoveredPending)
	for _, name := range sortedKeys(r.Injectors) {
		st := r.Injectors[name]
		if st.Ops == 0 {
			continue
		}
		fmt.Fprintf(w, "  injector %-8s ops=%-6d drops=%-5d errs=%-5d spikes=%-5d partitioned=%d\n",
			name, st.Ops, st.Drops, st.Errors, st.Spikes, st.Partitioned)
	}
	for _, name := range sortedKeys(r.Retry) {
		rs := r.Retry[name]
		if rs.Calls == 0 {
			continue
		}
		fmt.Fprintf(w, "  retry    %-8s calls=%-6d retries=%-4d exhausted=%-4d nonretryable=%-4d backoff=%v\n",
			name, rs.Calls, rs.Retries, rs.Exhausted, rs.NonRetryable, rs.Backoff.Round(time.Millisecond))
	}
	for _, name := range sortedKeys(r.Ingest) {
		is := r.Ingest[name]
		fmt.Fprintf(w, "  ingest   %-8s enqueued=%-6d consumed=%-6d shed=%-4d compactions=%d (%d bytes reclaimed)\n",
			name, is.Enqueued, is.Consumed, is.Shed, is.Compactions, is.CompactedBytes)
	}
	skipped := r.SkippedOwners
	if skipped > 0 || r.NotifyFailures > 0 {
		fmt.Fprintf(w, "  delivery: %d notify failures, %d owners skipped behind open circuits\n", r.NotifyFailures, skipped)
	}

	for _, name := range sortedKeys(r.Ledgers) {
		v := r.Ledgers[name]
		status := "OK"
		if !v.OK {
			status = "BROKEN: " + v.Reason
		}
		fmt.Fprintf(w, "ledger %s: %d entries, chain %s\n", name, v.Entries, status)
	}
	if len(r.LostOffers) == 0 && len(r.LostMeasurements) == 0 {
		fmt.Fprintf(w, "durability: zero acked-event loss (%d offers, %d measurement facts verified)\n",
			r.OffersAcked, r.MeasAcked)
	} else {
		for _, l := range r.LostOffers {
			fmt.Fprintf(w, "LOST: %s\n", l)
		}
		for _, l := range r.LostMeasurements {
			fmt.Fprintf(w, "LOST: %s\n", l)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
