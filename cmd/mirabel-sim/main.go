// mirabel-sim runs an end-to-end three-level EDMS simulation in one
// process: prosumer nodes issue flex-offers and measurements to their
// BRP nodes, the BRPs negotiate, aggregate and schedule against their
// forecast balance, forward their macro flex-offers to the TSO for a
// second aggregation/scheduling round, and every micro schedule flows
// back down to its prosumer — the use scenario of paper §2 at population
// scale.
//
//	mirabel-sim -prosumers 2000 -brps 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/core"
	"mirabel/internal/devices"
	"mirabel/internal/flexoffer"
	"mirabel/internal/market"
	"mirabel/internal/sched"
	"mirabel/internal/store"
	"mirabel/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mirabel-sim: ")
	nProsumers := flag.Int("prosumers", 2000, "prosumer nodes")
	nBRPs := flag.Int("brps", 4, "BRP nodes")
	seed := flag.Int64("seed", 1, "workload seed")
	budget := flag.Duration("budget", 2*time.Second, "per-BRP scheduling budget")
	useDevices := flag.Bool("devices", false, "drive offers from appliance state machines instead of the dataset generator")
	flag.Parse()

	// Ctrl-C cancels the run context: whatever phase is in flight winds
	// down at its next cancellation point and the end-of-run report is
	// still printed over the partial results.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	bus := comm.NewBus()
	prices := workload.PriceSeries(workload.PriceConfig{Days: 2, Seed: *seed})
	dayAhead, err := market.NewDayAhead(market.Config{Prices: prices, CapacityKWh: 5000})
	if err != nil {
		log.Fatal(err)
	}

	// Level 3: the TSO.
	tso, err := core.NewNode(core.Config{
		Name: "tso", Role: store.RoleTSO, Transport: bus,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{TimeBudget: *budget, Seed: *seed},
		Market:    dayAhead,
	})
	if err != nil {
		log.Fatal(err)
	}
	bus.Register("tso", tso.Handler())

	// Level 2: the BRPs.
	brps := make([]*core.Node, *nBRPs)
	for i := range brps {
		name := fmt.Sprintf("brp-%d", i)
		brps[i], err = core.NewNode(core.Config{
			Name: name, Role: store.RoleBRP, Parent: "tso", Transport: bus,
			AggParams: agg.ParamsP3,
			SchedOpts: sched.Options{TimeBudget: *budget, Seed: *seed + int64(i)},
			Market:    dayAhead,
		})
		if err != nil {
			log.Fatal(err)
		}
		bus.Register(name, brps[i].Handler())
	}

	// Level 1: prosumers issue flex-offers for today — either from the
	// dataset generator or from simulated appliances.
	var offers []*flexoffer.FlexOffer
	if *useDevices {
		fleet := devices.NewFleet(*nProsumers, *seed)
		sim := fleet.Simulate(0, flexoffer.SlotsPerDay)
		offers = sim.Offers
		fmt.Printf("level 1: appliance simulation produced %d flex-offers\n", len(offers))
	} else {
		offers = workload.GenerateFlexOffers(workload.FlexOfferConfig{
			Count: *nProsumers, HorizonDays: 1, Seed: *seed,
		})
	}
	t0 := time.Now()
	accepted := 0
	nodes := make(map[string]*core.Node)
	for i, f := range offers {
		if ctx.Err() != nil {
			log.Printf("interrupted after %d of %d offers", i, len(offers))
			break
		}
		name := fmt.Sprintf("prosumer-%05d", i)
		if *useDevices && f.Prosumer != "" {
			name = f.Prosumer // appliance offers carry their household
		}
		p := nodes[name]
		if p == nil {
			parent := fmt.Sprintf("brp-%d", len(nodes)%*nBRPs)
			var err error
			p, err = core.NewNode(core.Config{Name: name, Role: store.RoleProsumer, Parent: parent, Transport: bus})
			if err != nil {
				log.Fatal(err)
			}
			bus.Register(name, p.Handler())
			nodes[name] = p
		}
		if f.LatestEnd() > flexoffer.SlotsPerDay {
			f.LatestStart = flexoffer.SlotsPerDay - flexoffer.Time(f.NumSlices())
			if f.LatestStart < f.EarliestStart {
				continue
			}
		}
		d, err := p.SubmitOfferTo(ctx, f)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				continue // the loop header reports the interruption
			}
			log.Fatal(err)
		}
		if d.Accept {
			accepted++
		}
		// Report a few metered slots so the BRP stores see traffic.
		if i%50 == 0 {
			if err := p.ReportMeasurement(ctx, "demand", flexoffer.Time(i%96), 0.5); err != nil && !errors.Is(err, context.Canceled) {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("level 1: %d prosumers created, %d flex-offers accepted in %v\n",
		*nProsumers, accepted, time.Since(t0).Round(time.Millisecond))

	// Level 2 cycles: each BRP schedules its balance group against a
	// baseline with a renewable night/noon surplus.
	baseline := make([]float64, flexoffer.SlotsPerDay)
	for t := range baseline {
		hour := t / flexoffer.SlotsPerHour
		switch {
		case hour < 6:
			baseline[t] = -60
		case hour >= 11 && hour < 15:
			baseline[t] = -40
		default:
			baseline[t] = 15
		}
	}
	// All BRPs except the last schedule locally; the last delegates its
	// macro flex-offers to the TSO (paper §2: "the process is
	// essentially repeated at a higher level").
	var totalCost, totalDefault float64
	for _, brp := range brps[:len(brps)-1] {
		if ctx.Err() != nil {
			break
		}
		rep, err := brp.RunSchedulingCycle(ctx, 0, core.StaticForecast(baseline), nil, nil)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				break
			}
			log.Fatal(err)
		}
		totalCost += rep.ScheduleCost
		totalDefault += rep.BaselineCost
		fmt.Printf("level 2: %s scheduled %d offers via %d aggregates: %.0f EUR (default %.0f), agg %v sched %v\n",
			brp.Name(), rep.MicroSchedules, rep.Aggregates, rep.ScheduleCost, rep.BaselineCost,
			rep.AggregationTime.Round(time.Millisecond), rep.SchedulingTime.Round(time.Millisecond))
	}
	if totalDefault != 0 {
		fmt.Printf("level 2 total: %.0f EUR scheduled vs %.0f EUR default (%.1f%% saved)\n",
			totalCost, totalDefault, 100*(1-totalCost/totalDefault))
	}

	// Level 3: the delegating BRP forwards its aggregates; the TSO
	// aggregates across them, schedules, and its schedules flow back
	// down through the BRP to the prosumers.
	if ctx.Err() == nil {
		delegating := brps[len(brps)-1]
		forwarded, err := delegating.ForwardAggregates(ctx)
		if err != nil && !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		if err == nil {
			rep, err := tso.RunSchedulingCycle(ctx, 0, core.StaticForecast(baseline), nil, nil)
			if err != nil && !errors.Is(err, context.Canceled) {
				log.Fatal(err)
			}
			if err == nil {
				fmt.Printf("level 3: %s forwarded %d macro offers; tso scheduled %d aggregates: %.0f EUR (default %.0f)\n",
					delegating.Name(), forwarded, rep.Aggregates, rep.ScheduleCost, rep.BaselineCost)
			}
		}
	}

	// Give async deliveries a moment, then summarize the stores — also
	// after an interrupt, so a cancelled run still reports what it did.
	if ctx.Err() != nil {
		log.Printf("interrupted: end-of-run report covers the work completed so far")
	}
	time.Sleep(100 * time.Millisecond)
	for _, brp := range brps[:1] {
		st := brp.Store().Stats()
		fmt.Printf("store %s: %d offers, %d measurements, %d actors\n",
			brp.Name(), st.Offers, st.Measurements, st.Actors)
	}

	// The handler-chain metrics of the busiest nodes: message mix,
	// error counts and worst-case latency per type.
	for _, n := range append([]*core.Node{tso}, brps[0]) {
		m := n.Metrics()
		fmt.Printf("fabric %s: %d messages handled, %d errors\n", n.Name(), m.Handled(), m.Errors())
		for msgType, tm := range m.Snapshot() {
			fmt.Printf("  %-20s n=%-7d errs=%-4d max_latency=%v\n",
				msgType, tm.Handled, tm.Errors, tm.MaxLatency.Round(time.Microsecond))
		}
	}
}
