package main

import (
	"context"
	"reflect"
	"testing"
	"time"

	"mirabel/internal/chaos"
)

// acceptanceConfig is the chaos acceptance scenario: 10% message drops,
// latency spikes, ambiguous errors, 2% per-cycle churn, a mid-run
// partition and one node crash/restart — with mid-run ingest journal
// compaction enabled so rotation happens under fire too.
func acceptanceConfig(t *testing.T, seed int64) simConfig {
	t.Helper()
	return simConfig{
		Prosumers: 200, BRPs: 2, Shards: 2,
		Cycles: 8, SlotsPerCycle: 4, StartSlot: 66,
		Seed:   seed,
		Faults: "drop=0.1,err=0.02,spike=0.05:2ms,part=brp-1@5-5,crash=brp-0@2+2",
		Churn:  0.02,
		Budget: 2 * time.Second, Iters: 100,
		CompactBytes: 4096,
		Dir:          t.TempDir(),
	}
}

// TestChaosAcceptance is the run the tentpole promises: a seeded
// population under drops, spikes, churn, a partition and a full node
// crash/restart must lose not one acked event, and every settlement
// chain must verify end to end.
func TestChaosAcceptance(t *testing.T) {
	res, err := runSim(context.Background(), acceptanceConfig(t, 7))
	if err != nil {
		t.Fatal(err)
	}

	for _, lost := range res.LostOffers {
		t.Errorf("offer loss: %s", lost)
	}
	for _, lost := range res.LostMeasurements {
		t.Errorf("measurement loss: %s", lost)
	}
	for name, v := range res.Ledgers {
		if !v.OK {
			t.Errorf("ledger %s: chain broken at seq %d: %s", name, v.FirstBadSeq, v.Reason)
		}
	}

	if res.Controller.Kills != 1 || res.Controller.Restarts != 1 {
		t.Errorf("controller = %+v, want 1 kill and 1 restart", res.Controller)
	}
	if res.Controller.PartsCut != 1 || res.Controller.Healed != 1 {
		t.Errorf("controller = %+v, want 1 partition cut and healed", res.Controller)
	}
	if res.OffersAcked == 0 || res.MeasAcked == 0 {
		t.Fatalf("no traffic survived: %d offers, %d measurements acked", res.OffersAcked, res.MeasAcked)
	}
	if res.OffersFailed == 0 {
		t.Error("no submission ever failed under 10% drops — injector not in the path?")
	}
	if res.RecoveredPending == 0 {
		t.Error("restart recovered no pending offers — the crash never hit a hot journal")
	}
	if res.ChurnLeft == 0 || res.CancelledOffers == 0 {
		t.Errorf("churn never bit: %d left, %d offers cancelled", res.ChurnLeft, res.CancelledOffers)
	}
	var drops uint64
	for _, st := range res.Injectors {
		drops += st.Drops
	}
	if drops == 0 {
		t.Error("injectors dropped nothing at drop=0.1")
	}
	if res.Cycles != 8 {
		t.Errorf("cycles = %d, want 8", res.Cycles)
	}
}

// fingerprint is everything about a run that must be bit-identical
// across same-seed executions: fault decisions, degradation counters,
// churn, traffic outcomes and planning results. Wall-clock artifacts
// (latencies, backoff time, async delivery counts) are excluded.
type fingerprint struct {
	Injectors                                     map[string]chaos.Stats
	Controller                                    chaos.ControllerStats
	Submitted, Acked, Accepted, Failed, Reoffered uint64
	MeasAcked, MeasFailed                         uint64
	ChurnLeft, ChurnDeferred                      uint64
	CancelledOffers, Expired, MicroSchedules      int
	RecoveredPending                              int
	RetryCounts                                   map[string]uint64
}

func fingerprintOf(r *simResult) fingerprint {
	retries := make(map[string]uint64)
	for name, rs := range r.Retry {
		retries[name] = rs.Retries
	}
	return fingerprint{
		Injectors:  r.Injectors,
		Controller: r.Controller,
		Submitted:  r.OffersSubmitted, Acked: r.OffersAcked, Accepted: r.OffersAccepted,
		Failed: r.OffersFailed, Reoffered: r.Reoffered,
		MeasAcked: r.MeasAcked, MeasFailed: r.MeasFailed,
		ChurnLeft: r.ChurnLeft, ChurnDeferred: r.ChurnDeferred,
		CancelledOffers: r.CancelledOffers, Expired: r.Expired, MicroSchedules: r.MicroSchedules,
		RecoveredPending: r.RecoveredPending,
		RetryCounts:      retries,
	}
}

// TestSameSeedDeterminism: two runs with the same seed must produce
// identical fault schedules, degradation counters and outcomes — a
// failing chaos run reproduces from its seed — and a different seed
// must not.
func TestSameSeedDeterminism(t *testing.T) {
	a, err := runSim(context.Background(), acceptanceConfig(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSim(context.Background(), acceptanceConfig(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := fingerprintOf(a), fingerprintOf(b)
	if !reflect.DeepEqual(fa, fb) {
		t.Errorf("same seed diverged:\n  run A: %+v\n  run B: %+v", fa, fb)
	}
	c, err := runSim(context.Background(), acceptanceConfig(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(fa.Injectors, fingerprintOf(c).Injectors) {
		t.Error("different seeds drew identical fault streams")
	}
}

// TestScheduleTailRecovery: a crash whose restart lands past the last
// cycle must still be replayed by recovery, and the run must end with
// every node back up and nothing lost.
func TestScheduleTailRecovery(t *testing.T) {
	cfg := simConfig{
		Prosumers: 60, BRPs: 2, Shards: 2,
		Cycles: 4, SlotsPerCycle: 4, StartSlot: 66,
		Seed:   3,
		Faults: "crash=brp-0@3+3", // restart due at cycle 6, two past the end
		Budget: 2 * time.Second, Iters: 50,
		Dir: t.TempDir(),
	}
	res, err := runSim(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Controller.Kills != 1 || res.Controller.Restarts != 1 {
		t.Fatalf("controller = %+v, want the tail restart applied", res.Controller)
	}
	if len(res.LostOffers) > 0 || len(res.LostMeasurements) > 0 {
		t.Errorf("tail recovery lost events: %v %v", res.LostOffers, res.LostMeasurements)
	}
	for name, v := range res.Ledgers {
		if !v.OK {
			t.Errorf("ledger %s broken: %s", name, v.Reason)
		}
	}
}

// TestBreakerComposes: the optional circuit breaker must not break the
// durability contract (it only changes failure shape, skipping dead
// peers fast instead of timing out through them).
func TestBreakerComposes(t *testing.T) {
	cfg := acceptanceConfig(t, 5)
	cfg.Breaker = true
	res, err := runSim(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LostOffers) > 0 || len(res.LostMeasurements) > 0 {
		t.Errorf("breaker run lost acked events: %v %v", res.LostOffers, res.LostMeasurements)
	}
	for name, v := range res.Ledgers {
		if !v.OK {
			t.Errorf("ledger %s broken: %s", name, v.Reason)
		}
	}
}

// TestParseFaultsRejected: a bad -faults string must fail the run
// before any node starts.
func TestParseFaultsRejected(t *testing.T) {
	cfg := simConfig{Faults: "drop=2", Dir: t.TempDir()}
	if _, err := runSim(context.Background(), cfg); err == nil {
		t.Fatal("invalid fault schedule accepted")
	}
}

// TestCancelledRunStillReports: cancelling the context mid-run must
// still produce a verified report over the completed work.
func TestCancelledRunStillReports(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := simConfig{
		Prosumers: 20, BRPs: 1, Shards: 1, Cycles: 2, SlotsPerCycle: 2,
		StartSlot: 66, Seed: 1, Budget: time.Second, Iters: 20, Dir: t.TempDir(),
	}
	res, err := runSim(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 {
		t.Errorf("cancelled run completed %d cycles", res.Cycles)
	}
	if len(res.LostOffers) > 0 {
		t.Errorf("cancelled run reports losses: %v", res.LostOffers)
	}
}
