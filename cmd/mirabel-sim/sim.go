package main

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/chaos"
	"mirabel/internal/comm"
	"mirabel/internal/core"
	"mirabel/internal/devices"
	"mirabel/internal/flexoffer"
	"mirabel/internal/ingest"
	"mirabel/internal/sched"
	"mirabel/internal/settle"
	"mirabel/internal/store"
)

// simConfig parameterizes one chaos-capable population run.
type simConfig struct {
	Prosumers     int
	BRPs          int
	Shards        int // worker goroutines driving the prosumer population
	Cycles        int
	SlotsPerCycle int
	StartSlot     int // event-time slot the first cycle begins at (households are most active 17:00-23:00)
	Seed          int64
	Faults        string  // chaos schedule (chaos.ParseSchedule syntax)
	Churn         float64 // per-household per-cycle probability of leaving mid-contract
	Budget        time.Duration
	Iters         int           // search iteration bound (with a generous Budget this keeps planning deterministic)
	Pace          time.Duration // wall-clock duration of one event-time slot (0 = free-running)
	Dir           string        // durable state root, one subdirectory per BRP
	Breaker       bool          // circuit breaking on BRP outbound (off for bit-identical determinism runs)
	CompactBytes  int64         // mid-run ingest journal compaction threshold (0 = off)
	MeasureEvery  int           // every Nth household sends an acked measurement batch per cycle
	Logf          func(format string, args ...any)
}

func (c *simConfig) fill() {
	if c.Prosumers <= 0 {
		c.Prosumers = 1000
	}
	if c.BRPs <= 0 {
		c.BRPs = 2
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Shards > c.Prosumers {
		c.Shards = c.Prosumers
	}
	if c.Cycles <= 0 {
		c.Cycles = 8
	}
	if c.SlotsPerCycle <= 0 {
		c.SlotsPerCycle = 4
	}
	if c.Budget <= 0 {
		c.Budget = 500 * time.Millisecond
	}
	if c.MeasureEvery <= 0 {
		c.MeasureEvery = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// simResult is the end-of-run report: throughput, latency, degradation
// counters and — the point of the exercise — the durability verdicts.
type simResult struct {
	Elapsed time.Duration
	Cycles  int

	OffersSubmitted uint64 // submission attempts (including re-offers)
	OffersAcked     uint64 // decisions received: the offer record is journaled on the BRP
	OffersAccepted  uint64
	OffersFailed    uint64 // submissions with no decision (dropped, partitioned, node down)
	Reoffered       uint64 // failed submissions re-issued under a fresh ID
	MeasAcked       uint64 // measurement facts acked by a BRP
	MeasFailed      uint64 // batches that never got their ack

	SchedulesDelivered uint64 // micro schedules that reached a shard endpoint
	MicroSchedules     int
	Expired            int
	Reconciled         int
	NotifyFailures     int
	SkippedOwners      int
	CycleErrors        int
	CycleLatencies     []time.Duration

	ChurnLeft        uint64 // households that left mid-contract
	ChurnDeferred    uint64 // departures queued because their BRP was down
	CancelledOffers  int
	CancelPenaltyEUR float64
	RecoveredPending int // accepted offers re-admitted to planning across restarts

	Injectors  map[string]chaos.Stats
	Controller chaos.ControllerStats
	Retry      map[string]comm.RetryStats
	Ingest     map[string]ingest.Stats
	Ledgers    map[string]settle.VerifyResult

	LostOffers       []string // acked offers missing from their BRP store after recovery
	LostMeasurements []string // acked measurement facts missing after recovery
}

// OffersPerSec is acked-offer throughput over the whole run.
func (r *simResult) OffersPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OffersAcked) / r.Elapsed.Seconds()
}

// SchedulesPerSec is delivered-schedule throughput over the whole run.
func (r *simResult) SchedulesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.SchedulesDelivered) / r.Elapsed.Seconds()
}

// LatencyPercentile returns the p-th percentile full-cycle latency.
func (r *simResult) LatencyPercentile(p float64) time.Duration {
	if len(r.CycleLatencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.CycleLatencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// simHousehold binds one stateful household to its balance group.
type simHousehold struct {
	h    *devices.Household
	brp  int
	left bool
}

// shard drives one slice of the population on its own goroutine. All
// submissions within a shard are sequential, so each (shard, BRP) fate
// lane in the chaos injector sees a deterministic op stream.
type shard struct {
	idx    int
	name   string
	inj    *chaos.Injector
	client *comm.Client

	members []int // global household indices

	reoffers   []*flexoffer.FlexOffer
	reofferTo  []int
	reofferSeq uint64

	schedules atomic.Uint64 // delivered micro schedules (handler side)

	// Counters below are owned by the shard's worker goroutine.
	submitted, acked, accepted, failed, reoffered uint64
	measAcked, measFailed                         uint64

	ackedOffers map[int][]flexoffer.ID              // BRP index -> acked offer IDs
	ackedMeas   map[int]map[string][]flexoffer.Time // BRP index -> actor -> acked slots
}

type sim struct {
	cfg      simConfig
	bus      *comm.Bus
	sched    *chaos.Schedule
	ctl      *chaos.Controller
	baseline []float64

	hh     []*simHousehold
	shards []*shard

	brps   []*core.Node
	brpInj []*chaos.Injector
	down   []bool

	churnRNG *rand.Rand
	deferred []int // household indices whose cancellation awaits their BRP's return

	// Residual stats of killed node incarnations, folded into the final
	// report alongside the live nodes' counters.
	residRetry  map[string]comm.RetryStats
	residIngest map[string]ingest.Stats

	res simResult
	mu  sync.Mutex // guards res fields written from BRP cycle goroutines
}

func brpName(i int) string { return fmt.Sprintf("brp-%d", i) }

// laneSeed derives a per-node injector seed (FNV-1a over the name mixed
// into the run seed) so every node draws an independent fate stream.
func laneSeed(seed int64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return uint64(seed) ^ h
}

// runSim executes one population run and returns its report. A cancelled
// context stops the cycle loop early; recovery, verification and the
// report still run over the work completed so far.
func runSim(ctx context.Context, cfg simConfig) (*simResult, error) {
	cfg.fill()
	faults, err := chaos.ParseSchedule(cfg.Faults)
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg:         cfg,
		bus:         comm.NewBus(),
		sched:       faults,
		churnRNG:    rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		residRetry:  make(map[string]comm.RetryStats),
		residIngest: make(map[string]ingest.Stats),
	}
	s.res.Injectors = make(map[string]chaos.Stats)
	s.res.Retry = make(map[string]comm.RetryStats)
	s.res.Ingest = make(map[string]ingest.Stats)
	s.res.Ledgers = make(map[string]settle.VerifyResult)

	// Baseline balance with a renewable night/noon surplus, long enough
	// to cover every cycle's horizon.
	s.baseline = make([]float64, cfg.StartSlot+cfg.Cycles*cfg.SlotsPerCycle+flexoffer.SlotsPerDay)
	for t := range s.baseline {
		hour := (t / flexoffer.SlotsPerHour) % 24
		switch {
		case hour < 6:
			s.baseline[t] = -60
		case hour >= 11 && hour < 15:
			s.baseline[t] = -40
		default:
			s.baseline[t] = 15
		}
	}

	// The population: stateful households sharded across workers, each
	// assigned to a balance group round-robin.
	fleet := devices.NewFleet(cfg.Prosumers, cfg.Seed)
	s.hh = make([]*simHousehold, len(fleet.Households))
	for i, h := range fleet.Households {
		s.hh[i] = &simHousehold{h: h, brp: i % cfg.BRPs}
	}

	// Shard endpoints: each worker is also the delivery target for its
	// households' micro schedules.
	var injectors []*chaos.Injector
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{
			idx:         i,
			name:        fmt.Sprintf("shard-%d", i),
			ackedOffers: make(map[int][]flexoffer.ID),
			ackedMeas:   make(map[int]map[string][]flexoffer.Time),
		}
		sh.inj = chaos.NewInjector(s.bus, laneSeed(cfg.Seed, sh.name), faults.Faults)
		rt := comm.NewRetry(sh.inj, comm.RetryConfig{
			Seed: cfg.Seed + int64(i), BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		})
		sh.client = comm.NewClient(sh.name, rt)
		s.registerShard(sh)
		injectors = append(injectors, sh.inj)
		s.shards[i] = sh
	}
	// Contiguous blocks per shard: with round-robin BRP assignment this
	// gives every shard members in every balance group, so a partition
	// or crash of one BRP degrades all shards a little rather than one
	// shard completely.
	for i := range s.hh {
		sh := s.shards[i*cfg.Shards/len(s.hh)]
		sh.members = append(sh.members, i)
	}

	// The balance groups: durable BRP nodes behind per-node injectors.
	s.brps = make([]*core.Node, cfg.BRPs)
	s.brpInj = make([]*chaos.Injector, cfg.BRPs)
	s.down = make([]bool, cfg.BRPs)
	for i := range s.brps {
		s.brpInj[i] = chaos.NewInjector(s.bus, laneSeed(cfg.Seed, brpName(i)), faults.Faults)
		injectors = append(injectors, s.brpInj[i])
		if err := s.startBRP(i); err != nil {
			return nil, err
		}
	}

	// The chaos controller drives partitions and crash/restart against
	// every injector and node.
	s.ctl = chaos.NewController(faults, injectors...)
	for i := range s.brps {
		i := i
		s.ctl.RegisterNode(brpName(i), chaos.NodeHooks{
			Kill:    func() error { s.kill(i); return nil },
			Restart: func() error { return s.restart(i) },
		})
	}
	if evs := s.ctl.Events(); len(evs) > 0 && evs[len(evs)-1] >= cfg.Cycles+cfg.Cycles {
		return nil, fmt.Errorf("sim: fault schedule has events at cycle %d, far beyond the %d-cycle run", evs[len(evs)-1], cfg.Cycles)
	}

	start := time.Now()
	if err := s.runCycles(ctx); err != nil {
		return nil, err
	}
	s.recoverAll()
	s.verify()
	s.collectStats()
	s.res.Elapsed = time.Since(start)
	s.shutdown()
	res := s.res
	return &res, nil
}

// registerShard (re-)attaches a shard's endpoint: schedule deliveries
// are counted, pings answered.
func (s *sim) registerShard(sh *shard) {
	mux := comm.NewMux()
	mux.Handle(comm.MsgScheduleNotify, func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		var body comm.ScheduleNotify
		if err := env.Decode(comm.MsgScheduleNotify, &body); err != nil {
			return nil, err
		}
		sh.schedules.Add(uint64(len(body.Schedules)))
		return nil, nil
	})
	mux.Handle(comm.MsgPing, func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		reply, err := comm.NewEnvelope(comm.MsgPong, sh.name, env.From, nil)
		if err != nil {
			return nil, err
		}
		return &reply, nil
	})
	s.bus.Register(sh.name, mux.Serve)
}

// startBRP opens (or reopens) one balance group over its durable
// directory: store, ingest journal and settlement ledger all live there,
// so a restart after Kill recovers everything the node ever acked.
func (s *sim) startBRP(i int) error {
	name := brpName(i)
	dir := filepath.Join(s.cfg.Dir, name)
	st, err := store.Open(dir)
	if err != nil {
		return fmt.Errorf("sim: open %s store: %w", name, err)
	}
	cfg := core.Config{
		Name: name, Role: store.RoleBRP, Transport: s.brpInj[i], Store: st,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{TimeBudget: s.cfg.Budget, MaxIterations: s.cfg.Iters, Seed: s.cfg.Seed + int64(i)},
		Ingest: &ingest.Config{
			Path:   filepath.Join(dir, "ingest.log"),
			Policy: ingest.PolicyBlock, CompactBytes: s.cfg.CompactBytes,
		},
		Settlement: &settle.LedgerConfig{Path: filepath.Join(dir, "ledger.log")},
		Retry: &comm.RetryConfig{
			Seed: s.cfg.Seed - int64(i) - 1, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		},
	}
	if s.cfg.Breaker {
		cfg.Breaker = &comm.BreakerConfig{}
	}
	node, err := core.NewNode(cfg)
	if err != nil {
		_ = st.Close()
		return fmt.Errorf("sim: start %s: %w", name, err)
	}
	s.res.RecoveredPending += node.RecoveredPending()
	s.brps[i] = node
	s.bus.Register(name, node.Handler())
	return nil
}

// kill crashes a BRP: off the bus, then an abrupt stop — in-memory
// backlog abandoned, journaled acks left on disk for replay.
func (s *sim) kill(i int) {
	name := brpName(i)
	s.foldNodeStats(i)
	s.bus.Unregister(name)
	s.brps[i].Kill()
	s.down[i] = true
	s.cfg.Logf("chaos: %s crashed", name)
}

func (s *sim) restart(i int) error {
	if err := s.startBRP(i); err != nil {
		return err
	}
	s.down[i] = false
	s.cfg.Logf("chaos: %s restarted (recovered %d pending offers so far)", brpName(i), s.res.RecoveredPending)
	return nil
}

// foldNodeStats accumulates a node incarnation's counters before it is
// killed, so the final report covers every life of every node.
func (s *sim) foldNodeStats(i int) {
	name := brpName(i)
	if rs, ok := s.brps[i].RetryStats(); ok {
		s.residRetry[name] = addRetryStats(s.residRetry[name], rs)
	}
	if is, ok := s.brps[i].IngestStats(); ok {
		s.residIngest[name] = addIngestStats(s.residIngest[name], is)
	}
}

func addRetryStats(a, b comm.RetryStats) comm.RetryStats {
	a.Calls += b.Calls
	a.Retries += b.Retries
	a.ShortCircuits += b.ShortCircuits
	a.Exhausted += b.Exhausted
	a.NonRetryable += b.NonRetryable
	a.Backoff += b.Backoff
	return a
}

func addIngestStats(a, b ingest.Stats) ingest.Stats {
	a.Enqueued += b.Enqueued
	a.Consumed += b.Consumed
	a.Shed += b.Shed
	a.Deferred += b.Deferred
	a.Recovered += b.Recovered
	a.Batches += b.Batches
	a.ApplyErrors += b.ApplyErrors
	a.Compactions += b.Compactions
	a.CompactedBytes += b.CompactedBytes
	return a
}

func (s *sim) runCycles(ctx context.Context) error {
	for c := 0; c < s.cfg.Cycles; c++ {
		if ctx.Err() != nil {
			s.cfg.Logf("interrupted after %d of %d cycles", c, s.cfg.Cycles)
			return nil
		}
		// Event phase: shard workers tick their households through this
		// cycle's slots, submitting offers and acked measurement batches.
		var wg sync.WaitGroup
		for _, sh := range s.shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				sh.runCycle(ctx, s, c)
			}(sh)
		}
		wg.Wait()

		// Fault point: the schedule's cycle-c events fire between intake
		// and planning — the most adversarial moment for a crash, when
		// every event acked this cycle still sits in the ingest journal
		// undrained and recovery has to replay it. Churn follows so a
		// departure lands on the post-fault topology.
		if err := s.ctl.BeginCycle(c); err != nil {
			return err
		}
		s.applyChurn(c)

		// Planning phase: every live balance group runs its scheduling
		// cycle; down nodes simply miss the round (their prosumers'
		// offers wait, journaled, for the restart). Planning time is the
		// START of the window just ticked: device offers carry assignment
		// deadlines only one slot past their issue slot (the household
		// wants an answer now), so a cycle planning at the window's end
		// would time every one of them out before its first look.
		now := flexoffer.Time(s.cfg.StartSlot + c*s.cfg.SlotsPerCycle)
		for i := range s.brps {
			if s.down[i] {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				rep, err := s.brps[i].RunSchedulingCycle(ctx,
					now, core.ShiftedForecast{Series: s.baseline, Start: int(now)}, nil, nil)
				lat := time.Since(t0)
				s.mu.Lock()
				defer s.mu.Unlock()
				if err != nil {
					s.res.CycleErrors++
					return
				}
				s.res.CycleLatencies = append(s.res.CycleLatencies, lat)
				s.res.MicroSchedules += rep.MicroSchedules
				s.res.Expired += rep.Expired
				s.res.Reconciled += rep.Reconciled
				s.res.NotifyFailures += rep.NotifyFailures
				s.res.SkippedOwners += len(rep.SkippedOwners)
			}(i)
		}
		wg.Wait()
		s.res.Cycles++
		s.cfg.Logf("cycle %d/%d done", c+1, s.cfg.Cycles)
	}
	return nil
}

// applyChurn processes deferred departures, then draws this cycle's
// leavers. A household whose BRP is down still leaves immediately — the
// BRP only learns (and settles the penalty) once it is back.
func (s *sim) applyChurn(c int) {
	s.drainDeferred(c)
	if s.cfg.Churn <= 0 {
		return
	}
	for gi, hh := range s.hh {
		if hh.left {
			continue
		}
		if s.churnRNG.Float64() >= s.cfg.Churn {
			continue
		}
		hh.left = true
		s.res.ChurnLeft++
		if s.down[hh.brp] {
			s.deferred = append(s.deferred, gi)
			s.res.ChurnDeferred++
			continue
		}
		s.cancel(gi, c)
	}
}

func (s *sim) drainDeferred(c int) {
	var still []int
	for _, gi := range s.deferred {
		if s.down[s.hh[gi].brp] {
			still = append(still, gi)
			continue
		}
		s.cancel(gi, c)
	}
	s.deferred = still
}

// cancel settles one mid-contract departure against its BRP's ledger.
func (s *sim) cancel(gi, c int) {
	hh := s.hh[gi]
	rep, err := s.brps[hh.brp].CancelProsumer(hh.h.Name, settle.CancelConfig{
		PenaltyEUR: 0.5, PenaltyPerKWh: 0.05,
		Memo: fmt.Sprintf("left mid-contract at cycle %d", c),
	})
	if err != nil {
		s.res.CycleErrors++
		return
	}
	s.res.CancelledOffers += len(rep.Cancelled)
	s.res.CancelPenaltyEUR += rep.PenaltyEUR
}

// runCycle is one shard's event phase: re-offers first, then every
// member household ticks through the cycle's slots.
func (sh *shard) runCycle(ctx context.Context, s *sim, c int) {
	spc := s.cfg.SlotsPerCycle
	base := flexoffer.Time(s.cfg.StartSlot + c*spc)
	next := base + flexoffer.Time(spc)

	pending, pendingTo := sh.reoffers, sh.reofferTo
	sh.reoffers, sh.reofferTo = nil, nil
	for i, off := range pending {
		sh.submit(ctx, s, off, pendingTo[i], next)
	}

	type sample struct {
		gi      int
		reports []comm.MeasurementReport
	}
	var samples []sample
	sampleAt := make(map[int]int) // household index -> samples slot
	for _, gi := range sh.members {
		if (gi+c)%s.cfg.MeasureEvery == 0 && !s.hh[gi].left {
			sampleAt[gi] = len(samples)
			samples = append(samples, sample{gi: gi})
		}
	}

	for slot := base; slot < next; slot++ {
		for _, gi := range sh.members {
			hh := s.hh[gi]
			if hh.left {
				continue
			}
			offers, kwh := hh.h.Tick(slot)
			for _, off := range offers {
				sh.submit(ctx, s, off, hh.brp, next)
			}
			if si, ok := sampleAt[gi]; ok {
				samples[si].reports = append(samples[si].reports, comm.MeasurementReport{
					Actor: hh.h.Name, EnergyType: "demand", Slot: slot, KWh: kwh,
				})
			}
		}
		if s.cfg.Pace > 0 {
			t := time.NewTimer(s.cfg.Pace)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			}
		}
	}

	for _, sm := range samples {
		hh := s.hh[sm.gi]
		if hh.left || len(sm.reports) == 0 {
			continue
		}
		if err := sh.client.ReportMeasurementsAcked(ctx, brpName(hh.brp), sm.reports); err != nil {
			sh.measFailed++
			continue
		}
		byActor := sh.ackedMeas[hh.brp]
		if byActor == nil {
			byActor = make(map[string][]flexoffer.Time)
			sh.ackedMeas[hh.brp] = byActor
		}
		for _, r := range sm.reports {
			byActor[r.Actor] = append(byActor[r.Actor], r.Slot)
		}
		sh.measAcked += uint64(len(sm.reports))
	}
}

// submit sends one flex-offer and records the ack. A failed submission
// whose start window is still open next cycle is re-issued the way a
// household would: a fresh offer — new ID from the shard's private ID
// space, start and assignment deadline pushed past the next planning
// time — never the same ID, because the original may have landed despite
// the lost reply (the ambiguous-error case the idempotency
// classification exists for).
func (sh *shard) submit(ctx context.Context, s *sim, off *flexoffer.FlexOffer, brp int, next flexoffer.Time) {
	sh.submitted++
	d, err := sh.client.SubmitOffer(ctx, brpName(brp), off)
	if err != nil {
		sh.failed++
		if off.LatestStart >= next+2 {
			clone := off.Clone()
			sh.reofferSeq++
			clone.ID = flexoffer.ID((uint64(sh.idx)+1)<<40 + sh.reofferSeq)
			if clone.EarliestStart < next+2 {
				clone.EarliestStart = next + 2
			}
			clone.AssignBefore = clone.EarliestStart - 1
			sh.reoffers = append(sh.reoffers, clone)
			sh.reofferTo = append(sh.reofferTo, brp)
			sh.reoffered++
		}
		return
	}
	sh.acked++
	sh.ackedOffers[brp] = append(sh.ackedOffers[brp], off.ID)
	if d.Accept {
		sh.accepted++
	}
}

// recoverAll replays the tail of the fault schedule (restarts or heals
// planned past the last cycle), brings any still-down node back, and
// settles departures that were waiting on a dead BRP.
func (s *sim) recoverAll() {
	if evs := s.ctl.Events(); len(evs) > 0 {
		for n := s.cfg.Cycles; n <= evs[len(evs)-1]; n++ {
			if err := s.ctl.BeginCycle(n); err != nil {
				s.cfg.Logf("schedule tail: %v", err)
			}
		}
	}
	for i := range s.brps {
		if s.down[i] {
			if err := s.restart(i); err != nil {
				s.cfg.Logf("final restart of %s: %v", brpName(i), err)
			}
		}
	}
	s.drainDeferred(s.cfg.Cycles)
}

// verify drains every journal and checks the run's durability contract:
// every acked offer and measurement is in its BRP's store — across
// drops, partitions, churn and crash/restart — and every settlement
// chain verifies end to end.
func (s *sim) verify() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, n := range s.brps {
		if err := n.DrainIngest(ctx); err != nil {
			s.res.LostOffers = append(s.res.LostOffers,
				fmt.Sprintf("%s: final ingest drain failed: %v", brpName(i), err))
		}
	}
	for _, sh := range s.shards {
		for brp, ids := range sh.ackedOffers {
			st := s.brps[brp].Store()
			for _, id := range ids {
				if _, ok := st.GetOffer(id); !ok {
					s.res.LostOffers = append(s.res.LostOffers,
						fmt.Sprintf("%s: acked offer %d missing after recovery", brpName(brp), id))
				}
			}
		}
		for brp, byActor := range sh.ackedMeas {
			st := s.brps[brp].Store()
			for actor, slots := range byActor {
				have := make(map[flexoffer.Time]bool)
				for _, m := range st.Measurements(store.MeasurementFilter{Actor: actor, EnergyType: "demand"}) {
					have[m.Slot] = true
				}
				for _, slot := range slots {
					if !have[slot] {
						s.res.LostMeasurements = append(s.res.LostMeasurements,
							fmt.Sprintf("%s: acked measurement %s@%d missing after recovery", brpName(brp), actor, slot))
					}
				}
			}
		}
	}
	sort.Strings(s.res.LostOffers)
	sort.Strings(s.res.LostMeasurements)
	for i, n := range s.brps {
		v, err := n.Ledger().Verify()
		if err != nil {
			v = settle.VerifyResult{OK: false, Reason: err.Error()}
		}
		s.res.Ledgers[brpName(i)] = v
	}
}

func (s *sim) collectStats() {
	for _, sh := range s.shards {
		s.res.OffersSubmitted += sh.submitted
		s.res.OffersAcked += sh.acked
		s.res.OffersAccepted += sh.accepted
		s.res.OffersFailed += sh.failed
		s.res.Reoffered += sh.reoffered
		s.res.MeasAcked += sh.measAcked
		s.res.MeasFailed += sh.measFailed
		s.res.SchedulesDelivered += sh.schedules.Load()
		s.res.Injectors[sh.name] = sh.inj.Stats()
	}
	for i := range s.brps {
		name := brpName(i)
		s.res.Injectors[name] = s.brpInj[i].Stats()
		rs := s.residRetry[name]
		if live, ok := s.brps[i].RetryStats(); ok {
			rs = addRetryStats(rs, live)
		}
		s.res.Retry[name] = rs
		is := s.residIngest[name]
		if live, ok := s.brps[i].IngestStats(); ok {
			is = addIngestStats(is, live)
		}
		s.res.Ingest[name] = is
	}
	s.res.Controller = s.ctl.Stats()
}

func (s *sim) shutdown() {
	for _, n := range s.brps {
		_ = n.Close()
		_ = n.Store().Close()
	}
}
