// mirabel-bench regenerates the paper's evaluation figures (§9) as text
// series: the aggregation experiments (Figure 5a–d), the forecasting
// experiments (Figure 4a–b), the scheduling experiments (Figure 6a–d)
// and the exhaustive optimality probe from §6.
//
// Usage:
//
//	mirabel-bench -exp all                 # everything at default scale
//	mirabel-bench -exp fig5 -maxoffers 800000
//	mirabel-bench -exp fig6 -budget 30s
//	mirabel-bench -exp exhaustive
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/chaos"
	"mirabel/internal/comm"
	"mirabel/internal/core"
	"mirabel/internal/flexoffer"
	"mirabel/internal/forecast"
	"mirabel/internal/ingest"
	"mirabel/internal/market"
	"mirabel/internal/negotiate"
	"mirabel/internal/optimize"
	"mirabel/internal/sched"
	"mirabel/internal/settle"
	"mirabel/internal/store"
	"mirabel/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mirabel-bench: ")
	exp := flag.String("exp", "all", "experiment: all | fig5a | fig5b | fig5c | fig5d | fig5 | fig4a | fig4b | fig6 | exhaustive | cycle | store | tcp | sched | ingest | agg | forecast | settle | chaos")
	maxOffers := flag.Int("maxoffers", 800000, "largest flex-offer count of the Figure 5 sweep")
	aggOffers := flag.Int("agg-offers", 1000000, "largest flex-offer count of the agg churn experiment")
	maxFacts := flag.Int("maxfacts", 1600000, "largest measurement count of the storage-engine sweep")
	fcSeries := flag.Int("fcast-series", 100000, "resident series count of the forecast fleet experiment")
	settleLines := flag.Int("settle-lines", 100000, "settlement lines per price regime in the ledger experiment")
	budget := flag.Duration("budget", 10*time.Second, "time budget of the largest Figure 6 instance")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	switch *exp {
	case "all":
		fig5(*maxOffers, *seed)
		fig4a(*seed)
		fig4b(*seed)
		fig6(*budget, *seed)
		exhaustive(*seed)
		cycleExp()
		storeExp(*maxFacts, *seed)
		tcpExp()
		schedExp(*seed)
		ingestExp(*seed)
		aggExp(*aggOffers, *seed)
		forecastExp(*fcSeries, *seed)
		settleExp(*settleLines, *seed)
		chaosExp(*seed)
	case "fig5", "fig5a", "fig5b", "fig5c", "fig5d":
		fig5(*maxOffers, *seed)
	case "fig4a":
		fig4a(*seed)
	case "fig4b":
		fig4b(*seed)
	case "fig6":
		fig6(*budget, *seed)
	case "exhaustive":
		exhaustive(*seed)
	case "cycle":
		cycleExp()
	case "store":
		storeExp(*maxFacts, *seed)
	case "tcp":
		tcpExp()
	case "sched":
		schedExp(*seed)
	case "ingest":
		ingestExp(*seed)
	case "agg":
		aggExp(*aggOffers, *seed)
	case "forecast":
		forecastExp(*fcSeries, *seed)
	case "settle":
		settleExp(*settleLines, *seed)
	case "chaos":
		chaosExp(*seed)
	default:
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// fig5 sweeps the flex-offer count for P0–P3 and prints all four panels'
// series: aggregate count (5a), aggregation time (5b), time-flexibility
// loss per offer (5c) and disaggregation vs aggregation time (5d).
func fig5(maxOffers int, seed int64) {
	fmt.Println("== Figure 5: aggregation experiments ==")
	fmt.Println("offers  params  aggregates  ratio   agg_time_s  loss_slots/offer  disagg_time_s  disagg/agg")
	counts := []int{}
	for n := 100000; n <= maxOffers; n += 100000 {
		counts = append(counts, n)
	}
	all := workload.GenerateFlexOffers(workload.FlexOfferConfig{Count: maxOffers, Seed: seed})
	params := []struct {
		name string
		p    agg.Params
	}{{"P0", agg.ParamsP0}, {"P1", agg.ParamsP1}, {"P2", agg.ParamsP2}, {"P3", agg.ParamsP3}}
	for _, n := range counts {
		ups := make([]agg.FlexOfferUpdate, n)
		for i := 0; i < n; i++ {
			ups[i] = agg.FlexOfferUpdate{Kind: agg.Insert, Offer: all[i]}
		}
		for _, pc := range params {
			pipe := agg.NewPipeline(pc.p, agg.BinPackerOptions{})
			t0 := time.Now()
			if _, err := pipe.Apply(ups...); err != nil {
				log.Fatal(err)
			}
			aggTime := time.Since(t0)
			m := pipe.CurrentMetrics()

			// Figure 5d: disaggregate a mid-flexibility schedule of
			// every aggregate.
			scheds := make([]*flexoffer.Schedule, 0, m.Aggregates)
			for _, a := range pipe.Aggregates() {
				energy := make([]float64, a.Offer.NumSlices())
				for j, sl := range a.Offer.Profile {
					energy[j] = (sl.EnergyMin + sl.EnergyMax) / 2
				}
				scheds = append(scheds, &flexoffer.Schedule{
					OfferID: a.Offer.ID,
					Start:   a.Offer.EarliestStart + a.Offer.TimeFlexibility()/2,
					Energy:  energy,
				})
			}
			t0 = time.Now()
			if _, err := pipe.Disaggregate(scheds); err != nil {
				log.Fatal(err)
			}
			disaggTime := time.Since(t0)

			fmt.Printf("%-7d %-7s %-11d %-7.2f %-11.3f %-17.3f %-14.3f %.2f\n",
				n, pc.name, m.Aggregates, m.CompressionRatio, aggTime.Seconds(),
				m.LossPerOffer, disaggTime.Seconds(), disaggTime.Seconds()/aggTime.Seconds())
		}
	}
}

// fig4a prints the SMAPE-over-time convergence traces of the three
// global parameter estimators on the HWT model.
func fig4a(seed int64) {
	fmt.Println("== Figure 4a: accuracy vs estimation time (HWT on demand) ==")
	vals := workload.DemandSeries(workload.DemandConfig{Days: 28, Seed: seed}).Values()
	for _, est := range []optimize.Estimator{
		&optimize.RandomRestartNelderMead{},
		&optimize.SimulatedAnnealing{},
		optimize.RandomSearch{},
	} {
		_, res, err := forecast.FitHWT(vals, []int{48, 336}, forecast.FitConfig{
			Estimator: est,
			Options:   optimize.Options{MaxEvaluations: 1200, Seed: seed + 1, TraceEvery: 60},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s final SMAPE %.5f\n", est.Name(), res.Value)
		for _, tp := range res.Trace {
			fmt.Printf("  t=%-10v evals=%-5d best_smape=%.5f\n", tp.Elapsed.Round(time.Millisecond), tp.Evaluations, tp.Best)
		}
	}
}

// fig4b prints SMAPE against forecast horizon for the demand and wind
// series.
func fig4b(seed int64) {
	fmt.Println("== Figure 4b: accuracy vs forecast horizon ==")
	series := []struct {
		name string
		vals []float64
	}{
		{"demand", workload.DemandSeries(workload.DemandConfig{Days: 42, Seed: seed}).Values()},
		{"wind", workload.WindSeries(workload.WindConfig{Days: 42, Seed: seed}).Values()},
	}
	horizons := []int{1, 6, 12, 24, 48, 96, 144, 192} // up to 4 days
	fmt.Printf("%-8s", "series")
	for _, h := range horizons {
		fmt.Printf("h=%-7d", h)
	}
	fmt.Println()
	for _, s := range series {
		split := len(s.vals) - 4*336
		fmt.Printf("%-8s", s.name)
		for _, h := range horizons {
			m, _, err := forecast.FitHWT(s.vals[:split], []int{48, 336}, forecast.FitConfig{
				Options: optimize.Options{MaxEvaluations: 300, Seed: seed + 2},
			})
			if err != nil {
				log.Fatal(err)
			}
			smape, err := forecast.HorizonSMAPE(m, s.vals[split:], h)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9.4f", smape)
		}
		fmt.Println()
	}
}

// fig6 prints the cost-over-time traces of the evolutionary algorithm
// and the randomized greedy search on 10/100/1000/10000 aggregated
// flex-offers.
func fig6(maxBudget time.Duration, seed int64) {
	fmt.Println("== Figure 6: scheduling cost vs time (EA vs GS) ==")
	prices := workload.PriceSeries(workload.PriceConfig{Days: 2, Seed: seed})
	m, err := market.NewDayAhead(market.Config{Prices: prices, CapacityKWh: 2000})
	if err != nil {
		log.Fatal(err)
	}
	sizes := []int{10, 100, 1000, 10000}
	for i, n := range sizes {
		// Budget grows with instance size like the paper's panels
		// (1 s, 5 s, 60 s, 15 min there; scaled down here).
		budget := maxBudget >> (2 * (len(sizes) - 1 - i))
		if budget < 250*time.Millisecond {
			budget = 250 * time.Millisecond
		}
		p, err := sched.BuildScenario(sched.ScenarioConfig{Offers: n, Seed: seed + 42, Market: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %d aggregated flex-offers (budget %v, default cost %.0f EUR, search space %.3g) --\n",
			n, budget, p.BaselineCost(), p.CountSolutions())
		// EA and GS are the paper's two algorithms; HYB is the
		// greedy-seeded hybrid from the research directions.
		for _, s := range []sched.Scheduler{&sched.Evolutionary{}, &sched.RandomizedGreedy{}, &sched.Hybrid{}} {
			res, err := s.Schedule(context.Background(), p, sched.Options{TimeBudget: budget, Seed: seed + 7, TraceEvery: traceStride(n)})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-3s final cost %.1f EUR after %d iterations\n", s.Name(), res.Cost, res.Iterations)
			for _, tp := range sampleTrace(res.Trace, 8) {
				fmt.Printf("   t=%-10v cost=%.1f\n", tp.Elapsed.Round(time.Millisecond), tp.Cost)
			}
		}
	}
}

func traceStride(n int) int {
	if n >= 1000 {
		return 1
	}
	return 10
}

func sampleTrace(trace []sched.TracePoint, k int) []sched.TracePoint {
	if len(trace) <= k {
		return trace
	}
	out := make([]sched.TracePoint, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, trace[i*(len(trace)-1)/(k-1)])
	}
	return out
}

// exhaustive reproduces the §6 optimality probe at a tractable scale:
// enumerate every start combination of a small instance and compare the
// heuristics against the optimum.
func exhaustive(seed int64) {
	fmt.Println("== §6 optimality probe: exhaustive enumeration ==")
	p, err := sched.BuildScenario(sched.ScenarioConfig{Offers: 6, Seed: seed + 3})
	if err != nil {
		log.Fatal(err)
	}
	// Cap the time flexibilities so the space stays enumerable in
	// seconds (the paper's 10-offer probe took three hours for 8.5·10⁸).
	for _, f := range p.Offers {
		if f.TimeFlexibility() > 10 {
			f.LatestStart = f.EarliestStart + 10
		}
	}
	fmt.Printf("6 flex-offers, %.0f start combinations\n", p.CountSolutions())
	x := &sched.Exhaustive{}
	t0 := time.Now()
	opt, err := x.Schedule(context.Background(), p, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal (midpoint energies): %.2f EUR in %v (%d schedules evaluated)\n",
		opt.Cost, time.Since(t0).Round(time.Millisecond), opt.Iterations)
	for _, s := range []sched.Scheduler{&sched.RandomizedGreedy{}, &sched.Evolutionary{}} {
		res, err := s.Schedule(context.Background(), p, sched.Options{TimeBudget: time.Second, Seed: seed + 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s: %.2f EUR (gap to enumerated optimum: %+.2f — negative means the heuristic's free energy choice beats midpoint energies)\n",
			s.Name(), res.Cost, res.Cost-opt.Cost)
	}
}

// storeExp exercises the storage engine the way a loaded BRP node does:
// concurrent meter-stream ingestion (single puts vs WAL-group-committed
// batches), indexed slot-window queries against fact tables of growing
// size, and a snapshot taken while readers and writers keep running.
func storeExp(maxFacts int, seed int64) {
	fmt.Println("== Storage engine: ingestion, indexed queries, snapshot under load ==")

	// --- ingestion: single puts vs batches, 4 concurrent writers -----
	const writers = 4
	ingestN := maxFacts / 8
	if ingestN > 200000 {
		ingestN = 200000
	}
	facts := workload.GenerateMeasurements(workload.MeasurementConfig{Count: ingestN, Actors: 256, Seed: seed})
	fmt.Printf("-- ingestion: %d facts, %d concurrent writers, durable store --\n", ingestN, writers)
	fmt.Println("mode                 wall_s   facts/s     wal_records  wal_groups  recs/group  fsyncs")
	for _, tc := range []struct {
		mode   string
		batch  bool
		policy store.SyncPolicy
	}{
		{"single/flush", false, store.SyncFlush},
		{"batch-256/flush", true, store.SyncFlush},
		{"single/always", false, store.SyncAlways},
		{"batch-256/always", true, store.SyncAlways},
	} {
		mode := tc.mode
		// The fsync-per-commit rows are the group committer's showcase:
		// without coalescing they would cost one fsync per fact.
		factsForMode := facts
		if tc.policy == store.SyncAlways && !tc.batch {
			factsForMode = facts[:min(len(facts), 20000)]
		}
		dir, err := os.MkdirTemp("", "mirabel-storebench")
		if err != nil {
			log.Fatal(err)
		}
		st, err := store.Open(dir, store.WithSyncPolicy(tc.policy))
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		var wg sync.WaitGroup
		per := (len(factsForMode) + writers - 1) / writers
		for w := 0; w < writers; w++ {
			lo := w * per
			hi := min(lo+per, len(factsForMode))
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(part []store.Measurement) {
				defer wg.Done()
				if !tc.batch {
					for _, m := range part {
						if err := st.PutMeasurement(m); err != nil {
							log.Fatal(err)
						}
					}
					return
				}
				for off := 0; off < len(part); off += 256 {
					if err := st.PutMeasurementsBatch(part[off:min(off+256, len(part))]); err != nil {
						log.Fatal(err)
					}
				}
			}(factsForMode[lo:hi])
		}
		wg.Wait()
		wall := time.Since(t0)
		ls := st.WALStats()
		fmt.Printf("%-20s %-8.3f %-11.0f %-12d %-11d %-11.1f %d\n",
			mode, wall.Seconds(), float64(len(factsForMode))/wall.Seconds(),
			ls.Records, ls.Groups, float64(ls.Records)/float64(ls.Groups), ls.Syncs)
		st.Close()
		os.RemoveAll(dir)
	}

	// --- indexed queries: fixed 64-slot window, growing table --------
	fmt.Println("-- indexed queries: one actor, 64-slot window, growing fact table --")
	fmt.Println("facts     rows  query_us  sum_by_slot_us  offers_by_state_us(1000 hits)")
	startFacts := maxFacts / 16
	if startFacts < 1 {
		startFacts = 1 // tiny -maxfacts: a single sweep point, not a zero-stride loop
	}
	for n := startFacts; n <= maxFacts; n *= 4 {
		st := store.NewInMemory()
		actors := 256
		if err := st.PutMeasurementsBatch(workload.GenerateMeasurements(workload.MeasurementConfig{Count: n, Actors: actors, Seed: seed})); err != nil {
			log.Fatal(err)
		}
		// 1000 scheduled offers drowned in rejected ones, so the
		// by-state index has something to prove.
		offers := workload.GenerateFlexOffers(workload.FlexOfferConfig{Count: 10000, Seed: seed})
		for i, f := range offers {
			state := store.OfferRejected
			if i < 1000 {
				state = store.OfferScheduled
			}
			if err := st.PutOffer(store.OfferRecord{Offer: f, Owner: "p", State: state}); err != nil {
				log.Fatal(err)
			}
		}
		slots := flexoffer.Time(n / actors)
		filter := store.MeasurementFilter{Actor: workload.MeasurementActor(7), EnergyType: "demand",
			FromSlot: slots / 2, ToSlot: slots/2 + 64}
		runtime.GC() // settle the post-population heap before timing
		const reps = 200
		var rows int
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			rows = len(st.Measurements(filter))
		}
		queryUS := float64(time.Since(t0).Microseconds()) / reps
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			st.SumEnergyBySlot(filter)
		}
		sumUS := float64(time.Since(t0).Microseconds()) / reps
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			st.Offers(store.OfferFilter{State: store.OfferScheduled})
		}
		offersUS := float64(time.Since(t0).Microseconds()) / reps
		fmt.Printf("%-9d %-5d %-9.1f %-15.1f %.1f\n", n, rows, queryUS, sumUS, offersUS)
	}

	// --- snapshot under load -----------------------------------------
	snapN := maxFacts / 4
	fmt.Printf("-- snapshot of %d facts while 2 writers + 1 reader keep running --\n", snapN)
	dir, err := os.MkdirTemp("", "mirabel-storebench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if err := st.PutMeasurementsBatch(workload.GenerateMeasurements(workload.MeasurementConfig{Count: snapN, Actors: 256, Seed: seed})); err != nil {
		log.Fatal(err)
	}
	stop := make(chan struct{})
	var maxStall int64 // atomic, ns
	var writes, reads int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slot := flexoffer.Time(snapN)
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if err := st.PutMeasurement(store.Measurement{Actor: workload.MeasurementActor(w), EnergyType: "demand", Slot: slot, KWh: 1}); err != nil {
					log.Fatal(err)
				}
				for d := int64(time.Since(t0)); ; {
					cur := atomic.LoadInt64(&maxStall)
					if d <= cur || atomic.CompareAndSwapInt64(&maxStall, cur, d) {
						break
					}
				}
				atomic.AddInt64(&writes, 1)
				slot++
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.SumEnergyBySlot(store.MeasurementFilter{Actor: workload.MeasurementActor(3), EnergyType: "demand"})
			atomic.AddInt64(&reads, 1)
		}
	}()
	t0 := time.Now()
	if err := st.Snapshot(); err != nil {
		log.Fatal(err)
	}
	snapWall := time.Since(t0)
	close(stop)
	wg.Wait()
	fmt.Printf("snapshot_wall_s %.3f   writes_during %d   reads_during %d   max_write_stall_ms %.2f\n",
		snapWall.Seconds(), atomic.LoadInt64(&writes), atomic.LoadInt64(&reads),
		float64(atomic.LoadInt64(&maxStall))/1e6)
}

// schedExp measures the scheduler hot path on the tentpole's reference
// instance (64 offers, 96 slots, market attached): candidate-evaluation
// throughput of the full Problem.Evaluate versus the compiled evaluator
// versus single-offer delta updates, then the cost each strategy — and
// the parallel portfolio at growing worker counts — reaches within a
// fixed 250 ms budget.
func schedExp(seed int64) {
	fmt.Println("== Scheduler hot path: compiled problems, delta evaluation, parallel portfolio ==")
	prices := workload.PriceSeries(workload.PriceConfig{Days: 2, Seed: seed})
	m, err := market.NewDayAhead(market.Config{Prices: prices, CapacityKWh: 2000})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sched.BuildScenario(sched.ScenarioConfig{Offers: 64, Seed: seed + 5, Market: m})
	if err != nil {
		log.Fatal(err)
	}
	c, err := sched.Compile(p)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (&sched.RandomizedGreedy{}).Schedule(context.Background(), p, sched.Options{MaxIterations: 1, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	sol := res.Solution

	// Evaluation throughput: each mode runs for a fixed wall slice.
	const slice = 300 * time.Millisecond
	measure := func(name string, op func()) float64 {
		n := 0
		t0 := time.Now()
		for time.Since(t0) < slice {
			for i := 0; i < 64; i++ { // amortize the clock reads
				op()
			}
			n += 64
		}
		rate := float64(n) / time.Since(t0).Seconds()
		fmt.Printf("%-10s %12.0f evals/s\n", name, rate)
		return rate
	}
	fmt.Printf("-- evaluation throughput (64 offers, %d slots, market attached) --\n", p.Slots)
	full := measure("full", func() { p.Evaluate(sol) })
	ev := c.NewEval()
	ev.Init(sol)
	compiled := measure("compiled", func() { ev.Init(sol) })
	lo, hi := p.StartWindow(p.Offers[0])
	flip := sol.Placements[0].Start
	other := lo
	if flip == lo && hi > lo {
		other = lo + 1
	}
	energy := sol.Placements[0].Energy
	delta := measure("delta", func() {
		ev.SetPlacement(0, other, energy)
		flip, other = other, flip
	})
	fmt.Printf("speedup: compiled %.1fx, delta %.1fx over full Evaluate\n", compiled/full, delta/full)

	// Cost at a fixed budget: the Figure 6 quality-per-budget question,
	// now including the portfolio at growing worker counts.
	const budget = 250 * time.Millisecond
	fmt.Printf("-- cost at a %v budget (default cost %.0f EUR) --\n", budget, p.BaselineCost())
	fmt.Println("strategy      cost_eur  iterations")
	run := func(name string, s sched.Scheduler) {
		res, err := s.Schedule(context.Background(), p, sched.Options{TimeBudget: budget, Seed: seed + 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s %-9.1f %d\n", name, res.Cost, res.Iterations)
	}
	run("GS", &sched.RandomizedGreedy{})
	run("EA", &sched.Evolutionary{})
	run("HYB", &sched.Hybrid{})
	for _, workers := range []int{2, 4, 8} {
		run(fmt.Sprintf("PARx%d", workers), &sched.Parallel{Workers: workers})
	}
}

// cycleExp measures the scheduling cycle's deliver phase over a slow
// transport: with the bounded fan-out, delivery wall time tracks the
// slowest prosumer (per wave of the limit), not the sum of all
// prosumer latencies. limit=1 reproduces the old serialized delivery
// as the baseline.
func cycleExp() {
	fmt.Println("== Scheduling cycle: delivery fan-out over a slow transport ==")
	const delay = 5 * time.Millisecond
	fmt.Printf("per-send latency %v\n", delay)
	fmt.Println("prosumers  limit  deliver_wall  x_slowest  serial_sum")
	for _, n := range []int{8, 32, 128} {
		for _, limit := range []int{1, comm.DefaultFanOutLimit} {
			bus := comm.NewBus()
			brp, err := core.NewNode(core.Config{
				Name: "brp", Role: store.RoleBRP,
				Transport:   comm.Latency(bus, delay),
				AggParams:   agg.ParamsP3,
				SchedOpts:   sched.Options{MaxIterations: 1, Seed: 1},
				NotifyLimit: limit,
			})
			if err != nil {
				log.Fatal(err)
			}
			bus.Register("brp", brp.Handler())
			for i := 0; i < n; i++ {
				bus.Register(fmt.Sprintf("p%d", i), func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
					return nil, nil
				})
			}
			for i := 0; i < n; i++ {
				p := make([]flexoffer.Slice, 4)
				for j := range p {
					p[j] = flexoffer.Slice{EnergyMin: 0, EnergyMax: 5}
				}
				f := &flexoffer.FlexOffer{
					ID: flexoffer.ID(i + 1), EarliestStart: 40, LatestStart: 56,
					AssignBefore: 32, Profile: p,
				}
				if d := brp.AcceptOffer(f, fmt.Sprintf("p%d", i)); !d.Accept {
					log.Fatalf("offer %d rejected: %s", i+1, d.Reason)
				}
			}
			rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			if rep.NotifyFailures != 0 {
				log.Fatalf("%d prosumers unreachable", rep.NotifyFailures)
			}
			fmt.Printf("%-10d %-6d %-13v %-10.1f %v\n",
				n, limit, rep.DeliveryTime.Round(100*time.Microsecond),
				float64(rep.DeliveryTime)/float64(delay), time.Duration(n)*delay)
		}
	}
}

// tcpExp measures the TCP transport's concurrency over a slow-handler
// server: K requests through one client, issued back to back (the
// seed's single-client-mutex behaviour) versus concurrently over the
// pooled, Seq-pipelined connections. Overlapped, the wall time tracks
// one slow-handler latency ("x_slowest" ≈ 1), not the sum (≈ K); the
// transport stats show how few connections carry the load.
func tcpExp() {
	fmt.Println("== TCP transport: pooled, pipelined fan-out over a slow server ==")
	const delay = 5 * time.Millisecond
	fmt.Printf("per-request handler latency %v\n", delay)
	fmt.Println("requests  pool  mode        wall_ms  x_slowest  dials  reuses  in_flight")
	handler := func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		// time.NewTimer + Stop, not time.After: a canceled request must
		// release its timer immediately instead of leaking it until
		// expiry (this handler runs once per benchmarked request).
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		reply, err := comm.NewEnvelope(comm.MsgPong, env.To, env.From, nil)
		return &reply, err
	}
	srv, err := comm.ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	for _, k := range []int{4, 16, 64} {
		for _, tc := range []struct {
			mode       string
			pool       int
			concurrent bool
		}{
			{"serial", 1, false},
			{"pipelined", 1, true}, // one connection: overlap is pure Seq pipelining
			{"pooled", comm.DefaultPoolSize, true},
		} {
			client := comm.NewTCPClient("bench", comm.WithPoolSize(tc.pool))
			client.SetRoute("srv", srv.Addr())
			run := func(j int) error {
				env, err := comm.NewEnvelope(comm.MsgPing, "bench", "srv", nil)
				if err != nil {
					return err
				}
				_, err = client.Request(context.Background(), "srv", env)
				return err
			}
			t0 := time.Now()
			if tc.concurrent {
				var wg sync.WaitGroup
				errs := make([]error, k)
				for j := 0; j < k; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						errs[j] = run(j)
					}(j)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						log.Fatal(err)
					}
				}
			} else {
				for j := 0; j < k; j++ {
					if err := run(j); err != nil {
						log.Fatal(err)
					}
				}
			}
			wall := time.Since(t0)
			st := client.Stats()
			fmt.Printf("%-9d %-5d %-11s %-8.2f %-10.1f %-6d %-7d %d\n",
				k, tc.pool, tc.mode, float64(wall)/float64(time.Millisecond),
				float64(wall)/float64(delay), st.Dials, st.Reuses, st.InFlight)
			client.Close()
		}
	}
}

// ingestExp benchmarks the durable async intake path (internal/ingest)
// against the seed's synchronous request/reply intake, then shows the
// backpressure policies under overload and the circuit-breaker's
// graceful degradation across scheduling cycles with one dead prosumer.
func ingestExp(seed int64) {
	fmt.Println("== Ingest: durable async intake vs synchronous store round-trips ==")
	const (
		producers = 8
		events    = 2000
		batch     = 10
	)
	fmt.Printf("%d producers x %d events x %d measurements/event\n", producers, events/producers, batch)
	fmt.Println("fsync   mode    acked_ev/s  ack_p50    ack_p99    drain_ms  mean_batch")
	for _, pol := range []struct {
		name   string
		policy store.SyncPolicy
	}{{"flush", store.SyncFlush}, {"always", store.SyncAlways}} {
		syncRate := runSyncIngest(pol.policy, producers, events, batch)
		fmt.Printf("%-7s %-7s %-11.0f %-10s %-10s %-9s %s\n", pol.name, "sync", syncRate, "-", "-", "-", "-")
		asyncRate, drain, st := runAsyncIngest(pol.policy, producers, events, batch)
		fmt.Printf("%-7s %-7s %-11.0f %-10v %-10v %-9.1f %.1f   (x%.2f vs sync)\n",
			pol.name, "async", asyncRate,
			st.AckP50.Round(time.Microsecond), st.AckP99.Round(time.Microsecond),
			float64(drain)/float64(time.Millisecond), st.MeanBatch, asyncRate/syncRate)
	}

	fmt.Println()
	fmt.Println("-- backpressure policies under overload (queue=64, 1 consumer) --")
	fmt.Println("policy  acked   shed    deferred  acked_ev/s  drain_ms")
	for _, policy := range []ingest.Policy{ingest.PolicyBlock, ingest.PolicyShed, ingest.PolicyDefer} {
		acked, st, rate, drain := runOverloadIngest(policy, 16, 3000, 4)
		fmt.Printf("%-7s %-7d %-7d %-9d %-11.0f %.1f\n",
			policy, acked, st.Shed, st.Deferred, rate, float64(drain)/float64(time.Millisecond))
	}

	fmt.Println()
	breakerCycleExp()
}

func benchStore(policy store.SyncPolicy) (*store.Store, func()) {
	dir, err := os.MkdirTemp("", "mirabel-bench-ingest")
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.Open(dir, store.WithSyncPolicy(policy))
	if err != nil {
		log.Fatal(err)
	}
	return st, func() {
		st.Close()
		os.RemoveAll(dir)
	}
}

func benchMeasurements(producer, event, batch int) []store.Measurement {
	ms := make([]store.Measurement, batch)
	for j := range ms {
		ms[j] = store.Measurement{
			Actor:      fmt.Sprintf("p%d", producer),
			EnergyType: "elec",
			Slot:       flexoffer.Time(event*batch + j),
			KWh:        1,
		}
	}
	return ms
}

// runSyncIngest is the baseline: every event is one synchronous
// PutMeasurementsBatch round-trip through the store's WAL.
func runSyncIngest(policy store.SyncPolicy, producers, events, batch int) float64 {
	st, cleanup := benchStore(policy)
	defer cleanup()
	per := events / producers
	var wg sync.WaitGroup
	t0 := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := st.PutMeasurementsBatch(benchMeasurements(p, i, batch)); err != nil {
					log.Fatal(err)
				}
			}
		}(p)
	}
	wg.Wait()
	return float64(events) / time.Since(t0).Seconds()
}

// runAsyncIngest acks the same events through the ingest journal and
// lets consumers coalesce them into the store behind the ack.
func runAsyncIngest(policy store.SyncPolicy, producers, events, batch int) (float64, time.Duration, ingest.Stats) {
	st, cleanup := benchStore(store.SyncFlush)
	defer cleanup()
	dir, err := os.MkdirTemp("", "mirabel-bench-journal")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	q, err := ingest.Open(ingest.Config{
		Store:     st,
		Path:      filepath.Join(dir, "ingest.log"),
		Sync:      policy,
		Queue:     4096,
		Policy:    ingest.PolicyBlock,
		Consumers: 4,
		MaxBatch:  256,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	per := events / producers
	var wg sync.WaitGroup
	t0 := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := q.SubmitMeasurements(ctx, benchMeasurements(p, i, batch)); err != nil {
					log.Fatal(err)
				}
			}
		}(p)
	}
	wg.Wait()
	acked := time.Since(t0)
	d0 := time.Now()
	if err := q.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	drain := time.Since(d0)
	stats := q.Stats()
	if err := q.Close(); err != nil {
		log.Fatal(err)
	}
	return float64(events) / acked.Seconds(), drain, stats
}

// runOverloadIngest hammers a deliberately tiny queue to show what each
// backpressure policy does when producers outrun the consumer.
func runOverloadIngest(policy ingest.Policy, producers, events, batch int) (int, ingest.Stats, float64, time.Duration) {
	st, cleanup := benchStore(store.SyncFlush)
	defer cleanup()
	dir, err := os.MkdirTemp("", "mirabel-bench-journal")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	q, err := ingest.Open(ingest.Config{
		Store:     st,
		Path:      filepath.Join(dir, "ingest.log"),
		Queue:     64,
		Policy:    policy,
		Consumers: 1,
		MaxBatch:  64,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	per := events / producers
	var acked atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := q.SubmitMeasurements(ctx, benchMeasurements(p, i, batch))
				switch {
				case err == nil:
					acked.Add(1)
				case errors.Is(err, ingest.ErrOverloaded):
					// shed: the producer's problem, by design
				default:
					log.Fatal(err)
				}
			}
		}(p)
	}
	wg.Wait()
	wall := time.Since(t0)
	d0 := time.Now()
	if err := q.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	drain := time.Since(d0)
	stats := q.Stats()
	if err := q.Close(); err != nil {
		log.Fatal(err)
	}
	return int(acked.Load()), stats, float64(acked.Load()) / wall.Seconds(), drain
}

// breakerCycleExp runs three scheduling cycles with one dead prosumer:
// the first pays a real delivery failure and trips the circuit; the
// following cycles skip the destination outright (reported, not
// retried), so delivery degrades gracefully instead of stalling.
func breakerCycleExp() {
	fmt.Println("-- circuit breaker: cycles with one unreachable prosumer (p3) --")
	const prosumers = 8
	bus := comm.NewBus()
	brp, err := core.NewNode(core.Config{
		Name: "brp", Role: store.RoleBRP,
		Transport: bus,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 1, Seed: 1},
		Breaker: &comm.BreakerConfig{
			MinSamples:  1,
			FailureRate: 0.5,
			Cooldown:    time.Hour, // stays open for the whole run
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	bus.Register("brp", brp.Handler())
	for i := 0; i < prosumers; i++ {
		if i == 3 {
			continue // p3 is dead
		}
		bus.Register(fmt.Sprintf("p%d", i), func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
			return nil, nil
		})
	}
	fmt.Println("cycle  schedules  failures  skipped  deliver_ms")
	nextID := 1
	for round := 1; round <= 3; round++ {
		for i := 0; i < prosumers; i++ {
			p := make([]flexoffer.Slice, 4)
			for j := range p {
				p[j] = flexoffer.Slice{EnergyMin: 0, EnergyMax: 5}
			}
			f := &flexoffer.FlexOffer{
				ID: flexoffer.ID(nextID), EarliestStart: 40, LatestStart: 56,
				AssignBefore: 32, Profile: p,
			}
			nextID++
			if d := brp.AcceptOffer(f, fmt.Sprintf("p%d", i)); !d.Accept {
				log.Fatalf("offer %d rejected: %s", f.ID, d.Reason)
			}
		}
		rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		skipped := "-"
		if len(rep.SkippedOwners) > 0 {
			skipped = strings.Join(rep.SkippedOwners, ",")
		}
		fmt.Printf("%-6d %-10d %-9d %-8s %.2f\n",
			round, rep.MicroSchedules, rep.NotifyFailures, skipped,
			float64(rep.DeliveryTime)/float64(time.Millisecond))
	}
	if got := brp.Breaker().State("p3"); got != comm.BreakerOpen {
		log.Fatalf("p3 circuit = %v, want open", got)
	}
}

// forecastExp benchmarks the fleet-scale forecast service: per-series
// models maintained through the sharded registry's batched update path,
// with parameter re-estimation either inline in the update path (the
// pre-registry behaviour, the baseline) or on the bounded background
// pool. Part one contrasts the two refit modes at a modest fleet size —
// the async pool keeps the p99 batch-update latency flat while the
// synchronous baseline stalls whole batches behind FitHWT. Part two
// runs the async service at the full -fcast-series scale and reports
// update throughput, batch latency percentiles, refit throughput and
// staleness.
func forecastExp(series int, seed int64) {
	fmt.Println("== Forecast fleet: sharded registry, batched updates, async re-estimation ==")
	const (
		period      = 24 // hourly resolution, daily season (keeps refits frequent)
		obsPerRound = 4  // observations per series per batch round
		chunk       = 64 // series per UpdateMeasurements batch
		warmRounds  = 9  // 36 observations: exactly the model-creation threshold
		steadyRds   = 24 // 96 further observations: ~2 refit triggers per series
	)
	workers := runtime.GOMAXPROCS(0)
	newCfg := func(syncRefit bool) forecast.RegistryConfig {
		return forecast.RegistryConfig{
			Periods:         []int{period},
			MinObservations: period + period/2,
			MaxHistory:      4 * period,
			FitCfg:          forecast.FitConfig{Options: optimize.Options{MaxEvaluations: 60, Seed: seed}},
			NewStrategy:     func() forecast.EvaluationStrategy { return &forecast.TimeBased{Every: 2 * period} },
			Workers:         workers,
			QueueDepth:      4096,
			SyncRefit:       syncRefit,
		}
	}

	// runPhase feeds rounds x obsPerRound observations into every series
	// from GOMAXPROCS concurrent feeders (each owning a contiguous
	// series range) and returns the throughput and per-batch latencies.
	actors := make([]string, series)
	for i := range actors {
		actors[i] = fmt.Sprintf("a%06d", i)
	}
	runPhase := func(reg *forecast.Registry, nSeries, rounds, tBase int) (updPerSec float64, lats []time.Duration) {
		feeders := workers
		if feeders > nSeries {
			feeders = nSeries
		}
		per := (nSeries + feeders - 1) / feeders
		latParts := make([][]time.Duration, feeders)
		var wg sync.WaitGroup
		t0 := time.Now()
		for f := 0; f < feeders; f++ {
			lo, hi := f*per, min((f+1)*per, nSeries)
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(f, lo, hi int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(f)))
				batch := make([]store.Measurement, 0, chunk*obsPerRound)
				var lat []time.Duration
				for r := 0; r < rounds; r++ {
					for s := lo; s < hi; s += chunk {
						batch = batch[:0]
						for i := s; i < min(s+chunk, hi); i++ {
							for j := 0; j < obsPerRound; j++ {
								t := tBase + r*obsPerRound + j
								v := 10 + 5*math.Sin(2*math.Pi*float64(t%period)/period) + rng.NormFloat64()
								batch = append(batch, store.Measurement{
									Actor: actors[i], EnergyType: "elec",
									Slot: flexoffer.Time(t), KWh: v,
								})
							}
						}
						b0 := time.Now()
						reg.UpdateMeasurements(batch)
						lat = append(lat, time.Since(b0))
					}
				}
				latParts[f] = lat
			}(f, lo, hi)
		}
		wg.Wait()
		wall := time.Since(t0)
		for _, p := range latParts {
			lats = append(lats, p...)
		}
		return float64(nSeries*rounds*obsPerRound) / wall.Seconds(), lats
	}
	pct := func(lats []time.Duration, q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[int(q*float64(len(sorted)-1))]
	}

	// -- part one: synchronous-refit baseline vs async pool ------------
	baseline := min(series, 2000)
	fmt.Printf("-- refit modes at %d series (batch = %d series x %d obs) --\n", baseline, chunk, obsPerRound)
	fmt.Println("mode        upd/s       batch_p50   batch_p99   batch_max   refits")
	for _, mode := range []struct {
		name string
		sync bool
	}{{"sync", true}, {fmt.Sprintf("async(x%d)", workers), false}} {
		reg, err := forecast.NewRegistry(newCfg(mode.sync))
		if err != nil {
			log.Fatal(err)
		}
		runPhase(reg, baseline, warmRounds, 0) // create all models
		rate, lats := runPhase(reg, baseline, steadyRds, warmRounds*obsPerRound)
		_ = reg.Quiesce(30 * time.Second)
		st := reg.Stats()
		refits := st.RefitsDone
		if mode.sync {
			refits = st.SyncRefits
		}
		fmt.Printf("%-11s %-11.0f %-11v %-11v %-11v %d\n",
			mode.name, rate,
			pct(lats, 0.50).Round(time.Microsecond), pct(lats, 0.99).Round(time.Microsecond),
			pct(lats, 1.0).Round(time.Microsecond), refits)
		reg.Close()
	}

	// -- part two: the full fleet, async ------------------------------
	fmt.Printf("-- full fleet: %d series, %d refit workers --\n", series, workers)
	reg, err := forecast.NewRegistry(newCfg(false))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	rate, lats := runPhase(reg, series, warmRounds, 0)
	warmWall := time.Since(t0)
	st := reg.Stats()
	fmt.Printf("warm-up: %d models created in %.1fs (%.0f upd/s, batch_p99 %v)\n",
		st.Models, warmWall.Seconds(), rate, pct(lats, 0.99).Round(time.Microsecond))
	rate, lats = runPhase(reg, series, steadyRds, warmRounds*obsPerRound)
	st = reg.Stats()
	fmt.Printf("steady-state: %.0f upd/s  batch_p50 %v  batch_p99 %v  (refits running: %d done / %d enqueued, queue %d/%d)\n",
		rate, pct(lats, 0.50).Round(time.Microsecond), pct(lats, 0.99).Round(time.Microsecond),
		st.RefitsDone, st.RefitsEnqueued, st.QueueDepth, st.QueueCap)
	fmt.Printf("refits: p50 %v  p99 %v  failed %d  queue_overflows %d  staleness max %d / mean %.0f obs\n",
		st.RefitP50.Round(time.Microsecond), st.RefitP99.Round(time.Microsecond),
		st.RefitsFailed, st.QueueOverflows, st.MaxStaleness, st.MeanStaleness)
	one, ok := reg.Forecast(actors[series/2], "elec", period)
	if !ok || len(one) != period {
		log.Fatalf("mid-fleet series has no forecast (ok=%v, len=%d)", ok, len(one))
	}
	reg.Close()
}

// aggExp loads the P3 pipeline with up to maxOffers flex-offers, then
// runs churn cycles (0.1%, 1% and 10% of the population replaced per
// cycle, each cycle one accumulate-then-process batch) and reports the
// per-cycle incremental cost against the from-scratch bulk-load time —
// the speedup of the batched-delta engine over rebuilding every cycle.
func aggExp(maxOffers int, seed int64) {
	fmt.Println("== Agg engine: batched deltas, O(changed) churn cycles ==")
	sizes := []int{}
	for n := 100000; n <= maxOffers; n *= 10 {
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != maxOffers {
		sizes = append(sizes, maxOffers)
	}
	workers := runtime.GOMAXPROCS(0)
	fmt.Println("offers   workers  churn%  batch    cycle_ms   changed/cyc  scratch_ms  speedup  aggs   ratio   loss/offer")
	for _, n := range sizes {
		all := workload.GenerateFlexOffers(workload.FlexOfferConfig{Count: n, Seed: seed})
		workerRuns := []int{1}
		if workers > 1 {
			workerRuns = append(workerRuns, workers)
		}
		for _, nw := range workerRuns {
			pipe := agg.NewPipeline(agg.ParamsP3, agg.BinPackerOptions{})
			pipe.Workers = nw
			live := make(map[flexoffer.ID]*flexoffer.FlexOffer, n)
			var nextID flexoffer.ID
			ups := make([]agg.FlexOfferUpdate, n)
			for i, f := range all {
				ups[i] = agg.FlexOfferUpdate{Kind: agg.Insert, Offer: f}
				live[f.ID] = f
				if f.ID > nextID {
					nextID = f.ID
				}
			}
			t0 := time.Now()
			if err := pipe.Accumulate(ups...); err != nil {
				log.Fatal(err)
			}
			pipe.Process()
			scratch := time.Since(t0)

			rng := rand.New(rand.NewSource(seed + int64(n) + int64(nw)))
			ids := make([]flexoffer.ID, 0, len(live))
			for _, pct := range []float64{0.1, 1, 10} {
				k := int(float64(n) * pct / 100)
				if k < 1 {
					k = 1
				}
				const cycles = 5
				var total time.Duration
				changed := 0
				for c := 0; c < cycles; c++ {
					ids = ids[:0]
					for id := range live {
						ids = append(ids, id)
					}
					batch := make([]agg.FlexOfferUpdate, 0, 2*k)
					for j := 0; j < k; j++ {
						id := ids[rng.Intn(len(ids))]
						f, ok := live[id]
						if !ok { // already churned this cycle
							continue
						}
						delete(live, id)
						batch = append(batch, agg.FlexOfferUpdate{Kind: agg.Delete, Offer: f})
						nf := *f
						nextID++
						nf.ID = nextID
						live[nf.ID] = &nf
						batch = append(batch, agg.FlexOfferUpdate{Kind: agg.Insert, Offer: &nf})
					}
					if err := pipe.Accumulate(batch...); err != nil {
						log.Fatal(err)
					}
					t0 := time.Now()
					outs := pipe.Process()
					total += time.Since(t0)
					changed += len(outs)
				}
				m := pipe.CurrentMetrics()
				cycleMS := total.Seconds() * 1000 / cycles
				scratchMS := scratch.Seconds() * 1000
				fmt.Printf("%-8d %-8d %-7.1f %-8d %-10.2f %-12d %-11.0f %-8.1f %-6d %-7.2f %.3f\n",
					n, nw, pct, k, cycleMS, changed/cycles, scratchMS,
					scratchMS/cycleMS, m.Aggregates, m.CompressionRatio, m.LossPerOffer)
			}
		}
	}
}

// chaosExp sweeps the fault injector's drop rate over a seeded stream
// of idempotent requests, bare versus wrapped in the retry policy. The
// bare rows show the raw fault rate on delivered calls; the retry rows
// show how much of it the jittered-backoff policy absorbs, what the
// retries cost in wall time, and how many calls still exhaust every
// attempt — the residual the simulator's re-offer path has to cover.
func chaosExp(seed int64) {
	fmt.Println("== Chaos: drop-rate sweep, bare transport vs retry policy ==")
	const ops = 2000
	fmt.Printf("%d idempotent requests per cell (3 attempts, backoff 1ms..8ms, seeded)\n", ops)
	fmt.Println("drop   mode    ok      ok%      retries  exhausted  backoff_ms  wall_ms")
	for _, drop := range []float64{0.05, 0.1, 0.2, 0.3} {
		for _, withRetry := range []bool{false, true} {
			bus := comm.NewBus()
			bus.Register("brp", func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
				reply, err := comm.NewEnvelope(comm.MsgPong, "brp", env.From, nil)
				return &reply, err
			})
			inj := chaos.NewInjector(bus, uint64(seed)^uint64(drop*1000), chaos.Faults{DropFrac: drop})
			var tr comm.Transport = inj
			var retry *comm.Retry
			if withRetry {
				retry = comm.NewRetry(inj, comm.RetryConfig{
					Seed:        seed,
					BaseBackoff: time.Millisecond,
					MaxBackoff:  8 * time.Millisecond,
				})
				tr = retry
			}
			client := comm.NewClient("bench", tr)
			ok := 0
			t0 := time.Now()
			for i := 0; i < ops; i++ {
				if err := client.Ping(context.Background(), "brp"); err == nil {
					ok++
				}
			}
			wall := time.Since(t0)
			mode := "bare"
			var rs comm.RetryStats
			if withRetry {
				mode = "retry"
				rs = retry.Stats()
			}
			fmt.Printf("%-6.2f %-7s %-7d %-8.1f %-8d %-10d %-11.1f %.1f\n",
				drop, mode, ok, 100*float64(ok)/ops,
				rs.Retries, rs.Exhausted,
				float64(rs.Backoff)/float64(time.Millisecond),
				float64(wall)/float64(time.Millisecond))
		}
	}
}

// settleExp drives the auditable settlement stack across the market's
// price regimes: per regime, `lines` scheduled flex-offers settle
// through the hash-chained ledger (batched appends, acked before the
// offer transitions), the full chain is re-verified, and a deliberately
// corrupted copy must fail verification at the flipped entry. A closing
// table sweeps multi-round negotiation sessions under each regime's
// quote movement.
func settleExp(lines int, seed int64) {
	fmt.Println("== Settlement: hash-chained ledger across price regimes ==")
	fmt.Printf("%d settlement lines per regime (~10%% deviating), batch 256, fsync flush\n", lines)
	fmt.Println("regime              lines/s    entries   append_p50  append_p99  verify_ms  verify_ent/s")

	var lastPath string
	for _, regime := range market.Regimes() {
		prices, err := market.Scenario(market.ScenarioConfig{Regime: regime, Days: 7, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		m, err := market.NewDayAhead(market.Config{Prices: prices})
		if err != nil {
			log.Fatal(err)
		}

		dir, err := os.MkdirTemp("", "mirabel-bench-settle")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "ledger.log")
		led, err := settle.OpenLedger(settle.LedgerConfig{Path: path})
		if err != nil {
			log.Fatal(err)
		}

		// Scheduled offers with ~10% of executions deviating beyond
		// tolerance, so the chain carries penalty entries priced off the
		// regime's imbalance curve alongside lines and profit shares.
		st := store.NewInMemory()
		rng := rand.New(rand.NewSource(seed))
		metered := make(map[flexoffer.ID][]float64)
		horizon := flexoffer.Time(prices.Len() * flexoffer.SlotsPerHour)
		for i := 1; i <= lines; i++ {
			id := flexoffer.ID(i)
			energy := []float64{2 + 4*rng.Float64(), 2 + 4*rng.Float64()}
			rec := store.OfferRecord{
				Offer: &flexoffer.FlexOffer{
					ID: id, Prosumer: fmt.Sprintf("p%d", i%1024), CostPerKWh: 0.02,
				},
				Owner:    fmt.Sprintf("p%d", i%1024),
				State:    store.OfferScheduled,
				Schedule: &flexoffer.Schedule{OfferID: id, Start: flexoffer.Time(rng.Intn(int(horizon))), Energy: energy},
			}
			if err := st.PutOffer(rec); err != nil {
				log.Fatal(err)
			}
			if rng.Float64() < 0.1 {
				metered[id] = []float64{energy[0] * 1.3, energy[1] * 1.3}
			}
		}

		t0 := time.Now()
		rep, err := settle.Run(settle.RunConfig{
			Store:   st,
			Ledger:  led,
			Metered: metered,
			Settle: settle.Config{
				ImbalancePrice:    m.ImbalancePrice,
				ShareFrac:         0.3,
				RealizedProfitEUR: 0.02 * float64(lines),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		settleDur := time.Since(t0)
		if len(rep.Lines) != lines {
			log.Fatalf("settled %d lines, want %d", len(rep.Lines), lines)
		}

		t1 := time.Now()
		res, err := led.Verify()
		if err != nil {
			log.Fatal(err)
		}
		verifyDur := time.Since(t1)
		if !res.OK {
			log.Fatalf("%s: chain verification failed at seq %d: %s", regime, res.FirstBadSeq, res.Reason)
		}
		stats := led.Stats()
		fmt.Printf("%-19s %-10.0f %-9d %-11v %-11v %-10.1f %.0f\n",
			regime,
			float64(lines)/settleDur.Seconds(),
			stats.Entries,
			stats.AppendP50.Round(time.Microsecond),
			stats.P99.Round(time.Microsecond),
			float64(verifyDur)/float64(time.Millisecond),
			float64(res.Entries)/verifyDur.Seconds())
		if err := led.Close(); err != nil {
			log.Fatal(err)
		}
		lastPath = path
	}

	// Tamper detection: flip one byte mid-chain in a copy of the last
	// regime's ledger — verification must localize the divergence.
	data, err := os.ReadFile(lastPath)
	if err != nil {
		log.Fatal(err)
	}
	tampered := append([]byte(nil), data...)
	tampered[len(tampered)/2] ^= 0x01
	tamperedPath := lastPath + ".tampered"
	if err := os.WriteFile(tamperedPath, tampered, 0o644); err != nil {
		log.Fatal(err)
	}
	res, err := settle.VerifyFile(tamperedPath)
	if err != nil {
		log.Fatal(err)
	}
	if res.OK {
		log.Fatal("tampered ledger passed verification")
	}
	fmt.Printf("tamper check: flipped 1 byte -> divergence at seq %d (%s), %d entries intact\n",
		res.FirstBadSeq, res.Reason, res.Entries)

	fmt.Println()
	fmt.Println("-- multi-round negotiation under regime price pressure --")
	fmt.Println("regime              accept%  mean_premium  mean_rounds  rejected  expired")
	profile := make([]flexoffer.Slice, 4)
	for i := range profile {
		profile[i] = flexoffer.Slice{EnergyMin: 0, EnergyMax: 5}
	}
	nf := &flexoffer.FlexOffer{
		ID: 1, EarliestStart: 100, LatestStart: 116, AssignBefore: 84, Profile: profile,
	}
	const sessions = 500
	for _, regime := range market.Regimes() {
		prices, err := market.Scenario(market.ScenarioConfig{Regime: regime, Days: 7, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		vl := negotiate.NewValuator()
		base := vl.OfferPrice(nf, 0)
		var accepted, rejected, expired, totalRounds int
		var premiumSum float64
		for s := 0; s < sessions; s++ {
			// Each session starts at a random hour; quotes follow the
			// regime's curve hour by hour from there.
			start := rng.Intn(prices.Len() - 24)
			refMid := prices.Values()[start] / 1000
			if refMid == 0 {
				refMid = 0.001
			}
			sess, err := negotiate.NewSession(negotiate.SessionConfig{
				Valuator:       vl,
				ReservationEUR: base * (0.5 + rng.Float64()),
				RefMid:         refMid,
				Quote: func(round int) float64 {
					return prices.Values()[start+round%24] / 1000
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			res := sess.Run(nf, 0)
			totalRounds += len(res.Rounds)
			switch res.Outcome {
			case negotiate.Accepted:
				accepted++
				premiumSum += res.PremiumEUR
			case negotiate.Rejected:
				rejected++
			case negotiate.Expired:
				expired++
			}
		}
		meanPremium := 0.0
		if accepted > 0 {
			meanPremium = premiumSum / float64(accepted)
		}
		fmt.Printf("%-19s %-8.1f %-13.4f %-12.1f %-9d %d\n",
			regime,
			100*float64(accepted)/sessions,
			meanPremium,
			float64(totalRounds)/sessions,
			rejected, expired)
	}
}
