// mirabel-bench regenerates the paper's evaluation figures (§9) as text
// series: the aggregation experiments (Figure 5a–d), the forecasting
// experiments (Figure 4a–b), the scheduling experiments (Figure 6a–d)
// and the exhaustive optimality probe from §6.
//
// Usage:
//
//	mirabel-bench -exp all                 # everything at default scale
//	mirabel-bench -exp fig5 -maxoffers 800000
//	mirabel-bench -exp fig6 -budget 30s
//	mirabel-bench -exp exhaustive
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/core"
	"mirabel/internal/flexoffer"
	"mirabel/internal/forecast"
	"mirabel/internal/market"
	"mirabel/internal/optimize"
	"mirabel/internal/sched"
	"mirabel/internal/store"
	"mirabel/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mirabel-bench: ")
	exp := flag.String("exp", "all", "experiment: all | fig5a | fig5b | fig5c | fig5d | fig5 | fig4a | fig4b | fig6 | exhaustive | cycle")
	maxOffers := flag.Int("maxoffers", 800000, "largest flex-offer count of the Figure 5 sweep")
	budget := flag.Duration("budget", 10*time.Second, "time budget of the largest Figure 6 instance")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	switch *exp {
	case "all":
		fig5(*maxOffers, *seed)
		fig4a(*seed)
		fig4b(*seed)
		fig6(*budget, *seed)
		exhaustive(*seed)
		cycleExp()
	case "fig5", "fig5a", "fig5b", "fig5c", "fig5d":
		fig5(*maxOffers, *seed)
	case "fig4a":
		fig4a(*seed)
	case "fig4b":
		fig4b(*seed)
	case "fig6":
		fig6(*budget, *seed)
	case "exhaustive":
		exhaustive(*seed)
	case "cycle":
		cycleExp()
	default:
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// fig5 sweeps the flex-offer count for P0–P3 and prints all four panels'
// series: aggregate count (5a), aggregation time (5b), time-flexibility
// loss per offer (5c) and disaggregation vs aggregation time (5d).
func fig5(maxOffers int, seed int64) {
	fmt.Println("== Figure 5: aggregation experiments ==")
	fmt.Println("offers  params  aggregates  ratio   agg_time_s  loss_slots/offer  disagg_time_s  disagg/agg")
	counts := []int{}
	for n := 100000; n <= maxOffers; n += 100000 {
		counts = append(counts, n)
	}
	all := workload.GenerateFlexOffers(workload.FlexOfferConfig{Count: maxOffers, Seed: seed})
	params := []struct {
		name string
		p    agg.Params
	}{{"P0", agg.ParamsP0}, {"P1", agg.ParamsP1}, {"P2", agg.ParamsP2}, {"P3", agg.ParamsP3}}
	for _, n := range counts {
		ups := make([]agg.FlexOfferUpdate, n)
		for i := 0; i < n; i++ {
			ups[i] = agg.FlexOfferUpdate{Kind: agg.Insert, Offer: all[i]}
		}
		for _, pc := range params {
			pipe := agg.NewPipeline(pc.p, agg.BinPackerOptions{})
			t0 := time.Now()
			if _, err := pipe.Apply(ups...); err != nil {
				log.Fatal(err)
			}
			aggTime := time.Since(t0)
			m := pipe.CurrentMetrics()

			// Figure 5d: disaggregate a mid-flexibility schedule of
			// every aggregate.
			scheds := make([]*flexoffer.Schedule, 0, m.Aggregates)
			for _, a := range pipe.Aggregates() {
				energy := make([]float64, a.Offer.NumSlices())
				for j, sl := range a.Offer.Profile {
					energy[j] = (sl.EnergyMin + sl.EnergyMax) / 2
				}
				scheds = append(scheds, &flexoffer.Schedule{
					OfferID: a.Offer.ID,
					Start:   a.Offer.EarliestStart + a.Offer.TimeFlexibility()/2,
					Energy:  energy,
				})
			}
			t0 = time.Now()
			if _, err := pipe.Disaggregate(scheds); err != nil {
				log.Fatal(err)
			}
			disaggTime := time.Since(t0)

			fmt.Printf("%-7d %-7s %-11d %-7.2f %-11.3f %-17.3f %-14.3f %.2f\n",
				n, pc.name, m.Aggregates, m.CompressionRatio, aggTime.Seconds(),
				m.LossPerOffer, disaggTime.Seconds(), disaggTime.Seconds()/aggTime.Seconds())
		}
	}
}

// fig4a prints the SMAPE-over-time convergence traces of the three
// global parameter estimators on the HWT model.
func fig4a(seed int64) {
	fmt.Println("== Figure 4a: accuracy vs estimation time (HWT on demand) ==")
	vals := workload.DemandSeries(workload.DemandConfig{Days: 28, Seed: seed}).Values()
	for _, est := range []optimize.Estimator{
		&optimize.RandomRestartNelderMead{},
		&optimize.SimulatedAnnealing{},
		optimize.RandomSearch{},
	} {
		_, res, err := forecast.FitHWT(vals, []int{48, 336}, forecast.FitConfig{
			Estimator: est,
			Options:   optimize.Options{MaxEvaluations: 1200, Seed: seed + 1, TraceEvery: 60},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s final SMAPE %.5f\n", est.Name(), res.Value)
		for _, tp := range res.Trace {
			fmt.Printf("  t=%-10v evals=%-5d best_smape=%.5f\n", tp.Elapsed.Round(time.Millisecond), tp.Evaluations, tp.Best)
		}
	}
}

// fig4b prints SMAPE against forecast horizon for the demand and wind
// series.
func fig4b(seed int64) {
	fmt.Println("== Figure 4b: accuracy vs forecast horizon ==")
	series := []struct {
		name string
		vals []float64
	}{
		{"demand", workload.DemandSeries(workload.DemandConfig{Days: 42, Seed: seed}).Values()},
		{"wind", workload.WindSeries(workload.WindConfig{Days: 42, Seed: seed}).Values()},
	}
	horizons := []int{1, 6, 12, 24, 48, 96, 144, 192} // up to 4 days
	fmt.Printf("%-8s", "series")
	for _, h := range horizons {
		fmt.Printf("h=%-7d", h)
	}
	fmt.Println()
	for _, s := range series {
		split := len(s.vals) - 4*336
		fmt.Printf("%-8s", s.name)
		for _, h := range horizons {
			m, _, err := forecast.FitHWT(s.vals[:split], []int{48, 336}, forecast.FitConfig{
				Options: optimize.Options{MaxEvaluations: 300, Seed: seed + 2},
			})
			if err != nil {
				log.Fatal(err)
			}
			smape, err := forecast.HorizonSMAPE(m, s.vals[split:], h)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9.4f", smape)
		}
		fmt.Println()
	}
}

// fig6 prints the cost-over-time traces of the evolutionary algorithm
// and the randomized greedy search on 10/100/1000/10000 aggregated
// flex-offers.
func fig6(maxBudget time.Duration, seed int64) {
	fmt.Println("== Figure 6: scheduling cost vs time (EA vs GS) ==")
	prices := workload.PriceSeries(workload.PriceConfig{Days: 2, Seed: seed})
	m, err := market.NewDayAhead(market.Config{Prices: prices, CapacityKWh: 2000})
	if err != nil {
		log.Fatal(err)
	}
	sizes := []int{10, 100, 1000, 10000}
	for i, n := range sizes {
		// Budget grows with instance size like the paper's panels
		// (1 s, 5 s, 60 s, 15 min there; scaled down here).
		budget := maxBudget >> (2 * (len(sizes) - 1 - i))
		if budget < 250*time.Millisecond {
			budget = 250 * time.Millisecond
		}
		p, err := sched.BuildScenario(sched.ScenarioConfig{Offers: n, Seed: seed + 42, Market: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %d aggregated flex-offers (budget %v, default cost %.0f EUR, search space %.3g) --\n",
			n, budget, p.BaselineCost(), p.CountSolutions())
		// EA and GS are the paper's two algorithms; HYB is the
		// greedy-seeded hybrid from the research directions.
		for _, s := range []sched.Scheduler{&sched.Evolutionary{}, &sched.RandomizedGreedy{}, &sched.Hybrid{}} {
			res, err := s.Schedule(context.Background(), p, sched.Options{TimeBudget: budget, Seed: seed + 7, TraceEvery: traceStride(n)})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-3s final cost %.1f EUR after %d iterations\n", s.Name(), res.Cost, res.Iterations)
			for _, tp := range sampleTrace(res.Trace, 8) {
				fmt.Printf("   t=%-10v cost=%.1f\n", tp.Elapsed.Round(time.Millisecond), tp.Cost)
			}
		}
	}
}

func traceStride(n int) int {
	if n >= 1000 {
		return 1
	}
	return 10
}

func sampleTrace(trace []sched.TracePoint, k int) []sched.TracePoint {
	if len(trace) <= k {
		return trace
	}
	out := make([]sched.TracePoint, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, trace[i*(len(trace)-1)/(k-1)])
	}
	return out
}

// exhaustive reproduces the §6 optimality probe at a tractable scale:
// enumerate every start combination of a small instance and compare the
// heuristics against the optimum.
func exhaustive(seed int64) {
	fmt.Println("== §6 optimality probe: exhaustive enumeration ==")
	p, err := sched.BuildScenario(sched.ScenarioConfig{Offers: 6, Seed: seed + 3})
	if err != nil {
		log.Fatal(err)
	}
	// Cap the time flexibilities so the space stays enumerable in
	// seconds (the paper's 10-offer probe took three hours for 8.5·10⁸).
	for _, f := range p.Offers {
		if f.TimeFlexibility() > 10 {
			f.LatestStart = f.EarliestStart + 10
		}
	}
	fmt.Printf("6 flex-offers, %.0f start combinations\n", p.CountSolutions())
	x := &sched.Exhaustive{}
	t0 := time.Now()
	opt, err := x.Schedule(context.Background(), p, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal (midpoint energies): %.2f EUR in %v (%d schedules evaluated)\n",
		opt.Cost, time.Since(t0).Round(time.Millisecond), opt.Iterations)
	for _, s := range []sched.Scheduler{&sched.RandomizedGreedy{}, &sched.Evolutionary{}} {
		res, err := s.Schedule(context.Background(), p, sched.Options{TimeBudget: time.Second, Seed: seed + 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s: %.2f EUR (gap to enumerated optimum: %+.2f — negative means the heuristic's free energy choice beats midpoint energies)\n",
			s.Name(), res.Cost, res.Cost-opt.Cost)
	}
}

// cycleExp measures the scheduling cycle's deliver phase over a slow
// transport: with the bounded fan-out, delivery wall time tracks the
// slowest prosumer (per wave of the limit), not the sum of all
// prosumer latencies. limit=1 reproduces the old serialized delivery
// as the baseline.
func cycleExp() {
	fmt.Println("== Scheduling cycle: delivery fan-out over a slow transport ==")
	const delay = 5 * time.Millisecond
	fmt.Printf("per-send latency %v\n", delay)
	fmt.Println("prosumers  limit  deliver_wall  x_slowest  serial_sum")
	for _, n := range []int{8, 32, 128} {
		for _, limit := range []int{1, comm.DefaultFanOutLimit} {
			bus := comm.NewBus()
			brp, err := core.NewNode(core.Config{
				Name: "brp", Role: store.RoleBRP,
				Transport:   comm.Latency(bus, delay),
				AggParams:   agg.ParamsP3,
				SchedOpts:   sched.Options{MaxIterations: 1, Seed: 1},
				NotifyLimit: limit,
			})
			if err != nil {
				log.Fatal(err)
			}
			bus.Register("brp", brp.Handler())
			for i := 0; i < n; i++ {
				bus.Register(fmt.Sprintf("p%d", i), func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
					return nil, nil
				})
			}
			for i := 0; i < n; i++ {
				p := make([]flexoffer.Slice, 4)
				for j := range p {
					p[j] = flexoffer.Slice{EnergyMin: 0, EnergyMax: 5}
				}
				f := &flexoffer.FlexOffer{
					ID: flexoffer.ID(i + 1), EarliestStart: 40, LatestStart: 56,
					AssignBefore: 32, Profile: p,
				}
				if d := brp.AcceptOffer(f, fmt.Sprintf("p%d", i)); !d.Accept {
					log.Fatalf("offer %d rejected: %s", i+1, d.Reason)
				}
			}
			rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			if rep.NotifyFailures != 0 {
				log.Fatalf("%d prosumers unreachable", rep.NotifyFailures)
			}
			fmt.Printf("%-10d %-6d %-13v %-10.1f %v\n",
				n, limit, rep.DeliveryTime.Round(100*time.Microsecond),
				float64(rep.DeliveryTime)/float64(delay), time.Duration(n)*delay)
		}
	}
}
