// mirabel-node runs a single LEDMS node as a network daemon: it serves
// its role (prosumer, brp or tso) over TCP with a durable store on disk.
// Small deployments wire nodes together with -route flags.
//
// A two-node session:
//
//	mirabel-node -name brp1 -role brp -listen 127.0.0.1:7701 -data /tmp/brp1 &
//	mirabel-node -name p1 -role prosumer -parent brp1 \
//	    -route brp1=127.0.0.1:7701 -listen 127.0.0.1:7702 -data /tmp/p1 \
//	    -demo-offer
//
// The prosumer's -demo-offer submits one EV-style flex-offer and prints
// the decision, exercising negotiation over the wire.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/core"
	"mirabel/internal/flexoffer"
	"mirabel/internal/forecast"
	"mirabel/internal/ingest"
	"mirabel/internal/sched"
	"mirabel/internal/settle"
	"mirabel/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mirabel-node: ")
	var (
		name      = flag.String("name", "", "node name (endpoint id)")
		role      = flag.String("role", "", "prosumer | brp | tso")
		parent    = flag.String("parent", "", "parent node name")
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		dataDir   = flag.String("data", "", "durable store directory (empty: in-memory)")
		fsync     = flag.String("fsync", "flush", "WAL fsync policy: flush | always | interval")
		fsyncIvl  = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync cadence for -fsync interval")
		retain    = flag.Int64("retain-slots", 0, "measurement retention window in slots (0: keep forever)")
		retainIvl = flag.Duration("retain-every", time.Minute, "how often the retention sweep runs")
		routes    = flag.String("route", "", "comma-separated name=addr routes to peers")
		schedWrk  = flag.Int("sched-workers", 0, "parallel portfolio workers for the scheduling search (0/1: single-threaded)")
		aggWrk    = flag.Int("agg-workers", 0, "parallel per-aggregate workers for batched aggregation (0/1: single-threaded)")
		ingestQ   = flag.Int("ingest-queue", 0, "async ingest queue depth in events (0: synchronous intake; needs -data)")
		ingestPol = flag.String("ingest-policy", "block", "ingest backpressure policy when the queue is full: block | shed | defer")
		ingestCmp = flag.Int64("ingest-compact", 0, "ingest journal compaction threshold in bytes (0: compact only on restart)")
		fcShards  = flag.Int("fcast-shards", 0, "forecast registry stripe count (0: no per-series forecast service)")
		fcWorkers = flag.Int("fcast-workers", 2, "background re-estimation workers for the forecast registry")
		ledgerDir = flag.String("ledger-dir", "", "settlement ledger directory (empty: -data if set, else no ledger)")
		ledgerFs  = flag.String("ledger-fsync", "flush", "ledger group-commit fsync policy: flush | always | interval")
		brkWindow = flag.Int("breaker-window", 0, "circuit-breaker outcome window per destination (0: no breaker)")
		brkRate   = flag.Float64("breaker-rate", 0.5, "failure rate over the window that opens a destination's circuit")
		brkCool   = flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open trial")
		retryMax  = flag.Int("retry-attempts", 2, "max attempts per outbound call (1: no retries)")
		retryBase = flag.Duration("retry-backoff", 25*time.Millisecond, "base backoff before the second retry (the first retry of a provably-unsent call is immediate)")
		retryCap  = flag.Duration("retry-backoff-max", time.Second, "exponential backoff ceiling")
		poolSize  = flag.Int("pool", comm.DefaultPoolSize, "pipelined TCP connections pooled per peer")
		demoOffer = flag.Bool("demo-offer", false, "submit one demo flex-offer to the parent and exit")
		pingPeer  = flag.String("ping", "", "ping the named peer over the typed client and exit")
		verbose   = flag.Bool("v", false, "log every handled message")
	)
	flag.Parse()
	if *name == "" || *role == "" {
		flag.Usage()
		os.Exit(2)
	}

	var st *store.Store
	if *dataDir != "" {
		var opts []store.Option
		switch *fsync {
		case "flush":
		case "always":
			opts = append(opts, store.WithSyncPolicy(store.SyncAlways))
		case "interval":
			opts = append(opts, store.WithSyncInterval(*fsyncIvl))
		default:
			log.Fatalf("unknown -fsync policy %q (want flush | always | interval)", *fsync)
		}
		var err error
		st, err = store.Open(*dataDir, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}()
	}

	client := comm.NewTCPClient(*name, comm.WithPoolSize(*poolSize))
	defer client.Close()
	defer func() {
		// The transport's lifetime counters tell an operator whether the
		// node kept its peers on warm pooled connections (reuses ≫
		// dials) or thrashed redials.
		st := client.Stats()
		log.Printf("transport: dials=%d reuses=%d requests=%d sends=%d in_flight=%d",
			st.Dials, st.Reuses, st.Requests, st.Sends, st.InFlight)
	}()
	if *routes != "" {
		for _, r := range strings.Split(*routes, ",") {
			parts := strings.SplitN(r, "=", 2)
			if len(parts) != 2 {
				log.Fatalf("bad -route entry %q (want name=addr)", r)
			}
			client.SetRoute(parts[0], parts[1])
		}
	}

	var mw []comm.Middleware
	if *verbose {
		mw = append(mw, comm.Logging(log.Printf))
	}
	cfg := core.Config{
		Name:         *name,
		Role:         store.Role(*role),
		Parent:       *parent,
		Transport:    client,
		Store:        st,
		AggParams:    agg.ParamsP3,
		SchedOpts:    sched.Options{TimeBudget: 2 * time.Second},
		SchedWorkers: *schedWrk,
		AggWorkers:   *aggWrk,
		Middleware:   mw,
	}
	if *ingestQ > 0 {
		policy, err := ingest.ParsePolicy(*ingestPol)
		if err != nil {
			log.Fatal(err)
		}
		ic := &ingest.Config{Queue: *ingestQ, Policy: policy, CompactBytes: *ingestCmp}
		if *dataDir != "" {
			// The ingest journal shares the store's directory and fsync
			// policy: an ack is as durable as a store commit.
			ic.Path = filepath.Join(*dataDir, "ingest.log")
			switch *fsync {
			case "always":
				ic.Sync = store.SyncAlways
			case "interval":
				ic.Sync = store.SyncInterval
				ic.SyncInterval = *fsyncIvl
			}
		} else if policy == ingest.PolicyDefer {
			log.Fatal("-ingest-policy defer needs a durable journal: set -data")
		}
		cfg.Ingest = ic
	}
	if *fcShards > 0 {
		cfg.Forecasting = &forecast.RegistryConfig{
			Shards:  *fcShards,
			Workers: *fcWorkers,
		}
	}
	if *brkWindow > 0 {
		cfg.Breaker = &comm.BreakerConfig{
			Window:      *brkWindow,
			FailureRate: *brkRate,
			Cooldown:    *brkCool,
		}
	}
	if *retryMax > 1 {
		// The retry policy (not the TCP client) owns re-attempts; the
		// default of 2 preserves the historical one-extra-dial heal for
		// stale pooled connections.
		cfg.Retry = &comm.RetryConfig{
			MaxAttempts: *retryMax,
			BaseBackoff: *retryBase,
			MaxBackoff:  *retryCap,
		}
	}
	if dir := *ledgerDir; dir != "" || *dataDir != "" {
		if dir == "" {
			// The settlement ledger defaults into the store's directory:
			// a durable node settles durably.
			dir = *dataDir
		}
		sc := &settle.LedgerConfig{Path: filepath.Join(dir, "ledger.log")}
		switch *ledgerFs {
		case "flush":
		case "always":
			sc.Sync = store.SyncAlways
		case "interval":
			sc.Sync = store.SyncInterval
			sc.SyncInterval = *fsyncIvl
		default:
			log.Fatalf("unknown -ledger-fsync policy %q (want flush | always | interval)", *ledgerFs)
		}
		cfg.Settlement = sc
	}
	node, err := core.NewNode(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := node.Close(); err != nil {
			log.Printf("node close: %v", err)
		}
		if rs, ok := node.RetryStats(); ok {
			log.Printf("retry: calls=%d retries=%d short_circuits=%d exhausted=%d non_retryable=%d backoff=%v",
				rs.Calls, rs.Retries, rs.ShortCircuits, rs.Exhausted, rs.NonRetryable, rs.Backoff)
		}
		if st, ok := node.IngestStats(); ok {
			log.Printf("ingest: enqueued=%d consumed=%d shed=%d deferred=%d batches=%d mean_batch=%.1f ack_p99=%v compactions=%d reclaimed_bytes=%d",
				st.Enqueued, st.Consumed, st.Shed, st.Deferred, st.Batches, st.MeanBatch, st.AckP99, st.Compactions, st.CompactedBytes)
		}
		if fs, ok := node.ForecastStats(); ok {
			log.Printf("forecast: series=%d models=%d obs=%d refits=%d/%d failed=%d overflows=%d refit_p99=%v max_staleness=%d",
				fs.Series, fs.Models, fs.Observations, fs.RefitsDone, fs.RefitsEnqueued, fs.RefitsFailed,
				fs.QueueOverflows, fs.RefitP99, fs.MaxStaleness)
		}
		if ls, ok := node.LedgerStats(); ok {
			log.Printf("ledger: entries=%d actors=%d settled=%d appends=%d append_p50=%v append_p99=%v recovered=%d dropped_bytes=%d syncs=%d",
				ls.Entries, ls.Actors, ls.SettledOffers, ls.Appends, ls.AppendP50, ls.P99,
				ls.RecoveredEntries, ls.DroppedBytes, ls.Log.Syncs)
		}
	}()

	srv, err := comm.ListenTCP(*listen, node.Handler())
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("%s (%s) serving on %s", *name, *role, srv.Addr())

	ctx := context.Background()
	if *pingPeer != "" {
		// Typed-client liveness probe against a routed peer.
		rpc := comm.NewClient(*name, client, comm.WithRequestTimeout(3*time.Second))
		t0 := time.Now()
		if err := rpc.Ping(ctx, *pingPeer); err != nil {
			log.Fatalf("ping %s: %v", *pingPeer, err)
		}
		fmt.Printf("ping %s: ok in %v\n", *pingPeer, time.Since(t0).Round(time.Microsecond))
		return
	}

	if *demoOffer {
		profile := make([]flexoffer.Slice, 8)
		for i := range profile {
			profile[i] = flexoffer.Slice{EnergyMin: 0, EnergyMax: 6.25}
		}
		offer := &flexoffer.FlexOffer{
			ID:            flexoffer.ID(time.Now().UnixNano() & 0xffff),
			Prosumer:      *name,
			EarliestStart: 88,
			LatestStart:   116,
			AssignBefore:  86,
			Profile:       profile,
		}
		submitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		decision, err := node.SubmitOfferTo(submitCtx, offer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("demo offer %d: accept=%v premium=%.3f EUR/kWh reason=%q\n",
			offer.ID, decision.Accept, decision.PremiumEUR, decision.Reason)
		return
	}

	// Retention: periodically drop measurements that slid out of the
	// node's window behind its planning time (durable stores only — an
	// in-memory node dies with its data anyway).
	if *retain > 0 && st != nil {
		stopRetention := make(chan struct{})
		defer close(stopRetention)
		go func() {
			t := time.NewTicker(*retainIvl)
			defer t.Stop()
			for {
				select {
				case <-stopRetention:
					return
				case <-t.C:
					before := int64(node.PlanningTime()) - *retain
					if before <= 0 {
						continue
					}
					n, err := st.PruneMeasurements(flexoffer.Time(before))
					if err != nil {
						log.Printf("retention sweep: %v", err)
					} else if n > 0 && *verbose {
						log.Printf("retention sweep: pruned %d measurements before slot %d", n, before)
					}
				}
			}
		}()
	}

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}
