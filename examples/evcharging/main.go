// EV charging: the paper's §2 use scenario, step by step, over the
// in-process transport.
//
// Step 1. A consumer arrives home at 10pm and plugs in the electric car;
// charging must finish by 7am.
// Step 2. The prosumer node issues a flex-offer: 2h profile, earliest
// start 10pm, latest start 5am.
// Step 3. The trader (BRP) node schedules the flex-offer onto the night
// wind surplus and notifies the prosumer.
// Step 4. The consumer's node starts charging at the scheduled time; had
// no schedule arrived by the deadline, it would fall back to charging
// immediately (the open contract).
//
//	go run ./examples/evcharging
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/core"
	"mirabel/internal/flexoffer"
	"mirabel/internal/sched"
	"mirabel/internal/store"
)

func slotClock(slot flexoffer.Time) string {
	minutes := int(slot) * flexoffer.SlotMinutes
	return fmt.Sprintf("%02d:%02d (day %d)", minutes/60%24, minutes%60, minutes/60/24)
}

func main() {
	ctx := context.Background()
	bus := comm.NewBus()

	brp, err := core.NewNode(core.Config{
		Name: "trader", Role: store.RoleBRP, Transport: bus,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{TimeBudget: 200 * time.Millisecond, Seed: 1},
		// Planning horizon: two days, covering tonight and tomorrow
		// morning.
		HorizonSlots: 2 * flexoffer.SlotsPerDay,
	})
	if err != nil {
		log.Fatal(err)
	}
	bus.Register("trader", brp.Handler())

	household, err := core.NewNode(core.Config{
		Name: "household-17", Role: store.RoleProsumer, Parent: "trader", Transport: bus,
	})
	if err != nil {
		log.Fatal(err)
	}
	bus.Register("household-17", household.Handler())

	// Step 0: before issuing anything, the household's typed client
	// checks that the trader is alive.
	rpc := comm.NewClient("household-17", bus, comm.WithRequestTimeout(time.Second))
	if err := rpc.Ping(ctx, "trader"); err != nil {
		log.Fatalf("trader unreachable: %v", err)
	}
	fmt.Println("step 0: trader responds to ping — fabric is up")

	// Step 1+2: the EV needs 8 slots (2 h) × 6.25 kWh = 50 kWh, earliest
	// start 22:00 (slot 88), latest start 05:00 next day (slot 116), so
	// it finishes by 07:00.
	profile := make([]flexoffer.Slice, 8)
	for i := range profile {
		profile[i] = flexoffer.Slice{EnergyMin: 0, EnergyMax: 6.25}
	}
	evOffer := &flexoffer.FlexOffer{
		ID:            1,
		Prosumer:      "household-17",
		EarliestStart: 88,
		LatestStart:   96 + 20,
		AssignBefore:  86, // the BRP must answer before 21:30
		Profile:       profile,
	}
	fmt.Printf("step 2: flex-offer issued — window %s … %s, %g kWh max\n",
		slotClock(evOffer.EarliestStart), slotClock(evOffer.LatestStart), evOffer.MaxTotalEnergy())

	decision, err := household.SubmitOfferTo(ctx, evOffer)
	if err != nil {
		log.Fatal(err)
	}
	if !decision.Accept {
		log.Fatalf("BRP rejected the offer: %s", decision.Reason)
	}
	fmt.Printf("        trader accepted, flexibility premium %.3f EUR/kWh\n", decision.PremiumEUR)

	// Step 3: the trader's weather service forecasts strong night wind
	// between 02:00 and 05:00 (slots 104..116 = day 1): RES surplus.
	baseline := make([]float64, 2*flexoffer.SlotsPerDay)
	for t := range baseline {
		baseline[t] = 2 // mild non-flexible deficit all day
		if t >= 104 && t < 116 {
			baseline[t] = -9 // night wind surplus
		}
	}
	rep, err := brp.RunSchedulingCycle(ctx, 80, core.StaticForecast(baseline[80:]), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 3: trader scheduled %d offer(s); cost %.1f EUR (unscheduled: %.1f EUR)\n",
		rep.MicroSchedules, rep.ScheduleCost, rep.BaselineCost)

	// Step 4: the household receives the schedule (or falls back).
	var schedule *flexoffer.Schedule
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if schedule = household.ScheduleFor(evOffer, 85); schedule != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if schedule == nil {
		// The graceful path: deadline passed without an answer.
		schedule = household.ScheduleFor(evOffer, evOffer.AssignBefore)
		fmt.Println("step 4: no schedule arrived — falling back to immediate charging")
	}
	if err := evOffer.ValidateSchedule(schedule); err != nil {
		log.Fatalf("invalid schedule: %v", err)
	}
	fmt.Printf("step 4: charging starts at %s, ends by %s, %0.f kWh delivered\n",
		slotClock(schedule.Start), slotClock(schedule.Start+flexoffer.Time(len(schedule.Energy))), schedule.TotalEnergy())
	if schedule.Start >= 104 && schedule.Start < 116 {
		fmt.Println("        → the EV charges on the night wind surplus, as in the paper's Figure 3")
	}
}
