// Device fleet: a day in the life of a balance group, driven by
// simulated household appliances instead of a pre-generated dataset.
//
// 200 households with EV chargers, dishwashers, washing machines and
// rooftop PV run through 24 hours: their appliances issue flex-offers as
// cars arrive and dinners finish; the non-flexible base load is metered
// slot by slot. The BRP accepts offers for tomorrow, then schedules them
// onto tomorrow's expected net load.
//
//	go run ./examples/devicefleet
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/core"
	"mirabel/internal/devices"
	"mirabel/internal/flexoffer"
	"mirabel/internal/sched"
	"mirabel/internal/store"
)

func main() {
	fleet := devices.NewFleet(200, 11)

	// Day 0: appliances run, offers accumulate for the next day.
	sim := fleet.Simulate(0, flexoffer.SlotsPerDay)
	fmt.Printf("simulated %d households for one day: %d flex-offers, %.0f kWh non-flexible net load\n",
		len(fleet.Households), len(sim.Offers), sum(sim.NonFlexKWh))

	consumption, production := 0, 0
	for _, f := range sim.Offers {
		if f.MinTotalEnergy() < 0 {
			production++
		} else {
			consumption++
		}
	}
	fmt.Printf("  %d consumption offers (EVs, wet appliances), %d production offers (PV curtailment)\n",
		consumption, production)

	// The BRP plans the window covering the offers (they reach into the
	// early morning of day 2).
	brp, err := core.NewNode(core.Config{
		Name: "brp-fleet", Role: store.RoleBRP,
		AggParams:    agg.ParamsP3,
		SchedOpts:    sched.Options{TimeBudget: time.Second, Seed: 1},
		HorizonSlots: 2 * flexoffer.SlotsPerDay,
	})
	if err != nil {
		log.Fatal(err)
	}
	accepted := 0
	for _, f := range sim.Offers {
		if d := brp.AcceptOffer(f, f.Prosumer); d.Accept {
			accepted++
		}
	}
	fmt.Printf("negotiation accepted %d of %d offers\n", accepted, len(sim.Offers))

	// Tomorrow's baseline: the fleet's own base-load shape (persistence
	// forecast) minus a windy night.
	baseline := make([]float64, 2*flexoffer.SlotsPerDay)
	for t := range baseline {
		baseline[t] = sim.NonFlexKWh[t%flexoffer.SlotsPerDay]
		if hour := t / flexoffer.SlotsPerHour % 24; hour < 6 {
			baseline[t] -= 60 // night wind surplus to soak up
		}
	}
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, core.StaticForecast(baseline), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle: %d offers → %d aggregates → cost %.0f EUR (default %.0f EUR, %.0f%% saved)\n",
		rep.Offers, rep.Aggregates, rep.ScheduleCost, rep.BaselineCost,
		100*(1-rep.ScheduleCost/rep.BaselineCost))
	fmt.Printf("%d micro schedules returned to the households\n", rep.MicroSchedules)
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}
