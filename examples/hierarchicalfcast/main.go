// Hierarchical forecasting: the advisor component chooses where in the
// TSO → BRP → prosumer tree to place forecast models (paper §5,
// "Hierarchical Forecasting"): regular balance groups are served by a
// single ancestor model plus share-weight disaggregation; erratic groups
// get their own models — trading estimation runtime against accuracy.
//
//	go run ./examples/hierarchicalfcast
package main

import (
	"fmt"
	"log"
	"sort"

	"mirabel/internal/forecast"
	"mirabel/internal/workload"
)

func main() {
	const days = 14

	// Eight prosumer groups under two BRPs under one TSO. Groups differ
	// in scale and regularity; group "factory-shift" is deliberately
	// erratic (irregular industrial load).
	mkLeaf := func(name string, seed int64, base float64, noise float64) *forecast.HierNode {
		s := workload.DemandSeries(workload.DemandConfig{Days: days, Seed: seed, BaseMW: base, NoiseFrac: noise})
		return &forecast.HierNode{Name: name, Series: s}
	}
	leavesA := []*forecast.HierNode{
		mkLeaf("suburb-a", 1, 120, 0.01),
		mkLeaf("suburb-b", 2, 90, 0.01),
		mkLeaf("campus", 3, 60, 0.02),
		mkLeaf("factory-shift", 4, 150, 0.25), // erratic
	}
	leavesB := []*forecast.HierNode{
		mkLeaf("old-town", 5, 110, 0.01),
		mkLeaf("harbour", 6, 70, 0.02),
		mkLeaf("suburb-c", 7, 95, 0.01),
		mkLeaf("suburb-d", 8, 85, 0.01),
	}
	brpA, err := forecast.SumChildren("brp-a", leavesA...)
	if err != nil {
		log.Fatal(err)
	}
	brpB, err := forecast.SumChildren("brp-b", leavesB...)
	if err != nil {
		log.Fatal(err)
	}
	tso, err := forecast.SumChildren("tso", brpA, brpB)
	if err != nil {
		log.Fatal(err)
	}

	for _, maxSMAPE := range []float64{0.10, 0.04, 0.02} {
		placement, err := forecast.Advise(tso, forecast.AdvisorConfig{
			MaxSMAPE: maxSMAPE,
			Periods:  []int{48},
			Horizon:  4, // 2 hours ahead
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("accuracy constraint SMAPE ≤ %.0f%%: %d models\n", maxSMAPE*100, placement.NumModels())
		names := make([]string, 0, len(placement.Models))
		for name := range placement.Models {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			marker := "disaggregated from ancestor"
			if placement.Models[name] {
				marker = "OWN MODEL"
			}
			fmt.Printf("  %-14s %-28s (evaluated SMAPE %.4f)\n", name, marker, placement.SMAPE[name])
		}
	}

	// Sanity: the aggregate really is the sum of the leaves.
	var leafSum float64
	for _, l := range append(leavesA, leavesB...) {
		leafSum += l.Series.At(0)
	}
	if diff := leafSum - tso.Series.At(0); diff > 1e-9 || diff < -1e-9 {
		log.Fatalf("hierarchy inconsistent: leaf sum %g != tso %g", leafSum, tso.Series.At(0))
	}
	fmt.Println("hierarchy consistency verified: TSO series equals the sum of all prosumer groups")
}
