// Quickstart: the MIRABEL pipeline in one file.
//
// A BRP receives 5 000 micro flex-offers, aggregates them into macro
// flex-offers (group-builder → n-to-1 aggregator), schedules the macro
// flex-offers against a renewable surplus, disaggregates the schedule
// back into one valid schedule per micro flex-offer, and verifies every
// constraint.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/flexoffer"
	"mirabel/internal/sched"
	"mirabel/internal/workload"
)

func main() {
	// 1. A day of micro flex-offers from household devices.
	offers := workload.GenerateFlexOffers(workload.FlexOfferConfig{
		Count:       5000,
		HorizonDays: 1,
		Seed:        42,
	})
	fmt.Printf("generated %d micro flex-offers\n", len(offers))

	// 2. Aggregate with the P3 thresholds (2h start-after and
	// time-flexibility tolerance).
	pipeline := agg.NewPipeline(agg.ParamsP3, agg.BinPackerOptions{})
	updates := make([]agg.FlexOfferUpdate, len(offers))
	for i, f := range offers {
		updates[i] = agg.FlexOfferUpdate{Kind: agg.Insert, Offer: f}
	}
	t0 := time.Now()
	if _, err := pipeline.Apply(updates...); err != nil {
		log.Fatal(err)
	}
	m := pipeline.CurrentMetrics()
	fmt.Printf("aggregated to %d macro flex-offers in %v (compression %.1fx, flexibility loss %.2f slots/offer)\n",
		m.Aggregates, time.Since(t0).Round(time.Millisecond), m.CompressionRatio, m.LossPerOffer)

	// 3. Schedule the macro flex-offers against a baseline with a
	// renewable surplus at night and midday.
	aggregates := pipeline.Aggregates()
	macro := make([]*flexoffer.FlexOffer, 0, len(aggregates))
	horizon := 2 * flexoffer.SlotsPerDay // offers may run into the next morning
	var maxEnd flexoffer.Time
	for _, a := range aggregates {
		if a.Offer.LatestEnd() > maxEnd {
			maxEnd = a.Offer.LatestEnd()
		}
		macro = append(macro, a.Offer)
	}
	if int(maxEnd) > horizon {
		horizon = int(maxEnd)
	}

	baseline := make([]float64, horizon)
	prices := make([]float64, horizon)
	for t := range baseline {
		hour := float64(t%flexoffer.SlotsPerDay) / flexoffer.SlotsPerHour
		// Wind at night, sun at midday: surplus to soak up.
		switch {
		case hour < 6:
			baseline[t] = -220
		case hour > 11 && hour < 15:
			baseline[t] = -180
		default:
			baseline[t] = 40
		}
		prices[t] = 0.10
		if hour >= 17 && hour <= 20 {
			prices[t] = 0.25 // evening peak mismatches hurt
		}
	}

	problem := &sched.Problem{
		Start:          0,
		Slots:          horizon,
		Baseline:       baseline,
		ImbalancePrice: prices,
		Offers:         macro,
	}
	fmt.Printf("scheduling %d macro flex-offers (search space: %.3g start combinations)\n",
		len(macro), problem.CountSolutions())

	greedy := &sched.RandomizedGreedy{}
	res, err := greedy.Schedule(context.Background(), problem, sched.Options{TimeBudget: 2 * time.Second, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule cost %.0f EUR vs %.0f EUR unscheduled (%.0f%% saved) after %d greedy restarts\n",
		res.Cost, problem.BaselineCost(), 100*(1-res.Cost/problem.BaselineCost()), res.Iterations)

	// 4. Disaggregate and verify the disaggregation requirement.
	micro, err := pipeline.Disaggregate(problem.Schedules(res.Solution))
	if err != nil {
		log.Fatal(err)
	}
	byID := make(map[flexoffer.ID]*flexoffer.FlexOffer, len(offers))
	for _, f := range offers {
		byID[f.ID] = f
	}
	for _, s := range micro {
		if err := byID[s.OfferID].ValidateSchedule(s); err != nil {
			log.Fatalf("disaggregation violated a constraint: %v", err)
		}
	}
	fmt.Printf("disaggregated into %d micro schedules — every flex-offer constraint satisfied\n", len(micro))
}
