// BRP intra-day balancing: the full LEDMS loop of a trader node.
//
// A balance responsible party forecasts its balance group's demand (HWT
// fitted with Random-Restart Nelder-Mead) and its wind production,
// collects flex-offers from hundreds of prosumers over the in-process
// transport, negotiates prices, aggregates, schedules against the
// forecast with market trading enabled, disaggregates, and reports the
// cost structure plus a profit-sharing settlement.
//
//	go run ./examples/brpbalancing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/core"
	"mirabel/internal/flexoffer"
	"mirabel/internal/forecast"
	"mirabel/internal/market"
	"mirabel/internal/negotiate"
	"mirabel/internal/optimize"
	"mirabel/internal/sched"
	"mirabel/internal/store"
	"mirabel/internal/workload"
)

func main() {
	const (
		days      = 28
		prosumers = 300
	)

	// --- Forecasting -----------------------------------------------------
	// 28 days of history; fit on the first 27, plan day 28.
	demand := workload.DemandSeries(workload.DemandConfig{Days: days, Seed: 3, BaseMW: 400})
	wind := workload.WindSeries(workload.WindConfig{Days: days, Seed: 3, CapacityMW: 260})
	histSlots := (days - 1) * 48

	fitCfg := forecast.FitConfig{
		Estimator: &optimize.RandomRestartNelderMead{},
		Options:   optimize.Options{MaxEvaluations: 400, Seed: 1},
	}
	t0 := time.Now()
	demandModel, demandFit, err := forecast.FitHWT(demand.Values()[:histSlots], []int{48, 336}, fitCfg)
	if err != nil {
		log.Fatal(err)
	}
	windModel, windFit, err := forecast.FitHWT(wind.Values()[:histSlots], []int{48, 336}, fitCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forecast models fitted in %v (demand SMAPE %.4f, wind SMAPE %.4f)\n",
		time.Since(t0).Round(time.Millisecond), demandFit.Value, windFit.Value)

	// The series are half-hourly; the flex-offer grid is 15-minute. Split
	// each half-hour forecast value across its two slots.
	demandFc := expandToSlots(demandModel.Forecast(48))
	windFc := expandToSlots(windModel.Forecast(48))

	// --- Market ----------------------------------------------------------
	prices := workload.PriceSeries(workload.PriceConfig{Days: days + 1, Seed: 2})
	dayAhead, err := market.NewDayAhead(market.Config{Prices: prices, CapacityKWh: 3000})
	if err != nil {
		log.Fatal(err)
	}

	// --- Nodes -----------------------------------------------------------
	ctx := context.Background()
	bus := comm.NewBus()
	valuator := negotiate.NewValuator()
	brp, err := core.NewNode(core.Config{
		Name: "brp-north", Role: store.RoleBRP, Transport: bus,
		AggParams: agg.ParamsP3,
		Valuator:  valuator,
		Scheduler: &sched.RandomizedGreedy{},
		SchedOpts: sched.Options{TimeBudget: 2 * time.Second, Seed: 11},
		Market:    dayAhead,
		// Plan day 28 (slots are counted from the epoch).
		HorizonSlots: flexoffer.SlotsPerDay,
		// Serve MsgForecastRequest queries from the fitted demand model.
		Forecast: core.StaticForecast(demandFc),
	})
	if err != nil {
		log.Fatal(err)
	}
	bus.Register("brp-north", brp.Handler())

	// Prosumer offers for day 28.
	day28 := flexoffer.Time((days - 1) * flexoffer.SlotsPerDay)
	offers := workload.GenerateFlexOffers(workload.FlexOfferConfig{
		Count: prosumers, HorizonDays: 1, Seed: 5,
	})
	accepted, rejected := 0, 0
	for i, f := range offers {
		name := fmt.Sprintf("prosumer-%03d", i)
		p, err := core.NewNode(core.Config{Name: name, Role: store.RoleProsumer, Parent: "brp-north", Transport: bus})
		if err != nil {
			log.Fatal(err)
		}
		bus.Register(name, p.Handler())
		// Move the offer into day 28 and keep it inside the horizon.
		shift := day28 - flexoffer.Time(int(f.EarliestStart)/flexoffer.SlotsPerDay*flexoffer.SlotsPerDay)
		f.EarliestStart += shift
		f.LatestStart += shift
		f.AssignBefore += shift
		if f.LatestEnd() > day28+flexoffer.SlotsPerDay {
			f.LatestStart = day28 + flexoffer.SlotsPerDay - flexoffer.Time(f.NumSlices())
			if f.LatestStart < f.EarliestStart {
				continue // does not fit the day at all
			}
		}
		d, err := p.SubmitOfferTo(ctx, f)
		if err != nil {
			log.Fatal(err)
		}
		if d.Accept {
			accepted++
		} else {
			rejected++
		}
	}
	fmt.Printf("negotiation: %d offers accepted, %d rejected\n", accepted, rejected)

	// Any node can query the BRP's forecast through the typed client —
	// the paper's explicit forecast exchange between nodes.
	rpc := comm.NewClient("analyst", bus, comm.WithRequestTimeout(time.Second))
	fcReply, err := rpc.QueryForecast(ctx, "brp-north", "demand", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forecast query: brp-north expects %.1f MW demand over the next %d slots\n",
		fcReply.Values[0], len(fcReply.Values))

	// --- Scheduling cycle --------------------------------------------------
	imbPrices := make([]float64, flexoffer.SlotsPerDay)
	for t := range imbPrices {
		q := dayAhead.Quote(day28 + flexoffer.Time(t))
		imbPrices[t] = 2.5 * q.BuyEUR // imbalances cost a multiple of spot
	}
	baseline := make([]float64, flexoffer.SlotsPerDay)
	for t := range baseline {
		// MW over 15 min → kWh/4; demand minus wind production.
		baseline[t] = (demandFc[t] - windFc[t]) * 1000 / 4 / 1000 // scale to the group (≈ MWh→kWh/1000 group share)
	}
	rep, err := brp.RunSchedulingCycle(ctx, day28, core.StaticForecast(baseline), nil, imbPrices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle: %d micro offers → %d aggregates, %d expired before scheduling (aggregation %v)\n",
		rep.Offers, rep.Aggregates, rep.Expired, rep.AggregationTime.Round(time.Millisecond))
	fmt.Printf("schedule cost %.1f EUR vs %.1f EUR without flexibility (%.1f%% saved, scheduling %v)\n",
		rep.ScheduleCost, rep.BaselineCost, 100*(1-rep.ScheduleCost/rep.BaselineCost),
		rep.SchedulingTime.Round(time.Millisecond))
	fmt.Printf("%d micro schedules disaggregated and delivered (%d unreachable)\n",
		rep.MicroSchedules, rep.NotifyFailures)

	// --- Settlement ---------------------------------------------------------
	share, err := negotiate.ShareRealizedProfit(rep.BaselineCost, rep.ScheduleCost, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profit sharing: %.1f EUR distributed to prosumers (30%% of realized savings)\n", share)
}

// expandToSlots splits half-hourly values into two 15-minute slots each.
func expandToSlots(halfHourly []float64) []float64 {
	out := make([]float64, 2*len(halfHourly))
	for i, v := range halfHourly {
		out[2*i] = v
		out[2*i+1] = v
	}
	return out
}
