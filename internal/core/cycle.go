package core

import (
	"context"
	"fmt"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/flexoffer"
	"mirabel/internal/market"
	"mirabel/internal/sched"
	"mirabel/internal/store"
)

// CycleReport summarizes one scheduling cycle of a BRP/TSO node.
type CycleReport struct {
	Offers         int     // pending micro flex-offers considered
	Aggregates     int     // macro flex-offers scheduled
	ScheduleCost   float64 // cost of the chosen schedule (EUR)
	BaselineCost   float64 // cost had no flexibility been used
	MicroSchedules int     // disaggregated schedules produced by the plan
	Expired        int     // offers dropped because their deadline passed
	// Reconciled counts planned micro schedules dropped at commit
	// because their offer was scheduled or expired by a concurrent flow
	// while the plan ran outside the lock.
	Reconciled     int
	NotifyFailures int // prosumers that could not be reached
	// SkippedOwners lists prosumers whose delivery was skipped because
	// their circuit breaker is open (graceful degradation: the cycle
	// completed without them instead of stalling on dead peers). They
	// are not counted in NotifyFailures.
	SkippedOwners []string
	// HealedPeers lists destinations whose open circuit was probed back
	// to closed after delivery.
	HealedPeers []string
	// SnapshotsReused counts aggregates whose planning snapshot was the
	// previous cycle's cached copy (unchanged Version) instead of a
	// fresh deep copy.
	SnapshotsReused int
	AggregationTime time.Duration
	SchedulingTime  time.Duration
	DeliveryTime    time.Duration // wall time of the fan-out deliver phase
	// IngestDrainTime is the wall time of the cycle's intake barrier:
	// waiting for the async ingest queue to apply every acked event so
	// the snapshot (and commit's offer transitions) see them.
	IngestDrainTime time.Duration
	// ForecastNotifies counts the continuous forecast query
	// notifications sent when the cycle published the registry's dirty
	// per-series hubs after the intake barrier.
	ForecastNotifies int
}

// RunSchedulingCycle executes the full BRP workflow at planning time now
// for [now, now+horizon): drop expired offers, schedule the aggregates
// against the forecast baseline, disaggregate, store and deliver the
// micro schedules to their owners. Cancelling ctx stops the scheduler
// search and outbound schedule deliveries.
//
// The cycle runs in four phases:
//
//	snapshot — under the node lock: advance the planning time, expire
//	           stale offers and capture an immutable copy of the
//	           current aggregates;
//	plan     — without the lock: build the problem from the forecasts,
//	           run the (possibly long) scheduler search and
//	           disaggregate on the snapshot;
//	commit   — under the lock again: reconcile the planned micro
//	           schedules against the live pending set, persist the
//	           survivors and retire them from the pipeline;
//	deliver  — without the lock: fan the schedules out to their owners
//	           with bounded concurrency (Config.NotifyLimit).
//
// The node lock is therefore never held across transport I/O or the
// scheduler search: offer intake and every other handler stay
// responsive for the whole cycle, and delivery wall time is bounded by
// the slowest prosumer per fan-out wave, not the sum over prosumers —
// on the in-process Bus and over real TCP alike, where the pooled,
// Seq-pipelined client overlaps the wave's requests instead of
// serializing them behind a connection lock.
//
// demandFc and resFc forecast the non-flexible consumption and RES
// production of the balance group; imbalancePrices gives the per-slot
// mismatch penalty (nil = flat 0.15 EUR/kWh).
func (n *Node) RunSchedulingCycle(ctx context.Context, now flexoffer.Time, demandFc, resFc forecaster, imbalancePrices []float64) (*CycleReport, error) {
	if n.cfg.Role == store.RoleProsumer {
		return nil, fmt.Errorf("core: prosumer %s does not schedule", n.cfg.Name)
	}
	n.cycleMu.Lock()
	defer n.cycleMu.Unlock()

	rep := &CycleReport{}
	horizon := n.cfg.HorizonSlots

	// Probe tripped circuits on the way out (whatever phase the cycle
	// ends in): healed peers rejoin before the next cycle without a
	// live delivery paying the trial's latency.
	if n.breaker != nil {
		defer func() {
			pctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
			rep.HealedPeers = n.breaker.ProbeOpen(pctx)
			cancel()
		}()
	}

	// Phase 0: intake barrier. Every offer acked through the async
	// ingest path must be applied before the snapshot, or commit's
	// UpdateOffers would reconcile them away as unknown records.
	if n.ingest != nil {
		t0 := time.Now()
		if err := n.ingest.Drain(ctx); err != nil {
			return nil, fmt.Errorf("core: drain ingest before cycle: %w", err)
		}
		rep.IngestDrainTime = time.Since(t0)
	}
	// Every measurement acked so far has now maintained its series
	// model; fire the continuous per-series forecast queries once per
	// cycle, before planning reads the forecasts.
	if n.fcasts != nil {
		rep.ForecastNotifies = n.fcasts.PublishDirty()
	}

	// Phase 1: snapshot.
	aggregates, err := n.snapshotForPlanning(now, horizon, rep)
	if err != nil {
		return nil, err
	}

	// Phase 2: plan — no lock from here until commit. Forecast sources
	// may be arbitrarily slow (a remote maintainer, a model fit), and
	// the search is budgeted in wall-clock seconds.
	problem := buildProblem(now, horizon, aggregates, demandFc, resFc, imbalancePrices, n.cfg.Market)
	rep.BaselineCost = problem.BaselineCost()
	if len(aggregates) == 0 {
		return rep, nil
	}
	t0 := time.Now()
	res, err := n.cfg.Scheduler.Schedule(ctx, problem, n.cfg.SchedOpts)
	if err != nil {
		return nil, err
	}
	rep.SchedulingTime = time.Since(t0)
	rep.ScheduleCost = res.Cost

	micro, err := disaggregateSnapshots(aggregates, problem.Schedules(res.Solution))
	if err != nil {
		return nil, err
	}
	rep.MicroSchedules = len(micro)

	// Phase 3: commit.
	byOwner, reconciled, err := n.commitMicroSchedules(micro)
	if err != nil {
		return nil, err
	}
	rep.Reconciled = reconciled

	// Phase 4: deliver. Unreachable prosumers are counted, not fatal:
	// their offers will time out and fall back gracefully; owners behind
	// an open circuit are skipped outright (reported, not retried) so a
	// dead peer costs the cycle nothing.
	t0 = time.Now()
	rep.NotifyFailures, rep.SkippedOwners = n.deliver(ctx, byOwner)
	rep.DeliveryTime = time.Since(t0)
	return rep, nil
}

// offerExpiredAt reports whether a pending offer can no longer be
// scheduled by a cycle planning at now for [now, end): its assignment
// deadline passed, its start window closed, or its execution tail
// overflows the horizon. An offer whose EarliestStart lies in the past
// but whose LatestStart does not (EarliestStart < now ≤ LatestStart) is
// still schedulable — the planner clamps its start window at now
// (sched.Problem.StartWindow) — and must NOT be dropped; keying expiry
// on EarliestStart discarded live flexibility prematurely.
func offerExpiredAt(f *flexoffer.FlexOffer, now, end flexoffer.Time) bool {
	return now >= f.AssignBefore || f.LatestStart < now || f.LatestEnd() > end
}

// snapshotForPlanning is the cycle's only pass over mutable state
// before commit. Under the node lock it advances the planning time,
// expires pending offers that are no longer schedulable
// (offerExpiredAt), and captures an immutable snapshot of the
// aggregates for the planner.
func (n *Node) snapshotForPlanning(now flexoffer.Time, horizon int, rep *CycleReport) ([]*agg.Aggregate, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if now > n.planTime {
		n.planTime = now
	}
	end := now + flexoffer.Time(horizon)
	var expired []agg.FlexOfferUpdate
	var expiredIDs []store.OfferUpdate
	for id, f := range n.pending {
		if offerExpiredAt(f, now, end) {
			expired = append(expired, agg.FlexOfferUpdate{Kind: agg.Delete, Offer: f})
			delete(n.pending, id)
			rep.Expired++
			expiredIDs = append(expiredIDs, store.OfferUpdate{ID: id, Mutate: func(rec *store.OfferRecord) {
				rec.State = store.OfferExpired
			}})
		}
	}
	if len(expiredIDs) > 0 {
		// One WAL group for the whole sweep; unknown ids are reported
		// per-update and ignored, like the per-offer path did.
		if _, err := n.store.UpdateOffers(expiredIDs); err != nil {
			return nil, err
		}
	}
	t0 := time.Now()
	if len(expired) > 0 {
		if err := n.pipeline.Accumulate(expired...); err != nil {
			return nil, err
		}
	}
	// One batch runs the whole chain: every offer accepted since the
	// last cycle and every expiry above hit each touched aggregate as a
	// single transaction (at worst one rebuild per aggregate), fanned
	// across Config.AggWorkers.
	n.pipeline.Process()
	live := n.pipeline.Aggregates()
	snaps := make([]*agg.Aggregate, 0, len(live))
	for _, a := range live {
		// A tolerance-built macro can end up with an empty clamped start
		// window (LatestStart < now) or an overflowing tail even when
		// every member individually passes offerExpiredAt — its
		// LatestStart is minEarliestStart + min(member flexibility),
		// which member churn can drag below now. Planning such a macro
		// would fail Problem.Validate and abort the whole cycle; leave
		// it out instead. Its members stay pending and either join a
		// reshaped aggregate in a later cycle or expire individually.
		if a.Offer.LatestStart < now || a.Offer.LatestEnd() > end {
			continue
		}
		s, reused := n.snapshotLocked(a)
		if reused {
			rep.SnapshotsReused++
		}
		snaps = append(snaps, s)
	}
	n.pruneSnapCacheLocked(live)
	rep.AggregationTime = time.Since(t0)
	rep.Offers = len(n.pending)
	rep.Aggregates = len(snaps)
	return snaps, nil
}

// snapshotLocked returns an immutable snapshot of a live aggregate,
// reusing the previous cycle's cached copy when the aggregate's Version
// is unchanged — untouched aggregates cost no deep copy. The returned
// snapshot must be treated as read-only (it is shared across cycles).
// Caller holds mu.
func (n *Node) snapshotLocked(a *agg.Aggregate) (snap *agg.Aggregate, reused bool) {
	if c, ok := n.snapCache[a.Offer.ID]; ok && c.Version == a.Version {
		return c, true
	}
	s := a.Snapshot()
	n.snapCache[a.Offer.ID] = s
	return s, false
}

// pruneSnapCacheLocked drops cached snapshots of aggregates that no
// longer exist. Caller holds mu and passes the current live set.
func (n *Node) pruneSnapCacheLocked(live []*agg.Aggregate) {
	if len(n.snapCache) <= len(live) {
		return
	}
	alive := make(map[flexoffer.ID]bool, len(live))
	for _, a := range live {
		alive[a.Offer.ID] = true
	}
	for id := range n.snapCache {
		if !alive[id] {
			delete(n.snapCache, id)
		}
	}
}

// buildProblem assembles the scheduling instance from an aggregate
// snapshot and the forecasts.
func buildProblem(now flexoffer.Time, horizon int, aggregates []*agg.Aggregate, demandFc, resFc forecaster, imbalancePrices []float64, m *market.DayAhead) *sched.Problem {
	baseline := make([]float64, horizon)
	if demandFc != nil {
		copy(baseline, demandFc.Forecast(horizon))
	}
	if resFc != nil {
		for i, v := range resFc.Forecast(horizon) {
			if i < horizon {
				baseline[i] -= v
			}
		}
	}
	if imbalancePrices == nil {
		imbalancePrices = make([]float64, horizon)
		for i := range imbalancePrices {
			imbalancePrices[i] = 0.15
		}
	}
	offers := make([]*flexoffer.FlexOffer, len(aggregates))
	for i, a := range aggregates {
		offers[i] = a.Offer
	}
	return &sched.Problem{
		Start:          now,
		Slots:          horizon,
		Baseline:       baseline,
		ImbalancePrice: imbalancePrices,
		Offers:         offers,
		Market:         m,
	}
}

// disaggregateSnapshots turns the planner's macro schedules into micro
// schedules using the snapshot aggregates — never the live pipeline,
// which may have changed while the plan ran.
func disaggregateSnapshots(snaps []*agg.Aggregate, scheds []*flexoffer.Schedule) ([]*flexoffer.Schedule, error) {
	byID := make(map[flexoffer.ID]*agg.Aggregate, len(snaps))
	for _, a := range snaps {
		byID[a.Offer.ID] = a
	}
	var out []*flexoffer.Schedule
	for _, s := range scheds {
		a, ok := byID[s.OfferID]
		if !ok {
			return nil, fmt.Errorf("core: schedule for unknown aggregate %d", s.OfferID)
		}
		ms, err := a.Disaggregate(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// ForwardAggregates delegates the node's current macro flex-offers to
// its parent (paper §2: "the aggregated flex-offers are sent to a TSO's
// node for further aggregation, scheduling, and disaggregation"). The
// members stay pending locally until the parent's schedules come back
// through handleScheduleNotify; if none arrive, they time out like any
// other pending flexibility. Returns how many aggregates the parent
// accepted.
//
// The same phase discipline as the cycle applies: macro offers are
// cloned under the lock, submitted to the parent concurrently (bounded
// by Config.NotifyLimit) without it, and the accepted delegations are
// committed under the lock once the decisions are in.
func (n *Node) ForwardAggregates(ctx context.Context) (int, error) {
	if n.client == nil || n.cfg.Parent == "" {
		return 0, fmt.Errorf("core: %s has no parent to forward to", n.cfg.Name)
	}
	n.cycleMu.Lock()
	defer n.cycleMu.Unlock()

	// Snapshot: clone the macro offers under the lock and register the
	// macro→local mapping up front, so a fast parent whose schedules
	// come back while the rest of the batch is still submitting finds
	// the relay route already in place. Aggregates whose delegation is
	// still outstanding (already in n.forwarded — the parent has not
	// returned their schedules yet) are skipped: re-submitting them
	// under fresh macro IDs would make the parent schedule the same
	// flexibility twice.
	n.mu.Lock()
	outstanding := make(map[flexoffer.ID]bool, len(n.forwarded))
	for _, localID := range n.forwarded {
		outstanding[localID] = true
	}
	// Fold any accumulated intake in first: offers accepted since the
	// last cycle must be part of what gets delegated upward.
	n.pipeline.Process()
	aggregates := n.pipeline.Aggregates()
	offers := make([]*flexoffer.FlexOffer, 0, len(aggregates))
	for _, a := range aggregates {
		if outstanding[a.Offer.ID] {
			continue
		}
		macro := a.Offer.Clone()
		macro.ID = n.nextFwdID
		macro.Prosumer = n.cfg.Name
		n.nextFwdID++
		offers = append(offers, macro)
		n.forwarded[macro.ID] = a.Offer.ID
	}
	n.mu.Unlock()

	// Plan/deliver: submit to the parent outside the lock, in parallel.
	results := n.client.SubmitOffersAll(ctx, n.cfg.Parent, offers, n.cfg.NotifyLimit)

	// Commit: keep the accepted delegations, withdraw the rest.
	accepted := 0
	n.mu.Lock()
	for _, r := range results {
		if r.Err != nil || !r.Decision.Accept {
			// Unreachable parent or rejection: drop the provisional
			// mapping; the members stay pending and may time out.
			delete(n.forwarded, r.Offer.ID)
			continue
		}
		accepted++
	}
	n.mu.Unlock()
	if err := ctx.Err(); err != nil {
		// A canceled caller is not an unreachable parent: surface it.
		return accepted, err
	}
	return accepted, nil
}
