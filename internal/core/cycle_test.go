package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/flexoffer"
	"mirabel/internal/sched"
	"mirabel/internal/store"
)

// gatedTransport blocks outbound sends until the gate is released, to
// hold a scheduling cycle in its deliver phase at a known point.
type gatedTransport struct {
	comm.Transport
	gate chan struct{} // close to release
}

func (g *gatedTransport) Send(ctx context.Context, to string, env comm.Envelope) error {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return ctx.Err()
	}
	return g.Transport.Send(ctx, to, env)
}

// notifyCounter registers a bus endpoint that counts schedule
// deliveries per offer ID.
type notifyCounter struct {
	mu     sync.Mutex
	counts map[flexoffer.ID]int
}

func newNotifyCounter(bus *comm.Bus, name string) *notifyCounter {
	c := &notifyCounter{counts: make(map[flexoffer.ID]int)}
	bus.Register(name, func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		if env.Type != comm.MsgScheduleNotify {
			return nil, nil
		}
		var body comm.ScheduleNotify
		if err := env.Decode(comm.MsgScheduleNotify, &body); err != nil {
			return nil, err
		}
		c.mu.Lock()
		for _, s := range body.Schedules {
			c.counts[s.OfferID]++
		}
		c.mu.Unlock()
		return nil, nil
	})
	return c
}

func (c *notifyCounter) count(id flexoffer.ID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[id]
}

func (c *notifyCounter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// TestIntakeNotBlockedDuringDelivery drives a cycle into its deliver
// phase against a blocked transport and proves that offer intake — and
// the full handler chain — stays responsive while delivery is stuck.
func TestIntakeNotBlockedDuringDelivery(t *testing.T) {
	bus := comm.NewBus()
	gate := make(chan struct{})
	gt := &gatedTransport{Transport: bus, gate: gate}
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Transport: gt,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 2, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())
	counter := newNotifyCounter(bus, "p1")

	if d := brp.AcceptOffer(testOffer(1, 40, 16, 4, 5), "p1"); !d.Accept {
		t.Fatalf("rejected: %s", d.Reason)
	}

	cycleDone := make(chan *CycleReport, 1)
	go func() {
		rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
		if err != nil {
			t.Errorf("cycle: %v", err)
		}
		cycleDone <- rep
	}()

	// The commit phase removes the offer from pending before delivery
	// starts; once pending is empty the cycle is parked on the gate.
	deadline := time.Now().Add(2 * time.Second)
	for brp.PendingOffers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("cycle never reached its deliver phase")
		}
		time.Sleep(time.Millisecond)
	}

	// Intake must complete promptly while delivery is blocked.
	accepted := make(chan bool, 1)
	go func() {
		accepted <- brp.AcceptOffer(testOffer(2, 40, 16, 4, 5), "p1").Accept
	}()
	select {
	case ok := <-accepted:
		if !ok {
			t.Fatal("mid-cycle offer rejected")
		}
	case <-time.After(time.Second):
		t.Fatal("AcceptOffer blocked behind the deliver phase")
	}
	// The full handler chain too: a ping must answer mid-delivery.
	env, _ := comm.NewEnvelope(comm.MsgPing, "x", "brp1", nil)
	pinged := make(chan error, 1)
	go func() {
		_, err := brp.Handle(context.Background(), env)
		pinged <- err
	}()
	select {
	case err := <-pinged:
		if err != nil {
			t.Fatalf("ping mid-cycle: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Handle blocked behind the deliver phase")
	}

	close(gate)
	rep := <-cycleDone
	if rep == nil {
		t.Fatal("cycle failed (see goroutine error above)")
	}
	if rep.NotifyFailures != 0 {
		t.Errorf("notify failures = %d", rep.NotifyFailures)
	}
	// The mid-cycle offer was accepted after the snapshot: it must
	// still be pending, not lost and not scheduled.
	if got := brp.PendingOffers(); got != 1 {
		t.Errorf("pending after cycle = %d, want the mid-cycle offer", got)
	}
	waitFor(t, time.Second, func() bool { return counter.count(1) == 1 })
	if n := counter.count(2); n != 0 {
		t.Errorf("mid-cycle offer delivered %d times without being scheduled", n)
	}
}

// TestConcurrentIntakeAndCyclesLoseNothing floods a BRP with offers
// from a writer goroutine while scheduling cycles run over a slow
// transport, then checks the commit reconciliation's invariant: every
// accepted offer is delivered exactly once or still pending — none
// lost, none double-scheduled. Run with -race.
func TestConcurrentIntakeAndCyclesLoseNothing(t *testing.T) {
	bus := comm.NewBus()
	lt := comm.Latency(bus, 200*time.Microsecond)
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Transport: lt,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 2, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())
	const owners = 4
	counters := make([]*notifyCounter, owners)
	for i := range counters {
		counters[i] = newNotifyCounter(bus, fmt.Sprintf("p%d", i))
	}

	const total = 120
	accepted := make(chan flexoffer.ID, total)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := flexoffer.ID(1); id <= total; id++ {
			owner := fmt.Sprintf("p%d", int(id)%owners)
			if d := brp.AcceptOffer(testOffer(id, 40, 16, 4, 5), owner); d.Accept {
				accepted <- id
			}
			if id%10 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Cycles race the writer.
	for i := 0; i < 6; i++ {
		if _, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(accepted)
	// One final cycle schedules whatever the writer added last.
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NotifyFailures != 0 {
		t.Errorf("notify failures = %d", rep.NotifyFailures)
	}

	var ids []flexoffer.ID
	for id := range accepted {
		ids = append(ids, id)
	}
	pending := brp.PendingOffers()
	delivered := 0
	waitFor(t, 2*time.Second, func() bool {
		delivered = 0
		for _, c := range counters {
			delivered += c.total()
		}
		return delivered+pending == len(ids)
	})
	for _, id := range ids {
		n := counters[int(id)%owners].count(id)
		if n > 1 {
			t.Errorf("offer %d delivered %d times", id, n)
		}
	}
	if delivered+pending != len(ids) {
		t.Errorf("delivered %d + pending %d != accepted %d: offers lost", delivered, pending, len(ids))
	}
}

// TestCycleAndRelayReconcileDoubleScheduling races a local scheduling
// cycle against a parent's schedules for the same (forwarded) members:
// whichever commit comes second must drop the already-scheduled offers
// instead of double-delivering them.
func TestCycleAndRelayReconcileDoubleScheduling(t *testing.T) {
	bus := comm.NewBus()
	lt := comm.Latency(bus, 100*time.Microsecond)
	tso, err := NewNode(Config{
		Name: "tso", Role: store.RoleTSO, Transport: lt,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 2, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("tso", tso.Handler())
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Parent: "tso", Transport: lt,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 2, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())

	const total = 40
	counters := make(map[string]*notifyCounter)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("p%d", i)
		counters[name] = newNotifyCounter(bus, name)
	}
	for id := flexoffer.ID(1); id <= total; id++ {
		owner := fmt.Sprintf("p%d", int(id)%4)
		if d := brp.AcceptOffer(testOffer(id, 40, 16, 4, 5), owner); !d.Accept {
			t.Fatalf("offer %d rejected: %s", id, d.Reason)
		}
	}

	// Delegate upward and, racing the parent's schedules coming back,
	// schedule the same members locally.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := brp.ForwardAggregates(context.Background()); err != nil {
			t.Errorf("forward: %v", err)
		}
		if _, err := tso.RunSchedulingCycle(context.Background(), 0, nil, nil, nil); err != nil {
			t.Errorf("tso cycle: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil); err != nil {
			t.Errorf("brp cycle: %v", err)
		}
	}()
	wg.Wait()

	// Let the TSO→BRP notify and the BRP relay drain.
	waitFor(t, 2*time.Second, func() bool {
		delivered := 0
		for _, c := range counters {
			delivered += c.total()
		}
		return delivered+brp.PendingOffers() >= total
	})
	for id := flexoffer.ID(1); id <= total; id++ {
		owner := fmt.Sprintf("p%d", int(id)%4)
		if n := counters[owner].count(id); n > 1 {
			t.Errorf("offer %d delivered %d times: double-scheduled", id, n)
		}
	}
}

// TestForecastReplyAnchoredAtPlanningTime is the satellite fix: replies
// carry the latest cycle's planning time as FirstSlot, not a zero
// placeholder.
func TestForecastReplyAnchoredAtPlanningTime(t *testing.T) {
	bus := comm.NewBus()
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Transport: bus,
		AggParams: agg.ParamsP3,
		Forecast:  StaticForecast{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())
	p1 := newProsumer(t, bus, "p1")

	reply, err := p1.QueryParentForecast(context.Background(), "demand", 4)
	if err != nil {
		t.Fatal(err)
	}
	if reply.FirstSlot != 0 {
		t.Errorf("pre-cycle FirstSlot = %d, want 0", reply.FirstSlot)
	}
	if _, err := brp.RunSchedulingCycle(context.Background(), 96, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	reply, err = p1.QueryParentForecast(context.Background(), "demand", 4)
	if err != nil {
		t.Fatal(err)
	}
	if reply.FirstSlot != 96 {
		t.Errorf("FirstSlot = %d, want the planning time 96", reply.FirstSlot)
	}
	if got := brp.PlanningTime(); got != 96 {
		t.Errorf("PlanningTime = %d, want 96", got)
	}
}

// TestCycleDeliveryBoundedBySlowestProsumer is the phase split's
// headline property at test scale: with n prosumers behind a
// fixed-latency transport, delivery wall time is near one latency, not
// n of them.
func TestCycleDeliveryBoundedBySlowestProsumer(t *testing.T) {
	bus := comm.NewBus()
	const delay = 50 * time.Millisecond
	const owners = 8
	lt := comm.Latency(bus, delay)
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Transport: lt,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 2, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())
	for i := 0; i < owners; i++ {
		name := fmt.Sprintf("p%d", i)
		newNotifyCounter(bus, name)
		if d := brp.AcceptOffer(testOffer(flexoffer.ID(i+1), 40, 16, 4, 5), name); !d.Accept {
			t.Fatalf("rejected: %s", d.Reason)
		}
	}
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NotifyFailures != 0 {
		t.Errorf("notify failures = %d", rep.NotifyFailures)
	}
	if rep.DeliveryTime >= owners*delay/2 {
		t.Errorf("delivery took %v: serialized, want near the single latency %v", rep.DeliveryTime, delay)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOfferExpiryKeysOnLatestStart is the regression test for the
// premature-expiry predicate: the snapshot phase used to drop any offer
// whose EarliestStart had passed, discarding flexibility that was still
// schedulable in the remainder of its window (EarliestStart < now ≤
// LatestStart — the planner clamps the start window at now via
// sched.Problem.StartWindow).
func TestOfferExpiryKeysOnLatestStart(t *testing.T) {
	f := testOffer(1, 40, 16, 4, 5) // window [40, 56], AssignBefore 32
	f.AssignBefore = 60             // keep the deadline clause out of the way
	const end = flexoffer.Time(96)

	if offerExpiredAt(f, 45, end) {
		t.Error("offer with EarliestStart < now ≤ LatestStart expired prematurely")
	}
	if offerExpiredAt(f, 56, end) {
		t.Error("offer expired at the last schedulable slot")
	}
	if !offerExpiredAt(f, 57, end) {
		t.Error("offer with a closed start window (LatestStart < now) kept")
	}
	if !offerExpiredAt(f, 61, end) {
		t.Error("offer past its assignment deadline kept")
	}
	// Window overflow: LatestEnd 60 exceeds a horizon ending at 58.
	if !offerExpiredAt(f, 45, 58) {
		t.Error("offer overflowing the horizon kept")
	}
}

// TestForwardAggregatesSkipsOutstandingDelegations is the regression
// test for double delegation: a second ForwardAggregates call before
// the parent's schedules return used to re-submit the same aggregates
// under fresh macro IDs, making the parent schedule the same
// flexibility twice.
func TestForwardAggregatesSkipsOutstandingDelegations(t *testing.T) {
	bus := comm.NewBus()
	var mu sync.Mutex
	var submitted []flexoffer.ID
	bus.Register("tso", func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		var body comm.FlexOfferSubmit
		if err := env.Decode(comm.MsgFlexOfferSubmit, &body); err != nil {
			return nil, err
		}
		mu.Lock()
		submitted = append(submitted, body.Offer.ID)
		mu.Unlock()
		reply, err := comm.NewEnvelope(comm.MsgFlexOfferDecision, "tso", env.From,
			comm.FlexOfferDecision{OfferID: body.Offer.ID, Accept: true})
		return &reply, err
	})
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Parent: "tso", Transport: bus,
		AggParams: agg.ParamsP3,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())

	if d := brp.AcceptOffer(testOffer(1, 40, 16, 4, 5), "p1"); !d.Accept {
		t.Fatalf("rejected: %s", d.Reason)
	}
	if d := brp.AcceptOffer(testOffer(2, 40, 16, 4, 5), "p2"); !d.Accept {
		t.Fatalf("rejected: %s", d.Reason)
	}
	aggs := len(brp.Aggregates())
	if aggs == 0 {
		t.Fatal("no aggregates to forward")
	}

	first, err := brp.ForwardAggregates(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first != aggs {
		t.Fatalf("first forward accepted %d, want %d", first, aggs)
	}

	// The parent has not returned schedules: every delegation is still
	// outstanding, so a second forward must submit nothing.
	second, err := brp.ForwardAggregates(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second != 0 {
		t.Errorf("second forward accepted %d delegations, want 0", second)
	}
	mu.Lock()
	total := len(submitted)
	mu.Unlock()
	if total != aggs {
		t.Errorf("parent saw %d submissions (%v), want %d — aggregates delegated twice", total, submitted, aggs)
	}
}
