package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"mirabel/internal/agg"
	"mirabel/internal/flexoffer"
	"mirabel/internal/sched"
	"mirabel/internal/store"
)

// newLocalBRP builds a transportless BRP: commit runs fully, delivery is
// a no-op (no client), which is exactly what the engine tests need.
func newLocalBRP(t *testing.T) *Node {
	t.Helper()
	n, err := NewNode(Config{
		Name:      "brp1",
		Role:      store.RoleBRP,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 3, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// Intake only accumulates: accepted offers sit in the pipeline's pending
// batch until the next cycle (or an explicit Aggregates read) processes
// them in one go.
func TestAccumulateThenCycleProcessesIntake(t *testing.T) {
	brp := newLocalBRP(t)
	for i := 1; i <= 8; i++ {
		if d := brp.AcceptOffer(testOffer(flexoffer.ID(i), 40, 16, 4, 5), "p1"); !d.Accept {
			t.Fatalf("offer %d rejected: %s", i, d.Reason)
		}
	}
	brp.mu.Lock()
	pendingBatch := brp.pipeline.NumPending()
	applied := brp.pipeline.GroupBuilder.NumOffers()
	brp.mu.Unlock()
	if pendingBatch != 8 {
		t.Errorf("pipeline pending = %d, want 8 (intake must not process)", pendingBatch)
	}
	if applied != 0 {
		t.Errorf("grouped offers before cycle = %d, want 0", applied)
	}

	rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offers != 8 {
		t.Errorf("report offers = %d, want 8", rep.Offers)
	}
	brp.mu.Lock()
	pendingBatch = brp.pipeline.NumPending()
	brp.mu.Unlock()
	if pendingBatch != 0 {
		t.Errorf("pipeline pending after cycle = %d, want 0", pendingBatch)
	}
}

// A failed intake (duplicate id) cancels cleanly with accumulate-only
// semantics: the reject reason surfaces and no pending update leaks.
func TestAccumulateDuplicateRejected(t *testing.T) {
	brp := newLocalBRP(t)
	if d := brp.AcceptOffer(testOffer(1, 40, 16, 4, 5), "p1"); !d.Accept {
		t.Fatalf("rejected: %s", d.Reason)
	}
	if d := brp.AcceptOffer(testOffer(1, 40, 16, 4, 5), "p1"); d.Accept {
		t.Fatal("duplicate id accepted")
	}
	brp.mu.Lock()
	defer brp.mu.Unlock()
	if n := brp.pipeline.NumPending(); n != 1 {
		t.Errorf("pipeline pending = %d, want 1 (only the first insert)", n)
	}
}

// Satellite: duplicate micro schedules in one commit batch must be
// reconciled, not fed into the pipeline as a delete of a nil offer.
func TestCommitDuplicateMicroScheduleReconciled(t *testing.T) {
	brp := newLocalBRP(t)
	f := testOffer(1, 40, 16, 4, 5)
	if d := brp.AcceptOffer(f, "p1"); !d.Accept {
		t.Fatalf("rejected: %s", d.Reason)
	}
	// Materialize the aggregate so the pipeline delete at commit finds it.
	if got := len(brp.Aggregates()); got != 1 {
		t.Fatalf("aggregates = %d, want 1", got)
	}
	s := &flexoffer.Schedule{OfferID: 1, Start: 40, Energy: []float64{0, 0, 0, 0}}
	byOwner, reconciled, err := brp.commitMicroSchedules([]*flexoffer.Schedule{s, s})
	if err != nil {
		t.Fatalf("commit with duplicate schedule: %v", err)
	}
	if reconciled != 1 {
		t.Errorf("reconciled = %d, want 1 (the duplicate)", reconciled)
	}
	if got := len(byOwner["p1"]); got != 1 {
		t.Errorf("schedules for p1 = %d, want 1", got)
	}
	if brp.PendingOffers() != 0 {
		t.Errorf("pending = %d, want 0", brp.PendingOffers())
	}
	if rec, ok := brp.Store().GetOffer(1); !ok || rec.State != store.OfferScheduled {
		t.Errorf("record = %+v, %v", rec, ok)
	}
}

// Unchanged aggregates are snapshotted once: the second planning pass
// reuses the cached copy, and a mutation (new member) invalidates it.
func TestSnapshotReuseAcrossCycles(t *testing.T) {
	brp := newLocalBRP(t)
	for i := 1; i <= 4; i++ {
		if d := brp.AcceptOffer(testOffer(flexoffer.ID(i), 40, 16, 4, 5), "p1"); !d.Accept {
			t.Fatalf("rejected: %s", d.Reason)
		}
	}
	rep1 := &CycleReport{}
	snaps1, err := brp.snapshotForPlanning(0, brp.cfg.HorizonSlots, rep1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps1) == 0 {
		t.Fatal("no snapshots")
	}
	if rep1.SnapshotsReused != 0 {
		t.Errorf("first pass reused %d snapshots, want 0", rep1.SnapshotsReused)
	}

	// Nothing changed: every snapshot is reused, pointer-identical.
	rep2 := &CycleReport{}
	snaps2, err := brp.snapshotForPlanning(0, brp.cfg.HorizonSlots, rep2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SnapshotsReused != len(snaps1) {
		t.Errorf("second pass reused %d, want %d", rep2.SnapshotsReused, len(snaps1))
	}
	for i := range snaps1 {
		if snaps1[i] != snaps2[i] {
			t.Errorf("snapshot %d not reused (new copy)", i)
		}
	}

	// A new member bumps the aggregate's version: fresh snapshot.
	if d := brp.AcceptOffer(testOffer(99, 40, 16, 4, 5), "p1"); !d.Accept {
		t.Fatalf("rejected: %s", d.Reason)
	}
	rep3 := &CycleReport{}
	snaps3, err := brp.snapshotForPlanning(0, brp.cfg.HorizonSlots, rep3)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, s3 := range snaps3 {
		fresh := true
		for _, s1 := range snaps1 {
			if s1 == s3 {
				fresh = false
			}
		}
		if fresh {
			changed++
		}
	}
	if changed == 0 {
		t.Error("no fresh snapshot after aggregate mutation")
	}
	if rep3.SnapshotsReused != len(snaps3)-changed {
		t.Errorf("third pass reused %d, want %d", rep3.SnapshotsReused, len(snaps3)-changed)
	}
}

// Stress (run under -race in CI): concurrent intake while cycles batch,
// process and schedule. Afterwards the pending set and the pipeline's
// grouped offers must agree exactly.
func TestConcurrentAccumulateDuringCycles(t *testing.T) {
	brp := newLocalBRP(t)
	brp.cfg.AggWorkers = 4
	brp.pipeline.Workers = 4

	const workers = 4
	const perWorker = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := flexoffer.ID(w*perWorker + i + 1)
				es := flexoffer.Time(40 + (int(id) % 13))
				tf := flexoffer.Time(8 + (int(id) % 9))
				if d := brp.AcceptOffer(testOffer(id, es, tf, 2+int(id)%3, 5), fmt.Sprintf("p%d", w)); !d.Accept {
					t.Errorf("offer %d rejected: %s", id, d.Reason)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if _, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil); err != nil {
			t.Errorf("cycle: %v", err)
			break
		}
		select {
		case <-done:
			goto drained
		default:
		}
	}
drained:
	wg.Wait()
	// Fold in whatever intake arrived after the last cycle.
	aggs := brp.Aggregates()
	brp.mu.Lock()
	pendingBatch := brp.pipeline.NumPending()
	grouped := brp.pipeline.GroupBuilder.NumOffers()
	pendingOffers := len(brp.pending)
	brp.mu.Unlock()
	if pendingBatch != 0 {
		t.Errorf("pipeline pending = %d, want 0 after final process", pendingBatch)
	}
	if grouped != pendingOffers {
		t.Errorf("grouped offers = %d, pending offers = %d — pipeline and node diverged", grouped, pendingOffers)
	}
	members := 0
	for _, a := range aggs {
		members += a.NumMembers()
	}
	if members != grouped {
		t.Errorf("aggregate members = %d, grouped offers = %d", members, grouped)
	}
}

// AggWorkers wires through Config to the pipeline.
func TestAggWorkersConfig(t *testing.T) {
	n, err := NewNode(Config{Name: "brp-w", Role: store.RoleBRP, AggWorkers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if n.pipeline.Workers != 6 {
		t.Errorf("pipeline workers = %d, want 6", n.pipeline.Workers)
	}
}
