package core

// StaticForecast adapts a fixed per-slot series to the node's forecaster
// seam: Forecast(h) returns the first h values (padded with the last
// value). Simulations and tests use it to inject known baselines; a real
// deployment plugs in a forecast.Maintainer instead.
type StaticForecast []float64

// Forecast implements the forecaster seam.
func (s StaticForecast) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		switch {
		case i < len(s):
			out[i] = s[i]
		case len(s) > 0:
			out[i] = s[len(s)-1]
		}
	}
	return out
}

// ShiftedForecast offsets a StaticForecast by a slot index, so a series
// indexed from slot 0 can serve a cycle planning [start, start+h).
type ShiftedForecast struct {
	Series []float64
	Start  int
}

// Forecast implements the forecaster seam.
func (s ShiftedForecast) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		idx := s.Start + i
		switch {
		case idx < len(s.Series):
			out[i] = s.Series[idx]
		case len(s.Series) > 0:
			out[i] = s.Series[len(s.Series)-1]
		}
	}
	return out
}
