package core
