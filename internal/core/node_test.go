package core

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/flexoffer"
	"mirabel/internal/sched"
	"mirabel/internal/settle"
	"mirabel/internal/store"
)

// testOffer builds a schedulable offer inside the first day.
func testOffer(id flexoffer.ID, es, tf flexoffer.Time, slices int, emax float64) *flexoffer.FlexOffer {
	p := make([]flexoffer.Slice, slices)
	for i := range p {
		p[i] = flexoffer.Slice{EnergyMin: 0, EnergyMax: emax}
	}
	return &flexoffer.FlexOffer{
		ID: id, EarliestStart: es, LatestStart: es + tf, AssignBefore: es - 8,
		Profile: p,
	}
}

func newBRP(t *testing.T, bus *comm.Bus) *Node {
	t.Helper()
	n, err := NewNode(Config{
		Name:      "brp1",
		Role:      store.RoleBRP,
		Transport: bus,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 3, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bus != nil {
		bus.Register("brp1", n.Handler())
	}
	return n
}

func newProsumer(t *testing.T, bus *comm.Bus, name string) *Node {
	t.Helper()
	n, err := NewNode(Config{
		Name:      name,
		Role:      store.RoleProsumer,
		Parent:    "brp1",
		Transport: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register(name, n.Handler())
	return n
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Error("node without name accepted")
	}
	if _, err := NewNode(Config{Name: "x"}); err == nil {
		t.Error("node without role accepted")
	}
}

func TestOfferSubmissionRoundtrip(t *testing.T) {
	bus := comm.NewBus()
	brp := newBRP(t, bus)
	p1 := newProsumer(t, bus, "p1")

	offer := testOffer(1, 40, 16, 4, 5)
	decision, err := p1.SubmitOfferTo(context.Background(), offer)
	if err != nil {
		t.Fatal(err)
	}
	if !decision.Accept {
		t.Fatalf("offer rejected: %s", decision.Reason)
	}
	if decision.PremiumEUR <= 0 {
		t.Error("accepted offer without premium")
	}
	if brp.PendingOffers() != 1 {
		t.Errorf("pending = %d", brp.PendingOffers())
	}
	// Both sides recorded the offer.
	if rec, ok := brp.Store().GetOffer(1); !ok || rec.State != store.OfferAccepted {
		t.Errorf("BRP record = %+v, %v", rec, ok)
	}
	if rec, ok := p1.Store().GetOffer(1); !ok || rec.State != store.OfferAccepted {
		t.Errorf("prosumer record = %+v, %v", rec, ok)
	}
}

func TestInflexibleOfferRejected(t *testing.T) {
	bus := comm.NewBus()
	newBRP(t, bus)
	p1 := newProsumer(t, bus, "p1")
	rigid := testOffer(2, 40, 0, 4, 5)
	rigid.Profile = []flexoffer.Slice{{EnergyMin: 5, EnergyMax: 5}}
	decision, err := p1.SubmitOfferTo(context.Background(), rigid)
	if err != nil {
		t.Fatal(err)
	}
	if decision.Accept {
		t.Error("inflexible offer accepted")
	}
	if rec, _ := p1.Store().GetOffer(2); rec.State != store.OfferRejected {
		t.Errorf("prosumer state = %s", rec.State)
	}
}

func TestSchedulingCycleEndToEnd(t *testing.T) {
	bus := comm.NewBus()
	brp := newBRP(t, bus)
	p1 := newProsumer(t, bus, "p1")
	p2 := newProsumer(t, bus, "p2")

	o1 := testOffer(1, 40, 16, 4, 5)
	o2 := testOffer(2, 42, 12, 4, 5)
	if d, err := p1.SubmitOfferTo(context.Background(), o1); err != nil || !d.Accept {
		t.Fatalf("submit o1: %v %+v", err, d)
	}
	if d, err := p2.SubmitOfferTo(context.Background(), o2); err != nil || !d.Accept {
		t.Fatalf("submit o2: %v %+v", err, d)
	}

	// RES surplus in slots 40..55: the scheduler should soak it up.
	baseline := make([]float64, flexoffer.SlotsPerDay)
	for i := 40; i < 56; i++ {
		baseline[i] = -8
	}
	res := StaticForecast(make([]float64, flexoffer.SlotsPerDay))
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, StaticForecast(baseline), res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offers != 2 || rep.MicroSchedules != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.ScheduleCost >= rep.BaselineCost {
		t.Errorf("schedule cost %g not below baseline %g", rep.ScheduleCost, rep.BaselineCost)
	}

	// Give the async notifications a moment, then check delivery.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s := p1.ScheduleFor(o1, 10); s != nil {
			if err := o1.ValidateSchedule(s); err != nil {
				t.Fatalf("delivered schedule invalid: %v", err)
			}
			if rec, _ := p1.Store().GetOffer(1); rec.State != store.OfferScheduled {
				t.Errorf("prosumer offer state = %s", rec.State)
			}
			// The BRP cleared its pipeline.
			if brp.PendingOffers() != 0 {
				t.Errorf("pending after cycle = %d", brp.PendingOffers())
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("schedule never delivered to prosumer")
}

func TestExpiredOfferFallsBackToDefault(t *testing.T) {
	bus := comm.NewBus()
	newBRP(t, bus)
	p1 := newProsumer(t, bus, "p1")
	offer := testOffer(1, 40, 16, 4, 5)
	if _, err := p1.SubmitOfferTo(context.Background(), offer); err != nil {
		t.Fatal(err)
	}
	// No schedule arrives; after the assignment deadline the prosumer
	// falls back to the default profile.
	if s := p1.ScheduleFor(offer, offer.AssignBefore-1); s != nil {
		t.Error("schedule before deadline should be nil (still waiting)")
	}
	s := p1.ScheduleFor(offer, offer.AssignBefore)
	if s == nil {
		t.Fatal("no fallback schedule")
	}
	if s.Start != offer.EarliestStart {
		t.Errorf("fallback start = %d, want earliest %d", s.Start, offer.EarliestStart)
	}
	if rec, _ := p1.Store().GetOffer(1); rec.State != store.OfferExpired {
		t.Errorf("state = %s, want expired", rec.State)
	}
}

func TestCycleExpiresStaleOffers(t *testing.T) {
	brp := newBRP(t, nil)
	// Offer whose assignment deadline (32) is before the cycle time 36.
	stale := testOffer(9, 40, 8, 4, 5)
	if d := brp.AcceptOffer(stale, "p9"); !d.Accept {
		t.Fatalf("rejected: %s", d.Reason)
	}
	rep, err := brp.RunSchedulingCycle(context.Background(), 36, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expired != 1 || rep.Offers != 0 {
		t.Errorf("report = %+v", rep)
	}
	if rec, _ := brp.Store().GetOffer(9); rec.State != store.OfferExpired {
		t.Errorf("state = %s", rec.State)
	}
}

func TestUnreachableProsumerDoesNotFailCycle(t *testing.T) {
	bus := comm.NewBus()
	brp := newBRP(t, bus)
	p1 := newProsumer(t, bus, "p1")
	offer := testOffer(1, 40, 16, 4, 5)
	if _, err := p1.SubmitOfferTo(context.Background(), offer); err != nil {
		t.Fatal(err)
	}
	bus.Unregister("p1") // the node drops off the network
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
	if err != nil {
		t.Fatalf("cycle failed on unreachable prosumer: %v", err)
	}
	if rep.NotifyFailures != 1 {
		t.Errorf("notify failures = %d, want 1", rep.NotifyFailures)
	}
}

func TestMeasurementReporting(t *testing.T) {
	bus := comm.NewBus()
	brp := newBRP(t, bus)
	p1 := newProsumer(t, bus, "p1")
	if err := p1.ReportMeasurement(context.Background(), "demand", 5, 2.5); err != nil {
		t.Fatal(err)
	}
	// Local store immediately.
	if got := p1.Store().SumEnergyBySlot(store.MeasurementFilter{})[5]; got != 2.5 {
		t.Errorf("local measurement = %g", got)
	}
	// Parent store asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if got := brp.Store().SumEnergyBySlot(store.MeasurementFilter{})[5]; got == 2.5 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("measurement never reached the BRP")
}

// TestMeasurementBatchReporting sends a meter-stream batch in one
// message; the receiving node stores the whole report through the
// store's batch path (one WAL group on a durable store).
func TestMeasurementBatchReporting(t *testing.T) {
	bus := comm.NewBus()
	brp := newBRP(t, bus)
	client := comm.NewClient("p1", bus)
	reports := make([]comm.MeasurementReport, 10)
	for i := range reports {
		reports[i] = comm.MeasurementReport{Actor: "p1", EnergyType: "demand", Slot: flexoffer.Time(i), KWh: 1.5}
	}
	if err := client.ReportMeasurements(context.Background(), "brp1", reports); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		ms := brp.Store().Measurements(store.MeasurementFilter{Actor: "p1", EnergyType: "demand"})
		if len(ms) == len(reports) {
			if ms[3].KWh != 1.5 || ms[3].Slot != 3 {
				t.Fatalf("stored batch entry = %+v", ms[3])
			}
			// The local bulk-intake path lands in the same series.
			if err := brp.IngestMeasurements([]store.Measurement{{Actor: "p1", EnergyType: "demand", Slot: 99, KWh: 2}}); err != nil {
				t.Fatal(err)
			}
			if got := brp.Store().SumEnergyBySlot(store.MeasurementFilter{Actor: "p1"})[99]; got != 2 {
				t.Fatalf("IngestMeasurements value = %g", got)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("measurement batch never reached the BRP")
}

func TestProsumerRefusesOffers(t *testing.T) {
	bus := comm.NewBus()
	p1 := newProsumer(t, bus, "p1")
	env, _ := comm.NewEnvelope(comm.MsgFlexOfferSubmit, "x", "p1", comm.FlexOfferSubmit{Offer: testOffer(1, 40, 8, 2, 1)})
	if _, err := p1.Handle(context.Background(), env); err == nil {
		t.Error("prosumer accepted a flex-offer submission")
	}
}

func TestPingPong(t *testing.T) {
	brp := newBRP(t, nil)
	env, _ := comm.NewEnvelope(comm.MsgPing, "x", "brp1", nil)
	reply, err := brp.Handle(context.Background(), env)
	if err != nil || reply == nil || reply.Type != comm.MsgPong {
		t.Errorf("ping reply = %+v, %v", reply, err)
	}
}

func TestStaticAndShiftedForecast(t *testing.T) {
	s := StaticForecast{1, 2, 3}
	got := s.Forecast(5)
	want := []float64{1, 2, 3, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("StaticForecast[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	sh := ShiftedForecast{Series: []float64{1, 2, 3, 4}, Start: 2}
	got = sh.Forecast(3)
	want = []float64{3, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ShiftedForecast[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if empty := (StaticForecast{}).Forecast(2); empty[0] != 0 || empty[1] != 0 {
		t.Error("empty forecast not zero")
	}
}

func TestForwardedAggregatesRelaySchedulesToProsumers(t *testing.T) {
	// Full paper §2 flow: prosumer → BRP → TSO → BRP → prosumer.
	bus := comm.NewBus()
	tso, err := NewNode(Config{
		Name: "tso", Role: store.RoleTSO, Transport: bus,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 3, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("tso", tso.Handler())
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Parent: "tso", Transport: bus,
		AggParams: agg.ParamsP3,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())
	p1 := newProsumer(t, bus, "p1")

	offer := testOffer(1, 40, 16, 4, 5)
	if d, err := p1.SubmitOfferTo(context.Background(), offer); err != nil || !d.Accept {
		t.Fatalf("submit: %v %+v", err, d)
	}

	// The BRP delegates its aggregate upward instead of scheduling.
	n, err := brp.ForwardAggregates(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("forwarded = %d, want 1", n)
	}
	if _, err := tso.RunSchedulingCycle(context.Background(), 0, nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	// The schedule must reach the prosumer via the BRP's relay.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s := p1.ScheduleFor(offer, 10); s != nil {
			if err := offer.ValidateSchedule(s); err != nil {
				t.Fatalf("relayed schedule invalid: %v", err)
			}
			if brp.PendingOffers() != 0 {
				t.Errorf("BRP still has %d pending after relay", brp.PendingOffers())
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("schedule never relayed to the prosumer")
}

func TestForwardAggregatesRequiresParent(t *testing.T) {
	brp := newBRP(t, nil)
	if _, err := brp.ForwardAggregates(context.Background()); err == nil {
		t.Error("forwarding without parent should error")
	}
}

func TestSettleExecutedOffers(t *testing.T) {
	bus := comm.NewBus()
	brp := newBRP(t, bus)
	p1 := newProsumer(t, bus, "p1")
	offer := testOffer(1, 40, 16, 4, 5)
	d, err := p1.SubmitOfferTo(context.Background(), offer)
	if err != nil || !d.Accept {
		t.Fatalf("submit: %v %+v", err, d)
	}
	// The surplus sits at slots 48..56 — away from the earliest start, so
	// the default (immediate) execution misses it and scheduling
	// realizes genuine savings to share.
	baseline := make([]float64, flexoffer.SlotsPerDay)
	for i := 48; i < 56; i++ {
		baseline[i] = -5
	}
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, StaticForecast(baseline), nil, nil)
	if err != nil || rep.MicroSchedules != 1 {
		t.Fatalf("cycle: %v %+v", err, rep)
	}
	if rep.ScheduleCost >= rep.BaselineCost {
		t.Fatalf("no savings: scheduled %g vs default %g", rep.ScheduleCost, rep.BaselineCost)
	}

	// Settle with no metering overrides: perfectly compliant.
	sr, err := brp.SettleExecuted(nil, settleConfig(rep))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Lines) != 1 {
		t.Fatalf("lines = %d", len(sr.Lines))
	}
	l := sr.Lines[0]
	if !l.Compliant {
		t.Error("compliant execution penalized")
	}
	if d.PremiumEUR > 0 && l.PaymentEUR <= 0 {
		t.Errorf("no premium paid: %+v (decision premium %g)", l, d.PremiumEUR)
	}
	if sr.SharedProfitEUR <= 0 {
		t.Errorf("no profit shared despite realized savings: %+v", sr)
	}
	// The offer moved to the executed state.
	if rec, _ := brp.Store().GetOffer(1); rec.State != store.OfferExecuted {
		t.Errorf("state = %s, want executed", rec.State)
	}
	// Settling again finds nothing scheduled.
	sr2, err := brp.SettleExecuted(nil, settleConfig(rep))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr2.Lines) != 0 {
		t.Errorf("second settlement found %d lines", len(sr2.Lines))
	}
}

func settleConfig(rep *CycleReport) settle.Config {
	return settle.Config{
		ShareFrac:         0.3,
		RealizedProfitEUR: rep.BaselineCost - rep.ScheduleCost,
	}
}

func TestTSOLevelAggregationOfBRPs(t *testing.T) {
	// Level 3: a TSO accepts (macro) offers from BRPs, schedules, and
	// sends schedules back — the same node type, one level up.
	bus := comm.NewBus()
	tso, err := NewNode(Config{
		Name: "tso", Role: store.RoleTSO, Transport: bus,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 2, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("tso", tso.Handler())

	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Parent: "tso", Transport: bus,
		AggParams: agg.ParamsP3,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())

	macro := testOffer(100, 40, 16, 6, 50) // an aggregated offer
	d, err := brp.SubmitOfferTo(context.Background(), macro)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accept {
		t.Fatalf("TSO rejected macro offer: %s", d.Reason)
	}
	rep, err := tso.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MicroSchedules != 1 {
		t.Errorf("TSO cycle report = %+v", rep)
	}
}

func TestNodeServesForecastQueries(t *testing.T) {
	bus := comm.NewBus()
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Transport: bus,
		AggParams: agg.ParamsP3,
		Forecast:  StaticForecast{5, 6, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())
	p1 := newProsumer(t, bus, "p1")

	reply, err := p1.QueryParentForecast(context.Background(), "demand", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 7, 7}
	if reply.EnergyType != "demand" || len(reply.Values) != 4 {
		t.Fatalf("reply = %+v", reply)
	}
	for i := range want {
		if reply.Values[i] != want[i] {
			t.Errorf("Values[%d] = %g, want %g", i, reply.Values[i], want[i])
		}
	}
}

func TestNodeForecastQueryWithoutSourceErrors(t *testing.T) {
	bus := comm.NewBus()
	newBRP(t, bus) // no Forecast configured
	p1 := newProsumer(t, bus, "p1")
	if _, err := p1.QueryParentForecast(context.Background(), "demand", 4); err == nil {
		t.Error("forecast query without source should error")
	}
}

func TestNodeMetricsCountHandledMessages(t *testing.T) {
	bus := comm.NewBus()
	brp := newBRP(t, bus)
	p1 := newProsumer(t, bus, "p1")
	if _, err := p1.SubmitOfferTo(context.Background(), testOffer(1, 40, 16, 4, 5)); err != nil {
		t.Fatal(err)
	}
	env, _ := comm.NewEnvelope(comm.MsgPing, "x", "brp1", nil)
	if _, err := brp.Handle(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	snap := brp.Metrics().Snapshot()
	if snap[comm.MsgFlexOfferSubmit].Handled != 1 {
		t.Errorf("submit metrics = %+v", snap[comm.MsgFlexOfferSubmit])
	}
	if snap[comm.MsgPing].Handled != 1 {
		t.Errorf("ping metrics = %+v", snap[comm.MsgPing])
	}
	if brp.Metrics().Errors() != 0 {
		t.Errorf("errors = %d", brp.Metrics().Errors())
	}
}

func TestNodeMiddlewareSeamAndRecovery(t *testing.T) {
	var seen atomic.Int32
	counting := func(next comm.Handler) comm.Handler {
		return func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
			seen.Add(1)
			return next(ctx, env)
		}
	}
	n, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP,
		AggParams:  agg.ParamsP3,
		Middleware: []comm.Middleware{counting},
	})
	if err != nil {
		t.Fatal(err)
	}
	env, _ := comm.NewEnvelope(comm.MsgPing, "x", "brp1", nil)
	if _, err := n.Handle(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 1 {
		t.Errorf("custom middleware saw %d messages", seen.Load())
	}
	// A malformed body must surface as an error, not a crash, and count
	// in the metrics.
	bad := comm.Envelope{Type: comm.MsgFlexOfferSubmit, From: "x", To: "brp1", Body: []byte("{")}
	if _, err := n.Handle(context.Background(), bad); err == nil {
		t.Error("malformed body accepted")
	}
	if n.Metrics().Errors() == 0 {
		t.Error("handler error not counted")
	}
}

func TestNodeRejectsUnknownMessageType(t *testing.T) {
	brp := newBRP(t, nil)
	env := comm.Envelope{Type: comm.MsgType("gossip"), From: "x", To: "brp1"}
	if _, err := brp.Handle(context.Background(), env); err == nil {
		t.Error("unknown message type accepted")
	}
}

func TestSubmitOfferHonorsCanceledContext(t *testing.T) {
	bus := comm.NewBus()
	newBRP(t, bus)
	p1 := newProsumer(t, bus, "p1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p1.SubmitOfferTo(ctx, testOffer(3, 40, 16, 4, 5)); err == nil {
		t.Error("canceled submission succeeded")
	}
}

func TestForwardAggregatesSurfacesCancellation(t *testing.T) {
	bus := comm.NewBus()
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Parent: "tso", Transport: bus,
		AggParams: agg.ParamsP3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A stalled TSO: requests only end via the caller's context.
	bus.Register("tso", func(ctx context.Context, _ comm.Envelope) (*comm.Envelope, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if d := brp.AcceptOffer(testOffer(1, 40, 16, 4, 5), "p1"); !d.Accept {
		t.Fatalf("rejected: %s", d.Reason)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	n, err := brp.ForwardAggregates(ctx)
	if n != 0 || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ForwardAggregates = %d, %v; want 0, DeadlineExceeded", n, err)
	}
}

// TestSchedWorkersPortfolio: SchedWorkers > 1 wires the plan phase to a
// parallel portfolio search; the cycle must still schedule, deliver and
// beat the default cost.
func TestSchedWorkersPortfolio(t *testing.T) {
	bus := comm.NewBus()
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Transport: bus,
		AggParams:    agg.ParamsP3,
		SchedOpts:    sched.Options{MaxIterations: 5, Seed: 1},
		SchedWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())
	bus.Register("p1", func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		return nil, nil
	})
	for id := flexoffer.ID(1); id <= 4; id++ {
		if d := brp.AcceptOffer(testOffer(id, 40, 16, 4, 5), "p1"); !d.Accept {
			t.Fatalf("offer %d rejected: %s", id, d.Reason)
		}
	}
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aggregates == 0 || rep.MicroSchedules == 0 {
		t.Fatalf("portfolio cycle scheduled nothing: %+v", rep)
	}
	if rep.NotifyFailures != 0 {
		t.Fatalf("notify failures: %d", rep.NotifyFailures)
	}
	if rep.ScheduleCost > rep.BaselineCost {
		t.Errorf("portfolio schedule cost %g worse than default %g", rep.ScheduleCost, rep.BaselineCost)
	}
}

// TestSettleExecutedWithLedger runs the ledger-backed settlement path
// end to end: settlement lines land on the durable hash chain, the
// chain verifies, balances match the report, and a node reopened on the
// same ledger recovers the chain and stays idempotent.
func TestSettleExecutedWithLedger(t *testing.T) {
	ledgerPath := filepath.Join(t.TempDir(), "ledger.log")
	bus := comm.NewBus()
	brp, err := NewNode(Config{
		Name:       "brp1",
		Role:       store.RoleBRP,
		Transport:  bus,
		AggParams:  agg.ParamsP3,
		SchedOpts:  sched.Options{MaxIterations: 3, Seed: 1},
		Settlement: &settle.LedgerConfig{Path: ledgerPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())
	p1 := newProsumer(t, bus, "p1")

	offer := testOffer(1, 40, 16, 4, 5)
	if d, err := p1.SubmitOfferTo(context.Background(), offer); err != nil || !d.Accept {
		t.Fatalf("submit: %v %+v", err, d)
	}
	baseline := make([]float64, flexoffer.SlotsPerDay)
	for i := 48; i < 56; i++ {
		baseline[i] = -5
	}
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, StaticForecast(baseline), nil, nil)
	if err != nil || rep.MicroSchedules != 1 {
		t.Fatalf("cycle: %v %+v", err, rep)
	}

	sr, err := brp.SettleExecuted(nil, settleConfig(rep))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Lines) != 1 || sr.Batches != 1 || sr.AlreadySettled != 0 {
		t.Fatalf("run report = %+v", sr)
	}
	if rec, _ := brp.Store().GetOffer(1); rec.State != store.OfferExecuted {
		t.Errorf("state = %s, want executed", rec.State)
	}

	stats, ok := brp.LedgerStats()
	if !ok || stats.Entries == 0 || stats.SettledOffers != 1 {
		t.Fatalf("ledger stats = %+v, %v", stats, ok)
	}
	res, err := brp.Ledger().Verify()
	if err != nil || !res.OK {
		t.Fatalf("verify = %+v, %v", res, err)
	}
	bal, ok := brp.Ledger().Balance("p1")
	if !ok || math.Abs(bal.NetEUR-sr.Lines[0].NetEUR) > 1e-9 {
		t.Errorf("balance = %+v, want net %g", bal, sr.Lines[0].NetEUR)
	}
	if err := brp.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen on the same chain: recovery rebuilds the settled index, so
	// a re-settlement run stays a no-op even against a fresh process.
	re, err := NewNode(Config{
		Name:       "brp1",
		Role:       store.RoleBRP,
		Store:      brp.Store(),
		Settlement: &settle.LedgerConfig{Path: ledgerPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st, _ := re.LedgerStats()
	if st.RecoveredEntries != stats.Entries || st.DroppedBytes != 0 {
		t.Errorf("recovery stats = %+v, want %d entries", st, stats.Entries)
	}
	sr2, err := re.SettleExecuted(nil, settleConfig(rep))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr2.Lines) != 0 || sr2.AlreadySettled != 0 {
		t.Errorf("re-run = %+v", sr2)
	}
	if st2, _ := re.LedgerStats(); st2.Entries != stats.Entries {
		t.Errorf("re-run appended entries: %d → %d", stats.Entries, st2.Entries)
	}
}
