package core

import (
	"context"
	"testing"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/flexoffer"
	"mirabel/internal/sched"
	"mirabel/internal/store"
)

// TestNodesOverTCP wires a prosumer and a BRP over the real TCP
// transport with durable stores and runs the full §2 flow: submit →
// negotiate → schedule → disaggregate → notify, then verifies the
// prosumer's store survives a restart with the schedule intact.
func TestNodesOverTCP(t *testing.T) {
	brpDir := t.TempDir()
	prosumerDir := t.TempDir()

	brpStore, err := store.Open(brpDir)
	if err != nil {
		t.Fatal(err)
	}
	brpClient := comm.NewTCPClient("brp1")
	defer brpClient.Close()
	brp, err := NewNode(Config{
		Name: "brp1", Role: store.RoleBRP, Transport: brpClient, Store: brpStore,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 3, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	brpSrv, err := comm.ListenTCP("127.0.0.1:0", brp.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer brpSrv.Close()

	prosumerStore, err := store.Open(prosumerDir)
	if err != nil {
		t.Fatal(err)
	}
	pClient := comm.NewTCPClient("p1")
	defer pClient.Close()
	pClient.SetRoute("brp1", brpSrv.Addr())
	p1, err := NewNode(Config{
		Name: "p1", Role: store.RoleProsumer, Parent: "brp1", Transport: pClient, Store: prosumerStore,
	})
	if err != nil {
		t.Fatal(err)
	}
	pSrv, err := comm.ListenTCP("127.0.0.1:0", p1.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer pSrv.Close()
	brpClient.SetRoute("p1", pSrv.Addr())

	// Submit an offer over the wire.
	offer := testOffer(1, 40, 16, 4, 5)
	decision, err := p1.SubmitOfferTo(context.Background(), offer)
	if err != nil {
		t.Fatal(err)
	}
	if !decision.Accept {
		t.Fatalf("rejected over TCP: %s", decision.Reason)
	}

	// Schedule and deliver over the wire.
	baseline := make([]float64, flexoffer.SlotsPerDay)
	for i := 40; i < 60; i++ {
		baseline[i] = -5
	}
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, StaticForecast(baseline), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MicroSchedules != 1 || rep.NotifyFailures != 0 {
		t.Fatalf("cycle report = %+v", rep)
	}

	var sched1 *flexoffer.Schedule
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		if sched1 = p1.ScheduleFor(offer, 10); sched1 != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sched1 == nil {
		t.Fatal("schedule never delivered over TCP")
	}
	if err := offer.ValidateSchedule(sched1); err != nil {
		t.Fatal(err)
	}

	// Restart the prosumer store: the scheduled state must survive.
	if err := prosumerStore.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := store.Open(prosumerDir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	rec, ok := reopened.GetOffer(1)
	if !ok || rec.State != store.OfferScheduled || rec.Schedule == nil {
		t.Fatalf("state lost across restart: %+v, %v", rec, ok)
	}
	if rec.Schedule.Start != sched1.Start {
		t.Errorf("persisted start %d != delivered %d", rec.Schedule.Start, sched1.Start)
	}
}
