package core

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/flexoffer"
	"mirabel/internal/ingest"
	"mirabel/internal/sched"
	"mirabel/internal/store"
)

// newAsyncBRP builds a BRP whose intake runs through a durable ingest
// queue journaled under dir.
func newAsyncBRP(t *testing.T, bus *comm.Bus, dir string, breaker *comm.BreakerConfig) *Node {
	t.Helper()
	n, err := NewNode(Config{
		Name:      "brp1",
		Role:      store.RoleBRP,
		Transport: bus,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 3, Seed: 1},
		Ingest: &ingest.Config{
			Path:   filepath.Join(dir, "ingest.log"),
			Queue:  128,
			Policy: ingest.PolicyBlock,
		},
		Breaker: breaker,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	bus.Register("brp1", n.Handler())
	return n
}

// TestAsyncIntakeCycle drives the full async path: offers and
// measurements are acked through the ingest queue, the cycle's drain
// barrier applies them before planning, and schedules come back to the
// prosumers exactly as on the synchronous path.
func TestAsyncIntakeCycle(t *testing.T) {
	bus := comm.NewBus()
	brp := newAsyncBRP(t, bus, t.TempDir(), nil)
	p1 := newProsumer(t, bus, "p1")
	p2 := newProsumer(t, bus, "p2")

	if d, err := p1.SubmitOfferTo(context.Background(), testOffer(1, 40, 16, 4, 5)); err != nil || !d.Accept {
		t.Fatalf("submit o1: %v %+v", err, d)
	}
	if d, err := p2.SubmitOfferTo(context.Background(), testOffer(2, 42, 12, 4, 5)); err != nil || !d.Accept {
		t.Fatalf("submit o2: %v %+v", err, d)
	}
	if err := brp.IngestMeasurements([]store.Measurement{
		{Actor: "p1", EnergyType: "elec", Slot: 1, KWh: 2},
		{Actor: "p2", EnergyType: "elec", Slot: 1, KWh: 3},
	}); err != nil {
		t.Fatalf("ingest measurements: %v", err)
	}
	// The ack does not promise visibility; the drain barrier does.
	if err := brp.DrainIngest(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := len(brp.Store().Measurements(store.MeasurementFilter{})); got != 2 {
		t.Fatalf("measurements after drain = %d, want 2", got)
	}
	if rec, ok := brp.Store().GetOffer(1); !ok || rec.State != store.OfferAccepted {
		t.Fatalf("offer 1 after drain = %+v, %v", rec, ok)
	}

	baseline := make([]float64, flexoffer.SlotsPerDay)
	for i := 40; i < 56; i++ {
		baseline[i] = -8
	}
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, StaticForecast(baseline), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MicroSchedules == 0 {
		t.Fatal("async cycle produced no micro schedules")
	}
	if rep.NotifyFailures != 0 || len(rep.SkippedOwners) != 0 {
		t.Fatalf("failures/skipped = %d/%v, want none", rep.NotifyFailures, rep.SkippedOwners)
	}
	for _, id := range []flexoffer.ID{1, 2} {
		if rec, ok := brp.Store().GetOffer(id); !ok || rec.State != store.OfferScheduled {
			t.Fatalf("offer %d = %+v (ok=%v), want scheduled", id, rec, ok)
		}
	}
	stats, ok := brp.IngestStats()
	if !ok {
		t.Fatal("IngestStats reported no queue")
	}
	if stats.Enqueued == 0 || stats.Consumed != stats.Enqueued {
		t.Fatalf("ingest stats enqueued/consumed = %d/%d", stats.Enqueued, stats.Consumed)
	}
}

// TestCycleSkipsBreakerOpenOwner is the acceptance scenario: one
// unreachable prosumer trips its circuit on the first cycle; the next
// cycle completes with that owner reported as skipped instead of
// paying another delivery failure.
func TestCycleSkipsBreakerOpenOwner(t *testing.T) {
	bus := comm.NewBus()
	brp := newAsyncBRP(t, bus, t.TempDir(), &comm.BreakerConfig{
		MinSamples:  1,
		FailureRate: 0.5,
		Cooldown:    time.Hour, // no half-open trial during this test
	})
	newProsumer(t, bus, "p1")
	// p2 is never registered: dead from the start.

	baseline := make([]float64, flexoffer.SlotsPerDay)
	for i := 40; i < 56; i++ {
		baseline[i] = -8
	}
	run := func(ids ...flexoffer.ID) *CycleReport {
		t.Helper()
		for i, id := range ids {
			owner := []string{"p1", "p2"}[i%2]
			if d := brp.AcceptOffer(testOffer(id, 40, 16, 4, 5), owner); !d.Accept {
				t.Fatalf("offer %d rejected: %s", id, d.Reason)
			}
		}
		rep, err := brp.RunSchedulingCycle(context.Background(), 0, StaticForecast(baseline), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Cycle 1: the delivery to p2 fails for real and trips the circuit.
	rep1 := run(1, 2)
	if rep1.NotifyFailures != 1 || len(rep1.SkippedOwners) != 0 {
		t.Fatalf("cycle 1 failures/skipped = %d/%v, want 1/none", rep1.NotifyFailures, rep1.SkippedOwners)
	}
	if got := brp.Breaker().State("p2"); got != comm.BreakerOpen {
		t.Fatalf("p2 circuit after cycle 1 = %v, want open", got)
	}

	// Cycle 2: p2 is skipped outright — degraded, not stalled.
	rep2 := run(3, 4)
	if rep2.NotifyFailures != 0 {
		t.Fatalf("cycle 2 failures = %d, want 0", rep2.NotifyFailures)
	}
	if len(rep2.SkippedOwners) != 1 || rep2.SkippedOwners[0] != "p2" {
		t.Fatalf("cycle 2 skipped = %v, want [p2]", rep2.SkippedOwners)
	}
	// The skipped owner's schedule is still committed locally; the offer
	// falls back downstream like any unreachable owner's would.
	if rec, ok := brp.Store().GetOffer(4); !ok || rec.State != store.OfferScheduled {
		t.Fatalf("skipped owner's offer = %+v (ok=%v), want scheduled", rec, ok)
	}
}

// TestCycleProbeHealsPeer verifies the end-of-cycle probe re-admits a
// recovered peer: after the cooldown a cycle (even an empty one) pings
// the tripped destination and re-closes its circuit.
func TestCycleProbeHealsPeer(t *testing.T) {
	bus := comm.NewBus()
	brp := newAsyncBRP(t, bus, t.TempDir(), &comm.BreakerConfig{
		MinSamples:  1,
		FailureRate: 0.5,
		Cooldown:    20 * time.Millisecond,
	})
	newProsumer(t, bus, "p1")

	baseline := make([]float64, flexoffer.SlotsPerDay)
	for i := 40; i < 56; i++ {
		baseline[i] = -8
	}
	if d := brp.AcceptOffer(testOffer(1, 40, 16, 4, 5), "p2"); !d.Accept {
		t.Fatalf("offer rejected: %s", d.Reason)
	}
	if _, err := brp.RunSchedulingCycle(context.Background(), 0, StaticForecast(baseline), nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := brp.Breaker().State("p2"); got != comm.BreakerOpen {
		t.Fatalf("p2 circuit = %v, want open", got)
	}

	// p2 comes back; after the cooldown an empty cycle's probe heals it.
	newProsumer(t, bus, "p2")
	time.Sleep(50 * time.Millisecond)
	rep, err := brp.RunSchedulingCycle(context.Background(), 0, StaticForecast(baseline), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HealedPeers) != 1 || rep.HealedPeers[0] != "p2" {
		t.Fatalf("healed = %v, want [p2]", rep.HealedPeers)
	}
	if got := brp.Breaker().State("p2"); got != comm.BreakerClosed {
		t.Fatalf("p2 circuit after probe = %v, want closed", got)
	}
}

// TestNodeCloseFlushesIngest pins the shutdown contract: Close drains
// the queue, so every acked event is in the store when the node exits.
func TestNodeCloseFlushesIngest(t *testing.T) {
	bus := comm.NewBus()
	dir := t.TempDir()
	brp := newAsyncBRP(t, bus, dir, nil)
	ms := make([]store.Measurement, 50)
	for i := range ms {
		ms[i] = store.Measurement{Actor: "p1", EnergyType: "elec", Slot: flexoffer.Time(i), KWh: 1}
	}
	if err := brp.IngestMeasurements(ms); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := brp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := len(brp.Store().Measurements(store.MeasurementFilter{})); got != 50 {
		t.Fatalf("measurements after close = %d, want 50", got)
	}
}
