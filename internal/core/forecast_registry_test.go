package core

import (
	"context"
	"path/filepath"
	"testing"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/flexoffer"
	"mirabel/internal/forecast"
	"mirabel/internal/ingest"
	"mirabel/internal/optimize"
	"mirabel/internal/sched"
	"mirabel/internal/store"
)

// newForecastingBRP builds a BRP running the fleet forecast registry
// (tiny period-4 models so warm-up completes after six observations);
// dir != "" additionally routes intake through a durable ingest queue.
func newForecastingBRP(t *testing.T, bus *comm.Bus, dir string) *Node {
	t.Helper()
	cfg := Config{
		Name:      "brp1",
		Role:      store.RoleBRP,
		Transport: bus,
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 3, Seed: 1},
		Forecasting: &forecast.RegistryConfig{
			Shards:  4,
			Periods: []int{4},
			FitCfg:  forecast.FitConfig{Options: optimize.Options{MaxEvaluations: 40, Seed: 3}},
			Workers: 1,
		},
	}
	if dir != "" {
		cfg.Ingest = &ingest.Config{
			Path:   filepath.Join(dir, "ingest.log"),
			Queue:  128,
			Policy: ingest.PolicyBlock,
		}
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	if bus != nil {
		bus.Register("brp1", n.Handler())
	}
	return n
}

func seriesMeas(actor string, from, n int) []store.Measurement {
	ms := make([]store.Measurement, n)
	for i := range ms {
		ms[i] = store.Measurement{Actor: actor, EnergyType: "elec", Slot: flexoffer.Time(from + i), KWh: 2}
	}
	return ms
}

// TestPerSeriesForecastOverTheWire: measurements flowing into the node
// create a per-series model transparently, and the series is queryable
// through the typed client.
func TestPerSeriesForecastOverTheWire(t *testing.T) {
	bus := comm.NewBus()
	brp := newForecastingBRP(t, bus, "")
	client := comm.NewClient("p1", bus)
	ctx := context.Background()

	// Below warm-up: the series exists but has no model yet.
	if err := brp.IngestMeasurements(seriesMeas("p1", 0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.QuerySeriesForecast(ctx, "brp1", "p1", "elec", 4); err == nil {
		t.Fatal("per-series query served before the model exists")
	}

	if err := brp.IngestMeasurements(seriesMeas("p1", 4, 4)); err != nil {
		t.Fatal(err)
	}
	reply, err := client.QuerySeriesForecast(ctx, "brp1", "p1", "elec", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Values) != 6 {
		t.Fatalf("forecast horizon = %d values, want 6", len(reply.Values))
	}
	st, ok := brp.ForecastStats()
	if !ok || st.Series != 1 || st.Models != 1 || st.Observations != 8 {
		t.Fatalf("registry stats = %+v (ok=%v), want 1 series / 1 model / 8 obs", st, ok)
	}
	// A node without a registry keeps rejecting per-series queries.
	plain := newBRP(t, nil)
	if _, ok := plain.ForecastSeries("p1", "elec", 4); ok {
		t.Fatal("registry-less node served a per-series forecast")
	}
}

// TestIngestFeedsRegistryExactlyOnce: with an ingest queue the registry
// is fed from the consumer hook only — each measurement observed once,
// visible after the drain barrier.
func TestIngestFeedsRegistryExactlyOnce(t *testing.T) {
	bus := comm.NewBus()
	brp := newForecastingBRP(t, bus, t.TempDir())
	ctx := context.Background()

	const n = 24
	if err := brp.IngestMeasurements(seriesMeas("p1", 0, n)); err != nil {
		t.Fatal(err)
	}
	if err := brp.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}
	st, ok := brp.ForecastStats()
	if !ok || st.Observations != n {
		t.Fatalf("registry observations = %d (ok=%v), want exactly %d", st.Observations, ok, n)
	}
	if _, ok := brp.ForecastSeries("p1", "elec", 4); !ok {
		t.Fatal("series not served after ingest drain")
	}
}

// TestCyclePublishesDirtyForecastHubs: the scheduling cycle publishes
// continuous per-series forecast queries right after its intake
// barrier, once per cycle regardless of how many batches arrived.
func TestCyclePublishesDirtyForecastHubs(t *testing.T) {
	bus := comm.NewBus()
	brp := newForecastingBRP(t, bus, t.TempDir())
	ctx := context.Background()

	hub := brp.ForecastHub("p1", "elec")
	_, ch, err := hub.Subscribe(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := brp.IngestMeasurements(seriesMeas("p1", i*2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := brp.RunSchedulingCycle(ctx, 0, StaticForecast(make([]float64, flexoffer.SlotsPerDay)), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ForecastNotifies != 1 {
		t.Fatalf("cycle published %d forecast notifications, want 1", rep.ForecastNotifies)
	}
	select {
	case note := <-ch:
		if len(note.Forecast) != 4 {
			t.Fatalf("notification horizon = %d, want 4", len(note.Forecast))
		}
	default:
		t.Fatal("no continuous-query notification after the cycle")
	}
	// A cycle with no new observations publishes nothing.
	rep, err = brp.RunSchedulingCycle(ctx, 0, StaticForecast(make([]float64, flexoffer.SlotsPerDay)), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ForecastNotifies != 0 {
		t.Fatalf("idle cycle published %d notifications, want 0", rep.ForecastNotifies)
	}
}
