package core

import (
	"context"
	"errors"
	"sort"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

// handleScheduleNotify records schedules sent back by the parent. On a
// prosumer the schedule is final; on a BRP whose aggregates were
// delegated upward, the schedule addresses a forwarded macro flex-offer
// and is disaggregated and relayed to the prosumers (paper §2: "when the
// TSO's node forwards back scheduled flex-offers to the trader, they are
// disaggregated and reported back to respective prosumers in the same
// way as locally managed flex-offers").
//
// The relay follows the same snapshot → plan → commit → deliver
// discipline as the scheduling cycle: the node lock is released before
// disaggregation and before any outbound delivery, so a slow or
// unreachable prosumer cannot block the node's intake while a batch of
// forwarded schedules is relayed downward.
func (n *Node) handleScheduleNotify(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	var body comm.ScheduleNotify
	if err := env.Decode(comm.MsgScheduleNotify, &body); err != nil {
		return nil, err
	}

	// Snapshot: final schedules commit immediately; forwarded macros
	// only capture an immutable copy of their local aggregate here. The
	// forwarded mapping is resolved at commit, not now, so a failed
	// relay leaves it in place for a retried notify.
	type relay struct {
		macroID flexoffer.ID
		agg     *agg.Aggregate
		sched   *flexoffer.Schedule
	}
	var relays []relay
	n.mu.Lock()
	for _, s := range body.Schedules {
		if localID, ok := n.forwarded[s.OfferID]; ok {
			a, ok := n.pipeline.Aggregator.Lookup(localID)
			if !ok {
				// The local aggregate was consumed (scheduled locally or
				// expired) while its macro twin was with the parent:
				// nothing left to relay; commit reconciliation below
				// guards the member level the same way.
				delete(n.forwarded, s.OfferID)
				continue
			}
			snap, _ := n.snapshotLocked(a)
			relays = append(relays, relay{
				macroID: s.OfferID,
				agg:     snap,
				sched:   &flexoffer.Schedule{OfferID: localID, Start: s.Start, Energy: s.Energy},
			})
			continue
		}
		n.schedules[s.OfferID] = s
		sched := s
		if _, err := n.store.UpdateOffer(s.OfferID, func(rec *store.OfferRecord) {
			rec.State = store.OfferScheduled
			rec.Schedule = sched
		}); err != nil && !errors.Is(err, store.ErrUnknownOffer) {
			n.mu.Unlock()
			return nil, err
		}
	}
	n.mu.Unlock()
	if len(relays) == 0 {
		return nil, nil
	}

	// Plan: disaggregate the snapshots without the lock.
	var micro []*flexoffer.Schedule
	for _, r := range relays {
		ms, err := r.agg.Disaggregate(r.sched)
		if err != nil {
			return nil, err
		}
		micro = append(micro, ms...)
	}

	// Commit + deliver, shared with the cycle path. Unreachable owners
	// are not fatal here either: their offers are already persisted as
	// scheduled and time out downstream.
	byOwner, _, err := n.commitMicroSchedules(micro)
	if err != nil {
		return nil, err
	}
	// The delegations are resolved only now that their members are
	// committed; a concurrent duplicate notify between snapshot and
	// here relays the same members again, and reconciliation drops the
	// second commit.
	n.mu.Lock()
	for _, r := range relays {
		delete(n.forwarded, r.macroID)
	}
	n.mu.Unlock()
	_, _ = n.deliver(ctx, byOwner)
	return nil, nil
}

// commitMicroSchedules is the commit phase shared by the scheduling
// cycle and the forwarded-schedule relay. Under the node lock it
// reconciles planned micro schedules against the live pending set: an
// offer that was scheduled, expired or otherwise removed while the plan
// ran without the lock is dropped (reported in the reconciled count)
// rather than double-scheduled. Survivors are persisted as scheduled,
// leave the pending set and the aggregation pipeline, and are grouped
// by owner for the deliver phase. Offers accepted mid-plan are
// untouched: they were never in the snapshot, stay pending and keep
// their place in the live pipeline for the next cycle.
func (n *Node) commitMicroSchedules(micro []*flexoffer.Schedule) (map[string][]*flexoffer.Schedule, int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	byOwner := make(map[string][]*flexoffer.Schedule)
	reconciled := 0

	// Stage the transitions of every schedule still pending, then apply
	// them as one UpdateOffers batch: a single WAL group commit instead
	// of one log append per micro schedule.
	var updates []store.OfferUpdate
	var staged []*flexoffer.Schedule
	for _, s := range micro {
		if _, ok := n.pending[s.OfferID]; !ok {
			reconciled++
			continue
		}
		sched := s
		updates = append(updates, store.OfferUpdate{ID: s.OfferID, Mutate: func(r *store.OfferRecord) {
			r.State = store.OfferScheduled
			r.Schedule = sched
		}})
		staged = append(staged, s)
	}
	results, err := n.store.UpdateOffers(updates)
	if err != nil {
		return nil, reconciled, err
	}

	var done []agg.FlexOfferUpdate
	for i, res := range results {
		s := staged[i]
		if res.Err != nil {
			if errors.Is(res.Err, store.ErrUnknownOffer) {
				reconciled++
				continue
			}
			return nil, reconciled, res.Err
		}
		// A duplicate micro schedule in the same batch (e.g. a macro
		// relayed twice) passes staging both times — pending is only
		// pruned here. The second occurrence finds the offer gone;
		// feeding a nil offer into the pipeline delete would corrupt the
		// retire batch, so reconcile it away instead.
		f, ok := n.pending[s.OfferID]
		if !ok {
			reconciled++
			continue
		}
		delete(n.pending, s.OfferID)
		done = append(done, agg.FlexOfferUpdate{Kind: agg.Delete, Offer: f})
		byOwner[res.Record.Owner] = append(byOwner[res.Record.Owner], s)
	}
	if len(done) > 0 {
		if _, err := n.pipeline.Apply(done...); err != nil {
			return nil, reconciled, err
		}
	}
	return byOwner, reconciled, nil
}

// deliver fans the committed schedules out to their owners with bounded
// concurrency, outside the node lock. It returns the number of owners
// that could not be reached and, separately, the owners skipped because
// their circuit breaker is open — the degraded-delivery signal the
// cycle report surfaces instead of stalling on dead peers.
func (n *Node) deliver(ctx context.Context, byOwner map[string][]*flexoffer.Schedule) (int, []string) {
	if n.client == nil || len(byOwner) == 0 {
		return 0, nil
	}
	failed := n.client.NotifySchedulesAll(ctx, byOwner, n.cfg.NotifyLimit)
	fails := 0
	var skipped []string
	for owner, err := range failed {
		if errors.Is(err, comm.ErrBreakerOpen) {
			skipped = append(skipped, owner)
			continue
		}
		fails++
	}
	sort.Strings(skipped)
	return fails, skipped
}

// ScheduleFor returns the schedule a prosumer received for an offer, or
// the offer's default schedule after its assignment deadline passed (the
// paper's graceful fallback: "pending flexibilities simply timeout and
// customers fall back to the open contract").
//
// The expiry transition is staged under the node lock and applied after
// releasing it: UpdateOffer appends to the WAL (a group commit that can
// block on fsync), and message handlers must never queue behind a disk
// flush just because a caller polled its schedule. UpdateOffer's own
// mutate-under-record-lock semantics keep the transition safe against a
// schedule arriving concurrently — a record that moved to
// OfferScheduled meanwhile is left untouched.
func (n *Node) ScheduleFor(f *flexoffer.FlexOffer, now flexoffer.Time) *flexoffer.Schedule {
	n.mu.Lock()
	if s, ok := n.schedules[f.ID]; ok {
		n.mu.Unlock()
		return s
	}
	expired := now >= f.AssignBefore
	n.mu.Unlock()
	if !expired {
		return nil
	}
	_, _ = n.store.UpdateOffer(f.ID, func(rec *store.OfferRecord) {
		if rec.State != store.OfferScheduled {
			rec.State = store.OfferExpired
		}
	})
	return f.DefaultSchedule()
}
