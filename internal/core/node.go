// Package core is the LEDMS node (paper §3): the Control component that
// orchestrates communication, data management, aggregation, forecasting,
// scheduling and negotiation inside one node of the EDMS hierarchy. The
// same node type serves all three levels (the EDMS "consists of millions
// of homogeneous nodes"); the role only selects which duties are active.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/flexoffer"
	"mirabel/internal/forecast"
	"mirabel/internal/market"
	"mirabel/internal/negotiate"
	"mirabel/internal/sched"
	"mirabel/internal/settle"
	"mirabel/internal/store"
)

// Config assembles a node.
type Config struct {
	// Name is the node's endpoint name on the transport.
	Name string
	// Role selects prosumer / BRP / TSO duties.
	Role store.Role
	// Parent is the endpoint of the next hierarchy level (empty for a
	// TSO).
	Parent string
	// Transport connects the node to its peers.
	Transport comm.Transport
	// Store is the node's Data Management component (in-memory if nil).
	Store *store.Store

	// BRP/TSO specific configuration.
	AggParams      agg.Params           // aggregation thresholds
	BinPacker      agg.BinPackerOptions // optional bin-packer bounds
	Valuator       *negotiate.Valuator  // negotiation policy (default NewValuator)
	Scheduler      sched.Scheduler      // scheduling strategy (default randomized greedy)
	SchedOpts      sched.Options        // per-cycle scheduling budget
	Market         *market.DayAhead     // optional market access
	HorizonSlots   int                  // scheduling horizon (default one day)
	RequestTimeout time.Duration        // transport request timeout (default comm.DefaultTimeout)

	// Forecast optionally serves MsgForecastRequest queries from peers
	// (a forecast.Maintainer, a StaticForecast, ...). Nil nodes answer
	// forecast queries with an error.
	Forecast forecaster

	// Middleware is appended to the node's built-in handler chain
	// (recovery, metrics) — the seam where logging, tracing or
	// rate-limiting layer in without touching dispatch.
	Middleware []comm.Middleware
}

// Node is one LEDMS instance.
type Node struct {
	cfg     Config
	client  *comm.Client
	handler comm.Handler
	metrics *comm.Metrics

	mu       sync.Mutex
	store    *store.Store
	pipeline *agg.Pipeline
	valuator *negotiate.Valuator

	// pending maps accepted-but-unscheduled offers (the paper's pending
	// flexibilities that may time out).
	pending map[flexoffer.ID]*flexoffer.FlexOffer

	// received schedules on a prosumer node.
	schedules map[flexoffer.ID]*flexoffer.Schedule

	// forwarded maps the IDs of macro flex-offers delegated to the
	// parent (paper §2: aggregated flex-offers are sent to the TSO "for
	// further aggregation, scheduling, and disaggregation") back to the
	// local aggregate they represent.
	forwarded map[flexoffer.ID]flexoffer.ID
	nextFwdID flexoffer.ID
}

// NewNode builds a node and registers nothing — attach it to a transport
// with comm.Bus.Register(name, node.Handler()) or
// comm.ListenTCP(addr, node.Handler()).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: node needs a name")
	}
	if cfg.Role == "" {
		return nil, fmt.Errorf("core: node needs a role")
	}
	if cfg.Store == nil {
		cfg.Store = store.NewInMemory()
	}
	if cfg.Valuator == nil {
		cfg.Valuator = negotiate.NewValuator()
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = &sched.RandomizedGreedy{}
	}
	if cfg.HorizonSlots <= 0 {
		cfg.HorizonSlots = flexoffer.SlotsPerDay
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = comm.DefaultTimeout
	}
	n := &Node{
		cfg:       cfg,
		metrics:   &comm.Metrics{},
		store:     cfg.Store,
		pipeline:  agg.NewPipeline(cfg.AggParams, cfg.BinPacker),
		valuator:  cfg.Valuator,
		pending:   make(map[flexoffer.ID]*flexoffer.FlexOffer),
		schedules: make(map[flexoffer.ID]*flexoffer.Schedule),
		forwarded: make(map[flexoffer.ID]flexoffer.ID),
		nextFwdID: 1 << 32, // forwarded macro offers use a disjoint id space
	}
	if cfg.Transport != nil {
		n.client = comm.NewClient(cfg.Name, cfg.Transport, comm.WithRequestTimeout(cfg.RequestTimeout))
	}

	// Dispatch: one registered handler per message type, wrapped in the
	// node's middleware chain. Recover sits innermost so a handler
	// panic surfaces as an ordinary error to the configured middleware
	// (logging sees it) and to Collect (metrics count it).
	mux := comm.NewMux()
	mux.Handle(comm.MsgFlexOfferSubmit, n.handleOfferSubmit)
	mux.Handle(comm.MsgMeasurementReport, n.handleMeasurement)
	mux.Handle(comm.MsgScheduleNotify, n.handleScheduleNotify)
	mux.Handle(comm.MsgForecastRequest, n.handleForecastRequest)
	mux.Handle(comm.MsgPing, n.handlePing)
	mux.HandleFallback(func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		return nil, fmt.Errorf("core: %s cannot handle %s", n.cfg.Name, env.Type)
	})
	chain := append([]comm.Middleware{n.metrics.Collect()}, cfg.Middleware...)
	chain = append(chain, comm.Recover())
	n.handler = comm.Chain(mux.Serve, chain...)

	if err := n.store.PutActor(store.Actor{ID: cfg.Name, Name: cfg.Name, Role: cfg.Role, Parent: cfg.Parent}); err != nil {
		return nil, err
	}
	return n, nil
}

// Name returns the node's endpoint name.
func (n *Node) Name() string { return n.cfg.Name }

// Store exposes the node's data management component.
func (n *Node) Store() *store.Store { return n.store }

// Metrics exposes the node's per-message-type handler statistics.
func (n *Node) Metrics() *comm.Metrics { return n.metrics }

// Handler returns the node's message entry point — the per-type
// dispatch wrapped in its middleware chain — for registration on a
// transport.
func (n *Node) Handler() comm.Handler { return n.handler }

// Handle processes one envelope through the full handler chain
// (convenience for in-process callers and tests).
func (n *Node) Handle(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	return n.handler(ctx, env)
}

// handlePing answers liveness probes.
func (n *Node) handlePing(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	reply, err := comm.NewEnvelope(comm.MsgPong, n.cfg.Name, env.From, nil)
	if err != nil {
		return nil, err
	}
	return &reply, nil
}

// handleForecastRequest serves forecast queries from the node's
// configured forecast source (paper §3: forecasts are first-class
// messages between nodes).
func (n *Node) handleForecastRequest(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	var req comm.ForecastRequest
	if err := env.Decode(comm.MsgForecastRequest, &req); err != nil {
		return nil, err
	}
	if n.cfg.Forecast == nil {
		return nil, fmt.Errorf("core: %s has no forecast source", n.cfg.Name)
	}
	if req.Horizon <= 0 {
		return nil, fmt.Errorf("core: forecast horizon must be positive, got %d", req.Horizon)
	}
	n.mu.Lock()
	now := n.nowLocked()
	n.mu.Unlock()
	reply, err := comm.NewEnvelope(comm.MsgForecastReply, n.cfg.Name, env.From, comm.ForecastReply{
		EnergyType: req.EnergyType,
		FirstSlot:  now,
		Values:     n.cfg.Forecast.Forecast(req.Horizon),
	})
	if err != nil {
		return nil, err
	}
	return &reply, nil
}

// handleOfferSubmit runs negotiation and feeds accepted offers into the
// aggregation pipeline (BRP/TSO duty).
func (n *Node) handleOfferSubmit(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	if n.cfg.Role == store.RoleProsumer {
		return nil, fmt.Errorf("core: prosumer %s does not take flex-offers", n.cfg.Name)
	}
	var body comm.FlexOfferSubmit
	if err := env.Decode(comm.MsgFlexOfferSubmit, &body); err != nil {
		return nil, err
	}
	decision := n.AcceptOffer(body.Offer, env.From)
	reply, err := comm.NewEnvelope(comm.MsgFlexOfferDecision, n.cfg.Name, env.From, comm.FlexOfferDecision{
		OfferID:    body.Offer.ID,
		Accept:     decision.Accept,
		Reason:     decision.Reason,
		PremiumEUR: decision.Price,
	})
	if err != nil {
		return nil, err
	}
	return &reply, nil
}

// AcceptOffer is the in-process form of flex-offer submission: the
// negotiation component decides; accepted offers enter the store and the
// aggregation pipeline as pending flexibilities.
func (n *Node) AcceptOffer(f *flexoffer.FlexOffer, owner string) negotiate.Decision {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Negotiation evaluates at the current planning time: the node's
	// notion of "now" is the earliest moment it could still schedule.
	decision := n.valuator.Decide(f, n.nowLocked())
	state := store.OfferRejected
	if decision.Accept {
		state = store.OfferAccepted
	}
	// The stored offer carries the negotiated premium, which settlement
	// reads back after execution.
	priced := f.Clone()
	priced.CostPerKWh = decision.Price
	rec := store.OfferRecord{Offer: priced, Owner: owner, State: state}
	if err := n.store.PutOffer(rec); err != nil {
		return negotiate.Decision{Accept: false, Reason: err.Error()}
	}
	if !decision.Accept {
		return decision
	}
	if _, err := n.pipeline.Apply(agg.FlexOfferUpdate{Kind: agg.Insert, Offer: priced}); err != nil {
		// The pipeline rejected the offer (e.g. duplicate id): undo.
		rec.State = store.OfferRejected
		_ = n.store.PutOffer(rec)
		return negotiate.Decision{Accept: false, Reason: err.Error()}
	}
	n.pending[f.ID] = priced
	return decision
}

// nowLocked estimates the node's planning time: without a wall clock the
// simulation drives time explicitly, so "now" is zero until offers give
// it context. Kept as a method for future wall-clock integration.
func (n *Node) nowLocked() flexoffer.Time { return 0 }

// handleMeasurement stores a reported measurement (BRP duty).
func (n *Node) handleMeasurement(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	var body comm.MeasurementReport
	if err := env.Decode(comm.MsgMeasurementReport, &body); err != nil {
		return nil, err
	}
	return nil, n.store.PutMeasurement(store.Measurement{
		Actor: body.Actor, EnergyType: body.EnergyType, Slot: body.Slot, KWh: body.KWh,
	})
}

// handleScheduleNotify records schedules sent back by the parent. On a
// prosumer the schedule is final; on a BRP whose aggregates were
// delegated upward, the schedule addresses a forwarded macro flex-offer
// and is disaggregated and relayed to the prosumers (paper §2: "when the
// TSO's node forwards back scheduled flex-offers to the trader, they are
// disaggregated and reported back to respective prosumers in the same
// way as locally managed flex-offers").
func (n *Node) handleScheduleNotify(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	var body comm.ScheduleNotify
	if err := env.Decode(comm.MsgScheduleNotify, &body); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range body.Schedules {
		if localID, ok := n.forwarded[s.OfferID]; ok {
			if err := n.relayForwardedSchedule(ctx, localID, s); err != nil {
				return nil, err
			}
			delete(n.forwarded, s.OfferID)
			continue
		}
		n.schedules[s.OfferID] = s
		if rec, ok := n.store.GetOffer(s.OfferID); ok {
			rec.State = store.OfferScheduled
			rec.Schedule = s
			if err := n.store.PutOffer(rec); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

// relayForwardedSchedule disaggregates a schedule for a delegated macro
// flex-offer and delivers the micro schedules. Caller holds the lock.
func (n *Node) relayForwardedSchedule(ctx context.Context, localID flexoffer.ID, s *flexoffer.Schedule) error {
	translated := &flexoffer.Schedule{OfferID: localID, Start: s.Start, Energy: s.Energy}
	micro, err := n.pipeline.Disaggregate([]*flexoffer.Schedule{translated})
	if err != nil {
		return err
	}
	if _, err := n.deliverMicroSchedules(ctx, micro); err != nil {
		return err
	}
	// The scheduled members leave the pipeline and the pending set.
	var done []agg.FlexOfferUpdate
	for _, ms := range micro {
		if f, ok := n.pending[ms.OfferID]; ok {
			done = append(done, agg.FlexOfferUpdate{Kind: agg.Delete, Offer: f})
			delete(n.pending, ms.OfferID)
		}
	}
	if len(done) > 0 {
		if _, err := n.pipeline.Apply(done...); err != nil {
			return err
		}
	}
	return nil
}

// deliverMicroSchedules stores and sends micro schedules to their
// owners; unreachable owners are counted, not fatal. Caller holds the
// lock.
func (n *Node) deliverMicroSchedules(ctx context.Context, micro []*flexoffer.Schedule) (notifyFailures int, err error) {
	byOwner := make(map[string][]*flexoffer.Schedule)
	for _, s := range micro {
		rec, ok := n.store.GetOffer(s.OfferID)
		if !ok {
			continue
		}
		rec.State = store.OfferScheduled
		rec.Schedule = s
		if err := n.store.PutOffer(rec); err != nil {
			return notifyFailures, err
		}
		byOwner[rec.Owner] = append(byOwner[rec.Owner], s)
	}
	if n.client == nil {
		return 0, nil
	}
	for owner, scheds := range byOwner {
		if err := n.client.NotifySchedules(ctx, owner, scheds); err != nil {
			notifyFailures++
		}
	}
	return notifyFailures, nil
}

// ForwardAggregates delegates the node's current macro flex-offers to
// its parent (paper §2: "the aggregated flex-offers are sent to a TSO's
// node for further aggregation, scheduling, and disaggregation"). The
// members stay pending locally until the parent's schedules come back
// through handleScheduleNotify; if none arrive, they time out like any
// other pending flexibility. Returns how many aggregates the parent
// accepted.
func (n *Node) ForwardAggregates(ctx context.Context) (int, error) {
	if n.client == nil || n.cfg.Parent == "" {
		return 0, fmt.Errorf("core: %s has no parent to forward to", n.cfg.Name)
	}
	n.mu.Lock()
	aggregates := n.pipeline.Aggregates()
	type fwd struct {
		offer   *flexoffer.FlexOffer
		localID flexoffer.ID
	}
	fwds := make([]fwd, 0, len(aggregates))
	for _, a := range aggregates {
		macro := a.Offer.Clone()
		macro.ID = n.nextFwdID
		macro.Prosumer = n.cfg.Name
		n.nextFwdID++
		fwds = append(fwds, fwd{offer: macro, localID: a.Offer.ID})
	}
	n.mu.Unlock()

	accepted := 0
	for _, f := range fwds {
		if err := ctx.Err(); err != nil {
			return accepted, err
		}
		decision, err := n.client.SubmitOffer(ctx, n.cfg.Parent, f.offer)
		if err != nil {
			// A canceled caller is not an unreachable parent: surface it.
			if cerr := ctx.Err(); cerr != nil {
				return accepted, cerr
			}
			continue // unreachable parent: offers stay pending and may time out
		}
		if decision.Accept {
			n.mu.Lock()
			n.forwarded[f.offer.ID] = f.localID
			n.mu.Unlock()
			accepted++
		}
	}
	return accepted, nil
}

// ScheduleFor returns the schedule a prosumer received for an offer, or
// the offer's default schedule after its assignment deadline passed (the
// paper's graceful fallback: "pending flexibilities simply timeout and
// customers fall back to the open contract").
func (n *Node) ScheduleFor(f *flexoffer.FlexOffer, now flexoffer.Time) *flexoffer.Schedule {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.schedules[f.ID]; ok {
		return s
	}
	if now >= f.AssignBefore {
		if rec, ok := n.store.GetOffer(f.ID); ok && rec.State != store.OfferScheduled {
			rec.State = store.OfferExpired
			_ = n.store.PutOffer(rec)
		}
		return f.DefaultSchedule()
	}
	return nil
}

// PendingOffers returns the accepted, not-yet-scheduled offers.
func (n *Node) PendingOffers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

// Aggregates exposes the current macro flex-offers (diagnostics).
func (n *Node) Aggregates() []*agg.Aggregate {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pipeline.Aggregates()
}

// CycleReport summarizes one scheduling cycle of a BRP/TSO node.
type CycleReport struct {
	Offers          int     // pending micro flex-offers considered
	Aggregates      int     // macro flex-offers scheduled
	ScheduleCost    float64 // cost of the chosen schedule (EUR)
	BaselineCost    float64 // cost had no flexibility been used
	MicroSchedules  int     // disaggregated schedules produced
	Expired         int     // offers dropped because their deadline passed
	NotifyFailures  int     // prosumers that could not be reached
	AggregationTime time.Duration
	SchedulingTime  time.Duration
}

// forecaster produces the baseline for a horizon; the node's scheduling
// cycle accepts any source (a forecast.Maintainer, a fixed series, ...).
type forecaster interface {
	Forecast(h int) []float64
}

// RunSchedulingCycle executes the full BRP workflow at planning time now
// for [now, now+horizon): drop expired offers, schedule the aggregates
// against the forecast baseline, disaggregate, store and deliver the
// micro schedules to their owners. Cancelling ctx stops outbound
// schedule deliveries.
//
// demandFc and resFc forecast the non-flexible consumption and RES
// production of the balance group; imbalancePrices gives the per-slot
// mismatch penalty (nil = flat 0.15 EUR/kWh).
func (n *Node) RunSchedulingCycle(ctx context.Context, now flexoffer.Time, demandFc, resFc forecaster, imbalancePrices []float64) (*CycleReport, error) {
	if n.cfg.Role == store.RoleProsumer {
		return nil, fmt.Errorf("core: prosumer %s does not schedule", n.cfg.Name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()

	rep := &CycleReport{}
	horizon := n.cfg.HorizonSlots

	// 1. Expire pending offers whose assignment deadline has passed or
	// whose execution window no longer fits the horizon.
	end := now + flexoffer.Time(horizon)
	var expired []agg.FlexOfferUpdate
	for id, f := range n.pending {
		if now >= f.AssignBefore || f.EarliestStart < now || f.LatestEnd() > end {
			expired = append(expired, agg.FlexOfferUpdate{Kind: agg.Delete, Offer: f})
			delete(n.pending, id)
			rep.Expired++
			if rec, ok := n.store.GetOffer(id); ok {
				rec.State = store.OfferExpired
				_ = n.store.PutOffer(rec)
			}
		}
	}
	t0 := time.Now()
	if len(expired) > 0 {
		if _, err := n.pipeline.Apply(expired...); err != nil {
			return nil, err
		}
	}
	aggregates := n.pipeline.Aggregates()
	rep.AggregationTime = time.Since(t0)
	rep.Offers = len(n.pending)
	rep.Aggregates = len(aggregates)

	// 2. Build the scheduling problem from the forecasts.
	baseline := make([]float64, horizon)
	if demandFc != nil {
		copy(baseline, demandFc.Forecast(horizon))
	}
	if resFc != nil {
		for i, v := range resFc.Forecast(horizon) {
			if i < horizon {
				baseline[i] -= v
			}
		}
	}
	if imbalancePrices == nil {
		imbalancePrices = make([]float64, horizon)
		for i := range imbalancePrices {
			imbalancePrices[i] = 0.15
		}
	}
	offers := make([]*flexoffer.FlexOffer, len(aggregates))
	for i, a := range aggregates {
		offers[i] = a.Offer
	}
	problem := &sched.Problem{
		Start:          now,
		Slots:          horizon,
		Baseline:       baseline,
		ImbalancePrice: imbalancePrices,
		Offers:         offers,
		Market:         n.cfg.Market,
	}
	rep.BaselineCost = problem.BaselineCost()

	if len(aggregates) == 0 {
		return rep, nil
	}

	// 3. Schedule the macro flex-offers.
	t0 = time.Now()
	res, err := n.cfg.Scheduler.Schedule(problem, n.cfg.SchedOpts)
	if err != nil {
		return nil, err
	}
	rep.SchedulingTime = time.Since(t0)
	rep.ScheduleCost = res.Cost

	// 4. Disaggregate into micro schedules.
	micro, err := n.pipeline.Disaggregate(problem.Schedules(res.Solution))
	if err != nil {
		return nil, err
	}
	rep.MicroSchedules = len(micro)

	// 5. Record and deliver. Unreachable prosumers are counted, not
	// fatal: their offers will time out and fall back gracefully.
	failures, err := n.deliverMicroSchedules(ctx, micro)
	if err != nil {
		return nil, err
	}
	rep.NotifyFailures = failures
	for _, s := range micro {
		delete(n.pending, s.OfferID)
	}

	// The scheduled offers leave the aggregation pipeline.
	var done []agg.FlexOfferUpdate
	for _, a := range aggregates {
		for _, m := range a.Members() {
			done = append(done, agg.FlexOfferUpdate{Kind: agg.Delete, Offer: m})
		}
	}
	if _, err := n.pipeline.Apply(done...); err != nil {
		return nil, err
	}
	return rep, nil
}

// SettleExecuted settles all scheduled flex-offers against their metered
// execution: premiums are paid, deviations penalized and (optionally)
// the realized profit shared — the execution-time half of the
// negotiation component. metered maps offer IDs to measured energy per
// schedule slice; offers without metering are treated as perfectly
// compliant (metered = scheduled). Settled offers move to the executed
// state.
func (n *Node) SettleExecuted(metered map[flexoffer.ID][]float64, cfg settle.Config) (*settle.Report, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var items []settle.Item
	var recs []store.OfferRecord
	for _, rec := range n.store.Offers(store.OfferFilter{State: store.OfferScheduled}) {
		if rec.Schedule == nil {
			continue
		}
		m, ok := metered[rec.Offer.ID]
		if !ok {
			m = settle.MeteredFromSchedule(rec.Schedule)
		}
		items = append(items, settle.Item{
			Offer:      rec.Offer,
			Schedule:   rec.Schedule,
			PremiumEUR: rec.Offer.CostPerKWh,
			Metered:    m,
		})
		recs = append(recs, rec)
	}
	rep, err := settle.Settle(items, cfg)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		rec.State = store.OfferExecuted
		if err := n.store.PutOffer(rec); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// SubmitOfferTo sends a flex-offer to the node's parent and returns the
// decision (prosumer duty).
func (n *Node) SubmitOfferTo(ctx context.Context, f *flexoffer.FlexOffer) (comm.FlexOfferDecision, error) {
	if n.client == nil || n.cfg.Parent == "" {
		return comm.FlexOfferDecision{}, fmt.Errorf("core: %s has no parent to submit to", n.cfg.Name)
	}
	if err := n.store.PutOffer(store.OfferRecord{Offer: f, Owner: n.cfg.Name, State: store.OfferReceived}); err != nil {
		return comm.FlexOfferDecision{}, err
	}
	decision, err := n.client.SubmitOffer(ctx, n.cfg.Parent, f)
	if err != nil {
		return comm.FlexOfferDecision{}, err
	}
	rec, _ := n.store.GetOffer(f.ID)
	if decision.Accept {
		rec.State = store.OfferAccepted
	} else {
		rec.State = store.OfferRejected
	}
	rec.Offer = f
	rec.Owner = n.cfg.Name
	if err := n.store.PutOffer(rec); err != nil {
		return comm.FlexOfferDecision{}, err
	}
	return decision, nil
}

// ReportMeasurement sends a metered value to the parent and stores it
// locally (prosumer duty).
func (n *Node) ReportMeasurement(ctx context.Context, energyType string, slot flexoffer.Time, kwh float64) error {
	if err := n.store.PutMeasurement(store.Measurement{Actor: n.cfg.Name, EnergyType: energyType, Slot: slot, KWh: kwh}); err != nil {
		return err
	}
	if n.client == nil || n.cfg.Parent == "" {
		return nil
	}
	return n.client.ReportMeasurement(ctx, n.cfg.Parent, comm.MeasurementReport{
		Actor: n.cfg.Name, EnergyType: energyType, Slot: slot, KWh: kwh,
	})
}

// QueryParentForecast asks the parent node for its forecast of
// energyType over horizon slots (prosumer/BRP duty).
func (n *Node) QueryParentForecast(ctx context.Context, energyType string, horizon int) (comm.ForecastReply, error) {
	if n.client == nil || n.cfg.Parent == "" {
		return comm.ForecastReply{}, fmt.Errorf("core: %s has no parent to query", n.cfg.Name)
	}
	return n.client.QueryForecast(ctx, n.cfg.Parent, energyType, horizon)
}

// ensure forecast.Maintainer satisfies the forecaster seam.
var _ forecaster = (*forecast.Maintainer)(nil)
