// Package core is the LEDMS node (paper §3): the Control component that
// orchestrates communication, data management, aggregation, forecasting,
// scheduling and negotiation inside one node of the EDMS hierarchy. The
// same node type serves all three levels (the EDMS "consists of millions
// of homogeneous nodes"); the role only selects which duties are active.
//
// The node's planner-driven flows — the scheduling cycle, the
// forwarded-schedule relay and aggregate forwarding — follow a strict
// snapshot → plan → commit → deliver discipline (cycle.go, deliver.go):
// the node mutex is held only to capture immutable snapshots and to
// commit results, never across the scheduler search, aggregation-snapshot
// disaggregation or transport I/O, so offer intake stays responsive for
// the whole cycle no matter how slow the search or the prosumers are.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/flexoffer"
	"mirabel/internal/forecast"
	"mirabel/internal/ingest"
	"mirabel/internal/market"
	"mirabel/internal/negotiate"
	"mirabel/internal/sched"
	"mirabel/internal/settle"
	"mirabel/internal/store"
)

// Config assembles a node.
type Config struct {
	// Name is the node's endpoint name on the transport.
	Name string
	// Role selects prosumer / BRP / TSO duties.
	Role store.Role
	// Parent is the endpoint of the next hierarchy level (empty for a
	// TSO).
	Parent string
	// Transport connects the node to its peers.
	Transport comm.Transport
	// Store is the node's Data Management component (in-memory if nil).
	Store *store.Store

	// BRP/TSO specific configuration.
	AggParams agg.Params           // aggregation thresholds
	BinPacker agg.BinPackerOptions // optional bin-packer bounds
	Valuator  *negotiate.Valuator  // negotiation policy (default NewValuator)
	Scheduler sched.Scheduler      // scheduling strategy (default randomized greedy)
	SchedOpts sched.Options        // per-cycle scheduling budget
	// SchedWorkers > 1 runs the plan phase's search as a parallel
	// portfolio of that many workers (sched.Parallel): replicas of
	// Scheduler when one is configured, the default mixed portfolio
	// otherwise. 0 or 1 keeps the search single-threaded.
	SchedWorkers int
	// AggWorkers > 1 fans the cycle's batched per-aggregate work
	// (internal/agg sub-group transactions) across that many workers.
	// Results are identical at any worker count; 0 or 1 runs serially.
	AggWorkers     int
	Market         *market.DayAhead // optional market access
	HorizonSlots   int              // scheduling horizon (default one day)
	RequestTimeout time.Duration    // transport request timeout (default comm.DefaultTimeout)

	// NotifyLimit caps the concurrent outbound requests of the deliver
	// phase — schedule fan-out and parent submissions (default
	// comm.DefaultFanOutLimit).
	NotifyLimit int

	// Forecast optionally serves MsgForecastRequest queries from peers
	// (a forecast.Maintainer, a StaticForecast, ...). Nil nodes answer
	// forecast queries with an error.
	Forecast forecaster

	// Forecasting, when non-nil, runs the fleet-scale forecast service
	// (forecast.Registry): every measurement the node ingests — sync
	// store writes and async ingest drains alike — maintains a
	// per-(actor,energy) model, re-estimated on a bounded background
	// pool. Peers address individual series via ForecastRequest.Actor,
	// and the scheduling cycle publishes per-series forecast hubs after
	// its intake barrier.
	Forecasting *forecast.RegistryConfig

	// Middleware is appended to the node's built-in handler chain
	// (recovery, metrics) — the seam where logging, tracing or
	// rate-limiting layer in without touching dispatch.
	Middleware []comm.Middleware

	// Ingest, when non-nil, routes intake — measurement reports and
	// flex-offer records — through a durable async queue
	// (internal/ingest) instead of synchronous store round-trips:
	// producers are acked on the ingest journal's group commit and
	// consumers drain into the store with batch coalescing. Ingest.Store
	// is filled with the node's store; the scheduling cycle drains the
	// queue before snapshotting so plans always see every acked offer.
	Ingest *ingest.Config

	// Breaker, when non-nil, wraps Transport with per-destination
	// circuit breaking (comm.Breaker): tripped peers are skipped with
	// ErrBreakerOpen instead of stalling fan-out, and the cycle probes
	// open circuits after delivery so healed peers rejoin. Origin is
	// filled with the node's name.
	Breaker *comm.BreakerConfig

	// Retry, when non-nil, wraps the node's outbound transport with the
	// retry policy (comm.Retry): jittered exponential backoff, retries
	// restricted to idempotent message types unless the failure proves
	// the request never left. It composes OUTSIDE the breaker, so an
	// open circuit fails a call instantly instead of being hammered
	// through backoff loops.
	Retry *comm.RetryConfig

	// Settlement, when non-nil, opens a durable hash-chained settlement
	// ledger (settle.OpenLedger): SettleExecuted becomes a batched,
	// crash-recoverable run whose ledger appends are acked before
	// offers transition, and re-settlement after a crash dedups
	// against the chain. Nil keeps the seed-era in-memory settlement.
	Settlement *settle.LedgerConfig
}

// Node is one LEDMS instance.
type Node struct {
	cfg     Config
	client  *comm.Client
	handler comm.Handler
	metrics *comm.Metrics
	ingest  *ingest.Queue      // nil = synchronous intake
	breaker *comm.Breaker      // nil = no circuit breaking
	retry   *comm.Retry        // nil = no retry policy
	fcasts  *forecast.Registry // nil = no per-series forecast service
	ledger  *settle.Ledger     // nil = in-memory settlement only

	// cycleMu serializes the planner-driven flows (RunSchedulingCycle,
	// ForwardAggregates) against each other. It is never held while mu
	// is wanted by message handlers, and it IS held across transport
	// I/O — that is its point: long plan and deliver phases proceed
	// under cycleMu alone while intake keeps flowing under mu.
	cycleMu sync.Mutex

	mu       sync.Mutex
	store    *store.Store
	pipeline *agg.Pipeline
	valuator *negotiate.Valuator

	// snapCache holds the last Snapshot taken of each live aggregate,
	// keyed by macro flex-offer ID. A snapshot is reused while the live
	// aggregate's Version is unchanged, so stable aggregates cost the
	// planning phase nothing cycle over cycle.
	snapCache map[flexoffer.ID]*agg.Aggregate

	// planTime is the node's latest planning time: the start slot of
	// the most recent scheduling cycle. Offer valuation and forecast
	// replies are anchored at it.
	planTime flexoffer.Time

	// pending maps accepted-but-unscheduled offers (the paper's pending
	// flexibilities that may time out).
	pending map[flexoffer.ID]*flexoffer.FlexOffer

	// received schedules on a prosumer node.
	schedules map[flexoffer.ID]*flexoffer.Schedule

	// forwarded maps the IDs of macro flex-offers delegated to the
	// parent (paper §2: aggregated flex-offers are sent to the TSO "for
	// further aggregation, scheduling, and disaggregation") back to the
	// local aggregate they represent.
	forwarded map[flexoffer.ID]flexoffer.ID
	nextFwdID flexoffer.ID

	// recoveredPending counts accepted offers re-admitted into the
	// planning pipeline from the store at construction — a reopened node
	// schedules what its predecessor had accepted but not yet placed.
	recoveredPending int
}

// NewNode builds a node and registers nothing — attach it to a transport
// with comm.Bus.Register(name, node.Handler()) or
// comm.ListenTCP(addr, node.Handler()).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: node needs a name")
	}
	if cfg.Role == "" {
		return nil, fmt.Errorf("core: node needs a role")
	}
	if cfg.Store == nil {
		cfg.Store = store.NewInMemory()
	}
	if cfg.Valuator == nil {
		cfg.Valuator = negotiate.NewValuator()
	}
	switch {
	case cfg.SchedWorkers > 1 && cfg.Scheduler != nil:
		cfg.Scheduler = &sched.Parallel{Workers: cfg.SchedWorkers, Strategies: []sched.Scheduler{cfg.Scheduler}}
	case cfg.SchedWorkers > 1:
		cfg.Scheduler = &sched.Parallel{Workers: cfg.SchedWorkers}
	case cfg.Scheduler == nil:
		cfg.Scheduler = &sched.RandomizedGreedy{}
	}
	if cfg.HorizonSlots <= 0 {
		cfg.HorizonSlots = flexoffer.SlotsPerDay
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = comm.DefaultTimeout
	}
	n := &Node{
		cfg:       cfg,
		metrics:   &comm.Metrics{},
		store:     cfg.Store,
		pipeline:  agg.NewPipeline(cfg.AggParams, cfg.BinPacker),
		valuator:  cfg.Valuator,
		snapCache: make(map[flexoffer.ID]*agg.Aggregate),
		pending:   make(map[flexoffer.ID]*flexoffer.FlexOffer),
		schedules: make(map[flexoffer.ID]*flexoffer.Schedule),
		forwarded: make(map[flexoffer.ID]flexoffer.ID),
		nextFwdID: 1 << 32, // forwarded macro offers use a disjoint id space
	}
	n.pipeline.Workers = cfg.AggWorkers
	if cfg.Transport != nil {
		transport := cfg.Transport
		if cfg.Breaker != nil {
			bc := *cfg.Breaker
			bc.Origin = cfg.Name
			n.breaker = comm.NewBreaker(transport, bc)
			transport = n.breaker
		}
		if cfg.Retry != nil {
			// Retry outermost: a retry that meets ErrBreakerOpen aborts
			// instead of sleeping through backoff against a dead peer.
			n.retry = comm.NewRetry(transport, *cfg.Retry)
			transport = n.retry
		}
		n.client = comm.NewClient(cfg.Name, transport, comm.WithRequestTimeout(cfg.RequestTimeout))
	}
	if cfg.Forecasting != nil {
		reg, err := forecast.NewRegistry(*cfg.Forecasting)
		if err != nil {
			return nil, fmt.Errorf("core: forecast registry: %w", err)
		}
		n.fcasts = reg
	}
	if cfg.Ingest != nil {
		ic := *cfg.Ingest
		ic.Store = n.store
		if n.fcasts != nil {
			// The apply funnel feeds the forecast service: live consumed
			// batches, deferred events re-admitted from disk, and journal
			// recovery replays all maintain the per-series models.
			prev := ic.OnMeasurements
			reg := n.fcasts
			ic.OnMeasurements = func(ms []store.Measurement) {
				reg.UpdateMeasurements(ms)
				if prev != nil {
					prev(ms)
				}
			}
		}
		q, err := ingest.Open(ic)
		if err != nil {
			return nil, fmt.Errorf("core: open ingest queue: %w", err)
		}
		n.ingest = q
	}
	if cfg.Settlement != nil {
		l, err := settle.OpenLedger(*cfg.Settlement)
		if err != nil {
			return nil, fmt.Errorf("core: open settlement ledger: %w", err)
		}
		n.ledger = l
	}

	// Crash recovery for the planning state: a predecessor's accepted
	// offers live in the store (and possibly still in the ingest
	// journal), but pending/pipeline are in-memory and died with it.
	// Re-admit them so a restarted BRP schedules what it had already
	// promised, instead of letting acked offers sit accepted forever.
	if cfg.Role != store.RoleProsumer {
		if n.ingest != nil {
			// Journal replay finishes first, so offers acked durable but
			// never applied are visible to the scan below.
			dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := n.ingest.Drain(dctx)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("core: recover ingest journal: %w", err)
			}
		}
		for _, rec := range n.store.Offers(store.OfferFilter{State: store.OfferAccepted}) {
			if rec.Offer == nil {
				continue
			}
			if err := n.pipeline.Accumulate(agg.FlexOfferUpdate{Kind: agg.Insert, Offer: rec.Offer}); err != nil {
				continue // malformed record: planning just skips it
			}
			n.pending[rec.Offer.ID] = rec.Offer
			n.recoveredPending++
		}
	}

	// Dispatch: one registered handler per message type, wrapped in the
	// node's middleware chain. Recover sits innermost so a handler
	// panic surfaces as an ordinary error to the configured middleware
	// (logging sees it) and to Collect (metrics count it).
	mux := comm.NewMux()
	mux.Handle(comm.MsgFlexOfferSubmit, n.handleOfferSubmit)
	mux.Handle(comm.MsgMeasurementReport, n.handleMeasurement)
	mux.Handle(comm.MsgMeasurementBatch, n.handleMeasurementBatch)
	mux.Handle(comm.MsgScheduleNotify, n.handleScheduleNotify)
	mux.Handle(comm.MsgForecastRequest, n.handleForecastRequest)
	mux.Handle(comm.MsgPing, n.handlePing)
	mux.HandleFallback(func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		return nil, fmt.Errorf("core: %s cannot handle %s", n.cfg.Name, env.Type)
	})
	chain := append([]comm.Middleware{n.metrics.Collect()}, cfg.Middleware...)
	chain = append(chain, comm.Recover())
	n.handler = comm.Chain(mux.Serve, chain...)

	if err := n.store.PutActor(store.Actor{ID: cfg.Name, Name: cfg.Name, Role: cfg.Role, Parent: cfg.Parent}); err != nil {
		return nil, err
	}
	return n, nil
}

// Name returns the node's endpoint name.
func (n *Node) Name() string { return n.cfg.Name }

// Store exposes the node's data management component.
func (n *Node) Store() *store.Store { return n.store }

// Metrics exposes the node's per-message-type handler statistics.
func (n *Node) Metrics() *comm.Metrics { return n.metrics }

// Handler returns the node's message entry point — the per-type
// dispatch wrapped in its middleware chain — for registration on a
// transport.
func (n *Node) Handler() comm.Handler { return n.handler }

// Handle processes one envelope through the full handler chain
// (convenience for in-process callers and tests).
func (n *Node) Handle(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	return n.handler(ctx, env)
}

// handlePing answers liveness probes.
func (n *Node) handlePing(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	reply, err := comm.NewEnvelope(comm.MsgPong, n.cfg.Name, env.From, nil)
	if err != nil {
		return nil, err
	}
	return &reply, nil
}

// handleForecastRequest serves forecast queries from the node's
// configured forecast source (paper §3: forecasts are first-class
// messages between nodes). Replies are anchored at the node's latest
// planning time, so the caller knows which slot Values[0] refers to.
func (n *Node) handleForecastRequest(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	var req comm.ForecastRequest
	if err := env.Decode(comm.MsgForecastRequest, &req); err != nil {
		return nil, err
	}
	if req.Horizon <= 0 {
		return nil, fmt.Errorf("core: forecast horizon must be positive, got %d", req.Horizon)
	}
	var values []float64
	switch {
	case req.Actor != "":
		// Per-series query against the fleet forecast registry.
		if n.fcasts == nil {
			return nil, fmt.Errorf("core: %s has no forecast registry", n.cfg.Name)
		}
		v, ok := n.fcasts.Forecast(req.Actor, req.EnergyType, req.Horizon)
		if !ok {
			return nil, fmt.Errorf("core: %s has no model for series (%s, %s) yet", n.cfg.Name, req.Actor, req.EnergyType)
		}
		values = v
	case n.cfg.Forecast != nil:
		values = n.cfg.Forecast.Forecast(req.Horizon)
	default:
		return nil, fmt.Errorf("core: %s has no forecast source", n.cfg.Name)
	}
	reply, err := comm.NewEnvelope(comm.MsgForecastReply, n.cfg.Name, env.From, comm.ForecastReply{
		EnergyType: req.EnergyType,
		FirstSlot:  n.PlanningTime(),
		Values:     values,
	})
	if err != nil {
		return nil, err
	}
	return &reply, nil
}

// handleOfferSubmit runs negotiation and feeds accepted offers into the
// aggregation pipeline (BRP/TSO duty).
func (n *Node) handleOfferSubmit(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	if n.cfg.Role == store.RoleProsumer {
		return nil, fmt.Errorf("core: prosumer %s does not take flex-offers", n.cfg.Name)
	}
	var body comm.FlexOfferSubmit
	if err := env.Decode(comm.MsgFlexOfferSubmit, &body); err != nil {
		return nil, err
	}
	decision := n.acceptOffer(ctx, body.Offer, env.From)
	reply, err := comm.NewEnvelope(comm.MsgFlexOfferDecision, n.cfg.Name, env.From, comm.FlexOfferDecision{
		OfferID:    body.Offer.ID,
		Accept:     decision.Accept,
		Reason:     decision.Reason,
		PremiumEUR: decision.Price,
	})
	if err != nil {
		return nil, err
	}
	return &reply, nil
}

// AcceptOffer is the in-process form of flex-offer submission: the
// negotiation component decides; accepted offers enter the store and the
// aggregation pipeline as pending flexibilities. It never blocks on a
// running scheduling cycle — intake only needs the node mutex, which
// the cycle releases for its plan and deliver phases.
func (n *Node) AcceptOffer(f *flexoffer.FlexOffer, owner string) negotiate.Decision {
	return n.acceptOffer(context.Background(), f, owner)
}

func (n *Node) acceptOffer(ctx context.Context, f *flexoffer.FlexOffer, owner string) negotiate.Decision {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Negotiation evaluates at the current planning time: the node's
	// notion of "now" is the earliest moment it could still schedule.
	decision := n.valuator.Decide(f, n.nowLocked())
	// The stored offer carries the negotiated premium, which settlement
	// reads back after execution.
	priced := f.Clone()
	priced.CostPerKWh = decision.Price
	if decision.Accept {
		// Accumulate, don't process: intake only validates against the
		// pipeline's membership index and appends to its pending batch.
		// Grouping, packing and aggregation run once per cycle (phase 0
		// of snapshotForPlanning), so the lock hold here is O(1) no
		// matter how hot the intake path runs.
		if err := n.pipeline.Accumulate(agg.FlexOfferUpdate{Kind: agg.Insert, Offer: priced}); err != nil {
			// The pipeline rejected the offer (e.g. duplicate id).
			decision = negotiate.Decision{Accept: false, Reason: err.Error()}
		}
	}
	state := store.OfferRejected
	if decision.Accept {
		state = store.OfferAccepted
	}
	// Persist the final record exactly once — after the pipeline verdict
	// — so the async intake path never journals two racing records for
	// one submission.
	rec := store.OfferRecord{Offer: priced, Owner: owner, State: state}
	if err := n.persistOffer(ctx, rec); err != nil {
		if decision.Accept {
			// Keep the pipeline consistent with the store: the delete
			// cancels the still-pending insert at zero cost.
			_ = n.pipeline.Accumulate(agg.FlexOfferUpdate{Kind: agg.Delete, Offer: priced})
		}
		return negotiate.Decision{Accept: false, Reason: err.Error()}
	}
	if decision.Accept {
		n.pending[f.ID] = priced
	}
	return decision
}

// persistOffer writes one flex-offer record through the configured
// intake path: the ingest queue (acked on journal group commit, applied
// asynchronously) or the store directly.
func (n *Node) persistOffer(ctx context.Context, rec store.OfferRecord) error {
	if n.ingest != nil {
		return n.ingest.SubmitOffer(ctx, rec)
	}
	return n.store.PutOffer(rec)
}

// nowLocked is the node's planning time: the start slot of the most
// recent scheduling cycle (zero until the first cycle runs — the
// simulation drives time explicitly). Caller holds mu.
func (n *Node) nowLocked() flexoffer.Time { return n.planTime }

// PlanningTime returns the node's latest planning time — the anchor of
// forecast replies and offer valuation.
func (n *Node) PlanningTime() flexoffer.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.planTime
}

// handleMeasurement stores a reported measurement (BRP duty).
func (n *Node) handleMeasurement(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	var body comm.MeasurementReport
	if err := env.Decode(comm.MsgMeasurementReport, &body); err != nil {
		return nil, err
	}
	m := store.Measurement{Actor: body.Actor, EnergyType: body.EnergyType, Slot: body.Slot, KWh: body.KWh}
	if n.ingest != nil {
		return nil, n.ingest.SubmitMeasurements(ctx, []store.Measurement{m})
	}
	if err := n.store.PutMeasurement(m); err != nil {
		return nil, err
	}
	if n.fcasts != nil {
		n.fcasts.Update(m.Actor, m.EnergyType, m.KWh)
	}
	return nil, nil
}

// handleMeasurementBatch stores a reported meter-stream batch through
// the store's batch path: the whole report is one WAL group commit.
func (n *Node) handleMeasurementBatch(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
	var body comm.MeasurementBatch
	if err := env.Decode(comm.MsgMeasurementBatch, &body); err != nil {
		return nil, err
	}
	ms := make([]store.Measurement, len(body.Reports))
	for i, r := range body.Reports {
		ms[i] = store.Measurement{Actor: r.Actor, EnergyType: r.EnergyType, Slot: r.Slot, KWh: r.KWh}
	}
	if n.ingest != nil {
		return nil, n.ingest.SubmitMeasurements(ctx, ms)
	}
	if err := n.store.PutMeasurementsBatch(ms); err != nil {
		return nil, err
	}
	if n.fcasts != nil {
		n.fcasts.UpdateMeasurements(ms)
	}
	return nil, nil
}

// IngestMeasurements stores a batch of metered values locally — through
// the async ingest queue when one is configured (acked on journal group
// commit), otherwise as one synchronous WAL group commit. The bulk
// intake path for meter streams and backfills (the remote form is
// Client.ReportMeasurements).
func (n *Node) IngestMeasurements(ms []store.Measurement) error {
	if n.ingest != nil {
		return n.ingest.SubmitMeasurements(context.Background(), ms)
	}
	if err := n.store.PutMeasurementsBatch(ms); err != nil {
		return err
	}
	if n.fcasts != nil {
		n.fcasts.UpdateMeasurements(ms)
	}
	return nil
}

// IngestStats reports the async intake queue's counters; ok is false
// when the node runs synchronous intake.
func (n *Node) IngestStats() (ingest.Stats, bool) {
	if n.ingest == nil {
		return ingest.Stats{}, false
	}
	return n.ingest.Stats(), true
}

// DrainIngest waits until every acked intake event has been applied to
// the store (no-op without an ingest queue). The scheduling cycle calls
// it implicitly; explicit callers use it as a read-your-writes barrier.
func (n *Node) DrainIngest(ctx context.Context) error {
	if n.ingest == nil {
		return nil
	}
	return n.ingest.Drain(ctx)
}

// Breaker exposes the node's circuit breaker (nil when none is
// configured).
func (n *Node) Breaker() *comm.Breaker { return n.breaker }

// RetryStats reports the outbound retry policy's counters; ok is false
// when the node runs without one.
func (n *Node) RetryStats() (comm.RetryStats, bool) {
	if n.retry == nil {
		return comm.RetryStats{}, false
	}
	return n.retry.Stats(), true
}

// ForecastRegistry exposes the node's fleet forecast service (nil when
// Config.Forecasting is unset).
func (n *Node) ForecastRegistry() *forecast.Registry { return n.fcasts }

// ForecastSeries serves the forecast of one maintained (actor, energy
// type) series; ok is false without a registry or while the series is
// unknown / still warming up.
func (n *Node) ForecastSeries(actor, energyType string, horizon int) (values []float64, ok bool) {
	if n.fcasts == nil {
		return nil, false
	}
	return n.fcasts.Forecast(actor, energyType, horizon)
}

// ForecastHub returns the publish-subscribe hub of one series for
// continuous forecast queries (nil without a registry). The scheduling
// cycle publishes all dirty hubs after its intake barrier.
func (n *Node) ForecastHub(actor, energyType string) *forecast.Hub {
	if n.fcasts == nil {
		return nil
	}
	return n.fcasts.Hub(actor, energyType)
}

// ForecastStats reports the forecast registry's counters; ok is false
// when the node runs no registry.
func (n *Node) ForecastStats() (forecast.RegistryStats, bool) {
	if n.fcasts == nil {
		return forecast.RegistryStats{}, false
	}
	return n.fcasts.Stats(), true
}

// Close shuts the node's background machinery down: the ingest queue is
// drained (best effort) and closed so every acked event reaches the
// store before the process exits.
func (n *Node) Close() error {
	var err error
	if n.ingest != nil {
		err = n.ingest.Close()
	}
	if n.fcasts != nil {
		// After the ingest drain, so the refit pool outlives the last
		// measurement batch the consumers feed it.
		n.fcasts.Close()
	}
	if n.ledger != nil {
		if lerr := n.ledger.Close(); err == nil {
			err = lerr
		}
	}
	return err
}

// Kill simulates a crash for recovery testing: the ingest queue's
// consumers stop with the in-memory backlog abandoned (journaled acks
// stay on disk for replay), and the forecast service, ledger and store
// close without the drain barrier Close performs. The node must not be
// used afterwards; rebuild it over the same directories to recover.
func (n *Node) Kill() {
	if n.ingest != nil {
		n.ingest.Kill()
	}
	if n.fcasts != nil {
		n.fcasts.Close()
	}
	if n.ledger != nil {
		_ = n.ledger.Close()
	}
	_ = n.store.Close()
}

// RecoveredPending reports how many accepted offers the node re-admitted
// into its planning pipeline from the store at construction.
func (n *Node) RecoveredPending() int { return n.recoveredPending }

// CancelProsumer settles a prosumer leaving mid-contract
// (settle.CancelActor): every open offer of theirs is voided with a
// penalty entry on the ledger, one close-out entry zeroes their balance,
// and their still-pending offers leave the aggregation pipeline so the
// next cycle plans without them. Requires a settlement ledger.
func (n *Node) CancelProsumer(prosumer string, cfg settle.CancelConfig) (*settle.CancelReport, error) {
	if n.ledger == nil {
		return nil, fmt.Errorf("core: %s has no settlement ledger to cancel against", n.cfg.Name)
	}
	n.cycleMu.Lock()
	defer n.cycleMu.Unlock()
	rep, err := settle.CancelActor(n.store, n.ledger, prosumer, cfg)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	for _, id := range rep.Cancelled {
		if off, ok := n.pending[id]; ok {
			delete(n.pending, id)
			_ = n.pipeline.Accumulate(agg.FlexOfferUpdate{Kind: agg.Delete, Offer: off})
		}
	}
	n.mu.Unlock()
	return rep, nil
}

// PendingOffers returns the accepted, not-yet-scheduled offers.
func (n *Node) PendingOffers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

// Aggregates exposes the current macro flex-offers (diagnostics). Any
// accumulated intake is processed first so the view includes every
// accepted offer, not just those a cycle has already batched in.
func (n *Node) Aggregates() []*agg.Aggregate {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pipeline.Process()
	return n.pipeline.Aggregates()
}

// SettleExecuted settles all scheduled flex-offers against their metered
// execution: premiums are paid, deviations penalized and (optionally)
// the realized profit shared — the execution-time half of the
// negotiation component. metered maps offer IDs to measured energy per
// schedule slice; offers without metering are treated as perfectly
// compliant (metered = scheduled). Settled offers move to the executed
// state.
//
// With a settlement ledger (Config.Settlement) this is a batched,
// crash-recoverable run: every batch's ledger append is acked durable
// before its offers transition, and a re-run after a crash dedups
// against the chain (settle.Run). Settlement serializes with the
// planner-driven flows under cycleMu — it is held across ledger fsyncs,
// so intake keeps flowing under mu meanwhile.
func (n *Node) SettleExecuted(metered map[flexoffer.ID][]float64, cfg settle.Config) (*settle.RunReport, error) {
	n.cycleMu.Lock()
	defer n.cycleMu.Unlock()
	if n.ledger != nil {
		return settle.Run(settle.RunConfig{
			Store:   n.store,
			Ledger:  n.ledger,
			Metered: metered,
			Settle:  cfg,
		})
	}

	// Ledgerless path: one in-memory settlement and one batched
	// transition (single WAL group), no durability beyond the store.
	var items []settle.Item
	var recs []store.OfferRecord
	for _, rec := range n.store.Offers(store.OfferFilter{State: store.OfferScheduled}) {
		if rec.Schedule == nil {
			continue
		}
		m, ok := metered[rec.Offer.ID]
		if !ok {
			m = settle.MeteredFromSchedule(rec.Schedule)
		}
		items = append(items, settle.Item{
			Offer:      rec.Offer,
			Schedule:   rec.Schedule,
			PremiumEUR: rec.Offer.CostPerKWh,
			Metered:    m,
		})
		recs = append(recs, rec)
	}
	rep, err := settle.Settle(items, cfg)
	if err != nil {
		return nil, err
	}
	updates := make([]store.OfferUpdate, len(recs))
	for i, rec := range recs {
		updates[i] = store.OfferUpdate{ID: rec.Offer.ID, Mutate: func(r *store.OfferRecord) {
			r.State = store.OfferExecuted
		}}
	}
	results, err := n.store.UpdateOffers(updates)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		if res.Err != nil {
			return nil, res.Err
		}
	}
	out := &settle.RunReport{Report: *rep}
	if len(recs) > 0 {
		out.Batches = 1
	}
	return out, nil
}

// Ledger exposes the node's settlement ledger (nil without
// Config.Settlement) for balance queries and chain verification.
func (n *Node) Ledger() *settle.Ledger { return n.ledger }

// LedgerStats snapshots the settlement ledger's counters; ok is false
// when the node has no ledger.
func (n *Node) LedgerStats() (settle.LedgerStats, bool) {
	if n.ledger == nil {
		return settle.LedgerStats{}, false
	}
	return n.ledger.Stats(), true
}

// SubmitOfferTo sends a flex-offer to the node's parent and returns the
// decision (prosumer duty).
func (n *Node) SubmitOfferTo(ctx context.Context, f *flexoffer.FlexOffer) (comm.FlexOfferDecision, error) {
	if n.client == nil || n.cfg.Parent == "" {
		return comm.FlexOfferDecision{}, fmt.Errorf("core: %s has no parent to submit to", n.cfg.Name)
	}
	if err := n.store.PutOffer(store.OfferRecord{Offer: f, Owner: n.cfg.Name, State: store.OfferReceived}); err != nil {
		return comm.FlexOfferDecision{}, err
	}
	decision, err := n.client.SubmitOffer(ctx, n.cfg.Parent, f)
	if err != nil {
		return comm.FlexOfferDecision{}, err
	}
	state := store.OfferRejected
	if decision.Accept {
		state = store.OfferAccepted
	}
	// One atomic round-trip: if the parent's schedule already arrived
	// (delivery can race the decision reply), the record has moved past
	// the handshake and keeps its schedule and state instead of being
	// stomped back to the decision.
	if _, err := n.store.UpdateOffer(f.ID, func(rec *store.OfferRecord) {
		if rec.State == store.OfferReceived {
			rec.State = state
		}
	}); err != nil {
		return comm.FlexOfferDecision{}, err
	}
	return decision, nil
}

// ReportMeasurement sends a metered value to the parent and stores it
// locally (prosumer duty).
func (n *Node) ReportMeasurement(ctx context.Context, energyType string, slot flexoffer.Time, kwh float64) error {
	if err := n.store.PutMeasurement(store.Measurement{Actor: n.cfg.Name, EnergyType: energyType, Slot: slot, KWh: kwh}); err != nil {
		return err
	}
	if n.client == nil || n.cfg.Parent == "" {
		return nil
	}
	return n.client.ReportMeasurement(ctx, n.cfg.Parent, comm.MeasurementReport{
		Actor: n.cfg.Name, EnergyType: energyType, Slot: slot, KWh: kwh,
	})
}

// QueryParentForecast asks the parent node for its forecast of
// energyType over horizon slots (prosumer/BRP duty).
func (n *Node) QueryParentForecast(ctx context.Context, energyType string, horizon int) (comm.ForecastReply, error) {
	if n.client == nil || n.cfg.Parent == "" {
		return comm.ForecastReply{}, fmt.Errorf("core: %s has no parent to query", n.cfg.Name)
	}
	return n.client.QueryForecast(ctx, n.cfg.Parent, energyType, horizon)
}

// forecaster produces the baseline for a horizon; the node's scheduling
// cycle accepts any source (a forecast.Maintainer, a fixed series, ...).
type forecaster interface {
	Forecast(h int) []float64
}

// ensure forecast.Maintainer satisfies the forecaster seam.
var _ forecaster = (*forecast.Maintainer)(nil)
