// Package chaos injects deterministic network and process faults into a
// running MIRABEL population so recovery guarantees can be asserted, not
// assumed.
//
// The two halves mirror the two failure domains:
//
//   - Injector wraps a comm.Transport and perturbs every Send/Request
//     with seeded message drops, ambiguous errors, latency (base +
//     jitter + spikes) and per-destination partitions. Fates are drawn
//     from splitmix64 streams keyed by (seed, destination, per-
//     destination op index), so two runs with the same seed and the
//     same per-destination traffic see bit-identical fault decisions —
//     a failing chaos run reproduces from its seed.
//
//   - Controller drives a parsed Schedule against registered node
//     hooks: opening and healing partitions at cycle boundaries and
//     crash-killing/restarting whole nodes mid-run.
//
// Fault classification follows the transport contract in comm: a drop
// or partition happens before the wire, so the error wraps
// comm.ErrNotSent (safe to retry anything); injected errors strike
// after delivery, so they stay ambiguous and only idempotent operations
// may retry through them.
package chaos

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mirabel/internal/comm"
)

// Faults are an Injector's tunable fault rates. All fractions are in
// [0, 1]; zero values disable that fault kind.
type Faults struct {
	// DropFrac is the fraction of operations lost before the wire.
	DropFrac float64
	// ErrFrac is the fraction of operations that are delivered but
	// fail back to the caller with an ambiguous error.
	ErrFrac float64
	// SpikeFrac is the fraction of operations hit by a latency spike
	// of magnitude Spike on top of the base latency.
	SpikeFrac float64
	Spike     time.Duration
	// LatBase delays every operation; LatJitter adds a uniform extra
	// in [0, LatJitter).
	LatBase   time.Duration
	LatJitter time.Duration
}

// Stats counts what the injector actually did. With a fixed seed and
// fixed per-destination traffic, every field is reproducible.
type Stats struct {
	Ops         uint64 // operations that reached the injector
	Drops       uint64 // lost before the wire (ErrNotSent)
	Errors      uint64 // delivered, then failed ambiguously
	Spikes      uint64 // operations hit by a latency spike
	Partitioned uint64 // refused because the destination was cut off
}

// Injector is a comm.Transport middleware that perturbs traffic. Safe
// for concurrent use.
type Injector struct {
	inner comm.Transport
	seed  uint64

	mu    sync.RWMutex
	f     Faults
	parts map[string]bool
	lanes map[string]*lane

	ops         atomic.Uint64
	drops       atomic.Uint64
	errs        atomic.Uint64
	spikes      atomic.Uint64
	partitioned atomic.Uint64
}

// lane is one destination's deterministic fate stream.
type lane struct {
	base uint64
	n    atomic.Uint64
}

// NewInjector wraps inner with seeded fault injection.
func NewInjector(inner comm.Transport, seed uint64, f Faults) *Injector {
	return &Injector{
		inner: inner,
		seed:  seed,
		f:     f,
		parts: make(map[string]bool),
		lanes: make(map[string]*lane),
	}
}

// SetFaults swaps the fault rates; in-flight operations keep the rates
// they started with.
func (i *Injector) SetFaults(f Faults) {
	i.mu.Lock()
	i.f = f
	i.mu.Unlock()
}

// Faults returns the current fault rates.
func (i *Injector) Faults() Faults {
	i.mu.RLock()
	defer i.mu.RUnlock()
	return i.f
}

// Partition cuts every operation toward dest until Heal.
func (i *Injector) Partition(dest string) {
	i.mu.Lock()
	i.parts[dest] = true
	i.mu.Unlock()
}

// Heal reconnects dest.
func (i *Injector) Heal(dest string) {
	i.mu.Lock()
	delete(i.parts, dest)
	i.mu.Unlock()
}

// Stats snapshots the injection counters.
func (i *Injector) Stats() Stats {
	return Stats{
		Ops:         i.ops.Load(),
		Drops:       i.drops.Load(),
		Errors:      i.errs.Load(),
		Spikes:      i.spikes.Load(),
		Partitioned: i.partitioned.Load(),
	}
}

// splitmix64 is the same tiny generator the retry jitter uses: one
// 64-bit state in, one well-mixed 64-bit word out.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a destination name into the lane seed.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// u01 maps a 64-bit word to [0, 1).
func u01(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// fate is the deterministic verdict for one operation.
type fate struct {
	drop  bool
	err   bool
	spike bool
	delay time.Duration
}

func (i *Injector) laneFor(to string) *lane {
	i.mu.RLock()
	l := i.lanes[to]
	i.mu.RUnlock()
	if l != nil {
		return l
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if l = i.lanes[to]; l == nil {
		l = &lane{base: splitmix64(i.seed ^ fnv64(to))}
		i.lanes[to] = l
	}
	return l
}

// decide draws one op's fate from the destination's stream. Four salted
// words per op keep the fault kinds independent of each other.
func (i *Injector) decide(to string, f Faults) fate {
	l := i.laneFor(to)
	n := l.n.Add(1) - 1
	at := l.base + 4*n
	var ft fate
	ft.drop = f.DropFrac > 0 && u01(splitmix64(at)) < f.DropFrac
	ft.err = f.ErrFrac > 0 && u01(splitmix64(at+1)) < f.ErrFrac
	ft.spike = f.SpikeFrac > 0 && u01(splitmix64(at+2)) < f.SpikeFrac
	ft.delay = f.LatBase
	if f.LatJitter > 0 {
		ft.delay += time.Duration(u01(splitmix64(at+3)) * float64(f.LatJitter))
	}
	if ft.spike {
		ft.delay += f.Spike
	}
	return ft
}

// before runs the shared pre-wire fault path — partition check, fate
// draw, latency wait, drop — and returns the fate so the caller can
// apply the post-delivery error injection.
func (i *Injector) before(ctx context.Context, to string) (fate, error) {
	i.ops.Add(1)
	i.mu.RLock()
	f := i.f
	cut := i.parts[to]
	i.mu.RUnlock()
	if cut {
		i.partitioned.Add(1)
		return fate{}, fmt.Errorf("chaos: %s partitioned: %w", to, comm.ErrNotSent)
	}
	ft := i.decide(to, f)
	if ft.spike {
		i.spikes.Add(1)
	}
	if ft.delay > 0 {
		t := time.NewTimer(ft.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ft, ctx.Err()
		}
	}
	if ft.drop {
		i.drops.Add(1)
		return ft, fmt.Errorf("chaos: message to %s dropped: %w", to, comm.ErrNotSent)
	}
	return ft, nil
}

func (i *Injector) Send(ctx context.Context, to string, env comm.Envelope) error {
	ft, err := i.before(ctx, to)
	if err != nil {
		return err
	}
	err = i.inner.Send(ctx, to, env)
	if err == nil && ft.err {
		// Delivered, then the "ack" was lost: ambiguous on purpose.
		i.errs.Add(1)
		return fmt.Errorf("chaos: send to %s failed after delivery", to)
	}
	return err
}

func (i *Injector) Request(ctx context.Context, to string, env comm.Envelope) (comm.Envelope, error) {
	ft, err := i.before(ctx, to)
	if err != nil {
		return comm.Envelope{}, err
	}
	reply, err := i.inner.Request(ctx, to, env)
	if err == nil && ft.err {
		// The handler ran; only the reply is eaten. Retrying through
		// this is exactly the duplicate-delivery case idempotency
		// classification exists for.
		i.errs.Add(1)
		return comm.Envelope{}, fmt.Errorf("chaos: reply from %s lost", to)
	}
	return reply, err
}
