package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PartitionWindow cuts one destination off for an inclusive cycle
// range: opened at the start of cycle From, healed at the start of
// cycle To+1.
type PartitionWindow struct {
	Dest     string
	From, To int
}

// CrashPlan kills one node at the start of cycle At and restarts it
// Down cycles later.
type CrashPlan struct {
	Node string
	At   int
	Down int
}

// Schedule is a parsed fault plan: static fault rates plus
// cycle-indexed partition and crash events.
type Schedule struct {
	Faults  Faults
	Parts   []PartitionWindow
	Crashes []CrashPlan
}

// ParseSchedule reads the compact fault-schedule syntax used by the
// simulator's -faults flag: comma-separated clauses of
//
//	drop=0.1            fraction of messages lost pre-wire
//	err=0.01            fraction delivered but failed ambiguously
//	spike=0.02:200ms    fraction:magnitude of latency spikes
//	lat=1ms:2ms         base latency : uniform jitter bound
//	part=NAME@3-4       partition NAME during cycles 3..4 inclusive
//	crash=NAME@3+2      kill NAME at cycle 3, restart at cycle 5
//
// part and crash may repeat; an empty string is an empty schedule.
func ParseSchedule(s string) (*Schedule, error) {
	sched := &Schedule{}
	if strings.TrimSpace(s) == "" {
		return sched, nil
	}
	for _, clause := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return nil, fmt.Errorf("chaos: clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "drop":
			sched.Faults.DropFrac, err = parseFrac(val)
		case "err":
			sched.Faults.ErrFrac, err = parseFrac(val)
		case "spike":
			frac, dur, splitErr := splitPair(val)
			if splitErr != nil {
				err = splitErr
				break
			}
			if sched.Faults.SpikeFrac, err = parseFrac(frac); err != nil {
				break
			}
			sched.Faults.Spike, err = time.ParseDuration(dur)
		case "lat":
			base, jitter, splitErr := splitPair(val)
			if splitErr != nil {
				err = splitErr
				break
			}
			if sched.Faults.LatBase, err = time.ParseDuration(base); err != nil {
				break
			}
			sched.Faults.LatJitter, err = time.ParseDuration(jitter)
		case "part":
			var w PartitionWindow
			if w, err = parsePartition(val); err == nil {
				sched.Parts = append(sched.Parts, w)
			}
		case "crash":
			var c CrashPlan
			if c, err = parseCrash(val); err == nil {
				sched.Crashes = append(sched.Crashes, c)
			}
		default:
			err = fmt.Errorf("unknown fault kind %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: clause %q: %w", clause, err)
		}
	}
	return sched, nil
}

func parseFrac(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("fraction %g outside [0,1]", f)
	}
	return f, nil
}

func splitPair(s string) (string, string, error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return "", "", fmt.Errorf("want a:b, got %q", s)
	}
	return a, b, nil
}

// parsePartition reads NAME@A-B. The @ splits name from window; the
// last - splits the cycle range, so names may themselves contain
// dashes ("brp-1").
func parsePartition(s string) (PartitionWindow, error) {
	name, window, ok := strings.Cut(s, "@")
	if !ok || name == "" {
		return PartitionWindow{}, fmt.Errorf("want NAME@from-to, got %q", s)
	}
	cut := strings.LastIndexByte(window, '-')
	if cut < 0 {
		return PartitionWindow{}, fmt.Errorf("want NAME@from-to, got %q", s)
	}
	from, err := strconv.Atoi(window[:cut])
	if err != nil {
		return PartitionWindow{}, err
	}
	to, err := strconv.Atoi(window[cut+1:])
	if err != nil {
		return PartitionWindow{}, err
	}
	if from < 0 || to < from {
		return PartitionWindow{}, fmt.Errorf("bad window %d-%d", from, to)
	}
	return PartitionWindow{Dest: name, From: from, To: to}, nil
}

// parseCrash reads NAME@AT+DOWN.
func parseCrash(s string) (CrashPlan, error) {
	name, plan, ok := strings.Cut(s, "@")
	if !ok || name == "" {
		return CrashPlan{}, fmt.Errorf("want NAME@at+down, got %q", s)
	}
	at, down, ok := strings.Cut(plan, "+")
	if !ok {
		return CrashPlan{}, fmt.Errorf("want NAME@at+down, got %q", s)
	}
	c := CrashPlan{Node: name}
	var err error
	if c.At, err = strconv.Atoi(at); err != nil {
		return CrashPlan{}, err
	}
	if c.Down, err = strconv.Atoi(down); err != nil {
		return CrashPlan{}, err
	}
	if c.At < 0 || c.Down < 1 {
		return CrashPlan{}, fmt.Errorf("bad crash plan at=%d down=%d", c.At, c.Down)
	}
	return c, nil
}

// NodeHooks are the crash controller's handles on one node: Kill
// simulates the crash (abrupt, no drain), Restart rebuilds the node
// over the same durable state.
type NodeHooks struct {
	Kill    func() error
	Restart func() error
}

// ControllerStats counts schedule actions taken.
type ControllerStats struct {
	Kills, Restarts  uint64
	PartsCut, Healed uint64
}

// Controller replays a Schedule's cycle-indexed events. Drive it with
// BeginCycle(c) once per simulation cycle, in order. Not safe for
// concurrent use; call it from the cycle loop.
type Controller struct {
	sched     *Schedule
	injectors []*Injector
	nodes     map[string]NodeHooks
	stats     ControllerStats
}

// NewController builds a controller over the schedule. Partitions are
// applied to every attached injector.
func NewController(sched *Schedule, injectors ...*Injector) *Controller {
	return &Controller{sched: sched, injectors: injectors, nodes: make(map[string]NodeHooks)}
}

// RegisterNode attaches crash hooks for a named node.
func (c *Controller) RegisterNode(name string, h NodeHooks) {
	c.nodes[name] = h
}

// Stats returns the actions taken so far.
func (c *Controller) Stats() ControllerStats { return c.stats }

// Events lists the cycles at which this schedule does anything — useful
// for sizing a run so no planned fault falls off the end.
func (c *Controller) Events() []int {
	set := map[int]bool{}
	for _, p := range c.sched.Parts {
		set[p.From], set[p.To+1] = true, true
	}
	for _, cr := range c.sched.Crashes {
		set[cr.At], set[cr.At+cr.Down] = true, true
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// BeginCycle applies every schedule event due at the start of cycle n:
// partitions opening or healing, nodes crashing or restarting. A crash
// plan for an unregistered node is an error — a schedule that names a
// node the run doesn't have is a misconfiguration, not a no-op.
func (c *Controller) BeginCycle(n int) error {
	for _, p := range c.sched.Parts {
		if n == p.From {
			for _, inj := range c.injectors {
				inj.Partition(p.Dest)
			}
			c.stats.PartsCut++
		}
		if n == p.To+1 {
			for _, inj := range c.injectors {
				inj.Heal(p.Dest)
			}
			c.stats.Healed++
		}
	}
	for _, cr := range c.sched.Crashes {
		if n == cr.At {
			h, ok := c.nodes[cr.Node]
			if !ok {
				return fmt.Errorf("chaos: crash plan names unregistered node %q", cr.Node)
			}
			if err := h.Kill(); err != nil {
				return fmt.Errorf("chaos: kill %s at cycle %d: %w", cr.Node, n, err)
			}
			c.stats.Kills++
		}
		if n == cr.At+cr.Down {
			h, ok := c.nodes[cr.Node]
			if !ok {
				return fmt.Errorf("chaos: crash plan names unregistered node %q", cr.Node)
			}
			if err := h.Restart(); err != nil {
				return fmt.Errorf("chaos: restart %s at cycle %d: %w", cr.Node, n, err)
			}
			c.stats.Restarts++
		}
	}
	return nil
}
