package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mirabel/internal/comm"
)

// okTransport counts deliveries and always succeeds.
type okTransport struct {
	sends, requests int
}

func (t *okTransport) Send(ctx context.Context, to string, env comm.Envelope) error {
	t.sends++
	return nil
}

func (t *okTransport) Request(ctx context.Context, to string, env comm.Envelope) (comm.Envelope, error) {
	t.requests++
	return comm.Envelope{Type: comm.MsgPong, From: to, To: env.From}, nil
}

func ping(from, to string) comm.Envelope {
	env, _ := comm.NewEnvelope(comm.MsgPing, from, to, nil)
	return env
}

func TestInjectorDeterministicStreams(t *testing.T) {
	run := func(seed uint64) (Stats, []error) {
		inner := &okTransport{}
		inj := NewInjector(inner, seed, Faults{DropFrac: 0.3, ErrFrac: 0.1})
		var errs []error
		for i := 0; i < 500; i++ {
			_, err := inj.Request(context.Background(), "brp-0", ping("p", "brp-0"))
			errs = append(errs, err)
		}
		for i := 0; i < 300; i++ {
			errs = append(errs, inj.Send(context.Background(), "brp-1", ping("p", "brp-1")))
		}
		return inj.Stats(), errs
	}
	a, aErrs := run(42)
	b, bErrs := run(42)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range aErrs {
		if (aErrs[i] == nil) != (bErrs[i] == nil) {
			t.Fatalf("op %d fate diverged: %v vs %v", i, aErrs[i], bErrs[i])
		}
	}
	if a.Drops == 0 || a.Errors == 0 {
		t.Errorf("faults never fired: %+v", a)
	}
	// Rough rate check: 30% drops over 800 ops.
	if a.Drops < 160 || a.Drops > 320 {
		t.Errorf("drop count %d far from 30%% of %d", a.Drops, a.Ops)
	}
	c, _ := run(43)
	if a == c {
		t.Error("different seeds produced identical stats")
	}
}

func TestInjectorDropIsNotSent(t *testing.T) {
	inner := &okTransport{}
	inj := NewInjector(inner, 1, Faults{DropFrac: 1})
	err := inj.Send(context.Background(), "brp-0", ping("p", "brp-0"))
	if !errors.Is(err, comm.ErrNotSent) {
		t.Fatalf("drop error = %v, want ErrNotSent", err)
	}
	if inner.sends != 0 {
		t.Error("dropped message reached the wire")
	}
}

func TestInjectorErrorIsAmbiguousAfterDelivery(t *testing.T) {
	inner := &okTransport{}
	inj := NewInjector(inner, 1, Faults{ErrFrac: 1})
	_, err := inj.Request(context.Background(), "brp-0", ping("p", "brp-0"))
	if err == nil {
		t.Fatal("injected error did not surface")
	}
	if errors.Is(err, comm.ErrNotSent) {
		t.Error("post-delivery error claims the message was not sent")
	}
	if inner.requests != 1 {
		t.Errorf("delivery count = %d, want 1 (error injects after delivery)", inner.requests)
	}
}

func TestInjectorPartition(t *testing.T) {
	inner := &okTransport{}
	inj := NewInjector(inner, 1, Faults{})
	inj.Partition("brp-0")
	err := inj.Send(context.Background(), "brp-0", ping("p", "brp-0"))
	if !errors.Is(err, comm.ErrNotSent) {
		t.Fatalf("partitioned error = %v, want ErrNotSent", err)
	}
	if err := inj.Send(context.Background(), "brp-1", ping("p", "brp-1")); err != nil {
		t.Fatalf("unpartitioned peer failed: %v", err)
	}
	inj.Heal("brp-0")
	if err := inj.Send(context.Background(), "brp-0", ping("p", "brp-0")); err != nil {
		t.Fatalf("healed peer failed: %v", err)
	}
	if st := inj.Stats(); st.Partitioned != 1 {
		t.Errorf("partitioned = %d, want 1", st.Partitioned)
	}
}

func TestInjectorLatencyHonorsContext(t *testing.T) {
	inner := &okTransport{}
	inj := NewInjector(inner, 1, Faults{LatBase: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.Send(ctx, "brp-0", ping("p", "brp-0"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled wait took %v", elapsed)
	}
}

func TestInjectorSpikeDelays(t *testing.T) {
	inner := &okTransport{}
	inj := NewInjector(inner, 1, Faults{SpikeFrac: 1, Spike: 20 * time.Millisecond})
	start := time.Now()
	if err := inj.Send(context.Background(), "brp-0", ping("p", "brp-0")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("spiked send returned after %v, want >= 20ms", elapsed)
	}
	if st := inj.Stats(); st.Spikes != 1 {
		t.Errorf("spikes = %d, want 1", st.Spikes)
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("drop=0.1,err=0.01,spike=0.02:200ms,lat=1ms:2ms,part=brp-1@3-4,crash=brp-0@3+2")
	if err != nil {
		t.Fatal(err)
	}
	want := Faults{
		DropFrac: 0.1, ErrFrac: 0.01,
		SpikeFrac: 0.02, Spike: 200 * time.Millisecond,
		LatBase: time.Millisecond, LatJitter: 2 * time.Millisecond,
	}
	if s.Faults != want {
		t.Errorf("faults = %+v, want %+v", s.Faults, want)
	}
	if len(s.Parts) != 1 || s.Parts[0] != (PartitionWindow{Dest: "brp-1", From: 3, To: 4}) {
		t.Errorf("parts = %+v", s.Parts)
	}
	if len(s.Crashes) != 1 || s.Crashes[0] != (CrashPlan{Node: "brp-0", At: 3, Down: 2}) {
		t.Errorf("crashes = %+v", s.Crashes)
	}
	if empty, err := ParseSchedule("  "); err != nil || len(empty.Parts) != 0 {
		t.Errorf("empty schedule: %+v, %v", empty, err)
	}
	for _, bad := range []string{
		"drop=2", "bogus=1", "spike=0.1", "part=brp@4-3", "crash=brp@1+0", "part=@1-2", "drop",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
}

func TestControllerDrivesSchedule(t *testing.T) {
	sched, err := ParseSchedule("part=brp-1@2-3,crash=brp-0@1+2")
	if err != nil {
		t.Fatal(err)
	}
	inner := &okTransport{}
	inj := NewInjector(inner, 1, Faults{})
	ctl := NewController(sched, inj)
	var log []string
	ctl.RegisterNode("brp-0", NodeHooks{
		Kill:    func() error { log = append(log, "kill"); return nil },
		Restart: func() error { log = append(log, "restart"); return nil },
	})

	sendOK := func() bool {
		return inj.Send(context.Background(), "brp-1", ping("p", "brp-1")) == nil
	}
	for cycle := 0; cycle <= 5; cycle++ {
		if err := ctl.BeginCycle(cycle); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		partitioned := cycle >= 2 && cycle <= 3
		if sendOK() != !partitioned {
			t.Errorf("cycle %d: partitioned=%v, send succeeded=%v", cycle, partitioned, !partitioned)
		}
	}
	if fmt.Sprint(log) != "[kill restart]" {
		t.Errorf("crash hook order = %v", log)
	}
	st := ctl.Stats()
	if st.Kills != 1 || st.Restarts != 1 || st.PartsCut != 1 || st.Healed != 1 {
		t.Errorf("controller stats = %+v", st)
	}
	if got := ctl.Events(); fmt.Sprint(got) != "[1 2 3 4]" {
		t.Errorf("events = %v", got)
	}
}

func TestControllerRejectsUnknownNode(t *testing.T) {
	sched, err := ParseSchedule("crash=ghost@0+1")
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(sched)
	if err := ctl.BeginCycle(0); err == nil {
		t.Error("crash of unregistered node accepted")
	}
}
