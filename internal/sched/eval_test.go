package sched

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/market"
	"mirabel/internal/timeseries"
	"mirabel/internal/workload"
)

// marketScenario builds a scenario with a real market attached, so the
// compiled quote table has actual buy/sell/capacity structure to fold.
func marketScenario(t testing.TB, offers int, seed int64) *Problem {
	t.Helper()
	prices := workload.PriceSeries(workload.PriceConfig{Days: 2, Seed: seed})
	m, err := market.NewDayAhead(market.Config{Prices: prices, CapacityKWh: 500})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildScenario(ScenarioConfig{Offers: offers, Seed: seed, Market: m})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompiledSlotCostMatchesProblem pins the compiled quote table to
// the reference slotCost across the whole horizon and a range of net
// positions, with and without a market.
func TestCompiledSlotCostMatchesProblem(t *testing.T) {
	for _, withMarket := range []bool{false, true} {
		p := marketScenario(t, 8, 3)
		if !withMarket {
			p.Market = nil
		}
		c, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []float64{-250, -3.7, -0.01, 0, 0.01, 4.2, 600} {
			for tt := 0; tt < p.Slots; tt++ {
				got, want := c.slotCost(tt, n), p.slotCost(tt, n)
				if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
					t.Fatalf("market=%v slot %d net %g: compiled %g != reference %g", withMarket, tt, n, got, want)
				}
			}
		}
	}
}

// TestDeltaEvalMatchesFull is the tentpole's equivalence guarantee:
// across long randomized sequences of placement changes (the EA's
// mutation/crossover op), the incremental evaluator's cost stays within
// 1e-9 of a full Problem.Evaluate of the same placements.
func TestDeltaEvalMatchesFull(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *Problem
	}{
		{"no-market", func() *Problem { p := marketScenario(t, 24, 5); p.Market = nil; return p }()},
		{"market", marketScenario(t, 24, 6)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.p
			c, err := Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))

			// Start from a random feasible solution.
			sol := &Solution{Placements: make([]Placement, len(p.Offers))}
			randomPlacement := func(i int) Placement {
				f := p.Offers[i]
				lo, hi := p.StartWindow(f)
				energy := make([]float64, len(f.Profile))
				for j, sl := range f.Profile {
					energy[j] = sl.EnergyMin + rng.Float64()*(sl.EnergyMax-sl.EnergyMin)
				}
				return Placement{Start: lo + flexoffer.Time(rng.Intn(int(hi-lo)+1)), Energy: energy}
			}
			for i := range p.Offers {
				sol.Placements[i] = randomPlacement(i)
			}
			ev := c.NewEval()
			ev.Init(sol)

			for step := 0; step < 3000; step++ {
				i := rng.Intn(len(p.Offers))
				pl := randomPlacement(i)
				ev.SetPlacement(i, pl.Start, pl.Energy)
				if step%250 != 0 && step != 2999 {
					continue // full Evaluate is slow; spot-check periodically
				}
				got := ev.Cost()
				want := p.Evaluate(ev.Solution())
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("step %d: delta cost %g != full evaluate %g (diff %g)", step, got, want, got-want)
				}
			}
		})
	}
}

// TestEvalResyncAndCopy covers the drift-bounding resync and the EA's
// clone path.
func TestEvalResyncAndCopy(t *testing.T) {
	p := marketScenario(t, 10, 9)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	g := &RandomizedGreedy{}
	res, err := g.Schedule(context.Background(), p, Options{MaxIterations: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	ev.Init(res.Solution)
	before := ev.Cost()
	ev.Resync()
	if after := ev.Cost(); math.Abs(after-before) > 1e-9*(1+math.Abs(before)) {
		t.Errorf("resync moved the cost: %g -> %g", before, after)
	}
	cp := c.NewEval()
	cp.CopyFrom(ev)
	if cp.Cost() != ev.Cost() {
		t.Errorf("copy cost %g != source %g", cp.Cost(), ev.Cost())
	}
	// Mutating the copy must not affect the source.
	pl := res.Solution.Placements[0]
	lo, hi := p.StartWindow(p.Offers[0])
	newStart := lo
	if pl.Start == lo && hi > lo {
		newStart = lo + 1
	}
	cp.SetPlacement(0, newStart, pl.Energy)
	if cp.Cost() == ev.Cost() && newStart != pl.Start {
		t.Log("placement move was cost-neutral (allowed), checking state isolation via Solution")
	}
	if ev.Solution().Placements[0].Start != pl.Start {
		t.Error("copy mutation leaked into source eval")
	}
}

// TestEvalCostMatchesEvaluateOnStrategies ties the new pipeline to the
// reference: for every strategy the reported cost must match a full
// Evaluate of the returned solution.
func TestEvalCostMatchesEvaluateOnStrategies(t *testing.T) {
	p := marketScenario(t, 30, 11)
	for _, s := range []Scheduler{&RandomizedGreedy{}, &Evolutionary{}, &Hybrid{}, &Parallel{Workers: 2}} {
		res, err := s.Schedule(context.Background(), p, Options{MaxIterations: 10, Seed: 12, TimeBudget: 5 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := p.ValidateSolution(res.Solution); err != nil {
			t.Fatalf("%s: invalid solution: %v", s.Name(), err)
		}
		want := p.Evaluate(res.Solution)
		if math.Abs(res.Cost-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s: reported cost %g != evaluated %g", s.Name(), res.Cost, want)
		}
	}
}

// TestParallelDeterministic: with a fixed seed and an iteration bound
// (so wall-clock jitter cannot change the search), the portfolio
// returns the same best cost run-to-run.
func TestParallelDeterministic(t *testing.T) {
	p := marketScenario(t, 20, 13)
	pl := &Parallel{Workers: 4}
	opt := Options{MaxIterations: 25, Seed: 14, TimeBudget: time.Hour}
	first, err := pl.Schedule(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		res, err := pl.Schedule(context.Background(), p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != first.Cost {
			t.Fatalf("run %d: cost %g != first run %g", run, res.Cost, first.Cost)
		}
	}
}

// TestParallelBeatsOrMatchesWorkers: the portfolio's result is the min
// over its workers, so it can never be worse than the same strategy run
// single-threaded with any of the derived worker seeds.
func TestParallelBeatsOrMatchesWorkers(t *testing.T) {
	p := marketScenario(t, 20, 15)
	ea := &Evolutionary{}
	opt := Options{MaxIterations: 20, Seed: 16, TimeBudget: time.Hour}
	pl := &Parallel{Workers: 3, Strategies: []Scheduler{ea}}
	res, err := pl.Schedule(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		wopt := opt
		wopt.Seed = workerSeed(opt.Seed, w)
		solo, err := ea.Schedule(context.Background(), p, wopt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > solo.Cost+1e-9 {
			t.Errorf("portfolio cost %g worse than worker %d solo %g", res.Cost, w, solo.Cost)
		}
	}
}

// TestParallelHonorsCancellation mirrors the per-strategy cancellation
// test for the portfolio.
func TestParallelHonorsCancellation(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 400, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = (&Parallel{Workers: 4}).Schedule(ctx, p, Options{TimeBudget: time.Hour, Seed: 18})
	if err == nil {
		t.Error("canceled portfolio returned nil error")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestParallelTraceMonotone: the merged incumbent trace must be
// non-increasing in cost.
func TestParallelTraceMonotone(t *testing.T) {
	p := marketScenario(t, 20, 19)
	res, err := (&Parallel{Workers: 4}).Schedule(context.Background(), p, Options{MaxIterations: 20, Seed: 20, TimeBudget: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace points")
	}
	prev := math.Inf(1)
	for i, tp := range res.Trace {
		if tp.Cost > prev+1e-9 {
			t.Errorf("trace[%d] cost %g > prev %g", i, tp.Cost, prev)
		}
		prev = tp.Cost
	}
}

// TestHybridSeedIterationCap is the regression test for the dead
// seedOpt.MaxIterations config: with a generous wall-clock budget, an
// iteration-bounded hybrid run must not overspend its budget on greedy
// seeding — the whole run stays within MaxIterations, which is only
// possible when the seeding loop honors its iteration share.
func TestHybridSeedIterationCap(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	const maxIter = 12
	res, err := (&Hybrid{}).Schedule(context.Background(), p, Options{
		TimeBudget:    time.Hour, // only the iteration bound may stop the run
		MaxIterations: maxIter,
		Seed:          22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > maxIter {
		t.Errorf("hybrid spent %d iterations, budget was %d", res.Iterations, maxIter)
	}
	// The evolution phase must have gotten its share: seeding alone is
	// capped at MaxIterations/4+1.
	if res.Iterations <= maxIter/4+1 {
		t.Errorf("hybrid stopped after %d iterations — evolution phase never ran", res.Iterations)
	}
}

// TestCountSolutionsClampedWindow: the reported search-space size must
// match what the strategies actually explore — the clamped StartWindow,
// not the raw TimeFlexibility.
func TestCountSolutionsClampedWindow(t *testing.T) {
	p := pastWindowProblem() // EarliestStart 2 < Start 4 ≤ LatestStart 6
	if got := p.CountSolutions(); got != 3 {
		t.Errorf("CountSolutions = %g, want 3 (clamped window [4,6])", got)
	}
}

// TestGreedyAllocFree: the steady-state greedy restart loop must not
// allocate (tentpole: reusable scratch arena).
func TestGreedyAllocFree(t *testing.T) {
	p := marketScenario(t, 30, 23)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	run := newGreedyRun(c, FillGreedy)
	order := make([]int, len(c.offers))
	for i := range order {
		order[i] = i
	}
	run.construct(order) // warm up
	allocs := testing.AllocsPerRun(20, func() {
		run.construct(order)
	})
	if allocs > 0 {
		t.Errorf("greedy construct allocates %.1f objects per restart, want 0", allocs)
	}
}

// TestTinyMarketQuoteTable pins the compiled table against hand-priced
// quotes (same fixture as TestSlotCostWithMarket).
func TestTinyMarketQuoteTable(t *testing.T) {
	prices := timeseries.New(workload.DefaultOrigin, time.Hour, []float64{100}) // 0.1 EUR/kWh mid
	m, err := market.NewDayAhead(market.Config{Prices: prices, SpreadFrac: 0.2, CapacityKWh: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := tinyProblem()
	p.Market = m
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.slotCost(0, 8), 5*0.11+3*1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("slotCost(deficit) = %g, want %g", got, want)
	}
	if got := c.slotCost(0, -3); math.Abs(got-(-0.27)) > 1e-9 {
		t.Errorf("slotCost(surplus) = %g, want −0.27", got)
	}
}
