package sched

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestHybridProducesValidSolutions(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 50, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	h := &Hybrid{}
	res, err := h.Schedule(context.Background(), p, Options{TimeBudget: 300 * time.Millisecond, Seed: 22, TraceEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateSolution(res.Solution); err != nil {
		t.Fatalf("hybrid produced invalid solution: %v", err)
	}
	if res.Cost >= p.BaselineCost() {
		t.Errorf("hybrid cost %g not below default %g", res.Cost, p.BaselineCost())
	}
}

func TestHybridEncodeDecodeRoundtrip(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 20, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	g := &RandomizedGreedy{}
	res, err := g.Schedule(context.Background(), p, Options{MaxIterations: 1, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	ea := (&Evolutionary{}).defaults()
	ind := ea.encode(p, res.Solution)
	back := ea.decode(p, &ind)
	for i := range p.Offers {
		if back.Placements[i].Start != res.Solution.Placements[i].Start {
			t.Fatalf("offer %d: start %d != %d after roundtrip", i,
				back.Placements[i].Start, res.Solution.Placements[i].Start)
		}
		for j, e := range back.Placements[i].Energy {
			if math.Abs(e-res.Solution.Placements[i].Energy[j]) > 1e-9 {
				t.Fatalf("offer %d slice %d: energy %g != %g", i, j, e, res.Solution.Placements[i].Energy[j])
			}
		}
	}
	// The encoded individual's cost must equal the greedy cost.
	if got := p.Evaluate(back); math.Abs(got-p.Evaluate(res.Solution)) > 1e-9 {
		t.Errorf("roundtrip cost %g != original %g", got, p.Evaluate(res.Solution))
	}
}

func TestHybridAtLeastAsGoodAsSeeds(t *testing.T) {
	// The hybrid keeps its greedy seeds through elitism, so its final
	// cost can never be worse than pure greedy with the seeding budget.
	p, err := BuildScenario(ScenarioConfig{Offers: 100, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	h := &Hybrid{SeedBudgetFrac: 0.3}
	res, err := h.Schedule(context.Background(), p, Options{TimeBudget: 400 * time.Millisecond, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	seedOnly, err := (&RandomizedGreedy{}).Schedule(context.Background(), p, Options{TimeBudget: 120 * time.Millisecond, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	// Allow stochastic slack: the hybrid saw fewer greedy restarts but
	// adds evolution on top.
	if res.Cost > seedOnly.Cost*1.1+1 {
		t.Errorf("hybrid %g much worse than greedy seeds %g", res.Cost, seedOnly.Cost)
	}
}

func TestHybridTraceMonotone(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 30, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	h := &Hybrid{}
	res, err := h.Schedule(context.Background(), p, Options{TimeBudget: 200 * time.Millisecond, Seed: 28, TraceEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, tp := range res.Trace {
		if tp.Cost > prev+1e-9 {
			t.Fatalf("trace not monotone: %g after %g", tp.Cost, prev)
		}
		prev = tp.Cost
	}
}
