package sched

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/market"
	"mirabel/internal/timeseries"
	"mirabel/internal/workload"
)

// tinyProblem: 8 slots, surplus of 10 kWh in slots 4..5, one offer that
// can soak it up if placed there.
func tinyProblem() *Problem {
	baseline := []float64{0, 0, 0, 0, -10, -10, 0, 0}
	prices := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	offer := &flexoffer.FlexOffer{
		ID:            1,
		EarliestStart: 0,
		LatestStart:   6,
		Profile:       []flexoffer.Slice{{EnergyMin: 0, EnergyMax: 10}, {EnergyMin: 0, EnergyMax: 10}},
	}
	return &Problem{
		Start:          0,
		Slots:          8,
		Baseline:       baseline,
		ImbalancePrice: prices,
		Offers:         []*flexoffer.FlexOffer{offer},
	}
}

func TestProblemValidate(t *testing.T) {
	p := tinyProblem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinyProblem()
	bad.Offers[0].LatestStart = 7 // profile would end at 9 > 8
	if err := bad.Validate(); err == nil {
		t.Error("offer outside horizon accepted")
	}
	bad2 := tinyProblem()
	bad2.Baseline = bad2.Baseline[:4]
	if err := bad2.Validate(); err == nil {
		t.Error("baseline length mismatch accepted")
	}
}

func TestEvaluateKnownCost(t *testing.T) {
	p := tinyProblem()
	// Place the offer exactly on the surplus with full energy: perfect
	// balance, only activation cost (0 per kWh here).
	sol := &Solution{Placements: []Placement{{Start: 4, Energy: []float64{10, 10}}}}
	if cost := p.Evaluate(sol); cost != 0 {
		t.Errorf("balanced cost = %g, want 0", cost)
	}
	// Place it at 0: surplus unabsorbed (20 kWh·1) + consumption
	// unbacked (20 kWh·1) = 40.
	sol = &Solution{Placements: []Placement{{Start: 0, Energy: []float64{10, 10}}}}
	if cost := p.Evaluate(sol); cost != 40 {
		t.Errorf("misplaced cost = %g, want 40", cost)
	}
}

func TestEvaluateWithOfferCost(t *testing.T) {
	p := tinyProblem()
	p.Offers[0].CostPerKWh = 0.5
	sol := &Solution{Placements: []Placement{{Start: 4, Energy: []float64{10, 10}}}}
	if cost := p.Evaluate(sol); math.Abs(cost-10) > 1e-9 {
		t.Errorf("cost = %g, want 10 (20 kWh · 0.5)", cost)
	}
}

func TestSlotCostWithMarket(t *testing.T) {
	prices := timeseries.New(workload.DefaultOrigin, time.Hour, []float64{100}) // 0.1 EUR/kWh mid
	m, err := market.NewDayAhead(market.Config{Prices: prices, SpreadFrac: 0.2, CapacityKWh: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := tinyProblem()
	p.Market = m
	// Deficit of 8 with capacity 5 at buy 0.11: buy 5, penalize 3.
	got := p.slotCost(0, 8)
	want := 5*0.11 + 3*1.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("slotCost(deficit) = %g, want %g", got, want)
	}
	// Surplus of 3 at sell 0.09: sell all, revenue −0.27.
	got = p.slotCost(0, -3)
	if math.Abs(got-(-0.27)) > 1e-9 {
		t.Errorf("slotCost(surplus) = %g, want −0.27", got)
	}
}

func TestSlotCostMarketWorseThanPenalty(t *testing.T) {
	prices := timeseries.New(workload.DefaultOrigin, time.Hour, []float64{5000}) // 5 EUR/kWh
	m, err := market.NewDayAhead(market.Config{Prices: prices})
	if err != nil {
		t.Fatal(err)
	}
	p := tinyProblem()
	p.Market = m // imbalance penalty 1 < buy price 5: do not buy
	if got := p.slotCost(0, 8); math.Abs(got-8) > 1e-9 {
		t.Errorf("slotCost = %g, want 8 (pure penalty)", got)
	}
}

func TestGreedyFindsTheSurplus(t *testing.T) {
	g := &RandomizedGreedy{}
	res, err := g.Schedule(context.Background(), tinyProblem(), Options{MaxIterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 1e-9 {
		t.Errorf("greedy cost = %g, want 0", res.Cost)
	}
	if res.Solution.Placements[0].Start != 4 {
		t.Errorf("greedy start = %d, want 4", res.Solution.Placements[0].Start)
	}
}

func TestGreedySolutionsAreValid(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := &RandomizedGreedy{}
	res, err := g.Schedule(context.Background(), p, Options{MaxIterations: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateSolution(res.Solution); err != nil {
		t.Errorf("greedy produced invalid solution: %v", err)
	}
	// Incremental accumulation and re-evaluation may differ by rounding.
	if ev := p.Evaluate(res.Solution); math.Abs(ev-res.Cost) > 1e-9*(1+math.Abs(ev)) {
		t.Errorf("reported cost %g != evaluated %g", res.Cost, ev)
	}
}

func TestEvolutionarySolutionsAreValidAndImprove(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ea := &Evolutionary{}
	res, err := ea.Schedule(context.Background(), p, Options{MaxIterations: 40, Seed: 5, TraceEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateSolution(res.Solution); err != nil {
		t.Fatalf("EA produced invalid solution: %v", err)
	}
	first := res.Trace[0].Cost
	last := res.Trace[len(res.Trace)-1].Cost
	if last > first {
		t.Errorf("EA got worse over time: %g → %g", first, last)
	}
	if last >= p.BaselineCost() {
		t.Errorf("EA cost %g not better than unscheduled baseline %g", last, p.BaselineCost())
	}
}

func TestTraceMonotoneNonIncreasing(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{&RandomizedGreedy{}, &Evolutionary{}} {
		res, err := s.Schedule(context.Background(), p, Options{MaxIterations: 25, Seed: 7, TraceEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		for i, tp := range res.Trace {
			if tp.Cost > prev+1e-9 {
				t.Errorf("%s: trace[%d] cost %g > prev %g", s.Name(), i, tp.Cost, prev)
			}
			prev = tp.Cost
		}
	}
}

func TestExhaustiveOptimalOnTiny(t *testing.T) {
	p := tinyProblem()
	x := &Exhaustive{}
	res, err := x.Schedule(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With midpoint energies (5 per slice) the best is soaking 10 of the
	// 20 surplus: cost 10·1 (residual surplus) + 0 activation.
	if math.Abs(res.Cost-10) > 1e-9 {
		t.Errorf("exhaustive cost = %g, want 10", res.Cost)
	}
	if res.Solution.Placements[0].Start != 4 {
		t.Errorf("exhaustive start = %d, want 4", res.Solution.Placements[0].Start)
	}
	// 7 start positions enumerated.
	if res.Iterations != 7 {
		t.Errorf("iterations = %d, want 7", res.Iterations)
	}
}

func TestExhaustiveLimit(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 40, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	x := &Exhaustive{Limit: 1000}
	if _, err := x.Schedule(context.Background(), p, Options{}); err == nil {
		t.Error("exhaustive accepted an instance over its limit")
	}
}

func TestGreedyNearOptimalOnSmallInstances(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	gap, optimal, heuristic, err := OptimalityGap(context.Background(), p, &RandomizedGreedy{}, Options{MaxIterations: 50, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The heuristic chooses energies freely, so it may beat the
	// midpoint-energy optimum; it must never be much worse.
	if gap > 0.25*math.Abs(optimal)+1e-6 {
		t.Errorf("greedy %g much worse than optimal %g", heuristic, optimal)
	}
}

func TestCountSolutions(t *testing.T) {
	p := tinyProblem()
	if got := p.CountSolutions(); got != 7 {
		t.Errorf("CountSolutions = %g, want 7", got)
	}
}

func TestBuildScenarioValidation(t *testing.T) {
	if _, err := BuildScenario(ScenarioConfig{}); err == nil {
		t.Error("zero offers accepted")
	}
	p, err := BuildScenario(ScenarioConfig{Offers: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Offers) != 100 || p.Slots != flexoffer.SlotsPerDay {
		t.Errorf("scenario shape: offers=%d slots=%d", len(p.Offers), p.Slots)
	}
}

func TestSchedulingReducesCostVsBaseline(t *testing.T) {
	// The headline claim: scheduling flexibilities reduces imbalance
	// cost versus everyone consuming on their default profile.
	p, err := BuildScenario(ScenarioConfig{Offers: 200, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	g := &RandomizedGreedy{}
	res, err := g.Schedule(context.Background(), p, Options{MaxIterations: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	base := p.BaselineCost()
	if res.Cost >= base {
		t.Errorf("scheduled cost %g >= default cost %g", res.Cost, base)
	}
	// The savings should be substantial (> 25%).
	if res.Cost > 0.75*base {
		t.Errorf("savings too small: %g vs %g", res.Cost, base)
	}
}

func TestGreedyFillAblation(t *testing.T) {
	// The greedy energy-fill must beat midpoint fill on a scenario with
	// real surpluses to chase.
	p, err := BuildScenario(ScenarioConfig{Offers: 100, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	greedyFill, err := (&RandomizedGreedy{Fill: FillGreedy}).Schedule(context.Background(), p, Options{MaxIterations: 5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	midFill, err := (&RandomizedGreedy{Fill: FillMidpoint}).Schedule(context.Background(), p, Options{MaxIterations: 5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if greedyFill.Cost >= midFill.Cost {
		t.Errorf("greedy fill %g not better than midpoint fill %g", greedyFill.Cost, midFill.Cost)
	}
}

func TestMarketLowersScheduleCost(t *testing.T) {
	// With a market, residual imbalances trade at spot instead of paying
	// the full penalty: the same schedule must cost no more.
	prices := timeseries.New(workload.DefaultOrigin, time.Hour, repeatVals(60, 48))
	m, err := market.NewDayAhead(market.Config{Prices: prices, CapacityKWh: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	noMarket, err := BuildScenario(ScenarioConfig{Offers: 50, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	withMarket, err := BuildScenario(ScenarioConfig{Offers: 50, Seed: 16, Market: m})
	if err != nil {
		t.Fatal(err)
	}
	g := &RandomizedGreedy{}
	a, err := g.Schedule(context.Background(), noMarket, Options{MaxIterations: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Schedule(context.Background(), withMarket, Options{MaxIterations: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cost > a.Cost+1e-9 {
		t.Errorf("market access raised the cost: %g vs %g", b.Cost, a.Cost)
	}
}

func repeatVals(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Property: for random solutions of random scenarios, Evaluate is
// deterministic and schedules round-trip through Schedules/Validate.
func TestPropertyEvaluateDeterministicAndValid(t *testing.T) {
	f := func(seed int64) bool {
		p, err := BuildScenario(ScenarioConfig{Offers: 10, Seed: seed})
		if err != nil {
			return false
		}
		g := &RandomizedGreedy{}
		res, err := g.Schedule(context.Background(), p, Options{MaxIterations: 1, Seed: seed})
		if err != nil {
			return false
		}
		if p.Evaluate(res.Solution) != p.Evaluate(res.Solution) {
			return false
		}
		for i, s := range p.Schedules(res.Solution) {
			if p.Offers[i].ValidateSchedule(s) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSchedulersHonorCancellation(t *testing.T) {
	// A big instance with a generous budget: only cancellation can end
	// the search quickly. Every strategy must return ctx.Err() promptly.
	p, err := BuildScenario(ScenarioConfig{Offers: 400, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{&RandomizedGreedy{}, &Evolutionary{}, &Hybrid{}} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		t0 := time.Now()
		_, err := s.Schedule(ctx, p, Options{TimeBudget: time.Hour, Seed: 19})
		cancel()
		if err == nil {
			t.Errorf("%s: canceled search returned nil error", s.Name())
		}
		// Prompt means well under the one-hour budget; allow slack for a
		// single in-flight iteration on a loaded machine.
		if elapsed := time.Since(t0); elapsed > 5*time.Second {
			t.Errorf("%s: cancellation took %v", s.Name(), elapsed)
		}
	}
}

func TestExhaustiveHonorsCancellation(t *testing.T) {
	p, err := BuildScenario(ScenarioConfig{Offers: 8, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Exhaustive{}).Schedule(ctx, p, Options{}); err == nil {
		t.Error("canceled enumeration returned nil error")
	}
}

// pastWindowProblem is a planning instance whose planning time has
// slipped into one offer's start window: EarliestStart (2) < Start (4)
// ≤ LatestStart (6). Such offers used to be rejected by Validate (and
// were prematurely expired by the scheduling cycle); they are still
// schedulable in the remainder of their window.
func pastWindowProblem() *Problem {
	baseline := []float64{0, 0, -10, -10, 0, 0, 0, 0}
	prices := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	offer := &flexoffer.FlexOffer{
		ID:            1,
		AssignBefore:  2,
		EarliestStart: 2,
		LatestStart:   6,
		Profile:       []flexoffer.Slice{{EnergyMin: 0, EnergyMax: 10}, {EnergyMin: 0, EnergyMax: 10}},
	}
	return &Problem{
		Start:          4,
		Slots:          8,
		Baseline:       baseline,
		ImbalancePrice: prices,
		Offers:         []*flexoffer.FlexOffer{offer},
	}
}

func TestStartWindowClampsAtPlanningTime(t *testing.T) {
	p := pastWindowProblem()
	lo, hi := p.StartWindow(p.Offers[0])
	if lo != 4 || hi != 6 {
		t.Fatalf("StartWindow = [%d, %d], want [4, 6]", lo, hi)
	}
	// Within the window, EarliestStart still governs.
	early := &flexoffer.FlexOffer{EarliestStart: 5, LatestStart: 6}
	if lo, hi := p.StartWindow(early); lo != 5 || hi != 6 {
		t.Fatalf("StartWindow = [%d, %d], want [5, 6]", lo, hi)
	}
}

// TestPastEarliestStartOffersStaySchedulable is the regression test for
// the premature-expiry bug: an offer with EarliestStart < Start ≤
// LatestStart must pass validation and every strategy must place it at
// a start inside the clamped window [Start, LatestStart] — never in the
// past. Before the fix Validate rejected the instance outright.
func TestPastEarliestStartOffersStaySchedulable(t *testing.T) {
	p := pastWindowProblem()
	if err := p.Validate(); err != nil {
		t.Fatalf("still-schedulable offer rejected: %v", err)
	}
	// BaselineCost must clamp the default placement too (it would index
	// the net position out of range otherwise).
	_ = p.BaselineCost()

	for _, s := range []Scheduler{&RandomizedGreedy{}, &Evolutionary{}, &Hybrid{}, &Exhaustive{}} {
		res, err := s.Schedule(context.Background(), p, Options{MaxIterations: 5, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		start := res.Solution.Placements[0].Start
		if start < p.Start || start > p.Offers[0].LatestStart {
			t.Errorf("%s placed start %d outside clamped window [%d, %d]", s.Name(), start, p.Start, p.Offers[0].LatestStart)
		}
		if err := p.ValidateSolution(res.Solution); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}

	// Truly closed windows (LatestStart < Start) still fail validation.
	gone := pastWindowProblem()
	gone.Offers[0].LatestStart = 3
	if err := gone.Validate(); err == nil {
		t.Error("offer with closed start window accepted")
	}
}
