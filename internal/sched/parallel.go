package sched

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel is a portfolio scheduler: K workers search the same problem
// on separate goroutines, each running one strategy of the portfolio
// with its own deterministic RNG stream, publishing improvements to a
// shared incumbent. Within the same wall-clock budget the portfolio
// evaluates K× the candidates of a single-threaded run and hedges
// across strategies — the paper's Figure 6 quality-at-budget curves
// shift left by roughly the worker count.
//
// Determinism: worker seeds derive from Options.Seed with a splitmix64
// stream, workers never read the shared incumbent (it only collects
// results), and the final winner is picked by (cost, worker index) —
// so an iteration-bounded run returns the same best cost every time.
type Parallel struct {
	// Workers is the goroutine count (default runtime.GOMAXPROCS(0)).
	Workers int
	// Strategies is the portfolio cycled across workers (default
	// Hybrid, EA, randomized greedy). Entries are shared between runs,
	// not between workers: each worker calls its strategy's Schedule
	// once, and all shipped strategies are stateless.
	Strategies []Scheduler
}

// Name implements Scheduler.
func (pl *Parallel) Name() string { return "PAR" }

// Schedule implements Scheduler: it fans the search out over the
// worker pool and returns the best solution any worker found.
// Cancelling ctx stops every worker promptly; the shared incumbent
// still carries the best solution seen so far.
func (pl *Parallel) Schedule(ctx context.Context, p *Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	k := pl.Workers
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	strats := pl.Strategies
	if len(strats) == 0 {
		strats = []Scheduler{&Hybrid{}, &Evolutionary{}, &RandomizedGreedy{}}
	}

	in := newIncumbent()
	results := make([]Result, k)
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wopt := opt
			wopt.Seed = workerSeed(opt.Seed, w)
			wopt.TraceEvery = 0 // the merged trace comes from the incumbent
			wopt.shared = in
			// Worker errors are context errors: the problem validated
			// above, and a canceled worker still reports its best.
			results[w], _ = strats[w%len(strats)].Schedule(ctx, p, wopt)
		}(w)
	}
	wg.Wait()

	best := Result{Cost: math.Inf(1)}
	iters := 0
	for _, r := range results {
		iters += r.Iterations
		if r.Solution != nil && r.Cost < best.Cost {
			best = r
		}
	}
	trace := append(in.traceSnapshot(), TracePoint{Elapsed: in.elapsed(), Iterations: iters, Cost: best.Cost})
	return Result{Solution: best.Solution, Cost: best.Cost, Iterations: iters, Trace: trace}, ctx.Err()
}

// workerSeed derives worker w's RNG stream from the run seed via a
// splitmix64 step, so streams are decorrelated yet fully determined by
// (Seed, w).
func workerSeed(seed int64, w int) int64 {
	z := uint64(seed) + uint64(w+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// incumbent is the portfolio's shared best-so-far. Trackers publish
// improvements through offer; the cost gate is an atomic
// compare-and-swap so non-improving candidates (the overwhelming
// majority) never touch the mutex.
type incumbent struct {
	bits  atomic.Uint64 // math.Float64bits of the best published cost
	start time.Time

	mu    sync.Mutex
	cost  float64
	sol   *Solution
	trace []TracePoint
}

func newIncumbent() *incumbent {
	in := &incumbent{start: time.Now(), cost: math.Inf(1)}
	in.bits.Store(math.Float64bits(math.Inf(1)))
	return in
}

// offer publishes an improvement. sol is retained as-is: callers pass
// solutions they never mutate afterwards (tracker bests), so no copy is
// needed. Losing the CAS race means another worker published something
// at least as good — the update is simply dropped.
func (in *incumbent) offer(cost float64, sol *Solution) {
	for {
		cur := in.bits.Load()
		if cost >= math.Float64frombits(cur) {
			return
		}
		if in.bits.CompareAndSwap(cur, math.Float64bits(cost)) {
			break
		}
	}
	in.mu.Lock()
	// Re-check under the mutex: a CAS winner with a worse cost may take
	// the lock after a better one, and must not regress the record.
	if cost < in.cost {
		in.cost = cost
		in.sol = sol
		in.trace = append(in.trace, TracePoint{Elapsed: time.Since(in.start), Cost: cost})
	}
	in.mu.Unlock()
}

// traceSnapshot returns a copy of the improvement trace so far.
func (in *incumbent) traceSnapshot() []TracePoint {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]TracePoint(nil), in.trace...)
}

func (in *incumbent) elapsed() time.Duration { return time.Since(in.start) }
