package sched

import (
	"context"
	"math"
	"time"
)

// TracePoint is one entry of a scheduler convergence trace (the data
// behind the paper's Figure 6 cost-over-time curves).
type TracePoint struct {
	Elapsed    time.Duration
	Iterations int
	Cost       float64
}

// Result is the outcome of one scheduler run.
type Result struct {
	Solution   *Solution
	Cost       float64
	Iterations int
	Trace      []TracePoint
}

// Options bound a scheduler run.
type Options struct {
	// TimeBudget stops the search after this wall-clock duration
	// (default 1s).
	TimeBudget time.Duration
	// MaxIterations additionally bounds the iteration count (0 = none).
	// One iteration is one constructed schedule (greedy) or one
	// generation (EA).
	MaxIterations int
	// Seed makes the stochastic search reproducible.
	Seed int64
	// TraceEvery records a trace point every N iterations (0 = only the
	// final point).
	TraceEvery int

	// shared is the cross-worker incumbent a Parallel portfolio run
	// installs: trackers publish improvements to it so the portfolio
	// can return the global best promptly on cancellation. Strategies
	// never read it back — searches stay deterministic per worker.
	shared *incumbent
}

func (o Options) budget() time.Duration {
	if o.TimeBudget <= 0 {
		return time.Second
	}
	return o.TimeBudget
}

// Scheduler is a scheduling strategy.
type Scheduler interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Schedule searches for a low-cost solution of p within opt's
	// budget. Cancelling ctx stops the search promptly: the strategy
	// returns the best solution found so far (which may be nil if no
	// iteration completed) together with ctx.Err(). A nil error always
	// means a run that terminated by its own budget.
	Schedule(ctx context.Context, p *Problem, opt Options) (Result, error)
}

// tracker accumulates the incumbent and trace across iterations.
type tracker struct {
	ctx      context.Context
	start    time.Time
	deadline time.Time
	maxIter  int
	every    int
	shared   *incumbent

	iter  int
	best  *Solution
	cost  float64
	trace []TracePoint
}

func newTracker(ctx context.Context, opt Options) *tracker {
	t := &tracker{
		ctx:     ctx,
		start:   time.Now(),
		maxIter: opt.MaxIterations,
		every:   opt.TraceEvery,
		shared:  opt.shared,
		cost:    math.Inf(1),
	}
	t.deadline = t.start.Add(opt.budget())
	return t
}

func (t *tracker) exhausted() bool {
	if t.ctx != nil && t.ctx.Err() != nil {
		return true
	}
	if t.maxIter > 0 && t.iter >= t.maxIter {
		return true
	}
	return time.Now().After(t.deadline)
}

// observe records a completed iteration. mk materializes the candidate
// solution and is only called when cost improves on the incumbent —
// the hot loop never allocates for non-improving candidates. The
// returned solution is retained as-is, so mk must hand over a fresh or
// cloned solution, never a live scratch buffer. Improvements are also
// published to the shared portfolio incumbent, if one is installed.
func (t *tracker) observe(cost float64, mk func() *Solution) {
	t.iter++
	if cost < t.cost {
		t.cost = cost
		t.best = mk()
		if t.shared != nil {
			t.shared.offer(cost, t.best)
		}
	}
	if t.every > 0 && t.iter%t.every == 0 {
		t.trace = append(t.trace, TracePoint{Elapsed: time.Since(t.start), Iterations: t.iter, Cost: t.cost})
	}
}

func (t *tracker) result() Result {
	t.trace = append(t.trace, TracePoint{Elapsed: time.Since(t.start), Iterations: t.iter, Cost: t.cost})
	return Result{Solution: t.best, Cost: t.cost, Iterations: t.iter, Trace: t.trace}
}

func cloneSolution(s *Solution) *Solution {
	out := &Solution{Placements: make([]Placement, len(s.Placements))}
	for i, pl := range s.Placements {
		out.Placements[i] = Placement{Start: pl.Start, Energy: append([]float64(nil), pl.Energy...)}
	}
	return out
}
