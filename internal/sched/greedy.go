package sched

import (
	"context"
	"math"
	"math/rand"

	"mirabel/internal/flexoffer"
)

// FillMode selects how per-slice energies are chosen when a single offer
// is placed.
type FillMode int

const (
	// FillGreedy picks, per slice, the energy inside [min, max] that
	// cancels as much of the current imbalance as possible (default).
	FillGreedy FillMode = iota
	// FillMidpoint always uses the middle of the energy range — the
	// ablation baseline for the energy-fill design decision.
	FillMidpoint
)

// RandomizedGreedy is the paper's randomized greedy search: it
// "constructs the schedule gradually — at each step a randomly chosen
// flex-offer is scheduled in the best possible position", repeated with
// fresh random orders until the time budget is exhausted, keeping the
// best schedule found.
type RandomizedGreedy struct {
	// Fill selects the energy-fill rule (default FillGreedy).
	Fill FillMode
}

// Name implements Scheduler.
func (g *RandomizedGreedy) Name() string { return "GS" }

// Schedule implements Scheduler.
func (g *RandomizedGreedy) Schedule(ctx context.Context, p *Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	tr := newTracker(ctx, opt)
	order := make([]int, len(p.Offers))
	for i := range order {
		order[i] = i
	}
	for !tr.exhausted() {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sol, cost := g.construct(p, order)
		tr.observe(sol, cost)
	}
	return tr.result(), ctx.Err()
}

// construct builds one schedule: offers in the given order, each placed
// at its locally best start with the fill rule's energies.
func (g *RandomizedGreedy) construct(p *Problem, order []int) (*Solution, float64) {
	net := append([]float64(nil), p.Baseline...)
	sol := &Solution{Placements: make([]Placement, len(p.Offers))}
	var offerCosts float64

	for _, idx := range order {
		f := p.Offers[idx]
		bestDelta := math.Inf(1)
		var bestStart flexoffer.Time
		var bestEnergy []float64

		energy := make([]float64, len(f.Profile))
		lo, hi := p.StartWindow(f)
		for start := lo; start <= hi; start++ {
			base := int(start - p.Start)
			var delta float64
			for j, sl := range f.Profile {
				t := base + j
				e := g.fill(sl, net[t])
				energy[j] = e
				delta += p.slotCost(t, net[t]+e) - p.slotCost(t, net[t])
			}
			delta += offerCost(f, energy)
			if delta < bestDelta {
				bestDelta = delta
				bestStart = start
				bestEnergy = append(bestEnergy[:0], energy...)
			}
		}

		base := int(bestStart - p.Start)
		for j, e := range bestEnergy {
			net[base+j] += e
		}
		offerCosts += offerCost(f, bestEnergy)
		sol.Placements[idx] = Placement{Start: bestStart, Energy: bestEnergy}
	}

	var cost float64
	for t, n := range net {
		cost += p.slotCost(t, n)
	}
	return sol, cost + offerCosts
}

// fill picks the slice energy for the current net position.
func (g *RandomizedGreedy) fill(sl flexoffer.Slice, net float64) float64 {
	if g.Fill == FillMidpoint {
		return (sl.EnergyMin + sl.EnergyMax) / 2
	}
	// Cancel the imbalance: target −net, clamped into the slice range.
	e := -net
	if e < sl.EnergyMin {
		e = sl.EnergyMin
	}
	if e > sl.EnergyMax {
		e = sl.EnergyMax
	}
	return e
}
