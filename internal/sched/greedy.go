package sched

import (
	"context"
	"math"
	"math/rand"

	"mirabel/internal/flexoffer"
)

// FillMode selects how per-slice energies are chosen when a single offer
// is placed.
type FillMode int

const (
	// FillGreedy picks, per slice, the energy inside [min, max] that
	// cancels as much of the current imbalance as possible (default).
	FillGreedy FillMode = iota
	// FillMidpoint always uses the middle of the energy range — the
	// ablation baseline for the energy-fill design decision.
	FillMidpoint
)

// RandomizedGreedy is the paper's randomized greedy search: it
// "constructs the schedule gradually — at each step a randomly chosen
// flex-offer is scheduled in the best possible position", repeated with
// fresh random orders until the time budget is exhausted, keeping the
// best schedule found. The inner loop prices slots from the compiled
// quote table and reuses one scratch arena across restarts, so
// steady-state search allocates nothing.
type RandomizedGreedy struct {
	// Fill selects the energy-fill rule (default FillGreedy).
	Fill FillMode
}

// Name implements Scheduler.
func (g *RandomizedGreedy) Name() string { return "GS" }

// Schedule implements Scheduler.
func (g *RandomizedGreedy) Schedule(ctx context.Context, p *Problem, opt Options) (Result, error) {
	c, err := Compile(p)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	tr := newTracker(ctx, opt)
	run := newGreedyRun(c, g.Fill)
	order := make([]int, len(c.offers))
	for i := range order {
		order[i] = i
	}
	mk := func() *Solution { return cloneSolution(&run.sol) }
	for !tr.exhausted() {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		tr.observe(run.construct(order), mk)
	}
	return tr.result(), ctx.Err()
}

// greedyRun is the reusable scratch arena of one greedy search: the net
// position, the solution under construction (whose placement energies
// live in one flat arena, sliced per offer) and a candidate energy
// buffer. construct overwrites all of it each restart.
type greedyRun struct {
	c      *Compiled
	fill   FillMode
	net    []float64
	sol    Solution
	arena  []float64 // best energies per offer, flattened like c.emin
	energy []float64 // candidate energies for one start position
}

func newGreedyRun(c *Compiled, fill FillMode) *greedyRun {
	r := &greedyRun{
		c:      c,
		fill:   fill,
		net:    make([]float64, c.slots),
		sol:    Solution{Placements: make([]Placement, len(c.offers))},
		arena:  make([]float64, len(c.emin)),
		energy: make([]float64, c.maxProfile),
	}
	for i := range c.offers {
		o := &c.offers[i]
		r.sol.Placements[i].Energy = r.arena[o.base : o.base+o.n]
	}
	return r
}

// construct builds one schedule into r.sol: offers in the given order,
// each placed at its locally best start with the fill rule's energies.
// The returned cost refers to scratch state that the next construct
// overwrites — callers must clone before retaining the solution.
func (r *greedyRun) construct(order []int) float64 {
	c := r.c
	copy(r.net, c.baseline)
	var offerCosts float64

	for _, idx := range order {
		o := &c.offers[idx]
		bestDelta := math.Inf(1)
		bestOff := 0
		bestEnergy := r.arena[o.base : o.base+o.n]
		energy := r.energy[:o.n]

		for off := 0; off <= o.width; off++ {
			base := int(o.lo-c.start) + off
			var delta, act float64
			for j := 0; j < o.n; j++ {
				t := base + j
				e := r.fillEnergy(o.base+j, r.net[t])
				energy[j] = e
				delta += c.slotCost(t, r.net[t]+e) - c.slotCost(t, r.net[t])
				act += math.Abs(e)
			}
			delta += act * o.costPerKWh
			if delta < bestDelta {
				bestDelta = delta
				bestOff = off
				copy(bestEnergy, energy)
			}
		}

		base := int(o.lo-c.start) + bestOff
		var act float64
		for j, e := range bestEnergy {
			r.net[base+j] += e
			act += math.Abs(e)
		}
		offerCosts += act * o.costPerKWh
		r.sol.Placements[idx].Start = o.lo + flexoffer.Time(bestOff)
	}

	var cost float64
	for t, n := range r.net {
		cost += r.c.slotCost(t, n)
	}
	return cost + offerCosts
}

// fillEnergy picks the slice energy for the current net position; k
// indexes the flattened profile bounds.
func (r *greedyRun) fillEnergy(k int, net float64) float64 {
	lo, hi := r.c.emin[k], r.c.emax[k]
	if r.fill == FillMidpoint {
		return (lo + hi) / 2
	}
	// Cancel the imbalance: target −net, clamped into the slice range.
	e := -net
	if e < lo {
		e = lo
	}
	if e > hi {
		e = hi
	}
	return e
}
