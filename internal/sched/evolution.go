package sched

import (
	"context"
	"math/rand"

	"mirabel/internal/flexoffer"
)

// Evolutionary is the paper's evolutionary algorithm [Eiben & Smith
// 2003]: a population of schedules evolves by tournament selection,
// uniform crossover and mutation, "to find progressively better
// solutions". One iteration is one generation.
//
// Each individual carries its own incremental evaluation state (Eval):
// crossover and mutation apply gene changes through it, so a child's
// cost is delta-computed from its parent's — O(changed genes × profile)
// with table-lookup slot pricing — instead of a full Evaluate per
// candidate. The steady-state generation loop allocates nothing: the
// population and its scratch double-buffer are built once per run.
type Evolutionary struct {
	// PopulationSize (default 30).
	PopulationSize int
	// Elite individuals copied unchanged into the next generation
	// (default 2).
	Elite int
	// TournamentSize of the selection (default 3).
	TournamentSize int
	// CrossoverRate is the probability a child mixes two parents instead
	// of cloning one (default 0.9).
	CrossoverRate float64
	// MutationRate is the per-offer-gene mutation probability (default
	// 0.1).
	MutationRate float64
}

// Name implements Scheduler.
func (e *Evolutionary) Name() string { return "EA" }

func (e *Evolutionary) defaults() Evolutionary {
	d := *e
	if d.PopulationSize <= 0 {
		d.PopulationSize = 30
	}
	if d.Elite <= 0 {
		d.Elite = 2
	}
	if d.Elite >= d.PopulationSize {
		d.Elite = d.PopulationSize - 1
	}
	if d.TournamentSize <= 0 {
		d.TournamentSize = 3
	}
	if d.CrossoverRate <= 0 {
		d.CrossoverRate = 0.9
	}
	if d.MutationRate <= 0 {
		d.MutationRate = 0.1
	}
	return d
}

// gene is one offer's genotype: the start offset inside the offer's
// clamped start window (Problem.StartWindow) and the energy fraction
// per slice.
type gene struct {
	startOff int
	fracs    []float64
}

// equal reports whether two genes decode to the same placement.
func (g *gene) equal(o *gene) bool {
	if g.startOff != o.startOff {
		return false
	}
	for j, f := range g.fracs {
		if f != o.fracs[j] {
			return false
		}
	}
	return true
}

type individual struct {
	genes []gene
	ev    *Eval
	cost  float64
}

// makeIndividual allocates the full storage of one individual: genes
// with per-offer fraction slices and an incremental evaluator. All
// later per-generation work reuses this storage.
func makeIndividual(c *Compiled) individual {
	genes := make([]gene, len(c.offers))
	for i := range c.offers {
		genes[i].fracs = make([]float64, c.offers[i].n)
	}
	return individual{genes: genes, ev: c.NewEval()}
}

// copyFrom overwrites ind with src, reusing ind's storage.
func (ind *individual) copyFrom(src *individual) {
	ind.copyGenes(src)
	ind.ev.CopyFrom(src.ev)
	ind.cost = src.cost
}

// Schedule implements Scheduler.
func (e *Evolutionary) Schedule(ctx context.Context, p *Problem, opt Options) (Result, error) {
	c, err := Compile(p)
	if err != nil {
		return Result{}, err
	}
	cfg := e.defaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	tr := newTracker(ctx, opt)

	pop, err := cfg.seedPopulation(ctx, c, p, rng, nil)
	if err != nil {
		return tr.result(), err
	}
	cfg.evolve(c, pop, rng, tr)
	return tr.result(), ctx.Err()
}

// seedPopulation builds the initial population: the given seed
// solutions first (nil is fine), random individuals for the rest. Each
// individual's evaluator is initialized with a full recompute; on big
// instances that alone can be slow, so cancellation is honored here.
func (e *Evolutionary) seedPopulation(ctx context.Context, c *Compiled, p *Problem, rng *rand.Rand, seeds []*Solution) ([]individual, error) {
	pop := make([]individual, e.PopulationSize)
	for i := range pop {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		pop[i] = makeIndividual(c)
		if i < len(seeds) {
			src := e.encode(p, seeds[i])
			pop[i].copyGenes(&src)
		} else {
			e.randomizeGenes(c, &pop[i], rng)
		}
		pop[i].ev.Init(e.decodeCompiled(c, &pop[i]))
		pop[i].cost = pop[i].ev.Cost()
	}
	return pop, nil
}

// copyGenes copies gene values from src into ind's preallocated genes.
func (ind *individual) copyGenes(src *individual) {
	for i := range ind.genes {
		ind.genes[i].startOff = src.genes[i].startOff
		copy(ind.genes[i].fracs, src.genes[i].fracs)
	}
}

// evolve runs generations on pop until the tracker's budget is
// exhausted. It is shared by the EA and the Hybrid's evolution phase.
func (e *Evolutionary) evolve(c *Compiled, pop []individual, rng *rand.Rand, tr *tracker) {
	scratch := make([]individual, len(pop))
	for i := range scratch {
		scratch[i] = makeIndividual(c)
	}
	order := make([]int, len(pop))
	energy := make([]float64, c.maxProfile) // single-gene decode scratch

	var bestIdx int
	mkBest := func() *Solution { return pop[bestIdx].ev.Solution() }

	// The initial population counts as the first iteration (and
	// guarantees a non-nil result when the budget is too small for a
	// single bred generation); each generation is observed after
	// breeding, so no bred work is ever discarded at exhaustion.
	if !tr.exhausted() || tr.iter == 0 {
		bestIdx = bestOf(pop)
		tr.observe(pop[bestIdx].cost, mkBest)
	}
	for !tr.exhausted() {
		// Next generation: elites first, then tournament offspring.
		costOrder(pop, order, e.Elite)
		for i := 0; i < e.Elite; i++ {
			scratch[i].copyFrom(&pop[order[i]])
		}
		for k := e.Elite; k < len(pop); k++ {
			child := &scratch[k]
			a := e.tournament(pop, rng)
			child.copyFrom(&pop[a])
			if rng.Float64() < e.CrossoverRate {
				b := e.tournament(pop, rng)
				e.crossover(c, child, &pop[b], rng, energy)
			}
			e.mutate(c, child, rng, energy)
			child.cost = child.ev.Cost()
		}
		pop, scratch = scratch, pop
		bestIdx = bestOf(pop)
		tr.observe(pop[bestIdx].cost, mkBest)
	}
}

// randomizeGenes fills ind's genes with a uniform random genotype.
func (e *Evolutionary) randomizeGenes(c *Compiled, ind *individual, rng *rand.Rand) {
	for i := range c.offers {
		g := &ind.genes[i]
		g.startOff = rng.Intn(c.offers[i].width + 1)
		for j := range g.fracs {
			g.fracs[j] = rng.Float64()
		}
	}
}

// applyGene pushes gene i's current value through the individual's
// incremental evaluator: the single-offer decode goes into the shared
// scratch buffer and SetPlacement delta-updates net and cost.
func (e *Evolutionary) applyGene(c *Compiled, ind *individual, i int, energy []float64) {
	o := &c.offers[i]
	g := &ind.genes[i]
	buf := energy[:o.n]
	for j := 0; j < o.n; j++ {
		lo, hi := c.emin[o.base+j], c.emax[o.base+j]
		buf[j] = lo + g.fracs[j]*(hi-lo)
	}
	ind.ev.SetPlacement(i, o.lo+flexoffer.Time(g.startOff), buf)
}

// decode maps a genotype to a concrete solution (allocating — used off
// the hot path: encode/decode round-trips and tests).
func (e *Evolutionary) decode(p *Problem, ind *individual) *Solution {
	sol := &Solution{Placements: make([]Placement, len(p.Offers))}
	for i, f := range p.Offers {
		g := &ind.genes[i]
		energy := make([]float64, len(f.Profile))
		for j, sl := range f.Profile {
			energy[j] = sl.EnergyMin + g.fracs[j]*(sl.EnergyMax-sl.EnergyMin)
		}
		lo, _ := p.StartWindow(f)
		sol.Placements[i] = Placement{Start: lo + flexoffer.Time(g.startOff), Energy: energy}
	}
	return sol
}

// decodeCompiled is decode against the compiled tables.
func (e *Evolutionary) decodeCompiled(c *Compiled, ind *individual) *Solution {
	sol := &Solution{Placements: make([]Placement, len(c.offers))}
	for i := range c.offers {
		o := &c.offers[i]
		g := &ind.genes[i]
		energy := make([]float64, o.n)
		for j := range energy {
			lo, hi := c.emin[o.base+j], c.emax[o.base+j]
			energy[j] = lo + g.fracs[j]*(hi-lo)
		}
		sol.Placements[i] = Placement{Start: o.lo + flexoffer.Time(g.startOff), Energy: energy}
	}
	return sol
}

func (e *Evolutionary) tournament(pop []individual, rng *rand.Rand) int {
	best := rng.Intn(len(pop))
	for i := 1; i < e.TournamentSize; i++ {
		c := rng.Intn(len(pop))
		if pop[c].cost < pop[best].cost {
			best = c
		}
	}
	return best
}

// crossover mixes parent b into the child uniformly per offer gene.
// Only genes that actually differ go through the delta evaluator;
// inherited-in-common genes (frequent once the population converges)
// cost one comparison.
func (e *Evolutionary) crossover(c *Compiled, child *individual, b *individual, rng *rand.Rand, energy []float64) {
	for i := range child.genes {
		if rng.Intn(2) != 0 {
			continue
		}
		g, bg := &child.genes[i], &b.genes[i]
		if g.equal(bg) {
			continue
		}
		g.startOff = bg.startOff
		copy(g.fracs, bg.fracs)
		e.applyGene(c, child, i, energy)
	}
}

// mutate perturbs offer genes: the start jumps to a random feasible
// offset, fractions take Gaussian steps. Every mutated gene is pushed
// through the delta evaluator.
func (e *Evolutionary) mutate(c *Compiled, ind *individual, rng *rand.Rand, energy []float64) {
	for i := range c.offers {
		if rng.Float64() >= e.MutationRate {
			continue
		}
		g := &ind.genes[i]
		if w := c.offers[i].width; w > 0 && rng.Intn(2) == 0 {
			g.startOff = rng.Intn(w + 1)
		}
		j := rng.Intn(len(g.fracs))
		g.fracs[j] += rng.NormFloat64() * 0.3
		if g.fracs[j] < 0 {
			g.fracs[j] = 0
		}
		if g.fracs[j] > 1 {
			g.fracs[j] = 1
		}
		e.applyGene(c, ind, i, energy)
	}
}

func bestOf(pop []individual) int {
	best := 0
	for i := range pop {
		if pop[i].cost < pop[best].cost {
			best = i
		}
	}
	return best
}

// costOrder fills order with all population indexes and partially
// selection-sorts so that the first k entries are the k lowest-cost
// individuals in ascending order — O(k·n) instead of the full O(n²)
// pass; only the Elite prefix is ever read.
func costOrder(pop []individual, order []int, k int) {
	for i := range order {
		order[i] = i
	}
	if k > len(order) {
		k = len(order)
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(order); j++ {
			if pop[order[j]].cost < pop[order[min]].cost {
				min = j
			}
		}
		order[i], order[min] = order[min], order[i]
	}
}
