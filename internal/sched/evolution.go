package sched

import (
	"context"
	"math/rand"

	"mirabel/internal/flexoffer"
)

// Evolutionary is the paper's evolutionary algorithm [Eiben & Smith
// 2003]: a population of schedules evolves by tournament selection,
// uniform crossover and mutation, "to find progressively better
// solutions". One iteration is one generation.
type Evolutionary struct {
	// PopulationSize (default 30).
	PopulationSize int
	// Elite individuals copied unchanged into the next generation
	// (default 2).
	Elite int
	// TournamentSize of the selection (default 3).
	TournamentSize int
	// CrossoverRate is the probability a child mixes two parents instead
	// of cloning one (default 0.9).
	CrossoverRate float64
	// MutationRate is the per-offer-gene mutation probability (default
	// 0.1).
	MutationRate float64
}

// Name implements Scheduler.
func (e *Evolutionary) Name() string { return "EA" }

func (e *Evolutionary) defaults() Evolutionary {
	d := *e
	if d.PopulationSize <= 0 {
		d.PopulationSize = 30
	}
	if d.Elite <= 0 {
		d.Elite = 2
	}
	if d.Elite >= d.PopulationSize {
		d.Elite = d.PopulationSize - 1
	}
	if d.TournamentSize <= 0 {
		d.TournamentSize = 3
	}
	if d.CrossoverRate <= 0 {
		d.CrossoverRate = 0.9
	}
	if d.MutationRate <= 0 {
		d.MutationRate = 0.1
	}
	return d
}

// gene is one offer's genotype: the start offset inside the offer's
// clamped start window (Problem.StartWindow) and the energy fraction
// per slice.
type gene struct {
	startOff int
	fracs    []float64
}

type individual struct {
	genes []gene
	cost  float64
}

// Schedule implements Scheduler.
func (e *Evolutionary) Schedule(ctx context.Context, p *Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	cfg := e.defaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	tr := newTracker(ctx, opt)

	pop := make([]individual, cfg.PopulationSize)
	for i := range pop {
		// Initialization evaluates a whole population; on big instances
		// that alone can be slow, so cancellation is honored here too.
		if ctx.Err() != nil {
			return tr.result(), ctx.Err()
		}
		pop[i] = cfg.randomIndividual(p, rng)
		pop[i].cost = p.Evaluate(cfg.decode(p, &pop[i]))
	}

	scratch := make([]individual, cfg.PopulationSize)
	for !tr.exhausted() {
		best := bestOf(pop)
		tr.observe(cfg.decode(p, &pop[best]), pop[best].cost)

		// Next generation: elites first, then tournament offspring.
		next := scratch[:0]
		order := costOrder(pop)
		for i := 0; i < cfg.Elite; i++ {
			next = append(next, cloneIndividual(&pop[order[i]]))
		}
		for len(next) < cfg.PopulationSize {
			a := cfg.tournament(pop, rng)
			child := cloneIndividual(&pop[a])
			if rng.Float64() < cfg.CrossoverRate {
				b := cfg.tournament(pop, rng)
				cfg.crossover(&child, &pop[b], rng)
			}
			cfg.mutate(p, &child, rng)
			child.cost = p.Evaluate(cfg.decode(p, &child))
			next = append(next, child)
		}
		pop, scratch = next, pop
	}
	if tr.iter == 0 { // budget too small for a single generation
		best := bestOf(pop)
		tr.observe(cfg.decode(p, &pop[best]), pop[best].cost)
	}
	return tr.result(), ctx.Err()
}

func (e *Evolutionary) randomIndividual(p *Problem, rng *rand.Rand) individual {
	genes := make([]gene, len(p.Offers))
	for i, f := range p.Offers {
		lo, hi := p.StartWindow(f)
		g := gene{
			startOff: rng.Intn(int(hi-lo) + 1),
			fracs:    make([]float64, len(f.Profile)),
		}
		for j := range g.fracs {
			g.fracs[j] = rng.Float64()
		}
		genes[i] = g
	}
	return individual{genes: genes}
}

// decode maps a genotype to a concrete solution.
func (e *Evolutionary) decode(p *Problem, ind *individual) *Solution {
	sol := &Solution{Placements: make([]Placement, len(p.Offers))}
	for i, f := range p.Offers {
		g := &ind.genes[i]
		energy := make([]float64, len(f.Profile))
		for j, sl := range f.Profile {
			energy[j] = sl.EnergyMin + g.fracs[j]*(sl.EnergyMax-sl.EnergyMin)
		}
		lo, _ := p.StartWindow(f)
		sol.Placements[i] = Placement{Start: lo + flexoffer.Time(g.startOff), Energy: energy}
	}
	return sol
}

func (e *Evolutionary) tournament(pop []individual, rng *rand.Rand) int {
	best := rng.Intn(len(pop))
	for i := 1; i < e.TournamentSize; i++ {
		c := rng.Intn(len(pop))
		if pop[c].cost < pop[best].cost {
			best = c
		}
	}
	return best
}

// crossover mixes parent b into the child uniformly per offer gene.
func (e *Evolutionary) crossover(child *individual, b *individual, rng *rand.Rand) {
	for i := range child.genes {
		if rng.Intn(2) == 0 {
			child.genes[i].startOff = b.genes[i].startOff
			copy(child.genes[i].fracs, b.genes[i].fracs)
		}
	}
}

// mutate perturbs offer genes: the start jumps to a random feasible
// offset, fractions take Gaussian steps.
func (e *Evolutionary) mutate(p *Problem, ind *individual, rng *rand.Rand) {
	for i, f := range p.Offers {
		if rng.Float64() >= e.MutationRate {
			continue
		}
		g := &ind.genes[i]
		lo, hi := p.StartWindow(f)
		if w := int(hi - lo); w > 0 && rng.Intn(2) == 0 {
			g.startOff = rng.Intn(w + 1)
		}
		j := rng.Intn(len(g.fracs))
		g.fracs[j] += rng.NormFloat64() * 0.3
		if g.fracs[j] < 0 {
			g.fracs[j] = 0
		}
		if g.fracs[j] > 1 {
			g.fracs[j] = 1
		}
	}
}

func cloneIndividual(ind *individual) individual {
	out := individual{genes: make([]gene, len(ind.genes)), cost: ind.cost}
	for i, g := range ind.genes {
		out.genes[i] = gene{startOff: g.startOff, fracs: append([]float64(nil), g.fracs...)}
	}
	return out
}

func bestOf(pop []individual) int {
	best := 0
	for i := range pop {
		if pop[i].cost < pop[best].cost {
			best = i
		}
	}
	return best
}

// costOrder returns population indexes sorted by ascending cost (simple
// selection sort over the few elites needed would do; n is small).
func costOrder(pop []individual) []int {
	order := make([]int, len(pop))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		min := i
		for j := i + 1; j < len(order); j++ {
			if pop[order[j]].cost < pop[order[min]].cost {
				min = j
			}
		}
		order[i], order[min] = order[min], order[i]
	}
	return order
}
