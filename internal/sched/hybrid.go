package sched

import (
	"context"
	"math/rand"
	"time"
)

// Hybrid implements the paper's research direction of "hybridizing the
// existing [scheduling algorithms] to improve their efficiency" (§6): a
// memetic scheme that seeds the evolutionary population with randomized
// greedy constructions, so evolution starts from good building blocks
// instead of random noise.
type Hybrid struct {
	// Greedy configures the seeding constructions.
	Greedy RandomizedGreedy
	// EA configures the evolutionary phase.
	EA Evolutionary
	// SeedBudgetFrac is the share of the time budget spent on greedy
	// seeding (default 0.25).
	SeedBudgetFrac float64
}

// Name implements Scheduler.
func (h *Hybrid) Name() string { return "HYB" }

// Schedule implements Scheduler.
func (h *Hybrid) Schedule(ctx context.Context, p *Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	frac := h.SeedBudgetFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.25
	}
	total := opt.budget()
	seedOpt := opt
	seedOpt.TimeBudget = time.Duration(float64(total) * frac)
	seedOpt.TraceEvery = 0
	if opt.MaxIterations > 0 {
		seedOpt.MaxIterations = opt.MaxIterations/4 + 1
	}

	// Phase 1: greedy constructions, keeping the distinct best ones.
	cfg := h.EA.defaults()
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed))
	seeds := make([]*Solution, 0, cfg.PopulationSize/2)
	tr := newTracker(ctx, opt)
	greedyDeadline := time.Now().Add(seedOpt.TimeBudget)
	order := make([]int, len(p.Offers))
	for i := range order {
		order[i] = i
	}
	for ctx.Err() == nil && time.Now().Before(greedyDeadline) && len(seeds) < cap(seeds) {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sol, cost := h.Greedy.construct(p, order)
		tr.observe(sol, cost)
		seeds = append(seeds, cloneSolution(sol))
	}

	// Phase 2: evolution seeded with the greedy solutions.
	pop := make([]individual, cfg.PopulationSize)
	for i := range pop {
		if ctx.Err() != nil {
			return tr.result(), ctx.Err()
		}
		if i < len(seeds) {
			pop[i] = cfg.encode(p, seeds[i])
		} else {
			pop[i] = cfg.randomIndividual(p, rng)
		}
		pop[i].cost = p.Evaluate(cfg.decode(p, &pop[i]))
	}
	scratch := make([]individual, cfg.PopulationSize)
	for !tr.exhausted() {
		best := bestOf(pop)
		tr.observe(cfg.decode(p, &pop[best]), pop[best].cost)

		next := scratch[:0]
		ord := costOrder(pop)
		for i := 0; i < cfg.Elite; i++ {
			next = append(next, cloneIndividual(&pop[ord[i]]))
		}
		for len(next) < cfg.PopulationSize {
			a := cfg.tournament(pop, rng)
			child := cloneIndividual(&pop[a])
			if rng.Float64() < cfg.CrossoverRate {
				b := cfg.tournament(pop, rng)
				cfg.crossover(&child, &pop[b], rng)
			}
			cfg.mutate(p, &child, rng)
			child.cost = p.Evaluate(cfg.decode(p, &child))
			next = append(next, child)
		}
		pop, scratch = next, pop
	}
	return tr.result(), ctx.Err()
}

// encode converts a concrete solution into an EA genotype — the inverse
// of decode.
func (e *Evolutionary) encode(p *Problem, sol *Solution) individual {
	genes := make([]gene, len(p.Offers))
	for i, f := range p.Offers {
		pl := &sol.Placements[i]
		lo, _ := p.StartWindow(f)
		g := gene{
			startOff: int(pl.Start - lo),
			fracs:    make([]float64, len(f.Profile)),
		}
		for j, sl := range f.Profile {
			if flex := sl.EnergyMax - sl.EnergyMin; flex > 0 {
				g.fracs[j] = (pl.Energy[j] - sl.EnergyMin) / flex
			}
		}
		genes[i] = g
	}
	return individual{genes: genes}
}
