package sched

import (
	"context"
	"math/rand"
	"time"
)

// Hybrid implements the paper's research direction of "hybridizing the
// existing [scheduling algorithms] to improve their efficiency" (§6): a
// memetic scheme that seeds the evolutionary population with randomized
// greedy constructions, so evolution starts from good building blocks
// instead of random noise.
type Hybrid struct {
	// Greedy configures the seeding constructions.
	Greedy RandomizedGreedy
	// EA configures the evolutionary phase.
	EA Evolutionary
	// SeedBudgetFrac is the share of the time budget spent on greedy
	// seeding (default 0.25).
	SeedBudgetFrac float64
}

// Name implements Scheduler.
func (h *Hybrid) Name() string { return "HYB" }

// Schedule implements Scheduler.
func (h *Hybrid) Schedule(ctx context.Context, p *Problem, opt Options) (Result, error) {
	c, err := Compile(p)
	if err != nil {
		return Result{}, err
	}
	frac := h.SeedBudgetFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.25
	}
	total := opt.budget()
	seedBudget := time.Duration(float64(total) * frac)
	// Iteration-bounded runs give the same share of their budget to
	// seeding: the cap below binds alongside the wall-clock deadline,
	// so a huge TimeBudget cannot make seeding overspend the run's
	// iteration budget.
	seedIterCap := 0
	if opt.MaxIterations > 0 {
		seedIterCap = opt.MaxIterations/4 + 1
	}

	// Phase 1: greedy constructions, keeping the distinct best ones.
	cfg := h.EA.defaults()
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed))
	seeds := make([]*Solution, 0, cfg.PopulationSize/2)
	tr := newTracker(ctx, opt)
	greedyDeadline := time.Now().Add(seedBudget)
	run := newGreedyRun(c, h.Greedy.Fill)
	order := make([]int, len(c.offers))
	for i := range order {
		order[i] = i
	}
	mk := func() *Solution { return cloneSolution(&run.sol) }
	for ctx.Err() == nil && time.Now().Before(greedyDeadline) && len(seeds) < cap(seeds) &&
		(seedIterCap == 0 || tr.iter < seedIterCap) {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		tr.observe(run.construct(order), mk)
		seeds = append(seeds, cloneSolution(&run.sol))
	}

	// Phase 2: evolution seeded with the greedy solutions.
	pop, err := cfg.seedPopulation(ctx, c, p, rng, seeds)
	if err != nil {
		return tr.result(), err
	}
	cfg.evolve(c, pop, rng, tr)
	return tr.result(), ctx.Err()
}

// encode converts a concrete solution into an EA genotype — the inverse
// of decode.
func (e *Evolutionary) encode(p *Problem, sol *Solution) individual {
	genes := make([]gene, len(p.Offers))
	for i, f := range p.Offers {
		pl := &sol.Placements[i]
		lo, _ := p.StartWindow(f)
		g := gene{
			startOff: int(pl.Start - lo),
			fracs:    make([]float64, len(f.Profile)),
		}
		for j, sl := range f.Profile {
			if flex := sl.EnergyMax - sl.EnergyMin; flex > 0 {
				g.fracs[j] = (pl.Energy[j] - sl.EnergyMin) / flex
			}
		}
		genes[i] = g
	}
	return individual{genes: genes}
}
