package sched

import (
	"context"
	"fmt"
)

// Exhaustive enumerates every start-time combination with fixed energies
// and returns the true optimum over that (finite) space. It reproduces
// the paper's optimality probe: "in a preliminary experiment with 10
// flex-offers without energy constraints it took almost three hours to
// explore all (almost 850 million) sensible solutions". Energy amounts
// are fixed per slice (midpoints), because with energy flexibility "an
// infinite number of possible solutions may exist" and no finite
// enumeration is possible.
type Exhaustive struct {
	// Limit aborts instances with more start combinations than this
	// (default 1e7 — minutes, not the paper's three hours).
	Limit float64
}

// Name implements Scheduler.
func (x *Exhaustive) Name() string { return "Exhaustive" }

// Schedule implements Scheduler. Options are ignored except for tracing:
// the enumeration runs to completion unless ctx is canceled (a partial
// enumeration is not the optimum, so cancellation returns ctx.Err()).
func (x *Exhaustive) Schedule(ctx context.Context, p *Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	limit := x.Limit
	if limit <= 0 {
		limit = 1e7
	}
	if c := p.CountSolutions(); c > limit {
		return Result{}, fmt.Errorf("sched: %g start combinations exceed the exhaustive limit %g", c, limit)
	}
	comp, err := Compile(p) // compiled quote table for the leaf costs
	if err != nil {
		return Result{}, err
	}

	// Fixed midpoint energies per offer.
	energies := make([][]float64, len(p.Offers))
	for i, f := range p.Offers {
		e := make([]float64, len(f.Profile))
		for j, sl := range f.Profile {
			e[j] = (sl.EnergyMin + sl.EnergyMax) / 2
		}
		energies[i] = e
	}

	tr := newTracker(nil, Options{TimeBudget: 1 << 40, TraceEvery: opt.TraceEvery}) // no deadline: exact enumeration
	net := append([]float64(nil), p.Baseline...)
	sol := &Solution{Placements: make([]Placement, len(p.Offers))}
	mk := func() *Solution { return cloneSolution(sol) }

	// Activation costs are placement-independent with fixed energies.
	var actCost float64
	for i, f := range p.Offers {
		actCost += offerCost(f, energies[i])
		sol.Placements[i] = Placement{Energy: energies[i]}
	}

	canceled := false
	var recurse func(i int)
	recurse = func(i int) {
		if i == len(p.Offers) {
			var cost float64
			for t, n := range net {
				cost += comp.slotCost(t, n)
			}
			tr.observe(cost+actCost, mk)
			// ctx.Err is a synchronized load; amortize it over leaves.
			if tr.iter&1023 == 0 && ctx.Err() != nil {
				canceled = true
			}
			return
		}
		f := p.Offers[i]
		lo, hi := p.StartWindow(f)
		for start := lo; start <= hi && !canceled; start++ {
			base := int(start - p.Start)
			for j, e := range energies[i] {
				net[base+j] += e
			}
			sol.Placements[i].Start = start
			recurse(i + 1)
			for j, e := range energies[i] {
				net[base+j] -= e
			}
		}
	}
	recurse(0)
	return tr.result(), ctx.Err()
}

// OptimalityGap runs the exhaustive enumerator and a heuristic on the
// same instance and reports (heuristicCost − optimalCost). A zero or
// tiny gap certifies the heuristic on instances small enough to verify
// (the heuristic may also beat the enumerator's fixed midpoint energies,
// yielding a negative gap).
func OptimalityGap(ctx context.Context, p *Problem, s Scheduler, opt Options) (gap, optimal, heuristic float64, err error) {
	x := &Exhaustive{}
	optRes, err := x.Schedule(ctx, p, Options{})
	if err != nil {
		return 0, 0, 0, err
	}
	hRes, err := s.Schedule(ctx, p, opt)
	if err != nil {
		return 0, 0, 0, err
	}
	return hRes.Cost - optRes.Cost, optRes.Cost, hRes.Cost, nil
}
