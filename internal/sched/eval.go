package sched

import (
	"math"

	"mirabel/internal/flexoffer"
)

// This file implements the compiled evaluation pipeline: the scheduler
// hot path. Every candidate schedule a strategy considers used to pay a
// full Problem.Evaluate — a fresh net slice, a freshly allocated decoded
// Solution and a Market.Quote recomputation for every slot. Compile
// folds everything that is constant across candidates (market quotes,
// imbalance prices, clamped start windows, profile energy bounds) into
// flat arrays once per search, and Eval keeps a per-candidate net
// position so that changing one offer's placement costs
// O(changed × profile) instead of O(slots + offers × profile).

// Compiled is an immutable evaluation context for one Problem: per-slot
// quote tables (buy/sell/capacity folded with the imbalance price, so
// pricing a slot is a branch-light array lookup instead of a
// Market.Quote call), the clamped start window of every offer
// (Problem.StartWindow precomputed) and the flattened profile min/max
// energies. A Compiled is safe for concurrent use; all mutable search
// state lives in Eval.
type Compiled struct {
	start    flexoffer.Time
	slots    int
	baseline []float64

	// Per-slot pricing tables, index-aligned with the horizon.
	imb       []float64
	hasMarket bool
	buy       []float64
	sell      []float64
	cap       []float64

	offers []compiledOffer
	// emin/emax hold every offer's profile bounds back to back;
	// compiledOffer.base is the offset of an offer's slice range.
	emin []float64
	emax []float64
	// maxProfile is the longest profile length — the scratch size a
	// caller needs to decode any single offer's energies.
	maxProfile int
}

// compiledOffer is the placement-relevant shape of one offer.
type compiledOffer struct {
	lo         flexoffer.Time // clamped window start (StartWindow lo)
	width      int            // hi − lo: feasible start offsets are [0, width]
	base       int            // offset into the flattened emin/emax arrays
	n          int            // profile length
	costPerKWh float64
}

// Compile validates p and builds its immutable evaluation context.
func Compile(p *Problem) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{
		start:    p.Start,
		slots:    p.Slots,
		baseline: p.Baseline,
		imb:      p.ImbalancePrice,
	}
	if p.Market != nil {
		c.hasMarket = true
		c.buy = make([]float64, p.Slots)
		c.sell = make([]float64, p.Slots)
		c.cap = make([]float64, p.Slots)
		for t := 0; t < p.Slots; t++ {
			q := p.Market.Quote(p.Start + flexoffer.Time(t))
			c.buy[t], c.sell[t], c.cap[t] = q.BuyEUR, q.SellEUR, q.CapacityKWh
		}
	}
	c.offers = make([]compiledOffer, len(p.Offers))
	var flat int
	for _, f := range p.Offers {
		flat += len(f.Profile)
	}
	c.emin = make([]float64, 0, flat)
	c.emax = make([]float64, 0, flat)
	for i, f := range p.Offers {
		lo, hi := p.StartWindow(f)
		c.offers[i] = compiledOffer{
			lo:         lo,
			width:      int(hi - lo),
			base:       len(c.emin),
			n:          len(f.Profile),
			costPerKWh: f.CostPerKWh,
		}
		if len(f.Profile) > c.maxProfile {
			c.maxProfile = len(f.Profile)
		}
		for _, sl := range f.Profile {
			c.emin = append(c.emin, sl.EnergyMin)
			c.emax = append(c.emax, sl.EnergyMax)
		}
	}
	return c, nil
}

// slotCost prices one slot's net position from the compiled tables —
// the same policy as Problem.slotCost (optimal market usage first, then
// the imbalance penalty on the residue) without the Quote call.
func (c *Compiled) slotCost(t int, n float64) float64 {
	imb := c.imb[t]
	if !c.hasMarket {
		return imb * math.Abs(n)
	}
	if n > 0 { // deficit: buy
		if c.buy[t] >= imb {
			return imb * n
		}
		b := n
		if b > c.cap[t] {
			b = c.cap[t]
		}
		return b*c.buy[t] + (n-b)*imb
	}
	surplus := -n
	if c.sell[t] <= -imb { // dumping costs more than the penalty
		return imb * surplus
	}
	s := surplus
	if s > c.cap[t] {
		s = c.cap[t]
	}
	return -s*c.sell[t] + (surplus-s)*imb
}

// NewEval returns a fresh incremental evaluator bound to c. The state
// is undefined until Init seeds it with a concrete solution.
func (c *Compiled) NewEval() *Eval {
	return &Eval{
		c:      c,
		net:    make([]float64, c.slots),
		starts: make([]flexoffer.Time, len(c.offers)),
		energy: make([]float64, len(c.emin)),
	}
}

// autoResyncOps bounds floating-point drift: after this many delta
// updates the evaluator silently recomputes its sums from scratch. The
// amortized cost is negligible (one full pass per 4096 deltas) and
// keeps the incremental cost within test tolerance of a full Evaluate
// indefinitely.
const autoResyncOps = 4096

// Eval is the incremental evaluation state of one candidate schedule:
// the per-slot net position, the cached slot-cost and activation-cost
// sums, and the current placement of every offer. SetPlacement updates
// all of it in O(profile) for the changed offer; Cost is O(1). An Eval
// is not safe for concurrent use; searches running in parallel each
// need their own (CopyFrom duplicates state cheaply).
type Eval struct {
	c       *Compiled
	net     []float64 // baseline + all current placements
	slotSum float64   // Σ_t slotCost(t, net[t])
	actSum  float64   // Σ_i activation cost of placement i

	starts []flexoffer.Time
	energy []float64 // current placement energies, flattened like c.emin
	ops    int       // delta updates since the last full recompute
}

// Init seeds the evaluator with sol: every placement is copied in and
// the sums are computed from scratch. sol must be index-aligned with
// the compiled problem's offers and respect their profile lengths.
func (e *Eval) Init(sol *Solution) {
	for i := range e.c.offers {
		o := &e.c.offers[i]
		pl := &sol.Placements[i]
		e.starts[i] = pl.Start
		copy(e.energy[o.base:o.base+o.n], pl.Energy)
	}
	e.recompute()
}

// CopyFrom duplicates src's state into e (both must come from the same
// Compiled). This is the EA's clone path: O(slots + Σ profile) copies,
// zero allocations.
func (e *Eval) CopyFrom(src *Eval) {
	copy(e.net, src.net)
	copy(e.starts, src.starts)
	copy(e.energy, src.energy)
	e.slotSum, e.actSum, e.ops = src.slotSum, src.actSum, src.ops
}

// recompute rebuilds net and both cost sums from the stored placements.
func (e *Eval) recompute() {
	c := e.c
	copy(e.net, c.baseline)
	e.actSum = 0
	for i := range c.offers {
		o := &c.offers[i]
		base := int(e.starts[i] - c.start)
		var act float64
		for j := 0; j < o.n; j++ {
			v := e.energy[o.base+j]
			e.net[base+j] += v
			act += math.Abs(v)
		}
		e.actSum += act * o.costPerKWh
	}
	e.slotSum = 0
	for t, n := range e.net {
		e.slotSum += e.c.slotCost(t, n)
	}
	e.ops = 0
}

// Resync forces a full recompute from the stored placements, squashing
// any accumulated floating-point drift. SetPlacement triggers it
// automatically every autoResyncOps updates.
func (e *Eval) Resync() { e.recompute() }

// SetPlacement moves offer i to a new start and energy vector,
// updating the net position and cost sums incrementally: the old
// placement's slot contributions are subtracted and the new ones
// added — O(profile) work for slot costs that are array lookups, no
// allocation. energy must have the offer's profile length; it is
// copied, the caller keeps ownership.
func (e *Eval) SetPlacement(i int, start flexoffer.Time, energy []float64) {
	c := e.c
	o := &c.offers[i]

	// Remove the old placement.
	base := int(e.starts[i] - c.start)
	var act float64
	for j := 0; j < o.n; j++ {
		t := base + j
		v := e.energy[o.base+j]
		e.slotSum -= c.slotCost(t, e.net[t])
		e.net[t] -= v
		e.slotSum += c.slotCost(t, e.net[t])
		act += math.Abs(v)
	}
	e.actSum -= act * o.costPerKWh

	// Add the new one.
	e.starts[i] = start
	copy(e.energy[o.base:o.base+o.n], energy)
	base = int(start - c.start)
	act = 0
	for j := 0; j < o.n; j++ {
		t := base + j
		v := e.energy[o.base+j]
		e.slotSum -= c.slotCost(t, e.net[t])
		e.net[t] += v
		e.slotSum += c.slotCost(t, e.net[t])
		act += math.Abs(v)
	}
	e.actSum += act * o.costPerKWh

	e.ops++
	if e.ops >= autoResyncOps {
		e.recompute()
	}
}

// Cost returns the total schedule cost of the current placements —
// identical (within floating-point drift, bounded by the automatic
// resync) to Problem.Evaluate of Solution().
func (e *Eval) Cost() float64 { return e.slotSum + e.actSum }

// Start returns offer i's current placement start.
func (e *Eval) Start(i int) flexoffer.Time { return e.starts[i] }

// Solution materializes the current placements as a freshly allocated
// Solution, safe to retain after further SetPlacement calls.
func (e *Eval) Solution() *Solution {
	sol := &Solution{Placements: make([]Placement, len(e.c.offers))}
	for i := range e.c.offers {
		o := &e.c.offers[i]
		sol.Placements[i] = Placement{
			Start:  e.starts[i],
			Energy: append([]float64(nil), e.energy[o.base:o.base+o.n]...),
		}
	}
	return sol
}
