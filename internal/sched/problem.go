// Package sched implements the MIRABEL scheduling component (paper §6):
// given forecast supply and demand, a pool of (aggregated) flex-offers
// and a market, it fixes the start times and energy amounts of all
// flex-offers and the market trades so that the total cost of the
// schedule is minimized. The cost is the sum of (1) the cost of the
// remaining mismatches — weighted by peak-period prices, (2) the
// activation costs of the flex-offers and (3) the cost of energy bought
// from (minus revenue of energy sold to) the market.
//
// Two stochastic metaheuristics solve the problem, as in the paper: a
// randomized greedy search and an evolutionary algorithm; an exhaustive
// enumerator provides the true optimum for tiny instances (the paper's
// optimality probe).
package sched

import (
	"fmt"
	"math"

	"mirabel/internal/flexoffer"
	"mirabel/internal/market"
)

// Problem is one scheduling instance over a slot horizon
// [Start, Start+Slots).
type Problem struct {
	// Start is the first slot of the planning horizon.
	Start flexoffer.Time
	// Slots is the horizon length.
	Slots int
	// Baseline is the forecast non-flexible net position per slot (kWh):
	// non-flexible consumption minus RES production. Positive values are
	// energy deficits, negative values surpluses.
	Baseline []float64
	// ImbalancePrice is the per-slot penalty (EUR/kWh) for remaining
	// mismatches; peak slots cost more (paper: "mismatches at peak
	// periods cost the BRP more than at other periods").
	ImbalancePrice []float64
	// Offers are the (typically aggregated) flex-offers to place.
	Offers []*flexoffer.FlexOffer
	// Market is the trading counterpart; nil disables trading.
	Market *market.DayAhead
}

// Validate checks the instance is well-formed and every offer fits the
// horizon.
func (p *Problem) Validate() error {
	if p.Slots <= 0 {
		return fmt.Errorf("sched: non-positive horizon %d", p.Slots)
	}
	if len(p.Baseline) != p.Slots {
		return fmt.Errorf("sched: baseline has %d slots, horizon %d", len(p.Baseline), p.Slots)
	}
	if len(p.ImbalancePrice) != p.Slots {
		return fmt.Errorf("sched: imbalance prices have %d slots, horizon %d", len(p.ImbalancePrice), p.Slots)
	}
	end := p.Start + flexoffer.Time(p.Slots)
	for _, f := range p.Offers {
		if err := f.Validate(); err != nil {
			return err
		}
		// An offer whose EarliestStart lies before the horizon is still
		// schedulable as long as its clamped window (StartWindow) is
		// non-empty: the strategies never place a start before p.Start.
		if f.LatestStart < p.Start || f.LatestEnd() > end {
			return fmt.Errorf("sched: offer %d [%d, %d) outside horizon [%d, %d)",
				f.ID, f.EarliestStart, f.LatestEnd(), p.Start, end)
		}
	}
	return nil
}

// StartWindow returns the start range the planner may use for f:
// [max(f.EarliestStart, p.Start), f.LatestStart]. The lower clamp keeps
// placements out of the past — an offer whose EarliestStart has already
// passed (EarliestStart < Start ≤ LatestStart) is still schedulable in
// the remainder of its window instead of being dropped.
func (p *Problem) StartWindow(f *flexoffer.FlexOffer) (lo, hi flexoffer.Time) {
	lo = f.EarliestStart
	if lo < p.Start {
		lo = p.Start
	}
	return lo, f.LatestStart
}

// Solution fixes one placement per offer, index-aligned with
// Problem.Offers.
type Solution struct {
	Placements []Placement
}

// Placement is the scheduled instantiation of one offer.
type Placement struct {
	Start  flexoffer.Time
	Energy []float64
}

// Schedules converts a solution into flex-offer schedules.
func (p *Problem) Schedules(sol *Solution) []*flexoffer.Schedule {
	out := make([]*flexoffer.Schedule, len(p.Offers))
	for i, f := range p.Offers {
		out[i] = &flexoffer.Schedule{
			OfferID: f.ID,
			Start:   sol.Placements[i].Start,
			Energy:  append([]float64(nil), sol.Placements[i].Energy...),
		}
	}
	return out
}

// ValidateSolution checks every placement against its offer's
// constraints.
func (p *Problem) ValidateSolution(sol *Solution) error {
	if len(sol.Placements) != len(p.Offers) {
		return fmt.Errorf("sched: %d placements for %d offers", len(sol.Placements), len(p.Offers))
	}
	for i, f := range p.Offers {
		s := &flexoffer.Schedule{OfferID: f.ID, Start: sol.Placements[i].Start, Energy: sol.Placements[i].Energy}
		if err := f.ValidateSchedule(s); err != nil {
			return err
		}
	}
	return nil
}

// net computes the per-slot net position of a solution: baseline plus all
// scheduled flex energy.
func (p *Problem) net(sol *Solution) []float64 {
	net := append([]float64(nil), p.Baseline...)
	for i := range p.Offers {
		pl := &sol.Placements[i]
		base := int(pl.Start - p.Start)
		for j, e := range pl.Energy {
			net[base+j] += e
		}
	}
	return net
}

// slotCost prices one slot's net position n: optimal market usage first
// (buy to cover deficits when cheaper than the imbalance penalty, sell
// surpluses when revenue beats the penalty), then the imbalance penalty
// on the residue.
func (p *Problem) slotCost(t int, n float64) float64 {
	imb := p.ImbalancePrice[t]
	if p.Market == nil {
		return imb * math.Abs(n)
	}
	q := p.Market.Quote(p.Start + flexoffer.Time(t))
	if n > 0 { // deficit: buy
		if q.BuyEUR >= imb {
			return imb * n
		}
		b := math.Min(n, q.CapacityKWh)
		return b*q.BuyEUR + (n-b)*imb
	}
	surplus := -n
	if q.SellEUR <= -imb { // dumping costs more than the penalty
		return imb * surplus
	}
	s := math.Min(surplus, q.CapacityKWh)
	return -s*q.SellEUR + (surplus-s)*imb
}

// offerCost is the activation cost of a placement: the energy-weighted
// price the BRP pays the prosumers behind the offer.
func offerCost(f *flexoffer.FlexOffer, energy []float64) float64 {
	var e float64
	for _, v := range energy {
		e += math.Abs(v)
	}
	return e * f.CostPerKWh
}

// Evaluate returns the total schedule cost (EUR): mismatch costs plus
// flex-offer costs plus market costs. Lower is better; revenue from
// selling surplus RES can make the total negative.
func (p *Problem) Evaluate(sol *Solution) float64 {
	net := p.net(sol)
	var cost float64
	for t, n := range net {
		cost += p.slotCost(t, n)
	}
	for i, f := range p.Offers {
		cost += offerCost(f, sol.Placements[i].Energy)
	}
	return cost
}

// BaselineCost is the cost with no flex-offer scheduled at its default
// placement — the reference the negotiation component shares realized
// profits against. Every offer executes its fallback default schedule
// (earliest start — clamped into the horizon — and maximum energy).
func (p *Problem) BaselineCost() float64 {
	sol := &Solution{Placements: make([]Placement, len(p.Offers))}
	for i, f := range p.Offers {
		d := f.DefaultSchedule()
		if lo, _ := p.StartWindow(f); d.Start < lo {
			d.Start = lo
		}
		sol.Placements[i] = Placement{Start: d.Start, Energy: d.Energy}
	}
	return p.Evaluate(sol)
}

// CountSolutions returns the number of start-time combinations of the
// instance (the paper's measure of the search space: "almost 850 million
// sensible solutions" for 10 flex-offers); energy flexibility adds an
// infinite continuum on top. Each offer contributes its clamped start
// window (StartWindow) — the range the strategies actually explore —
// not its raw TimeFlexibility, which overcounts when EarliestStart lies
// before the planning horizon.
func (p *Problem) CountSolutions() float64 {
	count := 1.0
	for _, f := range p.Offers {
		lo, hi := p.StartWindow(f)
		count *= float64(hi-lo) + 1
	}
	return count
}
