package sched

import (
	"fmt"
	"math"
	"math/rand"

	"mirabel/internal/flexoffer"
	"mirabel/internal/market"
)

// ScenarioConfig describes an intra-day scheduling scenario like the
// paper's Figure 6 experiments ("four different intra-day scheduling
// scenarios with 10, 100, 1000 and 10000 aggregated flex-offers").
type ScenarioConfig struct {
	// Offers is the number of aggregated flex-offers.
	Offers int
	// Slots is the horizon (default one day, 96 slots).
	Slots int
	// Seed drives the generator.
	Seed int64
	// MeanEnergyKWh is the mean max energy per offer slice (default 50 —
	// macro flex-offers bundle many households).
	MeanEnergyKWh float64
	// RESFraction scales the renewable surplus the flexible demand
	// should soak up (default 0.6 of total flexible energy).
	RESFraction float64
	// MaxTFSlots caps the offers' time flexibility (default 24 slots =
	// 6 h). The §6 research direction — "the complexity of the search
	// space heavily depends also on the start time flexibilities" — is
	// explored by sweeping this knob (BenchmarkAblationTimeFlexibility).
	MaxTFSlots int
	// Market optionally attaches a market.
	Market *market.DayAhead
}

// BuildScenario generates a self-contained scheduling problem: a
// baseline with RES surplus humps and deficit ridges, peak-weighted
// imbalance prices and a population of aggregated flex-offers whose
// placement matters.
func BuildScenario(cfg ScenarioConfig) (*Problem, error) {
	if cfg.Offers <= 0 {
		return nil, fmt.Errorf("sched: scenario needs offers, got %d", cfg.Offers)
	}
	if cfg.Slots <= 0 {
		cfg.Slots = flexoffer.SlotsPerDay
	}
	if cfg.MeanEnergyKWh == 0 {
		cfg.MeanEnergyKWh = 50
	}
	if cfg.RESFraction == 0 {
		cfg.RESFraction = 0.6
	}
	if cfg.MaxTFSlots == 0 {
		cfg.MaxTFSlots = 24
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	offers := make([]*flexoffer.FlexOffer, cfg.Offers)
	var totalFlexEnergy float64
	for i := range offers {
		slices := 2 + rng.Intn(6)
		maxStart := cfg.Slots - slices
		es := rng.Intn(maxStart + 1)
		tf := rng.Intn(maxStart - es + 1)
		if tf > cfg.MaxTFSlots {
			tf = cfg.MaxTFSlots
		}
		profile := make([]flexoffer.Slice, slices)
		for j := range profile {
			e := cfg.MeanEnergyKWh * (0.5 + rng.Float64())
			profile[j] = flexoffer.Slice{EnergyMin: 0.3 * e, EnergyMax: e}
			totalFlexEnergy += e
		}
		offers[i] = &flexoffer.FlexOffer{
			ID:            flexoffer.ID(i + 1),
			EarliestStart: flexoffer.Time(es),
			LatestStart:   flexoffer.Time(es + tf),
			Profile:       profile,
			CostPerKWh:    0.005 + 0.01*rng.Float64(),
		}
	}

	// Baseline: the RES forecast exceeds non-flexible demand in a few
	// windows (negative baseline = surplus to soak up) and falls short
	// elsewhere.
	baseline := make([]float64, cfg.Slots)
	surplusPerSlot := cfg.RESFraction * totalFlexEnergy / float64(cfg.Slots)
	for t := range baseline {
		phase := float64(t) / float64(cfg.Slots)
		// Two RES humps (night wind, midday sun) against a demand ridge.
		res := 1.8 * surplusPerSlot * (gaussShape(phase, 0.15, 0.08) + gaussShape(phase, 0.55, 0.10))
		dem := 1.2 * surplusPerSlot * gaussShape(phase, 0.75, 0.07)
		baseline[t] = dem - res + surplusPerSlot*0.2*rng.NormFloat64()
	}

	// Peak-weighted imbalance prices: evening slots are expensive.
	prices := make([]float64, cfg.Slots)
	for t := range prices {
		phase := float64(t) / float64(cfg.Slots)
		prices[t] = 0.10 + 0.15*gaussShape(phase, 0.75, 0.10)
	}

	p := &Problem{
		Start:          0,
		Slots:          cfg.Slots,
		Baseline:       baseline,
		ImbalancePrice: prices,
		Offers:         offers,
		Market:         cfg.Market,
	}
	return p, p.Validate()
}

func gaussShape(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	if d < 0 {
		d = -d
	}
	if d > 4 {
		return 0
	}
	return math.Exp(-0.5 * d * d)
}
