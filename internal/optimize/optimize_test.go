package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

// sphere has its minimum 0 at the given center.
func sphere(center []float64) Objective {
	return func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - center[i]
			s += d * d
		}
		return s
	}
}

// rastrigin is a classic multimodal test function, minimum 0 at origin.
func rastrigin(x []float64) float64 {
	s := 10 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

func bounds2(lo, hi float64) Bounds {
	return Bounds{Lo: []float64{lo, lo}, Hi: []float64{hi, hi}}
}

func TestBoundsClamp(t *testing.T) {
	b := bounds2(0, 1)
	x := b.Clamp([]float64{-1, 2})
	if x[0] != 0 || x[1] != 1 {
		t.Errorf("Clamp = %v", x)
	}
}

func TestUnitBounds(t *testing.T) {
	b := UnitBounds(3)
	if b.Dim() != 3 || b.Hi[2] != 1 || b.Lo[0] != 0 {
		t.Errorf("UnitBounds = %+v", b)
	}
}

func TestNelderMeadConvergesOnSphere(t *testing.T) {
	nm := &NelderMead{}
	res := nm.Minimize(sphere([]float64{0.3, 0.7}), bounds2(0, 1), Options{MaxEvaluations: 2000, Seed: 1})
	if res.Value > 1e-8 {
		t.Errorf("NelderMead value = %g, want ~0", res.Value)
	}
	if math.Abs(res.X[0]-0.3) > 1e-3 || math.Abs(res.X[1]-0.7) > 1e-3 {
		t.Errorf("NelderMead X = %v", res.X)
	}
}

func TestNelderMeadRespectsOptimumOnBoundary(t *testing.T) {
	// Optimum outside the box: solution must sit on the boundary.
	nm := &NelderMead{}
	res := nm.Minimize(sphere([]float64{2, 2}), bounds2(0, 1), Options{MaxEvaluations: 3000})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("boundary X = %v, want [1 1]", res.X)
	}
}

func TestRandomSearchImproves(t *testing.T) {
	rs := RandomSearch{}
	res := rs.Minimize(sphere([]float64{0.5, 0.5}), bounds2(0, 1), Options{MaxEvaluations: 3000, Seed: 2})
	if res.Value > 0.05 {
		t.Errorf("RandomSearch value = %g, want small", res.Value)
	}
	if res.Evaluations != 3000 {
		t.Errorf("Evaluations = %d, want full budget", res.Evaluations)
	}
}

func TestSimulatedAnnealingOnRastrigin(t *testing.T) {
	sa := &SimulatedAnnealing{}
	res := sa.Minimize(rastrigin, bounds2(-5.12, 5.12), Options{MaxEvaluations: 20000, Seed: 3})
	if res.Value > 2.5 {
		t.Errorf("SA rastrigin value = %g, want < 2.5", res.Value)
	}
}

func TestRandomRestartNelderMeadBeatsSingleRunOnRastrigin(t *testing.T) {
	// A single NM descent from the box center gets stuck in a local
	// optimum of Rastrigin shifted off-center; restarts must do better
	// or equal.
	b := Bounds{Lo: []float64{-5.12, -5.12}, Hi: []float64{5.12, 5.12}}
	shifted := func(x []float64) float64 {
		return rastrigin([]float64{x[0] - 2.1, x[1] - 1.3})
	}
	nm := &NelderMead{Start: []float64{-4, -4}}
	single := nm.Minimize(shifted, b, Options{MaxEvaluations: 4000, Seed: 4})
	rr := &RandomRestartNelderMead{Local: NelderMead{Start: []float64{-4, -4}}}
	multi := rr.Minimize(shifted, b, Options{MaxEvaluations: 4000, Seed: 4})
	if multi.Value > single.Value+1e-9 {
		t.Errorf("RRNM %g worse than single NM %g", multi.Value, single.Value)
	}
	if multi.Value > 1.5 {
		t.Errorf("RRNM value = %g, want near 0", multi.Value)
	}
}

func TestTraceIsMonotoneNonIncreasing(t *testing.T) {
	for _, est := range []Estimator{
		&NelderMead{},
		RandomSearch{},
		&SimulatedAnnealing{},
		&RandomRestartNelderMead{},
	} {
		res := est.Minimize(rastrigin, bounds2(-5.12, 5.12), Options{MaxEvaluations: 2000, Seed: 5, TraceEvery: 50})
		if len(res.Trace) == 0 {
			t.Errorf("%s: empty trace", est.Name())
			continue
		}
		prev := math.Inf(1)
		for i, tp := range res.Trace {
			if tp.Best > prev+1e-12 {
				t.Errorf("%s: trace[%d] best %g > previous %g", est.Name(), i, tp.Best, prev)
			}
			prev = tp.Best
		}
		last := res.Trace[len(res.Trace)-1]
		if last.Best != res.Value {
			t.Errorf("%s: final trace %g != result %g", est.Name(), last.Best, res.Value)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	for _, est := range []Estimator{
		&NelderMead{},
		RandomSearch{},
		&SimulatedAnnealing{},
		&RandomRestartNelderMead{},
	} {
		res := est.Minimize(rastrigin, bounds2(-5, 5), Options{MaxEvaluations: 500})
		// NM may overshoot by at most one shrink loop (dim evaluations).
		if res.Evaluations > 505 {
			t.Errorf("%s: used %d evaluations for budget 500", est.Name(), res.Evaluations)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	sa := &SimulatedAnnealing{}
	a := sa.Minimize(rastrigin, bounds2(-5, 5), Options{MaxEvaluations: 1000, Seed: 11})
	b := sa.Minimize(rastrigin, bounds2(-5, 5), Options{MaxEvaluations: 1000, Seed: 11})
	if a.Value != b.Value {
		t.Errorf("same seed, different results: %g vs %g", a.Value, b.Value)
	}
}

// Property: results always lie inside the bounds, for every estimator.
func TestPropertyResultInsideBounds(t *testing.T) {
	ests := []Estimator{&NelderMead{}, RandomSearch{}, &SimulatedAnnealing{}, &RandomRestartNelderMead{}}
	f := func(seed int64, c0, c1 float64) bool {
		c0 = math.Mod(math.Abs(c0), 3) - 1.5 // center possibly outside box
		c1 = math.Mod(math.Abs(c1), 3) - 1.5
		if math.IsNaN(c0) || math.IsNaN(c1) {
			return true
		}
		b := bounds2(0, 1)
		for _, est := range ests {
			res := est.Minimize(sphere([]float64{c0, c1}), b, Options{MaxEvaluations: 300, Seed: seed})
			for i, x := range res.X {
				if x < b.Lo[i]-1e-12 || x > b.Hi[i]+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
