package optimize

import (
	"math/rand"
	"sort"
)

// NelderMead is the downhill simplex method of Nelder & Mead (1965), the
// local estimator of the MIRABEL forecasting component. Points proposed
// outside the bounds are clamped onto the box.
type NelderMead struct {
	// Start is the initial point; if nil, the box center is used.
	Start []float64
	// InitialStep is the simplex edge length relative to the box extent
	// (default 0.1).
	InitialStep float64
	// Tolerance terminates a run when the simplex value spread falls
	// below it (default 1e-9).
	Tolerance float64
}

// Name implements Estimator.
func (nm *NelderMead) Name() string { return "NelderMead" }

// Standard Nelder-Mead coefficients.
const (
	nmReflect  = 1.0
	nmExpand   = 2.0
	nmContract = 0.5
	nmShrink   = 0.5
)

// Minimize implements Estimator.
func (nm *NelderMead) Minimize(obj Objective, b Bounds, opt Options) Result {
	bud := newBudget(obj, b.Dim(), opt)
	start := nm.Start
	if start == nil {
		start = boxCenter(b)
	}
	nm.run(bud, b, start)
	return bud.result()
}

// run executes one simplex descent from start until convergence or budget
// exhaustion. It is shared with RandomRestartNelderMead.
func (nm *NelderMead) run(bud *budget, b Bounds, start []float64) {
	dim := b.Dim()
	step := nm.InitialStep
	if step <= 0 {
		step = 0.1
	}
	tol := nm.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}

	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, dim+1)
	base := b.Clamp(append([]float64(nil), start...))
	simplex[0] = vertex{x: base, v: bud.eval(base)}
	for i := 0; i < dim; i++ {
		x := append([]float64(nil), base...)
		x[i] += step * (b.Hi[i] - b.Lo[i])
		b.Clamp(x)
		if x[i] == base[i] { // clamped back onto the start: step the other way
			x[i] -= step * (b.Hi[i] - b.Lo[i])
			b.Clamp(x)
		}
		simplex[i+1] = vertex{x: x, v: bud.eval(x)}
		if bud.exhausted() {
			return
		}
	}

	centroid := make([]float64, dim)
	for !bud.exhausted() {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		if simplex[dim].v-simplex[0].v < tol {
			return
		}
		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < dim; i++ {
			for j, xv := range simplex[i].x {
				centroid[j] += xv
			}
		}
		for j := range centroid {
			centroid[j] /= float64(dim)
		}
		worst := simplex[dim]

		reflected := affine(centroid, worst.x, -nmReflect)
		b.Clamp(reflected)
		rv := bud.eval(reflected)
		switch {
		case rv < simplex[0].v:
			// Try to expand further along the same direction.
			expanded := affine(centroid, worst.x, -nmExpand)
			b.Clamp(expanded)
			ev := bud.eval(expanded)
			if ev < rv {
				simplex[dim] = vertex{expanded, ev}
			} else {
				simplex[dim] = vertex{reflected, rv}
			}
		case rv < simplex[dim-1].v:
			simplex[dim] = vertex{reflected, rv}
		default:
			// Contract toward the centroid.
			contracted := affine(centroid, worst.x, nmContract)
			b.Clamp(contracted)
			cv := bud.eval(contracted)
			if cv < worst.v {
				simplex[dim] = vertex{contracted, cv}
			} else {
				// Shrink the whole simplex toward the best vertex.
				for i := 1; i <= dim; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + nmShrink*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].v = bud.eval(simplex[i].x)
					if bud.exhausted() {
						return
					}
				}
			}
		}
	}
}

// affine returns c + t·(x − c): t = −1 reflects x through c, t = 0.5
// contracts halfway.
func affine(c, x []float64, t float64) []float64 {
	out := make([]float64, len(c))
	for j := range out {
		out[j] = c[j] + t*(x[j]-c[j])
	}
	return out
}

func boxCenter(b Bounds) []float64 {
	c := make([]float64, b.Dim())
	for i := range c {
		c[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return c
}

// RandomRestartNelderMead repeatedly runs Nelder-Mead descents from random
// start points until the budget is exhausted. This is the estimator the
// paper selects as its main global search strategy ("Random Restart
// Nelder Mead ... slightly beats both other algorithms").
type RandomRestartNelderMead struct {
	// RestartEvaluations is the per-descent evaluation allowance
	// (default 150·dim).
	RestartEvaluations int
	// Local configures the inner descents.
	Local NelderMead
}

// Name implements Estimator.
func (r *RandomRestartNelderMead) Name() string { return "RandomRestartNelderMead" }

// Minimize implements Estimator.
func (r *RandomRestartNelderMead) Minimize(obj Objective, b Bounds, opt Options) Result {
	bud := newBudget(obj, b.Dim(), opt)
	rng := rand.New(rand.NewSource(opt.Seed))
	perRun := r.RestartEvaluations
	if perRun <= 0 {
		perRun = 150 * b.Dim()
	}
	first := true
	for !bud.exhausted() {
		// Cap the inner run without disturbing the global deadline.
		innerMax := bud.evals + perRun
		if innerMax > bud.maxEval {
			innerMax = bud.maxEval
		}
		saved := bud.maxEval
		bud.maxEval = innerMax

		var start []float64
		if first && r.Local.Start != nil {
			start = r.Local.Start
		} else if first {
			start = boxCenter(b)
		} else {
			start = b.Random(rng)
		}
		first = false
		r.Local.run(bud, b, start)
		bud.maxEval = saved
	}
	return bud.result()
}
