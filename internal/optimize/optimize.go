// Package optimize implements the parameter estimators that the MIRABEL
// forecasting component uses to fit forecast models: the local
// Nelder-Mead downhill simplex [Nelder & Mead 1965] and the global
// strategies compared in the paper's Figure 4a — Random-Restart
// Nelder-Mead, Simulated Annealing [Bertsimas & Tsitsiklis 1993] and
// Random Search.
//
// All estimators minimize a black-box objective over a box-constrained
// domain and record a convergence trace (best objective value over
// evaluations and wall time) so the accuracy-vs-efficiency experiment can
// be regenerated.
package optimize

import (
	"math"
	"math/rand"
	"time"
)

// Objective is a function to minimize. Implementations must be safe to
// call repeatedly with different arguments; the estimators never call it
// concurrently.
type Objective func(x []float64) float64

// Bounds is a box constraint: Lo[i] ≤ x[i] ≤ Hi[i].
type Bounds struct {
	Lo, Hi []float64
}

// Dim returns the dimensionality of the box.
func (b Bounds) Dim() int { return len(b.Lo) }

// Clamp projects x into the box in place and returns it.
func (b Bounds) Clamp(x []float64) []float64 {
	for i := range x {
		if x[i] < b.Lo[i] {
			x[i] = b.Lo[i]
		}
		if x[i] > b.Hi[i] {
			x[i] = b.Hi[i]
		}
	}
	return x
}

// Random returns a uniformly random point inside the box.
func (b Bounds) Random(rng *rand.Rand) []float64 {
	x := make([]float64, b.Dim())
	for i := range x {
		x[i] = b.Lo[i] + rng.Float64()*(b.Hi[i]-b.Lo[i])
	}
	return x
}

// UnitBounds returns [0,1]^dim, the natural domain of exponential
// smoothing constants.
func UnitBounds(dim int) Bounds {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for i := range hi {
		hi[i] = 1
	}
	return Bounds{Lo: lo, Hi: hi}
}

// TracePoint is one entry of a convergence trace.
type TracePoint struct {
	Evaluations int           // objective evaluations so far
	Elapsed     time.Duration // wall time since the estimator started
	Best        float64       // best objective value found so far
}

// Result is the outcome of one estimator run.
type Result struct {
	X           []float64    // best point found
	Value       float64      // objective at X
	Evaluations int          // total objective evaluations
	Trace       []TracePoint // convergence trace (if Options.TraceEvery > 0)
}

// Options control an estimator run. The run stops when either budget is
// exhausted (whichever comes first); a zero budget means "unlimited".
type Options struct {
	MaxEvaluations int           // evaluation budget (0 = default 2000·dim)
	TimeBudget     time.Duration // wall-clock budget (0 = none)
	Seed           int64         // PRNG seed for reproducibility
	TraceEvery     int           // record a trace point every N evaluations (0 = off)
}

func (o Options) maxEvals(dim int) int {
	if o.MaxEvaluations > 0 {
		return o.MaxEvaluations
	}
	return 2000 * dim
}

// Estimator is a minimization strategy.
type Estimator interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Minimize searches for the minimum of obj inside b.
	Minimize(obj Objective, b Bounds, opt Options) Result
}

// budget tracks evaluations, time and the incumbent, and builds the trace.
type budget struct {
	obj      Objective
	start    time.Time
	deadline time.Time
	maxEval  int
	every    int

	evals int
	bestX []float64
	bestV float64
	trace []TracePoint
}

func newBudget(obj Objective, dim int, opt Options) *budget {
	b := &budget{
		obj:     obj,
		start:   time.Now(),
		maxEval: opt.maxEvals(dim),
		every:   opt.TraceEvery,
		bestV:   math.Inf(1),
	}
	if opt.TimeBudget > 0 {
		b.deadline = b.start.Add(opt.TimeBudget)
	}
	return b
}

// exhausted reports whether either budget ran out.
func (b *budget) exhausted() bool {
	if b.evals >= b.maxEval {
		return true
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return true
	}
	return false
}

// eval evaluates the objective, tracking the incumbent and trace.
func (b *budget) eval(x []float64) float64 {
	v := b.obj(x)
	b.evals++
	if v < b.bestV || b.bestX == nil {
		b.bestV = v
		b.bestX = append([]float64(nil), x...)
	}
	if b.every > 0 && b.evals%b.every == 0 {
		b.trace = append(b.trace, TracePoint{
			Evaluations: b.evals,
			Elapsed:     time.Since(b.start),
			Best:        b.bestV,
		})
	}
	return v
}

func (b *budget) result() Result {
	// Always close the trace with the final incumbent.
	if b.every > 0 {
		b.trace = append(b.trace, TracePoint{
			Evaluations: b.evals,
			Elapsed:     time.Since(b.start),
			Best:        b.bestV,
		})
	}
	return Result{X: b.bestX, Value: b.bestV, Evaluations: b.evals, Trace: b.trace}
}
