package optimize

import (
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// ParallelRestartNelderMead runs several Nelder-Mead descents
// concurrently from random start points, sharing one evaluation budget.
// It implements the paper's research direction of "intra-model
// parallelizing, i.e., parallel parameter estimation of one model" (§5).
//
// The objective must be safe for concurrent calls (the HWT fitting
// objective is: each evaluation replays its own model clone).
type ParallelRestartNelderMead struct {
	// Workers is the number of concurrent descents (default GOMAXPROCS).
	Workers int
	// RestartEvaluations is the per-descent allowance (default 150·dim).
	RestartEvaluations int
	// Local configures the inner descents.
	Local NelderMead
}

// Name implements Estimator.
func (p *ParallelRestartNelderMead) Name() string { return "ParallelRestartNelderMead" }

// sharedBudget coordinates evaluations, the incumbent and the trace
// across workers.
type sharedBudget struct {
	mu       sync.Mutex
	start    time.Time
	deadline time.Time
	maxEval  int
	every    int

	evals int
	bestX []float64
	bestV float64
	trace []TracePoint
}

func (s *sharedBudget) exhausted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exhaustedLocked()
}

func (s *sharedBudget) exhaustedLocked() bool {
	if s.evals >= s.maxEval {
		return true
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return true
	}
	return false
}

// observe records one evaluation outcome; it returns false when the
// budget ran out (the worker should stop).
func (s *sharedBudget) observe(x []float64, v float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evals++
	if v < s.bestV || s.bestX == nil {
		s.bestV = v
		s.bestX = append(s.bestX[:0], x...)
	}
	if s.every > 0 && s.evals%s.every == 0 {
		s.trace = append(s.trace, TracePoint{Evaluations: s.evals, Elapsed: time.Since(s.start), Best: s.bestV})
	}
	return !s.exhaustedLocked()
}

// Minimize implements Estimator.
func (p *ParallelRestartNelderMead) Minimize(obj Objective, b Bounds, opt Options) Result {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perRun := p.RestartEvaluations
	if perRun <= 0 {
		perRun = 150 * b.Dim()
	}
	shared := &sharedBudget{
		start:   time.Now(),
		maxEval: opt.maxEvals(b.Dim()),
		every:   opt.TraceEvery,
		bestV:   1e308,
	}
	if opt.TimeBudget > 0 {
		shared.deadline = shared.start.Add(opt.TimeBudget)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919))
			first := w == 0
			for !shared.exhausted() {
				// Each descent runs through a local budget that reports
				// every evaluation into the shared one and aborts as
				// soon as the shared budget runs dry.
				local := p.Local
				bud := &budget{
					start:   shared.start,
					maxEval: perRun,
					bestV:   1e308,
				}
				bud.obj = func(x []float64) float64 {
					v := obj(x)
					if !shared.observe(x, v) {
						bud.maxEval = 0 // stop this descent promptly
					}
					return v
				}
				var start []float64
				if first && p.Local.Start != nil {
					start = p.Local.Start
				} else if first {
					start = boxCenter(b)
				} else {
					start = b.Random(rng)
				}
				first = false
				local.run(bud, b, start)
			}
		}(w)
	}
	wg.Wait()

	shared.mu.Lock()
	defer shared.mu.Unlock()
	if shared.every > 0 {
		shared.trace = append(shared.trace, TracePoint{Evaluations: shared.evals, Elapsed: time.Since(shared.start), Best: shared.bestV})
	}
	return Result{X: shared.bestX, Value: shared.bestV, Evaluations: shared.evals, Trace: shared.trace}
}
