package optimize

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestParallelRestartConvergesOnRastrigin(t *testing.T) {
	p := &ParallelRestartNelderMead{Workers: 4}
	res := p.Minimize(rastrigin, bounds2(-5.12, 5.12), Options{MaxEvaluations: 8000, Seed: 1})
	if res.Value > 1.5 {
		t.Errorf("parallel RRNM value = %g, want near 0", res.Value)
	}
	for i, x := range res.X {
		if x < -5.12 || x > 5.12 {
			t.Errorf("X[%d] = %g outside bounds", i, x)
		}
	}
}

func TestParallelRestartBudgetShared(t *testing.T) {
	var calls atomic.Int64
	obj := func(x []float64) float64 {
		calls.Add(1)
		return sphere([]float64{0.5, 0.5})(x)
	}
	p := &ParallelRestartNelderMead{Workers: 8}
	res := p.Minimize(obj, bounds2(0, 1), Options{MaxEvaluations: 1000, Seed: 2})
	// Workers may overshoot by at most one in-flight evaluation each.
	if got := calls.Load(); got > 1000+16 {
		t.Errorf("objective called %d times for budget 1000", got)
	}
	if res.Evaluations > 1000+16 {
		t.Errorf("reported %d evaluations", res.Evaluations)
	}
}

func TestParallelRestartConcurrentObjectiveSafe(t *testing.T) {
	// The objective builds per-call state; run with many workers to let
	// the race detector verify the estimator's own bookkeeping.
	obj := func(x []float64) float64 {
		local := make([]float64, len(x))
		copy(local, x)
		var s float64
		for _, v := range local {
			s += (v - 0.3) * (v - 0.3)
		}
		return s
	}
	p := &ParallelRestartNelderMead{Workers: 8}
	res := p.Minimize(obj, bounds2(0, 1), Options{MaxEvaluations: 4000, Seed: 3, TraceEvery: 100})
	if res.Value > 1e-4 {
		t.Errorf("value = %g", res.Value)
	}
	if len(res.Trace) == 0 {
		t.Error("no trace recorded")
	}
	prev := math.Inf(1)
	for _, tp := range res.Trace {
		if tp.Best > prev+1e-12 {
			t.Error("trace not monotone")
		}
		prev = tp.Best
	}
}

func TestParallelMatchesSequentialQuality(t *testing.T) {
	// With the same total budget, the parallel estimator must find a
	// solution at least in the same ballpark as the sequential one.
	seq := &RandomRestartNelderMead{}
	par := &ParallelRestartNelderMead{Workers: 4}
	opt := Options{MaxEvaluations: 6000, Seed: 4}
	rs := seq.Minimize(rastrigin, bounds2(-5.12, 5.12), opt)
	rp := par.Minimize(rastrigin, bounds2(-5.12, 5.12), opt)
	if rp.Value > rs.Value+2.0 {
		t.Errorf("parallel %g much worse than sequential %g", rp.Value, rs.Value)
	}
}
