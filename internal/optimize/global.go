package optimize

import (
	"math"
	"math/rand"
)

// RandomSearch samples uniformly random points in the box and keeps the
// incumbent — the simplest global baseline in the paper's Figure 4a.
type RandomSearch struct{}

// Name implements Estimator.
func (RandomSearch) Name() string { return "RandomSearch" }

// Minimize implements Estimator.
func (RandomSearch) Minimize(obj Objective, b Bounds, opt Options) Result {
	bud := newBudget(obj, b.Dim(), opt)
	rng := rand.New(rand.NewSource(opt.Seed))
	for !bud.exhausted() {
		bud.eval(b.Random(rng))
	}
	return bud.result()
}

// SimulatedAnnealing is a classic Metropolis annealer with a geometric
// cooling schedule and Gaussian proposal moves scaled to the box extent
// [Bertsimas & Tsitsiklis 1993].
type SimulatedAnnealing struct {
	// InitialTemperature of the Metropolis criterion (default: estimated
	// from a short random probe of the objective).
	InitialTemperature float64
	// Cooling is the geometric decay factor per step (default 0.995).
	Cooling float64
	// StepScale is the proposal standard deviation relative to the box
	// extent (default 0.15, shrinking with temperature).
	StepScale float64
}

// Name implements Estimator.
func (sa *SimulatedAnnealing) Name() string { return "SimulatedAnnealing" }

// Minimize implements Estimator.
func (sa *SimulatedAnnealing) Minimize(obj Objective, b Bounds, opt Options) Result {
	bud := newBudget(obj, b.Dim(), opt)
	rng := rand.New(rand.NewSource(opt.Seed))
	dim := b.Dim()

	cooling := sa.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}
	stepScale := sa.StepScale
	if stepScale <= 0 {
		stepScale = 0.15
	}

	cur := b.Random(rng)
	curV := bud.eval(cur)

	temp := sa.InitialTemperature
	if temp <= 0 {
		// Probe the objective spread to pick a starting temperature that
		// accepts most moves initially.
		var spread float64
		probes := 5
		for i := 0; i < probes && !bud.exhausted(); i++ {
			v := bud.eval(b.Random(rng))
			spread += math.Abs(v - curV)
		}
		temp = spread/float64(probes) + 1e-9
	}

	next := make([]float64, dim)
	for !bud.exhausted() {
		// Proposal: Gaussian step, scale tied to the current temperature
		// so moves become local as the system cools.
		frac := stepScale * (0.1 + 0.9*math.Min(1, temp/(sa.InitialTemperature+1e-12)))
		if sa.InitialTemperature <= 0 {
			frac = stepScale
		}
		for i := range next {
			ext := b.Hi[i] - b.Lo[i]
			next[i] = cur[i] + rng.NormFloat64()*frac*ext
		}
		b.Clamp(next)
		nv := bud.eval(next)
		if nv <= curV || rng.Float64() < math.Exp(-(nv-curV)/math.Max(temp, 1e-12)) {
			copy(cur, next)
			curV = nv
		}
		temp *= cooling
	}
	return bud.result()
}
