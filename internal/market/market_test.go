package market

import (
	"math"
	"testing"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/timeseries"
	"mirabel/internal/workload"
)

func hourly(prices ...float64) *timeseries.Series {
	return timeseries.New(workload.DefaultOrigin, time.Hour, prices)
}

func TestNewDayAheadValidation(t *testing.T) {
	if _, err := NewDayAhead(Config{}); err == nil {
		t.Error("missing prices accepted")
	}
	bad := timeseries.New(workload.DefaultOrigin, time.Minute, []float64{1})
	if _, err := NewDayAhead(Config{Prices: bad}); err == nil {
		t.Error("non-hourly prices accepted")
	}
	if _, err := NewDayAhead(Config{Prices: hourly(50), SpreadFrac: 1.5}); err == nil {
		t.Error("spread ≥ 1 accepted")
	}
}

func TestQuoteSpreadAroundMid(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(100), SpreadFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	q := m.Quote(0)
	if math.Abs(q.BuyEUR-0.105) > 1e-12 || math.Abs(q.SellEUR-0.095) > 1e-12 {
		t.Errorf("quote = %+v", q)
	}
	if q.BuyEUR <= q.SellEUR {
		t.Error("buy price not above sell price")
	}
}

func TestQuoteHourMapping(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(10, 20, 30)})
	if err != nil {
		t.Fatal(err)
	}
	// Slot 4..7 is hour 1.
	q0 := m.Quote(0)
	q1 := m.Quote(flexoffer.SlotsPerHour)
	q2 := m.Quote(2*flexoffer.SlotsPerHour + 3)
	if !(q0.BuyEUR < q1.BuyEUR && q1.BuyEUR < q2.BuyEUR) {
		t.Errorf("hour mapping wrong: %v %v %v", q0.BuyEUR, q1.BuyEUR, q2.BuyEUR)
	}
}

func TestQuotePersistenceBeyondHorizon(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(10, 20)})
	if err != nil {
		t.Fatal(err)
	}
	far := m.Quote(1000 * flexoffer.SlotsPerHour)
	last := m.Quote(1 * flexoffer.SlotsPerHour)
	if far != last {
		t.Error("far future quote does not persist the last hour")
	}
	neg := m.Quote(-5)
	first := m.Quote(0)
	if neg != first {
		t.Error("negative slot does not clamp to the first hour")
	}
}

func TestGateClosureAndTradingPeriods(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(50), GateClosureLead: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NextGateClosure(100); got != 96 {
		t.Errorf("NextGateClosure = %d, want 96", got)
	}
	if got := m.NextTradingPeriod(0); got != 4 {
		t.Errorf("NextTradingPeriod(0) = %d, want 4", got)
	}
	if got := m.NextTradingPeriod(5); got != 8 {
		t.Errorf("NextTradingPeriod(5) = %d, want 8", got)
	}
}

func TestDefaultCapacity(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(50)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Quote(0).CapacityKWh <= 0 {
		t.Error("default capacity not positive")
	}
}

func TestQuoteNegativePriceKeepsSpreadOrder(t *testing.T) {
	// Regression: with a negative mid (renewable surplus), the half-
	// spread must come from |mid| or the book inverts into free
	// arbitrage (buy below sell).
	m, err := NewDayAhead(Config{Prices: hourly(-40), SpreadFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	q := m.Quote(0)
	if q.BuyEUR <= q.SellEUR {
		t.Fatalf("inverted book at negative mid: %+v", q)
	}
	if math.Abs(q.BuyEUR-(-0.038)) > 1e-12 || math.Abs(q.SellEUR-(-0.042)) > 1e-12 {
		t.Errorf("quote = %+v, want buy −0.038 / sell −0.042", q)
	}
}

func TestGateClosureClampsAtEpoch(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(50), GateClosureLead: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ delivery, want flexoffer.Time }{
		{0, 0}, {3, 0}, {4, 0}, {5, 1},
	} {
		if got := m.NextGateClosure(tc.delivery); got != tc.want {
			t.Errorf("NextGateClosure(%d) = %d, want %d", tc.delivery, got, tc.want)
		}
	}
}

func TestTradeDepletesLiquidity(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(100), SpreadFrac: 0.1, CapacityKWh: 50})
	if err != nil {
		t.Fatal(err)
	}
	if m.Quote(0).CapacityKWh != 50 {
		t.Fatalf("initial capacity = %g", m.Quote(0).CapacityKWh)
	}
	res, err := m.Trade(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithinKWh != 30 || res.ExcessKWh != 0 {
		t.Errorf("trade = %+v", res)
	}
	if math.Abs(res.CostEUR-30*0.105) > 1e-12 {
		t.Errorf("cost = %g, want %g", res.CostEUR, 30*0.105)
	}
	if got := m.Quote(0).CapacityKWh; got != 20 {
		t.Errorf("capacity after trade = %g, want 20", got)
	}
	// Other slots keep their liquidity.
	if got := m.Quote(flexoffer.SlotsPerHour).CapacityKWh; got != 50 {
		t.Errorf("untouched slot capacity = %g, want 50", got)
	}
	// Selling depletes the same book.
	if _, err := m.Trade(0, -20); err != nil {
		t.Fatal(err)
	}
	if got := m.Quote(0).CapacityKWh; got != 0 {
		t.Errorf("capacity after sell = %g, want 0", got)
	}
}

func TestTradeMarginalImpactBeyondCapacity(t *testing.T) {
	m, err := NewDayAhead(Config{
		Prices: hourly(100), SpreadFrac: 0.1, CapacityKWh: 10, ImpactEURPerKWh: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Buy 30 into 10 of capacity: 10 at the quote, 20 on the ramp at
	// quote + impact·20/2.
	res, err := m.Trade(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithinKWh != 10 || res.ExcessKWh != 20 {
		t.Fatalf("trade = %+v", res)
	}
	want := 10*0.105 + 20*(0.105+0.001*20/2)
	if math.Abs(res.CostEUR-want) > 1e-12 {
		t.Errorf("cost = %g, want %g", res.CostEUR, want)
	}
	if res.AvgPriceEUR <= 0.105 {
		t.Errorf("avg price %g did not move against the buyer", res.AvgPriceEUR)
	}
	// Selling beyond capacity earns less than the quote.
	m2, _ := NewDayAhead(Config{Prices: hourly(100), SpreadFrac: 0.1, CapacityKWh: 10, ImpactEURPerKWh: 0.001})
	sres, err := m2.Trade(0, -30)
	if err != nil {
		t.Fatal(err)
	}
	if sres.CostEUR >= 0 {
		t.Errorf("sell cost = %g, want negative (revenue)", sres.CostEUR)
	}
	if -sres.CostEUR >= 30*0.095 {
		t.Errorf("sell revenue %g did not move against the seller", -sres.CostEUR)
	}
	if _, err := m2.Trade(0, math.NaN()); err == nil {
		t.Error("NaN volume accepted")
	}
}

func TestImbalancePriceDerivedFromCurve(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(100, -40), ImbalanceMult: 1.5, ImbalanceMinEUR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ImbalancePrice(0); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("imbalance(0) = %g, want 0.15", got)
	}
	// Negative hour: priced off |mid| (1.5·0.04 = 0.06 > floor).
	if got := m.ImbalancePrice(flexoffer.SlotsPerHour); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("imbalance(hour 1) = %g, want 0.06", got)
	}
	series := m.ImbalanceSeries(8)
	if len(series) != 8 || series[0] != m.ImbalancePrice(0) || series[7] != m.ImbalancePrice(7) {
		t.Errorf("imbalance series = %v", series)
	}
	for _, p := range series {
		if p < 0.05 {
			t.Errorf("imbalance price %g below floor", p)
		}
	}
}

func TestScenarioRegimes(t *testing.T) {
	for _, regime := range Regimes() {
		s, err := Scenario(ScenarioConfig{Regime: regime, Days: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != 72 || s.Resolution() != time.Hour {
			t.Fatalf("%s: len %d res %v", regime, s.Len(), s.Resolution())
		}
		if _, err := NewDayAhead(Config{Prices: s}); err != nil {
			t.Errorf("%s: unusable as market input: %v", regime, err)
		}
	}
	if _, err := Scenario(ScenarioConfig{Regime: "laminar"}); err == nil {
		t.Error("unknown regime accepted")
	}

	// Determinism: same seed, same curve.
	a, _ := Scenario(ScenarioConfig{Regime: RegimeSpike, Seed: 42})
	b, _ := Scenario(ScenarioConfig{Regime: RegimeSpike, Seed: 42})
	for i, v := range a.Values() {
		if b.Values()[i] != v {
			t.Fatal("same seed produced different curves")
		}
	}

	// Shape checks. Evening peak: hour 19 well above the base.
	peak, _ := Scenario(ScenarioConfig{Regime: RegimeEveningPeak, Seed: 1})
	if peak.Values()[19] < 80 {
		t.Errorf("evening peak hour 19 = %g, want ≫ base", peak.Values()[19])
	}
	// Negative-renewable: some midday hour goes negative.
	neg, _ := Scenario(ScenarioConfig{Regime: RegimeNegativeRenewable, Days: 2, Seed: 1})
	anyNegative := false
	for _, v := range neg.Values() {
		if v < 0 {
			anyNegative = true
			break
		}
	}
	if !anyNegative {
		t.Error("negative-renewable regime produced no negative prices")
	}
	// Spike: max well above calm's max.
	spike, _ := Scenario(ScenarioConfig{Regime: RegimeSpike, Days: 5, Seed: 3})
	maxSpike := 0.0
	for _, v := range spike.Values() {
		maxSpike = math.Max(maxSpike, v)
	}
	if maxSpike < 100 {
		t.Errorf("spike regime max = %g, want scarcity spikes over 100", maxSpike)
	}
}
