package market

import (
	"math"
	"testing"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/timeseries"
	"mirabel/internal/workload"
)

func hourly(prices ...float64) *timeseries.Series {
	return timeseries.New(workload.DefaultOrigin, time.Hour, prices)
}

func TestNewDayAheadValidation(t *testing.T) {
	if _, err := NewDayAhead(Config{}); err == nil {
		t.Error("missing prices accepted")
	}
	bad := timeseries.New(workload.DefaultOrigin, time.Minute, []float64{1})
	if _, err := NewDayAhead(Config{Prices: bad}); err == nil {
		t.Error("non-hourly prices accepted")
	}
	if _, err := NewDayAhead(Config{Prices: hourly(50), SpreadFrac: 1.5}); err == nil {
		t.Error("spread ≥ 1 accepted")
	}
}

func TestQuoteSpreadAroundMid(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(100), SpreadFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	q := m.Quote(0)
	if math.Abs(q.BuyEUR-0.105) > 1e-12 || math.Abs(q.SellEUR-0.095) > 1e-12 {
		t.Errorf("quote = %+v", q)
	}
	if q.BuyEUR <= q.SellEUR {
		t.Error("buy price not above sell price")
	}
}

func TestQuoteHourMapping(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(10, 20, 30)})
	if err != nil {
		t.Fatal(err)
	}
	// Slot 4..7 is hour 1.
	q0 := m.Quote(0)
	q1 := m.Quote(flexoffer.SlotsPerHour)
	q2 := m.Quote(2*flexoffer.SlotsPerHour + 3)
	if !(q0.BuyEUR < q1.BuyEUR && q1.BuyEUR < q2.BuyEUR) {
		t.Errorf("hour mapping wrong: %v %v %v", q0.BuyEUR, q1.BuyEUR, q2.BuyEUR)
	}
}

func TestQuotePersistenceBeyondHorizon(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(10, 20)})
	if err != nil {
		t.Fatal(err)
	}
	far := m.Quote(1000 * flexoffer.SlotsPerHour)
	last := m.Quote(1 * flexoffer.SlotsPerHour)
	if far != last {
		t.Error("far future quote does not persist the last hour")
	}
	neg := m.Quote(-5)
	first := m.Quote(0)
	if neg != first {
		t.Error("negative slot does not clamp to the first hour")
	}
}

func TestGateClosureAndTradingPeriods(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(50), GateClosureLead: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NextGateClosure(100); got != 96 {
		t.Errorf("NextGateClosure = %d, want 96", got)
	}
	if got := m.NextTradingPeriod(0); got != 4 {
		t.Errorf("NextTradingPeriod(0) = %d, want 4", got)
	}
	if got := m.NextTradingPeriod(5); got != 8 {
		t.Errorf("NextTradingPeriod(5) = %d, want 8", got)
	}
}

func TestDefaultCapacity(t *testing.T) {
	m, err := NewDayAhead(Config{Prices: hourly(50)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Quote(0).CapacityKWh <= 0 {
		t.Error("default capacity not positive")
	}
}
