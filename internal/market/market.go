// Package market simulates the energy market a BRP trades on: a
// day-ahead market with hourly trading periods, peak/off-peak prices, a
// bid/ask spread and bounded per-period liquidity. The scheduling
// component uses it to price "energy sold to (and bought from) the
// market" (paper §6), and the negotiation component uses its trading
// periods to marginalize excess assignment flexibility (paper §7).
package market

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/timeseries"
)

// Quote is the market's view of one time slot.
type Quote struct {
	// BuyEUR is the price the BRP pays per kWh bought.
	BuyEUR float64
	// SellEUR is the price the BRP receives per kWh sold.
	SellEUR float64
	// CapacityKWh bounds the energy tradable in the slot in each
	// direction (liquidity).
	CapacityKWh float64
}

// DayAhead is a day-ahead market simulation over hourly trading periods.
type DayAhead struct {
	prices      []float64 // EUR/MWh per hour, hour 0 = slot 0 of the epoch
	spreadFrac  float64   // (buy − sell) / |mid|
	capacityKWh float64   // per-slot liquidity
	gateLead    flexoffer.Time
	impactEUR   float64 // marginal price impact beyond capacity (EUR/kWh per kWh)
	imbMult     float64 // imbalance price multiplier over |mid|
	imbMinEUR   float64 // imbalance price floor (EUR/kWh)

	// Liquidity depletion. Quote sits on the scheduler's evaluation hot
	// path, so the zero-trade common case must stay lock-free: traded
	// counts Trade calls and gates the slow path that consults used.
	traded  atomic.Uint64
	tradeMu sync.Mutex
	used    map[flexoffer.Time]float64 // kWh consumed per slot
}

// Config parameterizes a day-ahead market.
type Config struct {
	// Prices is the hourly price series in EUR/MWh (e.g.
	// workload.PriceSeries). Slot 0 of the flex-offer time axis must
	// coincide with the series origin.
	Prices *timeseries.Series
	// SpreadFrac is the relative bid/ask spread around the mid price
	// (default 0.05).
	SpreadFrac float64
	// CapacityKWh is the per-slot liquidity bound (default 1e6, i.e.
	// effectively unbounded for household-scale scenarios).
	CapacityKWh float64
	// GateClosureLead is how long before delivery a trading period
	// closes (default 4 slots = 1 hour).
	GateClosureLead flexoffer.Time
	// ImpactEURPerKWh is the marginal price impact once a trade exceeds
	// the slot's remaining capacity: each excess kWh moves the price by
	// this much against the trader (default 0, i.e. hard capacity with
	// no slippage pricing).
	ImpactEURPerKWh float64
	// ImbalanceMult scales the imbalance price over the absolute mid
	// price (default 1.5); ImbalanceMinEUR floors it (default 0.05
	// EUR/kWh) so imbalances stay costly even in negative-price hours.
	ImbalanceMult   float64
	ImbalanceMinEUR float64
}

// NewDayAhead builds a day-ahead market from an hourly price series.
func NewDayAhead(cfg Config) (*DayAhead, error) {
	if cfg.Prices == nil || cfg.Prices.Len() == 0 {
		return nil, fmt.Errorf("market: price series required")
	}
	if cfg.Prices.Resolution() != time.Hour {
		return nil, fmt.Errorf("market: prices must be hourly, got %v", cfg.Prices.Resolution())
	}
	if cfg.SpreadFrac < 0 || cfg.SpreadFrac >= 1 {
		return nil, fmt.Errorf("market: spread fraction %g outside [0,1)", cfg.SpreadFrac)
	}
	if cfg.SpreadFrac == 0 {
		cfg.SpreadFrac = 0.05
	}
	if cfg.CapacityKWh == 0 {
		cfg.CapacityKWh = 1e6
	}
	if cfg.GateClosureLead == 0 {
		cfg.GateClosureLead = flexoffer.SlotsPerHour
	}
	if cfg.ImpactEURPerKWh < 0 {
		return nil, fmt.Errorf("market: negative price impact %g", cfg.ImpactEURPerKWh)
	}
	if cfg.ImbalanceMult == 0 {
		cfg.ImbalanceMult = 1.5
	}
	if cfg.ImbalanceMinEUR == 0 {
		cfg.ImbalanceMinEUR = 0.05
	}
	return &DayAhead{
		prices:      cfg.Prices.Values(),
		spreadFrac:  cfg.SpreadFrac,
		capacityKWh: cfg.CapacityKWh,
		gateLead:    cfg.GateClosureLead,
		impactEUR:   cfg.ImpactEURPerKWh,
		imbMult:     cfg.ImbalanceMult,
		imbMinEUR:   cfg.ImbalanceMinEUR,
		used:        make(map[flexoffer.Time]float64),
	}, nil
}

// Quote returns buy/sell prices (EUR/kWh) and liquidity for a slot.
// Slots beyond the price horizon reuse the last known hour (price
// persistence).
func (m *DayAhead) Quote(slot flexoffer.Time) Quote {
	midPerKWh := m.mid(slot)
	// The half-spread is a cost on both sides of the book, so it hangs
	// off the mid's magnitude: with a negative mid (renewable surplus
	// hours) the BRP still buys above and sells below mid — otherwise
	// the book would invert and quote free arbitrage.
	half := math.Abs(midPerKWh) * m.spreadFrac / 2
	capacity := m.capacityKWh
	if m.traded.Load() > 0 {
		m.tradeMu.Lock()
		capacity -= m.used[slot]
		m.tradeMu.Unlock()
		if capacity < 0 {
			capacity = 0
		}
	}
	return Quote{
		BuyEUR:      midPerKWh + half,
		SellEUR:     midPerKWh - half,
		CapacityKWh: capacity,
	}
}

// mid returns the mid price (EUR/kWh) for a slot; slots beyond the
// price horizon reuse the last known hour.
func (m *DayAhead) mid(slot flexoffer.Time) float64 {
	hour := int(slot) / flexoffer.SlotsPerHour
	if hour < 0 {
		hour = 0
	}
	if hour >= len(m.prices) {
		hour = len(m.prices) - 1
	}
	return m.prices[hour] / 1000
}

// ImbalancePrice prices a deviation in a slot (EUR/kWh): a multiple of
// the slot's absolute mid price, floored so imbalances stay costly in
// cheap and negative-price hours. Its signature matches
// settle.Config.ImbalancePrice, so a market can directly price a
// settlement run's penalties.
func (m *DayAhead) ImbalancePrice(slot flexoffer.Time) float64 {
	return math.Max(m.imbMinEUR, m.imbMult*math.Abs(m.mid(slot)))
}

// ImbalanceSeries materializes the per-slot imbalance price curve for
// the first n slots — the derived series the settlement bench sweeps.
func (m *DayAhead) ImbalanceSeries(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.ImbalancePrice(flexoffer.Time(i))
	}
	return out
}

// TradeResult reports one executed trade.
type TradeResult struct {
	Slot flexoffer.Time
	// KWh is the signed traded energy (positive = BRP buys).
	KWh float64
	// WithinKWh executed at the quoted price; ExcessKWh beyond the
	// slot's remaining capacity paid the marginal price impact.
	WithinKWh, ExcessKWh float64
	// AvgPriceEUR is the volume-weighted execution price per kWh;
	// CostEUR the signed BRP cash flow (positive = BRP pays).
	AvgPriceEUR, CostEUR float64
}

// Trade executes a signed trade (positive kWh = BRP buys, negative =
// sells) against the slot's remaining liquidity. Energy within the
// remaining capacity executes at the quoted side of the book; the
// excess walks the book at the configured marginal impact (average
// impact·excess/2 over the linear ramp), always against the trader.
// Every trade depletes the slot's capacity for subsequent quotes and
// trades.
func (m *DayAhead) Trade(slot flexoffer.Time, kWh float64) (TradeResult, error) {
	if math.IsNaN(kWh) || math.IsInf(kWh, 0) {
		return TradeResult{}, fmt.Errorf("market: non-finite trade volume")
	}
	if kWh == 0 {
		return TradeResult{Slot: slot}, nil
	}
	vol := math.Abs(kWh)
	buying := kWh > 0

	m.tradeMu.Lock()
	defer m.tradeMu.Unlock()
	remaining := m.capacityKWh - m.used[slot]
	if remaining < 0 {
		remaining = 0
	}
	within := math.Min(vol, remaining)
	excess := vol - within
	m.used[slot] += vol
	m.traded.Add(1)

	midPerKWh := m.mid(slot)
	half := math.Abs(midPerKWh) * m.spreadFrac / 2
	price := midPerKWh + half // buy side
	if !buying {
		price = midPerKWh - half
	}
	// The excess ramps linearly from the quoted price, so it averages
	// half the full impact — against the trader on either side.
	impact := m.impactEUR * excess / 2
	excessPrice := price + impact
	if !buying {
		excessPrice = price - impact
	}
	res := TradeResult{Slot: slot, KWh: kWh, WithinKWh: within, ExcessKWh: excess}
	gross := within*price + excess*excessPrice
	res.AvgPriceEUR = gross / vol
	if buying {
		res.CostEUR = gross
	} else {
		res.CostEUR = -gross
	}
	return res, nil
}

// NextGateClosure returns the latest slot at which an order for delivery
// slot `delivery` can still be placed, clamped at the epoch: near-epoch
// delivery slots close at slot 0 rather than at a negative time.
func (m *DayAhead) NextGateClosure(delivery flexoffer.Time) flexoffer.Time {
	gate := delivery - m.gateLead
	if gate < 0 {
		gate = 0
	}
	return gate
}

// NextTradingPeriod returns the first slot of the next hourly trading
// period strictly after now — the boundary beyond which assignment
// flexibility is marginalized for the BRP (paper §7).
func (m *DayAhead) NextTradingPeriod(now flexoffer.Time) flexoffer.Time {
	h := (int(now)/flexoffer.SlotsPerHour + 1) * flexoffer.SlotsPerHour
	return flexoffer.Time(h)
}
