// Package market simulates the energy market a BRP trades on: a
// day-ahead market with hourly trading periods, peak/off-peak prices, a
// bid/ask spread and bounded per-period liquidity. The scheduling
// component uses it to price "energy sold to (and bought from) the
// market" (paper §6), and the negotiation component uses its trading
// periods to marginalize excess assignment flexibility (paper §7).
package market

import (
	"fmt"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/timeseries"
)

// Quote is the market's view of one time slot.
type Quote struct {
	// BuyEUR is the price the BRP pays per kWh bought.
	BuyEUR float64
	// SellEUR is the price the BRP receives per kWh sold.
	SellEUR float64
	// CapacityKWh bounds the energy tradable in the slot in each
	// direction (liquidity).
	CapacityKWh float64
}

// DayAhead is a day-ahead market simulation over hourly trading periods.
type DayAhead struct {
	prices      []float64 // EUR/MWh per hour, hour 0 = slot 0 of the epoch
	spreadFrac  float64   // (buy − sell) / mid
	capacityKWh float64   // per-slot liquidity
	gateLead    flexoffer.Time
}

// Config parameterizes a day-ahead market.
type Config struct {
	// Prices is the hourly price series in EUR/MWh (e.g.
	// workload.PriceSeries). Slot 0 of the flex-offer time axis must
	// coincide with the series origin.
	Prices *timeseries.Series
	// SpreadFrac is the relative bid/ask spread around the mid price
	// (default 0.05).
	SpreadFrac float64
	// CapacityKWh is the per-slot liquidity bound (default 1e6, i.e.
	// effectively unbounded for household-scale scenarios).
	CapacityKWh float64
	// GateClosureLead is how long before delivery a trading period
	// closes (default 4 slots = 1 hour).
	GateClosureLead flexoffer.Time
}

// NewDayAhead builds a day-ahead market from an hourly price series.
func NewDayAhead(cfg Config) (*DayAhead, error) {
	if cfg.Prices == nil || cfg.Prices.Len() == 0 {
		return nil, fmt.Errorf("market: price series required")
	}
	if cfg.Prices.Resolution() != time.Hour {
		return nil, fmt.Errorf("market: prices must be hourly, got %v", cfg.Prices.Resolution())
	}
	if cfg.SpreadFrac < 0 || cfg.SpreadFrac >= 1 {
		return nil, fmt.Errorf("market: spread fraction %g outside [0,1)", cfg.SpreadFrac)
	}
	if cfg.SpreadFrac == 0 {
		cfg.SpreadFrac = 0.05
	}
	if cfg.CapacityKWh == 0 {
		cfg.CapacityKWh = 1e6
	}
	if cfg.GateClosureLead == 0 {
		cfg.GateClosureLead = flexoffer.SlotsPerHour
	}
	return &DayAhead{
		prices:      cfg.Prices.Values(),
		spreadFrac:  cfg.SpreadFrac,
		capacityKWh: cfg.CapacityKWh,
		gateLead:    cfg.GateClosureLead,
	}, nil
}

// Quote returns buy/sell prices (EUR/kWh) and liquidity for a slot.
// Slots beyond the price horizon reuse the last known hour (price
// persistence).
func (m *DayAhead) Quote(slot flexoffer.Time) Quote {
	hour := int(slot) / flexoffer.SlotsPerHour
	if hour < 0 {
		hour = 0
	}
	if hour >= len(m.prices) {
		hour = len(m.prices) - 1
	}
	midPerKWh := m.prices[hour] / 1000
	half := midPerKWh * m.spreadFrac / 2
	return Quote{
		BuyEUR:      midPerKWh + half,
		SellEUR:     midPerKWh - half,
		CapacityKWh: m.capacityKWh,
	}
}

// NextGateClosure returns the latest slot at which an order for delivery
// slot `delivery` can still be placed.
func (m *DayAhead) NextGateClosure(delivery flexoffer.Time) flexoffer.Time {
	return delivery - m.gateLead
}

// NextTradingPeriod returns the first slot of the next hourly trading
// period strictly after now — the boundary beyond which assignment
// flexibility is marginalized for the BRP (paper §7).
func (m *DayAhead) NextTradingPeriod(now flexoffer.Time) flexoffer.Time {
	h := (int(now)/flexoffer.SlotsPerHour + 1) * flexoffer.SlotsPerHour
	return flexoffer.Time(h)
}
