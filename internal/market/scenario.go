package market

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mirabel/internal/timeseries"
)

// Regime names a synthetic day-ahead price regime.
type Regime string

// The scenario engine's price regimes, spanning the market conditions
// the settlement stack must price correctly: quiet days, demand peaks,
// scarcity spikes and renewable-surplus hours with negative prices.
const (
	// RegimeCalm is a flat base price with small noise.
	RegimeCalm Regime = "calm"
	// RegimeEveningPeak overlays a strong demand peak around hour 19.
	RegimeEveningPeak Regime = "evening-peak"
	// RegimeSpike injects rare scarcity spikes of 2–8× the base price
	// that decay over a few hours.
	RegimeSpike Regime = "spike"
	// RegimeNegativeRenewable carves a midday renewable-surplus valley
	// deep enough to push prices negative.
	RegimeNegativeRenewable Regime = "negative-renewable"
)

// Regimes lists every regime, in bench sweep order.
func Regimes() []Regime {
	return []Regime{RegimeCalm, RegimeEveningPeak, RegimeSpike, RegimeNegativeRenewable}
}

// ScenarioConfig parameterizes a regime's price curve generation.
type ScenarioConfig struct {
	Regime Regime
	// Days is the horizon length (default 1).
	Days int
	// BaseEUR is the base price level in EUR/MWh (default 45).
	BaseEUR float64
	// Seed drives the deterministic noise.
	Seed int64
	// Origin anchors the hourly series (default 2010-01-01 UTC, the
	// workload epoch).
	Origin time.Time
}

// Scenario generates an hourly day-ahead price series (EUR/MWh) for the
// given regime — the input to NewDayAhead's Config.Prices.
func Scenario(cfg ScenarioConfig) (*timeseries.Series, error) {
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.BaseEUR == 0 {
		cfg.BaseEUR = 45
	}
	if cfg.Origin.IsZero() {
		cfg.Origin = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hours := cfg.Days * 24
	values := make([]float64, hours)

	switch cfg.Regime {
	case RegimeCalm, "":
		for h := range values {
			values[h] = cfg.BaseEUR + rng.NormFloat64()*2
		}
	case RegimeEveningPeak:
		for h := range values {
			hod := float64(h % 24)
			// A Gaussian demand bell centered on hour 19, wide enough
			// to lift the whole evening.
			peak := 1.6 * cfg.BaseEUR * math.Exp(-((hod-19)*(hod-19))/(2*2.2*2.2))
			values[h] = cfg.BaseEUR + peak + rng.NormFloat64()*3
		}
	case RegimeSpike:
		var spike float64
		for h := range values {
			spike *= 0.55 // spikes decay over a few hours
			if rng.Float64() < 0.04 {
				spike = cfg.BaseEUR * (2 + 6*rng.Float64())
			}
			values[h] = cfg.BaseEUR + spike + rng.NormFloat64()*3
		}
	case RegimeNegativeRenewable:
		for h := range values {
			hod := float64(h % 24)
			// A midday solar bell deep enough (2.4× base at its peak)
			// to push prices below zero around noon.
			solar := 2.4 * cfg.BaseEUR * math.Exp(-((hod-13)*(hod-13))/(2*2.8*2.8))
			values[h] = cfg.BaseEUR - solar + rng.NormFloat64()*3
		}
	default:
		return nil, fmt.Errorf("market: unknown regime %q", cfg.Regime)
	}
	return timeseries.New(cfg.Origin, time.Hour, values), nil
}
