package forecast

import (
	"math"
	"testing"
	"time"

	"mirabel/internal/timeseries"
)

var hOrigin = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

// leafSeries builds a leaf with a scaled daily pattern; chaotic leaves get
// strong pseudo-noise that aggregates away at the parent.
func leafSeries(name string, scale float64, chaotic bool, n int) *HierNode {
	vals := make([]float64, n)
	for i := range vals {
		v := scale * (100 + 30*math.Sin(2*math.Pi*float64(i%48)/48))
		if chaotic {
			v += scale * 60 * pseudoNoise(i*7+int(scale*13))
		}
		vals[i] = v
	}
	return &HierNode{Name: name, Series: timeseries.New(hOrigin, timeseries.ResolutionHalfHour, vals)}
}

func TestSumChildren(t *testing.T) {
	a := leafSeries("a", 1, false, 96)
	b := leafSeries("b", 2, false, 96)
	p, err := SumChildren("p", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Series.At(0) != a.Series.At(0)+b.Series.At(0) {
		t.Error("parent is not the children sum")
	}
	if p.Leaf() {
		t.Error("parent reported as leaf")
	}
	if _, err := SumChildren("empty"); err == nil {
		t.Error("no children should error")
	}
}

func TestAdviseValidation(t *testing.T) {
	a := leafSeries("a", 1, false, 96)
	if _, err := Advise(a, AdvisorConfig{MaxSMAPE: 0, Periods: []int{48}}); err == nil {
		t.Error("zero accuracy constraint should error")
	}
	if _, err := Advise(a, AdvisorConfig{MaxSMAPE: 0.1}); err == nil {
		t.Error("missing periods should error")
	}
}

func TestAdviseRootOnlyForHomogeneousLeaves(t *testing.T) {
	// Identical smooth leaves: the root model plus share disaggregation
	// suffices, so only one model should be placed.
	n := 48 * 8
	a := leafSeries("a", 1, false, n)
	b := leafSeries("b", 1, false, n)
	root, err := SumChildren("root", a, b)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Advise(root, AdvisorConfig{MaxSMAPE: 0.05, Periods: []int{48}, Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumModels() != 1 {
		t.Errorf("models = %d, want 1 (root only); placement %+v", p.NumModels(), p.Models)
	}
	if !p.Models["root"] {
		t.Error("root has no model")
	}
}

func TestAdvisePushesModelsDownForChaoticLeaf(t *testing.T) {
	// One chaotic leaf cannot be served by disaggregation within a tight
	// bound; the advisor must give it (at least) its own model.
	n := 48 * 8
	smooth := leafSeries("smooth", 1, false, n)
	chaotic := leafSeries("chaotic", 1, true, n)
	root, err := SumChildren("root", smooth, chaotic)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Advise(root, AdvisorConfig{MaxSMAPE: 0.03, Periods: []int{48}, Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Models["chaotic"] {
		t.Errorf("chaotic leaf not given a model: %+v", p.Models)
	}
	if p.NumModels() < 2 {
		t.Errorf("models = %d, want root + chaotic", p.NumModels())
	}
}

func TestAdviseRecordsSMAPEForAllNodes(t *testing.T) {
	n := 48 * 8
	a := leafSeries("a", 1, false, n)
	b := leafSeries("b", 3, false, n)
	root, _ := SumChildren("root", a, b)
	p, err := Advise(root, AdvisorConfig{MaxSMAPE: 0.08, Periods: []int{48}, Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"root", "a", "b"} {
		if _, ok := p.SMAPE[name]; !ok {
			t.Errorf("no SMAPE recorded for %q", name)
		}
	}
}

func TestAdviseThreeLevels(t *testing.T) {
	// TSO → two BRPs → four prosumers: the EDMS shape.
	n := 48 * 8
	p1 := leafSeries("p1", 1, false, n)
	p2 := leafSeries("p2", 1.5, false, n)
	p3 := leafSeries("p3", 0.8, false, n)
	p4 := leafSeries("p4", 1.2, true, n)
	brp1, err := SumChildren("brp1", p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	brp2, err := SumChildren("brp2", p3, p4)
	if err != nil {
		t.Fatal(err)
	}
	tso, err := SumChildren("tso", brp1, brp2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Advise(tso, AdvisorConfig{MaxSMAPE: 0.04, Periods: []int{48}, Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Models["tso"] {
		t.Error("no root model")
	}
	// Every node must have an entry.
	for _, name := range []string{"tso", "brp1", "brp2", "p1", "p2", "p3", "p4"} {
		if _, ok := p.Models[name]; !ok {
			t.Errorf("node %q missing from placement", name)
		}
	}
}

func TestFlexOfferForecaster(t *testing.T) {
	n := 48 * 4
	mk := func(base float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = base + 5*math.Sin(2*math.Pi*float64(i%48)/48)
		}
		return out
	}
	series := FlexOfferSeries{Components: map[string][]float64{
		"min_energy": mk(10),
		"max_energy": mk(30),
		"count":      mk(100),
	}}
	f, err := FitFlexOfferForecaster(series, []int{48}, FitConfig{Options: optimizeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Components()) != 3 {
		t.Errorf("components = %v", f.Components())
	}
	if err := f.Update(map[string]float64{"min_energy": 10, "max_energy": 30, "count": 101}); err != nil {
		t.Fatal(err)
	}
	if err := f.Update(map[string]float64{"min_energy": 10}); err == nil {
		t.Error("missing component accepted")
	}
	fc := f.Forecast(24)
	for i := range fc["min_energy"] {
		if fc["min_energy"][i] > fc["max_energy"][i] {
			t.Fatalf("slot %d: min forecast %g > max forecast %g", i, fc["min_energy"][i], fc["max_energy"][i])
		}
	}
}

func TestFlexOfferForecasterEmpty(t *testing.T) {
	if _, err := FitFlexOfferForecaster(FlexOfferSeries{}, []int{48}, FitConfig{}); err == nil {
		t.Error("empty series accepted")
	}
}
