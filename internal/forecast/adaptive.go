package forecast

import (
	"math"
)

// AdaptiveThreshold is the paper's research direction of a *dynamic*
// error threshold for model evaluation (§5: "model maintenance should
// not only include the context for adaption but also for evaluation,
// e.g., to determine a dynamic error threshold"): instead of a fixed
// SMAPE bound it compares a short-horizon error average against a
// long-horizon one and triggers when the recent error exceeds the
// historical level by Factor.
type AdaptiveThreshold struct {
	// Factor is the degradation ratio that triggers re-estimation
	// (default 1.5: recent error 50% above the historical average).
	Factor float64
	// ShortAlpha and LongAlpha are the EWMA decays of the two horizons
	// (defaults 0.1 and 0.005).
	ShortAlpha, LongAlpha float64
	// Warmup observations before the strategy may trigger (default 96).
	Warmup int
	// MinSMAPE is the absolute significance floor: however large the
	// relative degradation, errors below this level never trigger a
	// re-estimation (default 0.01 — a model within 1% is left alone).
	MinSMAPE float64

	short, long float64
	n           int
}

// Observe implements EvaluationStrategy.
func (s *AdaptiveThreshold) Observe(smape float64) bool {
	if s.Factor <= 1 {
		s.Factor = 1.5
	}
	if s.ShortAlpha <= 0 {
		s.ShortAlpha = 0.1
	}
	if s.LongAlpha <= 0 {
		s.LongAlpha = 0.005
	}
	if s.Warmup <= 0 {
		s.Warmup = 96
	}
	if s.MinSMAPE <= 0 {
		s.MinSMAPE = 0.01
	}
	if s.n == 0 {
		s.short, s.long = smape, smape
	} else {
		s.short += s.ShortAlpha * (smape - s.short)
		s.long += s.LongAlpha * (smape - s.long)
	}
	s.n++
	if s.n < s.Warmup {
		return false
	}
	if s.short < s.MinSMAPE {
		return false
	}
	// Guard against a zero historical error (perfect past fits).
	base := math.Max(s.long, 1e-6)
	return s.short > s.Factor*base
}

// Reset implements EvaluationStrategy: the recent horizon restarts; the
// historical level persists as the new baseline.
func (s *AdaptiveThreshold) Reset() {
	s.short = s.long
	s.n = s.Warmup // stay armed, no fresh warmup needed
}

// Interval is a forecast with uncertainty bounds — the paper's future
// direction of "capture of uncertainty levels in the result of queries"
// (§10).
type Interval struct {
	Point, Lower, Upper float64
}

// ForecastInterval returns point forecasts with symmetric prediction
// intervals at roughly the given confidence (z = 1.64 ≈ 90%, 1.96 ≈
// 95%). The interval width is the model's one-step residual standard
// deviation scaled by √k for k-step horizons — the standard random-walk
// widening for exponential smoothing models.
func (m *HWT) ForecastInterval(h int, z float64) []Interval {
	points := m.Forecast(h)
	sigma := math.Sqrt(m.resVar)
	out := make([]Interval, h)
	for k, p := range points {
		w := z * sigma * math.Sqrt(float64(k+1))
		out[k] = Interval{Point: p, Lower: p - w, Upper: p + w}
	}
	return out
}

// ResidualStd returns the model's smoothed one-step residual standard
// deviation.
func (m *HWT) ResidualStd() float64 { return math.Sqrt(m.resVar) }
