package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/optimize"
	"mirabel/internal/store"
)

// testRegistryConfig is a tiny, fast fleet: period-4 models, six
// observations to warm up, no refits unless the test opts in.
func testRegistryConfig() RegistryConfig {
	return RegistryConfig{
		Shards:      4,
		Periods:     []int{4},
		FitCfg:      FitConfig{Options: optimize.Options{MaxEvaluations: 40, Seed: 3}},
		NewStrategy: func() EvaluationStrategy { return &TimeBased{} }, // never triggers
		Workers:     1,
	}
}

func seriesBatch(actor string, from, n int) []store.Measurement {
	ms := make([]store.Measurement, n)
	for i := range ms {
		t := from + i
		ms[i] = store.Measurement{
			Actor: actor, EnergyType: "elec", Slot: flexoffer.Time(t),
			KWh: 10 + 3*math.Sin(2*math.Pi*float64(t%4)/4),
		}
	}
	return ms
}

func TestRegistryLazyCreation(t *testing.T) {
	reg, err := NewRegistry(testRegistryConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Below the warm-up threshold (6 = 1.5 x longest period): no model.
	reg.UpdateMeasurements(seriesBatch("a1", 0, 5))
	if _, ok := reg.Forecast("a1", "elec", 4); ok {
		t.Fatal("forecast served before the warm-up threshold")
	}
	st := reg.Stats()
	if st.Series != 1 || st.Models != 0 {
		t.Fatalf("stats = %d series / %d models, want 1 / 0", st.Series, st.Models)
	}

	// One more observation crosses the threshold: model created lazily.
	reg.UpdateMeasurements(seriesBatch("a1", 5, 1))
	fc, ok := reg.Forecast("a1", "elec", 4)
	if !ok || len(fc) != 4 {
		t.Fatalf("forecast after warm-up: ok=%v len=%d", ok, len(fc))
	}
	if st := reg.Stats(); st.Models != 1 {
		t.Fatalf("models = %d, want 1", st.Models)
	}
	// Unknown series stays unknown.
	if _, ok := reg.Forecast("ghost", "elec", 4); ok {
		t.Fatal("forecast for unknown series")
	}
}

// TestRegistryBatchMatchesSequential: feeding a series one measurement
// at a time and in large batches must end in identical model state.
func TestRegistryBatchMatchesSequential(t *testing.T) {
	one, err := NewRegistry(testRegistryConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	bulk, err := NewRegistry(testRegistryConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()

	const n = 64
	all := seriesBatch("a1", 0, n)
	for i := 0; i < n; i++ {
		one.UpdateMeasurements(all[i : i+1])
	}
	bulk.UpdateMeasurements(all)

	fc1, ok1 := one.Forecast("a1", "elec", 8)
	fc2, ok2 := bulk.Forecast("a1", "elec", 8)
	if !ok1 || !ok2 {
		t.Fatalf("forecasts not served: %v %v", ok1, ok2)
	}
	for i := range fc1 {
		if math.Abs(fc1[i]-fc2[i]) > 1e-12 {
			t.Fatalf("slot %d: sequential %.12f != batched %.12f", i, fc1[i], fc2[i])
		}
	}
}

// TestRegistryMixedBatchGrouping: one batch interleaving several series
// must route every measurement to its own series.
func TestRegistryMixedBatchGrouping(t *testing.T) {
	reg, err := NewRegistry(testRegistryConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var mixed []store.Measurement
	for round := 0; round < 8; round++ {
		for _, actor := range []string{"a1", "a2", "a3"} {
			mixed = append(mixed, seriesBatch(actor, round*2, 2)...)
		}
	}
	reg.UpdateMeasurements(mixed)
	st := reg.Stats()
	if st.Series != 3 || st.Models != 3 {
		t.Fatalf("stats = %d series / %d models, want 3 / 3", st.Series, st.Models)
	}
	if st.Observations != uint64(len(mixed)) {
		t.Fatalf("observations = %d, want %d", st.Observations, len(mixed))
	}
	s, _ := reg.Lookup("a2", "elec")
	mt, ok := s.Maintainer()
	if !ok || mt.Observations() != 16 {
		t.Fatalf("a2 observations = %d, want 16", mt.Observations())
	}
}

// gateEstimator blocks inside Minimize until released — a stand-in for
// an arbitrarily slow parameter estimation.
type gateEstimator struct {
	started chan struct{} // receives one token per Minimize entry
	release chan struct{} // closed to let every Minimize finish
}

func (e *gateEstimator) Name() string { return "gate" }
func (e *gateEstimator) Minimize(obj optimize.Objective, b optimize.Bounds, opt optimize.Options) optimize.Result {
	select {
	case e.started <- struct{}{}:
	default:
	}
	<-e.release
	x := make([]float64, b.Dim())
	for i := range x {
		x[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return optimize.Result{X: x, Value: obj(x)}
}

// TestRefitNeverBlocksForecast: while a re-estimation is stuck inside
// the estimator, updates and forecasts keep serving the stale-but-live
// model. Run under -race this also proves the snapshot/install protocol
// is data-race free.
func TestRefitNeverBlocksForecast(t *testing.T) {
	gate := &gateEstimator{started: make(chan struct{}, 1), release: make(chan struct{})}
	cfg := testRegistryConfig()
	cfg.FitCfg.Estimator = gate
	cfg.NewStrategy = func() EvaluationStrategy { return &TimeBased{Every: 4} }
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Warm the series up; model creation enqueues the initial refit,
	// which parks inside the gate.
	reg.UpdateMeasurements(seriesBatch("a1", 0, 8))
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("refit never reached the estimator")
	}

	// Refit in flight: forecasts and updates must complete promptly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, ok := reg.Forecast("a1", "elec", 4); !ok {
				t.Error("forecast not served during refit")
				return
			}
			reg.UpdateMeasurements(seriesBatch("a1", 8+i, 1))
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("forecast/update blocked behind an in-flight refit")
	}

	close(gate.release)
	if err := reg.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The next serve installs the published parameters.
	reg.Forecast("a1", "elec", 4)
	if st := reg.Stats(); st.RefitsDone == 0 {
		t.Fatalf("refits done = %d, want > 0", st.RefitsDone)
	}
}

// TestStalenessBoundUnderSaturatedQueue: with the refit pool wedged and
// the queue full, update triggers overflow (counted, never blocking),
// forecasts keep serving, and the stats report the growing staleness.
func TestStalenessBoundUnderSaturatedQueue(t *testing.T) {
	gate := &gateEstimator{started: make(chan struct{}, 1), release: make(chan struct{})}
	cfg := testRegistryConfig()
	cfg.FitCfg.Estimator = gate
	cfg.NewStrategy = func() EvaluationStrategy { return &TimeBased{Every: 2} }
	cfg.QueueDepth = 1
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Series a1's creation refit occupies the single worker; a2's
	// creation refit fills the depth-1 queue; every later creation or
	// strategy trigger overflows (refitPending stands down on overflow,
	// so the strategy keeps retrying).
	reg.UpdateMeasurements(seriesBatch("a1", 0, 6))
	<-gate.started
	reg.UpdateMeasurements(seriesBatch("a2", 0, 6))
	reg.UpdateMeasurements(seriesBatch("a3", 0, 6))
	reg.UpdateMeasurements(seriesBatch("a4", 0, 6))
	for i := 0; i < 20; i++ {
		reg.UpdateMeasurements(seriesBatch("a1", 6+2*i, 2))
		reg.UpdateMeasurements(seriesBatch("a3", 6+2*i, 2))
	}

	for _, actor := range []string{"a1", "a2", "a3", "a4"} {
		if _, ok := reg.Forecast(actor, "elec", 4); !ok {
			t.Fatalf("%s: forecast not served under refit starvation", actor)
		}
	}
	st := reg.Stats()
	if st.QueueOverflows == 0 {
		t.Fatal("no queue overflows despite a saturated depth-1 queue")
	}
	if st.MaxStaleness < 40 {
		t.Fatalf("max staleness = %d, want >= 40 (refits starved)", st.MaxStaleness)
	}
	if st.RefitsDone != 0 {
		t.Fatalf("refits done = %d, want 0 while wedged", st.RefitsDone)
	}

	close(gate.release)
	if err := reg.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	reg.Close()
}

// TestRegistryConcurrentRace hammers one hot series and a spread of
// cold ones from concurrent updaters, forecasters, publishers and the
// background refit pool. Run under -race.
func TestRegistryConcurrentRace(t *testing.T) {
	cfg := testRegistryConfig()
	cfg.NewStrategy = func() EvaluationStrategy { return &TimeBased{Every: 8} }
	cfg.Workers = 2
	cfg.QueueDepth = 64
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}

	hub := reg.Hub("hot", "elec")
	if _, _, err := hub.Subscribe(4, 0.01); err != nil {
		t.Fatal(err)
	}

	const rounds = 120
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				// The shared hot series plus a per-worker cold spread.
				reg.UpdateMeasurements(seriesBatch("hot", i*2, 2))
				actor := fmt.Sprintf("cold-%d-%d", w, rng.Intn(8))
				reg.UpdateMeasurements(seriesBatch(actor, i*2, 2))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			reg.Forecast("hot", "elec", 4)
			reg.PublishDirty()
			reg.Stats()
		}
	}()
	wg.Wait()

	if err := reg.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.RefitsFailed != 0 {
		t.Fatalf("refits failed = %d", st.RefitsFailed)
	}
	if st.Models == 0 {
		t.Fatal("no models created")
	}
	reg.Close()
}

// TestRegistrySyncRefitMode: Workers=0 via SyncRefit runs re-estimation
// inline (the benchmark baseline) and counts it.
func TestRegistrySyncRefitMode(t *testing.T) {
	cfg := testRegistryConfig()
	cfg.SyncRefit = true
	cfg.NewStrategy = func() EvaluationStrategy { return &TimeBased{Every: 8} }
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	// Small batches so most observations flow through the live model
	// (one big batch would land entirely in the warm-up buffer).
	for i := 0; i < 20; i++ {
		reg.UpdateMeasurements(seriesBatch("a1", i*2, 2))
	}
	st := reg.Stats()
	if st.SyncRefits == 0 {
		t.Fatal("no inline re-estimations in SyncRefit mode")
	}
	if st.RefitsEnqueued != 0 || st.Workers != 0 {
		t.Fatalf("background pool active in SyncRefit mode: %+v", st)
	}
}

func TestRegistryHubPublishDirty(t *testing.T) {
	reg, err := NewRegistry(testRegistryConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	hub := reg.Hub("a1", "elec")
	_, ch, err := hub.Subscribe(4, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	// Warming series: dirty-publish skips it (no model yet).
	reg.UpdateMeasurements(seriesBatch("a1", 0, 3))
	if n := reg.PublishDirty(); n != 0 {
		t.Fatalf("published %d notifications before the model exists", n)
	}
	reg.UpdateMeasurements(seriesBatch("a1", 3, 5))
	if n := reg.PublishDirty(); n != 1 {
		t.Fatalf("published %d notifications, want 1", n)
	}
	select {
	case n := <-ch:
		if len(n.Forecast) != 4 {
			t.Fatalf("notification horizon = %d, want 4", len(n.Forecast))
		}
	default:
		t.Fatal("no notification delivered")
	}
	// Clean publish: no new observations, no notifications.
	if n := reg.PublishDirty(); n != 0 {
		t.Fatalf("published %d notifications without new observations", n)
	}
}

// countingForecaster counts Forecast calls per horizon.
type countingForecaster struct {
	calls map[int]int
}

func (c *countingForecaster) Forecast(h int) []float64 {
	c.calls[h]++
	return make([]float64, h)
}

// TestHubPublishDistinctHorizons: subscribers sharing a horizon share
// one model query per publish.
func TestHubPublishDistinctHorizons(t *testing.T) {
	cf := &countingForecaster{calls: make(map[int]int)}
	hub := NewHub(cf)
	for _, h := range []int{5, 5, 5, 7} {
		if _, _, err := hub.Subscribe(h, 0); err != nil {
			t.Fatal(err)
		}
	}
	if sent := hub.Publish(); sent != 4 {
		t.Fatalf("sent = %d, want 4 first-publish notifications", sent)
	}
	if cf.calls[5] != 1 || cf.calls[7] != 1 {
		t.Fatalf("model queried %d times for h=5 and %d for h=7, want once each", cf.calls[5], cf.calls[7])
	}
}

// TestOneStepMatchesForecast1 pins the allocation-free one-step path to
// the general forecast.
func TestOneStepMatchesForecast1(t *testing.T) {
	m, err := NewHWT(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		if got, want := m.OneStep(), m.Forecast(1)[0]; got != want {
			t.Fatalf("step %d: OneStep %.12f != Forecast(1)[0] %.12f", i, got, want)
		}
		m.Update(10 + rng.NormFloat64())
	}
}

// TestThresholdBasedRunningSum: the O(1) running-sum strategy must make
// exactly the decisions of a naive full-window rescan, across enough
// wraps to cross the drift resync.
func TestThresholdBasedRunningSum(t *testing.T) {
	const window = 8
	fast := &ThresholdBased{Threshold: 0.3, Window: window}
	// Naive reference: full scan per observation.
	var ref []float64
	pos, full := 0, false
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < window*(thresholdResyncEvery*2+3); i++ {
		smape := rng.Float64() * 0.6
		got := fast.Observe(smape)

		if ref == nil {
			ref = make([]float64, window)
		}
		ref[pos] = smape
		pos = (pos + 1) % window
		if pos == 0 {
			full = true
		}
		want := false
		if full {
			var sum float64
			for _, e := range ref {
				sum += e
			}
			want = sum/window > 0.3
		}
		if got != want {
			t.Fatalf("observation %d: running-sum verdict %v != rescan verdict %v", i, got, want)
		}
	}
	fast.Reset()
	if fast.Observe(1) {
		t.Fatal("triggered immediately after Reset on a partial window")
	}
}
