package forecast

import (
	"fmt"
	"sync"
)

// Notification is delivered to a forecast query subscriber when the
// forecast for its horizon changed significantly.
type Notification struct {
	SubscriptionID int
	Forecast       []float64
	// MaxRelChange is the largest relative change versus the previously
	// delivered forecast (1 on the first delivery).
	MaxRelChange float64
}

// Hub implements publish-subscribe forecast queries (paper §5: the
// scheduling component "may register forecast queries as continuous
// queries in order to obtain notifications whenever the forecast values
// change significantly" — re-running the expensive scheduler only when
// warranted).
type Hub struct {
	mu    sync.Mutex
	model interface{ Forecast(int) []float64 }
	next  int
	subs  map[int]*subscription
}

type subscription struct {
	horizon   int
	threshold float64 // relative change that triggers a notification
	last      []float64
	ch        chan Notification
}

// NewHub wraps any forecaster (an *HWT, a *Maintainer, ...).
func NewHub(model interface{ Forecast(int) []float64 }) *Hub {
	return &Hub{model: model, next: 1, subs: make(map[int]*subscription)}
}

// Subscribe registers a continuous forecast query: whenever Publish finds
// that the h-step forecast changed by more than threshold (relative,
// e.g. 0.05 = 5%) in any slot, a Notification is sent. The returned
// channel is buffered; a slow subscriber drops superseded notifications
// rather than blocking the hub.
func (h *Hub) Subscribe(horizon int, threshold float64) (int, <-chan Notification, error) {
	if horizon <= 0 {
		return 0, nil, fmt.Errorf("forecast: non-positive horizon %d", horizon)
	}
	if threshold < 0 {
		return 0, nil, fmt.Errorf("forecast: negative threshold %g", threshold)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.next
	h.next++
	sub := &subscription{horizon: horizon, threshold: threshold, ch: make(chan Notification, 1)}
	h.subs[id] = sub
	return id, sub.ch, nil
}

// Unsubscribe cancels a continuous query and closes its channel.
func (h *Hub) Unsubscribe(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sub, ok := h.subs[id]; ok {
		close(sub.ch)
		delete(h.subs, id)
	}
}

// Publish recomputes every subscriber's forecast against the current
// model state and notifies those whose forecast changed significantly.
// Call it after feeding new measurements to the model. The model is
// queried once per *distinct* horizon — subscribers sharing a horizon
// share the computed forecast. It returns the number of notifications
// sent.
func (h *Hub) Publish() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	sent := 0
	var byHorizon map[int][]float64
	if len(h.subs) > 1 {
		byHorizon = make(map[int][]float64, len(h.subs))
	}
	for id, sub := range h.subs {
		fc, ok := byHorizon[sub.horizon]
		if !ok {
			fc = h.model.Forecast(sub.horizon)
			if byHorizon != nil {
				byHorizon[sub.horizon] = fc
			}
		}
		change := maxRelChange(sub.last, fc)
		if sub.last != nil && change <= sub.threshold {
			continue
		}
		sub.last = append(sub.last[:0], fc...)
		n := Notification{SubscriptionID: id, Forecast: append([]float64(nil), fc...), MaxRelChange: change}
		select {
		case sub.ch <- n:
		default:
			// Replace a stale pending notification with the fresh one.
			select {
			case <-sub.ch:
			default:
			}
			sub.ch <- n
		}
		sent++
	}
	return sent
}

// maxRelChange returns the maximum per-slot relative change between two
// forecasts; 1 when prev is nil (first publication always notifies).
func maxRelChange(prev, cur []float64) float64 {
	if prev == nil {
		return 1
	}
	var mx float64
	for i := range cur {
		if i >= len(prev) {
			break
		}
		denom := abs(prev[i])
		if denom < 1e-9 {
			denom = 1e-9
		}
		if c := abs(cur[i]-prev[i]) / denom; c > mx {
			mx = c
		}
	}
	return mx
}

// NumSubscribers returns the number of live subscriptions.
func (h *Hub) NumSubscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
