package forecast

import (
	"sync"
	"sync/atomic"
	"time"
)

// refitLatWindow sizes the refit latency ring the percentiles are
// computed over (matching the ingest stats collector's window).
const refitLatWindow = 4096

// sweeper is the bounded background re-estimation pool: evaluation
// strategies enqueue refit requests, workers refit against a history
// snapshot and publish the parameters back through the maintainer's
// atomic install slot — so a refit never holds a series lock for longer
// than the snapshot copy, and forecasts/updates keep serving the
// stale-but-live model while the (expensive) estimation runs.
type sweeper struct {
	q    chan *Series
	stop chan struct{}
	wg   sync.WaitGroup

	workers int
	// pending counts requests accepted but not yet finished (queued or
	// refitting) — incremented at enqueue so idle() has no window where
	// a dequeued-but-not-started refit is invisible.
	pending atomic.Int64

	enqueued  atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	overflows atomic.Uint64

	latMu   sync.Mutex
	lat     [refitLatWindow]time.Duration
	latNext int
	latLen  int
}

func newSweeper(workers, depth int) *sweeper {
	w := &sweeper{
		q:       make(chan *Series, depth),
		stop:    make(chan struct{}),
		workers: workers,
	}
	w.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go w.run()
	}
	return w
}

// enqueue hands a series to the pool without ever blocking the caller
// (which holds the series' maintainer lock): a full queue drops the
// request, counts an overflow, and the caller stands its pending flag
// down so the evaluation strategy re-triggers later.
func (w *sweeper) enqueue(s *Series) bool {
	select {
	case w.q <- s:
		w.enqueued.Add(1)
		w.pending.Add(1)
		return true
	default:
		w.overflows.Add(1)
		return false
	}
}

func (w *sweeper) run() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		case s := <-w.q:
			w.refit(s)
			w.pending.Add(-1)
		}
	}
}

// refit re-estimates one series' parameters. The maintainer lock is
// held only for the history snapshot; the estimation itself — by far
// the dominant cost — runs lock-free, and the result is published via
// an atomic pointer the next update/forecast swaps in.
func (w *sweeper) refit(s *Series) {
	mt := s.mt.Load()
	if mt == nil {
		return
	}
	history, periods, cfg := mt.refitSnapshot()
	start := time.Now()
	_, res, err := FitHWT(history, periods, cfg)
	if err != nil {
		w.failed.Add(1)
		mt.abortRefit()
		return
	}
	mt.completeRefit(res.X, res.Value)
	w.completed.Add(1)
	w.observe(time.Since(start))
}

func (w *sweeper) observe(d time.Duration) {
	w.latMu.Lock()
	w.lat[w.latNext] = d
	w.latNext = (w.latNext + 1) % refitLatWindow
	if w.latLen < refitLatWindow {
		w.latLen++
	}
	w.latMu.Unlock()
}

// fill populates the sweeper-owned fields of a stats snapshot.
func (w *sweeper) fill(st *RegistryStats) {
	st.RefitsEnqueued = w.enqueued.Load()
	st.RefitsDone = w.completed.Load()
	st.RefitsFailed = w.failed.Load()
	st.QueueOverflows = w.overflows.Load()
	st.QueueDepth = len(w.q)
	st.QueueCap = cap(w.q)
	st.Workers = w.workers

	w.latMu.Lock()
	window := make([]time.Duration, w.latLen)
	copy(window, w.lat[:w.latLen])
	w.latMu.Unlock()
	if len(window) == 0 {
		return
	}
	sortDurations(window)
	pick := func(q float64) time.Duration {
		i := int(q * float64(len(window)-1))
		return window[i]
	}
	st.RefitP50 = pick(0.50)
	st.RefitP95 = pick(0.95)
	st.RefitP99 = pick(0.99)
}

// idle reports whether the queue is drained and no refit is running.
func (w *sweeper) idle() bool { return w.pending.Load() == 0 }

func (w *sweeper) close() {
	close(w.stop)
	w.wg.Wait()
}
