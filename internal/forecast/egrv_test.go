package forecast

import (
	"math"
	"testing"
	"time"
)

// synthEGRVData builds day-major demand driven by exactly the structures
// EGRV models: lagged loads, temperature and weekday.
func synthEGRVData(days, ppd int) (demand, temp []float64) {
	n := days * ppd
	demand = make([]float64, n)
	temp = make([]float64, n)
	for i := 0; i < n; i++ {
		d, p := i/ppd, i%ppd
		// Day-level weather surprises: predictable to a weather service
		// (EGRV's regressor) but not to a purely seasonal model.
		dayNoise := 6 * math.Sin(float64(d)*12.9898+math.Floor(math.Sin(float64(d))*43758.5453))
		temp[i] = 10 + 8*math.Sin(2*math.Pi*float64(p)/float64(ppd)) + dayNoise
		wd := (int(time.Friday) + d) % 7
		weekend := 0.0
		if wd == 0 || wd == 6 {
			weekend = -15
		}
		demand[i] = 100 + 20*math.Sin(2*math.Pi*float64(p)/float64(ppd)) - 1.2*temp[i] + weekend
	}
	return demand, temp
}

func TestFitEGRVValidation(t *testing.T) {
	if _, err := FitEGRV(nil, nil, EGRVConfig{}); err == nil {
		t.Error("zero periods per day should error")
	}
	if _, err := FitEGRV([]float64{1}, []float64{}, NewEGRVConfig(24)); err == nil {
		t.Error("length mismatch should error")
	}
	d, temp := synthEGRVData(10, 24)
	if _, err := FitEGRV(d, temp, NewEGRVConfig(24)); err == nil {
		t.Error("too few days should error")
	}
}

func TestEGRVFitsStructuredDemand(t *testing.T) {
	demand, temp := synthEGRVData(40, 24)
	m, err := FitEGRV(demand[:30*24], temp[:30*24], NewEGRVConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	// Forecast the next 10 days with true temperatures.
	fc, err := m.Forecast(10*24, temp[30*24:40*24])
	if err != nil {
		t.Fatal(err)
	}
	var smape float64
	for i, p := range fc {
		a := demand[30*24+i]
		smape += math.Abs(a-p) / (math.Abs(a) + math.Abs(p))
	}
	smape /= float64(len(fc))
	if smape > 0.03 {
		t.Errorf("EGRV SMAPE = %g on structured data, want < 3%%", smape)
	}
}

func TestEGRVParallelMatchesSequential(t *testing.T) {
	demand, temp := synthEGRVData(30, 24)
	cfgSeq := NewEGRVConfig(24)
	cfgSeq.Parallel = false
	seq, err := FitEGRV(demand, temp, cfgSeq)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FitEGRV(demand, temp, NewEGRVConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 24; p++ {
		for j := range seq.coeffs[p] {
			if math.Abs(seq.coeffs[p][j]-par.coeffs[p][j]) > 1e-9 {
				t.Fatalf("equation %d coeff %d differs: %g vs %g", p, j, seq.coeffs[p][j], par.coeffs[p][j])
			}
		}
	}
}

func TestEGRVForecastValidation(t *testing.T) {
	demand, temp := synthEGRVData(20, 24)
	m, err := FitEGRV(demand, temp, NewEGRVConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0, nil); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := m.Forecast(10, []float64{1, 2}); err == nil {
		t.Error("insufficient temperature forecasts should error")
	}
}

func TestEGRVTemperaturePersistenceFallback(t *testing.T) {
	demand, temp := synthEGRVData(20, 24)
	m, err := FitEGRV(demand, temp, NewEGRVConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(24, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fc {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("persistence forecast not finite")
		}
	}
}

func TestEGRVUpdateShiftsLags(t *testing.T) {
	demand, temp := synthEGRVData(21, 24)
	m, err := FitEGRV(demand[:20*24], temp[:20*24], NewEGRVConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	before, _ := m.Forecast(1, nil)
	// Feed one real day; the one-step forecast target moves.
	for i := 20 * 24; i < 21*24; i++ {
		m.Update(demand[i], temp[i])
	}
	after, _ := m.Forecast(1, nil)
	if before[0] == after[0] {
		t.Error("update did not shift lagged inputs")
	}
}

func TestEGRVHolidayDummy(t *testing.T) {
	demand, temp := synthEGRVData(30, 24)
	// Depress demand on day 20 like a holiday.
	for p := 0; p < 24; p++ {
		demand[20*24+p] -= 30
	}
	cfg := NewEGRVConfig(24)
	cfg.Holidays = map[int]bool{20: true}
	if _, err := FitEGRV(demand, temp, cfg); err != nil {
		t.Fatalf("fit with holidays: %v", err)
	}
}

func TestEGRVAsModelInterface(t *testing.T) {
	demand, temp := synthEGRVData(20, 24)
	m, err := FitEGRV(demand, temp, NewEGRVConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	var mod Model = m.AsModel()
	if mod.Name() == "" {
		t.Error("empty name")
	}
	mod.Update(100)
	fc := mod.Forecast(5)
	if len(fc) != 5 {
		t.Errorf("forecast len = %d", len(fc))
	}
}

func TestSelectModelPrefersEGRVOnRegressionData(t *testing.T) {
	demand, temp := synthEGRVData(40, 24)
	split := 30 * 24
	model, name, err := SelectModel(demand[:split], demand[split:], temp[:split], temp[split:],
		24, []int{24, 168}, FitConfig{Options: optimizeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("nil model")
	}
	// On data generated from the EGRV structure, EGRV should win.
	if name != "EGRV" {
		t.Errorf("selected %s, want EGRV", name)
	}
}
