//go:build !race

package forecast

import (
	"testing"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

// The race detector instruments allocations, so the zero-alloc pins
// only run in plain builds — CI runs both variants.

func TestHWTOneStepZeroAlloc(t *testing.T) {
	m, err := NewHWT(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		m.Update(float64(i % 4))
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = m.OneStep()
		m.Update(2)
	}); n != 0 {
		t.Fatalf("OneStep+Update allocates %.1f times per op, want 0", n)
	}
}

func TestMaintainerUpdateZeroAlloc(t *testing.T) {
	m, err := NewHWT(4)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 8)
	if err := m.Init(hist); err != nil {
		t.Fatal(err)
	}
	// TimeBased zero value never triggers: the steady-state path with no
	// re-estimation in sight.
	mt := NewMaintainer(m, hist, MaintainerConfig{Strategy: &TimeBased{}})
	if n := testing.AllocsPerRun(1000, func() {
		if err := mt.Update(3); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Maintainer.Update allocates %.1f times per op, want 0", n)
	}
}

func TestRegistryUpdateBatchZeroAlloc(t *testing.T) {
	cfg := testRegistryConfig()
	cfg.SyncRefit = true // no background pool to pollute the malloc counters
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	batch := make([]store.Measurement, 16)
	for i := range batch {
		batch[i] = store.Measurement{Actor: "a1", EnergyType: "elec", Slot: flexoffer.Time(i), KWh: 5}
	}
	reg.UpdateMeasurements(batch) // past warm-up: model exists
	if n := testing.AllocsPerRun(200, func() {
		reg.UpdateMeasurements(batch)
	}); n != 0 {
		t.Fatalf("UpdateMeasurements allocates %.1f times per batch, want 0", n)
	}
}
