package forecast

import (
	"fmt"
)

// FlexOfferSeries is the multivariate time series view of a stream of
// flex-offers: per slot, the aggregate minimum and maximum energy offered
// (further observation vectors can be added as extra components). The
// paper forecasts flex-offers by decomposing this multivariate series
// into univariate series and applying the standard model types to each
// (paper §5: "we decompose this multi-variate time series into a set of
// univariate time series and apply our already defined forecast model
// types to the individual time series").
type FlexOfferSeries struct {
	// Components maps a component name (e.g. "min_energy",
	// "max_energy", "count") to its univariate history.
	Components map[string][]float64
}

// FlexOfferForecaster maintains one model per component.
type FlexOfferForecaster struct {
	models map[string]*HWT
}

// FitFlexOfferForecaster fits one HWT per component with a shared
// configuration.
func FitFlexOfferForecaster(series FlexOfferSeries, periods []int, cfg FitConfig) (*FlexOfferForecaster, error) {
	if len(series.Components) == 0 {
		return nil, fmt.Errorf("forecast: flex-offer series has no components")
	}
	f := &FlexOfferForecaster{models: make(map[string]*HWT, len(series.Components))}
	for name, vals := range series.Components {
		m, _, err := FitHWT(vals, periods, cfg)
		if err != nil {
			return nil, fmt.Errorf("forecast: component %q: %w", name, err)
		}
		f.models[name] = m
	}
	return f, nil
}

// Update feeds one new observation vector (one value per component).
func (f *FlexOfferForecaster) Update(obs map[string]float64) error {
	for name, m := range f.models {
		v, ok := obs[name]
		if !ok {
			return fmt.Errorf("forecast: observation missing component %q", name)
		}
		m.Update(v)
	}
	return nil
}

// Forecast predicts h slots ahead for every component. Components whose
// semantics require min ≤ max are reconciled when both standard names
// are present.
func (f *FlexOfferForecaster) Forecast(h int) map[string][]float64 {
	out := make(map[string][]float64, len(f.models))
	for name, m := range f.models {
		out[name] = m.Forecast(h)
	}
	// Reconcile the energy envelope: forecasting each bound separately
	// can cross them; the envelope interpretation requires min ≤ max.
	if mn, ok := out["min_energy"]; ok {
		if mx, ok := out["max_energy"]; ok {
			for i := range mn {
				if mn[i] > mx[i] {
					mid := (mn[i] + mx[i]) / 2
					mn[i], mx[i] = mid, mid
				}
			}
		}
	}
	return out
}

// Components lists the component names.
func (f *FlexOfferForecaster) Components() []string {
	out := make([]string, 0, len(f.models))
	for name := range f.models {
		out = append(out, name)
	}
	return out
}
