// Package forecast implements the MIRABEL forecasting component (paper
// §5): energy-domain forecast models (the Triple Seasonality Holt-Winters
// model HWT [Taylor 2009] and the EGRV multi-equation regression model
// [Ramanathan et al. 1997]), transparent model creation with global
// parameter estimation, continuous model maintenance with evaluation
// strategies, context-aware model adaptation (a case-based parameter
// repository), hierarchical forecasting configuration, publish-subscribe
// forecast queries, and flex-offer forecasting by multivariate
// decomposition.
package forecast

import (
	"errors"
	"fmt"
	"math"
)

// Model is a univariate forecast model maintained over a stream of
// observations. Implementations are not safe for concurrent use; wrap
// them in a Maintainer for concurrent producers/consumers.
type Model interface {
	// Name identifies the model type.
	Name() string
	// Update consumes the next observation of the series.
	Update(y float64)
	// Forecast predicts the next h values after the last observation.
	Forecast(h int) []float64
	// OneStep predicts only the next value — semantically Forecast(1)[0],
	// but without the slice allocation where the model allows (HWT). The
	// continuous-maintenance hot path calls it once per observation, so
	// millions of maintained series depend on it staying allocation-free.
	OneStep() float64
}

// HWT is the exponential smoothing model tailor-made for the energy
// domain: Taylor's multi-seasonal Holt-Winters with additive seasonal
// components and a first-order autoregressive residual correction. The
// classic "triple seasonality" instance uses intra-day, intra-week and
// intra-year periods; any non-empty subset works.
//
// State equations (additive form, no trend — energy series are
// trend-stationary at these horizons):
//
//	level_t = α·(y_t − Σ s_i) + (1−α)·level_{t−1}
//	s_i,t   = γ_i·(y_t − level_t − Σ_{j≠i} s_j) + (1−γ_i)·s_i,t−m_i
//	ŷ_t+k   = level_t + Σ s_i,t−m_i+k + φ^k·e_t
//
// where e_t is the last one-step-ahead error.
type HWT struct {
	periods []int // seasonal cycle lengths, e.g. {48, 336} for half-hourly

	// Smoothing parameters: level α, AR coefficient φ, one γ per period.
	alpha, phi float64
	gammas     []float64

	level    float64
	seasonal [][]float64 // ring buffer per period
	t        int         // observations consumed
	lastErr  float64     // one-step-ahead residual
	resVar   float64     // EWMA of squared residuals (uncertainty capture)
	ready    bool
}

// NewHWT creates an HWT model with the given seasonal periods (longest
// common use: 48 and 336 for half-hourly data with daily and weekly
// cycles). Parameters start at robust defaults; use SetParams or FitHWT
// for estimation.
func NewHWT(periods ...int) (*HWT, error) {
	if len(periods) == 0 {
		return nil, errors.New("forecast: HWT needs at least one seasonal period")
	}
	for _, p := range periods {
		if p < 2 {
			return nil, fmt.Errorf("forecast: invalid seasonal period %d", p)
		}
	}
	m := &HWT{
		periods: append([]int(nil), periods...),
		alpha:   0.1,
		phi:     0.3,
		gammas:  make([]float64, len(periods)),
	}
	for i := range m.gammas {
		m.gammas[i] = 0.05
	}
	m.seasonal = make([][]float64, len(periods))
	for i, p := range periods {
		m.seasonal[i] = make([]float64, p)
	}
	return m, nil
}

// Name implements Model.
func (m *HWT) Name() string { return fmt.Sprintf("HWT%v", m.periods) }

// NumParams returns the length of the parameter vector:
// [α, φ, γ_1..γ_n].
func (m *HWT) NumParams() int { return 2 + len(m.periods) }

// Params returns the current parameter vector [α, φ, γ_1..γ_n].
func (m *HWT) Params() []float64 {
	out := make([]float64, 0, m.NumParams())
	out = append(out, m.alpha, m.phi)
	return append(out, m.gammas...)
}

// SetParams installs a parameter vector as returned by Params. All
// values must lie in [0, 1].
func (m *HWT) SetParams(p []float64) error {
	if len(p) != m.NumParams() {
		return fmt.Errorf("forecast: HWT wants %d parameters, got %d", m.NumParams(), len(p))
	}
	for i, v := range p {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("forecast: HWT parameter %d = %g outside [0,1]", i, v)
		}
	}
	m.alpha = p[0]
	m.phi = p[1]
	copy(m.gammas, p[2:])
	return nil
}

// Init seeds level and seasonal components from a history window and
// replays the window through Update so the smoothing state is warm. The
// history should cover at least two of the longest seasonal cycles.
func (m *HWT) Init(history []float64) error {
	longest := m.periods[len(m.periods)-1]
	if len(history) < longest {
		return fmt.Errorf("forecast: HWT init needs ≥ %d observations, got %d", longest, len(history))
	}
	var mean float64
	for _, y := range history {
		mean += y
	}
	mean /= float64(len(history))
	m.level = mean

	// Seed each seasonal component with the average deviation from the
	// mean at that season position. Components for shorter periods are
	// seeded first; longer periods absorb the residual structure.
	residual := make([]float64, len(history))
	for i, y := range history {
		residual[i] = y - mean
	}
	for i, p := range m.periods {
		sums := make([]float64, p)
		counts := make([]int, p)
		for j, r := range residual {
			sums[j%p] += r
			counts[j%p]++
		}
		for k := 0; k < p; k++ {
			if counts[k] > 0 {
				m.seasonal[i][k] = sums[k] / float64(counts[k])
			}
		}
		// Remove this component from the residual before seeding the
		// next, so components do not double-count structure.
		for j := range residual {
			residual[j] -= m.seasonal[i][j%p]
		}
	}

	m.t = 0
	m.lastErr = 0
	m.ready = true
	for _, y := range history {
		m.Update(y)
	}
	return nil
}

// seasonalAt returns component i's value k steps ahead of the current
// time (k = 0 means the value that applies to the next observation).
func (m *HWT) seasonalAt(i, k int) float64 {
	p := m.periods[i]
	return m.seasonal[i][(m.t+k)%p]
}

// OneStep implements Model: the one-step-ahead prediction from the
// current state, allocation-free.
func (m *HWT) OneStep() float64 {
	v := m.level
	for i := range m.periods {
		v += m.seasonalAt(i, 0)
	}
	return v + m.phi*m.lastErr
}

// Update implements Model.
func (m *HWT) Update(y float64) {
	if !m.ready {
		// Without Init, bootstrap level from the first observation.
		m.level = y
		m.ready = true
	}
	// One-step-ahead prediction before state update, for the AR term.
	pred := m.OneStep()

	var seasonalSum float64
	for i := range m.periods {
		seasonalSum += m.seasonalAt(i, 0)
	}
	newLevel := m.alpha*(y-seasonalSum) + (1-m.alpha)*m.level

	for i := range m.periods {
		others := seasonalSum - m.seasonalAt(i, 0)
		p := m.periods[i]
		idx := m.t % p
		m.seasonal[i][idx] = m.gammas[i]*(y-newLevel-others) + (1-m.gammas[i])*m.seasonal[i][idx]
	}
	m.level = newLevel
	m.lastErr = y - pred
	// Smoothed residual variance feeds the prediction intervals.
	const varAlpha = 0.02
	m.resVar += varAlpha * (m.lastErr*m.lastErr - m.resVar)
	m.t++
}

// Forecast implements Model.
func (m *HWT) Forecast(h int) []float64 {
	out := make([]float64, h)
	for k := 0; k < h; k++ {
		v := m.level
		for i := range m.periods {
			v += m.seasonalAt(i, k)
		}
		v += math.Pow(m.phi, float64(k+1)) * m.lastErr
		out[k] = v
	}
	return out
}

// OneStepErrors replays ys through a copy of the model and returns the
// one-step-ahead forecasts; used by the estimation objective and the
// evaluation strategies.
func (m *HWT) clone() *HWT {
	c := *m
	c.gammas = append([]float64(nil), m.gammas...)
	c.seasonal = make([][]float64, len(m.seasonal))
	for i, s := range m.seasonal {
		c.seasonal[i] = append([]float64(nil), s...)
	}
	return &c
}
