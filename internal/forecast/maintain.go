package forecast

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// EvaluationStrategy decides when a maintained model's parameters need
// re-estimation (paper §5: "we offer different model evaluation
// strategies (e.g., time- or threshold-based)").
type EvaluationStrategy interface {
	// Observe is called after every Update with the symmetric relative
	// error |y−ŷ| / (|y|+|ŷ|) of the one-step forecast for the value
	// just consumed; it returns true when a parameter re-estimation
	// should be triggered.
	Observe(smape float64) bool
	// Reset is called after a re-estimation completed.
	Reset()
}

// TimeBased triggers a re-estimation every Every observations.
type TimeBased struct {
	Every int
	count int
}

// Observe implements EvaluationStrategy.
func (s *TimeBased) Observe(float64) bool {
	s.count++
	return s.Every > 0 && s.count >= s.Every
}

// Reset implements EvaluationStrategy.
func (s *TimeBased) Reset() { s.count = 0 }

// ThresholdBased triggers a re-estimation when the rolling SMAPE over
// Window observations exceeds Threshold.
type ThresholdBased struct {
	Threshold float64
	Window    int

	errs  []float64
	pos   int
	full  bool
	sum   float64 // running sum of errs — O(1) per observation
	wraps int     // window wraps since the last exact resync
}

// thresholdResyncEvery bounds the running sum's floating-point drift:
// every that many window wraps the sum is recomputed exactly.
const thresholdResyncEvery = 64

// Observe implements EvaluationStrategy. The rolling mean is maintained
// as a running sum (subtract the evicted error, add the new one), so the
// per-observation cost is O(1) instead of a full window scan.
func (s *ThresholdBased) Observe(smape float64) bool {
	if s.Window <= 0 {
		s.Window = 48
	}
	if s.errs == nil {
		s.errs = make([]float64, s.Window)
	}
	s.sum += smape - s.errs[s.pos]
	s.errs[s.pos] = smape
	s.pos = (s.pos + 1) % s.Window
	if s.pos == 0 {
		s.full = true
		s.wraps++
		if s.wraps%thresholdResyncEvery == 0 {
			var exact float64
			for _, e := range s.errs {
				exact += e
			}
			s.sum = exact
		}
	}
	if !s.full {
		return false
	}
	return s.sum/float64(s.Window) > s.Threshold
}

// Reset implements EvaluationStrategy.
func (s *ThresholdBased) Reset() {
	s.pos, s.full, s.sum, s.wraps = 0, false, 0, 0
	for i := range s.errs {
		s.errs[i] = 0
	}
}

// installedFit is a parameter vector produced by an asynchronous
// re-estimation, published for the next lock holder to swap in.
type installedFit struct {
	params []float64
}

// Maintainer wraps an HWT model with continuous maintenance: every new
// measurement updates the smoothing state (cheap, allocation-free), an
// evaluation strategy watches the one-step error, and when triggered the
// parameters are re-estimated — warm-started from the current parameters
// and the context repository (paper: "the model adaption exploits the
// context knowledge of previous model estimations in order to speed up
// this time-consuming process").
//
// Two re-estimation modes exist. Standalone (the default), the refit
// runs synchronously inside Update. Registry-attached (an enqueue hook
// is set), the strategy only *enqueues* a refit request: a background
// worker refits against a snapshot of the history and publishes the new
// parameters through an atomic pointer, which the next Update/Forecast
// swaps into the live model — so a refit never blocks updates or
// forecasts, which keep serving the stale-but-live model meanwhile.
type Maintainer struct {
	mu    sync.Mutex
	model *HWT

	// hist is a fixed-capacity ring of the retained history window —
	// appending an observation never allocates. histPos is the next
	// write slot; histLen saturates at len(hist).
	hist    []float64
	histPos int
	histLen int

	strategy  EvaluationStrategy
	fitCfg    FitConfig
	repo      *ContextRepository // optional
	ctx       Context
	reEstims  int
	listeners []func(*HWT)

	// Async re-estimation plumbing (nil/zero in standalone mode).
	enqueue       func() bool               // registry hook: queue a refit request
	refitPending  atomic.Bool               // a request is queued or running
	pendingFit    atomic.Pointer[installedFit]
	obsSinceRefit atomic.Int64 // staleness: observations since the last installed fit
	obsTotal      atomic.Uint64
}

// MaintainerConfig assembles a Maintainer.
type MaintainerConfig struct {
	Strategy EvaluationStrategy // nil: TimeBased every 2 longest periods
	FitCfg   FitConfig          // estimation budget for re-estimations
	Repo     *ContextRepository // optional parameter repository
	Ctx      Context            // context key for the repository
	// MaxHistory bounds the retained history window (default 4 longest
	// periods).
	MaxHistory int
}

// NewMaintainer wraps a fitted model. history is the data the model was
// fitted on (retained, windowed, for re-estimation).
func NewMaintainer(model *HWT, history []float64, cfg MaintainerConfig) *Maintainer {
	longest := model.periods[len(model.periods)-1]
	if cfg.Strategy == nil {
		cfg.Strategy = &TimeBased{Every: 2 * longest}
	}
	if cfg.MaxHistory <= 0 {
		cfg.MaxHistory = 4 * longest
	}
	mt := &Maintainer{
		model:    model,
		hist:     make([]float64, cfg.MaxHistory),
		strategy: cfg.Strategy,
		fitCfg:   cfg.FitCfg,
		repo:     cfg.Repo,
		ctx:      cfg.Ctx,
	}
	h := history
	if len(h) > cfg.MaxHistory {
		h = h[len(h)-cfg.MaxHistory:]
	}
	mt.histLen = copy(mt.hist, h)
	mt.histPos = mt.histLen % cfg.MaxHistory
	// The seed history counts as consumed: a freshly created model is
	// dirty relative to a subscriber that has never seen a forecast.
	mt.obsTotal.Store(uint64(len(history)))
	return mt
}

// setEnqueue switches the maintainer to asynchronous re-estimation: when
// the evaluation strategy triggers, fn is called (once — guarded by
// refitPending) instead of refitting inline. fn returns false when the
// refit queue is full; the strategy stays armed and re-triggers.
func (mt *Maintainer) setEnqueue(fn func() bool) { mt.enqueue = fn }

// OnReestimate registers a callback invoked (under the maintainer lock,
// from the flow that installs the refreshed parameters) after each
// re-estimation with the refreshed model.
func (mt *Maintainer) OnReestimate(fn func(*HWT)) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.listeners = append(mt.listeners, fn)
}

// histPush appends an observation to the ring window, allocation-free.
// Caller holds the lock.
func (mt *Maintainer) histPush(y float64) {
	mt.hist[mt.histPos] = y
	mt.histPos = (mt.histPos + 1) % len(mt.hist)
	if mt.histLen < len(mt.hist) {
		mt.histLen++
	}
}

// histOrdered materializes the window oldest-first into dst (grown as
// needed). Caller holds the lock.
func (mt *Maintainer) histOrdered(dst []float64) []float64 {
	dst = dst[:0]
	if mt.histLen < len(mt.hist) {
		return append(dst, mt.hist[:mt.histLen]...)
	}
	dst = append(dst, mt.hist[mt.histPos:]...)
	return append(dst, mt.hist[:mt.histPos]...)
}

// Update consumes a new measurement: a cheap state update, plus a
// parameter re-estimation (or, registry-attached, a refit enqueue) when
// the evaluation strategy demands one.
func (mt *Maintainer) Update(y float64) error {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.updateLocked(y)
}

// UpdateBatch consumes a whole measurement batch under one lock
// acquisition — the registry's hot path, so a batch of n observations
// costs one lock round-trip and n allocation-free state updates.
func (mt *Maintainer) UpdateBatch(ys []float64) error {
	if len(ys) == 0 {
		return nil
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for _, y := range ys {
		if err := mt.updateLocked(y); err != nil {
			return err
		}
	}
	return nil
}

// updateLocked is one observation's state update. Caller holds the lock.
func (mt *Maintainer) updateLocked(y float64) error {
	mt.installPendingLocked()
	pred := mt.model.OneStep()
	mt.model.Update(y)
	mt.histPush(y)
	mt.obsSinceRefit.Add(1)
	mt.obsTotal.Add(1)
	smape := 0.0
	if denom := abs(y) + abs(pred); denom > 0 {
		smape = abs(y-pred) / denom
	}
	if !mt.strategy.Observe(smape) {
		return nil
	}
	if mt.enqueue != nil {
		if mt.refitPending.CompareAndSwap(false, true) {
			if !mt.enqueue() {
				// Queue full: stand down so a later trigger retries.
				mt.refitPending.Store(false)
			}
		}
		return nil
	}
	return mt.reestimateLocked()
}

// installPendingLocked swaps asynchronously estimated parameters into
// the live model: the smoothing state the model accumulated while the
// refit ran is kept, only α/φ/γ change. Caller holds the lock.
func (mt *Maintainer) installPendingLocked() {
	fit := mt.pendingFit.Swap(nil)
	if fit == nil {
		return
	}
	if err := mt.model.SetParams(fit.params); err == nil {
		mt.strategy.Reset()
		mt.reEstims++
		mt.obsSinceRefit.Store(0)
		for _, fn := range mt.listeners {
			fn(mt.model)
		}
	}
	mt.refitPending.Store(false)
}

// refitSnapshot captures everything a background worker needs to refit
// off-lock: the ordered history window and a warm-started fit config.
func (mt *Maintainer) refitSnapshot() (history []float64, periods []int, cfg FitConfig) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.histOrdered(nil), mt.model.periods, mt.refitConfigLocked()
}

// refitConfigLocked builds the warm-started fit configuration. Caller
// holds the lock.
func (mt *Maintainer) refitConfigLocked() FitConfig {
	cfg := mt.fitCfg
	cfg.Start = mt.model.Params()
	if mt.repo != nil {
		if p, ok := mt.repo.Lookup(mt.ctx); ok {
			cfg.Start = p
		}
	}
	return cfg
}

// completeRefit publishes an asynchronous re-estimation result. The
// parameters are installed by the next Update/Forecast (the publish
// itself never takes the maintainer lock, so a refit cannot stall the
// serving path even for the install).
func (mt *Maintainer) completeRefit(params []float64, objective float64) {
	if mt.repo != nil {
		mt.repo.Store(mt.ctx, params, objective)
	}
	mt.pendingFit.Store(&installedFit{params: params})
}

// abortRefit stands a failed asynchronous re-estimation down so the
// strategy can trigger a fresh request.
func (mt *Maintainer) abortRefit() { mt.refitPending.Store(false) }

// reestimateLocked refits parameters synchronously, warm-starting from
// the current parameters or a context match. Caller holds the lock.
func (mt *Maintainer) reestimateLocked() error {
	cfg := mt.refitConfigLocked()
	history := mt.histOrdered(nil)
	fitted, res, err := FitHWT(history, mt.model.periods, cfg)
	if err != nil {
		return fmt.Errorf("forecast: re-estimation failed: %w", err)
	}
	*mt.model = *fitted
	mt.strategy.Reset()
	mt.reEstims++
	mt.obsSinceRefit.Store(0)
	if mt.repo != nil {
		mt.repo.Store(mt.ctx, res.X, res.Value)
	}
	for _, fn := range mt.listeners {
		fn(mt.model)
	}
	return nil
}

// Forecast returns the next h values under the lock. A pending
// asynchronously estimated parameter set is installed first, so
// forecasts see fresh parameters as soon as a refit lands.
func (mt *Maintainer) Forecast(h int) []float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.installPendingLocked()
	return mt.model.Forecast(h)
}

// OneStep returns the one-step-ahead forecast, allocation-free.
func (mt *Maintainer) OneStep() float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.installPendingLocked()
	return mt.model.OneStep()
}

// Reestimations reports how many re-estimations have been installed.
func (mt *Maintainer) Reestimations() int {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.reEstims
}

// Staleness reports the observations consumed since the last installed
// re-estimation — the freshness metric the registry aggregates.
func (mt *Maintainer) Staleness() int64 { return mt.obsSinceRefit.Load() }

// Observations reports the total observations consumed.
func (mt *Maintainer) Observations() uint64 { return mt.obsTotal.Load() }

// Params returns the current model parameters.
func (mt *Maintainer) Params() []float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.model.Params()
}

// SelectModel fits both EGRV and HWT on the training window, compares
// their one-step SMAPE on the evaluation window, and returns the winner
// (paper: "If the EGRV model does not provide accurate results, we fall
// back to the alternative (more robust) HWT-Model").
func SelectModel(train, evalWindow, trainTemp, evalTemp []float64, periodsPerDay int, hwtPeriods []int, fitCfg FitConfig) (Model, string, error) {
	hwt, _, hwtErr := FitHWT(train, hwtPeriods, fitCfg)
	var hwtSMAPE = 1.0
	if hwtErr == nil {
		hwtSMAPE = oneStepSMAPE(hwt, evalWindow)
	}

	var egrvSMAPE = 1.0
	var egrv *EGRV
	if e, err := FitEGRV(train, trainTemp, NewEGRVConfig(periodsPerDay)); err == nil {
		egrv = e
		egrvSMAPE = oneStepSMAPEWithTemp(e, evalWindow, evalTemp)
	}

	switch {
	case egrv != nil && egrvSMAPE <= hwtSMAPE:
		return egrv.AsModel(), "EGRV", nil
	case hwtErr == nil:
		return hwt, "HWT", nil
	default:
		return nil, "", fmt.Errorf("forecast: no model could be fitted: %w", hwtErr)
	}
}

func oneStepSMAPE(m Model, eval []float64) float64 {
	var sum float64
	n := 0
	for _, y := range eval {
		pred := m.OneStep()
		if denom := abs(y) + abs(pred); denom > 0 {
			sum += abs(y-pred) / denom
		}
		m.Update(y)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

func oneStepSMAPEWithTemp(e *EGRV, eval, temps []float64) float64 {
	var sum float64
	n := 0
	for i, y := range eval {
		// The weather service supplies the one-step temperature forecast
		// (taken as the actual temperature here); nil falls back to
		// persistence.
		var tempFc []float64
		if i < len(temps) {
			tempFc = temps[i : i+1]
		}
		preds, err := e.Forecast(1, tempFc)
		if err != nil {
			return 1
		}
		pred := preds[0]
		if denom := abs(y) + abs(pred); denom > 0 {
			sum += abs(y-pred) / denom
		}
		t := 0.0
		if i < len(temps) {
			t = temps[i]
		}
		e.Update(y, t)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
