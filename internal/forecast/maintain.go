package forecast

import (
	"fmt"
	"sync"
)

// EvaluationStrategy decides when a maintained model's parameters need
// re-estimation (paper §5: "we offer different model evaluation
// strategies (e.g., time- or threshold-based)").
type EvaluationStrategy interface {
	// Observe is called after every Update with the symmetric relative
	// error |y−ŷ| / (|y|+|ŷ|) of the one-step forecast for the value
	// just consumed; it returns true when a parameter re-estimation
	// should be triggered.
	Observe(smape float64) bool
	// Reset is called after a re-estimation completed.
	Reset()
}

// TimeBased triggers a re-estimation every Every observations.
type TimeBased struct {
	Every int
	count int
}

// Observe implements EvaluationStrategy.
func (s *TimeBased) Observe(float64) bool {
	s.count++
	return s.Every > 0 && s.count >= s.Every
}

// Reset implements EvaluationStrategy.
func (s *TimeBased) Reset() { s.count = 0 }

// ThresholdBased triggers a re-estimation when the rolling SMAPE over
// Window observations exceeds Threshold.
type ThresholdBased struct {
	Threshold float64
	Window    int

	errs []float64
	pos  int
	full bool
}

// Observe implements EvaluationStrategy.
func (s *ThresholdBased) Observe(smape float64) bool {
	if s.Window <= 0 {
		s.Window = 48
	}
	if s.errs == nil {
		s.errs = make([]float64, s.Window)
	}
	s.errs[s.pos] = smape
	s.pos = (s.pos + 1) % s.Window
	if s.pos == 0 {
		s.full = true
	}
	if !s.full {
		return false
	}
	var sum float64
	for _, e := range s.errs {
		sum += e
	}
	return sum/float64(s.Window) > s.Threshold
}

// Reset implements EvaluationStrategy.
func (s *ThresholdBased) Reset() {
	s.pos, s.full = 0, false
	for i := range s.errs {
		s.errs[i] = 0
	}
}

// Maintainer wraps an HWT model with continuous maintenance: every new
// measurement updates the smoothing state (cheap), an evaluation strategy
// watches the one-step error, and when triggered the parameters are
// re-estimated — warm-started from the current parameters and the context
// repository (paper: "the model adaption exploits the context knowledge
// of previous model estimations in order to speed up this time-consuming
// process").
type Maintainer struct {
	mu        sync.Mutex
	model     *HWT
	history   []float64
	maxHist   int
	strategy  EvaluationStrategy
	fitCfg    FitConfig
	repo      *ContextRepository // optional
	ctx       Context
	reEstims  int
	listeners []func(*HWT)
}

// MaintainerConfig assembles a Maintainer.
type MaintainerConfig struct {
	Strategy EvaluationStrategy // nil: TimeBased every 2 longest periods
	FitCfg   FitConfig          // estimation budget for re-estimations
	Repo     *ContextRepository // optional parameter repository
	Ctx      Context            // context key for the repository
	// MaxHistory bounds the retained history window (default 4 longest
	// periods).
	MaxHistory int
}

// NewMaintainer wraps a fitted model. history is the data the model was
// fitted on (retained, windowed, for re-estimation).
func NewMaintainer(model *HWT, history []float64, cfg MaintainerConfig) *Maintainer {
	longest := model.periods[len(model.periods)-1]
	if cfg.Strategy == nil {
		cfg.Strategy = &TimeBased{Every: 2 * longest}
	}
	if cfg.MaxHistory <= 0 {
		cfg.MaxHistory = 4 * longest
	}
	h := append([]float64(nil), history...)
	if len(h) > cfg.MaxHistory {
		h = h[len(h)-cfg.MaxHistory:]
	}
	return &Maintainer{
		model:    model,
		history:  h,
		maxHist:  cfg.MaxHistory,
		strategy: cfg.Strategy,
		fitCfg:   cfg.FitCfg,
		repo:     cfg.Repo,
		ctx:      cfg.Ctx,
	}
}

// OnReestimate registers a callback invoked (synchronously, in Update)
// after each re-estimation with the refreshed model.
func (mt *Maintainer) OnReestimate(fn func(*HWT)) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.listeners = append(mt.listeners, fn)
}

// Update consumes a new measurement: a cheap state update, plus a
// parameter re-estimation when the evaluation strategy demands one.
func (mt *Maintainer) Update(y float64) error {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	pred := mt.model.Forecast(1)[0]
	mt.model.Update(y)
	mt.history = append(mt.history, y)
	if len(mt.history) > mt.maxHist {
		mt.history = mt.history[len(mt.history)-mt.maxHist:]
	}
	smape := 0.0
	if denom := abs(y) + abs(pred); denom > 0 {
		smape = abs(y-pred) / denom
	}
	if !mt.strategy.Observe(smape) {
		return nil
	}
	return mt.reestimate()
}

// reestimate refits parameters, warm-starting from the current parameters
// or a context match. Caller holds the lock.
func (mt *Maintainer) reestimate() error {
	cfg := mt.fitCfg
	cfg.Start = mt.model.Params()
	if mt.repo != nil {
		if p, ok := mt.repo.Lookup(mt.ctx); ok {
			cfg.Start = p
		}
	}
	fitted, res, err := FitHWT(mt.history, mt.model.periods, cfg)
	if err != nil {
		return fmt.Errorf("forecast: re-estimation failed: %w", err)
	}
	*mt.model = *fitted
	mt.strategy.Reset()
	mt.reEstims++
	if mt.repo != nil {
		mt.repo.Store(mt.ctx, res.X, res.Value)
	}
	for _, fn := range mt.listeners {
		fn(mt.model)
	}
	return nil
}

// Forecast returns the next h values under the lock.
func (mt *Maintainer) Forecast(h int) []float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.model.Forecast(h)
}

// Reestimations reports how many re-estimations have run.
func (mt *Maintainer) Reestimations() int {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.reEstims
}

// Params returns the current model parameters.
func (mt *Maintainer) Params() []float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.model.Params()
}

// SelectModel fits both EGRV and HWT on the training window, compares
// their one-step SMAPE on the evaluation window, and returns the winner
// (paper: "If the EGRV model does not provide accurate results, we fall
// back to the alternative (more robust) HWT-Model").
func SelectModel(train, evalWindow, trainTemp, evalTemp []float64, periodsPerDay int, hwtPeriods []int, fitCfg FitConfig) (Model, string, error) {
	hwt, _, hwtErr := FitHWT(train, hwtPeriods, fitCfg)
	var hwtSMAPE = 1.0
	if hwtErr == nil {
		hwtSMAPE = oneStepSMAPE(hwt, evalWindow)
	}

	var egrvSMAPE = 1.0
	var egrv *EGRV
	if e, err := FitEGRV(train, trainTemp, NewEGRVConfig(periodsPerDay)); err == nil {
		egrv = e
		em := e.AsModel()
		egrvSMAPE = oneStepSMAPEWithTemp(e, evalWindow, evalTemp)
		_ = em
	}

	switch {
	case egrv != nil && egrvSMAPE <= hwtSMAPE:
		return egrv.AsModel(), "EGRV", nil
	case hwtErr == nil:
		return hwt, "HWT", nil
	default:
		return nil, "", fmt.Errorf("forecast: no model could be fitted: %w", hwtErr)
	}
}

func oneStepSMAPE(m Model, eval []float64) float64 {
	var sum float64
	n := 0
	for _, y := range eval {
		pred := m.Forecast(1)[0]
		if denom := abs(y) + abs(pred); denom > 0 {
			sum += abs(y-pred) / denom
		}
		m.Update(y)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

func oneStepSMAPEWithTemp(e *EGRV, eval, temps []float64) float64 {
	var sum float64
	n := 0
	for i, y := range eval {
		// The weather service supplies the one-step temperature forecast
		// (taken as the actual temperature here); nil falls back to
		// persistence.
		var tempFc []float64
		if i < len(temps) {
			tempFc = temps[i : i+1]
		}
		preds, err := e.Forecast(1, tempFc)
		if err != nil {
			return 1
		}
		pred := preds[0]
		if denom := abs(y) + abs(pred); denom > 0 {
			sum += abs(y-pred) / denom
		}
		t := 0.0
		if i < len(temps) {
			t = temps[i]
		}
		e.Update(y, t)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
