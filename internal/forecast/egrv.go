package forecast

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mirabel/internal/linalg"
)

// EGRVConfig parameterizes the EGRV multi-equation model.
type EGRVConfig struct {
	// PeriodsPerDay is the number of intra-day periods and therefore the
	// number of independent equations (48 for half-hourly series).
	PeriodsPerDay int
	// Weekday0 is the weekday of day index 0 of the series (defaults to
	// the workload epoch 2010-01-01, a Friday).
	Weekday0 time.Weekday
	// Ridge is the regularization of the per-equation least squares
	// solve; calendar dummies can be collinear on short histories
	// (default 1e-6).
	Ridge float64
	// Parallel enables the paper's parallelized model creation: the
	// series is horizontally partitioned by intra-day period and the
	// independent equations are estimated concurrently (default true via
	// NewEGRVConfig; the zero value estimates sequentially).
	Parallel bool
	// Holidays marks day indexes treated as holidays.
	Holidays map[int]bool
}

// NewEGRVConfig returns the default configuration for the given number of
// intra-day periods.
func NewEGRVConfig(periodsPerDay int) EGRVConfig {
	return EGRVConfig{
		PeriodsPerDay: periodsPerDay,
		Weekday0:      time.Friday,
		Ridge:         1e-6,
		Parallel:      true,
	}
}

// egrvRegressors is the number of regressors per equation: intercept,
// same-period load of the previous day, same-period load of the previous
// week, temperature, squared temperature, six weekday dummies, holiday.
const egrvRegressors = 12

// EGRV is the Engle–Granger–Ramanathan–Vahid-Araghi multi-equation
// short-run load forecast model: one linear regression per intra-day
// period, combining lagged loads, weather and calendar information
// (paper §5: "a multi-equation energy demand forecast model that uses an
// individual model for each intra-day period").
type EGRV struct {
	cfg    EGRVConfig
	coeffs [][]float64 // [period][egrvRegressors]

	// Rolling state for forecasting and maintenance.
	history []float64 // observed loads, day-major
	temp    []float64 // aligned temperatures
}

// FitEGRV estimates the model on aligned demand and temperature slices
// (both day-major with cfg.PeriodsPerDay values per day). At least 15
// full days are required (7 days of lags plus a week of training rows).
func FitEGRV(demand, temp []float64, cfg EGRVConfig) (*EGRV, error) {
	if cfg.PeriodsPerDay <= 0 {
		return nil, fmt.Errorf("forecast: EGRV periods per day %d", cfg.PeriodsPerDay)
	}
	if len(demand) != len(temp) {
		return nil, fmt.Errorf("forecast: demand length %d != temperature length %d", len(demand), len(temp))
	}
	if cfg.Ridge <= 0 {
		cfg.Ridge = 1e-6
	}
	days := len(demand) / cfg.PeriodsPerDay
	if days < 15 {
		return nil, fmt.Errorf("forecast: EGRV needs ≥ 15 days, got %d", days)
	}
	m := &EGRV{
		cfg:     cfg,
		coeffs:  make([][]float64, cfg.PeriodsPerDay),
		history: append([]float64(nil), demand...),
		temp:    append([]float64(nil), temp...),
	}

	fitOne := func(p int) error {
		rows := make([][]float64, 0, days-7)
		b := make([]float64, 0, days-7)
		for d := 7; d < days; d++ {
			rows = append(rows, m.regressors(d, p, demand, temp))
			b = append(b, demand[d*cfg.PeriodsPerDay+p])
		}
		a, err := linalg.FromRows(rows)
		if err != nil {
			return err
		}
		x, err := linalg.RidgeLeastSquares(a, b, cfg.Ridge)
		if err != nil {
			return fmt.Errorf("forecast: EGRV equation %d: %w", p, err)
		}
		m.coeffs[p] = x
		return nil
	}

	if !cfg.Parallel {
		for p := 0; p < cfg.PeriodsPerDay; p++ {
			if err := fitOne(p); err != nil {
				return nil, err
			}
		}
		return m, nil
	}

	// Parallelized model creation: the equations are independent, so the
	// horizontal partitions estimate concurrently.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for p := 0; p < cfg.PeriodsPerDay; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fitOne(p); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// regressors builds the feature vector of day d, period p against the
// given demand/temperature history.
func (m *EGRV) regressors(d, p int, demand, temp []float64) []float64 {
	ppd := m.cfg.PeriodsPerDay
	x := make([]float64, egrvRegressors)
	x[0] = 1
	x[1] = demand[(d-1)*ppd+p]
	x[2] = demand[(d-7)*ppd+p]
	t := temp[d*ppd+p]
	x[3] = t
	x[4] = t * t / 100
	wd := (int(m.cfg.Weekday0) + d) % 7
	if wd > 0 { // Sunday is the base level
		x[4+wd] = 1
	}
	if m.cfg.Holidays[d] {
		x[11] = 1
	}
	return x
}

// Name identifies the model type.
func (m *EGRV) Name() string { return fmt.Sprintf("EGRV(%d)", m.cfg.PeriodsPerDay) }

// Update appends one observed load and its temperature to the rolling
// history (model maintenance shifts the lagged inputs; coefficients stay
// until re-estimation).
func (m *EGRV) Update(load, temperature float64) {
	m.history = append(m.history, load)
	m.temp = append(m.temp, temperature)
}

// Forecast predicts the next h values after the current history.
// futureTemp optionally supplies temperature forecasts for those h slots;
// nil uses temperature persistence (yesterday's value at the same
// period). Forecasts feed back as lagged inputs for horizons beyond one
// day.
func (m *EGRV) Forecast(h int, futureTemp []float64) ([]float64, error) {
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	if futureTemp != nil && len(futureTemp) < h {
		return nil, fmt.Errorf("forecast: %d temperature forecasts for horizon %d", len(futureTemp), h)
	}
	ppd := m.cfg.PeriodsPerDay
	// Work on extended copies so recursive lags can read forecasts.
	demand := append([]float64(nil), m.history...)
	temp := append([]float64(nil), m.temp...)
	start := len(demand)
	out := make([]float64, 0, h)
	for k := 0; k < h; k++ {
		idx := start + k
		d, p := idx/ppd, idx%ppd
		var tk float64
		if futureTemp != nil {
			tk = futureTemp[k]
		} else {
			tk = temp[idx-ppd] // persistence
		}
		temp = append(temp, tk)
		x := m.regressors(d, p, demand, temp)
		y := linalg.Dot(m.coeffs[p], x)
		demand = append(demand, y)
		out = append(out, y)
	}
	return out, nil
}

// Coefficients returns the per-period coefficient vectors (read-only
// view for diagnostics).
func (m *EGRV) Coefficients() [][]float64 { return m.coeffs }

// egrvAdapter exposes EGRV through the univariate Model interface using
// temperature persistence, so the automatic model selection can compare
// EGRV and HWT uniformly.
type egrvAdapter struct{ m *EGRV }

func (a egrvAdapter) Name() string { return a.m.Name() }
func (a egrvAdapter) Update(y float64) {
	// Persist yesterday's temperature for the same period.
	idx := len(a.m.history)
	t := 0.0
	if idx >= a.m.cfg.PeriodsPerDay {
		t = a.m.temp[idx-a.m.cfg.PeriodsPerDay]
	} else if len(a.m.temp) > 0 {
		t = a.m.temp[len(a.m.temp)-1]
	}
	a.m.Update(y, t)
}
func (a egrvAdapter) Forecast(h int) []float64 {
	out, err := a.m.Forecast(h, nil)
	if err != nil {
		return make([]float64, h)
	}
	return out
}

// OneStep implements Model. The multi-equation forecast inherently
// rebuilds its lagged-input window, so unlike HWT this is not
// allocation-free; EGRV series are not kept on the registry hot path.
func (a egrvAdapter) OneStep() float64 {
	out, err := a.m.Forecast(1, nil)
	if err != nil {
		return 0
	}
	return out[0]
}

// AsModel wraps the EGRV in the univariate Model interface (temperature
// persistence stands in for a weather service).
func (m *EGRV) AsModel() Model { return egrvAdapter{m} }
