package forecast

import (
	"fmt"

	"mirabel/internal/timeseries"
)

// HierNode is one node of the EDMS hierarchy carrying a demand/supply
// series (leaves: prosumers; inner nodes: the sums over their subtrees).
type HierNode struct {
	Name     string
	Children []*HierNode
	Series   *timeseries.Series
}

// Leaf reports whether the node has no children.
func (n *HierNode) Leaf() bool { return len(n.Children) == 0 }

// AdvisorConfig constrains the model-placement search (paper §5,
// Hierarchical Forecasting: "an advisor component that computes for a
// given hierarchical structure a configuration of forecast models
// according to specified accuracy and runtime constraints").
type AdvisorConfig struct {
	// MaxSMAPE is the per-node accuracy constraint for forecasts derived
	// by disaggregating an ancestor model.
	MaxSMAPE float64
	// Periods are the HWT seasonal periods used for the probe models.
	Periods []int
	// Horizon is the forecast horizon evaluated (default: shortest
	// period).
	Horizon int
	// EvalFrac is the tail fraction held out for evaluation (default
	// 0.25).
	EvalFrac float64
}

// Placement is the advisor's result: which nodes host their own forecast
// model. Nodes without a model obtain forecasts by disaggregating the
// nearest modeled ancestor with historical share weights.
type Placement struct {
	Models map[string]bool
	// SMAPE records the evaluated error per node under the placement.
	SMAPE map[string]float64
}

// NumModels returns how many models the placement requires.
func (p Placement) NumModels() int {
	n := 0
	for _, has := range p.Models {
		if has {
			n++
		}
	}
	return n
}

// Advise chooses a forecast model configuration for the hierarchy: it
// starts with a single model at the root (cheapest) and pushes models
// down every subtree whose disaggregated accuracy violates the
// constraint. The result is a placement where every node either hosts a
// model or receives disaggregated forecasts within the accuracy bound —
// with as few models as the greedy descent finds necessary.
func Advise(root *HierNode, cfg AdvisorConfig) (Placement, error) {
	if cfg.MaxSMAPE <= 0 {
		return Placement{}, fmt.Errorf("forecast: accuracy constraint must be positive, got %g", cfg.MaxSMAPE)
	}
	if len(cfg.Periods) == 0 {
		return Placement{}, fmt.Errorf("forecast: advisor needs HWT periods")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = cfg.Periods[0]
	}
	if cfg.EvalFrac <= 0 || cfg.EvalFrac >= 1 {
		cfg.EvalFrac = 0.25
	}
	p := Placement{Models: make(map[string]bool), SMAPE: make(map[string]float64)}
	if err := advise(root, cfg, &p); err != nil {
		return Placement{}, err
	}
	return p, nil
}

// advise places a model at node n, then checks each child's error under
// disaggregation from n; children violating the constraint recurse.
func advise(n *HierNode, cfg AdvisorConfig, p *Placement) error {
	p.Models[n.Name] = true
	own, err := nodeModelSMAPE(n, cfg)
	if err != nil {
		return fmt.Errorf("forecast: advisor at %q: %w", n.Name, err)
	}
	p.SMAPE[n.Name] = own
	for _, c := range n.Children {
		smape, err := disaggSMAPE(n, c, cfg)
		if err != nil {
			return fmt.Errorf("forecast: advisor at %q: %w", c.Name, err)
		}
		if smape <= cfg.MaxSMAPE {
			// Cheap path: child served by the parent model.
			markServed(c, smape, p)
			continue
		}
		if err := advise(c, cfg, p); err != nil {
			return err
		}
	}
	return nil
}

// markServed records that c (and, transitively, its subtree) is served by
// an ancestor model; subtree nodes inherit the measured error bound.
func markServed(c *HierNode, smape float64, p *Placement) {
	p.Models[c.Name] = false
	p.SMAPE[c.Name] = smape
	for _, g := range c.Children {
		markServed(g, smape, p)
	}
}

// probeModel fits a quick fixed-parameter HWT on the node's training
// window (the advisor needs relative accuracy, not a full estimation).
func probeModel(s *timeseries.Series, cfg AdvisorConfig) (*HWT, []float64, error) {
	vals := s.Values()
	split := len(vals) - int(float64(len(vals))*cfg.EvalFrac)
	m, err := NewHWT(cfg.Periods...)
	if err != nil {
		return nil, nil, err
	}
	if err := m.Init(vals[:split]); err != nil {
		return nil, nil, err
	}
	return m, vals[split:], nil
}

// nodeModelSMAPE evaluates an own model at the node.
func nodeModelSMAPE(n *HierNode, cfg AdvisorConfig) (float64, error) {
	m, eval, err := probeModel(n.Series, cfg)
	if err != nil {
		return 0, err
	}
	return HorizonSMAPE(m, eval, cfg.Horizon)
}

// disaggSMAPE evaluates the child's forecasts when derived from the
// parent's model by share-weight disaggregation ("forecast models can be
// used to aggregate or disaggregate forecast values without the need for
// individual models at each system node").
func disaggSMAPE(parent, child *HierNode, cfg AdvisorConfig) (float64, error) {
	pm, pEval, err := probeModel(parent.Series, cfg)
	if err != nil {
		return 0, err
	}
	cVals := child.Series.Values()
	if len(cVals) != parent.Series.Len() {
		return 0, fmt.Errorf("series length mismatch: parent %d, child %d", parent.Series.Len(), len(cVals))
	}
	split := len(cVals) - len(pEval)

	// Share weight: the child's fraction of the parent total per season
	// position of the shortest period (captures intra-day share shape).
	period := cfg.Periods[0]
	childSum := make([]float64, period)
	parentSum := make([]float64, period)
	pVals := parent.Series.Values()
	for i := 0; i < split; i++ {
		childSum[i%period] += cVals[i]
		parentSum[i%period] += pVals[i]
	}
	share := make([]float64, period)
	for k := 0; k < period; k++ {
		if parentSum[k] != 0 {
			share[k] = childSum[k] / parentSum[k]
		}
	}

	h := cfg.Horizon
	var smape float64
	cnt := 0
	for i := 0; i+h <= len(pEval); i++ {
		pf := pm.Forecast(h)[h-1]
		slot := split + i + h - 1
		pred := pf * share[slot%period]
		actual := cVals[slot]
		if denom := abs(actual) + abs(pred); denom > 0 {
			smape += abs(actual-pred) / denom
		}
		pm.Update(pEval[i])
		cnt++
	}
	if cnt == 0 {
		return 0, fmt.Errorf("evaluation window too short for horizon %d", h)
	}
	return smape / float64(cnt), nil
}

// SumChildren builds an inner node's series as the sum of its children
// (utility for constructing consistent hierarchies).
func SumChildren(name string, children ...*HierNode) (*HierNode, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("forecast: inner node %q needs children", name)
	}
	sum := children[0].Series.Clone()
	for _, c := range children[1:] {
		s, err := sum.Add(c.Series)
		if err != nil {
			return nil, err
		}
		sum = s
	}
	return &HierNode{Name: name, Children: children, Series: sum}, nil
}
