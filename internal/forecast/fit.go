package forecast

import (
	"errors"
	"fmt"

	"mirabel/internal/optimize"
	"mirabel/internal/timeseries"
)

// FitConfig controls HWT parameter estimation.
type FitConfig struct {
	// Estimator is the global search strategy (default
	// RandomRestartNelderMead, the paper's choice).
	Estimator optimize.Estimator
	// Options bound the estimation run.
	Options optimize.Options
	// HoldoutFrac is the tail fraction of the history used for the
	// one-step-ahead error objective (default 0.25).
	HoldoutFrac float64
	// Start optionally warm-starts the search (context-aware adaptation
	// passes the parameters of a previously estimated model here).
	Start []float64
}

// FitHWT estimates HWT smoothing parameters on the history by minimizing
// the one-step-ahead SMAPE over the holdout tail. It returns the fitted
// model (initialized and replayed over the full history, ready to
// Update/Forecast) and the estimator result with its convergence trace.
func FitHWT(history []float64, periods []int, cfg FitConfig) (*HWT, optimize.Result, error) {
	proto, err := NewHWT(periods...)
	if err != nil {
		return nil, optimize.Result{}, err
	}
	longest := periods[len(periods)-1]
	if len(history) < longest+longest/2 {
		return nil, optimize.Result{}, fmt.Errorf("forecast: need ≥ %d observations to fit HWT%v, got %d",
			longest+longest/2, periods, len(history))
	}
	if cfg.HoldoutFrac <= 0 || cfg.HoldoutFrac >= 1 {
		cfg.HoldoutFrac = 0.25
	}
	est := cfg.Estimator
	if est == nil {
		est = &optimize.RandomRestartNelderMead{}
	}

	split := len(history) - int(float64(len(history))*cfg.HoldoutFrac)
	if split < longest {
		split = longest
	}

	objective := func(p []float64) float64 {
		return hwtObjective(proto, history, split, p)
	}
	bounds := optimize.UnitBounds(proto.NumParams())

	// Warm start via the local component of the estimator where
	// supported.
	switch e := est.(type) {
	case *optimize.NelderMead:
		if cfg.Start != nil {
			e.Start = cfg.Start
		}
	case *optimize.RandomRestartNelderMead:
		if cfg.Start != nil {
			e.Local.Start = cfg.Start
		}
	}

	res := est.Minimize(objective, bounds, cfg.Options)
	if res.X == nil {
		return nil, res, errors.New("forecast: estimation produced no result")
	}

	fitted, err := NewHWT(periods...)
	if err != nil {
		return nil, res, err
	}
	if err := fitted.SetParams(res.X); err != nil {
		return nil, res, err
	}
	if err := fitted.Init(history); err != nil {
		return nil, res, err
	}
	return fitted, res, nil
}

// hwtObjective computes the one-step-ahead SMAPE of an HWT with
// parameters p: the model is seeded on history[:split] and evaluated
// while replaying history[split:].
func hwtObjective(proto *HWT, history []float64, split int, p []float64) float64 {
	m := proto.clone()
	if err := m.SetParams(p); err != nil {
		return 1 // worst SMAPE
	}
	if err := m.Init(history[:split]); err != nil {
		return 1
	}
	var smape float64
	n := 0
	for _, y := range history[split:] {
		pred := m.Forecast(1)[0]
		if denom := abs(y) + abs(pred); denom > 0 {
			smape += abs(y-pred) / denom
		}
		m.Update(y)
		n++
	}
	if n == 0 {
		return 1
	}
	return smape / float64(n)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// HorizonSMAPE evaluates a fitted model's accuracy at a fixed forecast
// horizon: at each step through the evaluation window it forecasts h
// slots ahead and compares the h-th forecast with the actual value
// (paper Figure 4b measures exactly this as the horizon grows).
func HorizonSMAPE(m Model, eval []float64, h int) (float64, error) {
	if h <= 0 {
		return 0, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	if len(eval) <= h {
		return 0, fmt.Errorf("forecast: evaluation window %d shorter than horizon %d", len(eval), h)
	}
	var smape float64
	n := 0
	for i := 0; i+h <= len(eval); i++ {
		pred := m.Forecast(h)[h-1]
		actual := eval[i+h-1]
		if denom := abs(actual) + abs(pred); denom > 0 {
			smape += abs(actual-pred) / denom
		}
		m.Update(eval[i])
		n++
	}
	return smape / float64(n), nil
}

// FitHWTSeries is a convenience wrapper fitting on a Series.
func FitHWTSeries(s *timeseries.Series, periods []int, cfg FitConfig) (*HWT, optimize.Result, error) {
	return FitHWT(s.Values(), periods, cfg)
}
