package forecast

import (
	"testing"
)

// stubModel returns a programmable forecast.
type stubModel struct{ fc []float64 }

func (s *stubModel) Forecast(h int) []float64 {
	out := make([]float64, h)
	copy(out, s.fc)
	return out
}

func TestHubSubscribeValidation(t *testing.T) {
	h := NewHub(&stubModel{})
	if _, _, err := h.Subscribe(0, 0.1); err == nil {
		t.Error("zero horizon should error")
	}
	if _, _, err := h.Subscribe(4, -1); err == nil {
		t.Error("negative threshold should error")
	}
}

func TestHubNotifiesOnFirstPublish(t *testing.T) {
	m := &stubModel{fc: []float64{100, 100}}
	h := NewHub(m)
	_, ch, err := h.Subscribe(2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sent := h.Publish(); sent != 1 {
		t.Fatalf("sent = %d", sent)
	}
	n := <-ch
	if n.Forecast[0] != 100 || n.MaxRelChange != 1 {
		t.Errorf("notification = %+v", n)
	}
}

func TestHubSuppressesInsignificantChanges(t *testing.T) {
	m := &stubModel{fc: []float64{100, 100}}
	h := NewHub(m)
	_, ch, _ := h.Subscribe(2, 0.05)
	h.Publish()
	<-ch
	m.fc = []float64{102, 101} // 2% change, below 5% threshold
	if sent := h.Publish(); sent != 0 {
		t.Errorf("sent = %d for insignificant change", sent)
	}
	m.fc = []float64{110, 100} // 10% change in slot 0
	if sent := h.Publish(); sent != 1 {
		t.Errorf("sent = %d for significant change", sent)
	}
	n := <-ch
	if n.MaxRelChange < 0.09 {
		t.Errorf("MaxRelChange = %g", n.MaxRelChange)
	}
}

func TestHubBaselineOnlyMovesOnNotify(t *testing.T) {
	// Repeated sub-threshold drifts must eventually trigger once they
	// accumulate past the threshold versus the LAST DELIVERED forecast.
	m := &stubModel{fc: []float64{100}}
	h := NewHub(m)
	_, ch, _ := h.Subscribe(1, 0.10)
	h.Publish()
	<-ch
	m.fc = []float64{104}
	h.Publish() // 4%: suppressed
	m.fc = []float64{108}
	h.Publish() // 8% vs 100: suppressed
	m.fc = []float64{111}
	if sent := h.Publish(); sent != 1 { // 11% vs 100: notify
		t.Errorf("accumulated drift did not notify (sent=%d)", sent)
	}
	n := <-ch
	if n.Forecast[0] != 111 {
		t.Errorf("forecast = %v", n.Forecast)
	}
}

func TestHubSlowSubscriberGetsLatest(t *testing.T) {
	m := &stubModel{fc: []float64{100}}
	h := NewHub(m)
	_, ch, _ := h.Subscribe(1, 0.01)
	h.Publish() // nobody reading yet
	m.fc = []float64{200}
	h.Publish() // must replace, not block
	n := <-ch
	if n.Forecast[0] != 200 {
		t.Errorf("stale notification delivered: %v", n.Forecast)
	}
}

func TestHubUnsubscribe(t *testing.T) {
	m := &stubModel{fc: []float64{1}}
	h := NewHub(m)
	id, ch, _ := h.Subscribe(1, 0.5)
	h.Unsubscribe(id)
	if _, open := <-ch; open {
		t.Error("channel not closed on unsubscribe")
	}
	if h.NumSubscribers() != 0 {
		t.Error("subscriber count not zero")
	}
	if sent := h.Publish(); sent != 0 {
		t.Error("published to unsubscribed query")
	}
}

func TestHubWithMaintainerEndToEnd(t *testing.T) {
	// The real wiring: a Maintainer feeds measurements, the Hub decides
	// whether the scheduler needs to re-plan — the paper's
	// publish-subscribe forecast query loop.
	history := synthSeasonal(336 * 2)
	m, _, err := FitHWT(history, []int{48}, FitConfig{Options: optimizeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMaintainer(m, history, MaintainerConfig{Strategy: &TimeBased{Every: 1 << 30}})
	hub := NewHub(mt)
	_, ch, err := hub.Subscribe(48, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	hub.Publish()
	<-ch // initial delivery

	// In-distribution continuation: no notification.
	cont := synthSeasonal(336*2 + 48)[336*2:]
	for _, y := range cont {
		if err := mt.Update(y); err != nil {
			t.Fatal(err)
		}
	}
	if sent := hub.Publish(); sent != 0 {
		t.Errorf("notified on in-distribution data (%d)", sent)
	}

	// Structural break: the forecast moves; the subscriber hears.
	for i := 0; i < 96; i++ {
		if err := mt.Update(40); err != nil {
			t.Fatal(err)
		}
	}
	if sent := hub.Publish(); sent != 1 {
		t.Errorf("no notification after a structural break (%d)", sent)
	}
}

func TestHubMultipleSubscribersIndependent(t *testing.T) {
	m := &stubModel{fc: []float64{100}}
	h := NewHub(m)
	_, strict, _ := h.Subscribe(1, 0.01)
	_, lax, _ := h.Subscribe(1, 0.50)
	h.Publish()
	<-strict
	<-lax
	m.fc = []float64{110} // 10%
	if sent := h.Publish(); sent != 1 {
		t.Errorf("sent = %d, want only the strict subscriber", sent)
	}
	select {
	case <-strict:
	default:
		t.Error("strict subscriber missed notification")
	}
	select {
	case <-lax:
		t.Error("lax subscriber notified below its threshold")
	default:
	}
}
