package forecast

import (
	"fmt"
	"testing"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

func BenchmarkHWTOneStep(b *testing.B) {
	m, err := NewHWT(48)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 96; i++ {
		m.Update(float64(i % 48))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.OneStep()
	}
}

func BenchmarkMaintainerUpdate(b *testing.B) {
	m, err := NewHWT(48)
	if err != nil {
		b.Fatal(err)
	}
	hist := make([]float64, 96)
	if err := m.Init(hist); err != nil {
		b.Fatal(err)
	}
	mt := NewMaintainer(m, hist, MaintainerConfig{Strategy: &TimeBased{}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mt.Update(float64(i % 7))
	}
}

func BenchmarkRegistryUpdateBatch(b *testing.B) {
	cfg := RegistryConfig{
		Periods:     []int{24},
		NewStrategy: func() EvaluationStrategy { return &TimeBased{} },
		SyncRefit:   true,
	}
	reg, err := NewRegistry(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()

	// 64 series x 4 observations per batch — the ingest-drain shape.
	const nSeries, perSeries = 64, 4
	batch := make([]store.Measurement, 0, nSeries*perSeries)
	for s := 0; s < nSeries; s++ {
		actor := fmt.Sprintf("a%03d", s)
		for i := 0; i < perSeries; i++ {
			batch = append(batch, store.Measurement{
				Actor: actor, EnergyType: "elec", Slot: flexoffer.Time(i), KWh: 5,
			})
		}
	}
	for i := 0; i < 12; i++ {
		reg.UpdateMeasurements(batch) // past warm-up for every series
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.UpdateMeasurements(batch)
	}
}
