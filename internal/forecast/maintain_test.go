package forecast

import (
	"math"
	"testing"

	"mirabel/internal/optimize"
)

func optimizeOpts() optimize.Options {
	return optimize.Options{MaxEvaluations: 150, Seed: 7}
}

func TestTimeBasedStrategy(t *testing.T) {
	s := &TimeBased{Every: 3}
	if s.Observe(0.01) || s.Observe(0.01) {
		t.Error("triggered too early")
	}
	if !s.Observe(0.01) {
		t.Error("did not trigger at Every")
	}
	s.Reset()
	if s.Observe(0.01) {
		t.Error("triggered right after reset")
	}
}

func TestThresholdBasedStrategy(t *testing.T) {
	s := &ThresholdBased{Threshold: 0.2, Window: 4}
	// Accurate observations: never triggers.
	for i := 0; i < 10; i++ {
		if s.Observe(0.05) {
			t.Fatal("triggered on accurate forecasts")
		}
	}
	// Large errors fill the window and trigger.
	triggered := false
	for i := 0; i < 8; i++ {
		if s.Observe(0.4) {
			triggered = true
			break
		}
	}
	if !triggered {
		t.Error("did not trigger on large errors")
	}
}

func TestMaintainerReestimatesOnSchedule(t *testing.T) {
	history := synthSeasonal(336 * 2)
	m, _, err := FitHWT(history, []int{48}, FitConfig{Options: optimizeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMaintainer(m, history, MaintainerConfig{
		Strategy: &TimeBased{Every: 50},
		FitCfg:   FitConfig{Options: optimizeOpts()},
	})
	var cbCount int
	mt.OnReestimate(func(*HWT) { cbCount++ })
	cont := synthSeasonal(336*2 + 120)[336*2:]
	for _, y := range cont {
		if err := mt.Update(y); err != nil {
			t.Fatal(err)
		}
	}
	if got := mt.Reestimations(); got != 2 {
		t.Errorf("re-estimations = %d, want 2 (120 updates / 50)", got)
	}
	if cbCount != 2 {
		t.Errorf("callbacks = %d", cbCount)
	}
	if fc := mt.Forecast(4); len(fc) != 4 {
		t.Errorf("forecast len = %d", len(fc))
	}
}

func TestMaintainerKeepsAccuracyUnderDrift(t *testing.T) {
	// The series doubles its amplitude halfway: a threshold-based
	// maintainer must re-estimate and recover.
	base := synthSeasonal(336 * 2)
	m, _, err := FitHWT(base, []int{48}, FitConfig{Options: optimizeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMaintainer(m, base, MaintainerConfig{
		Strategy: &ThresholdBased{Threshold: 0.05, Window: 48},
		FitCfg:   FitConfig{Options: optimizeOpts()},
	})
	for i := 0; i < 336; i++ {
		// Structural break: the level jumps by 60% (e.g. a new industrial
		// consumer joined the balance group).
		drifted := 160 + 10*math.Sin(2*math.Pi*float64(i%48)/48)
		if err := mt.Update(drifted); err != nil {
			t.Fatal(err)
		}
	}
	if mt.Reestimations() == 0 {
		t.Error("no re-estimation despite drift")
	}
}

func TestMaintainerUsesContextRepository(t *testing.T) {
	repo := NewContextRepository()
	ctx := Context{EnergyType: "demand", Season: 0, DayType: 0}
	history := synthSeasonal(336 * 2)
	m, _, err := FitHWT(history, []int{48}, FitConfig{Options: optimizeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMaintainer(m, history, MaintainerConfig{
		Strategy: &TimeBased{Every: 30},
		FitCfg:   FitConfig{Options: optimizeOpts()},
		Repo:     repo,
		Ctx:      ctx,
	})
	cont := synthSeasonal(336*2 + 40)[336*2:]
	for _, y := range cont {
		if err := mt.Update(y); err != nil {
			t.Fatal(err)
		}
	}
	if repo.Len() == 0 {
		t.Error("re-estimation did not store parameters in the repository")
	}
	if p, ok := repo.Lookup(ctx); !ok || len(p) != 3 {
		t.Errorf("Lookup = %v, %v", p, ok)
	}
}

func TestContextRepositoryFallbacks(t *testing.T) {
	repo := NewContextRepository()
	if _, ok := repo.Lookup(Context{}); ok {
		t.Error("empty repository returned a case")
	}
	repo.Store(Context{EnergyType: "demand", Season: 1}, []float64{0.1, 0.2, 0.3}, 0.05)
	repo.Store(Context{EnergyType: "wind", Season: 2}, []float64{0.9, 0.8, 0.7}, 0.20)

	// Exact hit.
	p, ok := repo.Lookup(Context{EnergyType: "demand", Season: 1})
	if !ok || p[0] != 0.1 {
		t.Errorf("exact lookup = %v, %v", p, ok)
	}
	// Same energy type fallback.
	p, ok = repo.Lookup(Context{EnergyType: "demand", Season: 3})
	if !ok || p[0] != 0.1 {
		t.Errorf("type fallback = %v, %v", p, ok)
	}
	// Any fallback (unknown type): lowest error case wins.
	p, ok = repo.Lookup(Context{EnergyType: "solar"})
	if !ok || p[0] != 0.1 {
		t.Errorf("global fallback = %v, %v", p, ok)
	}
}

func TestContextRepositoryKeepsBest(t *testing.T) {
	repo := NewContextRepository()
	ctx := Context{EnergyType: "demand"}
	repo.Store(ctx, []float64{0.5}, 0.10)
	repo.Store(ctx, []float64{0.9}, 0.20) // worse: ignored
	p, _ := repo.Lookup(ctx)
	if p[0] != 0.5 {
		t.Errorf("repository overwrote better case: %v", p)
	}
	repo.Store(ctx, []float64{0.7}, 0.05) // better: replaces
	p, _ = repo.Lookup(ctx)
	if p[0] != 0.7 {
		t.Errorf("repository kept worse case: %v", p)
	}
}

func TestWarmStartSpeedsUpEstimation(t *testing.T) {
	// With a warm start at the known-good parameters, a tiny budget must
	// reach an error no worse than a cold start with the same budget.
	history := synthSeasonal(336 * 2)
	for i := range history {
		history[i] += pseudoNoise(i) * 2
	}
	good, _, err := FitHWT(history, []int{48}, FitConfig{Options: optimize.Options{MaxEvaluations: 600, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	tiny := optimize.Options{MaxEvaluations: 40, Seed: 4}
	_, cold, err := FitHWT(history, []int{48}, FitConfig{Options: tiny})
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := FitHWT(history, []int{48}, FitConfig{Options: tiny, Start: good.Params()})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Value > cold.Value+1e-9 {
		t.Errorf("warm start %g worse than cold start %g", warm.Value, cold.Value)
	}
}
