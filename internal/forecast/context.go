package forecast

import (
	"sync"
)

// Context describes the background situation a forecast model was
// estimated under (paper §5, Context-Aware Model Adaptation: "storing
// previous models in conjunction to their corresponding context
// information within a repository to reuse them whenever a similar
// context reoccurs" — a case-based-reasoning approach).
type Context struct {
	// EnergyType discriminates demand, wind supply, solar supply, ...
	EnergyType string
	// Season is the meteorological season (0 winter … 3 autumn).
	Season int
	// DayType discriminates workday (0), Saturday (1), Sun/holiday (2).
	DayType int
}

// contextCase is one stored case: a parameter vector and the training
// error it achieved.
type contextCase struct {
	params []float64
	err    float64
}

// ContextRepository is a thread-safe case base of previously estimated
// parameters keyed by context. Lookup prefers the exact context and falls
// back to the nearest stored case (same energy type, then any).
type ContextRepository struct {
	mu    sync.RWMutex
	cases map[Context]contextCase
}

// NewContextRepository returns an empty repository.
func NewContextRepository() *ContextRepository {
	return &ContextRepository{cases: make(map[Context]contextCase)}
}

// Store records the parameters estimated under ctx. A stored case is
// replaced only by a case with a lower training error, so the repository
// converges toward the best-known parameters per context.
func (r *ContextRepository) Store(ctx Context, params []float64, err float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.cases[ctx]; ok && old.err <= err {
		return
	}
	r.cases[ctx] = contextCase{params: append([]float64(nil), params...), err: err}
}

// Lookup retrieves parameters for ctx: an exact hit, else the
// lowest-error case with the same energy type, else the lowest-error case
// overall. The boolean reports whether anything was found.
func (r *ContextRepository) Lookup(ctx Context) ([]float64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if c, ok := r.cases[ctx]; ok {
		return append([]float64(nil), c.params...), true
	}
	var best *contextCase
	for k, c := range r.cases {
		if k.EnergyType != ctx.EnergyType {
			continue
		}
		if best == nil || c.err < best.err {
			cc := c
			best = &cc
		}
	}
	if best == nil {
		for _, c := range r.cases {
			if best == nil || c.err < best.err {
				cc := c
				best = &cc
			}
		}
	}
	if best == nil {
		return nil, false
	}
	return append([]float64(nil), best.params...), true
}

// Len returns the number of stored cases.
func (r *ContextRepository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cases)
}
