package forecast

import (
	"math"
	"testing"
	"testing/quick"

	"mirabel/internal/optimize"
)

// synthSeasonal builds a noise-free series with daily (period 48) and
// weekly (period 336) additive structure.
func synthSeasonal(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		daily := 10 * math.Sin(2*math.Pi*float64(i%48)/48)
		weekly := 3 * math.Cos(2*math.Pi*float64(i%336)/336)
		out[i] = 100 + daily + weekly
	}
	return out
}

func TestNewHWTValidation(t *testing.T) {
	if _, err := NewHWT(); err == nil {
		t.Error("no periods should error")
	}
	if _, err := NewHWT(1); err == nil {
		t.Error("period 1 should error")
	}
	if _, err := NewHWT(48, 336); err != nil {
		t.Errorf("valid periods errored: %v", err)
	}
}

func TestHWTParamsRoundtrip(t *testing.T) {
	m, _ := NewHWT(48, 336)
	if m.NumParams() != 4 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
	want := []float64{0.2, 0.4, 0.1, 0.05}
	if err := m.SetParams(want); err != nil {
		t.Fatal(err)
	}
	got := m.Params()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("param %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestHWTSetParamsValidation(t *testing.T) {
	m, _ := NewHWT(48)
	if err := m.SetParams([]float64{0.1}); err == nil {
		t.Error("short vector should error")
	}
	if err := m.SetParams([]float64{0.1, -0.2, 0.3}); err == nil {
		t.Error("negative param should error")
	}
	if err := m.SetParams([]float64{0.1, 1.2, 0.3}); err == nil {
		t.Error("param > 1 should error")
	}
}

func TestHWTInitTooShort(t *testing.T) {
	m, _ := NewHWT(48, 336)
	if err := m.Init(make([]float64, 100)); err == nil {
		t.Error("init shorter than longest period should error")
	}
}

func TestHWTLearnsPureSeasonal(t *testing.T) {
	history := synthSeasonal(336 * 3)
	m, _ := NewHWT(48, 336)
	if err := m.SetParams([]float64{0.1, 0.0, 0.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Init(history); err != nil {
		t.Fatal(err)
	}
	// Forecast a full day; compare with ground truth continuation.
	truth := synthSeasonal(336*3 + 48)[336*3:]
	fc := m.Forecast(48)
	smape := 0.0
	for i := range fc {
		smape += math.Abs(truth[i]-fc[i]) / (math.Abs(truth[i]) + math.Abs(fc[i]))
	}
	smape /= 48
	if smape > 0.01 {
		t.Errorf("SMAPE on pure seasonal = %g, want < 1%%", smape)
	}
}

func TestHWTForecastLengthAndDeterminism(t *testing.T) {
	m, _ := NewHWT(48)
	if err := m.Init(synthSeasonal(96)); err != nil {
		t.Fatal(err)
	}
	a := m.Forecast(10)
	b := m.Forecast(10)
	if len(a) != 10 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("Forecast mutated model state")
			break
		}
	}
}

func TestHWTUpdateWithoutInit(t *testing.T) {
	m, _ := NewHWT(4)
	m.Update(10)
	m.Update(12)
	fc := m.Forecast(2)
	if math.IsNaN(fc[0]) || math.IsNaN(fc[1]) {
		t.Error("forecast after cold-start updates is NaN")
	}
}

func TestHWTCloneIndependent(t *testing.T) {
	m, _ := NewHWT(4)
	if err := m.Init([]float64{1, 2, 3, 4, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	c := m.clone()
	c.Update(100)
	c.Update(100)
	if m.Forecast(1)[0] == c.Forecast(1)[0] {
		t.Error("clone shares state")
	}
}

func TestFitHWTRecoversAccuracy(t *testing.T) {
	history := synthSeasonal(336 * 2)
	// Add mild noise so the objective is non-degenerate.
	for i := range history {
		history[i] += math.Sin(float64(i) * 0.7) // deterministic pseudo-noise
	}
	m, res, err := FitHWT(history, []int{48, 336}, FitConfig{
		Options: optimize.Options{MaxEvaluations: 400, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > 0.02 {
		t.Errorf("fitted SMAPE = %g, want < 2%%", res.Value)
	}
	fc := m.Forecast(48)
	if len(fc) != 48 {
		t.Fatalf("forecast len = %d", len(fc))
	}
}

func TestFitHWTTooShort(t *testing.T) {
	if _, _, err := FitHWT(make([]float64, 100), []int{336}, FitConfig{}); err == nil {
		t.Error("short history should error")
	}
}

func TestHorizonSMAPEGrowsWithHorizon(t *testing.T) {
	// On a noisy series, far horizons must not be more accurate than
	// near ones (on average) — the paper's Fig 4b shape.
	n := 336 * 4
	history := make([]float64, n)
	state := 0.0
	for i := range history {
		state = 0.9*state + pseudoNoise(i)*5
		history[i] = 100 + 10*math.Sin(2*math.Pi*float64(i%48)/48) + state
	}
	split := n - 336
	m, _ := NewHWT(48)
	if err := m.Init(history[:split]); err != nil {
		t.Fatal(err)
	}
	short, err := HorizonSMAPE(m.clone(), history[split:], 1)
	if err != nil {
		t.Fatal(err)
	}
	long, err := HorizonSMAPE(m.clone(), history[split:], 96)
	if err != nil {
		t.Fatal(err)
	}
	if long < short {
		t.Errorf("96-step SMAPE %g < 1-step SMAPE %g", long, short)
	}
}

func TestHorizonSMAPEValidation(t *testing.T) {
	m, _ := NewHWT(4)
	if _, err := HorizonSMAPE(m, []float64{1, 2}, 0); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := HorizonSMAPE(m, []float64{1, 2}, 5); err == nil {
		t.Error("window shorter than horizon should error")
	}
}

func pseudoNoise(i int) float64 {
	x := math.Sin(float64(i)*12.9898) * 43758.5453
	return x - math.Floor(x) - 0.5
}

// Property: HWT forecasts stay finite for any parameter vector in [0,1]
// and bounded inputs.
func TestPropertyHWTForecastFinite(t *testing.T) {
	f := func(a, p, g uint8) bool {
		m, _ := NewHWT(8)
		params := []float64{float64(a) / 255, float64(p) / 255, float64(g) / 255}
		if err := m.SetParams(params); err != nil {
			return false
		}
		hist := make([]float64, 32)
		for i := range hist {
			hist[i] = 50 + 10*math.Sin(float64(i))
		}
		if err := m.Init(hist); err != nil {
			return false
		}
		for _, v := range m.Forecast(24) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
