package forecast

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mirabel/internal/store"
)

// SeriesKey identifies one maintained series: the per-(actor, energy
// type) granularity the store already shards measurements by.
type SeriesKey struct {
	Actor      string
	EnergyType string
}

// RegistryConfig assembles a Registry.
type RegistryConfig struct {
	// Shards is the stripe count of the series tables (rounded up to a
	// power of two, default 32 — mirroring internal/store's layout).
	Shards int
	// Periods are the seasonal cycle lengths of every maintained HWT
	// model (default {48}: daily seasonality at half-hourly resolution).
	Periods []int
	// MinObservations is the warm-up length before a model is created
	// for a new series (clamped to the FitHWT minimum, 1.5 longest
	// periods).
	MinObservations int
	// MaxHistory bounds each series' retained history window (default 4
	// longest periods).
	MaxHistory int
	// FitCfg is the estimation budget for re-estimations.
	FitCfg FitConfig
	// NewStrategy builds the per-series evaluation strategy (default
	// TimeBased every 2 longest periods). Called once per created model.
	NewStrategy func() EvaluationStrategy
	// Workers sizes the background re-estimation pool (default 2).
	Workers int
	// QueueDepth bounds the refit request queue (default 1024). A full
	// queue never blocks updates: the request is dropped, counted as an
	// overflow, and the evaluation strategy re-triggers later.
	QueueDepth int
	// SyncRefit disables the background pool: re-estimations run inline
	// in the update path (the pre-registry behaviour, kept as the
	// baseline mode for benchmarking). Workers/QueueDepth are ignored.
	SyncRefit bool
	// Repo optionally shares a context repository across all series, so
	// refits warm-start from parameters of similar series.
	Repo *ContextRepository
}

// RegistryStats is a point-in-time snapshot of the registry.
type RegistryStats struct {
	Series       int    // keys seen (warming + modelled)
	Models       int    // series past warm-up with a live model
	Observations uint64 // measurements consumed

	RefitsEnqueued uint64
	RefitsDone     uint64
	RefitsFailed   uint64
	QueueOverflows uint64
	QueueDepth     int // requests currently queued
	QueueCap       int
	Workers        int
	SyncRefits     uint64 // inline re-estimations (SyncRefit mode)

	RefitP50, RefitP95, RefitP99 time.Duration

	// Staleness: observations since the last installed re-estimation,
	// aggregated over all modelled series.
	MaxStaleness  int64
	MeanStaleness float64
}

// Registry is the fleet-scale forecast service: per-(actor,energy)
// maintained models in stripe-locked tables, lazy model creation on
// first measurements, allocation-free batched updates, and asynchronous
// parameter re-estimation on a bounded worker pool. It is safe for
// concurrent use and sized for 10⁵–10⁶ resident series.
type Registry struct {
	cfg    RegistryConfig
	mask   uint64
	shards []registryShard
	sweep  *sweeper // nil in SyncRefit mode

	hubMu sync.Mutex
	hubs  map[SeriesKey]*hubEntry

	nSeries      atomic.Int64
	nModels      atomic.Int64
	observations atomic.Uint64
	syncRefits   atomic.Uint64
}

type registryShard struct {
	mu sync.RWMutex
	m  map[SeriesKey]*Series
}

// Series is one maintained (actor, energy type) stream. Before the
// model exists, observations accumulate in a warm-up buffer; at
// MinObservations the model is created transparently (paper §5:
// "transparent model creation") and the warm-up data seeds its state.
type Series struct {
	Key SeriesKey
	reg *Registry

	mu   sync.Mutex // guards the warm-up phase only
	warm []float64

	mt atomic.Pointer[Maintainer] // non-nil once the model exists
}

type hubEntry struct {
	s       *Series
	hub     *Hub
	lastObs atomic.Uint64
}

// NewRegistry validates the configuration, applies defaults and starts
// the background re-estimation pool.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if len(cfg.Periods) == 0 {
		cfg.Periods = []int{48}
	}
	if _, err := NewHWT(cfg.Periods...); err != nil {
		return nil, err
	}
	longest := cfg.Periods[0]
	for _, p := range cfg.Periods {
		if p > longest {
			longest = p
		}
	}
	if minFit := longest + longest/2; cfg.MinObservations < minFit {
		cfg.MinObservations = minFit
	}
	if cfg.MaxHistory <= 0 {
		cfg.MaxHistory = 4 * longest
	}
	if cfg.MaxHistory < cfg.MinObservations {
		cfg.MaxHistory = cfg.MinObservations
	}
	if cfg.NewStrategy == nil {
		every := 2 * longest
		cfg.NewStrategy = func() EvaluationStrategy { return &TimeBased{Every: every} }
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 32
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	r := &Registry{
		cfg:    cfg,
		mask:   uint64(n - 1),
		shards: make([]registryShard, n),
		hubs:   make(map[SeriesKey]*hubEntry),
	}
	for i := range r.shards {
		r.shards[i].m = make(map[SeriesKey]*Series)
	}
	if !cfg.SyncRefit {
		r.sweep = newSweeper(cfg.Workers, cfg.QueueDepth)
	}
	return r, nil
}

// hashSeriesKey is FNV-1a over actor then energy type, with a splitmix
// finalizer — the same stripe-selection recipe internal/store uses.
func hashSeriesKey(actor, energy string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(actor); i++ {
		h ^= uint64(actor[i])
		h *= prime64
	}
	h ^= 0xff // separator so ("ab","c") and ("a","bc") differ
	h *= prime64
	for i := 0; i < len(energy); i++ {
		h ^= uint64(energy[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Series returns the maintained series for the key, creating the
// (model-less) entry on first sight.
func (r *Registry) Series(actor, energy string) *Series {
	sh := &r.shards[hashSeriesKey(actor, energy)&r.mask]
	key := SeriesKey{Actor: actor, EnergyType: energy}
	sh.mu.RLock()
	s := sh.m[key]
	sh.mu.RUnlock()
	if s != nil {
		return s
	}
	sh.mu.Lock()
	if s = sh.m[key]; s == nil {
		s = &Series{Key: key, reg: r}
		sh.m[key] = s
		r.nSeries.Add(1)
	}
	sh.mu.Unlock()
	return s
}

// Lookup returns the series for the key without creating it.
func (r *Registry) Lookup(actor, energy string) (*Series, bool) {
	sh := &r.shards[hashSeriesKey(actor, energy)&r.mask]
	sh.mu.RLock()
	s, ok := sh.m[SeriesKey{Actor: actor, EnergyType: energy}]
	sh.mu.RUnlock()
	return s, ok
}

// UpdateMeasurements feeds a measurement batch into the fleet. The
// batch is split into consecutive runs of equal keys (the order batches
// naturally arrive in), and each run updates its series under a single
// lock acquisition — the registry hot path, allocation-free per
// observation once a series' model exists.
func (r *Registry) UpdateMeasurements(ms []store.Measurement) {
	for i := 0; i < len(ms); {
		j := i + 1
		for j < len(ms) && ms[j].Actor == ms[i].Actor && ms[j].EnergyType == ms[i].EnergyType {
			j++
		}
		r.Series(ms[i].Actor, ms[i].EnergyType).consumeRun(ms[i:j])
		i = j
	}
	r.observations.Add(uint64(len(ms)))
}

// Update feeds a single observation into one series.
func (r *Registry) Update(actor, energy string, y float64) {
	r.Series(actor, energy).consume(y)
	r.observations.Add(1)
}

// Forecast serves the next h values of a series. ok is false while the
// series is unknown or still warming up.
func (r *Registry) Forecast(actor, energy string, h int) (values []float64, ok bool) {
	s, found := r.Lookup(actor, energy)
	if !found {
		return nil, false
	}
	mt := s.mt.Load()
	if mt == nil {
		return nil, false
	}
	return mt.Forecast(h), true
}

// Maintainer exposes the series' maintainer once the model exists.
func (s *Series) Maintainer() (*Maintainer, bool) {
	mt := s.mt.Load()
	return mt, mt != nil
}

// consumeRun applies a run of same-key measurements.
func (s *Series) consumeRun(ms []store.Measurement) {
	if mt := s.mt.Load(); mt != nil {
		updateRun(mt, ms)
		return
	}
	s.mu.Lock()
	if mt := s.mt.Load(); mt != nil {
		// Model appeared while we waited for the warm-up lock.
		s.mu.Unlock()
		updateRun(mt, ms)
		return
	}
	for i := range ms {
		s.warm = append(s.warm, ms[i].KWh)
	}
	s.maybeCreateLocked()
	s.mu.Unlock()
}

// consume applies one observation.
func (s *Series) consume(y float64) {
	if mt := s.mt.Load(); mt != nil {
		_ = mt.Update(y)
		return
	}
	s.mu.Lock()
	if mt := s.mt.Load(); mt != nil {
		s.mu.Unlock()
		_ = mt.Update(y)
		return
	}
	s.warm = append(s.warm, y)
	s.maybeCreateLocked()
	s.mu.Unlock()
}

// updateRun pushes a measurement run through the maintainer under one
// lock acquisition (same-package access to the locked update loop, so
// no intermediate value slice is materialized).
func updateRun(mt *Maintainer, ms []store.Measurement) {
	mt.mu.Lock()
	for i := range ms {
		_ = mt.updateLocked(ms[i].KWh)
	}
	mt.mu.Unlock()
}

// maybeCreateLocked creates the model once the warm-up buffer is long
// enough: an HWT seeded from the buffer with default parameters serves
// immediately, and the first real parameter estimation is queued to the
// background pool — transparent model creation without stalling the
// update path. Caller holds s.mu.
func (s *Series) maybeCreateLocked() {
	cfg := &s.reg.cfg
	if len(s.warm) < cfg.MinObservations {
		return
	}
	model, err := NewHWT(cfg.Periods...)
	if err != nil {
		return // unreachable: periods validated in NewRegistry
	}
	if err := model.Init(s.warm); err != nil {
		return
	}
	mt := NewMaintainer(model, s.warm, MaintainerConfig{
		Strategy:   cfg.NewStrategy(),
		FitCfg:     cfg.FitCfg,
		Repo:       cfg.Repo,
		Ctx:        Context{EnergyType: s.Key.EnergyType},
		MaxHistory: cfg.MaxHistory,
	})
	if s.reg.sweep != nil {
		reg := s.reg
		mt.setEnqueue(func() bool { return reg.sweep.enqueue(s) })
	} else if cfg.SyncRefit {
		s.reg.wrapSyncStrategy(mt)
	}
	s.warm = nil
	s.mt.Store(mt)
	s.reg.nModels.Add(1)
	// Replace the default parameters with properly estimated ones as
	// soon as a worker gets to it.
	if s.reg.sweep != nil && mt.refitPending.CompareAndSwap(false, true) {
		if !s.reg.sweep.enqueue(s) {
			mt.refitPending.Store(false)
		}
	}
}

// wrapSyncStrategy counts inline re-estimations in SyncRefit mode by
// observing strategy resets.
func (r *Registry) wrapSyncStrategy(mt *Maintainer) {
	mt.listeners = append(mt.listeners, func(*HWT) { r.syncRefits.Add(1) })
}

// Hub returns (creating on demand) the publish-subscribe hub of a
// series, so continuous forecast queries can be registered per series.
// Publish only fires once the model exists; before that subscribers
// simply see no notifications.
func (r *Registry) Hub(actor, energy string) *Hub {
	s := r.Series(actor, energy)
	r.hubMu.Lock()
	defer r.hubMu.Unlock()
	if e, ok := r.hubs[s.Key]; ok {
		return e.hub
	}
	e := &hubEntry{s: s, hub: NewHub(seriesForecaster{s})}
	r.hubs[s.Key] = e
	return e.hub
}

// seriesForecaster adapts a Series to the Hub's forecaster seam; a
// warming series forecasts zeros.
type seriesForecaster struct{ s *Series }

func (f seriesForecaster) Forecast(h int) []float64 {
	if mt := f.s.mt.Load(); mt != nil {
		return mt.Forecast(h)
	}
	return make([]float64, h)
}

// PublishDirty publishes every hub whose series consumed observations
// since its last publication (the scheduling cycle calls this after the
// ingest drain, so continuous queries fire once per cycle, not once per
// batch). It returns the number of notifications sent.
func (r *Registry) PublishDirty() int {
	r.hubMu.Lock()
	entries := make([]*hubEntry, 0, len(r.hubs))
	for _, e := range r.hubs {
		entries = append(entries, e)
	}
	r.hubMu.Unlock()
	sent := 0
	for _, e := range entries {
		mt := e.s.mt.Load()
		if mt == nil {
			continue
		}
		cur := mt.Observations()
		if e.lastObs.Swap(cur) == cur {
			continue
		}
		sent += e.hub.Publish()
	}
	return sent
}

// Stats snapshots registry counters, refit queue state and latency
// percentiles, and scans the shards for staleness aggregates.
func (r *Registry) Stats() RegistryStats {
	st := RegistryStats{
		Series:       int(r.nSeries.Load()),
		Models:       int(r.nModels.Load()),
		Observations: r.observations.Load(),
		SyncRefits:   r.syncRefits.Load(),
	}
	if r.sweep != nil {
		r.sweep.fill(&st)
	}
	var sum int64
	var n int64
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			mt := s.mt.Load()
			if mt == nil {
				continue
			}
			stale := mt.Staleness()
			if stale > st.MaxStaleness {
				st.MaxStaleness = stale
			}
			sum += stale
			n++
		}
		sh.mu.RUnlock()
	}
	if n > 0 {
		st.MeanStaleness = float64(sum) / float64(n)
	}
	return st
}

// Quiesce blocks until the refit queue is empty and no refit is in
// flight, or the timeout elapses. Intended for tests and benchmarks.
func (r *Registry) Quiesce(timeout time.Duration) error {
	if r.sweep == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		if r.sweep.idle() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("forecast: registry did not quiesce within %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the background workers (in-flight refits finish; queued
// requests are dropped).
func (r *Registry) Close() {
	if r.sweep != nil {
		r.sweep.close()
	}
}

// sortDurations is a tiny helper shared with the sweeper's percentile
// snapshot.
func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}
