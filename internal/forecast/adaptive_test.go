package forecast

import (
	"math"
	"testing"
)

func TestAdaptiveThresholdStableErrorNoTrigger(t *testing.T) {
	s := &AdaptiveThreshold{Warmup: 20}
	for i := 0; i < 500; i++ {
		if s.Observe(0.05) {
			t.Fatalf("triggered at %d on a stable error level", i)
		}
	}
}

func TestAdaptiveThresholdTriggersOnDegradation(t *testing.T) {
	s := &AdaptiveThreshold{Warmup: 20}
	for i := 0; i < 200; i++ {
		s.Observe(0.02)
	}
	triggered := false
	for i := 0; i < 100; i++ {
		if s.Observe(0.10) { // 5× the historical level
			triggered = true
			break
		}
	}
	if !triggered {
		t.Error("did not trigger on a 5× error degradation")
	}
}

func TestAdaptiveThresholdNoTriggerDuringWarmup(t *testing.T) {
	s := &AdaptiveThreshold{Warmup: 50}
	for i := 0; i < 49; i++ {
		if s.Observe(10) {
			t.Fatal("triggered during warmup")
		}
	}
}

func TestAdaptiveThresholdResetRearms(t *testing.T) {
	s := &AdaptiveThreshold{Warmup: 10}
	for i := 0; i < 100; i++ {
		s.Observe(0.02)
	}
	fired := false
	for i := 0; i < 200 && !fired; i++ {
		fired = s.Observe(0.2)
	}
	if !fired {
		t.Fatal("never fired")
	}
	s.Reset()
	// Immediately after reset the short horizon equals the long one: no
	// refire on the next good observation.
	if s.Observe(0.02) {
		t.Error("refired immediately after reset")
	}
	// But a renewed degradation fires again without a fresh warmup.
	fired = false
	for i := 0; i < 300 && !fired; i++ {
		fired = s.Observe(0.5)
	}
	if !fired {
		t.Error("did not re-arm after reset")
	}
}

func TestAdaptiveThresholdWorksInMaintainer(t *testing.T) {
	history := synthSeasonal(336 * 2)
	m, _, err := FitHWT(history, []int{48}, FitConfig{Options: optimizeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMaintainer(m, history, MaintainerConfig{
		Strategy: &AdaptiveThreshold{Warmup: 48},
		FitCfg:   FitConfig{Options: optimizeOpts()},
	})
	// Feed accurate data first, then a structural break.
	cont := synthSeasonal(336*2 + 96)[336*2:]
	for _, y := range cont {
		if err := mt.Update(y); err != nil {
			t.Fatal(err)
		}
	}
	if mt.Reestimations() != 0 {
		t.Errorf("re-estimated %d times on in-distribution data", mt.Reestimations())
	}
	for i := 0; i < 336; i++ {
		if err := mt.Update(250 + 40*math.Sin(2*math.Pi*float64(i%48)/48)); err != nil {
			t.Fatal(err)
		}
	}
	if mt.Reestimations() == 0 {
		t.Error("no re-estimation despite structural break")
	}
}

func TestForecastIntervalWidensWithHorizon(t *testing.T) {
	history := synthSeasonal(336 * 2)
	for i := range history {
		history[i] += pseudoNoise(i) * 4
	}
	m, _ := NewHWT(48)
	if err := m.Init(history); err != nil {
		t.Fatal(err)
	}
	iv := m.ForecastInterval(48, 1.96)
	if len(iv) != 48 {
		t.Fatalf("len = %d", len(iv))
	}
	prevWidth := -1.0
	for k, x := range iv {
		if x.Lower > x.Point || x.Upper < x.Point {
			t.Fatalf("interval %d does not bracket the point: %+v", k, x)
		}
		w := x.Upper - x.Lower
		if w < prevWidth {
			t.Fatalf("interval width shrinks at horizon %d", k)
		}
		prevWidth = w
	}
	if m.ResidualStd() <= 0 {
		t.Error("residual std not positive on noisy data")
	}
}

func TestForecastIntervalCoverage(t *testing.T) {
	// On noisy seasonal data, a 95% one-step interval must cover most
	// actual values (loose bound: ≥ 80%).
	n := 336 * 3
	series := make([]float64, n)
	for i := range series {
		series[i] = 100 + 10*math.Sin(2*math.Pi*float64(i%48)/48) + pseudoNoise(i)*6
	}
	m, _ := NewHWT(48)
	if err := m.Init(series[:336*2]); err != nil {
		t.Fatal(err)
	}
	covered, total := 0, 0
	for _, y := range series[336*2:] {
		iv := m.ForecastInterval(1, 1.96)[0]
		if y >= iv.Lower && y <= iv.Upper {
			covered++
		}
		total++
		m.Update(y)
	}
	if frac := float64(covered) / float64(total); frac < 0.8 {
		t.Errorf("interval coverage = %.2f, want ≥ 0.8", frac)
	}
}
