package settle

import (
	"math"
	"testing"
	"testing/quick"

	"mirabel/internal/flexoffer"
)

func item(id flexoffer.ID, premium float64, scheduled, metered []float64) Item {
	profile := make([]flexoffer.Slice, len(scheduled))
	for i, e := range scheduled {
		profile[i] = flexoffer.Slice{EnergyMin: e - 5, EnergyMax: e + 5}
	}
	return Item{
		Offer: &flexoffer.FlexOffer{
			ID: id, Prosumer: "p", EarliestStart: 10, LatestStart: 20, AssignBefore: 5, Profile: profile,
		},
		Schedule:   &flexoffer.Schedule{OfferID: id, Start: 12, Energy: scheduled},
		PremiumEUR: premium,
		Metered:    metered,
	}
}

func TestSettleCompliantExecution(t *testing.T) {
	it := item(1, 0.02, []float64{10, 10}, []float64{10, 10})
	rep, err := Settle([]Item{it}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l := rep.Lines[0]
	if !l.Compliant || l.PenaltyEUR != 0 {
		t.Errorf("line = %+v", l)
	}
	if math.Abs(l.PaymentEUR-0.4) > 1e-12 {
		t.Errorf("payment = %g, want 0.4 (20 kWh · 0.02)", l.PaymentEUR)
	}
	if rep.CompliantCount != 1 {
		t.Errorf("compliant = %d", rep.CompliantCount)
	}
}

func TestSettleWithinToleranceNoPenalty(t *testing.T) {
	// 4% deviation with 5% tolerance: no penalty.
	it := item(1, 0.02, []float64{10}, []float64{10.4})
	rep, err := Settle([]Item{it}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Lines[0].Compliant || rep.Lines[0].PenaltyEUR != 0 {
		t.Errorf("line = %+v", rep.Lines[0])
	}
}

func TestSettleDeviationPenalty(t *testing.T) {
	// Scheduled 10, metered 12: deviation 2, tolerance 0.5 → excess 1.5.
	it := item(1, 0.02, []float64{10}, []float64{12})
	rep, err := Settle([]Item{it}, Config{
		ImbalancePrice: func(flexoffer.Time) float64 { return 0.2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	l := rep.Lines[0]
	if l.Compliant {
		t.Error("deviating execution marked compliant")
	}
	if math.Abs(l.DeviationKWh-1.5) > 1e-12 {
		t.Errorf("deviation = %g, want 1.5", l.DeviationKWh)
	}
	if math.Abs(l.PenaltyEUR-0.3) > 1e-12 {
		t.Errorf("penalty = %g, want 0.3", l.PenaltyEUR)
	}
}

func TestSettleNetNeverNegative(t *testing.T) {
	// Tiny premium, huge deviation: net must clamp at zero.
	it := item(1, 0.001, []float64{10}, []float64{30})
	rep, err := Settle([]Item{it}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lines[0].NetEUR != 0 {
		t.Errorf("net = %g, want 0", rep.Lines[0].NetEUR)
	}
}

func TestSettleProfitSharingOnlyCompliant(t *testing.T) {
	good := item(1, 0.02, []float64{10, 10}, []float64{10, 10})
	bad := item(2, 0.02, []float64{10, 10}, []float64{30, 30})
	rep, err := Settle([]Item{good, bad}, Config{
		ShareFrac:         0.5,
		RealizedProfitEUR: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.SharedProfitEUR-50) > 1e-9 {
		t.Errorf("shared = %g, want 50", rep.SharedProfitEUR)
	}
	// All of the pool goes to the compliant line, reported separately in
	// ShareEUR and included in NetEUR.
	if math.Abs(rep.Lines[0].ShareEUR-50) > 1e-9 {
		t.Errorf("compliant line share = %g, want 50", rep.Lines[0].ShareEUR)
	}
	if want := rep.Lines[0].PaymentEUR + rep.Lines[0].ShareEUR; math.Abs(rep.Lines[0].NetEUR-want) > 1e-9 {
		t.Errorf("net = %g, want payment+share = %g", rep.Lines[0].NetEUR, want)
	}
	if rep.Lines[1].ShareEUR != 0 || rep.Lines[1].NetEUR > rep.Lines[1].PaymentEUR {
		t.Errorf("non-compliant line received profit share: %+v", rep.Lines[1])
	}
}

func TestSettleShareSplitsByScheduledEnergy(t *testing.T) {
	small := item(1, 0, []float64{10}, []float64{10})
	big := item(2, 0, []float64{30}, []float64{30})
	rep, err := Settle([]Item{small, big}, Config{ShareFrac: 1, RealizedProfitEUR: 40})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Lines[0].NetEUR-10) > 1e-9 || math.Abs(rep.Lines[1].NetEUR-30) > 1e-9 {
		t.Errorf("shares = %g, %g; want 10, 30", rep.Lines[0].NetEUR, rep.Lines[1].NetEUR)
	}
}

func TestSettleValidation(t *testing.T) {
	if _, err := Settle([]Item{{}}, Config{}); err == nil {
		t.Error("item without offer accepted")
	}
	bad := item(1, 0, []float64{1, 2}, []float64{1})
	bad.Metered = []float64{1}
	if _, err := Settle([]Item{bad}, Config{}); err == nil {
		t.Error("metered/scheduled length mismatch accepted")
	}
	ok := item(1, 0, []float64{1}, []float64{1})
	if _, err := Settle([]Item{ok}, Config{ShareFrac: 2}); err == nil {
		t.Error("share fraction > 1 accepted")
	}
}

func TestSettleProductionOffers(t *testing.T) {
	// Production (negative energies): deviations and payments use
	// magnitudes.
	it := item(1, 0.02, []float64{-10, -10}, []float64{-10, -10})
	rep, err := Settle([]Item{it}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l := rep.Lines[0]
	if l.ScheduledKWh != 20 || !l.Compliant {
		t.Errorf("line = %+v", l)
	}
	if math.Abs(l.PaymentEUR-0.4) > 1e-12 {
		t.Errorf("payment = %g", l.PaymentEUR)
	}
}

func TestMeteredFromSchedule(t *testing.T) {
	s := &flexoffer.Schedule{Energy: []float64{1, 2}}
	m := MeteredFromSchedule(s)
	m[0] = 99
	if s.Energy[0] == 99 {
		t.Error("MeteredFromSchedule shares storage")
	}
}

// Property: total payments equal Σ premium·scheduled, and penalties are
// never negative, for arbitrary metering outcomes.
func TestPropertySettleAccounting(t *testing.T) {
	f := func(devs []float64, premiumCenti uint8) bool {
		n := len(devs)
		if n == 0 {
			return true
		}
		if n > 10 {
			n = 10
			devs = devs[:10]
		}
		scheduled := make([]float64, n)
		metered := make([]float64, n)
		for i := range scheduled {
			scheduled[i] = 10
			d := devs[i]
			if math.IsNaN(d) || math.IsInf(d, 0) {
				d = 0
			}
			metered[i] = 10 + math.Mod(d, 8)
		}
		premium := float64(premiumCenti) / 1000
		it := item(1, premium, scheduled, metered)
		rep, err := Settle([]Item{it}, Config{})
		if err != nil {
			return false
		}
		l := rep.Lines[0]
		wantPay := premium * 10 * float64(n)
		return math.Abs(l.PaymentEUR-wantPay) < 1e-9 && l.PenaltyEUR >= 0 && l.NetEUR >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
