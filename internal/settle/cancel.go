package settle

import (
	"fmt"
	"math"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

// CancelConfig parameterizes a mid-contract prosumer cancellation
// (ROADMAP "Prosumer churn mid-contract").
type CancelConfig struct {
	// PenaltyEUR is the flat cancellation charge per voided open offer.
	PenaltyEUR float64
	// PenaltyPerKWh additionally charges the offer's maximum committed
	// energy: walking away from a big flexibility window costs more
	// than abandoning a small one.
	PenaltyPerKWh float64
	// Memo annotates the close-out entry (e.g. "left mid-contract at
	// cycle 7").
	Memo string
}

// CancelReport accounts one cancellation run.
type CancelReport struct {
	Prosumer string
	// Cancelled lists the offers voided by this run (fresh cancel
	// entries on the chain).
	Cancelled []flexoffer.ID
	// AlreadyCancelled counts offers whose cancel entry was already on
	// the chain from an earlier run that crashed before transitioning
	// them.
	AlreadyCancelled int
	// PenaltyEUR is the total charged by this run's cancel entries.
	PenaltyEUR float64
	// CloseoutEUR is the close-out entry's amount — the final transfer
	// that zeroes the actor's net balance (0 when the balance was
	// already settled to zero and no entry was needed).
	CloseoutEUR float64
}

// openStates are the lifecycle states a departing prosumer's offers can
// be voided from. Executed/expired/rejected offers are history; a
// scheduled offer is voided too — the BRP re-plans without it at the
// next cycle and the penalty compensates the broken commitment.
var openStates = []store.OfferState{store.OfferReceived, store.OfferAccepted, store.OfferScheduled}

// CancelActor settles a prosumer leaving mid-contract: every open offer
// of theirs gets a penalty (EntryCancel) on the hash-chained ledger,
// followed by one balance close-out (EntryClose) that zeroes the
// actor's net position. The batch's ledger append is acked durable
// before any offer transitions to cancelled — the same commit
// discipline as Run — and EntryCancel marks its offer settled on the
// chain, so a run crashing between append and transition re-runs
// idempotently: already-chained offers just complete their transition,
// with no second charge.
func CancelActor(st *store.Store, ledger *Ledger, prosumer string, cfg CancelConfig) (*CancelReport, error) {
	if st == nil || ledger == nil {
		return nil, fmt.Errorf("settle: cancel requires store and ledger")
	}
	rep := &CancelReport{Prosumer: prosumer}

	var (
		entries []Entry
		fresh   []flexoffer.ID // transition after the append ack
		stale   []flexoffer.ID // chained by a crashed run: transition only
	)
	for _, state := range openStates {
		for _, rec := range st.Offers(store.OfferFilter{State: state}) {
			if rec.Offer == nil || !offerBelongsTo(&rec, prosumer) {
				continue
			}
			if ledger.HasSettled(rec.Offer.ID) {
				stale = append(stale, rec.Offer.ID)
				continue
			}
			penalty := cfg.PenaltyEUR + cfg.PenaltyPerKWh*maxTotalEnergy(rec.Offer)
			entries = append(entries, Entry{
				Kind:      EntryCancel,
				Actor:     prosumer,
				OfferID:   rec.Offer.ID,
				KWh:       maxTotalEnergy(rec.Offer),
				AmountEUR: -penalty,
				Memo:      fmt.Sprintf("cancelled while %s", state),
			})
			fresh = append(fresh, rec.Offer.ID)
			rep.PenaltyEUR += penalty
		}
	}
	rep.AlreadyCancelled = len(stale)

	// Complete what an earlier crashed run left behind first: their
	// penalties are already on the chain.
	if err := transitionCancelled(st, stale); err != nil {
		return nil, err
	}

	// The close-out zeroes the actor's running balance as it will stand
	// after this run's penalties land — computed up front so the whole
	// departure is one atomic chain batch.
	net := 0.0
	if b, ok := ledger.Balance(prosumer); ok {
		net = b.NetEUR
	}
	for i := range entries {
		net += entries[i].AmountEUR
	}
	if len(entries) > 0 || math.Abs(net) > 1e-9 {
		rep.CloseoutEUR = -net
		entries = append(entries, Entry{
			Kind:      EntryClose,
			Actor:     prosumer,
			AmountEUR: -net,
			Memo:      closeMemo(cfg.Memo),
		})
	}
	if len(entries) > 0 {
		// The append ack is the commit point: only once the departure is
		// durable on the chain may its offers leave the open states.
		if _, err := ledger.Append(entries); err != nil {
			return nil, err
		}
	}
	if err := transitionCancelled(st, fresh); err != nil {
		return nil, err
	}
	rep.Cancelled = fresh
	return rep, nil
}

func closeMemo(memo string) string {
	if memo == "" {
		return "contract close-out"
	}
	return "contract close-out: " + memo
}

// offerBelongsTo matches a record against the departing prosumer by the
// embedded prosumer name or, like Run, by the record's owner when the
// wire submission carried no name.
func offerBelongsTo(rec *store.OfferRecord, prosumer string) bool {
	if rec.Offer.Prosumer != "" {
		return rec.Offer.Prosumer == prosumer
	}
	return rec.Owner == prosumer
}

// maxTotalEnergy sums the profile's per-slice maxima — the offer's
// largest committed energy.
func maxTotalEnergy(f *flexoffer.FlexOffer) float64 {
	var sum float64
	for _, s := range f.Profile {
		sum += s.EnergyMax
	}
	return sum
}

// transitionCancelled moves the given offers to cancelled as one WAL
// group.
func transitionCancelled(st *store.Store, ids []flexoffer.ID) error {
	if len(ids) == 0 {
		return nil
	}
	ups := make([]store.OfferUpdate, len(ids))
	for i, id := range ids {
		ups[i] = store.OfferUpdate{ID: id, Mutate: func(rec *store.OfferRecord) {
			rec.State = store.OfferCancelled
		}}
	}
	results, err := st.UpdateOffers(ups)
	if err != nil {
		return err
	}
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("settle: cancel offer %d: %w", ids[i], r.Err)
		}
	}
	return nil
}
