package settle

import (
	"math"
	"path/filepath"
	"testing"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

func openOffer(id flexoffer.ID, prosumer string, state store.OfferState, energy []float64) store.OfferRecord {
	rec := scheduledOffer(id, prosumer, 0.02, energy)
	rec.State = state
	if state != store.OfferScheduled {
		rec.Schedule = nil
	}
	return rec
}

func TestCancelActorVoidsOpenOffers(t *testing.T) {
	st := store.NewInMemory()
	// p1 holds one offer in each open state, plus an executed one that
	// is history and must stay untouched.
	for _, rec := range []store.OfferRecord{
		openOffer(1, "p1", store.OfferReceived, []float64{10}),
		openOffer(2, "p1", store.OfferAccepted, []float64{10, 10}),
		openOffer(3, "p1", store.OfferScheduled, []float64{10}),
		openOffer(4, "p1", store.OfferExecuted, []float64{10}),
		openOffer(5, "p2", store.OfferAccepted, []float64{10}),
	} {
		if err := st.PutOffer(rec); err != nil {
			t.Fatal(err)
		}
	}
	led := openTestLedger(t, filepath.Join(t.TempDir(), "ledger.log"))
	defer led.Close()

	cfg := CancelConfig{PenaltyEUR: 1, PenaltyPerKWh: 0.1, Memo: "left at cycle 7"}
	rep, err := CancelActor(st, led, "p1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cancelled) != 3 || rep.AlreadyCancelled != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Profile maxima are energy+5 per slice: 15 + 30 + 15 kWh voided.
	wantPenalty := 3*cfg.PenaltyEUR + cfg.PenaltyPerKWh*(15+30+15)
	if math.Abs(rep.PenaltyEUR-wantPenalty) > 1e-9 {
		t.Errorf("penalty = %g, want %g", rep.PenaltyEUR, wantPenalty)
	}
	assertStates(t, st, store.OfferCancelled, 3)
	assertStates(t, st, store.OfferExecuted, 1)
	if got := st.Offers(store.OfferFilter{State: store.OfferAccepted}); len(got) != 1 || got[0].Owner != "p2" {
		t.Errorf("p2's offer disturbed: %+v", got)
	}

	// The close-out zeroes the departing actor's balance exactly.
	if b, ok := led.Balance("p1"); !ok || math.Abs(b.NetEUR) > 1e-9 {
		t.Errorf("balance after close-out = %+v", b)
	}
	if math.Abs(rep.CloseoutEUR-wantPenalty) > 1e-9 {
		t.Errorf("close-out = %g, want %g", rep.CloseoutEUR, wantPenalty)
	}
	if res, err := led.Verify(); err != nil || !res.OK {
		t.Fatalf("verify = %+v, %v", res, err)
	}

	// Re-running the departure is a no-op: no open offers remain, the
	// balance is already zero, nothing lands on the chain.
	before := led.Stats().Entries
	rep2, err := CancelActor(st, led, "p1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Cancelled) != 0 || rep2.AlreadyCancelled != 0 || led.Stats().Entries != before {
		t.Errorf("re-run = %+v, entries %d -> %d", rep2, before, led.Stats().Entries)
	}
}

// TestCancelActorCrashRecovery plays the crash window: a prior run
// appended offer 1's cancel entry (acked, durable) but died before the
// store transition. After reopening the ledger from disk, a fresh run
// must finish the transition without charging the offer twice, and void
// the remaining open offer normally.
func TestCancelActorCrashRecovery(t *testing.T) {
	st := store.NewInMemory()
	for _, rec := range []store.OfferRecord{
		openOffer(1, "p1", store.OfferAccepted, []float64{10}),
		openOffer(2, "p1", store.OfferScheduled, []float64{10}),
	} {
		if err := st.PutOffer(rec); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "ledger.log")
	led := openTestLedger(t, path)
	if _, err := led.Append([]Entry{{
		Kind: EntryCancel, Actor: "p1", OfferID: 1, KWh: 15, AmountEUR: -2.5,
		Memo: "cancelled while accepted",
	}}); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot: recovery must rebuild the settled set from the chain so
	// the stale offer is recognized.
	led = openTestLedger(t, path)
	defer led.Close()
	if led.Stats().RecoveredEntries != 1 || !led.HasSettled(1) {
		t.Fatalf("recovery stats = %+v, settled(1)=%v", led.Stats(), led.HasSettled(1))
	}
	rep, err := CancelActor(st, led, "p1", CancelConfig{PenaltyEUR: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlreadyCancelled != 1 {
		t.Errorf("already cancelled = %d, want 1", rep.AlreadyCancelled)
	}
	if len(rep.Cancelled) != 1 || rep.Cancelled[0] != 2 {
		t.Errorf("fresh cancels = %v, want [2]", rep.Cancelled)
	}
	assertStates(t, st, store.OfferCancelled, 2)
	// Chain holds the crashed entry, one fresh cancel, one close-out —
	// no duplicate for offer 1 — and the balance still zeroes.
	if got := led.Stats().Entries; got != 3 {
		t.Errorf("entries = %d, want 3", got)
	}
	if b, _ := led.Balance("p1"); math.Abs(b.NetEUR) > 1e-9 {
		t.Errorf("balance = %+v", b)
	}
	if res, err := led.Verify(); err != nil || !res.OK {
		t.Fatalf("verify = %+v, %v", res, err)
	}
}

// A departing actor with earnings but no open offers still gets a
// close-out entry returning the balance to zero.
func TestCancelActorCloseoutOnly(t *testing.T) {
	st := store.NewInMemory()
	led := openTestLedger(t, filepath.Join(t.TempDir(), "ledger.log"))
	defer led.Close()
	if _, err := led.Append([]Entry{{Kind: EntryLine, Actor: "p1", OfferID: 9, AmountEUR: 5}}); err != nil {
		t.Fatal(err)
	}
	rep, err := CancelActor(st, led, "p1", CancelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cancelled) != 0 || math.Abs(rep.CloseoutEUR+5) > 1e-9 {
		t.Errorf("report = %+v, want close-out -5", rep)
	}
	if b, _ := led.Balance("p1"); math.Abs(b.NetEUR) > 1e-9 {
		t.Errorf("balance = %+v", b)
	}
}

func TestCancelActorValidation(t *testing.T) {
	if _, err := CancelActor(nil, nil, "p1", CancelConfig{}); err == nil {
		t.Error("cancel without store/ledger accepted")
	}
}
