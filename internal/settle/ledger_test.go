package settle

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

func openTestLedger(t *testing.T, path string) *Ledger {
	t.Helper()
	l, err := OpenLedger(LedgerConfig{Path: path, Sync: store.SyncFlush})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLedgerAppendChainsAndVerifies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l := openTestLedger(t, path)
	defer l.Close()

	first, err := l.Append([]Entry{
		{Kind: EntryLine, Actor: "p1", OfferID: 1, KWh: 20, AmountEUR: 0.4, Compliant: true},
		{Kind: EntryPenalty, Actor: "p2", OfferID: 2, KWh: 1.5, AmountEUR: -0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := l.Append([]Entry{
		{Kind: EntryShare, Actor: "p1", OfferID: 1, AmountEUR: 5},
	})
	if err != nil {
		t.Fatal(err)
	}

	if first[0].Seq != 0 || first[1].Seq != 1 || second[0].Seq != 2 {
		t.Errorf("sequence = %d,%d,%d", first[0].Seq, first[1].Seq, second[0].Seq)
	}
	if first[0].PrevHash != "" {
		t.Errorf("genesis prev = %q, want empty", first[0].PrevHash)
	}
	if first[1].PrevHash != first[0].Hash || second[0].PrevHash != first[1].Hash {
		t.Error("chain links broken across batches")
	}

	res, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Entries != 3 {
		t.Errorf("verify = %+v", res)
	}

	b, ok := l.Balance("p1")
	if !ok || math.Abs(b.NetEUR-5.4) > 1e-12 || b.Entries != 2 || b.Compliant != 1 {
		t.Errorf("p1 balance = %+v", b)
	}
	b, _ = l.Balance("p2")
	if math.Abs(b.NetEUR+0.3) > 1e-12 || b.Deviations != 1 {
		t.Errorf("p2 balance = %+v", b)
	}
	if !l.HasSettled(1) || l.HasSettled(2) {
		t.Error("settled index: offer 1 settled via line, offer 2 only penalized")
	}
}

func TestLedgerReopenRebuildsIndexes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l := openTestLedger(t, path)
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]Entry{{
			Kind: EntryLine, Actor: fmt.Sprintf("p%d", i%3), OfferID: flexoffer.ID(100 + i), AmountEUR: 1, Compliant: true,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	want := l.Balances()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestLedger(t, path)
	defer re.Close()
	st := re.Stats()
	if st.Entries != 10 || st.RecoveredEntries != 10 || st.DroppedBytes != 0 {
		t.Errorf("stats after reopen = %+v", st)
	}
	got := re.Balances()
	if len(got) != len(want) {
		t.Fatalf("balances: %d actors, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("balance[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	for i := 0; i < 10; i++ {
		if !re.HasSettled(flexoffer.ID(100 + i)) {
			t.Errorf("offer %d lost from settled index", 100+i)
		}
	}

	// The chain must continue seamlessly across the reopen.
	if _, err := re.Append([]Entry{{Kind: EntryTrade, Actor: "market", AmountEUR: -2}}); err != nil {
		t.Fatal(err)
	}
	res, err := re.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Entries != 11 {
		t.Errorf("verify after reopen+append = %+v", res)
	}
}

func TestLedgerDetectsCorruptedEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l := openTestLedger(t, path)
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]Entry{{
			Kind: EntryLine, Actor: "p", OfferID: flexoffer.ID(i), AmountEUR: float64(i), Compliant: true,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip the amount inside entry 7 without touching framing: the
	// content hash must catch it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[7] = strings.Replace(lines[7], `"amount_eur":7`, `"amount_eur":9`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("verification passed over a corrupted entry")
	}
	if res.Entries != 7 || res.FirstBadSeq != 7 {
		t.Errorf("divergence at seq %d after %d entries, want 7/7 (%s)", res.FirstBadSeq, res.Entries, res.Reason)
	}

	// Open drops everything from the divergence on and keeps the
	// intact prefix appendable.
	re := openTestLedger(t, path)
	defer re.Close()
	st := re.Stats()
	if st.Entries != 7 || st.DroppedBytes == 0 {
		t.Errorf("recovery stats = %+v", st)
	}
	if _, err := re.Append([]Entry{{Kind: EntryLine, Actor: "p", OfferID: 99, AmountEUR: 1}}); err != nil {
		t.Fatal(err)
	}
	res, err = re.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Entries != 8 {
		t.Errorf("verify after recovery = %+v", res)
	}
}

func TestLedgerTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l := openTestLedger(t, path)
	if _, err := l.Append([]Entry{
		{Kind: EntryLine, Actor: "p", OfferID: 1, AmountEUR: 1, Compliant: true},
		{Kind: EntryLine, Actor: "p", OfferID: 2, AmountEUR: 2, Compliant: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-batch: a torn, newline-less fragment at the
	// tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"kind":"line","actor":"p","amo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openTestLedger(t, path)
	defer re.Close()
	st := re.Stats()
	if st.Entries != 2 || st.RecoveredEntries != 2 || st.DroppedBytes == 0 {
		t.Errorf("recovery stats = %+v", st)
	}
	if _, err := re.Append([]Entry{{Kind: EntryLine, Actor: "p", OfferID: 3, AmountEUR: 3}}); err != nil {
		t.Fatal(err)
	}
	res, err := re.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Entries != 3 {
		t.Errorf("verify after torn-tail recovery = %+v", res)
	}
}

// TestLedgerConcurrentAppendRace hammers Append from many goroutines
// and checks the chain stays a single verifiable total order.
func TestLedgerConcurrentAppendRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l := openTestLedger(t, path)
	defer l.Close()

	const workers, batches, perBatch = 8, 25, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			actor := fmt.Sprintf("p%d", w)
			for b := 0; b < batches; b++ {
				entries := make([]Entry, perBatch)
				for i := range entries {
					entries[i] = Entry{Kind: EntryTrade, Actor: actor, AmountEUR: 0.25}
				}
				if _, err := l.Append(entries); err != nil {
					t.Error(err)
					return
				}
				if b%5 == 0 {
					l.Balance(actor)
					l.Stats()
				}
			}
		}(w)
	}
	wg.Wait()

	res, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	const total = workers * batches * perBatch
	if !res.OK || res.Entries != total {
		t.Errorf("verify = %+v, want OK with %d entries", res, total)
	}
	for w := 0; w < workers; w++ {
		b, ok := l.Balance(fmt.Sprintf("p%d", w))
		if !ok || b.Entries != batches*perBatch || math.Abs(b.NetEUR-batches*perBatch*0.25) > 1e-9 {
			t.Errorf("worker %d balance = %+v", w, b)
		}
	}
}

func TestLedgerEmptyAppendAndMissingFile(t *testing.T) {
	if _, err := OpenLedger(LedgerConfig{}); err == nil {
		t.Error("empty path accepted")
	}
	path := filepath.Join(t.TempDir(), "fresh.log")
	l := openTestLedger(t, path)
	defer l.Close()
	if out, err := l.Append(nil); err != nil || out != nil {
		t.Errorf("empty append = %v, %v", out, err)
	}
	res, err := l.Verify()
	if err != nil || !res.OK || res.Entries != 0 {
		t.Errorf("verify empty ledger = %+v, %v", res, err)
	}
}
