package settle

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

func scheduledOffer(id flexoffer.ID, prosumer string, premium float64, energy []float64) store.OfferRecord {
	profile := make([]flexoffer.Slice, len(energy))
	for i, e := range energy {
		profile[i] = flexoffer.Slice{EnergyMin: e - 5, EnergyMax: e + 5}
	}
	return store.OfferRecord{
		Offer: &flexoffer.FlexOffer{
			ID: id, Prosumer: prosumer, EarliestStart: 10, LatestStart: 20, AssignBefore: 5,
			Profile: profile, CostPerKWh: premium,
		},
		Owner:    prosumer,
		State:    store.OfferScheduled,
		Schedule: &flexoffer.Schedule{OfferID: id, Start: 12, Energy: energy},
	}
}

func assertStates(t *testing.T, st *store.Store, state store.OfferState, want int) {
	t.Helper()
	if got := len(st.Offers(store.OfferFilter{State: state})); got != want {
		t.Errorf("offers in state %q = %d, want %d", state, got, want)
	}
}

func TestRunSettlesScheduledOffers(t *testing.T) {
	st := store.NewInMemory()
	for i := 1; i <= 5; i++ {
		if err := st.PutOffer(scheduledOffer(flexoffer.ID(i), fmt.Sprintf("p%d", i), 0.02, []float64{10, 10})); err != nil {
			t.Fatal(err)
		}
	}
	led := openTestLedger(t, filepath.Join(t.TempDir(), "ledger.log"))
	defer led.Close()

	rep, err := Run(RunConfig{
		Store:  st,
		Ledger: led,
		Settle: Config{ShareFrac: 0.5, RealizedProfitEUR: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 5 || rep.CompliantCount != 5 || rep.AlreadySettled != 0 {
		t.Fatalf("report = %+v", rep)
	}
	assertStates(t, st, store.OfferScheduled, 0)
	assertStates(t, st, store.OfferExecuted, 5)

	// Each compliant line lands as one line entry plus one share entry,
	// and per-actor balances equal the line nets.
	stats := led.Stats()
	if stats.Entries != 10 || stats.SettledOffers != 5 {
		t.Errorf("ledger stats = %+v", stats)
	}
	for _, l := range rep.Lines {
		b, ok := led.Balance(l.Prosumer)
		if !ok || math.Abs(b.NetEUR-l.NetEUR) > 1e-9 {
			t.Errorf("balance(%s) = %+v, want net %g", l.Prosumer, b, l.NetEUR)
		}
	}
	res, err := led.Verify()
	if err != nil || !res.OK {
		t.Fatalf("verify = %+v, %v", res, err)
	}

	// A second run finds nothing: no scheduled offers, no duplicates.
	rep2, err := Run(RunConfig{Store: st, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Lines) != 0 || rep2.AlreadySettled != 0 {
		t.Errorf("re-run report = %+v", rep2)
	}
	if led.Stats().Entries != 10 {
		t.Error("re-run appended entries")
	}
}

func TestRunEntriesReconcileWithLineNet(t *testing.T) {
	st := store.NewInMemory()
	// Offer 1 compliant; offer 2 deviates so hard the penalty exceeds
	// the payment — the ledger must charge only the clamped amount.
	if err := st.PutOffer(scheduledOffer(1, "good", 0.02, []float64{10, 10})); err != nil {
		t.Fatal(err)
	}
	if err := st.PutOffer(scheduledOffer(2, "bad", 0.001, []float64{10})); err != nil {
		t.Fatal(err)
	}
	led := openTestLedger(t, filepath.Join(t.TempDir(), "ledger.log"))
	defer led.Close()

	rep, err := Run(RunConfig{
		Store:   st,
		Ledger:  led,
		Metered: map[flexoffer.ID][]float64{2: {30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range rep.Lines {
		b, ok := led.Balance(l.Prosumer)
		if !ok || math.Abs(b.NetEUR-l.NetEUR) > 1e-9 {
			t.Errorf("Σ entries for %s = %g, want line net %g", l.Prosumer, b.NetEUR, l.NetEUR)
		}
	}
	if b, _ := led.Balance("bad"); b.NetEUR != 0 || b.Deviations != 1 {
		t.Errorf("clamped penalty balance = %+v", b)
	}
}

// TestRunCrashRecoveryIdempotent is the crash-acceptance test: the run
// dies between a batch's (acked) ledger append and its offer
// transition; after "reboot" (reopening the ledger from disk), a second
// run must recognize the already-settled offers from the chain, finish
// their transitions without re-appending, and settle the untouched rest
// normally.
func TestRunCrashRecoveryIdempotent(t *testing.T) {
	const offers, batchSize = 10, 4
	st := store.NewInMemory()
	for i := 1; i <= offers; i++ {
		if err := st.PutOffer(scheduledOffer(flexoffer.ID(i), fmt.Sprintf("p%d", i), 0.02, []float64{10})); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "ledger.log")
	led := openTestLedger(t, path)

	testCrashAfterBatch = func(batch int) bool { return batch == 0 }
	defer func() { testCrashAfterBatch = nil }()
	_, err := Run(RunConfig{Store: st, Ledger: led, BatchSize: batchSize})
	if !errors.Is(err, errCrashed) {
		t.Fatalf("run error = %v, want simulated crash", err)
	}
	// The crash hit after batch 0's append: its 4 lines are durable on
	// the chain, but every offer is still scheduled.
	if got := led.Stats().Entries; got != batchSize {
		t.Fatalf("entries at crash = %d, want %d", got, batchSize)
	}
	assertStates(t, st, store.OfferScheduled, offers)
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	testCrashAfterBatch = nil

	// Reboot: reopen the ledger from disk and re-run.
	led = openTestLedger(t, path)
	defer led.Close()
	if led.Stats().RecoveredEntries != batchSize {
		t.Fatalf("recovered = %d, want %d", led.Stats().RecoveredEntries, batchSize)
	}
	rep, err := Run(RunConfig{Store: st, Ledger: led, BatchSize: batchSize})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlreadySettled != batchSize {
		t.Errorf("already settled = %d, want %d", rep.AlreadySettled, batchSize)
	}
	if len(rep.Lines) != offers-batchSize {
		t.Errorf("fresh lines = %d, want %d", len(rep.Lines), offers-batchSize)
	}
	assertStates(t, st, store.OfferScheduled, 0)
	assertStates(t, st, store.OfferExecuted, offers)

	// No duplicates: exactly one line entry per offer, chain verifies.
	stats := led.Stats()
	if stats.Entries != offers || stats.SettledOffers != offers {
		t.Errorf("ledger after recovery = %+v", stats)
	}
	res, err := led.Verify()
	if err != nil || !res.OK || res.Entries != offers {
		t.Fatalf("verify after recovery = %+v, %v", res, err)
	}

	// A third run is a no-op.
	rep3, err := Run(RunConfig{Store: st, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Lines) != 0 || rep3.AlreadySettled != 0 || led.Stats().Entries != offers {
		t.Errorf("third run = %+v, entries = %d", rep3, led.Stats().Entries)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("run without store/ledger accepted")
	}
}

func TestTradeAndNegotiationEntries(t *testing.T) {
	led := openTestLedger(t, filepath.Join(t.TempDir(), "ledger.log"))
	defer led.Close()
	if _, err := led.Append([]Entry{
		TradeEntry(40, 12.5, 1.75, "buy imbalance cover"),
		NegotiationEntry(7, "p7", true, 0.031, ""),
		NegotiationEntry(8, "p8", false, 0, "cap below reservation"),
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := led.Balance("market"); math.Abs(b.NetEUR-1.75) > 1e-12 {
		t.Errorf("market balance = %+v", b)
	}
	// Negotiation entries are audit-only: no cash movement.
	if b, _ := led.Balance("p7"); b.NetEUR != 0 || b.Entries != 1 {
		t.Errorf("p7 balance = %+v", b)
	}
	if led.HasSettled(7) {
		t.Error("negotiation entry marked offer as settled")
	}
	res, err := led.Verify()
	if err != nil || !res.OK || res.Entries != 3 {
		t.Fatalf("verify = %+v, %v", res, err)
	}
}
