package settle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

// EntryKind classifies one ledger entry.
type EntryKind string

// The ledger's entry kinds: everything the BRP's settlement and market
// activity produces as an auditable money or energy flow.
const (
	// EntryLine is a settlement line: the flexibility premium paid for
	// one executed flex-offer. Exactly one per settled offer — the
	// dedup anchor for idempotent re-settlement.
	EntryLine EntryKind = "line"
	// EntryPenalty charges a deviation (imbalance) penalty.
	EntryPenalty EntryKind = "penalty"
	// EntryShare distributes a slice of the BRP's realized profit.
	EntryShare EntryKind = "share"
	// EntryTrade records a market trade by the BRP.
	EntryTrade EntryKind = "trade"
	// EntryNegotiation records the outcome of a negotiation session.
	EntryNegotiation EntryKind = "negotiation"
	// EntryCancel voids one open flex-offer of a prosumer leaving
	// mid-contract, charging the cancellation penalty. Like EntryLine it
	// marks the offer settled on the chain, so a crashed cancellation
	// run never charges an offer twice.
	EntryCancel EntryKind = "cancel"
	// EntryClose zeroes a departing prosumer's net balance — the final
	// cash movement of the contract, after which the actor's NetEUR is 0.
	EntryClose EntryKind = "close"
)

// Entry is one immutable line of the settlement ledger. Hash is the
// SHA-256 of the entry's canonical encoding (which includes PrevHash),
// so every entry seals the whole chain before it: flipping any byte of
// any earlier entry — or reordering entries — breaks verification from
// that point on.
type Entry struct {
	Seq     uint64         `json:"seq"`
	Kind    EntryKind      `json:"kind"`
	Actor   string         `json:"actor"`
	OfferID flexoffer.ID   `json:"offer_id,omitempty"`
	Slot    flexoffer.Time `json:"slot,omitempty"`
	KWh     float64        `json:"kwh,omitempty"`
	// AmountEUR is the signed cash flow from the ledger owner (the BRP)
	// to the entry's actor: positive credits the actor, negative
	// charges them.
	AmountEUR float64 `json:"amount_eur"`
	Compliant bool    `json:"compliant,omitempty"`
	Memo      string  `json:"memo,omitempty"`
	PrevHash  string  `json:"prev"`
	Hash      string  `json:"hash"`
}

// appendCanonical builds the deterministic byte encoding the hash
// covers: every field except Hash itself, strings length-prefixed so no
// crafted value can shift bytes across field boundaries.
func appendCanonical(buf []byte, e *Entry) []byte {
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, e.Seq, 10)
	buf = appendCanonString(buf, string(e.Kind))
	buf = appendCanonString(buf, e.Actor)
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, uint64(e.OfferID), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(e.Slot), 10)
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, math.Float64bits(e.KWh), 16)
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, math.Float64bits(e.AmountEUR), 16)
	if e.Compliant {
		buf = append(buf, '|', '1')
	} else {
		buf = append(buf, '|', '0')
	}
	buf = appendCanonString(buf, e.Memo)
	buf = appendCanonString(buf, e.PrevHash)
	return buf
}

func appendCanonString(buf []byte, s string) []byte {
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(len(s)), 10)
	buf = append(buf, ':')
	return append(buf, s...)
}

// entryHash computes the hex SHA-256 of the entry's canonical encoding.
func entryHash(e *Entry, scratch []byte) (string, []byte) {
	scratch = appendCanonical(scratch[:0], e)
	sum := sha256.Sum256(scratch)
	return hex.EncodeToString(sum[:]), scratch
}

// Balance is the running per-actor index the ledger maintains
// incrementally on append and rebuilds from the chain on open.
type Balance struct {
	Actor string
	// NetEUR is the actor's running net position against the BRP
	// (Σ AmountEUR over the actor's entries).
	NetEUR float64
	// Entries counts the actor's ledger entries.
	Entries int
	// Compliant counts settlement lines executed within tolerance;
	// Deviations counts penalty entries.
	Compliant  int
	Deviations int
	// LastSeq is the sequence number of the actor's latest entry.
	LastSeq uint64
}

// LedgerConfig parameterizes OpenLedger.
type LedgerConfig struct {
	// Path is the ledger file (created if missing).
	Path string
	// Sync is the group-commit fsync policy (store.SyncFlush default);
	// SyncInterval is the cadence under store.SyncInterval.
	Sync         store.SyncPolicy
	SyncInterval time.Duration
}

// LedgerStats snapshots the ledger's counters.
type LedgerStats struct {
	Entries       uint64
	Actors        int
	SettledOffers int
	// Appends counts Append batches; AppendP50/P95/P99 are batch append
	// latencies (staging + group commit) over a sliding window.
	Appends             uint64
	AppendP50, P95, P99 time.Duration
	// RecoveredEntries is how many entries the last Open replayed;
	// DroppedBytes how many trailing bytes (torn or divergent) it cut.
	RecoveredEntries uint64
	DroppedBytes     int64
	Log              store.LogStats
}

// VerifyResult reports a chain verification walk.
type VerifyResult struct {
	// Entries verified up to the first divergence (all of them when OK).
	Entries uint64
	OK      bool
	// FirstBadSeq / Offset / Reason locate the first divergence when
	// !OK: the expected sequence number, the byte offset of the line,
	// and what failed (decode, sequence, chain link or content hash).
	FirstBadSeq uint64
	Offset      int64
	Reason      string
}

// Ledger is an append-only, hash-chained settlement ledger on a
// group-committed log: concurrent appenders batch into shared fsync
// rounds, an Append return is the durability ack, and the chain of
// PrevHash links makes the history tamper-evident end to end. Per-actor
// balances and the settled-offer index are maintained incrementally and
// rebuilt from the chain on open. All methods are safe for concurrent
// use.
type Ledger struct {
	mu  sync.Mutex
	log *store.GroupLog

	lastHash string
	nextSeq  uint64

	balances map[string]*Balance
	settled  map[flexoffer.ID]struct{}

	appends   uint64
	latRing   [512]time.Duration
	latCount  int
	recovered uint64
	dropped   int64

	scratch []byte
}

var errStopReplay = errors.New("settle: stop replay")

// OpenLedger opens (or creates) the ledger at cfg.Path, rebuilding the
// balance and settled-offer indexes from the chain. Recovery mirrors
// the ingest journal: the intact prefix — every entry whose decode,
// sequence, chain link and content hash check out — is kept, and
// everything after the first divergence (a torn tail from a crash
// mid-batch, or trailing corruption) is cut off so new appends never
// land behind a broken link.
func OpenLedger(cfg LedgerConfig) (*Ledger, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("settle: ledger path required")
	}
	l := &Ledger{
		balances: make(map[string]*Balance),
		settled:  make(map[flexoffer.ID]struct{}),
	}
	intact, err := store.ReplayLines(cfg.Path, func(line []byte) error {
		e, _, ok := l.checkNext(line)
		if !ok {
			return errStopReplay
		}
		l.applyEntry(e)
		return nil
	})
	if err != nil && !errors.Is(err, errStopReplay) {
		return nil, err
	}
	l.recovered = l.nextSeq
	if fi, serr := os.Stat(cfg.Path); serr == nil && fi.Size() > intact {
		l.dropped = fi.Size() - intact
		if terr := os.Truncate(cfg.Path, intact); terr != nil {
			return nil, fmt.Errorf("settle: truncate broken ledger tail: %w", terr)
		}
	}
	log, err := store.OpenGroupLog(cfg.Path, cfg.Sync, cfg.SyncInterval)
	if err != nil {
		return nil, err
	}
	l.log = log
	return l, nil
}

// checkNext validates one line against the chain position (l.nextSeq,
// l.lastHash) without applying it. Caller holds mu (or owns l
// exclusively, as during Open).
func (l *Ledger) checkNext(line []byte) (*Entry, string, bool) {
	var e Entry
	if err := json.Unmarshal(line, &e); err != nil {
		return nil, "undecodable entry", false
	}
	if e.Seq != l.nextSeq {
		return nil, fmt.Sprintf("sequence %d, want %d", e.Seq, l.nextSeq), false
	}
	if e.PrevHash != l.lastHash {
		return nil, "chain link does not match previous hash", false
	}
	var h string
	h, l.scratch = entryHash(&e, l.scratch)
	if h != e.Hash {
		return nil, "content hash mismatch", false
	}
	return &e, "", true
}

// applyEntry advances the chain state and the incremental indexes by
// one verified entry. Caller holds mu (or owns l exclusively).
func (l *Ledger) applyEntry(e *Entry) {
	l.lastHash = e.Hash
	l.nextSeq = e.Seq + 1
	if e.Kind == EntryLine || e.Kind == EntryCancel {
		l.settled[e.OfferID] = struct{}{}
	}
	b := l.balances[e.Actor]
	if b == nil {
		b = &Balance{Actor: e.Actor}
		l.balances[e.Actor] = b
	}
	b.NetEUR += e.AmountEUR
	b.Entries++
	b.LastSeq = e.Seq
	switch e.Kind {
	case EntryLine:
		if e.Compliant {
			b.Compliant++
		}
	case EntryPenalty, EntryCancel:
		b.Deviations++
	}
}

// Append seals the entries onto the chain — assigning Seq, PrevHash and
// Hash in order — and commits them to the log as one WAL group. The
// return is the durability ack: per the fsync policy, the batch is on
// disk when Append comes back, and only then may dependent state (offer
// transitions) move. The returned entries carry their assigned chain
// fields.
func (l *Ledger) Append(entries []Entry) ([]Entry, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	lines := make([][]byte, len(entries))
	prev, seq := l.lastHash, l.nextSeq
	for i := range entries {
		e := &entries[i]
		e.Seq = seq
		e.PrevHash = prev
		e.Hash, l.scratch = entryHash(e, l.scratch)
		data, err := json.Marshal(e)
		if err != nil {
			return nil, fmt.Errorf("settle: marshal ledger entry: %w", err)
		}
		lines[i] = append(data, '\n')
		prev = e.Hash
		seq++
	}
	// The chain order must equal the file order, so the group commit
	// happens under the ledger lock: batches — not single entries — are
	// the append throughput unit.
	if err := l.log.Append(lines); err != nil {
		return nil, fmt.Errorf("settle: append ledger batch: %w", err)
	}
	for i := range entries {
		l.applyEntry(&entries[i])
	}
	l.appends++
	l.latRing[l.latCount%len(l.latRing)] = time.Since(start)
	l.latCount++
	return entries, nil
}

// HasSettled reports whether the chain already holds the settlement
// line of the given offer — the idempotency anchor for re-settlement
// after a crash.
func (l *Ledger) HasSettled(id flexoffer.ID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.settled[id]
	return ok
}

// Balance returns the running per-actor index entry; ok is false for an
// actor without ledger entries.
func (l *Ledger) Balance(actor string) (Balance, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.balances[actor]
	if !ok {
		return Balance{}, false
	}
	return *b, true
}

// Balances lists every actor's balance, sorted by actor.
func (l *Ledger) Balances() []Balance {
	l.mu.Lock()
	out := make([]Balance, 0, len(l.balances))
	for _, b := range l.balances {
		out = append(out, *b)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Actor < out[j].Actor })
	return out
}

// Stats snapshots the ledger's counters.
func (l *Ledger) Stats() LedgerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LedgerStats{
		Entries:          l.nextSeq,
		Actors:           len(l.balances),
		SettledOffers:    len(l.settled),
		Appends:          l.appends,
		RecoveredEntries: l.recovered,
		DroppedBytes:     l.dropped,
		Log:              l.log.Stats(),
	}
	n := l.latCount
	if n > len(l.latRing) {
		n = len(l.latRing)
	}
	if n > 0 {
		lats := append([]time.Duration(nil), l.latRing[:n]...)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		s.AppendP50 = lats[n/2]
		s.P95 = lats[n*95/100]
		s.P99 = lats[n*99/100]
	}
	return s
}

// Verify re-walks the whole chain from disk and reports the first
// divergence, if any. It is the audit operation: the walk recomputes
// every content hash and re-checks every chain link against the bytes
// actually on disk, holding the ledger lock so the chain is a
// consistent point-in-time snapshot (appends wait).
func (l *Ledger) Verify() (VerifyResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.log.Sync(); err != nil {
		return VerifyResult{}, err
	}
	return VerifyFile(l.log.Path())
}

// VerifyFile verifies the hash chain of a ledger file without opening
// it for appends — the offline audit used by tooling.
func VerifyFile(path string) (VerifyResult, error) {
	res := VerifyResult{OK: true}
	walk := &Ledger{} // chain cursor only; indexes stay nil
	walk.balances = make(map[string]*Balance)
	walk.settled = make(map[flexoffer.ID]struct{})
	end, err := store.ReplayLines(path, func(line []byte) error {
		e, reason, ok := walk.checkNext(line)
		if !ok {
			res.OK = false
			res.FirstBadSeq = walk.nextSeq
			res.Reason = reason
			return errStopReplay
		}
		walk.applyEntry(e)
		res.Entries++
		return nil
	})
	res.Offset = end
	if err != nil && !errors.Is(err, errStopReplay) {
		return res, err
	}
	return res, nil
}

// Sync flushes and fsyncs the ledger log.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Sync()
}

// Path returns the ledger's file path.
func (l *Ledger) Path() string { return l.log.Path() }

// Close flushes, fsyncs and closes the ledger. Further appends fail.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Close()
}
