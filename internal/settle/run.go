package settle

import (
	"fmt"
	"math"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

// RunConfig parameterizes a batched settlement run over the store.
type RunConfig struct {
	// Store holds the scheduled offers to settle.
	Store *store.Store
	// Ledger receives the settlement entries; its append ack gates the
	// offer transitions.
	Ledger *Ledger
	// Metered maps offer → measured energy per schedule slice; offers
	// without an entry settle as perfectly compliant (metered ==
	// scheduled), the common case.
	Metered map[flexoffer.ID][]float64
	// Settle parameterizes the settlement arithmetic.
	Settle Config
	// BatchSize bounds one ledger-append + offer-transition unit
	// (default 256).
	BatchSize int
}

// RunReport extends Report with the run's durability accounting.
type RunReport struct {
	Report
	// AlreadySettled counts offers whose settlement line was already on
	// the ledger from an earlier run that crashed before transitioning
	// them — they were moved to executed without new ledger entries.
	AlreadySettled int
	// Batches is the number of ledger-append/transition units committed.
	Batches int
}

// testCrashAfterBatch, when set by tests, simulates a crash between a
// batch's ledger append (acked, durable) and its offer transition: if
// it returns true for the just-appended batch index, Run stops
// immediately, leaving those offers scheduled. Re-running must then
// dedup against the ledger.
var testCrashAfterBatch func(batch int) bool

// errCrashed marks the simulated crash.
var errCrashed = fmt.Errorf("settle: simulated crash after ledger append")

// Run settles every scheduled offer in the store as one batched run:
// the settlement arithmetic happens once over all fresh offers (so the
// profit-share pool splits globally, not per batch), then entries are
// appended to the ledger and offers transitioned to executed in
// batches, with each batch's ledger append acked before its
// transitions. A crash between the two leaves the batch's offers
// scheduled but their lines on the chain; the next Run detects them via
// the ledger's settled-offer index and just completes the transition —
// re-settlement is idempotent, the chain never holds duplicates.
func Run(cfg RunConfig) (*RunReport, error) {
	if cfg.Store == nil || cfg.Ledger == nil {
		return nil, fmt.Errorf("settle: run requires store and ledger")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}

	recs := cfg.Store.Offers(store.OfferFilter{State: store.OfferScheduled})
	var (
		items []Item         // fresh offers to settle
		ids   []flexoffer.ID // ids aligned with items
		stale []flexoffer.ID // already on the ledger, just transition
	)
	for _, rec := range recs {
		if rec.Schedule == nil {
			continue
		}
		if cfg.Ledger.HasSettled(rec.Offer.ID) {
			stale = append(stale, rec.Offer.ID)
			continue
		}
		metered, ok := cfg.Metered[rec.Offer.ID]
		if !ok {
			metered = MeteredFromSchedule(rec.Schedule)
		}
		// The ledger needs an actor per line; offers submitted over the
		// wire often carry only the store record's owner, not an
		// embedded prosumer name.
		off := rec.Offer
		if off.Prosumer == "" && rec.Owner != "" {
			c := *off
			c.Prosumer = rec.Owner
			off = &c
		}
		items = append(items, Item{
			Offer:      off,
			Schedule:   rec.Schedule,
			PremiumEUR: off.CostPerKWh,
			Metered:    metered,
		})
		ids = append(ids, rec.Offer.ID)
	}

	rep, err := Settle(items, cfg.Settle)
	if err != nil {
		return nil, err
	}
	out := &RunReport{Report: *rep, AlreadySettled: len(stale)}

	// Complete the transitions an earlier crashed run left behind
	// before settling anything new: their money is already on the
	// chain.
	if len(stale) > 0 {
		if err := transitionExecuted(cfg.Store, stale); err != nil {
			return nil, err
		}
	}

	for start := 0; start < len(rep.Lines); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > len(rep.Lines) {
			end = len(rep.Lines)
		}
		var entries []Entry
		for i := start; i < end; i++ {
			entries = append(entries, entriesForLine(&rep.Lines[i])...)
		}
		// The append ack is the commit point: only once the batch is
		// durable may its offers leave the scheduled state.
		if _, err := cfg.Ledger.Append(entries); err != nil {
			return nil, err
		}
		if testCrashAfterBatch != nil && testCrashAfterBatch(out.Batches) {
			return out, errCrashed
		}
		if err := transitionExecuted(cfg.Store, ids[start:end]); err != nil {
			return nil, err
		}
		out.Batches++
	}
	return out, nil
}

// entriesForLine translates one settlement line into its ledger
// entries. The amounts reconcile exactly: Σ AmountEUR over an offer's
// entries equals the line's NetEUR (the penalty entry charges only what
// the never-below-zero clamp actually deducts).
func entriesForLine(l *Line) []Entry {
	entries := []Entry{{
		Kind:      EntryLine,
		Actor:     l.Prosumer,
		OfferID:   l.OfferID,
		KWh:       l.MeteredKWh,
		AmountEUR: l.PaymentEUR,
		Compliant: l.Compliant,
	}}
	if l.PenaltyEUR > 0 {
		charged := math.Min(l.PenaltyEUR, l.PaymentEUR)
		entries = append(entries, Entry{
			Kind:      EntryPenalty,
			Actor:     l.Prosumer,
			OfferID:   l.OfferID,
			KWh:       l.DeviationKWh,
			AmountEUR: -charged,
			Memo:      fmt.Sprintf("raw penalty %.6f EUR", l.PenaltyEUR),
		})
	}
	if l.ShareEUR > 0 {
		entries = append(entries, Entry{
			Kind:      EntryShare,
			Actor:     l.Prosumer,
			OfferID:   l.OfferID,
			AmountEUR: l.ShareEUR,
		})
	}
	return entries
}

// transitionExecuted moves the given offers scheduled → executed as one
// WAL-group batch.
func transitionExecuted(st *store.Store, ids []flexoffer.ID) error {
	if len(ids) == 0 {
		return nil
	}
	ups := make([]store.OfferUpdate, len(ids))
	for i, id := range ids {
		ups[i] = store.OfferUpdate{ID: id, Mutate: func(rec *store.OfferRecord) {
			rec.State = store.OfferExecuted
		}}
	}
	results, err := st.UpdateOffers(ups)
	if err != nil {
		return err
	}
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("settle: transition offer %d: %w", ids[i], r.Err)
		}
	}
	return nil
}

// TradeEntry builds a ledger entry for a market trade by the BRP:
// costEUR is the signed BRP cash flow (positive = BRP pays the
// market), which under the ledger's convention is exactly the amount
// credited to the "market" actor.
func TradeEntry(slot flexoffer.Time, kWh, costEUR float64, memo string) Entry {
	return Entry{
		Kind:      EntryTrade,
		Actor:     "market",
		Slot:      slot,
		KWh:       kWh,
		AmountEUR: costEUR,
		Memo:      memo,
	}
}

// NegotiationEntry builds a ledger entry recording a negotiation
// session outcome for an offer. Negotiation moves no money by itself —
// the agreed premium is paid at settlement — so AmountEUR stays zero
// and the premium (EUR/kWh) and reason go into Memo for the audit
// trail.
func NegotiationEntry(offerID flexoffer.ID, prosumer string, accepted bool, premiumEUR float64, reason string) Entry {
	memo := fmt.Sprintf("rejected: %s", reason)
	if accepted {
		memo = fmt.Sprintf("accepted at %.6f EUR/kWh", premiumEUR)
	}
	return Entry{
		Kind:      EntryNegotiation,
		Actor:     prosumer,
		OfferID:   offerID,
		Compliant: accepted,
		Memo:      memo,
	}
}
