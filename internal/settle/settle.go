// Package settle implements execution-time settlement: after scheduled
// flex-offers have run, the BRP compares metered energy against the
// agreed schedules, pays the negotiated flexibility premiums, charges
// deviation penalties, and distributes the profit share (paper §7,
// "Share Realized Profit": "the BRP calculates the realized profit that
// this flex-offer has generated and shares it with the Prosumer").
package settle

import (
	"fmt"
	"math"

	"mirabel/internal/flexoffer"
	"mirabel/internal/negotiate"
)

// Item is one executed flex-offer with its metered outcome.
type Item struct {
	Offer    *flexoffer.FlexOffer
	Schedule *flexoffer.Schedule
	// PremiumEUR is the negotiated flexibility premium per kWh.
	PremiumEUR float64
	// Metered is the measured energy per schedule slice (kWh).
	Metered []float64
}

// Line is the settlement of one flex-offer.
type Line struct {
	OfferID      flexoffer.ID
	Prosumer     string
	ScheduledKWh float64 // Σ |scheduled energy|
	MeteredKWh   float64 // Σ |metered energy|
	DeviationKWh float64 // Σ |metered − scheduled| beyond the tolerance
	PaymentEUR   float64 // flexibility premium earned
	PenaltyEUR   float64 // deviation penalty charged
	ShareEUR     float64 // realized-profit share distributed on top
	NetEUR       float64 // payment − penalty (never below zero) + share
	Compliant    bool    // executed within the tolerance band
}

// Config parameterizes a settlement run.
type Config struct {
	// ToleranceFrac is the per-slice deviation tolerated before
	// penalties apply, relative to the slice's scheduled magnitude
	// (default 0.05).
	ToleranceFrac float64
	// ImbalancePrice prices a deviation in a slot (EUR/kWh); nil means
	// a flat 0.15.
	ImbalancePrice func(slot flexoffer.Time) float64
	// ShareFrac is the fraction of the BRP's realized scheduling profit
	// distributed on top, weighted by scheduled energy (default 0, i.e.
	// premium-only settlement).
	ShareFrac float64
	// RealizedProfitEUR is the BRP's realized profit of the settled
	// period (cost without flexibility minus cost with), the pool for
	// profit sharing.
	RealizedProfitEUR float64
}

// Report is the outcome of a settlement run.
type Report struct {
	Lines []Line
	// Totals.
	TotalPaymentsEUR  float64
	TotalPenaltiesEUR float64
	SharedProfitEUR   float64
	CompliantCount    int
}

// Settle computes the settlement of the given executed flex-offers.
func Settle(items []Item, cfg Config) (*Report, error) {
	if cfg.ToleranceFrac <= 0 {
		cfg.ToleranceFrac = 0.05
	}
	price := cfg.ImbalancePrice
	if price == nil {
		price = func(flexoffer.Time) float64 { return 0.15 }
	}
	if cfg.ShareFrac < 0 || cfg.ShareFrac > 1 {
		return nil, fmt.Errorf("settle: share fraction %g outside [0,1]", cfg.ShareFrac)
	}

	rep := &Report{Lines: make([]Line, 0, len(items))}
	var totalScheduled float64
	for _, it := range items {
		if it.Offer == nil || it.Schedule == nil {
			return nil, fmt.Errorf("settle: item without offer or schedule")
		}
		if len(it.Metered) != len(it.Schedule.Energy) {
			return nil, fmt.Errorf("settle: offer %d: %d metered slices for %d scheduled",
				it.Offer.ID, len(it.Metered), len(it.Schedule.Energy))
		}
		line := Line{OfferID: it.Offer.ID, Prosumer: it.Offer.Prosumer, Compliant: true}
		for j, sched := range it.Schedule.Energy {
			met := it.Metered[j]
			line.ScheduledKWh += math.Abs(sched)
			line.MeteredKWh += math.Abs(met)
			tol := cfg.ToleranceFrac * math.Abs(sched)
			if dev := math.Abs(met - sched); dev > tol {
				excess := dev - tol
				line.DeviationKWh += excess
				line.PenaltyEUR += excess * price(it.Schedule.Start+flexoffer.Time(j))
				line.Compliant = false
			}
		}
		line.PaymentEUR = it.PremiumEUR * line.ScheduledKWh
		line.NetEUR = line.PaymentEUR - line.PenaltyEUR
		if line.NetEUR < 0 {
			line.NetEUR = 0 // prosumers never pay to have offered flexibility
		}
		if line.Compliant {
			rep.CompliantCount++
		}
		totalScheduled += line.ScheduledKWh
		rep.TotalPaymentsEUR += line.PaymentEUR
		rep.TotalPenaltiesEUR += line.PenaltyEUR
		rep.Lines = append(rep.Lines, line)
	}

	// Profit sharing: the pool splits in proportion to scheduled energy,
	// but only compliant executions participate.
	if cfg.ShareFrac > 0 && cfg.RealizedProfitEUR > 0 && totalScheduled > 0 {
		pool, err := negotiate.ShareRealizedProfit(cfg.RealizedProfitEUR, 0, cfg.ShareFrac)
		if err != nil {
			return nil, err
		}
		var compliantScheduled float64
		for _, l := range rep.Lines {
			if l.Compliant {
				compliantScheduled += l.ScheduledKWh
			}
		}
		if compliantScheduled > 0 {
			for i := range rep.Lines {
				if !rep.Lines[i].Compliant {
					continue
				}
				share := pool * rep.Lines[i].ScheduledKWh / compliantScheduled
				rep.Lines[i].ShareEUR = share
				rep.Lines[i].NetEUR += share
				rep.SharedProfitEUR += share
			}
		}
	}
	return rep, nil
}

// MeteredFromSchedule builds the metered vector of a perfectly compliant
// execution — the common case and a convenient test fixture.
func MeteredFromSchedule(s *flexoffer.Schedule) []float64 {
	return append([]float64(nil), s.Energy...)
}
