package workload

import (
	"math/rand"

	"mirabel/internal/flexoffer"
)

// DeviceClass describes one category of flexible load (or production)
// from which flex-offers are drawn. The paper stresses that MIRABEL
// handles "all forms of both flexible demand, e.g., heat pumps,
// dishwashers, washing machines, freezers, and supply, e.g., from private
// solar panels, in a completely general way" — the default mix below
// covers exactly those.
type DeviceClass struct {
	Name   string
	Weight float64 // relative frequency in the generated population

	// Profile geometry.
	MinSlices, MaxSlices int     // execution length range (15-min slots)
	EnergyPerSlot        float64 // typical |energy| per slot (kWh)
	EnergyJitter         float64 // multiplicative jitter (0..1)
	EnergyFlexFrac       float64 // per-slice (max−min)/max ratio

	// Flexibility geometry: typical time flexibilities in slots; a value
	// is picked from TFChoices and jittered by ±TFJitter slots.
	TFChoices []int
	TFJitter  int

	// StartHourWeights biases the earliest start hour of day (len 24);
	// nil means uniform.
	StartHourWeights []float64

	// Production marks generation offers (negative energies).
	Production bool
}

// DefaultDeviceClasses is the standard household mix.
func DefaultDeviceClasses() []DeviceClass {
	evening := hourBias(18, 5.0)
	morning := hourBias(8, 4.0)
	midday := hourBias(12, 4.0)
	return []DeviceClass{
		{
			Name: "ev-charger", Weight: 0.30,
			MinSlices: 6, MaxSlices: 12,
			EnergyPerSlot: 6.0, EnergyJitter: 0.3, EnergyFlexFrac: 0.5,
			TFChoices: []int{20, 24, 28, 32, 36}, TFJitter: 4,
			StartHourWeights: evening,
		},
		{
			Name: "dishwasher", Weight: 0.22,
			MinSlices: 4, MaxSlices: 8,
			EnergyPerSlot: 0.4, EnergyJitter: 0.2, EnergyFlexFrac: 0.1,
			TFChoices: []int{8, 12, 16, 24}, TFJitter: 3,
			StartHourWeights: evening,
		},
		{
			Name: "washing-machine", Weight: 0.20,
			MinSlices: 4, MaxSlices: 8,
			EnergyPerSlot: 0.5, EnergyJitter: 0.2, EnergyFlexFrac: 0.1,
			TFChoices: []int{8, 12, 16, 20}, TFJitter: 3,
			StartHourWeights: morning,
		},
		{
			Name: "heat-pump", Weight: 0.18,
			MinSlices: 2, MaxSlices: 6,
			EnergyPerSlot: 1.5, EnergyJitter: 0.4, EnergyFlexFrac: 0.6,
			TFChoices: []int{4, 8, 12}, TFJitter: 2,
		},
		{
			Name: "solar-panel", Weight: 0.10,
			MinSlices: 8, MaxSlices: 16,
			EnergyPerSlot: 2.0, EnergyJitter: 0.4, EnergyFlexFrac: 0.3,
			TFChoices: []int{0, 2, 4}, TFJitter: 1,
			StartHourWeights: midday,
			Production:       true,
		},
	}
}

// hourBias returns 24 hour weights with a peak of the given width centred
// on peakHour.
func hourBias(peakHour int, width float64) []float64 {
	w := make([]float64, 24)
	for h := 0; h < 24; h++ {
		d := float64(h - peakHour)
		// Wrap around midnight.
		if d > 12 {
			d -= 24
		}
		if d < -12 {
			d += 24
		}
		w[h] = 0.15 + gauss(d, 0, width)
	}
	return w
}

// FlexOfferConfig parameterizes the flex-offer dataset generator.
type FlexOfferConfig struct {
	Count       int           // number of offers
	HorizonDays int           // earliest starts spread over this many days (default 28)
	Classes     []DeviceClass // device mix (default DefaultDeviceClasses)
	Seed        int64
}

// GenerateFlexOffers produces an artificial flex-offer dataset comparable
// to the ~800 000-offer dataset of the paper's aggregation experiment:
// earliest start times are spread widely (slot-granular over the horizon,
// concentrated at device-typical hours) while time flexibilities cluster
// on device-typical values — the asymmetry that makes the P0–P3 threshold
// combinations behave as reported.
func GenerateFlexOffers(cfg FlexOfferConfig) []*flexoffer.FlexOffer {
	if cfg.HorizonDays == 0 {
		cfg.HorizonDays = 28
	}
	classes := cfg.Classes
	if classes == nil {
		classes = DefaultDeviceClasses()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Class sampling by cumulative weight.
	cum := make([]float64, len(classes))
	var total float64
	for i, c := range classes {
		total += c.Weight
		cum[i] = total
	}

	offers := make([]*flexoffer.FlexOffer, cfg.Count)
	for i := range offers {
		c := &classes[pickClass(rng, cum, total)]
		offers[i] = generateOffer(rng, flexoffer.ID(i+1), c, cfg.HorizonDays)
	}
	return offers
}

func pickClass(rng *rand.Rand, cum []float64, total float64) int {
	x := rng.Float64() * total
	for i, c := range cum {
		if x <= c {
			return i
		}
	}
	return len(cum) - 1
}

func generateOffer(rng *rand.Rand, id flexoffer.ID, c *DeviceClass, horizonDays int) *flexoffer.FlexOffer {
	nSlices := c.MinSlices
	if c.MaxSlices > c.MinSlices {
		nSlices += rng.Intn(c.MaxSlices - c.MinSlices + 1)
	}
	profile := make([]flexoffer.Slice, nSlices)
	sign := 1.0
	if c.Production {
		sign = -1
	}
	for j := range profile {
		e := c.EnergyPerSlot * (1 + c.EnergyJitter*(rng.Float64()*2-1))
		maxE := sign * e
		minE := maxE * (1 - c.EnergyFlexFrac)
		if c.Production {
			// For production, min is the more negative bound.
			minE, maxE = maxE, minE
		}
		profile[j] = flexoffer.Slice{EnergyMin: minE, EnergyMax: maxE}
	}

	// Earliest start: pick a day uniformly, an hour by class bias, and a
	// slot within the hour uniformly — wide slot-granular spread.
	day := rng.Intn(horizonDays)
	hour := pickHour(rng, c.StartHourWeights)
	slotInHour := rng.Intn(flexoffer.SlotsPerHour)
	es := flexoffer.Time(day*flexoffer.SlotsPerDay + hour*flexoffer.SlotsPerHour + slotInHour)

	// Time flexibility: class-typical value with small jitter.
	tf := c.TFChoices[rng.Intn(len(c.TFChoices))]
	if c.TFJitter > 0 {
		tf += rng.Intn(2*c.TFJitter+1) - c.TFJitter
	}
	if tf < 0 {
		tf = 0
	}

	return &flexoffer.FlexOffer{
		ID:            id,
		Prosumer:      c.Name,
		EarliestStart: es,
		LatestStart:   es + flexoffer.Time(tf),
		AssignBefore:  es - flexoffer.Time(2*flexoffer.SlotsPerHour),
		Profile:       profile,
		CostPerKWh:    0.01 + 0.02*rng.Float64(),
	}
}

func pickHour(rng *rand.Rand, weights []float64) int {
	if weights == nil {
		return rng.Intn(24)
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for h, w := range weights {
		x -= w
		if x <= 0 {
			return h
		}
	}
	return 23
}
