// Package workload generates the synthetic workloads that stand in for
// the paper's datasets (DESIGN.md §3):
//
//   - a UK-NationalGrid-like half-hourly electricity demand series
//     (multi-seasonal: daily, weekly, annual — the structure HWT and EGRV
//     are built to exploit);
//   - an NREL-like wind supply series (weakly seasonal, strongly
//     stochastic — hard to forecast at long horizons);
//   - temperature and day-ahead price series;
//   - artificial flex-offer datasets with the attribute spreads that the
//     paper's aggregation experiments (Figure 5) rely on.
//
// All generators are deterministic given a seed.
package workload

import (
	"math"
	"math/rand"
	"time"

	"mirabel/internal/timeseries"
)

// DefaultOrigin is the epoch used by all generated series: slot 0 of the
// flex-offer time axis is the same instant, so series and offers align.
var DefaultOrigin = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

// DemandConfig parameterizes the synthetic demand series.
type DemandConfig struct {
	Days       int           // length of the series in days
	Resolution time.Duration // slot length (default 30 min, like the UK data)
	BaseMW     float64       // mean demand level (default 35000, UK-like)
	NoiseFrac  float64       // AR(1) noise std as a fraction of base (default 0.01)
	Seed       int64
}

func (c DemandConfig) withDefaults() DemandConfig {
	if c.Resolution == 0 {
		c.Resolution = timeseries.ResolutionHalfHour
	}
	if c.BaseMW == 0 {
		c.BaseMW = 35000
	}
	if c.NoiseFrac == 0 {
		c.NoiseFrac = 0.01
	}
	return c
}

// dailyShape returns the intra-day demand multiplier for an hour-of-day in
// [0, 24): a night trough around 4am (≈ 60% of the evening peak), a
// morning ramp and an evening peak around 17:30 — the familiar shape of
// the UK metered demand curve.
func dailyShape(hour float64) float64 {
	const trough = 0.62
	morning := 0.28 * gauss(hour, 9.0, 3.0)
	evening := 0.38 * gauss(hour, 17.5, 2.6)
	lateDip := -0.05 * gauss(hour, 23.5, 1.5)
	return trough + morning + evening + lateDip
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

// weeklyShape returns the day-of-week multiplier (Saturday/Sunday lower).
func weeklyShape(weekday time.Weekday) float64 {
	switch weekday {
	case time.Saturday:
		return 0.92
	case time.Sunday:
		return 0.88
	default:
		return 1.0
	}
}

// annualShape returns the day-of-year multiplier (winter heating peak).
func annualShape(dayOfYear int) float64 {
	// Peak in early January, trough in late July.
	return 1 + 0.15*math.Cos(2*math.Pi*float64(dayOfYear-5)/365.25)
}

// DemandSeries generates the UK-like demand series. The returned series
// starts at DefaultOrigin.
func DemandSeries(cfg DemandConfig) *timeseries.Series {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	slotsPerDay := int(24 * time.Hour / cfg.Resolution)
	n := cfg.Days * slotsPerDay
	values := make([]float64, n)

	// AR(1) noise keeps consecutive slots correlated like real demand.
	const ar = 0.85
	noise := 0.0
	sigma := cfg.NoiseFrac * cfg.BaseMW

	for i := 0; i < n; i++ {
		t := DefaultOrigin.Add(time.Duration(i) * cfg.Resolution)
		hour := float64(t.Hour()) + float64(t.Minute())/60
		base := cfg.BaseMW * dailyShape(hour) * weeklyShape(t.Weekday()) * annualShape(t.YearDay())
		noise = ar*noise + math.Sqrt(1-ar*ar)*rng.NormFloat64()*sigma
		values[i] = base + noise
	}
	return timeseries.New(DefaultOrigin, cfg.Resolution, values)
}

// WindConfig parameterizes the synthetic wind supply series.
type WindConfig struct {
	Days       int
	Resolution time.Duration // default 30 min
	CapacityMW float64       // installed capacity (default 3000)
	Seed       int64
}

func (c WindConfig) withDefaults() WindConfig {
	if c.Resolution == 0 {
		c.Resolution = timeseries.ResolutionHalfHour
	}
	if c.CapacityMW == 0 {
		c.CapacityMW = 3000
	}
	return c
}

// powerCurve maps wind speed (m/s) to the power fraction of capacity:
// zero below the cut-in speed, cubic up to the rated speed, then flat.
func powerCurve(speed float64) float64 {
	const cutIn, rated = 3.0, 12.0
	switch {
	case speed < cutIn:
		return 0
	case speed < rated:
		f := (speed - cutIn) / (rated - cutIn)
		return f * f * f
	default:
		return 1
	}
}

// WindSeries generates an NREL-like aggregated wind production series: a
// mean-reverting wind speed process pushed through a cubic power curve,
// with only a faint diurnal component — deliberately much less seasonal
// than demand, which is what makes it hard to forecast (paper Fig. 4b).
func WindSeries(cfg WindConfig) *timeseries.Series {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	slotsPerDay := int(24 * time.Hour / cfg.Resolution)
	n := cfg.Days * slotsPerDay
	values := make([]float64, n)

	// Ornstein-Uhlenbeck-style wind speed around 8 m/s — mid power
	// curve, so output is rarely pinned at zero or capacity.
	const meanSpeed, reversion, vol = 8.0, 0.01, 0.16
	speed := meanSpeed
	for i := 0; i < n; i++ {
		t := DefaultOrigin.Add(time.Duration(i) * cfg.Resolution)
		hour := float64(t.Hour()) + float64(t.Minute())/60
		// Faint diurnal modulation (slightly windier in the afternoon).
		diurnal := 0.4 * math.Sin(2*math.Pi*(hour-3)/24)
		speed += reversion*(meanSpeed-speed) + vol*rng.NormFloat64()
		if speed < 0 {
			speed = 0
		}
		values[i] = cfg.CapacityMW * powerCurve(speed+diurnal)
	}
	return timeseries.New(DefaultOrigin, cfg.Resolution, values)
}

// TemperatureConfig parameterizes the synthetic temperature series used as
// the EGRV weather regressor.
type TemperatureConfig struct {
	Days       int
	Resolution time.Duration // default 30 min
	MeanC      float64       // annual mean (default 10 °C)
	Seed       int64
}

// TemperatureSeries generates a temperature series with annual and daily
// cycles plus AR(1) weather noise.
func TemperatureSeries(cfg TemperatureConfig) *timeseries.Series {
	if cfg.Resolution == 0 {
		cfg.Resolution = timeseries.ResolutionHalfHour
	}
	if cfg.MeanC == 0 {
		cfg.MeanC = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	slotsPerDay := int(24 * time.Hour / cfg.Resolution)
	n := cfg.Days * slotsPerDay
	values := make([]float64, n)
	weather := 0.0
	for i := 0; i < n; i++ {
		t := DefaultOrigin.Add(time.Duration(i) * cfg.Resolution)
		hour := float64(t.Hour()) + float64(t.Minute())/60
		annual := -8 * math.Cos(2*math.Pi*float64(t.YearDay())/365.25)
		daily := 3 * math.Sin(2*math.Pi*(hour-9)/24)
		weather = 0.995*weather + 0.1*rng.NormFloat64()*8
		values[i] = cfg.MeanC + annual + daily + weather
	}
	return timeseries.New(DefaultOrigin, cfg.Resolution, values)
}

// PriceConfig parameterizes the synthetic day-ahead price series.
type PriceConfig struct {
	Days     int
	BaseEUR  float64 // mean price per MWh (default 45)
	PeakAdd  float64 // additional peak-hour price (default 25)
	NoiseEUR float64 // per-hour noise std (default 3)
	Seed     int64
}

// PriceSeries generates an hourly day-ahead price series whose peak
// structure follows the demand shape — peak-period imbalances cost the
// BRP more (paper §6: "mismatches at peak periods cost the BRP more").
func PriceSeries(cfg PriceConfig) *timeseries.Series {
	if cfg.BaseEUR == 0 {
		cfg.BaseEUR = 45
	}
	if cfg.PeakAdd == 0 {
		cfg.PeakAdd = 25
	}
	if cfg.NoiseEUR == 0 {
		cfg.NoiseEUR = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Days * 24
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		hour := float64(i % 24)
		shape := (dailyShape(hour) - 0.62) / 0.38 // 0 at trough, ~1 at peak
		values[i] = cfg.BaseEUR + cfg.PeakAdd*shape + rng.NormFloat64()*cfg.NoiseEUR
	}
	return timeseries.New(DefaultOrigin, time.Hour, values)
}
