package workload

import (
	"testing"
	"time"

	"mirabel/internal/flexoffer"
)

func TestDemandSeriesShape(t *testing.T) {
	s := DemandSeries(DemandConfig{Days: 14, Seed: 1})
	if s.Len() != 14*48 {
		t.Fatalf("Len = %d, want %d", s.Len(), 14*48)
	}
	st := s.Summary()
	if st.Min <= 0 {
		t.Errorf("demand dips to %g, must stay positive", st.Min)
	}
	// Night trough must be well below the evening peak on every day.
	for day := 0; day < 14; day++ {
		night := s.At(day*48 + 8)    // 4am
		evening := s.At(day*48 + 35) // 17:30
		if night >= evening {
			t.Errorf("day %d: night %g >= evening %g", day, night, evening)
		}
		ratio := night / evening
		if ratio < 0.4 || ratio > 0.85 {
			t.Errorf("day %d: trough/peak ratio %g outside UK-like range", day, ratio)
		}
	}
}

func TestDemandWeekendLower(t *testing.T) {
	s := DemandSeries(DemandConfig{Days: 28, Seed: 2, NoiseFrac: 0.001})
	var weekday, weekend, nwd, nwe float64
	for i := 0; i < s.Len(); i++ {
		switch s.TimeOf(i).Weekday() {
		case time.Saturday, time.Sunday:
			weekend += s.At(i)
			nwe++
		default:
			weekday += s.At(i)
			nwd++
		}
	}
	if weekend/nwe >= weekday/nwd {
		t.Errorf("weekend mean %g >= weekday mean %g", weekend/nwe, weekday/nwd)
	}
}

func TestDemandDeterministic(t *testing.T) {
	a := DemandSeries(DemandConfig{Days: 2, Seed: 7})
	b := DemandSeries(DemandConfig{Days: 2, Seed: 7})
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("same seed diverges at slot %d", i)
		}
	}
	c := DemandSeries(DemandConfig{Days: 2, Seed: 8})
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != c.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produce identical series")
	}
}

func TestDemandDailyAutocorrelation(t *testing.T) {
	// Demand must be strongly correlated at a 1-day lag — that is the
	// seasonality forecasting exploits.
	s := DemandSeries(DemandConfig{Days: 28, Seed: 3})
	// Weekday/weekend transitions dilute the 1-day lag slightly, so the
	// bound is 0.85 rather than the pure within-week value.
	if c := autocorr(s.Values(), 48); c < 0.85 {
		t.Errorf("daily autocorrelation = %g, want > 0.85", c)
	}
}

func TestWindSeriesProperties(t *testing.T) {
	s := WindSeries(WindConfig{Days: 28, Seed: 4})
	if s.Len() != 28*48 {
		t.Fatalf("Len = %d", s.Len())
	}
	st := s.Summary()
	if st.Min < 0 {
		t.Errorf("negative wind power %g", st.Min)
	}
	if st.Max > 3000 {
		t.Errorf("wind power %g exceeds capacity", st.Max)
	}
	if st.Std == 0 {
		t.Error("wind series is constant")
	}
	// Wind must be much less daily-seasonal than demand.
	wind := autocorr(s.Values(), 48)
	demand := autocorr(DemandSeries(DemandConfig{Days: 28, Seed: 4}).Values(), 48)
	if wind >= demand {
		t.Errorf("wind daily autocorr %g >= demand %g — wind should be less seasonal", wind, demand)
	}
}

func TestTemperatureSeries(t *testing.T) {
	s := TemperatureSeries(TemperatureConfig{Days: 365, Seed: 5})
	if s.Len() != 365*48 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Winter (January) colder than summer (July) on average.
	jan := mean(s.Values()[:31*48])
	jul := mean(s.Values()[181*48 : 212*48])
	if jan >= jul {
		t.Errorf("January mean %g >= July mean %g", jan, jul)
	}
}

func TestPriceSeriesPeakStructure(t *testing.T) {
	s := PriceSeries(PriceConfig{Days: 30, Seed: 6})
	if s.Len() != 30*24 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Resolution() != time.Hour {
		t.Errorf("resolution = %v", s.Resolution())
	}
	var night, evening float64
	for d := 0; d < 30; d++ {
		night += s.At(d*24 + 4)
		evening += s.At(d*24 + 17)
	}
	if night >= evening {
		t.Errorf("mean night price %g >= evening price %g", night/30, evening/30)
	}
}

func TestGenerateFlexOffersValid(t *testing.T) {
	offers := GenerateFlexOffers(FlexOfferConfig{Count: 5000, Seed: 1})
	if len(offers) != 5000 {
		t.Fatalf("count = %d", len(offers))
	}
	ids := map[flexoffer.ID]bool{}
	for _, f := range offers {
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid offer: %v", err)
		}
		if ids[f.ID] {
			t.Fatalf("duplicate id %d", f.ID)
		}
		ids[f.ID] = true
	}
}

func TestGenerateFlexOffersMix(t *testing.T) {
	offers := GenerateFlexOffers(FlexOfferConfig{Count: 20000, Seed: 2})
	classes := map[string]int{}
	production := 0
	for _, f := range offers {
		classes[f.Prosumer]++
		if f.MinTotalEnergy() < 0 {
			production++
		}
	}
	if len(classes) != 5 {
		t.Errorf("expected 5 device classes, got %v", classes)
	}
	// ~10% production offers (solar).
	frac := float64(production) / float64(len(offers))
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("production fraction = %g, want ~0.1", frac)
	}
}

func TestFlexOfferAttributeSpread(t *testing.T) {
	// The aggregation experiments depend on earliest-start having much
	// higher cardinality than time-flexibility.
	offers := GenerateFlexOffers(FlexOfferConfig{Count: 50000, Seed: 3})
	es := map[flexoffer.Time]bool{}
	tf := map[flexoffer.Time]bool{}
	for _, f := range offers {
		es[f.EarliestStart] = true
		tf[f.TimeFlexibility()] = true
	}
	if len(es) < 10*len(tf) {
		t.Errorf("ES cardinality %d not ≫ TF cardinality %d", len(es), len(tf))
	}
}

func TestFlexOfferHorizon(t *testing.T) {
	offers := GenerateFlexOffers(FlexOfferConfig{Count: 1000, HorizonDays: 7, Seed: 4})
	limit := flexoffer.Time(7 * flexoffer.SlotsPerDay)
	for _, f := range offers {
		if f.EarliestStart < 0 || f.EarliestStart >= limit {
			t.Fatalf("earliest start %d outside 7-day horizon", f.EarliestStart)
		}
	}
}

func TestSeriesOriginsAligned(t *testing.T) {
	d := DemandSeries(DemandConfig{Days: 1, Seed: 1})
	w := WindSeries(WindConfig{Days: 1, Seed: 1})
	if !d.Origin().Equal(w.Origin()) {
		t.Error("demand and wind origins differ")
	}
	if !d.Origin().Equal(DefaultOrigin) {
		t.Error("series origin is not the system epoch")
	}
}

func autocorr(v []float64, lag int) float64 {
	m := mean(v)
	var num, den float64
	for i := lag; i < len(v); i++ {
		num += (v[i] - m) * (v[i-lag] - m)
	}
	for _, x := range v {
		den += (x - m) * (x - m)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func TestPowerCurve(t *testing.T) {
	if powerCurve(2) != 0 {
		t.Error("below cut-in should be 0")
	}
	if powerCurve(13) != 1 {
		t.Error("above rated should be 1")
	}
	mid := powerCurve(7.5)
	if mid <= 0 || mid >= 1 {
		t.Errorf("mid-range power %g outside (0,1)", mid)
	}
	// Monotone non-decreasing.
	prev := -1.0
	for v := 0.0; v < 15; v += 0.25 {
		p := powerCurve(v)
		if p < prev {
			t.Fatalf("power curve decreases at %g", v)
		}
		prev = p
	}
}

func TestGenerateMeasurements(t *testing.T) {
	ms := GenerateMeasurements(MeasurementConfig{Count: 1000, Actors: 7, Seed: 3})
	if len(ms) != 1000 {
		t.Fatalf("count = %d, want 1000", len(ms))
	}
	// Slot-major order: slots never decrease, and within a slot every
	// actor reports before the next slot starts.
	seen := map[string]bool{}
	for i := 1; i < len(ms); i++ {
		if ms[i].Slot < ms[i-1].Slot {
			t.Fatalf("slot order broken at %d: %d after %d", i, ms[i].Slot, ms[i-1].Slot)
		}
	}
	for _, m := range ms {
		if m.KWh <= 0 {
			t.Fatalf("non-positive energy %g", m.KWh)
		}
		seen[m.Actor] = true
	}
	if len(seen) != 7 {
		t.Errorf("distinct actors = %d, want 7", len(seen))
	}
	// Deterministic for a seed.
	again := GenerateMeasurements(MeasurementConfig{Count: 1000, Actors: 7, Seed: 3})
	for i := range ms {
		if ms[i] != again[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}
