package workload

import (
	"fmt"
	"math/rand"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

// MeasurementConfig parameterizes the synthetic meter-stream dataset
// behind the storage-engine experiments: Count metered facts spread
// over a fleet of prosumers, emitted in slot order the way real meter
// streams arrive (per-series appends, not random inserts).
type MeasurementConfig struct {
	Count       int      // total facts (default 100000)
	Actors      int      // distinct prosumers (default 100)
	EnergyTypes []string // per-actor energy flows (default {"demand"})
	BaseKWh     float64  // mean per-slot energy (default 0.5, household-like)
	Seed        int64
}

func (c MeasurementConfig) withDefaults() MeasurementConfig {
	if c.Count == 0 {
		c.Count = 100000
	}
	if c.Actors <= 0 {
		c.Actors = 100
	}
	if len(c.EnergyTypes) == 0 {
		c.EnergyTypes = []string{"demand"}
	}
	if c.BaseKWh == 0 {
		c.BaseKWh = 0.5
	}
	return c
}

// MeasurementActor names the i-th generated prosumer (stable across
// runs, so benchmarks can query known series).
func MeasurementActor(i int) string { return fmt.Sprintf("p%05d", i) }

// GenerateMeasurements builds the meter-stream dataset: slot-major
// order (all actors report slot s before any reports s+1), half-hourly
// daily shape, deterministic for a seed.
func GenerateMeasurements(cfg MeasurementConfig) []store.Measurement {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	out := make([]store.Measurement, 0, c.Count)
	for slot := 0; len(out) < c.Count; slot++ {
		hour := float64(slot%48) * 0.5
		shape := dailyShape(hour)
		for a := 0; a < c.Actors && len(out) < c.Count; a++ {
			for _, et := range c.EnergyTypes {
				if len(out) >= c.Count {
					break
				}
				out = append(out, store.Measurement{
					Actor:      MeasurementActor(a),
					EnergyType: et,
					Slot:       flexoffer.Time(slot),
					KWh:        c.BaseKWh * shape * (0.9 + 0.2*rng.Float64()),
				})
			}
		}
	}
	return out
}
