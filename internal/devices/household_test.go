package devices

import (
	"math/rand"
	"sync"
	"testing"

	"mirabel/internal/flexoffer"
)

// TestNewHouseholdEquipment pins the config → appliance mapping: base
// load is always present, each toggle adds exactly its device.
func TestNewHouseholdEquipment(t *testing.T) {
	ids := &idCounter{}
	cases := []struct {
		name string
		cfg  HouseholdConfig
		want []string
	}{
		{"minimal", HouseholdConfig{Name: "h0"}, []string{"base-load"}},
		{"ev-only", HouseholdConfig{Name: "h1", HasEV: true}, []string{"base-load", "ev-charger"}},
		{"full", HouseholdConfig{Name: "h2", HasEV: true, HasDishwasher: true, HasWasher: true, HasSolar: true},
			[]string{"base-load", "ev-charger", "dishwasher", "washing-machine", "solar-panel"}},
	}
	for _, tc := range cases {
		h := NewHousehold(tc.cfg, ids)
		if len(h.appliances) != len(tc.want) {
			t.Fatalf("%s: %d appliances, want %d", tc.name, len(h.appliances), len(tc.want))
		}
		for i, a := range h.appliances {
			if a.Name() != tc.want[i] {
				t.Errorf("%s: appliance %d = %q, want %q", tc.name, i, a.Name(), tc.want[i])
			}
		}
	}
}

// TestHouseholdTickTagsOffers verifies every offer a household emits
// carries the household name as its prosumer, and that the base load
// meters consumption each slot.
func TestHouseholdTickTagsOffers(t *testing.T) {
	ids := &idCounter{}
	h := NewHousehold(HouseholdConfig{
		Name:  "household-00042",
		HasEV: true, HasDishwasher: true, HasWasher: true, HasSolar: true,
		Seed: 9,
	}, ids)
	offers := 0
	for slot := flexoffer.Time(0); slot < 7*flexoffer.SlotsPerDay; slot++ {
		emitted, kwh := h.Tick(slot)
		if kwh == 0 {
			t.Fatalf("slot %d: no metered base load", slot)
		}
		for _, f := range emitted {
			offers++
			if f.Prosumer != "household-00042" {
				t.Fatalf("offer %d tagged %q", f.ID, f.Prosumer)
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("offer %d: %v", f.ID, err)
			}
		}
	}
	if offers == 0 {
		t.Fatal("fully equipped household emitted no offers in a week")
	}
}

// TestEVChargerStateMachine drives the plugged/unplugged transitions
// directly: a plugged car is silent overnight and unplugs when it
// leaves at 09:00, after which a new evening arrival can plug it again.
func TestEVChargerStateMachine(t *testing.T) {
	ids := &idCounter{}
	ev := &EVCharger{nextID: ids.next}
	rng := rand.New(rand.NewSource(1))

	ev.plugged = true
	// Overnight hours: still plugged, no offer, no consumption event.
	for hour := 0; hour < 9; hour++ {
		e := ev.Tick(flexoffer.Time(hour*flexoffer.SlotsPerHour), rng)
		if e.Offer != nil || e.NonFlexKWh != 0 {
			t.Fatalf("plugged charger emitted %+v at hour %d", e, hour)
		}
		if !ev.plugged {
			t.Fatalf("charger unplugged at hour %d, want 9", hour)
		}
	}
	// 09:00: the car leaves for work.
	ev.Tick(flexoffer.Time(9*flexoffer.SlotsPerHour), rng)
	if ev.plugged {
		t.Fatal("charger still plugged after the 09:00 departure")
	}

	// An unplugged charger never offers outside the 17:00–22:00 arrival
	// window, whatever the random source does.
	for hour := 9; hour < 17; hour++ {
		for s := 0; s < flexoffer.SlotsPerHour; s++ {
			slot := flexoffer.Time(hour*flexoffer.SlotsPerHour + s)
			if e := ev.Tick(slot, rng); e.Offer != nil {
				t.Fatalf("arrival at hour %d, outside the evening window", hour)
			}
		}
	}
	// Evening slots eventually produce an arrival, which re-plugs.
	var offer *flexoffer.FlexOffer
	for slot := flexoffer.Time(17 * flexoffer.SlotsPerHour); offer == nil && slot < 10*flexoffer.SlotsPerDay; slot++ {
		if hourOf(slot) < 17 || hourOf(slot) > 22 {
			continue
		}
		offer = ev.Tick(slot, rng).Offer
	}
	if offer == nil {
		t.Fatal("no evening arrival in 10 days")
	}
	if !ev.plugged {
		t.Fatal("charger did not plug on arrival")
	}
}

// TestWetApplianceDailyLatch verifies the once-per-day latch resets at
// midnight: after a run the appliance is silent for the rest of its
// day, then eligible again the next.
func TestWetApplianceDailyLatch(t *testing.T) {
	ids := &idCounter{}
	w := &WetAppliance{
		Class: "dishwasher", PreferHour: 20, UseProb: 0.99,
		ProgramSlots: 6, KWhPerSlot: 0.3, FlexHours: 8,
		nextID: ids.next,
	}
	rng := rand.New(rand.NewSource(2))

	runDay := func(day int) int {
		runs := 0
		for s := 0; s < flexoffer.SlotsPerDay; s++ {
			slot := flexoffer.Time(day*flexoffer.SlotsPerDay + s)
			if w.Tick(slot, rng).Offer != nil {
				runs++
				if w.usedToday != day+1 {
					t.Fatalf("day %d: latch = %d, want %d", day, w.usedToday, day+1)
				}
			}
		}
		return runs
	}
	day0 := runDay(0)
	if day0 > 1 {
		t.Fatalf("day 0: %d runs, want at most 1", day0)
	}
	// Over enough days the latch must both fire and re-arm. UseProb is
	// the expected trial count per day, so a run happens on roughly
	// 1-1/e of the days; 20 days leave plenty of margin over 5.
	total := day0
	for d := 1; d < 20; d++ {
		if runs := runDay(d); runs > 1 {
			t.Fatalf("day %d: %d runs", d, runs)
		} else {
			total += runs
		}
	}
	if total < 5 {
		t.Fatalf("only %d runs in 20 days at 99%% daily probability", total)
	}
}

// TestSolarPanelMorningOfferLatch pins the 06:00 curtailment offer: one
// per day, only at the top of hour 6, silent for the rest of the day.
func TestSolarPanelMorningOfferLatch(t *testing.T) {
	ids := &idCounter{}
	s := &SolarPanel{nextID: ids.next}
	rng := rand.New(rand.NewSource(3))
	for day := 0; day < 3; day++ {
		for sl := 0; sl < flexoffer.SlotsPerDay; sl++ {
			slot := flexoffer.Time(day*flexoffer.SlotsPerDay + sl)
			e := s.Tick(slot, rng)
			atSix := hourOf(slot) == 6 && int(slot)%flexoffer.SlotsPerHour == 0
			if atSix {
				if e.Offer == nil {
					t.Fatalf("day %d: no curtailment offer at 06:00", day)
				}
				if s.offeredToday != day+1 {
					t.Fatalf("day %d: latch = %d", day, s.offeredToday)
				}
				// The offered band is the 11:00–15:00 production window.
				if h := hourOf(e.Offer.EarliestStart); h != 11 {
					t.Fatalf("curtailment band starts at hour %d, want 11", h)
				}
			} else if e.Offer != nil {
				t.Fatalf("day %d slot %d: offer outside the 06:00 latch", day, sl)
			}
		}
	}
}

// TestIDCounterUnique verifies fleet-wide ID uniqueness under
// concurrent households drawing from one shared counter.
func TestIDCounterUnique(t *testing.T) {
	ids := &idCounter{}
	const workers, per = 8, 500
	var wg sync.WaitGroup
	got := make([][]flexoffer.ID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got[w] = append(got[w], ids.next())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[flexoffer.ID]bool, workers*per)
	for _, list := range got {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("ids = %d, want %d", len(seen), workers*per)
	}
}
