package devices

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mirabel/internal/flexoffer"
)

func TestEVChargerIssuesValidOvernightOffers(t *testing.T) {
	ids := &idCounter{}
	ev := &EVCharger{nextID: ids.next}
	rng := rand.New(rand.NewSource(1))
	sessions := 0
	for slot := flexoffer.Time(0); slot < 14*flexoffer.SlotsPerDay; slot++ {
		e := ev.Tick(slot, rng)
		if e.Offer == nil {
			continue
		}
		sessions++
		if err := e.Offer.Validate(); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		// Issued in the evening window.
		if h := hourOf(e.Offer.EarliestStart); h < 17 || h > 23 {
			t.Errorf("offer earliest start at hour %d", h)
		}
		// Finishes by the deadline when started as late as possible.
		endHour := hourOf(e.Offer.LatestEnd())
		if endHour > 7 && endHour < 17 {
			t.Errorf("latest end at hour %d, must be by 7am", endHour)
		}
		if e.Offer.MaxTotalEnergy() != 50 {
			t.Errorf("energy = %g", e.Offer.MaxTotalEnergy())
		}
	}
	if sessions < 5 {
		t.Errorf("only %d charging sessions in 2 weeks", sessions)
	}
}

func TestEVChargerNoDoublePlug(t *testing.T) {
	ids := &idCounter{}
	ev := &EVCharger{nextID: ids.next}
	rng := rand.New(rand.NewSource(2))
	var lastOffer flexoffer.Time = -1
	for slot := flexoffer.Time(0); slot < 30*flexoffer.SlotsPerDay; slot++ {
		if e := ev.Tick(slot, rng); e.Offer != nil {
			if lastOffer >= 0 && slot-lastOffer < 8 {
				t.Fatalf("second offer %d slots after the first — car was still plugged", slot-lastOffer)
			}
			lastOffer = slot
		}
	}
}

func TestWetApplianceOncePerDay(t *testing.T) {
	ids := &idCounter{}
	w := &WetAppliance{
		Class: "dishwasher", PreferHour: 20, UseProb: 0.9,
		ProgramSlots: 6, KWhPerSlot: 0.3, FlexHours: 8,
		nextID: ids.next,
	}
	rng := rand.New(rand.NewSource(3))
	perDay := map[int]int{}
	for slot := flexoffer.Time(0); slot < 30*flexoffer.SlotsPerDay; slot++ {
		if e := w.Tick(slot, rng); e.Offer != nil {
			if err := e.Offer.Validate(); err != nil {
				t.Fatal(err)
			}
			perDay[dayOf(slot)]++
			if tf := e.Offer.TimeFlexibility(); tf != 8*flexoffer.SlotsPerHour {
				t.Errorf("time flexibility = %d slots", tf)
			}
		}
	}
	for day, n := range perDay {
		if n > 1 {
			t.Errorf("day %d: %d dishwasher runs", day, n)
		}
	}
	if len(perDay) < 15 {
		t.Errorf("only %d usage days of 30 at 90%% probability", len(perDay))
	}
}

func TestSolarPanelProducesAndOffersCurtailment(t *testing.T) {
	ids := &idCounter{}
	s := &SolarPanel{nextID: ids.next}
	rng := rand.New(rand.NewSource(4))
	var production float64
	offers := 0
	for slot := flexoffer.Time(0); slot < 7*flexoffer.SlotsPerDay; slot++ {
		e := s.Tick(slot, rng)
		if e.NonFlexKWh > 0 {
			t.Fatalf("solar panel consumed energy at slot %d", slot)
		}
		production += -e.NonFlexKWh
		if e.Offer != nil {
			offers++
			if err := e.Offer.Validate(); err != nil {
				t.Fatal(err)
			}
			if e.Offer.MinTotalEnergy() >= 0 {
				t.Error("curtailment offer is not production (negative)")
			}
		}
	}
	if production <= 0 {
		t.Error("no solar production in a week")
	}
	if offers != 7 {
		t.Errorf("curtailment offers = %d, want one per day", offers)
	}
}

func TestBaseLoadShape(t *testing.T) {
	b := &BaseLoad{}
	rng := rand.New(rand.NewSource(5))
	var night, evening float64
	for d := 0; d < 20; d++ {
		day := flexoffer.Time(d * flexoffer.SlotsPerDay)
		night += b.Tick(day+4*flexoffer.SlotsPerHour, rng).NonFlexKWh
		evening += b.Tick(day+19*flexoffer.SlotsPerHour, rng).NonFlexKWh
	}
	if night >= evening {
		t.Errorf("night load %g >= evening load %g", night, evening)
	}
}

func TestFleetSimulation(t *testing.T) {
	f := NewFleet(50, 6)
	if len(f.Households) != 50 {
		t.Fatalf("households = %d", len(f.Households))
	}
	res := f.Simulate(0, 2*flexoffer.SlotsPerDay)
	if len(res.NonFlexKWh) != 2*flexoffer.SlotsPerDay {
		t.Fatalf("baseline slots = %d", len(res.NonFlexKWh))
	}
	if len(res.Offers) == 0 {
		t.Fatal("no offers from a 50-household fleet over 2 days")
	}
	ids := map[flexoffer.ID]bool{}
	for _, off := range res.Offers {
		if err := off.Validate(); err != nil {
			t.Fatalf("invalid offer: %v", err)
		}
		if ids[off.ID] {
			t.Fatalf("duplicate offer id %d across the fleet", off.ID)
		}
		ids[off.ID] = true
		if off.Prosumer == "" {
			t.Error("offer without prosumer tag")
		}
	}
}

func TestFleetDeterministic(t *testing.T) {
	a := NewFleet(10, 7).Simulate(0, flexoffer.SlotsPerDay)
	b := NewFleet(10, 7).Simulate(0, flexoffer.SlotsPerDay)
	if len(a.Offers) != len(b.Offers) {
		t.Fatalf("offer counts differ: %d vs %d", len(a.Offers), len(b.Offers))
	}
	for i := range a.NonFlexKWh {
		if a.NonFlexKWh[i] != b.NonFlexKWh[i] {
			t.Fatal("baseline differs for identical seeds")
		}
	}
}

func TestFleetNames(t *testing.T) {
	if got := fleetName(0); got != "household-00000" {
		t.Errorf("fleetName(0) = %q", got)
	}
	if got := fleetName(123); got != "household-00123" {
		t.Errorf("fleetName(123) = %q", got)
	}
}

// Property: every offer any fleet produces over a random day window is
// valid and slot-consistent (assignment deadline before earliest start).
func TestPropertyFleetOffersValid(t *testing.T) {
	f := func(seed int64, nHouseholds uint8) bool {
		n := int(nHouseholds)%20 + 1
		fleet := NewFleet(n, seed)
		res := fleet.Simulate(0, flexoffer.SlotsPerDay)
		for _, off := range res.Offers {
			if off.Validate() != nil {
				return false
			}
			if off.AssignBefore > off.EarliestStart {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
