// Package devices simulates prosumer households: the appliances behind
// the paper's flexibility story — EV chargers, dishwashers, washing
// machines, heat pumps (flexible demand), rooftop PV (flexible supply)
// and the non-flexible base load (lights, TV, cooking). Each appliance
// is a small state machine that, slot by slot, issues flex-offers and
// meters consumption, driving the prosumer side of a LEDMS simulation
// with realistic arrival processes instead of one-shot datasets.
package devices

import (
	"math"
	"math/rand"

	"mirabel/internal/flexoffer"
)

// Event is what a household produces in one slot.
type Event struct {
	// Offer is a new flex-offer, or nil.
	Offer *flexoffer.FlexOffer
	// NonFlexKWh is the metered non-flexible consumption of the slot
	// (negative for production).
	NonFlexKWh float64
}

// Appliance is one simulated device.
type Appliance interface {
	// Name identifies the device class.
	Name() string
	// Tick advances the device to the given slot and reports what it
	// did. rng is the household's random source.
	Tick(slot flexoffer.Time, rng *rand.Rand) Event
}

// hourOf returns the hour-of-day of a slot.
func hourOf(slot flexoffer.Time) int {
	return int(slot/flexoffer.SlotsPerHour) % 24
}

// dayOf returns the day index of a slot.
func dayOf(slot flexoffer.Time) int {
	return int(slot / flexoffer.SlotsPerDay)
}

// isWeekend reports whether the slot's day is a Saturday or Sunday,
// taking day 0 as a Friday (the workload epoch 2010-01-01).
func isWeekend(slot flexoffer.Time) bool {
	switch (5 + dayOf(slot)) % 7 { // 5 = Friday
	case 6, 0:
		return true
	default:
		return false
	}
}

// EVCharger issues one charging flex-offer per evening arrival; between
// arrivals it is silent. This is the paper's §2 running example.
type EVCharger struct {
	// BatteryKWh is the energy demand per session (default 50).
	BatteryKWh float64
	// ChargeSlots is the charging duration (default 8 = 2 hours).
	ChargeSlots int
	// DeadlineHour is the completion hour next morning (default 7).
	DeadlineHour int

	plugged bool
	nextID  func() flexoffer.ID
}

// Name implements Appliance.
func (e *EVCharger) Name() string { return "ev-charger" }

// Tick implements Appliance.
func (e *EVCharger) Tick(slot flexoffer.Time, rng *rand.Rand) Event {
	hour := hourOf(slot)
	if e.plugged {
		if hour == 9 { // car leaves for work
			e.plugged = false
		}
		return Event{}
	}
	// Arrival between 17:00 and 22:00, more likely on weekdays.
	pArrive := 0.0
	if hour >= 17 && hour <= 22 {
		pArrive = 0.10
		if isWeekend(slot) {
			pArrive = 0.05
		}
	}
	if rng.Float64() >= pArrive {
		return Event{}
	}
	e.plugged = true
	battery := e.BatteryKWh
	if battery == 0 {
		battery = 50
	}
	slots := e.ChargeSlots
	if slots == 0 {
		slots = 8
	}
	deadlineHour := e.DeadlineHour
	if deadlineHour == 0 {
		deadlineHour = 7
	}
	// Latest start: finish by deadlineHour next morning.
	day := dayOf(slot)
	deadline := flexoffer.Time((day+1)*flexoffer.SlotsPerDay + deadlineHour*flexoffer.SlotsPerHour)
	es := slot + 2 // plugging in and handshaking takes half a slot
	ls := deadline - flexoffer.Time(slots)
	if ls < es {
		ls = es
	}
	profile := make([]flexoffer.Slice, slots)
	perSlot := battery / float64(slots)
	for i := range profile {
		profile[i] = flexoffer.Slice{EnergyMin: 0, EnergyMax: perSlot}
	}
	return Event{Offer: &flexoffer.FlexOffer{
		ID:            e.nextID(),
		EarliestStart: es,
		LatestStart:   ls,
		AssignBefore:  es - 1,
		Profile:       profile,
	}}
}

// WetAppliance models dishwashers and washing machines: a usage
// probability peaking at a preferred hour, a fixed program profile and a
// "finish within N hours" flexibility.
type WetAppliance struct {
	Class        string
	PreferHour   int     // peak start hour
	UseProb      float64 // per-day usage probability
	ProgramSlots int     // program length
	KWhPerSlot   float64
	FlexHours    int // how long the start may be delayed

	usedToday int
	nextID    func() flexoffer.ID
}

// Name implements Appliance.
func (w *WetAppliance) Name() string { return w.Class }

// Tick implements Appliance.
func (w *WetAppliance) Tick(slot flexoffer.Time, rng *rand.Rand) Event {
	day := dayOf(slot)
	if w.usedToday == day+1 {
		return Event{}
	}
	hour := hourOf(slot)
	// Gaussian bump of width 2h around the preferred hour, normalized so
	// the day total ≈ UseProb.
	d := float64(hour - w.PreferHour)
	pSlot := w.UseProb * math.Exp(-0.5*d*d/4) / (5 * flexoffer.SlotsPerHour)
	if rng.Float64() >= pSlot {
		return Event{}
	}
	w.usedToday = day + 1
	profile := make([]flexoffer.Slice, w.ProgramSlots)
	for i := range profile {
		// Programs tolerate ±10% energy modulation.
		profile[i] = flexoffer.Slice{EnergyMin: 0.9 * w.KWhPerSlot, EnergyMax: w.KWhPerSlot}
	}
	es := slot + 1
	return Event{Offer: &flexoffer.FlexOffer{
		ID:            w.nextID(),
		EarliestStart: es,
		LatestStart:   es + flexoffer.Time(w.FlexHours*flexoffer.SlotsPerHour),
		AssignBefore:  es - 1,
		Profile:       profile,
	}}
}

// SolarPanel produces around midday; a fraction of its output is
// curtailable and issued as a (negative-energy) flex-offer each morning.
type SolarPanel struct {
	PeakKW       float64 // peak production (default 5)
	CurtailFrac  float64 // curtailable fraction offered as flexibility (default 0.3)
	offeredToday int
	nextID       func() flexoffer.ID
}

// Name implements Appliance.
func (s *SolarPanel) Name() string { return "solar-panel" }

// Tick implements Appliance.
func (s *SolarPanel) Tick(slot flexoffer.Time, rng *rand.Rand) Event {
	peak := s.PeakKW
	if peak == 0 {
		peak = 5
	}
	curtail := s.CurtailFrac
	if curtail == 0 {
		curtail = 0.3
	}
	hour := hourOf(slot)
	// Production curve: daylight bell between 7 and 19.
	prod := 0.0
	if hour >= 7 && hour < 19 {
		x := float64(hour-13) / 3.5
		prod = peak * math.Exp(-0.5*x*x) / flexoffer.SlotsPerHour
		prod *= 0.8 + 0.4*rng.Float64() // clouds
	}
	ev := Event{NonFlexKWh: -prod * (1 - curtail)}

	// Each morning at 06:00, offer the curtailable midday band.
	day := dayOf(slot)
	if hour == 6 && s.offeredToday != day+1 && int(slot)%flexoffer.SlotsPerHour == 0 {
		s.offeredToday = day + 1
		slots := 4 * flexoffer.SlotsPerHour // 11:00–15:00 band
		profile := make([]flexoffer.Slice, slots)
		for i := range profile {
			e := curtail * peak / flexoffer.SlotsPerHour
			profile[i] = flexoffer.Slice{EnergyMin: -e, EnergyMax: 0}
		}
		es := flexoffer.Time(day*flexoffer.SlotsPerDay + 11*flexoffer.SlotsPerHour)
		ev.Offer = &flexoffer.FlexOffer{
			ID:            s.nextID(),
			EarliestStart: es,
			LatestStart:   es + 2, // little time flexibility; energy flexibility instead
			AssignBefore:  es - 1,
			Profile:       profile,
		}
	}
	return ev
}

// BaseLoad is the non-flexible demand: lights, TV, cooking, fridge —
// "must be satisfied at the time when it is demanded".
type BaseLoad struct {
	MeanKW float64 // average draw (default 0.5)
}

// Name implements Appliance.
func (b *BaseLoad) Name() string { return "base-load" }

// Tick implements Appliance.
func (b *BaseLoad) Tick(slot flexoffer.Time, rng *rand.Rand) Event {
	mean := b.MeanKW
	if mean == 0 {
		mean = 0.5
	}
	hour := float64(hourOf(slot))
	shape := 0.6 + 0.5*math.Exp(-0.5*(hour-19)*(hour-19)/6) + 0.25*math.Exp(-0.5*(hour-8)*(hour-8)/4)
	kwh := mean * shape / flexoffer.SlotsPerHour
	kwh *= 0.85 + 0.3*rng.Float64()
	return Event{NonFlexKWh: kwh}
}
