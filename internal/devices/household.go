package devices

import (
	"math/rand"
	"sync/atomic"

	"mirabel/internal/flexoffer"
)

// Household bundles a set of appliances behind one prosumer meter.
type Household struct {
	Name       string
	appliances []Appliance
	rng        *rand.Rand
}

// HouseholdConfig selects a household's equipment.
type HouseholdConfig struct {
	Name string
	// HasEV, HasDishwasher, HasWasher, HasSolar toggle the flexible
	// devices; base load is always present.
	HasEV, HasDishwasher, HasWasher, HasSolar bool
	// Seed drives the household's random source.
	Seed int64
}

// idCounter hands out fleet-unique flex-offer IDs.
type idCounter struct{ n atomic.Uint64 }

func (c *idCounter) next() flexoffer.ID { return flexoffer.ID(c.n.Add(1)) }

// NewHousehold assembles a household. ids provides fleet-unique
// flex-offer IDs; pass the same counter to every household of a fleet.
func NewHousehold(cfg HouseholdConfig, ids *idCounter) *Household {
	h := &Household{
		Name: cfg.Name,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	h.appliances = append(h.appliances, &BaseLoad{})
	if cfg.HasEV {
		h.appliances = append(h.appliances, &EVCharger{nextID: ids.next})
	}
	if cfg.HasDishwasher {
		h.appliances = append(h.appliances, &WetAppliance{
			Class: "dishwasher", PreferHour: 20, UseProb: 0.7,
			ProgramSlots: 6, KWhPerSlot: 0.3, FlexHours: 8,
			nextID: ids.next,
		})
	}
	if cfg.HasWasher {
		h.appliances = append(h.appliances, &WetAppliance{
			Class: "washing-machine", PreferHour: 9, UseProb: 0.5,
			ProgramSlots: 5, KWhPerSlot: 0.4, FlexHours: 6,
			nextID: ids.next,
		})
	}
	if cfg.HasSolar {
		h.appliances = append(h.appliances, &SolarPanel{nextID: ids.next})
	}
	return h
}

// Tick advances all appliances one slot, tagging issued offers with the
// household name.
func (h *Household) Tick(slot flexoffer.Time) (offers []*flexoffer.FlexOffer, nonFlexKWh float64) {
	for _, a := range h.appliances {
		ev := a.Tick(slot, h.rng)
		nonFlexKWh += ev.NonFlexKWh
		if ev.Offer != nil {
			ev.Offer.Prosumer = h.Name
			offers = append(offers, ev.Offer)
		}
	}
	return offers, nonFlexKWh
}

// Fleet is a population of households.
type Fleet struct {
	Households []*Household
	ids        idCounter
}

// NewFleet builds n households with a realistic equipment mix: 40% EVs,
// 70% dishwashers, 80% washers, 25% solar.
func NewFleet(n int, seed int64) *Fleet {
	f := &Fleet{}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		cfg := HouseholdConfig{
			Name:          fleetName(i),
			HasEV:         rng.Float64() < 0.40,
			HasDishwasher: rng.Float64() < 0.70,
			HasWasher:     rng.Float64() < 0.80,
			HasSolar:      rng.Float64() < 0.25,
			Seed:          rng.Int63(),
		}
		f.Households = append(f.Households, NewHousehold(cfg, &f.ids))
	}
	return f
}

func fleetName(i int) string {
	const digits = "0123456789"
	buf := []byte("household-00000")
	for p := len(buf) - 1; i > 0 && p >= len("household-"); p-- {
		buf[p] = digits[i%10]
		i /= 10
	}
	return string(buf)
}

// SimulationResult aggregates one simulated period.
type SimulationResult struct {
	Offers []*flexoffer.FlexOffer
	// NonFlexKWh is the fleet's non-flexible net consumption per slot
	// (production negative), indexed from the simulation's first slot.
	NonFlexKWh []float64
}

// Simulate runs the fleet over [from, from+slots).
func (f *Fleet) Simulate(from flexoffer.Time, slots int) SimulationResult {
	res := SimulationResult{NonFlexKWh: make([]float64, slots)}
	for s := 0; s < slots; s++ {
		slot := from + flexoffer.Time(s)
		for _, h := range f.Households {
			offers, kwh := h.Tick(slot)
			res.Offers = append(res.Offers, offers...)
			res.NonFlexKWh[s] += kwh
		}
	}
	return res
}
