package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"
)

// GroupLog exposes the WAL's leader/follower group committer as a
// reusable append-only log for other subsystems (the ingest journal in
// internal/ingest is the first client). Concurrent Append calls
// coalesce into one buffered write — and, under SyncAlways, one fsync —
// per physical round, exactly like the store's own WAL; an Append
// returns only once its lines are flushed (and fsynced, per policy), so
// the return is the caller's durability ack.
//
// The log is line-oriented: callers append complete '\n'-terminated
// lines and own their framing and checksums. ReplayLines streams the
// intact prefix back and reports where it ends, so a torn tail can be
// truncated before new appends land behind it.
type GroupLog struct {
	c    *committer
	path string
}

// OpenGroupLog opens (or creates) an append-only group-committed log at
// path. interval is only used under SyncInterval (0 means the default
// 100ms cadence).
func OpenGroupLog(path string, policy SyncPolicy, interval time.Duration) (*GroupLog, error) {
	c, err := newCommitter(path, policy)
	if err != nil {
		return nil, err
	}
	if policy == SyncInterval {
		if interval <= 0 {
			interval = defaultOptions().interval
		}
		startIntervalSync(c, interval)
	}
	return &GroupLog{c: c, path: path}, nil
}

// startIntervalSync runs the background fsync ticker of a SyncInterval
// committer (shared by Open and OpenGroupLog). close(c.stopTick) stops
// it; c.tickDone closes when it has exited.
func startIntervalSync(c *committer, interval time.Duration) {
	c.stopTick = make(chan struct{})
	c.tickDone = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = c.sync()
			}
		}
	}(c.stopTick, c.tickDone)
}

// Path returns the log's file path.
func (g *GroupLog) Path() string { return g.path }

// Append commits lines as one group (possibly coalesced with concurrent
// appenders) and returns once they are flushed — and fsynced, under
// SyncAlways. Each line must be '\n'-terminated.
func (g *GroupLog) Append(lines [][]byte) error { return g.c.commit(lines) }

// Sync flushes and fsyncs the log.
func (g *GroupLog) Sync() error { return g.c.sync() }

// Stats reports the committer's record/group/fsync counters.
func (g *GroupLog) Stats() LogStats { return g.c.stats() }

// Close flushes, fsyncs and closes the log. Further appends fail.
func (g *GroupLog) Close() error { return g.c.close() }

// Rotate seals the log's current contents at oldPath and continues
// appending to a fresh file at the original path. The sealed bytes are
// flushed and fsynced before the rename, so oldPath is a complete,
// immutable prefix of the log; the caller deletes it once every record
// in it is durable elsewhere. If oldPath already exists (an earlier
// rotation whose cleanup was interrupted), the current contents are
// appended to it instead, preserving replay order.
func (g *GroupLog) Rotate(oldPath string) error { return g.c.rotate(g.path, oldPath) }

// Truncate discards the log's entire contents: quiesce in-flight
// groups, fsync, then cut the file to length zero. Callers truncate
// only once every logged record has been applied and made durable
// elsewhere (e.g. after the ingest queue drained into the store and the
// store's WAL was synced).
func (g *GroupLog) Truncate() error { return g.c.truncate() }

// Size returns the log's current byte length (flushing buffered writes
// first so the answer covers every acked append).
func (g *GroupLog) Size() (int64, error) {
	g.c.mu.Lock()
	defer g.c.mu.Unlock()
	g.c.quiesceLocked()
	if !g.c.closed {
		if err := g.c.w.Flush(); err != nil {
			return 0, err
		}
	}
	fi, err := os.Stat(g.path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// truncate cuts the committer's file to zero length under the committer
// lock.
func (c *committer) truncate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quiesceLocked()
	if c.closed {
		return fmt.Errorf("store: log is closed")
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	if err := c.f.Truncate(0); err != nil {
		return err
	}
	// O_APPEND writes follow the (now zero) end of file; resetting the
	// buffered writer drops any stale buffer state.
	c.w.Reset(c.f)
	return c.f.Sync()
}

// ReplayLines streams every complete line of the file at path to apply
// and returns the byte offset just past the last intact line. A missing
// file is an empty log (offset 0). Scanning stops silently at the first
// torn line (no trailing newline at EOF) — the callers' checksums catch
// semantically corrupt but complete lines.
func ReplayLines(path string, apply func(line []byte) error) (int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open log for replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A partial last line is a torn write: not replayed, not
			// counted into the intact prefix.
			return off, nil
		}
		if err != nil {
			return off, fmt.Errorf("store: scan log: %w", err)
		}
		if aerr := apply(line); aerr != nil {
			return off, aerr
		}
		off += int64(len(line))
	}
}
