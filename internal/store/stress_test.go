package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mirabel/internal/flexoffer"
)

// TestStoreStressConcurrent hammers a durable store from every angle at
// once — batch writers, single-put writers, offer transitions, indexed
// readers, a snapshot and a retention sweep — and then proves the WAL
// and the in-memory state agree by recovering into a fresh store. Run
// under -race this is the engine's lock-discipline audit.
func TestStoreStressConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		batches  = 20
		batchLen = 50
		offerN   = 200
	)
	var wg sync.WaitGroup

	// Batch measurement writers, one actor each: in-order meter streams.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			actor := fmt.Sprintf("meter%d", w)
			for b := 0; b < batches; b++ {
				ms := make([]Measurement, batchLen)
				for i := range ms {
					slot := flexoffer.Time(b*batchLen + i)
					ms[i] = Measurement{Actor: actor, EnergyType: "demand", Slot: slot, KWh: 1}
				}
				if err := s.PutMeasurementsBatch(ms); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Single-put writers on a shared actor (same series, contended).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches*batchLen; i++ {
				slot := flexoffer.Time(i*2 + w)
				if err := s.PutMeasurement(Measurement{Actor: "shared", EnergyType: "demand", Slot: slot, KWh: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Offer writers: insert, then batch-transition.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := flexoffer.ID(1); id <= offerN; id++ {
			if err := s.PutOffer(OfferRecord{Offer: testOffer(id), Owner: fmt.Sprintf("p%d", id%7), State: OfferAccepted}); err != nil {
				t.Error(err)
				return
			}
		}
		ups := make([]OfferUpdate, 0, offerN/2)
		for id := flexoffer.ID(1); id <= offerN/2; id++ {
			ups = append(ups, OfferUpdate{ID: id, Mutate: func(r *OfferRecord) { r.State = OfferScheduled }})
		}
		if _, err := s.UpdateOffers(ups); err != nil {
			t.Error(err)
		}
	}()

	// Readers over every index while the writers run.
	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				s.Measurements(MeasurementFilter{Actor: fmt.Sprintf("meter%d", r%writers), EnergyType: "demand", FromSlot: 10, ToSlot: 200})
				s.SumEnergyBySlot(MeasurementFilter{EnergyType: "demand"})
				s.Offers(OfferFilter{State: OfferScheduled})
				s.CountOffersByState()
				s.Stats()
			}
		}(r)
	}

	// A snapshot and a retention sweep race the load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Snapshot(); err != nil {
			t.Error(err)
		}
		if _, err := s.PruneMeasurements(5); err != nil {
			t.Error(err)
		}
	}()

	wg.Wait()
	close(stopRead)
	readWG.Wait()

	// Settle on a final state: prune is racy against late writers above,
	// so sweep once more deterministically.
	if _, err := s.PruneMeasurements(5); err != nil {
		t.Fatal(err)
	}
	want := s.Stats()
	wantSum := s.SumEnergyBySlot(MeasurementFilter{EnergyType: "demand"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery equivalence: snapshot + sealed tail + live log replays to
	// the exact same state.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(); got != want {
		t.Errorf("recovered stats %+v != live %+v", got, want)
	}
	gotSum := s2.SumEnergyBySlot(MeasurementFilter{EnergyType: "demand"})
	if len(gotSum) != len(wantSum) {
		t.Fatalf("recovered %d slots, want %d", len(gotSum), len(wantSum))
	}
	for slot, v := range wantSum {
		if gotSum[slot] != v {
			t.Errorf("slot %d: recovered %g, want %g", slot, gotSum[slot], v)
		}
	}
	if got := len(s2.Offers(OfferFilter{State: OfferScheduled})); got != offerN/2 {
		t.Errorf("recovered scheduled offers = %d, want %d", got, offerN/2)
	}
}

// TestBatchPruneCreateNoDeadlock regresses a three-way deadlock: a
// measurement batch holding series locks must never touch the series
// index again (its read lock can queue behind a new-series creation,
// which queues behind a prune sweep holding the index read lock while
// waiting for the batch's series locks).
func TestBatchPruneCreateNoDeadlock(t *testing.T) {
	s := NewInMemory()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) { // batch writers on existing series
				defer wg.Done()
				actor := fmt.Sprintf("m%d", w)
				for i := 0; i < 200; i++ {
					ms := []Measurement{
						{Actor: actor, EnergyType: "demand", Slot: flexoffer.Time(i), KWh: 1},
						{Actor: actor, EnergyType: "solar", Slot: flexoffer.Time(i), KWh: 1},
					}
					if err := s.PutMeasurementsBatch(ms); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() { // a steady stream of brand-new series
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := s.PutMeasurement(Measurement{Actor: fmt.Sprintf("new%d", i), EnergyType: "demand", Slot: 1, KWh: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() { // retention sweeps racing both
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.PruneMeasurements(flexoffer.Time(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("store deadlocked under batch + prune + series creation")
	}
}

// TestConcurrentUpdateOfferTransitions races single and batched
// transitions of the same records: every transition must be an atomic
// read-modify-write (no lost updates).
func TestConcurrentUpdateOfferTransitions(t *testing.T) {
	s := NewInMemory()
	const n = 64
	for id := flexoffer.ID(1); id <= n; id++ {
		if err := s.PutOffer(OfferRecord{Offer: testOffer(id), Owner: "p", State: OfferAccepted}); err != nil {
			t.Fatal(err)
		}
	}
	// Each worker increments a counter hidden in the schedule length;
	// with atomic RMW the total is exact.
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := flexoffer.ID(r%n + 1)
				bump := func(rec *OfferRecord) {
					rec.Schedule = &flexoffer.Schedule{OfferID: id, Energy: append(sliceOf(rec), 1)}
				}
				if w%2 == 0 {
					if _, err := s.UpdateOffer(id, bump); err != nil && !errors.Is(err, ErrUnknownOffer) {
						t.Error(err)
						return
					}
					continue
				}
				if _, err := s.UpdateOffers([]OfferUpdate{{ID: id, Mutate: bump}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for id := flexoffer.ID(1); id <= n; id++ {
		rec, ok := s.GetOffer(id)
		if !ok {
			t.Fatalf("offer %d lost", id)
		}
		if rec.Schedule != nil {
			total += len(rec.Schedule.Energy)
		}
	}
	if want := workers * rounds; total != want {
		t.Errorf("lost updates: counted %d bumps, want %d", total, want)
	}
}

func sliceOf(rec *OfferRecord) []float64 {
	if rec.Schedule == nil {
		return nil
	}
	return rec.Schedule.Energy
}
