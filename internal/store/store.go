package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"mirabel/internal/flexoffer"
)

// ErrUnknownOffer is wrapped by UpdateOffer when no record exists for
// the given ID. Match with errors.Is.
var ErrUnknownOffer = errors.New("store: unknown offer")

// ErrReadOnly is returned by every mutator of a store opened with
// OpenReadOnly.
var ErrReadOnly = errors.New("store: read-only")

// SyncPolicy selects when logged records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncFlush (the default) flushes every group commit to the OS but
	// fsyncs only on Sync, Snapshot and Close: a crash of the process
	// loses nothing, a crash of the machine can lose the tail since the
	// last explicit sync. This is the seed engine's behaviour, made
	// explicit.
	SyncFlush SyncPolicy = iota
	// SyncAlways fsyncs every group commit: machine-crash durable, one
	// fsync amortized over all writers in the group.
	SyncAlways
	// SyncInterval fsyncs in the background every Options interval
	// (default 100ms): bounded machine-crash loss window at near
	// SyncFlush throughput.
	SyncInterval
)

// Option configures Open.
type Option func(*options)

type options struct {
	policy   SyncPolicy
	interval time.Duration
}

func defaultOptions() options {
	return options{policy: SyncFlush, interval: 100 * time.Millisecond}
}

// WithSyncPolicy selects the WAL fsync policy.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *options) { o.policy = p }
}

// WithSyncInterval sets the background fsync cadence and implies
// SyncInterval.
func WithSyncInterval(d time.Duration) Option {
	return func(o *options) {
		o.policy = SyncInterval
		if d > 0 {
			o.interval = d
		}
	}
}

// Store is the node-local multidimensional store. All methods are safe
// for concurrent use. A Store opened with a directory is durable
// (WAL + snapshot); NewInMemory gives a volatile store for simulations.
//
// Internally each dimension and fact table is hash-striped (shard.go);
// measurements are clustered into per-(actor, energy type) slot-sorted
// series (index.go) and offers carry by-state and by-owner secondary
// indexes, so the hot queries read only matching rows. Durable writers
// append through a group committer (wal.go) while holding only their
// stripe's lock, and Snapshot serializes a per-shard-consistent copy
// outside every lock.
type Store struct {
	dir      string
	readOnly bool
	w        *committer

	actors      *shardedTable[string, Actor]
	energyTypes *shardedTable[string, EnergyType]
	marketAreas *shardedTable[string, MarketArea]
	offers      *shardedTable[flexoffer.ID, OfferRecord]
	forecasts   *shardedTable[forecastKey, ForecastRecord]
	prices      *shardedTable[priceKey, PriceRecord]
	contracts   *shardedTable[contractKey, Contract]
	modelParams *shardedTable[modelKey, ModelParams]

	meas     *measurementIndex
	offerIdx *offerIndex

	snapMu  sync.Mutex // one snapshot at a time; Close waits for it
	pruneMu sync.Mutex // one retention sweep at a time

	// serializeHook, when set (tests only), runs between the in-memory
	// copy and the serialization of a snapshot — the window in which
	// readers and writers must keep making progress.
	serializeHook func()
}

// snapshotImage is the serialized form of the full store state.
type snapshotImage struct {
	Actors       []Actor          `json:"actors"`
	EnergyTypes  []EnergyType     `json:"energy_types"`
	MarketAreas  []MarketArea     `json:"market_areas"`
	Measurements []Measurement    `json:"measurements"`
	Offers       []OfferRecord    `json:"offers"`
	Forecasts    []ForecastRecord `json:"forecasts"`
	Prices       []PriceRecord    `json:"prices"`
	Contracts    []Contract       `json:"contracts"`
	ModelParams  []ModelParams    `json:"model_params"`
}

func newStore() *Store {
	return &Store{
		actors:      newShardedTable[string, Actor](hashString),
		energyTypes: newShardedTable[string, EnergyType](hashString),
		marketAreas: newShardedTable[string, MarketArea](hashString),
		offers:      newShardedTable[flexoffer.ID, OfferRecord](hashOfferID),
		forecasts:   newShardedTable[forecastKey, ForecastRecord](hashForecastKey),
		prices:      newShardedTable[priceKey, PriceRecord](hashPriceKey),
		contracts:   newShardedTable[contractKey, Contract](hashContractKey),
		modelParams: newShardedTable[modelKey, ModelParams](hashModelKey),
		meas:        newMeasurementIndex(),
		offerIdx:    newOfferIndex(),
	}
}

// NewInMemory returns a volatile store (no durability), used by
// simulations and tests.
func NewInMemory() *Store { return newStore() }

// Open loads (or creates) a durable store in dir: snapshot first, then
// the sealed pre-snapshot WAL tail (if a crash interrupted a snapshot),
// then the live WAL.
func Open(dir string, opts ...Option) (*Store, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := newStore()
	s.dir = dir
	liveOff, err := s.recover(dir)
	if err != nil {
		return nil, err
	}
	// A torn tail is cut before the committer reopens the log: records
	// appended after the torn line would otherwise hide behind it — the
	// replay scanner stops at the first corrupt line, so a later
	// recovery would silently drop everything written past it.
	if err := truncateTornTail(walPath(dir), liveOff); err != nil {
		return nil, err
	}
	w, err := newCommitter(walPath(dir), o.policy)
	if err != nil {
		return nil, err
	}
	s.w = w
	if o.policy == SyncInterval {
		startIntervalSync(w, o.interval)
	}
	return s, nil
}

// truncateTornTail cuts the file at path down to intact bytes if a torn
// write left garbage past it. A missing file is fine.
func truncateTornTail(path string, intact int64) error {
	fi, err := os.Stat(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if fi.Size() <= intact {
		return nil
	}
	return os.Truncate(path, intact)
}

// OpenReadOnly loads an existing durable store without creating,
// appending to or truncating anything on disk: the inspection mode.
// It fails if dir does not exist or holds no store artifacts (so
// inspecting a mistyped path reports the mistake instead of fabricating
// an empty store), and every mutator returns ErrReadOnly.
func OpenReadOnly(dir string) (*Store, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open read-only: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("store: open read-only: %s is not a directory", dir)
	}
	found := false
	for _, p := range []string{snapshotPath(dir), walOldPath(dir), walPath(dir)} {
		if _, err := os.Stat(p); err == nil {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("store: open read-only: no store artifacts in %s", dir)
	}
	s := newStore()
	s.dir = dir
	s.readOnly = true
	if _, err := s.recover(dir); err != nil {
		return nil, err
	}
	return s, nil
}

// recover rebuilds the in-memory state: snapshot image, then the sealed
// pre-snapshot tail, then the live log. Replaying a sealed tail whose
// snapshot completed is an idempotent no-op (puts are upserts, prunes
// re-prune nothing). It returns the live log's intact byte length so
// Open can cut a torn tail before appending behind it.
func (s *Store) recover(dir string) (int64, error) {
	if raw, err := os.ReadFile(snapshotPath(dir)); err == nil {
		var img snapshotImage
		if err := json.Unmarshal(raw, &img); err != nil {
			return 0, fmt.Errorf("store: corrupt snapshot: %w", err)
		}
		s.load(&img)
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	if _, err := replayWAL(walOldPath(dir), s.applyLogged); err != nil {
		return 0, err
	}
	return replayWAL(walPath(dir), s.applyLogged)
}

// Close flushes and closes the WAL. The store must not be used after.
func (s *Store) Close() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.w == nil {
		return nil
	}
	return s.w.close()
}

// Sync fsyncs the WAL.
func (s *Store) Sync() error {
	if s.w == nil {
		return nil
	}
	return s.w.sync()
}

// WALStats reports the group committer's record/group/fsync counters
// (zero for in-memory and read-only stores).
func (s *Store) WALStats() LogStats {
	if s.w == nil {
		return LogStats{}
	}
	return s.w.stats()
}

// Snapshot writes a point-in-time image and retires the WAL records it
// covers — without blocking readers or writers while the image is
// serialized and written. The sequence:
//
//  1. rotate: the live WAL is sealed as wal.old and a fresh log starts;
//  2. copy: every table is copied out one stripe at a time under brief
//     locks. Each record sealed in step 1 was applied under its stripe
//     lock before that lock was released, so the copy covers wal.old;
//  3. serialize: the copy is marshaled and written to a temp file,
//     fsynced and renamed over the snapshot — no lock held;
//  4. retire: wal.old is removed.
//
// A crash before 3 completes leaves the old snapshot plus wal.old plus
// the fresh log — exactly the recovery input. A crash between 3 and 4
// replays wal.old over a snapshot that already contains it, which is
// idempotent.
func (s *Store) Snapshot() error {
	if s.dir == "" {
		return fmt.Errorf("store: snapshot of an in-memory store")
	}
	if s.readOnly {
		return ErrReadOnly
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := s.w.rotate(walPath(s.dir), walOldPath(s.dir)); err != nil {
		return err
	}
	img := s.dump()
	if s.serializeHook != nil {
		s.serializeHook()
	}
	raw, err := json.Marshal(img)
	if err != nil {
		return fmt.Errorf("store: marshal snapshot: %w", err)
	}
	tmp := snapshotPath(s.dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, snapshotPath(s.dir)); err != nil {
		return err
	}
	if err := os.Remove(walOldPath(s.dir)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// dump copies the full state, stripe by stripe under brief read locks.
func (s *Store) dump() *snapshotImage {
	img := &snapshotImage{
		Actors:      s.actors.snapshotValues(),
		EnergyTypes: s.energyTypes.snapshotValues(),
		MarketAreas: s.marketAreas.snapshotValues(),
		Offers:      s.offers.snapshotValues(),
		Forecasts:   s.forecasts.snapshotValues(),
		Prices:      s.prices.snapshotValues(),
		Contracts:   s.contracts.snapshotValues(),
		ModelParams: s.modelParams.snapshotValues(),
	}
	for _, ss := range s.meas.all() {
		ss.mu.RLock()
		for i, slot := range ss.slots {
			img.Measurements = append(img.Measurements, Measurement{
				Actor: ss.key.Actor, EnergyType: ss.key.EnergyType, Slot: slot, KWh: ss.kwh[i],
			})
		}
		ss.mu.RUnlock()
	}
	return img
}

func (s *Store) load(img *snapshotImage) {
	for _, v := range img.Actors {
		applyPut(s.actors, v.ID, v, nil)
	}
	for _, v := range img.EnergyTypes {
		applyPut(s.energyTypes, v.ID, v, nil)
	}
	for _, v := range img.MarketAreas {
		applyPut(s.marketAreas, v.ID, v, nil)
	}
	for _, v := range img.Measurements {
		s.applyMeasurement(v)
	}
	for _, v := range img.Offers {
		s.applyOffer(v)
	}
	for _, v := range img.Forecasts {
		applyPut(s.forecasts, forecastKey{v.Actor, v.EnergyType, v.Slot, v.Horizon}, v, nil)
	}
	for _, v := range img.Prices {
		applyPut(s.prices, priceKey{v.MarketArea, v.Hour}, v, nil)
	}
	for _, v := range img.Contracts {
		applyPut(s.contracts, contractKey{v.Prosumer, v.BRP}, v, nil)
	}
	for _, v := range img.ModelParams {
		applyPut(s.modelParams, modelKey{v.Actor, v.EnergyType, v.ModelName}, v, nil)
	}
}

// applyPut is the lock-taking, log-free upsert used by recovery and the
// snapshot loader (and, via its *Locked twin in batch.go, by batches).
func applyPut[K comparable, V any](t *shardedTable[K, V], k K, v V, post func(old V, had bool)) {
	sh := t.shard(k)
	sh.mu.Lock()
	old, had := sh.m[k]
	sh.m[k] = v
	if post != nil {
		post(old, had)
	}
	sh.mu.Unlock()
}

// applyMeasurement inserts one measurement into its series (log-free).
func (s *Store) applyMeasurement(m Measurement) {
	ss := s.meas.ensure(seriesKey{m.Actor, m.EnergyType})
	ss.mu.Lock()
	ss.insertLocked(m.Slot, m.KWh)
	ss.mu.Unlock()
}

// applyOffer upserts one offer record and maintains its indexes
// (log-free).
func (s *Store) applyOffer(r OfferRecord) {
	id := r.Offer.ID
	applyPut(s.offers, id, r, func(old OfferRecord, had bool) {
		s.offerIdx.update(id, old, had, r)
	})
}

// pruneMark is the logged form of a PruneMeasurements call.
type pruneMark struct {
	Before flexoffer.Time `json:"before"`
}

// applyLogged applies one WAL record during recovery.
func (s *Store) applyLogged(table, op string, data json.RawMessage) error {
	if op == opPrune {
		if table != tMeasurement {
			return fmt.Errorf("store: prune of table %q", table)
		}
		var mark pruneMark
		if err := json.Unmarshal(data, &mark); err != nil {
			return err
		}
		for _, ss := range s.meas.all() {
			ss.mu.Lock()
			ss.pruneLocked(mark.Before)
			ss.mu.Unlock()
		}
		return nil
	}
	if op != opPut {
		return fmt.Errorf("store: unknown wal op %q", op)
	}
	switch table {
	case tActor:
		var v Actor
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		applyPut(s.actors, v.ID, v, nil)
	case tEnergyType:
		var v EnergyType
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		applyPut(s.energyTypes, v.ID, v, nil)
	case tMarketArea:
		var v MarketArea
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		applyPut(s.marketAreas, v.ID, v, nil)
	case tMeasurement:
		var v Measurement
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.applyMeasurement(v)
	case tOffer:
		var v OfferRecord
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		if v.Offer == nil {
			return fmt.Errorf("store: logged offer record without offer")
		}
		s.applyOffer(v)
	case tForecast:
		var v ForecastRecord
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		applyPut(s.forecasts, forecastKey{v.Actor, v.EnergyType, v.Slot, v.Horizon}, v, nil)
	case tPrice:
		var v PriceRecord
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		applyPut(s.prices, priceKey{v.MarketArea, v.Hour}, v, nil)
	case tContract:
		var v Contract
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		applyPut(s.contracts, contractKey{v.Prosumer, v.BRP}, v, nil)
	case tModelParams:
		var v ModelParams
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		applyPut(s.modelParams, modelKey{v.Actor, v.EnergyType, v.ModelName}, v, nil)
	default:
		return fmt.Errorf("store: unknown wal table %q", table)
	}
	return nil
}

// putRecord is the durable upsert path shared by every Put method: the
// record is encoded outside any lock, logged through the group
// committer while the stripe lock is held (same-key log order == memory
// order), then applied.
func putRecord[K comparable, V any](s *Store, t *shardedTable[K, V], table string, k K, v V, post func(old V, had bool)) error {
	if s.readOnly {
		return ErrReadOnly
	}
	var line []byte
	if s.w != nil {
		var err error
		line, err = encodeRecord(table, opPut, v)
		if err != nil {
			return err
		}
	}
	sh := t.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.w != nil {
		if err := s.w.commit([][]byte{line}); err != nil {
			return err
		}
	}
	old, had := sh.m[k]
	sh.m[k] = v
	if post != nil {
		post(old, had)
	}
	return nil
}

// --- dimension upserts -------------------------------------------------

// PutActor upserts an actor dimension record.
func (s *Store) PutActor(a Actor) error {
	if a.ID == "" {
		return fmt.Errorf("store: actor without id")
	}
	return putRecord(s, s.actors, tActor, a.ID, a, nil)
}

// GetActor returns an actor by ID.
func (s *Store) GetActor(id string) (Actor, bool) {
	return s.actors.get(id)
}

// Children returns the actors whose Parent is id, in ID order (the
// hierarchy walk of the snowflake dimension).
func (s *Store) Children(id string) []Actor {
	var out []Actor
	s.actors.scan(func(_ string, a Actor) {
		if a.Parent == id {
			out = append(out, a)
		}
	})
	sortActorsByID(out)
	return out
}

// PutEnergyType upserts an energy type dimension record.
func (s *Store) PutEnergyType(e EnergyType) error {
	if e.ID == "" {
		return fmt.Errorf("store: energy type without id")
	}
	return putRecord(s, s.energyTypes, tEnergyType, e.ID, e, nil)
}

// GetEnergyType returns an energy type by ID.
func (s *Store) GetEnergyType(id string) (EnergyType, bool) {
	return s.energyTypes.get(id)
}

// PutMarketArea upserts a market area dimension record.
func (s *Store) PutMarketArea(m MarketArea) error {
	if m.ID == "" {
		return fmt.Errorf("store: market area without id")
	}
	return putRecord(s, s.marketAreas, tMarketArea, m.ID, m, nil)
}

// --- fact upserts ------------------------------------------------------

// PutMeasurement upserts a metered value. Bulk ingestion should prefer
// PutMeasurementsBatch, which logs the whole batch as one group commit.
func (s *Store) PutMeasurement(m Measurement) error {
	if s.readOnly {
		return ErrReadOnly
	}
	var line []byte
	if s.w != nil {
		var err error
		line, err = encodeRecord(tMeasurement, opPut, m)
		if err != nil {
			return err
		}
	}
	ss := s.meas.ensure(seriesKey{m.Actor, m.EnergyType})
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s.w != nil {
		if err := s.w.commit([][]byte{line}); err != nil {
			return err
		}
	}
	ss.insertLocked(m.Slot, m.KWh)
	return nil
}

// PutOffer upserts a flex-offer record.
func (s *Store) PutOffer(r OfferRecord) error {
	if r.Offer == nil {
		return fmt.Errorf("store: offer record without offer")
	}
	id := r.Offer.ID
	return putRecord(s, s.offers, tOffer, id, r, func(old OfferRecord, had bool) {
		s.offerIdx.update(id, old, had, r)
	})
}

// UpdateOffer applies mutate to the stored record in one atomic
// read-modify-write round-trip and returns the stored result. Use it
// for state transitions that must not interleave with a concurrent
// writer between a GetOffer and a PutOffer (e.g. a negotiation
// decision racing the schedule that the decision unlocked). Returns
// ErrUnknownOffer when no record exists. Batch transitions should
// prefer UpdateOffers, which logs the whole set as one group commit.
func (s *Store) UpdateOffer(id flexoffer.ID, mutate func(*OfferRecord)) (OfferRecord, error) {
	if s.readOnly {
		return OfferRecord{}, ErrReadOnly
	}
	sh := s.offers.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.m[id]
	if !ok {
		return OfferRecord{}, fmt.Errorf("%w: %d", ErrUnknownOffer, id)
	}
	r := old
	mutate(&r)
	if r.Offer == nil {
		return OfferRecord{}, fmt.Errorf("store: offer record without offer")
	}
	if s.w != nil {
		line, err := encodeRecord(tOffer, opPut, r)
		if err != nil {
			return OfferRecord{}, err
		}
		if err := s.w.commit([][]byte{line}); err != nil {
			return OfferRecord{}, err
		}
	}
	sh.m[id] = r
	s.offerIdx.update(id, old, true, r)
	return r, nil
}

// GetOffer returns a flex-offer record by ID.
func (s *Store) GetOffer(id flexoffer.ID) (OfferRecord, bool) {
	return s.offers.get(id)
}

// PutForecast upserts a published forecast value.
func (s *Store) PutForecast(f ForecastRecord) error {
	return putRecord(s, s.forecasts, tForecast, forecastKey{f.Actor, f.EnergyType, f.Slot, f.Horizon}, f, nil)
}

// PutPrice upserts a market price.
func (s *Store) PutPrice(p PriceRecord) error {
	return putRecord(s, s.prices, tPrice, priceKey{p.MarketArea, p.Hour}, p, nil)
}

// PutContract upserts a contract.
func (s *Store) PutContract(c Contract) error {
	return putRecord(s, s.contracts, tContract, contractKey{c.Prosumer, c.BRP}, c, nil)
}

// GetContract returns the contract between a prosumer and a BRP.
func (s *Store) GetContract(prosumer, brp string) (Contract, bool) {
	return s.contracts.get(contractKey{prosumer, brp})
}

// PutModelParams persists forecast model parameters.
func (s *Store) PutModelParams(m ModelParams) error {
	return putRecord(s, s.modelParams, tModelParams, modelKey{m.Actor, m.EnergyType, m.ModelName}, m, nil)
}

// GetModelParams returns persisted model parameters.
func (s *Store) GetModelParams(actor, energyType, modelName string) (ModelParams, bool) {
	return s.modelParams.get(modelKey{actor, energyType, modelName})
}

// PruneMeasurements drops every measurement with Slot < before — the
// retention sweep that keeps long-running nodes' fact tables bounded.
// The sweep is WAL-logged (one record) and returns how many facts fell.
// While the prune record commits, all measurement series are locked:
// the sweep is a short stop-the-measurement-world, which is what makes
// a replayed log converge to the swept state.
func (s *Store) PruneMeasurements(before flexoffer.Time) (int, error) {
	if s.readOnly {
		return 0, ErrReadOnly
	}
	s.pruneMu.Lock()
	defer s.pruneMu.Unlock()
	var line []byte
	if s.w != nil {
		var err error
		line, err = encodeRecord(tMeasurement, opPrune, pruneMark{Before: before})
		if err != nil {
			return 0, err
		}
	}
	// Freeze series creation, then take every series in creation order
	// (the same order batch writers use — no deadlock).
	s.meas.mu.RLock()
	defer s.meas.mu.RUnlock()
	series := make([]*slotSeries, 0, len(s.meas.series))
	for _, ss := range s.meas.series {
		series = append(series, ss)
	}
	sortSeriesByID(series)
	for _, ss := range series {
		ss.mu.Lock()
	}
	defer func() {
		for i := len(series) - 1; i >= 0; i-- {
			series[i].mu.Unlock()
		}
	}()
	if s.w != nil {
		if err := s.w.commit([][]byte{line}); err != nil {
			return 0, err
		}
	}
	n := 0
	for _, ss := range series {
		n += ss.pruneLocked(before)
	}
	return n, nil
}
