package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"mirabel/internal/flexoffer"
)

// ErrUnknownOffer is wrapped by UpdateOffer when no record exists for
// the given ID. Match with errors.Is.
var ErrUnknownOffer = errors.New("store: unknown offer")

// Store is the node-local multidimensional store. All methods are safe
// for concurrent use. A Store opened with a directory is durable
// (WAL + snapshot); NewInMemory gives a volatile store for simulations.
type Store struct {
	mu  sync.RWMutex
	dir string
	log *wal

	actors       map[string]Actor
	energyTypes  map[string]EnergyType
	marketAreas  map[string]MarketArea
	measurements map[measurementKey]Measurement
	offers       map[flexoffer.ID]OfferRecord
	forecasts    map[forecastKey]ForecastRecord
	prices       map[priceKey]PriceRecord
	contracts    map[contractKey]Contract
	modelParams  map[modelKey]ModelParams
}

// snapshotImage is the serialized form of the full store state.
type snapshotImage struct {
	Actors       []Actor          `json:"actors"`
	EnergyTypes  []EnergyType     `json:"energy_types"`
	MarketAreas  []MarketArea     `json:"market_areas"`
	Measurements []Measurement    `json:"measurements"`
	Offers       []OfferRecord    `json:"offers"`
	Forecasts    []ForecastRecord `json:"forecasts"`
	Prices       []PriceRecord    `json:"prices"`
	Contracts    []Contract       `json:"contracts"`
	ModelParams  []ModelParams    `json:"model_params"`
}

func newStore() *Store {
	return &Store{
		actors:       make(map[string]Actor),
		energyTypes:  make(map[string]EnergyType),
		marketAreas:  make(map[string]MarketArea),
		measurements: make(map[measurementKey]Measurement),
		offers:       make(map[flexoffer.ID]OfferRecord),
		forecasts:    make(map[forecastKey]ForecastRecord),
		prices:       make(map[priceKey]PriceRecord),
		contracts:    make(map[contractKey]Contract),
		modelParams:  make(map[modelKey]ModelParams),
	}
}

// NewInMemory returns a volatile store (no durability), used by
// simulations and tests.
func NewInMemory() *Store { return newStore() }

// Open loads (or creates) a durable store in dir: snapshot first, then
// the WAL tail.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := newStore()
	s.dir = dir

	if raw, err := os.ReadFile(snapshotPath(dir)); err == nil {
		var img snapshotImage
		if err := json.Unmarshal(raw, &img); err != nil {
			return nil, fmt.Errorf("store: corrupt snapshot: %w", err)
		}
		s.load(&img)
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	if err := replayWAL(walPath(dir), s.applyLogged); err != nil {
		return nil, err
	}

	log, err := openWAL(walPath(dir))
	if err != nil {
		return nil, err
	}
	s.log = log
	return s, nil
}

// Close flushes and closes the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.close()
	s.log = nil
	return err
}

// Sync fsyncs the WAL.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.sync()
}

// Snapshot writes a point-in-time image and truncates the WAL. A crash
// between the two steps leaves the old WAL, whose replay is idempotent
// (puts are upserts).
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		return fmt.Errorf("store: snapshot of an in-memory store")
	}
	img := s.dump()
	raw, err := json.Marshal(img)
	if err != nil {
		return fmt.Errorf("store: marshal snapshot: %w", err)
	}
	tmp := snapshotPath(s.dir) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, snapshotPath(s.dir)); err != nil {
		return err
	}
	// Truncate the log: everything is in the snapshot now.
	if s.log != nil {
		if err := s.log.close(); err != nil {
			return err
		}
	}
	if err := os.Truncate(walPath(s.dir), 0); err != nil {
		return err
	}
	log, err := openWAL(walPath(s.dir))
	if err != nil {
		return err
	}
	s.log = log
	return nil
}

func (s *Store) dump() *snapshotImage {
	img := &snapshotImage{}
	for _, v := range s.actors {
		img.Actors = append(img.Actors, v)
	}
	for _, v := range s.energyTypes {
		img.EnergyTypes = append(img.EnergyTypes, v)
	}
	for _, v := range s.marketAreas {
		img.MarketAreas = append(img.MarketAreas, v)
	}
	for _, v := range s.measurements {
		img.Measurements = append(img.Measurements, v)
	}
	for _, v := range s.offers {
		img.Offers = append(img.Offers, v)
	}
	for _, v := range s.forecasts {
		img.Forecasts = append(img.Forecasts, v)
	}
	for _, v := range s.prices {
		img.Prices = append(img.Prices, v)
	}
	for _, v := range s.contracts {
		img.Contracts = append(img.Contracts, v)
	}
	for _, v := range s.modelParams {
		img.ModelParams = append(img.ModelParams, v)
	}
	return img
}

func (s *Store) load(img *snapshotImage) {
	for _, v := range img.Actors {
		s.actors[v.ID] = v
	}
	for _, v := range img.EnergyTypes {
		s.energyTypes[v.ID] = v
	}
	for _, v := range img.MarketAreas {
		s.marketAreas[v.ID] = v
	}
	for _, v := range img.Measurements {
		s.measurements[measurementKey{v.Actor, v.EnergyType, v.Slot}] = v
	}
	for _, v := range img.Offers {
		s.offers[v.Offer.ID] = v
	}
	for _, v := range img.Forecasts {
		s.forecasts[forecastKey{v.Actor, v.EnergyType, v.Slot, v.Horizon}] = v
	}
	for _, v := range img.Prices {
		s.prices[priceKey{v.MarketArea, v.Hour}] = v
	}
	for _, v := range img.Contracts {
		s.contracts[contractKey{v.Prosumer, v.BRP}] = v
	}
	for _, v := range img.ModelParams {
		s.modelParams[modelKey{v.Actor, v.EnergyType, v.ModelName}] = v
	}
}

// applyLogged applies one WAL record during recovery.
func (s *Store) applyLogged(table, op string, data json.RawMessage) error {
	if op != "put" {
		return fmt.Errorf("store: unknown wal op %q", op)
	}
	switch table {
	case tActor:
		var v Actor
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.actors[v.ID] = v
	case tEnergyType:
		var v EnergyType
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.energyTypes[v.ID] = v
	case tMarketArea:
		var v MarketArea
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.marketAreas[v.ID] = v
	case tMeasurement:
		var v Measurement
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.measurements[measurementKey{v.Actor, v.EnergyType, v.Slot}] = v
	case tOffer:
		var v OfferRecord
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.offers[v.Offer.ID] = v
	case tForecast:
		var v ForecastRecord
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.forecasts[forecastKey{v.Actor, v.EnergyType, v.Slot, v.Horizon}] = v
	case tPrice:
		var v PriceRecord
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.prices[priceKey{v.MarketArea, v.Hour}] = v
	case tContract:
		var v Contract
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.contracts[contractKey{v.Prosumer, v.BRP}] = v
	case tModelParams:
		var v ModelParams
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		s.modelParams[modelKey{v.Actor, v.EnergyType, v.ModelName}] = v
	default:
		return fmt.Errorf("store: unknown wal table %q", table)
	}
	return nil
}

// logPut appends a put to the WAL when durable. Caller holds the lock.
func (s *Store) logPut(table string, v any) error {
	if s.log == nil {
		return nil
	}
	return s.log.append(table, "put", v)
}

// --- dimension upserts -------------------------------------------------

// PutActor upserts an actor dimension record.
func (s *Store) PutActor(a Actor) error {
	if a.ID == "" {
		return fmt.Errorf("store: actor without id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logPut(tActor, a); err != nil {
		return err
	}
	s.actors[a.ID] = a
	return nil
}

// GetActor returns an actor by ID.
func (s *Store) GetActor(id string) (Actor, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.actors[id]
	return a, ok
}

// Children returns the actors whose Parent is id, in ID order (the
// hierarchy walk of the snowflake dimension).
func (s *Store) Children(id string) []Actor {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Actor
	for _, a := range s.actors {
		if a.Parent == id {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PutEnergyType upserts an energy type dimension record.
func (s *Store) PutEnergyType(e EnergyType) error {
	if e.ID == "" {
		return fmt.Errorf("store: energy type without id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logPut(tEnergyType, e); err != nil {
		return err
	}
	s.energyTypes[e.ID] = e
	return nil
}

// GetEnergyType returns an energy type by ID.
func (s *Store) GetEnergyType(id string) (EnergyType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.energyTypes[id]
	return e, ok
}

// PutMarketArea upserts a market area dimension record.
func (s *Store) PutMarketArea(m MarketArea) error {
	if m.ID == "" {
		return fmt.Errorf("store: market area without id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logPut(tMarketArea, m); err != nil {
		return err
	}
	s.marketAreas[m.ID] = m
	return nil
}

// --- fact upserts ------------------------------------------------------

// PutMeasurement upserts a metered value.
func (s *Store) PutMeasurement(m Measurement) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logPut(tMeasurement, m); err != nil {
		return err
	}
	s.measurements[measurementKey{m.Actor, m.EnergyType, m.Slot}] = m
	return nil
}

// PutOffer upserts a flex-offer record.
func (s *Store) PutOffer(r OfferRecord) error {
	if r.Offer == nil {
		return fmt.Errorf("store: offer record without offer")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logPut(tOffer, r); err != nil {
		return err
	}
	s.offers[r.Offer.ID] = r
	return nil
}

// UpdateOffer applies mutate to the stored record in one atomic
// read-modify-write round-trip and returns the stored result. Use it
// for state transitions that must not interleave with a concurrent
// writer between a GetOffer and a PutOffer (e.g. a negotiation
// decision racing the schedule that the decision unlocked). Returns
// ErrUnknownOffer when no record exists.
func (s *Store) UpdateOffer(id flexoffer.ID, mutate func(*OfferRecord)) (OfferRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.offers[id]
	if !ok {
		return OfferRecord{}, fmt.Errorf("%w: %d", ErrUnknownOffer, id)
	}
	mutate(&r)
	if r.Offer == nil {
		return OfferRecord{}, fmt.Errorf("store: offer record without offer")
	}
	if err := s.logPut(tOffer, r); err != nil {
		return OfferRecord{}, err
	}
	s.offers[id] = r
	return r, nil
}

// GetOffer returns a flex-offer record by ID.
func (s *Store) GetOffer(id flexoffer.ID) (OfferRecord, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.offers[id]
	return r, ok
}

// PutForecast upserts a published forecast value.
func (s *Store) PutForecast(f ForecastRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logPut(tForecast, f); err != nil {
		return err
	}
	s.forecasts[forecastKey{f.Actor, f.EnergyType, f.Slot, f.Horizon}] = f
	return nil
}

// PutPrice upserts a market price.
func (s *Store) PutPrice(p PriceRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logPut(tPrice, p); err != nil {
		return err
	}
	s.prices[priceKey{p.MarketArea, p.Hour}] = p
	return nil
}

// PutContract upserts a contract.
func (s *Store) PutContract(c Contract) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logPut(tContract, c); err != nil {
		return err
	}
	s.contracts[contractKey{c.Prosumer, c.BRP}] = c
	return nil
}

// GetContract returns the contract between a prosumer and a BRP.
func (s *Store) GetContract(prosumer, brp string) (Contract, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.contracts[contractKey{prosumer, brp}]
	return c, ok
}

// PutModelParams persists forecast model parameters.
func (s *Store) PutModelParams(m ModelParams) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logPut(tModelParams, m); err != nil {
		return err
	}
	s.modelParams[modelKey{m.Actor, m.EnergyType, m.ModelName}] = m
	return nil
}

// GetModelParams returns persisted model parameters.
func (s *Store) GetModelParams(actor, energyType, modelName string) (ModelParams, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.modelParams[modelKey{actor, energyType, modelName}]
	return m, ok
}
