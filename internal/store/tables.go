package store

import (
	"mirabel/internal/flexoffer"
)

// Role places an actor in the EDMS hierarchy (paper Figure 2).
type Role string

// The three levels of the harmonized European electricity market model.
const (
	RoleProsumer Role = "prosumer" // level 1
	RoleBRP      Role = "brp"      // level 2 (trader / balance responsible party)
	RoleTSO      Role = "tso"      // level 3
)

// Actor is a dimension record: one participant of the energy system.
// Parent links the hierarchy (prosumer → BRP → TSO), giving the schema
// its snowflake branch.
type Actor struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Role       Role   `json:"role"`
	Parent     string `json:"parent,omitempty"`
	MarketArea string `json:"market_area,omitempty"`
}

// EnergyType is a dimension record: a kind of energy flow.
type EnergyType struct {
	ID        string `json:"id"`   // e.g. "demand", "wind", "solar"
	Kind      string `json:"kind"` // "consumption" or "production"
	Renewable bool   `json:"renewable"`
}

// MarketArea is a dimension record: a price/balance zone. Prosumer-level
// nodes do not use this part of the schema (paper: "some of which only
// use subparts of the schema, e.g., prosumers nodes do not make use of
// market area data").
type MarketArea struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Currency string `json:"currency"`
}

// Measurement is a fact record: metered energy of one actor in one slot.
type Measurement struct {
	Actor      string         `json:"actor"`
	EnergyType string         `json:"energy_type"`
	Slot       flexoffer.Time `json:"slot"`
	KWh        float64        `json:"kwh"`
}

// OfferState is the lifecycle of a flex-offer inside a node.
type OfferState string

// Flex-offer lifecycle states.
const (
	OfferReceived  OfferState = "received"
	OfferAccepted  OfferState = "accepted"
	OfferRejected  OfferState = "rejected"
	OfferScheduled OfferState = "scheduled"
	OfferExecuted  OfferState = "executed"
	OfferExpired   OfferState = "expired"   // timed out: prosumer fell back to the default profile
	OfferCancelled OfferState = "cancelled" // voided by a mid-contract prosumer departure
)

// OfferRecord is a fact record: a flex-offer and its lifecycle state.
type OfferRecord struct {
	Offer    *flexoffer.FlexOffer `json:"offer"`
	Owner    string               `json:"owner"` // issuing actor
	State    OfferState           `json:"state"`
	Schedule *flexoffer.Schedule  `json:"schedule,omitempty"`
}

// ForecastRecord is a fact record: one published forecast value.
type ForecastRecord struct {
	Actor      string         `json:"actor"`
	EnergyType string         `json:"energy_type"`
	Slot       flexoffer.Time `json:"slot"`
	Horizon    int            `json:"horizon"` // slots ahead it was made
	KWh        float64        `json:"kwh"`
}

// PriceRecord is a fact record: a market price for one hour.
type PriceRecord struct {
	MarketArea string  `json:"market_area"`
	Hour       int64   `json:"hour"`
	EURPerMWh  float64 `json:"eur_per_mwh"`
}

// Contract is a fact record: the standing agreement between a prosumer
// and its BRP, including the negotiated flex premium.
type Contract struct {
	Prosumer      string  `json:"prosumer"`
	BRP           string  `json:"brp"`
	BaseTariffEUR float64 `json:"base_tariff_eur"` // per kWh
	FlexPremium   float64 `json:"flex_premium"`    // per kWh, from negotiation
	ShareFrac     float64 `json:"share_frac"`      // profit-sharing fraction
}

// ModelParams is a fact record: persisted forecast model parameters
// (the store keeps "forecasting model parameters" per the paper).
type ModelParams struct {
	Actor      string    `json:"actor"`
	EnergyType string    `json:"energy_type"`
	ModelName  string    `json:"model_name"`
	Params     []float64 `json:"params"`
}

// Table names used in the WAL.
const (
	tActor       = "actors"
	tEnergyType  = "energy_types"
	tMarketArea  = "market_areas"
	tMeasurement = "measurements"
	tOffer       = "offers"
	tForecast    = "forecasts"
	tPrice       = "prices"
	tContract    = "contracts"
	tModelParams = "model_params"
)

// measurementKey identifies a measurement fact.
type measurementKey struct {
	Actor      string
	EnergyType string
	Slot       flexoffer.Time
}

// forecastKey identifies a forecast fact (one value per target slot and
// horizon).
type forecastKey struct {
	Actor      string
	EnergyType string
	Slot       flexoffer.Time
	Horizon    int
}

// priceKey identifies a price fact.
type priceKey struct {
	MarketArea string
	Hour       int64
}

// contractKey identifies a contract.
type contractKey struct {
	Prosumer string
	BRP      string
}

// modelKey identifies persisted model parameters.
type modelKey struct {
	Actor      string
	EnergyType string
	ModelName  string
}
