package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"mirabel/internal/flexoffer"
)

// TestSnapshotNonBlocking proves the acceptance property directly:
// while Snapshot() is serializing the image (the long part), readers
// and writers make progress. The serialize hook parks the snapshot
// between the per-shard copy and the marshal; every store operation
// issued in that window must complete before the snapshot is released.
func TestSnapshotNonBlocking(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for slot := flexoffer.Time(0); slot < 1000; slot++ {
		if err := s.PutMeasurement(Measurement{Actor: "p1", EnergyType: "demand", Slot: slot, KWh: 1}); err != nil {
			t.Fatal(err)
		}
	}

	enter := make(chan struct{})
	release := make(chan struct{})
	s.serializeHook = func() {
		close(enter)
		<-release
	}
	snapDone := make(chan error, 1)
	go func() { snapDone <- s.Snapshot() }()
	<-enter // snapshot copied its view and is now "serializing"

	// Writes across every table flavour, reads via every index — all
	// while the snapshot is mid-flight. No goroutines, no timeouts: if
	// any of these blocked on the snapshot, the test would hang.
	if err := s.PutMeasurement(Measurement{Actor: "p1", EnergyType: "demand", Slot: 5000, KWh: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutOffer(OfferRecord{Offer: testOffer(41), Owner: "p1", State: OfferAccepted}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateOffer(41, func(r *OfferRecord) { r.State = OfferScheduled }); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeasurementsBatch([]Measurement{
		{Actor: "p2", EnergyType: "demand", Slot: 1, KWh: 3},
		{Actor: "p2", EnergyType: "demand", Slot: 2, KWh: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Measurements(MeasurementFilter{Actor: "p1", EnergyType: "demand", FromSlot: 4999, ToSlot: 5001})); got != 1 {
		t.Errorf("read during snapshot = %d rows, want 1", got)
	}
	if got := s.CountOffersByState()[OfferScheduled]; got != 1 {
		t.Errorf("scheduled count during snapshot = %d, want 1", got)
	}
	select {
	case err := <-snapDone:
		t.Fatalf("snapshot finished before release: %v", err)
	default:
	}

	close(release)
	if err := <-snapDone; err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The mid-snapshot writes landed in the post-rotation WAL: recovery
	// must see the snapshot image plus all of them.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Measurements; got != 1003 {
		t.Errorf("measurements after recovery = %d, want 1003", got)
	}
	if r, ok := s2.GetOffer(41); !ok || r.State != OfferScheduled {
		t.Errorf("offer after recovery = %+v, %v", r, ok)
	}
}

// TestSnapshotPlusTailEqualsPreCrashState writes, snapshots, writes
// more (the tail), then "crashes" (reopens without Close) and checks
// the recovered state equals the pre-crash state exactly.
func TestSnapshotPlusTailEqualsPreCrashState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for slot := flexoffer.Time(0); slot < 50; slot++ {
		if err := s.PutMeasurement(Measurement{Actor: "p1", EnergyType: "demand", Slot: slot, KWh: float64(slot)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutOffer(OfferRecord{Offer: testOffer(7), Owner: "p1", State: OfferAccepted}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Tail: post-snapshot mutations, including a state transition of a
	// snapshotted record and a prune.
	if _, err := s.UpdateOffer(7, func(r *OfferRecord) { r.State = OfferScheduled }); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeasurement(Measurement{Actor: "p1", EnergyType: "demand", Slot: 100, KWh: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PruneMeasurements(10); err != nil {
		t.Fatal(err)
	}
	want := s.dump()
	if err := s.Sync(); err != nil { // flush the tail; no Close — this is the crash
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.dump()
	if len(got.Measurements) != len(want.Measurements) {
		t.Errorf("recovered %d measurements, want %d", len(got.Measurements), len(want.Measurements))
	}
	if got := s2.SumEnergyBySlot(MeasurementFilter{})[100]; got != 9 {
		t.Errorf("tail measurement lost: %g", got)
	}
	if got := s2.Stats().Measurements; got != 41 { // 50 - 10 pruned + 1 tail
		t.Errorf("measurements = %d, want 41", got)
	}
	if r, ok := s2.GetOffer(7); !ok || r.State != OfferScheduled {
		t.Errorf("offer transition lost: %+v, %v", r, ok)
	}
}

// TestCrashBetweenSnapshotAndWALRetire simulates dying after the new
// snapshot is in place but before wal.old is removed: the sealed tail
// must replay idempotently over a snapshot that already contains it.
func TestCrashBetweenSnapshotAndWALRetire(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutActor(Actor{ID: "brp1", Role: RoleBRP}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeasurement(Measurement{Actor: "p1", EnergyType: "demand", Slot: 3, KWh: 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recreate wal.old as if the retire step never ran: the records it
	// seals are exactly the ones the snapshot covers.
	for _, rec := range [][3]any{
		{tActor, opPut, Actor{ID: "brp1", Role: RoleBRP}},
		{tMeasurement, opPut, Measurement{Actor: "p1", EnergyType: "demand", Slot: 3, KWh: 7}},
	} {
		line, err := encodeRecord(rec[0].(string), rec[1].(string), rec[2])
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(walOldPath(dir), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(line); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery with leftover wal.old: %v", err)
	}
	if got := s2.Stats(); got.Actors != 1 || got.Measurements != 1 {
		t.Errorf("idempotent replay broke counts: %+v", got)
	}
	// A snapshot from this state must seal the leftover tail away for
	// good (the rotate path appends to an existing wal.old).
	if err := s2.PutActor(Actor{ID: "p9", Role: RoleProsumer}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok := s3.GetActor("p9"); !ok {
		t.Error("post-recovery write lost")
	}
	if got := s3.Stats(); got.Actors != 2 || got.Measurements != 1 {
		t.Errorf("counts after second snapshot: %+v", got)
	}
}

// TestCrashBeforeSnapshotWriteKeepsSealedTail simulates dying between
// the WAL rotation and the snapshot rename: the sealed tail is the only
// copy of its records and must be replayed.
func TestCrashBeforeSnapshotWriteKeepsSealedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutActor(Actor{ID: "only-in-tail", Role: RoleBRP}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The crashed snapshot rotated wal.log to wal.old and died before
	// writing snapshot.json.
	if err := os.Rename(walPath(dir), walOldPath(dir)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetActor("only-in-tail"); !ok {
		t.Error("sealed tail not replayed")
	}
}

func TestOpenReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutActor(Actor{ID: "brp1", Role: RoleBRP}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeasurement(Measurement{Actor: "p1", EnergyType: "demand", Slot: 1, KWh: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, ok := ro.GetActor("brp1"); !ok {
		t.Error("read-only open lost the actor")
	}
	if got := ro.SumEnergyBySlot(MeasurementFilter{})[1]; got != 2 {
		t.Errorf("read-only measurement = %g, want 2", got)
	}
	for name, err := range map[string]error{
		"PutActor":       ro.PutActor(Actor{ID: "x"}),
		"PutMeasurement": ro.PutMeasurement(Measurement{Actor: "x", EnergyType: "demand"}),
		"PutOffer":       ro.PutOffer(OfferRecord{Offer: testOffer(1)}),
		"ApplyBatch": func() error {
			b := NewBatch()
			b.PutActor(Actor{ID: "x"})
			return ro.ApplyBatch(b)
		}(),
		"Snapshot": ro.Snapshot(),
	} {
		if !errors.Is(err, ErrReadOnly) {
			t.Errorf("%s on read-only store: err = %v, want ErrReadOnly", name, err)
		}
	}
	if _, err := ro.UpdateOffer(1, func(*OfferRecord) {}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("UpdateOffer = %v, want ErrReadOnly", err)
	}
	if _, err := ro.PruneMeasurements(10); !errors.Is(err, ErrReadOnly) {
		t.Errorf("PruneMeasurements = %v, want ErrReadOnly", err)
	}

	// The writable files are untouched: the store reopens writable with
	// the same contents.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetActor("brp1"); !ok {
		t.Error("writable reopen after read-only lost data")
	}
}

// TestOpenReadOnlyRejectsMissingStore is the mirabel-inspect guard: a
// mistyped path must error, not fabricate an empty store.
func TestOpenReadOnlyRejectsMissingStore(t *testing.T) {
	if _, err := OpenReadOnly(t.TempDir() + "/nope"); err == nil {
		t.Error("read-only open of a missing dir succeeded")
	}
	empty := t.TempDir() // exists, but holds no store artifacts
	if _, err := OpenReadOnly(empty); err == nil {
		t.Error("read-only open of a dir without store artifacts succeeded")
	}
	if entries, err := os.ReadDir(empty); err != nil || len(entries) != 0 {
		t.Errorf("read-only open touched the directory: %v, %v", entries, err)
	}
}

func TestPruneMeasurements(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for slot := flexoffer.Time(0); slot < 20; slot++ {
		for _, actor := range []string{"p1", "p2"} {
			if err := s.PutMeasurement(Measurement{Actor: actor, EnergyType: "demand", Slot: slot, KWh: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	n, err := s.PruneMeasurements(12)
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Errorf("pruned %d, want 24", n)
	}
	if got := s.Stats().Measurements; got != 16 {
		t.Errorf("remaining = %d, want 16", got)
	}
	if ms := s.Measurements(MeasurementFilter{Actor: "p1", EnergyType: "demand"}); len(ms) != 8 || ms[0].Slot != 12 {
		t.Errorf("post-prune series = %+v", ms)
	}
	// Pruning again is a no-op.
	if n, err := s.PruneMeasurements(12); err != nil || n != 0 {
		t.Errorf("re-prune = %d, %v, want 0, nil", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The sweep is WAL-logged: recovery replays puts then the prune and
	// converges to the swept state.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Measurements; got != 16 {
		t.Errorf("recovered measurements = %d, want 16", got)
	}
	if ms := s2.Measurements(MeasurementFilter{Actor: "p2", EnergyType: "demand"}); len(ms) != 8 || ms[0].Slot != 12 {
		t.Errorf("recovered series = %+v", ms)
	}
}

func TestApplyBatchMixedTables(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	b.PutActor(Actor{ID: "brp1", Role: RoleBRP})
	b.PutEnergyType(EnergyType{ID: "demand", Kind: "consumption"})
	b.PutMarketArea(MarketArea{ID: "dk1"})
	b.PutMeasurement(Measurement{Actor: "p1", EnergyType: "demand", Slot: 1, KWh: 2})
	b.PutMeasurement(Measurement{Actor: "p1", EnergyType: "demand", Slot: 1, KWh: 3}) // same-key: last wins
	b.PutOffer(OfferRecord{Offer: testOffer(9), Owner: "p1", State: OfferAccepted})
	b.PutForecast(ForecastRecord{Actor: "brp1", EnergyType: "demand", Slot: 4, Horizon: 1, KWh: 5})
	b.PutPrice(PriceRecord{MarketArea: "dk1", Hour: 7, EURPerMWh: 55})
	b.PutContract(Contract{Prosumer: "p1", BRP: "brp1", FlexPremium: 0.02})
	b.PutModelParams(ModelParams{Actor: "brp1", EnergyType: "demand", ModelName: "HWT", Params: []float64{1}})
	if b.Len() != 10 {
		t.Fatalf("batch len = %d", b.Len())
	}
	if err := s.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	if got := s.SumEnergyBySlot(MeasurementFilter{})[1]; got != 3 {
		t.Errorf("same-key batch order broken: %g, want 3", got)
	}
	st := s.Stats()
	if st.Actors != 1 || st.EnergyTypes != 1 || st.MarketAreas != 1 || st.Measurements != 1 ||
		st.Offers != 1 || st.Forecasts != 1 || st.Prices != 1 || st.Contracts != 1 || st.ModelParamsEntries != 1 {
		t.Errorf("stats after batch: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(); got != st {
		t.Errorf("recovered stats %+v != %+v", got, st)
	}
}

func TestApplyBatchValidation(t *testing.T) {
	s := NewInMemory()
	b := NewBatch()
	b.PutActor(Actor{}) // invalid: no id
	b.PutActor(Actor{ID: "ok"})
	if err := s.ApplyBatch(b); err == nil {
		t.Error("batch with invalid op applied")
	}
	if _, ok := s.GetActor("ok"); ok {
		t.Error("invalid batch partially applied")
	}
	if err := s.ApplyBatch(NewBatch()); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestUpdateOffersBatch(t *testing.T) {
	s := NewInMemory()
	for id := flexoffer.ID(1); id <= 3; id++ {
		if err := s.PutOffer(OfferRecord{Offer: testOffer(id), Owner: fmt.Sprintf("p%d", id), State: OfferAccepted}); err != nil {
			t.Fatal(err)
		}
	}
	results, err := s.UpdateOffers([]OfferUpdate{
		{ID: 1, Mutate: func(r *OfferRecord) { r.State = OfferScheduled }},
		{ID: 99, Mutate: func(r *OfferRecord) { r.State = OfferScheduled }},
		{ID: 2, Mutate: func(r *OfferRecord) { r.State = OfferScheduled }},
		{ID: 2, Mutate: func(r *OfferRecord) { // chained: sees the scheduled state
			if r.State == OfferScheduled {
				r.State = OfferExecuted
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Record.State != OfferScheduled {
		t.Errorf("result[0] = %+v", results[0])
	}
	if !errors.Is(results[1].Err, ErrUnknownOffer) {
		t.Errorf("result[1].Err = %v, want ErrUnknownOffer", results[1].Err)
	}
	if results[3].Err != nil || results[3].Record.State != OfferExecuted {
		t.Errorf("chained result = %+v", results[3])
	}
	counts := s.CountOffersByState()
	if counts[OfferScheduled] != 1 || counts[OfferExecuted] != 1 || counts[OfferAccepted] != 1 {
		t.Errorf("counts after batch = %+v", counts)
	}
}

// TestOfferIndexConsistency drives records through the lifecycle and
// checks the secondary indexes agree with the base table at each step.
func TestOfferIndexConsistency(t *testing.T) {
	s := NewInMemory()
	for id := flexoffer.ID(1); id <= 10; id++ {
		owner := fmt.Sprintf("p%d", id%3)
		if err := s.PutOffer(OfferRecord{Offer: testOffer(id), Owner: owner, State: OfferReceived}); err != nil {
			t.Fatal(err)
		}
	}
	for id := flexoffer.ID(1); id <= 5; id++ {
		if _, err := s.UpdateOffer(id, func(r *OfferRecord) { r.State = OfferScheduled }); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Offers(OfferFilter{State: OfferScheduled})); got != 5 {
		t.Errorf("scheduled = %d, want 5", got)
	}
	if got := len(s.Offers(OfferFilter{State: OfferReceived})); got != 5 {
		t.Errorf("received = %d, want 5", got)
	}
	byOwner := s.Offers(OfferFilter{Owner: "p1"})
	if len(byOwner) != 4 { // ids 1,4,7,10
		t.Errorf("owner p1 = %d records, want 4", len(byOwner))
	}
	both := s.Offers(OfferFilter{Owner: "p1", State: OfferScheduled})
	if len(both) != 2 { // ids 1, 4
		t.Errorf("owner+state = %d records (%+v), want 2", len(both), both)
	}
	for i := 1; i < len(byOwner); i++ {
		if byOwner[i].Offer.ID < byOwner[i-1].Offer.ID {
			t.Error("indexed query lost ID order")
		}
	}
	counts := s.CountOffersByState()
	if counts[OfferScheduled] != 5 || counts[OfferReceived] != 5 || counts[OfferAccepted] != 0 {
		t.Errorf("counts = %+v", counts)
	}
}

// TestGroupCommitCoalesces checks that concurrent single-record writers
// share physical log flushes (and fsyncs under SyncAlways).
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			actor := fmt.Sprintf("p%d", w)
			for i := 0; i < each; i++ {
				if err := s.PutMeasurement(Measurement{Actor: actor, EnergyType: "demand", Slot: flexoffer.Time(i), KWh: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ls := s.WALStats()
	if ls.Records != writers*each {
		t.Errorf("records = %d, want %d", ls.Records, writers*each)
	}
	if ls.Groups > ls.Records || ls.Groups == 0 {
		t.Errorf("groups = %d out of %d records", ls.Groups, ls.Records)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Measurements; got != writers*each {
		t.Errorf("recovered %d measurements, want %d", got, writers*each)
	}
}
