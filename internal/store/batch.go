package store

import (
	"fmt"
	"sort"

	"mirabel/internal/flexoffer"
)

// Batch collects upserts to be applied in one call. A batch is logged
// as a single WAL group (one buffered append, one fsync under
// SyncAlways) and applied while every touched stripe is locked at once,
// so concurrent readers on other stripes keep flowing and concurrent
// writers to the same batch coalesce with it in the committer.
//
// A batch is not a transaction: a crash mid-group can persist a prefix
// of its records. Every record is an idempotent upsert, so the prefix
// is a valid (earlier) state. Ops on the same key apply in insertion
// order.
type Batch struct {
	ops []batchOp
	err error // first validation failure, surfaced by ApplyBatch
}

type batchOp struct {
	table string
	val   any
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Len reports the number of queued ops.
func (b *Batch) Len() int { return len(b.ops) }

func (b *Batch) add(table string, val any) {
	b.ops = append(b.ops, batchOp{table: table, val: val})
}

// PutActor queues an actor upsert.
func (b *Batch) PutActor(a Actor) {
	if a.ID == "" && b.err == nil {
		b.err = fmt.Errorf("store: batch actor without id")
	}
	b.add(tActor, a)
}

// PutEnergyType queues an energy type upsert.
func (b *Batch) PutEnergyType(e EnergyType) {
	if e.ID == "" && b.err == nil {
		b.err = fmt.Errorf("store: batch energy type without id")
	}
	b.add(tEnergyType, e)
}

// PutMarketArea queues a market area upsert.
func (b *Batch) PutMarketArea(m MarketArea) {
	if m.ID == "" && b.err == nil {
		b.err = fmt.Errorf("store: batch market area without id")
	}
	b.add(tMarketArea, m)
}

// PutMeasurement queues a metered value upsert.
func (b *Batch) PutMeasurement(m Measurement) { b.add(tMeasurement, m) }

// PutOffer queues a flex-offer record upsert.
func (b *Batch) PutOffer(r OfferRecord) {
	if r.Offer == nil && b.err == nil {
		b.err = fmt.Errorf("store: batch offer record without offer")
	}
	b.add(tOffer, r)
}

// PutForecast queues a forecast value upsert.
func (b *Batch) PutForecast(f ForecastRecord) { b.add(tForecast, f) }

// PutPrice queues a market price upsert.
func (b *Batch) PutPrice(p PriceRecord) { b.add(tPrice, p) }

// PutContract queues a contract upsert.
func (b *Batch) PutContract(c Contract) { b.add(tContract, c) }

// PutModelParams queues a model parameter upsert.
func (b *Batch) PutModelParams(m ModelParams) { b.add(tModelParams, m) }

// ApplyBatch applies every queued op: encode outside locks, lock the
// touched stripes/series in the global (table, unit) order, log the
// whole batch as one WAL group, apply, unlock. The batch is reusable
// input (it is not consumed) but must not be mutated concurrently.
func (s *Store) ApplyBatch(b *Batch) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if b.err != nil {
		return b.err
	}
	if len(b.ops) == 0 {
		return nil
	}

	// Encode every record before any lock is taken.
	var lines [][]byte
	if s.w != nil {
		lines = make([][]byte, len(b.ops))
		for i, op := range b.ops {
			line, err := encodeRecord(op.table, opPut, op.val)
			if err != nil {
				return err
			}
			lines[i] = line
		}
	}

	// Build the lock plan. Measurement series are created up front so
	// their (stable) creation ids can order the plan — and their
	// pointers are captured now, because once the plan's locks are held
	// no path may touch the series index again (a lookup's read lock
	// can deadlock three-way with a pending series creation and a
	// prune sweep).
	units := make([]lockUnit, 0, len(b.ops))
	series := make([]*slotSeries, len(b.ops))
	for i, op := range b.ops {
		switch v := op.val.(type) {
		case Actor:
			units = append(units, lockUnit{lockActors, uint64(s.actors.shardIndex(v.ID)), &s.actors.shard(v.ID).mu})
		case EnergyType:
			units = append(units, lockUnit{lockEnergyTypes, uint64(s.energyTypes.shardIndex(v.ID)), &s.energyTypes.shard(v.ID).mu})
		case MarketArea:
			units = append(units, lockUnit{lockMarketAreas, uint64(s.marketAreas.shardIndex(v.ID)), &s.marketAreas.shard(v.ID).mu})
		case Measurement:
			ss := s.meas.ensure(seriesKey{v.Actor, v.EnergyType})
			series[i] = ss
			units = append(units, lockUnit{lockMeasurements, ss.id, &ss.mu})
		case OfferRecord:
			id := v.Offer.ID
			units = append(units, lockUnit{lockOffers, uint64(s.offers.shardIndex(id)), &s.offers.shard(id).mu})
		case ForecastRecord:
			k := forecastKey{v.Actor, v.EnergyType, v.Slot, v.Horizon}
			units = append(units, lockUnit{lockForecasts, uint64(s.forecasts.shardIndex(k)), &s.forecasts.shard(k).mu})
		case PriceRecord:
			k := priceKey{v.MarketArea, v.Hour}
			units = append(units, lockUnit{lockPrices, uint64(s.prices.shardIndex(k)), &s.prices.shard(k).mu})
		case Contract:
			k := contractKey{v.Prosumer, v.BRP}
			units = append(units, lockUnit{lockContracts, uint64(s.contracts.shardIndex(k)), &s.contracts.shard(k).mu})
		case ModelParams:
			k := modelKey{v.Actor, v.EnergyType, v.ModelName}
			units = append(units, lockUnit{lockModelParams, uint64(s.modelParams.shardIndex(k)), &s.modelParams.shard(k).mu})
		default:
			return fmt.Errorf("store: unknown batch op %T", op.val)
		}
	}
	units = sortLockUnits(units)
	for i := range units {
		units[i].mu.Lock()
	}
	defer func() {
		for i := len(units) - 1; i >= 0; i-- {
			units[i].mu.Unlock()
		}
	}()

	// One group commit for the whole batch.
	if s.w != nil {
		if err := s.w.commit(lines); err != nil {
			return err
		}
	}

	// Apply under the held locks.
	for i, op := range b.ops {
		switch v := op.val.(type) {
		case Actor:
			putLocked(s.actors, v.ID, v)
		case EnergyType:
			putLocked(s.energyTypes, v.ID, v)
		case MarketArea:
			putLocked(s.marketAreas, v.ID, v)
		case Measurement:
			series[i].insertLocked(v.Slot, v.KWh)
		case OfferRecord:
			id := v.Offer.ID
			sh := s.offers.shard(id)
			old, had := sh.m[id]
			sh.m[id] = v
			s.offerIdx.update(id, old, had, v)
		case ForecastRecord:
			putLocked(s.forecasts, forecastKey{v.Actor, v.EnergyType, v.Slot, v.Horizon}, v)
		case PriceRecord:
			putLocked(s.prices, priceKey{v.MarketArea, v.Hour}, v)
		case Contract:
			putLocked(s.contracts, contractKey{v.Prosumer, v.BRP}, v)
		case ModelParams:
			putLocked(s.modelParams, modelKey{v.Actor, v.EnergyType, v.ModelName}, v)
		}
	}
	return nil
}

// putLocked upserts into a stripe whose lock the caller already holds.
func putLocked[K comparable, V any](t *shardedTable[K, V], k K, v V) {
	t.shard(k).m[k] = v
}

// PutMeasurementsBatch stores a slice of metered values as one batch:
// the bulk-ingestion path for meter streams (one WAL group, one lock
// round per touched series).
func (s *Store) PutMeasurementsBatch(ms []Measurement) error {
	if len(ms) == 0 {
		return nil
	}
	b := NewBatch()
	for _, m := range ms {
		b.PutMeasurement(m)
	}
	return s.ApplyBatch(b)
}

// OfferUpdate names one offer transition of an UpdateOffers batch.
type OfferUpdate struct {
	ID     flexoffer.ID
	Mutate func(*OfferRecord)
}

// OfferUpdateResult is the per-update outcome of UpdateOffers: the
// stored record after the mutation, or ErrUnknownOffer (match with
// errors.Is) when no record existed.
type OfferUpdateResult struct {
	Record OfferRecord
	Err    error
}

// UpdateOffers applies a batch of atomic offer transitions: all touched
// stripes are locked at once (in stripe order), every surviving
// mutation is logged as one WAL group, then applied. Per-update
// failures (unknown id, record left without an offer) are reported in
// the result slice without failing the batch; the returned error is
// reserved for log failures, in which case nothing was applied.
//
// Updates listing the same id chain: each mutation sees its
// predecessor's result.
func (s *Store) UpdateOffers(updates []OfferUpdate) ([]OfferUpdateResult, error) {
	if s.readOnly {
		return nil, ErrReadOnly
	}
	if len(updates) == 0 {
		return nil, nil
	}

	// Lock plan over the touched stripes.
	units := make([]lockUnit, 0, len(updates))
	for _, u := range updates {
		units = append(units, lockUnit{lockOffers, uint64(s.offers.shardIndex(u.ID)), &s.offers.shard(u.ID).mu})
	}
	units = sortLockUnits(units)
	for i := range units {
		units[i].mu.Lock()
	}
	defer func() {
		for i := len(units) - 1; i >= 0; i-- {
			units[i].mu.Unlock()
		}
	}()

	// Stage every mutation under the locks, chaining same-id updates.
	results := make([]OfferUpdateResult, len(updates))
	staged := make(map[flexoffer.ID]OfferRecord)
	firstOld := make(map[flexoffer.ID]OfferRecord) // pre-batch records, for index maintenance
	var lines [][]byte
	type appliedUpdate struct {
		id  flexoffer.ID
		rec OfferRecord
	}
	var applied []appliedUpdate
	for i, u := range updates {
		old, ok := staged[u.ID]
		if !ok {
			var had bool
			old, had = s.offers.shard(u.ID).m[u.ID]
			if !had {
				results[i].Err = fmt.Errorf("%w: %d", ErrUnknownOffer, u.ID)
				continue
			}
			firstOld[u.ID] = old
		}
		r := old
		u.Mutate(&r)
		if r.Offer == nil {
			results[i].Err = fmt.Errorf("store: offer record without offer")
			continue
		}
		if s.w != nil {
			line, err := encodeRecord(tOffer, opPut, r)
			if err != nil {
				return nil, err
			}
			lines = append(lines, line)
		}
		staged[u.ID] = r
		results[i].Record = r
		applied = append(applied, appliedUpdate{u.ID, r})
	}

	// One group commit, then apply. On a log failure nothing changes.
	if s.w != nil && len(lines) > 0 {
		if err := s.w.commit(lines); err != nil {
			return nil, err
		}
	}
	for _, a := range applied {
		s.offers.shard(a.id).m[a.id] = a.rec
	}
	for id, r := range staged {
		s.offerIdx.update(id, firstOld[id], true, r)
	}
	return results, nil
}

func sortSeriesByID(series []*slotSeries) {
	sort.Slice(series, func(i, j int) bool { return series[i].id < series[j].id })
}
