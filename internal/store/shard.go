package store

import (
	"sort"
	"sync"

	"mirabel/internal/flexoffer"
)

// numShards is the stripe count of every hashed table. Power of two so
// shard selection is a mask. 32 stripes keep writer collisions rare at
// the node's concurrency levels (handler goroutines + one cycle) while
// the per-table footprint stays small.
const numShards = 32

// tableShard is one stripe of a hashed table: a mutex and the map it
// guards. Writers hold the stripe's write lock across the WAL commit of
// the record they are about to apply, which is what keeps the log order
// and the memory order of any single key identical (recovery replays
// the log and must converge to the same state).
type tableShard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// shardedTable is a hash-striped map: the concurrent replacement for
// the seed engine's single map under the store-wide mutex. Independent
// keys land on independent stripes, so measurement ingestion, offer
// transitions and forecast writes stop contending on one lock.
type shardedTable[K comparable, V any] struct {
	hash   func(K) uint64
	shards [numShards]tableShard[K, V]
}

func newShardedTable[K comparable, V any](hash func(K) uint64) *shardedTable[K, V] {
	t := &shardedTable[K, V]{hash: hash}
	for i := range t.shards {
		t.shards[i].m = make(map[K]V)
	}
	return t
}

// shard returns the stripe owning k.
func (t *shardedTable[K, V]) shard(k K) *tableShard[K, V] {
	return &t.shards[t.hash(k)&(numShards-1)]
}

// shardIndex returns the stripe number owning k (the table-local half
// of a batch lock-plan key).
func (t *shardedTable[K, V]) shardIndex(k K) int {
	return int(t.hash(k) & (numShards - 1))
}

func (t *shardedTable[K, V]) get(k K) (V, bool) {
	sh := t.shard(k)
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

// length sums the stripe sizes (each under a brief read lock).
func (t *shardedTable[K, V]) length() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.RLock()
		n += len(t.shards[i].m)
		t.shards[i].mu.RUnlock()
	}
	return n
}

// snapshotValues copies every value out, one stripe at a time under
// brief read locks — the per-shard-consistent view Snapshot serializes
// outside any lock.
func (t *shardedTable[K, V]) snapshotValues() []V {
	out := make([]V, 0, t.length())
	for i := range t.shards {
		t.shards[i].mu.RLock()
		for _, v := range t.shards[i].m {
			out = append(out, v)
		}
		t.shards[i].mu.RUnlock()
	}
	return out
}

// scan calls fn for every entry, one stripe at a time under read locks.
// Used by the residual full-table queries (dimension walks, unfiltered
// listings) whose result is the table anyway.
func (t *shardedTable[K, V]) scan(fn func(K, V)) {
	for i := range t.shards {
		t.shards[i].mu.RLock()
		for k, v := range t.shards[i].m {
			fn(k, v)
		}
		t.shards[i].mu.RUnlock()
	}
}

// --- key hashing -------------------------------------------------------

// hashString is 64-bit FNV-1a, inlined to avoid the hash.Hash64
// allocation on every shard lookup.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// hashUint64 is the splitmix64 finalizer: cheap avalanche for integer
// keys (offer IDs are often sequential, which would otherwise pile
// consecutive offers onto consecutive stripes of a weaker mix).
func hashUint64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashCombine(a, b uint64) uint64 {
	return hashUint64(a ^ (b*0x9e3779b97f4a7c15 + 0x85ebca6b))
}

func hashOfferID(id flexoffer.ID) uint64 { return hashUint64(uint64(id)) }

func hashForecastKey(k forecastKey) uint64 {
	h := hashCombine(hashString(k.Actor), hashString(k.EnergyType))
	h = hashCombine(h, uint64(k.Slot))
	return hashCombine(h, uint64(k.Horizon))
}

func hashPriceKey(k priceKey) uint64 {
	return hashCombine(hashString(k.MarketArea), uint64(k.Hour))
}

func hashContractKey(k contractKey) uint64 {
	return hashCombine(hashString(k.Prosumer), hashString(k.BRP))
}

func hashModelKey(k modelKey) uint64 {
	return hashCombine(hashCombine(hashString(k.Actor), hashString(k.EnergyType)), hashString(k.ModelName))
}

// --- batch lock plans --------------------------------------------------

// Table order for the batch lock plan. Any two writers that lock more
// than one unit acquire them in (table, unit) order, so multi-stripe
// batches cannot deadlock each other.
const (
	lockActors = iota
	lockEnergyTypes
	lockMarketAreas
	lockOffers
	lockForecasts
	lockPrices
	lockContracts
	lockModelParams
	lockMeasurements // series units sort after the hashed tables
)

// lockUnit is one mutex a batch must hold, with its position in the
// global acquisition order. For hashed tables unit is the stripe index;
// for measurement series it is the series' creation id (unique, stable,
// totally ordered — see measurementIndex).
type lockUnit struct {
	table int
	unit  uint64
	mu    *sync.RWMutex
}

// sortLockUnits orders and dedupes a lock plan in place, returning the
// deduped slice. Two ops hitting the same stripe collapse to one lock.
func sortLockUnits(units []lockUnit) []lockUnit {
	sort.Slice(units, func(i, j int) bool {
		if units[i].table != units[j].table {
			return units[i].table < units[j].table
		}
		return units[i].unit < units[j].unit
	})
	out := units[:0]
	var last *sync.RWMutex
	for _, u := range units {
		if u.mu == last {
			continue
		}
		out = append(out, u)
		last = u.mu
	}
	return out
}
