package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"mirabel/internal/flexoffer"
)

func testOffer(id flexoffer.ID) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID: id, EarliestStart: 10, LatestStart: 20, AssignBefore: 5,
		Profile: []flexoffer.Slice{{EnergyMin: 1, EnergyMax: 2}},
	}
}

func TestInMemoryCRUD(t *testing.T) {
	s := NewInMemory()
	if err := s.PutActor(Actor{ID: "brp1", Role: RoleBRP}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutActor(Actor{ID: "p1", Role: RoleProsumer, Parent: "brp1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutActor(Actor{ID: "p2", Role: RoleProsumer, Parent: "brp1"}); err != nil {
		t.Fatal(err)
	}
	a, ok := s.GetActor("p1")
	if !ok || a.Parent != "brp1" {
		t.Errorf("GetActor = %+v, %v", a, ok)
	}
	kids := s.Children("brp1")
	if len(kids) != 2 || kids[0].ID != "p1" {
		t.Errorf("Children = %+v", kids)
	}
	if err := s.PutActor(Actor{}); err == nil {
		t.Error("actor without id accepted")
	}
}

func TestMeasurementQueries(t *testing.T) {
	s := NewInMemory()
	for slot := flexoffer.Time(0); slot < 10; slot++ {
		for _, actor := range []string{"p1", "p2"} {
			if err := s.PutMeasurement(Measurement{Actor: actor, EnergyType: "demand", Slot: slot, KWh: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.PutMeasurement(Measurement{Actor: "p1", EnergyType: "solar", Slot: 3, KWh: -2}); err != nil {
		t.Fatal(err)
	}

	ms := s.Measurements(MeasurementFilter{Actor: "p1", EnergyType: "demand", FromSlot: 2, ToSlot: 5})
	if len(ms) != 3 {
		t.Fatalf("filtered measurements = %d, want 3", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Slot < ms[i-1].Slot {
			t.Error("measurements not ordered by slot")
		}
	}

	sums := s.SumEnergyBySlot(MeasurementFilter{EnergyType: "demand"})
	if sums[0] != 2 {
		t.Errorf("slot 0 sum = %g, want 2", sums[0])
	}

	series := s.SeriesBySlot(MeasurementFilter{EnergyType: "demand"}, 0, 12)
	if len(series) != 12 || series[9] != 2 || series[11] != 0 {
		t.Errorf("series = %v", series)
	}
}

func TestMeasurementUpsertOverwrites(t *testing.T) {
	s := NewInMemory()
	m := Measurement{Actor: "p1", EnergyType: "demand", Slot: 1, KWh: 5}
	if err := s.PutMeasurement(m); err != nil {
		t.Fatal(err)
	}
	m.KWh = 7 // meter correction
	if err := s.PutMeasurement(m); err != nil {
		t.Fatal(err)
	}
	if got := s.SumEnergyBySlot(MeasurementFilter{})[1]; got != 7 {
		t.Errorf("upsert kept old value: %g", got)
	}
}

func TestOfferLifecycle(t *testing.T) {
	s := NewInMemory()
	if err := s.PutOffer(OfferRecord{Offer: testOffer(1), Owner: "p1", State: OfferReceived}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutOffer(OfferRecord{Offer: testOffer(2), Owner: "p1", State: OfferAccepted}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutOffer(OfferRecord{}); err == nil {
		t.Error("record without offer accepted")
	}
	r, ok := s.GetOffer(1)
	if !ok || r.State != OfferReceived {
		t.Errorf("GetOffer = %+v, %v", r, ok)
	}
	counts := s.CountOffersByState()
	if counts[OfferReceived] != 1 || counts[OfferAccepted] != 1 {
		t.Errorf("counts = %+v", counts)
	}
	if got := s.Offers(OfferFilter{State: OfferAccepted}); len(got) != 1 || got[0].Offer.ID != 2 {
		t.Errorf("Offers filter = %+v", got)
	}
}

func TestContractsAndPrices(t *testing.T) {
	s := NewInMemory()
	if err := s.PutContract(Contract{Prosumer: "p1", BRP: "brp1", BaseTariffEUR: 0.3, FlexPremium: 0.02}); err != nil {
		t.Fatal(err)
	}
	c, ok := s.GetContract("p1", "brp1")
	if !ok || c.FlexPremium != 0.02 {
		t.Errorf("GetContract = %+v, %v", c, ok)
	}
	if err := s.PutPrice(PriceRecord{MarketArea: "dk1", Hour: 7, EURPerMWh: 55}); err != nil {
		t.Fatal(err)
	}
	p, ok := s.Price("dk1", 7)
	if !ok || p.EURPerMWh != 55 {
		t.Errorf("Price = %+v, %v", p, ok)
	}
	if _, ok := s.Price("dk1", 8); ok {
		t.Error("missing price found")
	}
}

func TestForecastsQuery(t *testing.T) {
	s := NewInMemory()
	for slot := flexoffer.Time(0); slot < 6; slot++ {
		if err := s.PutForecast(ForecastRecord{Actor: "brp1", EnergyType: "demand", Slot: slot, Horizon: 1, KWh: float64(slot)}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Forecasts("brp1", "demand", 2, 5)
	if len(got) != 3 || got[0].Slot != 2 {
		t.Errorf("Forecasts = %+v", got)
	}
}

func TestDurabilityWALReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutActor(Actor{ID: "brp1", Role: RoleBRP}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeasurement(Measurement{Actor: "p1", EnergyType: "demand", Slot: 4, KWh: 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutOffer(OfferRecord{Offer: testOffer(3), Owner: "p1", State: OfferScheduled,
		Schedule: &flexoffer.Schedule{OfferID: 3, Start: 12, Energy: []float64{1.5}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: WAL replay must restore everything.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetActor("brp1"); !ok {
		t.Error("actor lost")
	}
	if got := s2.SumEnergyBySlot(MeasurementFilter{})[4]; got != 9 {
		t.Errorf("measurement lost: %g", got)
	}
	r, ok := s2.GetOffer(3)
	if !ok || r.State != OfferScheduled || r.Schedule.Start != 12 {
		t.Errorf("offer lost: %+v, %v", r, ok)
	}
}

func TestDurabilitySnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutActor(Actor{ID: "a1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot writes land in the fresh WAL tail.
	if err := s.PutActor(Actor{ID: "a2"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetActor("a1"); !ok {
		t.Error("snapshot record lost")
	}
	if _, ok := s2.GetActor("a2"); !ok {
		t.Error("wal tail record lost")
	}
}

func TestTornWALTailIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutActor(Actor{ID: "good"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write.
	f, err := os.OpenFile(walPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"table":"actors","op":"put","da`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.GetActor("good"); !ok {
		t.Error("good record lost with torn tail")
	}
}

func TestCorruptCRCDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutActor(Actor{ID: "good"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a record with a wrong checksum.
	f, _ := os.OpenFile(walPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"table":"actors","op":"put","data":{"id":"evil"},"crc":12345}` + "\n")
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetActor("evil"); ok {
		t.Error("corrupt record applied")
	}
	if _, ok := s2.GetActor("good"); !ok {
		t.Error("good record lost")
	}
}

func TestSnapshotInMemoryErrors(t *testing.T) {
	if err := NewInMemory().Snapshot(); err == nil {
		t.Error("snapshot of in-memory store should error")
	}
}

func TestStats(t *testing.T) {
	s := NewInMemory()
	s.PutActor(Actor{ID: "a"})
	s.PutEnergyType(EnergyType{ID: "demand", Kind: "consumption"})
	s.PutMarketArea(MarketArea{ID: "dk1"})
	s.PutMeasurement(Measurement{Actor: "a", EnergyType: "demand", Slot: 1, KWh: 1})
	s.PutModelParams(ModelParams{Actor: "a", EnergyType: "demand", ModelName: "HWT", Params: []float64{0.1}})
	st := s.Stats()
	if st.Actors != 1 || st.EnergyTypes != 1 || st.MarketAreas != 1 || st.Measurements != 1 || st.ModelParamsEntries != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if mp, ok := s.GetModelParams("a", "demand", "HWT"); !ok || mp.Params[0] != 0.1 {
		t.Errorf("GetModelParams = %+v, %v", mp, ok)
	}
}

// Property: durable store state after Close/Open equals in-memory state
// for random measurement batches.
func TestPropertyRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(slots []uint8, vals []float64) bool {
		i++
		sub := filepath.Join(dir, "case", string(rune('a'+i%26)), "x")
		n := len(slots)
		if len(vals) < n {
			n = len(vals)
		}
		s, err := Open(sub)
		if err != nil {
			return false
		}
		want := make(map[flexoffer.Time]float64)
		for j := 0; j < n; j++ {
			v := vals[j]
			if v != v || v > 1e100 || v < -1e100 { // NaN/huge guards
				v = 1
			}
			m := Measurement{Actor: "p", EnergyType: "demand", Slot: flexoffer.Time(slots[j]), KWh: v}
			if err := s.PutMeasurement(m); err != nil {
				return false
			}
			want[m.Slot] = v
		}
		if err := s.Close(); err != nil {
			return false
		}
		s2, err := Open(sub)
		if err != nil {
			return false
		}
		defer s2.Close()
		got := s2.SumEnergyBySlot(MeasurementFilter{})
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestUpdateOfferAtomicTransition(t *testing.T) {
	s := NewInMemory()
	f := &flexoffer.FlexOffer{ID: 7, EarliestStart: 40, LatestStart: 48, AssignBefore: 32,
		Profile: []flexoffer.Slice{{EnergyMin: 0, EnergyMax: 5}}}
	if err := s.PutOffer(OfferRecord{Offer: f, Owner: "p7", State: OfferReceived}); err != nil {
		t.Fatal(err)
	}
	// A concurrent writer advanced the record (a schedule arrived).
	sched := &flexoffer.Schedule{OfferID: 7, Start: 40, Energy: []float64{1}}
	if _, err := s.UpdateOffer(7, func(r *OfferRecord) {
		r.State = OfferScheduled
		r.Schedule = sched
	}); err != nil {
		t.Fatal(err)
	}
	// The guarded transition observes the current state and declines,
	// preserving the schedule instead of stomping it.
	rec, err := s.UpdateOffer(7, func(r *OfferRecord) {
		if r.State == OfferReceived {
			r.State = OfferAccepted
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != OfferScheduled || rec.Schedule != sched || rec.Owner != "p7" {
		t.Errorf("record = %+v, want scheduled state and fields preserved", rec)
	}
	if _, err := s.UpdateOffer(99, func(r *OfferRecord) {}); !errors.Is(err, ErrUnknownOffer) {
		t.Errorf("unknown offer err = %v, want ErrUnknownOffer", err)
	}
}
