package store

import (
	"sort"
	"sync"

	"mirabel/internal/flexoffer"
)

// --- offer secondary indexes -------------------------------------------

// offerIndex maintains the two secondary indexes over the offer fact
// table: state → ids and owner → ids. Offers, CountOffersByState and
// the settlement sweep read only the matching ids instead of scanning
// every offer record.
//
// The index is updated while the offer's table stripe is write-locked
// (stripe lock → index lock, never the reverse), so an index hit always
// refers to a record that existed at some point; readers re-check the
// filter against the record they fetch, which absorbs the brief window
// between releasing the index lock and locking the record's stripe.
type offerIndex struct {
	mu      sync.RWMutex
	byState map[OfferState]map[flexoffer.ID]struct{}
	byOwner map[string]map[flexoffer.ID]struct{}
}

func newOfferIndex() *offerIndex {
	return &offerIndex{
		byState: make(map[OfferState]map[flexoffer.ID]struct{}),
		byOwner: make(map[string]map[flexoffer.ID]struct{}),
	}
}

// update moves id between index buckets after an upsert. Caller holds
// the offer's stripe write lock.
func (ix *offerIndex) update(id flexoffer.ID, old OfferRecord, had bool, now OfferRecord) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if had {
		if old.State != now.State {
			removeFromSet(ix.byState, old.State, id)
		}
		if old.Owner != now.Owner {
			removeFromSet(ix.byOwner, old.Owner, id)
		}
	}
	addToSet(ix.byState, now.State, id)
	addToSet(ix.byOwner, now.Owner, id)
}

// idsByState copies the ids currently recorded in state.
func (ix *offerIndex) idsByState(state OfferState) []flexoffer.ID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return copySet(ix.byState[state])
}

// idsByOwner copies the ids currently recorded for owner.
func (ix *offerIndex) idsByOwner(owner string) []flexoffer.ID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return copySet(ix.byOwner[owner])
}

// idsByStateAndOwner intersects the two indexes, iterating the smaller
// set.
func (ix *offerIndex) idsByStateAndOwner(state OfferState, owner string) []flexoffer.ID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	a, b := ix.byState[state], ix.byOwner[owner]
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make([]flexoffer.ID, 0, len(a))
	for id := range a {
		if _, ok := b[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// countByState reads the per-state cardinalities straight off the
// index: O(states), not O(offers).
func (ix *offerIndex) countByState() map[OfferState]int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[OfferState]int, len(ix.byState))
	for state, ids := range ix.byState {
		if len(ids) > 0 {
			out[state] = len(ids)
		}
	}
	return out
}

func addToSet[K comparable](sets map[K]map[flexoffer.ID]struct{}, k K, id flexoffer.ID) {
	set, ok := sets[k]
	if !ok {
		set = make(map[flexoffer.ID]struct{})
		sets[k] = set
	}
	set[id] = struct{}{}
}

func removeFromSet[K comparable](sets map[K]map[flexoffer.ID]struct{}, k K, id flexoffer.ID) {
	if set, ok := sets[k]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(sets, k)
		}
	}
}

func copySet(set map[flexoffer.ID]struct{}) []flexoffer.ID {
	out := make([]flexoffer.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// --- measurement series storage ----------------------------------------

// seriesKey is the dimension pair a measurement series hangs off.
type seriesKey struct {
	Actor      string
	EnergyType string
}

// slotSeries holds one (actor, energy type) measurement series as two
// parallel slices kept sorted by slot — the clustered layout behind
// Measurements, SumEnergyBySlot and SeriesBySlot. A slot-range query is
// a binary search plus a contiguous copy: cost scales with the result,
// not with the fact table.
//
// Meter streams arrive in slot order, so the insert fast path is an
// append; backdated corrections pay one memmove.
type slotSeries struct {
	key seriesKey
	// id is the series' creation sequence number. It is the series'
	// position in the global batch lock order (lockMeasurements, id):
	// unique and stable, so concurrent multi-series writers (batches,
	// prune) acquire series locks in one total order.
	id uint64

	mu    sync.RWMutex
	slots []flexoffer.Time // sorted ascending, unique
	kwh   []float64        // kwh[i] is the value at slots[i]
}

// insertLocked upserts one value. Caller holds mu.
func (ss *slotSeries) insertLocked(slot flexoffer.Time, kwh float64) {
	n := len(ss.slots)
	if n == 0 || slot > ss.slots[n-1] { // in-order meter stream
		ss.slots = append(ss.slots, slot)
		ss.kwh = append(ss.kwh, kwh)
		return
	}
	i := sort.Search(n, func(j int) bool { return ss.slots[j] >= slot })
	if i < n && ss.slots[i] == slot { // upsert (meter correction)
		ss.kwh[i] = kwh
		return
	}
	ss.slots = append(ss.slots, 0)
	ss.kwh = append(ss.kwh, 0)
	copy(ss.slots[i+1:], ss.slots[i:])
	copy(ss.kwh[i+1:], ss.kwh[i:])
	ss.slots[i] = slot
	ss.kwh[i] = kwh
}

// rangeLocked returns the index bounds [lo, hi) of the half-open slot
// window [from, to); to == 0 means unbounded. Caller holds mu (read).
func (ss *slotSeries) rangeLocked(from, to flexoffer.Time) (int, int) {
	lo := sort.Search(len(ss.slots), func(j int) bool { return ss.slots[j] >= from })
	hi := len(ss.slots)
	if to != 0 {
		hi = sort.Search(len(ss.slots), func(j int) bool { return ss.slots[j] >= to })
	}
	return lo, hi
}

// pruneLocked drops every slot < before and returns how many fell.
// Caller holds mu. The survivors move to fresh slices so the pruned
// prefix is actually released.
func (ss *slotSeries) pruneLocked(before flexoffer.Time) int {
	i := sort.Search(len(ss.slots), func(j int) bool { return ss.slots[j] >= before })
	if i == 0 {
		return 0
	}
	ss.slots = append(make([]flexoffer.Time, 0, len(ss.slots)-i), ss.slots[i:]...)
	ss.kwh = append(make([]float64, 0, len(ss.kwh)-i), ss.kwh[i:]...)
	return i
}

// measurementIndex is the measurement fact table itself: series
// partitioned by (actor, energy type) with one lock per series — the
// finest useful stripe for a fact whose writers are per-meter streams.
// The outer map only grows (a series with all slots pruned stays as an
// empty shell), guarded by mu; each series guards its own slices.
type measurementIndex struct {
	mu     sync.RWMutex
	series map[seriesKey]*slotSeries
	nextID uint64
}

func newMeasurementIndex() *measurementIndex {
	return &measurementIndex{series: make(map[seriesKey]*slotSeries)}
}

// lookup returns the series for k if it exists.
func (ix *measurementIndex) lookup(k seriesKey) (*slotSeries, bool) {
	ix.mu.RLock()
	ss, ok := ix.series[k]
	ix.mu.RUnlock()
	return ss, ok
}

// ensure returns the series for k, creating it if needed.
func (ix *measurementIndex) ensure(k seriesKey) *slotSeries {
	if ss, ok := ix.lookup(k); ok {
		return ss
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ss, ok := ix.series[k]; ok {
		return ss
	}
	ss := &slotSeries{key: k, id: ix.nextID}
	ix.nextID++
	ix.series[k] = ss
	return ss
}

// match collects the series whose dimensions satisfy the (possibly
// empty) actor / energy type equality filters. O(series), never
// O(measurements): the series population is actors × energy types.
func (ix *measurementIndex) match(actor, energyType string) []*slotSeries {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if actor != "" && energyType != "" {
		if ss, ok := ix.series[seriesKey{actor, energyType}]; ok {
			return []*slotSeries{ss}
		}
		return nil
	}
	var out []*slotSeries
	for k, ss := range ix.series {
		if actor != "" && k.Actor != actor {
			continue
		}
		if energyType != "" && k.EnergyType != energyType {
			continue
		}
		out = append(out, ss)
	}
	return out
}

// all returns every series, sorted by creation id — the canonical
// acquisition order for operations that lock many series (prune).
func (ix *measurementIndex) all() []*slotSeries {
	ix.mu.RLock()
	out := make([]*slotSeries, 0, len(ix.series))
	for _, ss := range ix.series {
		out = append(out, ss)
	}
	ix.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// count sums the series lengths under brief read locks.
func (ix *measurementIndex) count() int {
	n := 0
	for _, ss := range ix.all() {
		ss.mu.RLock()
		n += len(ss.slots)
		ss.mu.RUnlock()
	}
	return n
}
