package store

import (
	"sort"

	"mirabel/internal/flexoffer"
)

// MeasurementFilter selects measurement facts. Zero fields match
// everything; FromSlot/ToSlot bound the half-open slot range [From, To).
type MeasurementFilter struct {
	Actor      string
	EnergyType string
	FromSlot   flexoffer.Time
	ToSlot     flexoffer.Time // 0 = unbounded
}

func (f MeasurementFilter) matches(m *Measurement) bool {
	if f.Actor != "" && m.Actor != f.Actor {
		return false
	}
	if f.EnergyType != "" && m.EnergyType != f.EnergyType {
		return false
	}
	if m.Slot < f.FromSlot {
		return false
	}
	if f.ToSlot != 0 && m.Slot >= f.ToSlot {
		return false
	}
	return true
}

// Measurements returns matching facts ordered by slot (then actor).
func (s *Store) Measurements(f MeasurementFilter) []Measurement {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Measurement
	for k := range s.measurements {
		m := s.measurements[k]
		if f.matches(&m) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		return out[i].Actor < out[j].Actor
	})
	return out
}

// SumEnergyBySlot aggregates matching measurements into a per-slot sum —
// the star-schema roll-up a BRP runs to build its balance-group load
// series. The result maps slot → Σ kWh.
func (s *Store) SumEnergyBySlot(f MeasurementFilter) map[flexoffer.Time]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[flexoffer.Time]float64)
	for k := range s.measurements {
		m := s.measurements[k]
		if f.matches(&m) {
			out[m.Slot] += m.KWh
		}
	}
	return out
}

// SeriesBySlot materializes a contiguous per-slot vector over
// [from, to) from matching measurements (missing slots are zero) — the
// form the forecasting component consumes.
func (s *Store) SeriesBySlot(f MeasurementFilter, from, to flexoffer.Time) []float64 {
	f.FromSlot, f.ToSlot = from, to
	sums := s.SumEnergyBySlot(f)
	out := make([]float64, to-from)
	for slot, v := range sums {
		out[slot-from] = v
	}
	return out
}

// OfferFilter selects flex-offer records.
type OfferFilter struct {
	Owner string
	State OfferState
}

// Offers returns matching flex-offer records in ID order.
func (s *Store) Offers(f OfferFilter) []OfferRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []OfferRecord
	for _, r := range s.offers {
		if f.Owner != "" && r.Owner != f.Owner {
			continue
		}
		if f.State != "" && r.State != f.State {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offer.ID < out[j].Offer.ID })
	return out
}

// CountOffersByState groups the offer facts by lifecycle state.
func (s *Store) CountOffersByState() map[OfferState]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[OfferState]int)
	for _, r := range s.offers {
		out[r.State]++
	}
	return out
}

// Forecasts returns the forecast facts of one actor/energy type in
// [from, to), ordered by slot then horizon.
func (s *Store) Forecasts(actor, energyType string, from, to flexoffer.Time) []ForecastRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ForecastRecord
	for k, r := range s.forecasts {
		if k.Actor != actor || k.EnergyType != energyType {
			continue
		}
		if k.Slot < from || (to != 0 && k.Slot >= to) {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		return out[i].Horizon < out[j].Horizon
	})
	return out
}

// Price returns the stored price of a market area and hour.
func (s *Store) Price(area string, hour int64) (PriceRecord, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.prices[priceKey{area, hour}]
	return p, ok
}

// Stats summarizes table cardinalities (the UI component's overview).
type Stats struct {
	Actors, EnergyTypes, MarketAreas      int
	Measurements, Offers, Forecasts       int
	Prices, Contracts, ModelParamsEntries int
}

// Stats returns current table sizes.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Actors:             len(s.actors),
		EnergyTypes:        len(s.energyTypes),
		MarketAreas:        len(s.marketAreas),
		Measurements:       len(s.measurements),
		Offers:             len(s.offers),
		Forecasts:          len(s.forecasts),
		Prices:             len(s.prices),
		Contracts:          len(s.contracts),
		ModelParamsEntries: len(s.modelParams),
	}
}
