package store

import (
	"sort"

	"mirabel/internal/flexoffer"
)

// MeasurementFilter selects measurement facts. Zero fields match
// everything; FromSlot/ToSlot bound the half-open slot range [From, To).
type MeasurementFilter struct {
	Actor      string
	EnergyType string
	FromSlot   flexoffer.Time
	ToSlot     flexoffer.Time // 0 = unbounded
}

// Measurements returns matching facts ordered by slot (then actor).
// The dimension filters select whole series off the measurement index
// and the slot window is a binary search per series, so the cost scales
// with the result set, not the fact table.
func (s *Store) Measurements(f MeasurementFilter) []Measurement {
	series := s.meas.match(f.Actor, f.EnergyType)
	var out []Measurement
	for _, ss := range series {
		ss.mu.RLock()
		lo, hi := ss.rangeLocked(f.FromSlot, f.ToSlot)
		for i := lo; i < hi; i++ {
			out = append(out, Measurement{
				Actor: ss.key.Actor, EnergyType: ss.key.EnergyType, Slot: ss.slots[i], KWh: ss.kwh[i],
			})
		}
		ss.mu.RUnlock()
	}
	if len(series) > 1 {
		sort.Slice(out, func(i, j int) bool {
			if out[i].Slot != out[j].Slot {
				return out[i].Slot < out[j].Slot
			}
			return out[i].Actor < out[j].Actor
		})
	}
	return out
}

// SumEnergyBySlot aggregates matching measurements into a per-slot sum —
// the star-schema roll-up a BRP runs to build its balance-group load
// series. The result maps slot → Σ kWh.
func (s *Store) SumEnergyBySlot(f MeasurementFilter) map[flexoffer.Time]float64 {
	out := make(map[flexoffer.Time]float64)
	for _, ss := range s.meas.match(f.Actor, f.EnergyType) {
		ss.mu.RLock()
		lo, hi := ss.rangeLocked(f.FromSlot, f.ToSlot)
		for i := lo; i < hi; i++ {
			out[ss.slots[i]] += ss.kwh[i]
		}
		ss.mu.RUnlock()
	}
	return out
}

// SeriesBySlot materializes a contiguous per-slot vector over
// [from, to) from matching measurements (missing slots are zero) — the
// form the forecasting component consumes. The slot-sorted series
// layout makes this a ranged merge: no map, no full-table scan.
func (s *Store) SeriesBySlot(f MeasurementFilter, from, to flexoffer.Time) []float64 {
	if to <= from {
		return nil
	}
	out := make([]float64, to-from)
	for _, ss := range s.meas.match(f.Actor, f.EnergyType) {
		ss.mu.RLock()
		lo, hi := ss.rangeLocked(from, to)
		for i := lo; i < hi; i++ {
			out[ss.slots[i]-from] += ss.kwh[i]
		}
		ss.mu.RUnlock()
	}
	return out
}

// OfferFilter selects flex-offer records.
type OfferFilter struct {
	Owner string
	State OfferState
}

// Offers returns matching flex-offer records in ID order. Filtered
// queries resolve through the by-state / by-owner secondary indexes and
// fetch only the matching records; the unfiltered form is a full-table
// listing by definition.
func (s *Store) Offers(f OfferFilter) []OfferRecord {
	var out []OfferRecord
	switch {
	case f.State != "" && f.Owner != "":
		out = s.fetchOffers(s.offerIdx.idsByStateAndOwner(f.State, f.Owner), f)
	case f.State != "":
		out = s.fetchOffers(s.offerIdx.idsByState(f.State), f)
	case f.Owner != "":
		out = s.fetchOffers(s.offerIdx.idsByOwner(f.Owner), f)
	default:
		s.offers.scan(func(_ flexoffer.ID, r OfferRecord) {
			out = append(out, r)
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offer.ID < out[j].Offer.ID })
	return out
}

// fetchOffers resolves index hits to records, re-checking the filter:
// a record may have transitioned between the index read and the fetch.
func (s *Store) fetchOffers(ids []flexoffer.ID, f OfferFilter) []OfferRecord {
	out := make([]OfferRecord, 0, len(ids))
	for _, id := range ids {
		r, ok := s.offers.get(id)
		if !ok {
			continue
		}
		if f.Owner != "" && r.Owner != f.Owner {
			continue
		}
		if f.State != "" && r.State != f.State {
			continue
		}
		out = append(out, r)
	}
	return out
}

// CountOffersByState groups the offer facts by lifecycle state —
// straight off the secondary index, O(states).
func (s *Store) CountOffersByState() map[OfferState]int {
	return s.offerIdx.countByState()
}

// Forecasts returns the forecast facts of one actor/energy type in
// [from, to), ordered by slot then horizon.
func (s *Store) Forecasts(actor, energyType string, from, to flexoffer.Time) []ForecastRecord {
	var out []ForecastRecord
	s.forecasts.scan(func(k forecastKey, r ForecastRecord) {
		if k.Actor != actor || k.EnergyType != energyType {
			return
		}
		if k.Slot < from || (to != 0 && k.Slot >= to) {
			return
		}
		out = append(out, r)
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		return out[i].Horizon < out[j].Horizon
	})
	return out
}

// Price returns the stored price of a market area and hour.
func (s *Store) Price(area string, hour int64) (PriceRecord, bool) {
	return s.prices.get(priceKey{area, hour})
}

// Stats summarizes table cardinalities (the UI component's overview).
type Stats struct {
	Actors, EnergyTypes, MarketAreas      int
	Measurements, Offers, Forecasts       int
	Prices, Contracts, ModelParamsEntries int
}

// Stats returns current table sizes.
func (s *Store) Stats() Stats {
	return Stats{
		Actors:             s.actors.length(),
		EnergyTypes:        s.energyTypes.length(),
		MarketAreas:        s.marketAreas.length(),
		Measurements:       s.meas.count(),
		Offers:             s.offers.length(),
		Forecasts:          s.forecasts.length(),
		Prices:             s.prices.length(),
		Contracts:          s.contracts.length(),
		ModelParamsEntries: s.modelParams.length(),
	}
}

func sortActorsByID(actors []Actor) {
	sort.Slice(actors, func(i, j int) bool { return actors[i].ID < actors[j].ID })
}
