// Package store implements the MIRABEL Data Management component (paper
// §3): the node-local persistent store for "all historical and current
// time demand/supply, forecasting model parameters, flex-offers, price
// and contracts". Data lives in a multidimensional schema — dimension
// tables (actors, energy types, market areas) and fact tables
// (measurements, flex-offers, forecasts, prices, contracts) — "a
// combination of star and snowflake schemas" flexible enough that actors
// at all levels use subparts of it.
//
// Durability follows the classic embedded-engine recipe: every mutation
// is appended to a write-ahead log before being applied in memory;
// Snapshot() compacts the log into a point-in-time image; Open() recovers
// by loading the snapshot and replaying the log tail. Records are
// checksummed JSON lines, so a torn final write is detected and dropped.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// walRecord is one logged mutation.
type walRecord struct {
	Table string          `json:"table"`
	Op    string          `json:"op"` // "put" or "delete"
	Data  json.RawMessage `json:"data"`
	CRC   uint32          `json:"crc"` // over Table|Op|Data
}

func (r *walRecord) checksum() uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(r.Table))
	h.Write([]byte{'|'})
	h.Write([]byte(r.Op))
	h.Write([]byte{'|'})
	h.Write(r.Data)
	return h.Sum32()
}

// wal is an append-only JSON-lines log.
type wal struct {
	f *os.File
	w *bufio.Writer
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriter(f)}, nil
}

// append logs one mutation. The record hits the OS on every append
// (buffered writer flushed); full fsync is deferred to Sync/Snapshot —
// the usual throughput/durability trade-off for measurement streams.
func (w *wal) append(table, op string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("store: marshal wal record: %w", err)
	}
	rec := walRecord{Table: table, Op: op, Data: raw}
	rec.CRC = rec.checksum()
	line, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("store: marshal wal line: %w", err)
	}
	if _, err := w.w.Write(line); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	return w.w.Flush()
}

// sync flushes and fsyncs the log.
func (w *wal) sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// replayWAL streams the log's valid records to apply; it stops silently
// at the first corrupt or torn line (everything after a torn write is
// unreachable anyway).
func replayWAL(path string, apply func(table, op string, data json.RawMessage) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: open wal for replay: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var rec walRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil // torn tail
		}
		if rec.checksum() != rec.CRC {
			return nil // corrupt tail
		}
		if err := apply(rec.Table, rec.Op, rec.Data); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return fmt.Errorf("store: scan wal: %w", err)
	}
	return nil
}

// snapshotPath and walPath name the store's on-disk artifacts.
func snapshotPath(dir string) string { return filepath.Join(dir, "snapshot.json") }
func walPath(dir string) string      { return filepath.Join(dir, "wal.log") }
