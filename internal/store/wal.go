// Package store implements the MIRABEL Data Management component (paper
// §3): the node-local persistent store for "all historical and current
// time demand/supply, forecasting model parameters, flex-offers, price
// and contracts". Data lives in a multidimensional schema — dimension
// tables (actors, energy types, market areas) and fact tables
// (measurements, flex-offers, forecasts, prices, contracts) — "a
// combination of star and snowflake schemas" flexible enough that actors
// at all levels use subparts of it.
//
// Durability follows the classic embedded-engine recipe: every mutation
// is appended to a write-ahead log before being applied in memory;
// Snapshot() compacts the log into a point-in-time image; Open() recovers
// by loading the snapshot and replaying the log tail. Records are
// checksummed JSON lines, so a torn final write is detected and dropped.
//
// The log is written by a group committer: concurrent writers coalesce
// into one buffered append (and, under SyncAlways, one fsync) per
// physical write — the first writer to arrive leads the group and
// flushes everyone who queued behind it. When the record should be made
// durable is the SyncPolicy (see Options): flush-to-OS per commit with
// explicit fsyncs (the default, the seed engine's behaviour), fsync
// every group, or a background fsync interval.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// WAL operations. Puts are upserts (idempotent under replay); prune is
// the measurement-retention sweep, logged once per call.
const (
	opPut   = "put"
	opPrune = "prune"
)

// walRecord is one logged mutation.
type walRecord struct {
	Table string          `json:"table"`
	Op    string          `json:"op"` // "put" or "prune"
	Data  json.RawMessage `json:"data"`
	CRC   uint32          `json:"crc"` // over Table|Op|Data
}

func (r *walRecord) checksum() uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(r.Table))
	h.Write([]byte{'|'})
	h.Write([]byte(r.Op))
	h.Write([]byte{'|'})
	h.Write(r.Data)
	return h.Sum32()
}

// encodeRecord marshals one mutation into its checksummed log line
// (newline included). Called outside any table lock where possible.
func encodeRecord(table, op string, data any) ([]byte, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return nil, fmt.Errorf("store: marshal wal record: %w", err)
	}
	rec := walRecord{Table: table, Op: op, Data: raw}
	rec.CRC = rec.checksum()
	line, err := json.Marshal(&rec)
	if err != nil {
		return nil, fmt.Errorf("store: marshal wal line: %w", err)
	}
	return append(line, '\n'), nil
}

// LogStats counts the committer's work: Records is the number of logged
// mutations, Groups the number of physical write+flush rounds they
// coalesced into, Syncs the number of fsyncs. Records/Groups is the
// group-commit amortization factor.
type LogStats struct {
	Records uint64
	Groups  uint64
	Syncs   uint64
}

// committer owns the WAL file and turns concurrent appends into group
// commits. commit() is leader/follower: the first writer through takes
// the write path and flushes every record queued while it held the
// file; later writers just park on their done channel. Callers hold
// their record's table-stripe lock while waiting, which serializes
// same-key log order with same-key memory order; cross-stripe writers
// are exactly the ones that coalesce.
type committer struct {
	policy   SyncPolicy
	records  atomic.Uint64
	groups   atomic.Uint64
	syncs    atomic.Uint64
	stopTick chan struct{} // closes the interval syncer, if any
	tickDone chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond // signaled when writing goes false
	f       *os.File
	w       *bufio.Writer
	writing bool
	closed  bool
	pending [][]byte
	waiters []chan error
}

func newCommitter(path string, policy SyncPolicy) (*committer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	c := &committer{policy: policy, f: f, w: bufio.NewWriter(f)}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// commit appends recs and returns once they are flushed (and fsynced,
// under SyncAlways) — possibly as part of a larger group led by another
// writer.
func (c *committer) commit(recs [][]byte) error {
	done := make(chan error, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("store: wal is closed")
	}
	c.pending = append(c.pending, recs...)
	c.waiters = append(c.waiters, done)
	c.records.Add(uint64(len(recs)))
	if c.writing {
		// A leader is at the file; it will pick this batch up.
		c.mu.Unlock()
		return <-done
	}
	c.writing = true
	for len(c.pending) > 0 {
		batch, waiters := c.pending, c.waiters
		c.pending, c.waiters = nil, nil
		c.mu.Unlock()
		err := c.writeGroup(batch)
		for _, w := range waiters {
			w <- err
		}
		c.mu.Lock()
	}
	c.writing = false
	c.cond.Broadcast()
	c.mu.Unlock()
	return <-done
}

// writeGroup writes one coalesced batch. Called with writing == true
// (file access is exclusive even though mu is released).
func (c *committer) writeGroup(batch [][]byte) error {
	for _, line := range batch {
		if _, err := c.w.Write(line); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	c.groups.Add(1)
	if c.policy == SyncAlways {
		c.syncs.Add(1)
		return c.f.Sync()
	}
	return nil
}

// quiesce waits until no group write is in flight. Caller holds mu and
// keeps it; the file is exclusively theirs until they release it.
func (c *committer) quiesceLocked() {
	for c.writing {
		c.cond.Wait()
	}
}

// sync flushes and fsyncs the log.
func (c *committer) sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quiesceLocked()
	if c.closed {
		return nil
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	c.syncs.Add(1)
	return c.f.Sync()
}

// rotate seals the current log as cur's pre-snapshot tail and starts a
// fresh one. The sealed records live at oldPath until the caller has
// written a snapshot that covers them and removes the file. If a sealed
// tail from an interrupted earlier snapshot still exists, the current
// log is appended to it instead of clobbering it — replay order
// (oldPath then curPath) is unchanged either way.
func (c *committer) rotate(curPath, oldPath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quiesceLocked()
	if c.closed {
		return fmt.Errorf("store: wal is closed")
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	if err := c.f.Close(); err != nil {
		return err
	}
	if _, err := os.Stat(oldPath); err == nil {
		if err := appendFile(oldPath, curPath); err != nil {
			return err
		}
		if err := os.Remove(curPath); err != nil {
			return err
		}
	} else if err := os.Rename(curPath, oldPath); err != nil {
		return err
	}
	f, err := os.OpenFile(curPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen wal after rotate: %w", err)
	}
	c.f = f
	c.w.Reset(f)
	return nil
}

// appendFile appends src's contents to dst and fsyncs dst.
func appendFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// close flushes, fsyncs and closes the log. Further commits fail.
func (c *committer) close() error {
	if c.stopTick != nil {
		close(c.stopTick)
		<-c.tickDone
		c.stopTick = nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quiesceLocked()
	if c.closed {
		return nil
	}
	c.closed = true
	if err := c.w.Flush(); err != nil {
		c.f.Close()
		return err
	}
	if err := c.f.Sync(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}

func (c *committer) stats() LogStats {
	return LogStats{
		Records: c.records.Load(),
		Groups:  c.groups.Load(),
		Syncs:   c.syncs.Load(),
	}
}

// errStopReplay aborts a ReplayLines walk at the first corrupt record
// without surfacing an error: everything past it is an unreadable tail.
var errStopReplay = errors.New("store: stop replay")

// replayWAL streams the log's valid records to apply; it stops silently
// at the first corrupt or torn line (everything after a torn write is
// unreachable anyway) and returns the byte length of the intact prefix.
// A missing file is an empty log.
func replayWAL(path string, apply func(table, op string, data json.RawMessage) error) (int64, error) {
	off, err := ReplayLines(path, func(line []byte) error {
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return errStopReplay // corrupt tail
		}
		if rec.checksum() != rec.CRC {
			return errStopReplay
		}
		return apply(rec.Table, rec.Op, rec.Data)
	})
	if errors.Is(err, errStopReplay) {
		return off, nil
	}
	return off, err
}

// On-disk artifacts: the snapshot image, the live WAL, and the sealed
// pre-snapshot WAL that exists only between a snapshot's rotation and
// its final rename+cleanup (recovery replays it before the live log;
// replaying it after a completed snapshot is an idempotent no-op).
func snapshotPath(dir string) string { return filepath.Join(dir, "snapshot.json") }
func walPath(dir string) string      { return filepath.Join(dir, "wal.log") }
func walOldPath(dir string) string   { return filepath.Join(dir, "wal.old") }
