package negotiate

import (
	"math"
	"testing"
	"testing/quick"

	"mirabel/internal/flexoffer"
)

func offer(es, tf, assignLead flexoffer.Time, slices int, emin, emax float64) *flexoffer.FlexOffer {
	p := make([]flexoffer.Slice, slices)
	for i := range p {
		p[i] = flexoffer.Slice{EnergyMin: emin, EnergyMax: emax}
	}
	return &flexoffer.FlexOffer{
		ID: 1, EarliestStart: es, LatestStart: es + tf, AssignBefore: es - assignLead, Profile: p,
	}
}

func TestSigmoidShape(t *testing.T) {
	s := Sigmoid{Mid: 10, Steepness: 0.5}
	if math.Abs(s.Apply(10)-0.5) > 1e-12 {
		t.Errorf("Apply(mid) = %g", s.Apply(10))
	}
	if s.Apply(100) < 0.99 || s.Apply(-100) > 0.01 {
		t.Error("sigmoid does not saturate")
	}
	// Monotone.
	prev := -1.0
	for x := -20.0; x <= 40; x++ {
		v := s.Apply(x)
		if v < prev {
			t.Fatalf("sigmoid decreases at %g", x)
		}
		prev = v
	}
}

func TestSigmoidDefaultSteepness(t *testing.T) {
	s := Sigmoid{Mid: 0}
	if math.Abs(s.Apply(0)-0.5) > 1e-12 {
		t.Error("zero steepness should default to 1")
	}
}

func TestPotentialsZeroFlexibilities(t *testing.T) {
	v := NewValuator()
	// Zero time flexibility, zero energy flexibility (min == max), no
	// assignment lead.
	f := offer(100, 0, 0, 4, 5, 5)
	p := v.Potentials(f, 100)
	if p.Scheduling != 0 || p.Energy != 0 || p.Assignment != 0 {
		t.Errorf("potentials of inflexible offer = %+v, want zeros", p)
	}
	if val := v.Value(f, 100); val != 0 {
		t.Errorf("value = %g, want 0", val)
	}
}

func TestPotentialsMonotoneInFlexibility(t *testing.T) {
	v := NewValuator()
	now := flexoffer.Time(0)
	small := offer(100, 4, 50, 4, 0, 1)
	big := offer(100, 32, 50, 4, 0, 10)
	if v.Value(small, now) >= v.Value(big, now) {
		t.Errorf("more flexible offer not valued higher: %g vs %g",
			v.Value(small, now), v.Value(big, now))
	}
}

func TestAssignmentMarginalizedBeyondGate(t *testing.T) {
	v := NewValuator()
	// Two offers identical except assignment lead: 10h vs 100h, both far
	// beyond the 8h day-ahead gate → same value.
	a := offer(1000, 8, 40*flexoffer.SlotsPerHour, 4, 0, 2)
	b := offer(1000, 8, 100*flexoffer.SlotsPerHour, 4, 0, 2)
	va, vb := v.Value(a, 0), v.Value(b, 0)
	if math.Abs(va-vb) > 1e-12 {
		t.Errorf("assignment flexibility beyond the gate not marginalized: %g vs %g", va, vb)
	}
	// But below the gate, more remaining lead = more value: the same
	// offer evaluated one hour before its deadline is worth less than
	// evaluated long before it.
	lateNow := a.AssignBefore - 1*flexoffer.SlotsPerHour
	if v.Value(a, lateNow) >= va {
		t.Error("short assignment lead valued as high as a long one")
	}
}

func TestEnergyCappedAtGridCapacity(t *testing.T) {
	v := NewValuator()
	v.GridCapacityKWh = 10
	a := offer(100, 8, 50, 4, 0, 3)  // 12 kWh flexibility → capped to 10
	b := offer(100, 8, 50, 4, 0, 30) // 120 kWh → capped to 10
	if math.Abs(v.Value(a, 0)-v.Value(b, 0)) > 1e-12 {
		t.Error("energy flexibility beyond grid capacity not capped")
	}
}

func TestOfferPriceScalesWithValue(t *testing.T) {
	v := NewValuator()
	inflexible := offer(100, 0, 0, 4, 5, 5)
	flexible := offer(100, 32, 50, 8, 0, 8)
	if v.OfferPrice(inflexible, 0) != 0 {
		t.Error("inflexible offer earns a premium")
	}
	price := v.OfferPrice(flexible, 0)
	if price <= 0 || price > v.MaxPremiumEUR {
		t.Errorf("price = %g outside (0, %g]", price, v.MaxPremiumEUR)
	}
}

func TestDecideRejectsLateOffers(t *testing.T) {
	v := NewValuator()
	f := offer(100, 16, 1, 4, 0, 5) // assignment deadline at 99
	d := v.Decide(f, 98)            // MinProcessing 2 → 98+2 > 99
	if d.Accept {
		t.Error("accepted an offer that cannot be processed in time")
	}
	d = v.Decide(f, 90)
	if !d.Accept {
		t.Errorf("rejected a processable offer: %s", d.Reason)
	}
}

func TestDecideRejectsWorthlessOffers(t *testing.T) {
	v := NewValuator()
	f := offer(100, 0, 50, 4, 5, 5) // no flexibility at all
	d := v.Decide(f, 0)
	if d.Accept {
		t.Error("accepted a worthless offer")
	}
	if d.Reason == "" {
		t.Error("rejection without reason")
	}
}

func TestDecideRejectsInvalidOffers(t *testing.T) {
	v := NewValuator()
	f := offer(100, 8, 10, 4, 0, 5)
	f.LatestStart = 50 // invalid
	if d := v.Decide(f, 0); d.Accept {
		t.Error("accepted an invalid offer")
	}
}

func TestDecideAcceptsAndPrices(t *testing.T) {
	v := NewValuator()
	f := offer(200, 24, 40, 6, 0, 6)
	d := v.Decide(f, 0)
	if !d.Accept {
		t.Fatalf("rejected a good offer: %s", d.Reason)
	}
	if d.Price <= 0 || d.Value <= 0 {
		t.Errorf("decision = %+v", d)
	}
}

func TestShareRealizedProfit(t *testing.T) {
	got, err := ShareRealizedProfit(100, 60, 0.25)
	if err != nil || got != 10 {
		t.Errorf("share = %g, %v; want 10", got, err)
	}
	// No profit → nothing shared.
	got, err = ShareRealizedProfit(50, 60, 0.25)
	if err != nil || got != 0 {
		t.Errorf("negative profit shared: %g", got)
	}
	if _, err := ShareRealizedProfit(1, 0, 1.5); err == nil {
		t.Error("share fraction > 1 accepted")
	}
}

// Property: the value is always within [0, weight sum] and the price
// within [0, MaxPremium].
func TestPropertyValueBounded(t *testing.T) {
	v := NewValuator()
	wsum := v.Weights.Assignment + v.Weights.Scheduling + v.Weights.Energy
	f := func(tf uint8, lead uint8, emax float64) bool {
		if math.IsNaN(emax) || math.IsInf(emax, 0) {
			return true
		}
		emax = math.Abs(math.Mod(emax, 100))
		off := offer(1000, flexoffer.Time(tf), flexoffer.Time(lead), 4, 0, emax)
		val := v.Value(off, 0)
		price := v.OfferPrice(off, 0)
		return val >= 0 && val <= wsum+1e-12 && price >= 0 && price <= v.MaxPremiumEUR+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
