package negotiate

import (
	"math"
	"strings"
	"testing"

	"mirabel/internal/flexoffer"
)

// strongOffer is a highly flexible offer the default valuator prices
// near its maximum premium.
func strongOffer() *flexoffer.FlexOffer {
	return offer(100, 8*flexoffer.SlotsPerHour, 10*flexoffer.SlotsPerHour, 8, 0, 10)
}

func TestSessionDefaultsAndValidation(t *testing.T) {
	if _, err := NewSession(SessionConfig{MaxRounds: -1}); err == nil {
		t.Error("negative max rounds accepted")
	}
	if _, err := NewSession(SessionConfig{ReservationEUR: -1}); err == nil {
		t.Error("negative reservation accepted")
	}
	if _, err := NewSession(SessionConfig{Concession: 1.5}); err == nil {
		t.Error("concession ≥ 1 accepted")
	}
	if _, err := NewSession(SessionConfig{AskMarkup: -0.5}); err == nil {
		t.Error("negative markup accepted")
	}
	s, err := NewSession(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Valuator == nil || s.cfg.MaxRounds != 8 || s.cfg.Concession != 0.35 {
		t.Errorf("defaults = %+v", s.cfg)
	}
}

func TestSessionConvergesToAgreement(t *testing.T) {
	f := strongOffer()
	base := NewValuator().OfferPrice(f, 0)
	s, err := NewSession(SessionConfig{ReservationEUR: base / 2})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(f, 0)
	if res.Outcome != Accepted {
		t.Fatalf("outcome = %s (%s), rounds = %+v", res.Outcome, res.Reason, res.Rounds)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("accepted without any rounds")
	}
	last := res.Rounds[len(res.Rounds)-1]
	// The premium is the crossing midpoint: between the reservation
	// price and the BRP's ceiling.
	if res.PremiumEUR < base/2 || res.PremiumEUR > last.CapEUR {
		t.Errorf("premium %g outside [reservation %g, cap %g]", res.PremiumEUR, base/2, last.CapEUR)
	}
	// Concession is monotone: bids rise, asks fall.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].BidEUR < res.Rounds[i-1].BidEUR || res.Rounds[i].AskEUR > res.Rounds[i-1].AskEUR {
			t.Fatalf("non-monotone concession: %+v", res.Rounds)
		}
	}
}

func TestSessionRejectsUnvaluableOffer(t *testing.T) {
	s, _ := NewSession(SessionConfig{})
	// No flexibility at all: the valuator rejects before any rounds.
	f := offer(100, 0, 0, 4, 5, 5)
	res := s.Run(f, 100)
	if res.Outcome != Rejected || len(res.Rounds) != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Reason == "" {
		t.Error("rejection without a reason")
	}
}

func TestSessionExpiresWhenGapTooWide(t *testing.T) {
	f := strongOffer()
	base := NewValuator().OfferPrice(f, 0)
	// Reservation just under the ceiling plus a huge markup and timid
	// concessions: the prices cannot cross in two rounds.
	s, err := NewSession(SessionConfig{
		ReservationEUR: base * 0.95,
		AskMarkup:      4,
		Concession:     0.1,
		MaxRounds:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(f, 0)
	if res.Outcome != Expired || len(res.Rounds) != 2 {
		t.Fatalf("result = %+v", res)
	}
}

// moderateOffer values around half the maximum premium, leaving the
// re-valued ceiling room to move in both directions.
func moderateOffer() *flexoffer.FlexOffer {
	return offer(100, 16, 16, 4, 0, 5)
}

func TestSessionRevaluesWithRisingQuotes(t *testing.T) {
	f := moderateOffer()
	base := NewValuator().OfferPrice(f, 0)
	// Reservation above the static ceiling: without re-valuation the
	// BRP walks away after the infeasible streak...
	static, _ := NewSession(SessionConfig{ReservationEUR: base * 1.2})
	if res := static.Run(f, 0); res.Outcome != Rejected || !strings.Contains(res.Reason, "below reservation") {
		t.Fatalf("static session = %+v", res)
	}
	// ...but with quotes rising 15% per round, the re-valued ceiling
	// climbs past the reservation before the streak runs out and the
	// session closes.
	rising, _ := NewSession(SessionConfig{
		ReservationEUR: base * 1.2,
		RefMid:         0.045,
		Quote:          func(round int) float64 { return 0.045 * (1 + 0.15*float64(round)) },
	})
	res := rising.Run(f, 0)
	if res.Outcome != Accepted {
		t.Fatalf("rising session = %s (%s)", res.Outcome, res.Reason)
	}
	if res.PremiumEUR <= base {
		t.Errorf("premium %g did not rise above the static price %g", res.PremiumEUR, base)
	}
}

func TestSessionRejectsOnCollapsingQuotes(t *testing.T) {
	f := strongOffer()
	base := NewValuator().OfferPrice(f, 0)
	s, _ := NewSession(SessionConfig{
		ReservationEUR: base / 2,
		RefMid:         0.045,
		// The market collapses instantly to 10% of the reference: the
		// re-valued ceiling lands below even a modest reservation and
		// stays there, exhausting the infeasible streak.
		Quote:        func(round int) float64 { return 0.0045 },
		PressureGain: 1,
	})
	res := s.Run(f, 0)
	if res.Outcome != Rejected || !strings.Contains(res.Reason, "below reservation") {
		t.Fatalf("result = %+v", res)
	}
}

func TestSessionCapClampedToMaxPremium(t *testing.T) {
	f := strongOffer()
	v := NewValuator()
	s, _ := NewSession(SessionConfig{
		Valuator:       v,
		ReservationEUR: v.MaxPremiumEUR * 0.9,
		RefMid:         0.045,
		// Quotes quadruple: the ceiling must still clamp at
		// MaxPremiumEUR.
		Quote: func(round int) float64 { return 0.18 },
	})
	res := s.Run(f, 0)
	if res.Outcome != Accepted {
		t.Fatalf("result = %s (%s)", res.Outcome, res.Reason)
	}
	for _, r := range res.Rounds {
		if r.CapEUR > v.MaxPremiumEUR+1e-12 {
			t.Errorf("cap %g exceeds max premium %g", r.CapEUR, v.MaxPremiumEUR)
		}
	}
	if res.PremiumEUR > v.MaxPremiumEUR {
		t.Errorf("premium %g exceeds max premium", res.PremiumEUR)
	}
}

func TestSessionZeroReservationAcceptsFast(t *testing.T) {
	s, _ := NewSession(SessionConfig{})
	res := s.Run(strongOffer(), 0)
	if res.Outcome != Accepted || len(res.Rounds) != 1 {
		t.Errorf("result = %+v", res)
	}
	if res.PremiumEUR <= 0 || math.IsNaN(res.PremiumEUR) {
		t.Errorf("premium = %g", res.PremiumEUR)
	}
}
