// Package negotiate implements the MIRABEL negotiation component (paper
// §7): it finds an agreement between a prosumer and its BRP about the
// price for flex-offers. Two price-setting schemes are provided —
// monetizing flexibility before execution (sigmoid-normalized flexibility
// potentials combined by a weighted sum) and sharing the realized profit
// after execution — plus the acceptance decision that lets the BRP reject
// offers it cannot process in time or profitably.
package negotiate

import (
	"fmt"
	"math"

	"mirabel/internal/flexoffer"
)

// Sigmoid maps a raw flexibility parameter to a potential in (0, 1)
// (paper: "applying a function, e.g. the sigmoid function, that maps the
// flexibility parameter to value between 0 and 1").
type Sigmoid struct {
	// Mid is the parameter value mapped to 0.5.
	Mid float64
	// Steepness scales the transition; higher is sharper.
	Steepness float64
}

// Apply evaluates the sigmoid at x.
func (s Sigmoid) Apply(x float64) float64 {
	st := s.Steepness
	if st == 0 {
		st = 1
	}
	return 1 / (1 + math.Exp(-st*(x-s.Mid)))
}

// Potentials are the normalized flexibility potentials of one flex-offer.
type Potentials struct {
	// Assignment: how much re-scheduling time the BRP gets before the
	// assignment deadline.
	Assignment float64
	// Scheduling: how far execution can be shifted.
	Scheduling float64
	// Energy: how much energy is dispatchable.
	Energy float64
}

// Weights combine potentials into a flex-offer value.
type Weights struct {
	Assignment, Scheduling, Energy float64
}

// DefaultWeights emphasize scheduling flexibility, the primary lever for
// balancing.
var DefaultWeights = Weights{Assignment: 0.2, Scheduling: 0.5, Energy: 0.3}

// Valuator prices flex-offers for a BRP before execution time.
type Valuator struct {
	// Weights of the weighted potential sum (default DefaultWeights).
	Weights Weights

	// AssignmentSig, SchedulingSig, EnergySig normalize the raw
	// parameters. Zero values get sensible defaults in NewValuator.
	AssignmentSig Sigmoid // over slots of assignment flexibility
	SchedulingSig Sigmoid // over slots of time flexibility
	EnergySig     Sigmoid // over kWh of energy flexibility

	// MinProcessing is the minimum time (slots) the BRP needs to process
	// an offer ("The BRP needs a minimum of time to process a
	// flex-offer").
	MinProcessing flexoffer.Time

	// DayAheadGate is the number of slots until the next trading period
	// of the day-ahead market; assignment flexibility beyond it "is
	// marginalized by the option for the BRP to trade on the day-ahead
	// market".
	DayAheadGate flexoffer.Time

	// GridCapacityKWh caps the energy flexibility that has value; per
	// the paper, energy flexibility must be "above zero and [below] the
	// grid capacity".
	GridCapacityKWh float64

	// MaxPremiumEUR is the price per kWh paid for a flex-offer of value
	// 1 (full potentials).
	MaxPremiumEUR float64

	// MinValue is the acceptance threshold: offers whose value cannot
	// justify the processing cost are rejected.
	MinValue float64
}

// NewValuator returns a Valuator with calibrated defaults: assignment
// potential saturates around the day-ahead gate (8 hours), scheduling
// potential around 4 hours of shift, energy potential around 20 kWh.
func NewValuator() *Valuator {
	return &Valuator{
		Weights:         DefaultWeights,
		AssignmentSig:   Sigmoid{Mid: 4 * flexoffer.SlotsPerHour, Steepness: 0.15},
		SchedulingSig:   Sigmoid{Mid: 4 * flexoffer.SlotsPerHour, Steepness: 0.25},
		EnergySig:       Sigmoid{Mid: 20, Steepness: 0.2},
		MinProcessing:   2,
		DayAheadGate:    8 * flexoffer.SlotsPerHour,
		GridCapacityKWh: 1e5,
		MaxPremiumEUR:   0.04,
		MinValue:        0.05,
	}
}

// Potentials computes the normalized flexibility potentials of f as seen
// at the decision time now.
func (v *Valuator) Potentials(f *flexoffer.FlexOffer, now flexoffer.Time) Potentials {
	// Assignment flexibility: time left for re-scheduling, capped at the
	// day-ahead gate (extra time is marginalized).
	assign := f.AssignBefore - now
	if assign < 0 {
		assign = 0
	}
	if v.DayAheadGate > 0 && assign > v.DayAheadGate {
		assign = v.DayAheadGate
	}
	// Scheduling flexibility: the time flexibility interval.
	sched := f.TimeFlexibility()
	// Energy flexibility: dispatchable energy, capped at grid capacity.
	energy := f.EnergyFlexibility()
	if v.GridCapacityKWh > 0 && energy > v.GridCapacityKWh {
		energy = v.GridCapacityKWh
	}
	p := Potentials{
		Assignment: v.AssignmentSig.Apply(float64(assign)),
		Scheduling: v.SchedulingSig.Apply(float64(sched)),
		Energy:     v.EnergySig.Apply(energy),
	}
	// An offer with zero scheduling flexibility "may still provide a
	// benefit for the BRP if it offers energy flexibility" — but with
	// zero energy flexibility too, the potential must be zero, which the
	// sigmoid alone would not give.
	if sched == 0 {
		p.Scheduling = 0
	}
	if energy == 0 {
		p.Energy = 0
	}
	if assign == 0 {
		p.Assignment = 0
	}
	// Assignment flexibility is time to re-schedule; with nothing to
	// re-schedule (no scheduling and no energy flexibility) it is
	// worthless.
	if sched == 0 && energy == 0 {
		p.Assignment = 0
	}
	return p
}

// Value is the total value of the flex-offer: the weighted sum of its
// flexibility potentials, computable before execution time. The result
// lies in [0, W] where W is the weight sum.
func (v *Valuator) Value(f *flexoffer.FlexOffer, now flexoffer.Time) float64 {
	p := v.Potentials(f, now)
	return v.Weights.Assignment*p.Assignment + v.Weights.Scheduling*p.Scheduling + v.Weights.Energy*p.Energy
}

// OfferPrice is the before-execution price setting scheme: the premium
// per kWh the BRP offers the prosumer, proportional to the flex-offer
// value. Usable as an acceptance criterion, unlike profit sharing.
func (v *Valuator) OfferPrice(f *flexoffer.FlexOffer, now flexoffer.Time) float64 {
	wsum := v.Weights.Assignment + v.Weights.Scheduling + v.Weights.Energy
	if wsum == 0 {
		return 0
	}
	return v.MaxPremiumEUR * v.Value(f, now) / wsum
}

// Decision is the outcome of flex-offer acceptance.
type Decision struct {
	Accept bool
	Reason string
	Value  float64
	Price  float64 // EUR/kWh premium when accepted
}

// Decide accepts or rejects a flex-offer (paper: "The BRP must be able
// to reject a flex-offer that generates loss or can not be processed in
// time"). Rejection does not forbid the prosumer's consumption — the BRP
// merely waives the option to control the load.
func (v *Valuator) Decide(f *flexoffer.FlexOffer, now flexoffer.Time) Decision {
	if err := f.Validate(); err != nil {
		return Decision{Accept: false, Reason: fmt.Sprintf("invalid offer: %v", err)}
	}
	if now+v.MinProcessing > f.AssignBefore {
		return Decision{Accept: false, Reason: "cannot be processed before the assignment deadline"}
	}
	val := v.Value(f, now)
	if val < v.MinValue {
		return Decision{Accept: false, Reason: "flexibility value below the profitability threshold", Value: val}
	}
	return Decision{Accept: true, Value: val, Price: v.OfferPrice(f, now)}
}

// ShareRealizedProfit is the after-execution price setting scheme: the
// BRP computes the profit a flex-offer realized (cost without the
// flexibility minus cost with it) and shares a fraction with the
// prosumer. It cannot serve as an acceptance criterion — the value is
// only known after execution — but aligns incentives with realized value.
func ShareRealizedProfit(costWithoutFlex, costWithFlex, shareFrac float64) (prosumerEUR float64, err error) {
	if shareFrac < 0 || shareFrac > 1 {
		return 0, fmt.Errorf("negotiate: share fraction %g outside [0,1]", shareFrac)
	}
	profit := costWithoutFlex - costWithFlex
	if profit <= 0 {
		return 0, nil // no realized profit, nothing to share
	}
	return profit * shareFrac, nil
}
