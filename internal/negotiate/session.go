package negotiate

import (
	"fmt"
	"math"

	"mirabel/internal/flexoffer"
)

// Outcome is the terminal state of a negotiation session.
type Outcome string

const (
	// Accepted: bid and ask crossed; the premium is the midpoint.
	Accepted Outcome = "accepted"
	// Rejected: the BRP walked away — the offer failed valuation, or
	// market movement pushed its price cap below the prosumer's
	// reservation price.
	Rejected Outcome = "rejected"
	// Expired: the round budget ran out before the prices crossed.
	Expired Outcome = "expired"
)

// Round records one offer/counteroffer exchange.
type Round struct {
	Round int
	// MidEUR is the market mid price (EUR/kWh) observed this round;
	// CapEUR the BRP's re-valued price ceiling under it.
	MidEUR, CapEUR float64
	// BidEUR is the BRP's offer, AskEUR the prosumer's counteroffer.
	BidEUR, AskEUR float64
}

// Result is the outcome of a negotiation session.
type Result struct {
	Outcome Outcome
	// PremiumEUR is the agreed premium per kWh (Accepted only).
	PremiumEUR float64
	// Value is the valuator's flex-offer value at session start.
	Value  float64
	Rounds []Round
	Reason string
}

// SessionConfig parameterizes a negotiation session.
type SessionConfig struct {
	// Valuator prices the flex-offer for the BRP (default NewValuator()).
	Valuator *Valuator
	// MaxRounds bounds the offer/counteroffer exchange (default 8).
	MaxRounds int
	// ReservationEUR is the prosumer's reservation price per kWh — the
	// minimum premium they will execute flexibility for.
	ReservationEUR float64
	// AskMarkup is the prosumer's opening markup over the reservation
	// price (default 0.5, i.e. the first ask is 1.5× the reservation).
	AskMarkup float64
	// Concession is the per-round fraction by which each side closes
	// the gap to its limit (default 0.35).
	Concession float64
	// Quote, when set, returns the market mid price (EUR/kWh) observed
	// at each round; RefMid anchors it (the mid at valuation time). The
	// BRP re-values its ceiling every round as quotes move: rising
	// prices raise what flexibility is worth to the BRP, falling prices
	// lower it. With Quote nil the ceiling is the valuator's price,
	// fixed.
	Quote  func(round int) float64
	RefMid float64
	// PressureGain scales how strongly quote movement shifts the BRP's
	// ceiling (default 1, i.e. proportionally).
	PressureGain float64
}

// Session runs bounded multi-round negotiations between a BRP's
// valuator and a prosumer's reservation price. It is stateless across
// offers: one Session can run many flex-offers.
type Session struct {
	cfg SessionConfig
}

// NewSession builds a session, applying defaults.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Valuator == nil {
		cfg.Valuator = NewValuator()
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 8
	}
	if cfg.MaxRounds < 1 {
		return nil, fmt.Errorf("negotiate: max rounds %d < 1", cfg.MaxRounds)
	}
	if cfg.ReservationEUR < 0 {
		return nil, fmt.Errorf("negotiate: negative reservation price %g", cfg.ReservationEUR)
	}
	if cfg.AskMarkup == 0 {
		cfg.AskMarkup = 0.5
	}
	if cfg.AskMarkup < 0 {
		return nil, fmt.Errorf("negotiate: negative ask markup %g", cfg.AskMarkup)
	}
	if cfg.Concession == 0 {
		cfg.Concession = 0.35
	}
	if cfg.Concession <= 0 || cfg.Concession >= 1 {
		return nil, fmt.Errorf("negotiate: concession %g outside (0,1)", cfg.Concession)
	}
	if cfg.PressureGain == 0 {
		cfg.PressureGain = 1
	}
	return &Session{cfg: cfg}, nil
}

// cap re-values the BRP's price ceiling for a round: the valuator's
// base price, scaled by how the observed market mid moved against the
// reference mid. Clamped to [0, MaxPremiumEUR].
func (s *Session) cap(base float64, round int) (capEUR, mid float64) {
	capEUR, mid = base, s.cfg.RefMid
	if s.cfg.Quote != nil && s.cfg.RefMid != 0 {
		mid = s.cfg.Quote(round)
		capEUR = base * (1 + s.cfg.PressureGain*(mid/s.cfg.RefMid-1))
	}
	capEUR = math.Max(0, math.Min(capEUR, s.cfg.Valuator.MaxPremiumEUR))
	return capEUR, mid
}

// Run negotiates one flex-offer at decision time now. The BRP opens at
// half its ceiling and concedes upward; the prosumer opens at the
// marked-up reservation price and concedes down toward it. Each round
// the ceiling is re-valued against the current market quote. The
// session ends Accepted at the bid/ask midpoint once they cross,
// Rejected when the offer fails valuation or the re-valued ceiling
// falls below the prosumer's reservation price, and Expired when the
// round budget runs out.
func (s *Session) Run(f *flexoffer.FlexOffer, now flexoffer.Time) Result {
	d := s.cfg.Valuator.Decide(f, now)
	if !d.Accept {
		return Result{Outcome: Rejected, Value: d.Value, Reason: d.Reason}
	}
	base := d.Price
	res := Result{Value: d.Value}
	conc := s.cfg.Concession
	reservation := s.cfg.ReservationEUR
	ask := reservation * (1 + s.cfg.AskMarkup)
	bid := 0.0

	// An agreement is impossible while the BRP's re-valued ceiling sits
	// below the prosumer's floor. One such round need not end the
	// session — the next quote may lift the ceiling back — but a streak
	// of them means the market has moved against the offer for good.
	const maxInfeasibleStreak = 3
	infeasible := 0

	for round := 0; round < s.cfg.MaxRounds; round++ {
		capEUR, mid := s.cap(base, round)
		if round == 0 {
			bid = capEUR / 2
		}
		if capEUR < reservation {
			if infeasible++; infeasible >= maxInfeasibleStreak {
				res.Outcome = Rejected
				res.Reason = fmt.Sprintf("price cap %.6f below reservation %.6f for %d rounds", capEUR, reservation, infeasible)
				return res
			}
		} else {
			infeasible = 0
		}
		// Concede: the BRP closes toward its (re-valued) ceiling, the
		// prosumer toward the reservation floor.
		bid += (capEUR - bid) * conc
		if bid > capEUR {
			bid = capEUR
		}
		ask -= (ask - reservation) * conc
		res.Rounds = append(res.Rounds, Round{Round: round, MidEUR: mid, CapEUR: capEUR, BidEUR: bid, AskEUR: ask})
		if bid >= ask {
			res.Outcome = Accepted
			res.PremiumEUR = (bid + ask) / 2
			return res
		}
	}
	res.Outcome = Expired
	res.Reason = fmt.Sprintf("no agreement within %d rounds", s.cfg.MaxRounds)
	return res
}
