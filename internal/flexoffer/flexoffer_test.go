package flexoffer

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// evOffer models the paper's §2 example: EV plugged in at 10pm (slot 88 of
// day 0), charging takes 2h (8 slots), must finish by 7am, so the latest
// start is 5am (slot 116 of the next day = 96+20).
func evOffer() *FlexOffer {
	profile := make([]Slice, 8)
	for i := range profile {
		profile[i] = Slice{EnergyMin: 0, EnergyMax: 6.25} // 50 kWh max total
	}
	return &FlexOffer{
		ID:            1,
		Prosumer:      "household-17",
		EarliestStart: 88,
		LatestStart:   96 + 20,
		AssignBefore:  88,
		Profile:       profile,
	}
}

func TestEVOfferProperties(t *testing.T) {
	f := evOffer()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.TimeFlexibility(); got != 28 {
		t.Errorf("TimeFlexibility = %d, want 28 slots (7h)", got)
	}
	if got := f.MaxTotalEnergy(); got != 50 {
		t.Errorf("MaxTotalEnergy = %g, want 50", got)
	}
	if got := f.MinTotalEnergy(); got != 0 {
		t.Errorf("MinTotalEnergy = %g, want 0", got)
	}
	if got := f.EnergyFlexibility(); got != 50 {
		t.Errorf("EnergyFlexibility = %g, want 50", got)
	}
	if got := f.LatestEnd(); got != 124 {
		t.Errorf("LatestEnd = %d, want 124 (7am)", got)
	}
	if f.NumSlices() != 8 {
		t.Errorf("NumSlices = %d", f.NumSlices())
	}
}

func TestValidateRejectsBadOffers(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*FlexOffer)
	}{
		{"empty profile", func(f *FlexOffer) { f.Profile = nil }},
		{"latest before earliest", func(f *FlexOffer) { f.LatestStart = f.EarliestStart - 1 }},
		{"assignment after earliest start", func(f *FlexOffer) { f.AssignBefore = f.EarliestStart + 1 }},
		{"slice min > max", func(f *FlexOffer) { f.Profile[0] = Slice{EnergyMin: 5, EnergyMax: 1} }},
	}
	for _, tc := range cases {
		f := evOffer()
		tc.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid offer", tc.name)
		}
	}
}

func TestValidateScheduleAccepts(t *testing.T) {
	f := evOffer()
	s := &Schedule{OfferID: 1, Start: 100, Energy: []float64{6, 6, 6, 6, 6, 6, 6, 6}}
	if err := f.ValidateSchedule(s); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestValidateScheduleRejections(t *testing.T) {
	f := evOffer()
	full := []float64{6, 6, 6, 6, 6, 6, 6, 6}
	cases := []struct {
		name  string
		sched *Schedule
		want  error
	}{
		{"wrong offer", &Schedule{OfferID: 2, Start: 100, Energy: full}, ErrWrongOffer},
		{"too early", &Schedule{OfferID: 1, Start: 87, Energy: full}, ErrStartTooEarly},
		{"too late", &Schedule{OfferID: 1, Start: 117, Energy: full}, ErrStartTooLate},
		{"slice count", &Schedule{OfferID: 1, Start: 100, Energy: full[:4]}, ErrSliceCount},
		{"energy above max", &Schedule{OfferID: 1, Start: 100, Energy: []float64{7, 6, 6, 6, 6, 6, 6, 6}}, ErrEnergyOutOfBox},
		{"energy below min", &Schedule{OfferID: 1, Start: 100, Energy: []float64{-1, 6, 6, 6, 6, 6, 6, 6}}, ErrEnergyOutOfBox},
	}
	for _, tc := range cases {
		if err := f.ValidateSchedule(tc.sched); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestScheduleBoundaryStarts(t *testing.T) {
	f := evOffer()
	full := []float64{0, 0, 0, 0, 0, 0, 0, 0}
	for _, start := range []Time{f.EarliestStart, f.LatestStart} {
		s := &Schedule{OfferID: 1, Start: start, Energy: full}
		if err := f.ValidateSchedule(s); err != nil {
			t.Errorf("boundary start %d rejected: %v", start, err)
		}
	}
}

func TestDefaultSchedule(t *testing.T) {
	f := evOffer()
	s := f.DefaultSchedule()
	if err := f.ValidateSchedule(s); err != nil {
		t.Fatalf("default schedule invalid: %v", err)
	}
	if s.Start != f.EarliestStart {
		t.Errorf("default start = %d, want earliest %d", s.Start, f.EarliestStart)
	}
	if s.TotalEnergy() != f.MaxTotalEnergy() {
		t.Errorf("default energy = %g, want max %g", s.TotalEnergy(), f.MaxTotalEnergy())
	}
}

func TestCloneIndependence(t *testing.T) {
	f := evOffer()
	c := f.Clone()
	c.Profile[0].EnergyMax = 999
	c.LatestStart = 1
	if f.Profile[0].EnergyMax == 999 || f.LatestStart == 1 {
		t.Error("Clone shares state with original")
	}
}

func TestProductionOffer(t *testing.T) {
	// A PV producer issues a flex-offer with negative energies; the model
	// must treat it like consumption (paper: "treated equivalently").
	f := &FlexOffer{
		ID:            7,
		EarliestStart: 40,
		LatestStart:   44,
		AssignBefore:  40,
		Profile:       []Slice{{EnergyMin: -3, EnergyMax: -1}, {EnergyMin: -3, EnergyMax: 0}},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.MinTotalEnergy() != -6 || f.MaxTotalEnergy() != -1 {
		t.Errorf("production energies = [%g, %g]", f.MinTotalEnergy(), f.MaxTotalEnergy())
	}
	s := &Schedule{OfferID: 7, Start: 42, Energy: []float64{-2, -1.5}}
	if err := f.ValidateSchedule(s); err != nil {
		t.Errorf("production schedule rejected: %v", err)
	}
}

// RandomOffer builds a random valid flex-offer; shared with other
// packages' tests via this exported test helper pattern.
func RandomOffer(rng *rand.Rand, id ID) *FlexOffer {
	n := 1 + rng.Intn(10)
	profile := make([]Slice, n)
	for i := range profile {
		lo := rng.Float64()*4 - 1
		profile[i] = Slice{EnergyMin: lo, EnergyMax: lo + rng.Float64()*3}
	}
	es := Time(rng.Intn(1000))
	return &FlexOffer{
		ID:            id,
		EarliestStart: es,
		LatestStart:   es + Time(rng.Intn(100)),
		AssignBefore:  es - Time(rng.Intn(50)),
		Profile:       profile,
	}
}

// Property: DefaultSchedule is always valid for random valid offers.
func TestPropertyDefaultScheduleValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		off := RandomOffer(rng, ID(seed))
		if off.Validate() != nil {
			return false
		}
		return off.ValidateSchedule(off.DefaultSchedule()) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy flexibility equals max total − min total energy.
func TestPropertyEnergyFlexibilityConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		off := RandomOffer(rng, 1)
		diff := off.MaxTotalEnergy() - off.MinTotalEnergy()
		return abs(off.EnergyFlexibility()-diff) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
