// Package flexoffer defines MIRABEL's central energy planning object, the
// flex-offer (paper §2, Figure 3): an energy profile of slices with
// per-slice minimum/maximum energy, a time flexibility interval bounded by
// the earliest and latest start time, and an assignment deadline.
//
// All times are discrete slots of fixed duration (15 minutes by default,
// matching the resolution of the European intra-day market). A slot index
// counts slots since a system-wide epoch. Consumption is positive energy,
// production (e.g. a rooftop PV flex-offer) is negative; both directions
// are treated uniformly, as the paper requires.
package flexoffer

import (
	"errors"
	"fmt"
)

// SlotMinutes is the duration of one time slot. The whole system operates
// on this single resolution; the workload generators and the scheduler
// share it.
const SlotMinutes = 15

// SlotsPerHour and SlotsPerDay are derived grid constants.
const (
	SlotsPerHour = 60 / SlotMinutes
	SlotsPerDay  = 24 * SlotsPerHour
)

// Time is a discrete time: the index of a 15-minute slot since the epoch.
type Time int64

// ID uniquely identifies a flex-offer inside one EDMS node.
type ID uint64

// Slice is one interval of a flex-offer profile: during one slot the
// prosumer consumes (or produces, if negative) an energy amount within
// [EnergyMin, EnergyMax] kWh.
type Slice struct {
	EnergyMin float64
	EnergyMax float64
}

// Flexibility returns the energy flexibility of the slice (kWh).
func (s Slice) Flexibility() float64 { return s.EnergyMax - s.EnergyMin }

// FlexOffer is an energy planning object as issued by a prosumer node.
type FlexOffer struct {
	ID       ID
	Prosumer string // issuing actor identifier

	// EarliestStart and LatestStart bound the start of execution; their
	// difference is the offer's time flexibility.
	EarliestStart Time
	LatestStart   Time

	// AssignBefore is the assignment deadline: the BRP must send back a
	// schedule before this time, otherwise the offer expires and the
	// prosumer falls back to the default profile (paper §1: pending
	// flexibilities simply time out).
	AssignBefore Time

	// Profile holds one Slice per slot of execution.
	Profile []Slice

	// CostPerKWh is the activation price (EUR/kWh) the BRP pays the
	// prosumer when scheduling this offer; the negotiation component
	// sets it.
	CostPerKWh float64
}

// NumSlices returns the profile length in slots.
func (f *FlexOffer) NumSlices() int { return len(f.Profile) }

// TimeFlexibility returns LatestStart − EarliestStart in slots — the
// paper's "time flexibility interval" (how far execution can be shifted).
func (f *FlexOffer) TimeFlexibility() Time { return f.LatestStart - f.EarliestStart }

// EnergyFlexibility returns the total dispatchable energy range in kWh
// (Σ max−min over slices).
func (f *FlexOffer) EnergyFlexibility() float64 {
	var s float64
	for _, sl := range f.Profile {
		s += sl.Flexibility()
	}
	return s
}

// MinTotalEnergy returns the minimum total energy of the profile (kWh).
func (f *FlexOffer) MinTotalEnergy() float64 {
	var s float64
	for _, sl := range f.Profile {
		s += sl.EnergyMin
	}
	return s
}

// MaxTotalEnergy returns the maximum total energy of the profile (kWh).
func (f *FlexOffer) MaxTotalEnergy() float64 {
	var s float64
	for _, sl := range f.Profile {
		s += sl.EnergyMax
	}
	return s
}

// LatestEnd returns the slot directly after the last execution slot when
// the offer starts as late as possible.
func (f *FlexOffer) LatestEnd() Time { return f.LatestStart + Time(len(f.Profile)) }

// Validate checks the structural invariants of the offer.
func (f *FlexOffer) Validate() error {
	if len(f.Profile) == 0 {
		return fmt.Errorf("flexoffer %d: empty profile", f.ID)
	}
	if f.LatestStart < f.EarliestStart {
		return fmt.Errorf("flexoffer %d: latest start %d before earliest start %d", f.ID, f.LatestStart, f.EarliestStart)
	}
	if f.AssignBefore > f.EarliestStart {
		return fmt.Errorf("flexoffer %d: assignment deadline %d after earliest start %d", f.ID, f.AssignBefore, f.EarliestStart)
	}
	for i, sl := range f.Profile {
		if sl.EnergyMin > sl.EnergyMax {
			return fmt.Errorf("flexoffer %d: slice %d min %g > max %g", f.ID, i, sl.EnergyMin, sl.EnergyMax)
		}
	}
	return nil
}

// Clone returns a deep copy of the offer.
func (f *FlexOffer) Clone() *FlexOffer {
	cp := *f
	cp.Profile = append([]Slice(nil), f.Profile...)
	return &cp
}

// Schedule is a scheduled (instantiated) flex-offer: the scheduling
// component has fixed the start time and the energy amount of every slice.
type Schedule struct {
	OfferID ID
	Start   Time      // fixed start slot
	Energy  []float64 // fixed energy per slice (kWh), len == NumSlices
}

// TotalEnergy returns the total scheduled energy in kWh.
func (s *Schedule) TotalEnergy() float64 {
	var sum float64
	for _, e := range s.Energy {
		sum += e
	}
	return sum
}

// Errors returned by ValidateSchedule.
var (
	ErrWrongOffer     = errors.New("flexoffer: schedule references a different offer")
	ErrStartTooEarly  = errors.New("flexoffer: scheduled start before earliest start")
	ErrStartTooLate   = errors.New("flexoffer: scheduled start after latest start")
	ErrSliceCount     = errors.New("flexoffer: schedule slice count differs from profile")
	ErrEnergyOutOfBox = errors.New("flexoffer: scheduled energy outside [min,max]")
)

// ValidateSchedule checks that sched respects all constraints of f. This
// is the correctness predicate behind the paper's disaggregation
// requirement: disaggregated schedules must pass it for every micro
// flex-offer.
func (f *FlexOffer) ValidateSchedule(sched *Schedule) error {
	if sched.OfferID != f.ID {
		return fmt.Errorf("%w: offer %d, schedule for %d", ErrWrongOffer, f.ID, sched.OfferID)
	}
	if sched.Start < f.EarliestStart {
		return fmt.Errorf("%w: start %d < earliest %d (offer %d)", ErrStartTooEarly, sched.Start, f.EarliestStart, f.ID)
	}
	if sched.Start > f.LatestStart {
		return fmt.Errorf("%w: start %d > latest %d (offer %d)", ErrStartTooLate, sched.Start, f.LatestStart, f.ID)
	}
	if len(sched.Energy) != len(f.Profile) {
		return fmt.Errorf("%w: %d slices scheduled, profile has %d (offer %d)", ErrSliceCount, len(sched.Energy), len(f.Profile), f.ID)
	}
	const eps = 1e-9
	for i, e := range sched.Energy {
		sl := f.Profile[i]
		if e < sl.EnergyMin-eps || e > sl.EnergyMax+eps {
			return fmt.Errorf("%w: slice %d energy %g outside [%g, %g] (offer %d)", ErrEnergyOutOfBox, i, e, sl.EnergyMin, sl.EnergyMax, f.ID)
		}
	}
	return nil
}

// DefaultSchedule returns the fallback execution used when an offer
// expires unscheduled: start at the earliest start time with maximum
// energy (the behaviour of a device without an EDMS, e.g. an EV that
// begins charging the moment it is plugged in).
func (f *FlexOffer) DefaultSchedule() *Schedule {
	energy := make([]float64, len(f.Profile))
	for i, sl := range f.Profile {
		energy[i] = sl.EnergyMax
	}
	return &Schedule{OfferID: f.ID, Start: f.EarliestStart, Energy: energy}
}

// String implements fmt.Stringer.
func (f *FlexOffer) String() string {
	return fmt.Sprintf("FlexOffer{id=%d es=%d ls=%d slices=%d e=[%.2f,%.2f]kWh}",
		f.ID, f.EarliestStart, f.LatestStart, len(f.Profile), f.MinTotalEnergy(), f.MaxTotalEnergy())
}
