// Package timeseries provides the time-series substrate used across the
// MIRABEL EDMS: equidistant series with a fixed resolution, seasonal
// indexing helpers and the forecast error metrics used in the paper's
// evaluation (SMAPE in particular).
//
// Time is modeled as discrete slots. A slot is Resolution long; slot 0
// starts at the series Origin. All MIRABEL components (flex-offers,
// forecasting, scheduling) exchange slot indexes rather than wall-clock
// timestamps so that the whole system is deterministic and testable.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Common resolutions of the European electricity market.
const (
	ResolutionQuarterHour = 15 * time.Minute
	ResolutionHalfHour    = 30 * time.Minute
	ResolutionHour        = time.Hour
)

// Series is an equidistant time series. The zero value is not usable;
// construct with New or NewEmpty.
type Series struct {
	origin     time.Time
	resolution time.Duration
	values     []float64
}

// New returns a series over the given values. origin is the start time of
// slot 0 and resolution the slot length.
func New(origin time.Time, resolution time.Duration, values []float64) *Series {
	if resolution <= 0 {
		panic("timeseries: non-positive resolution")
	}
	return &Series{origin: origin, resolution: resolution, values: values}
}

// NewEmpty returns a series with no observations yet.
func NewEmpty(origin time.Time, resolution time.Duration) *Series {
	return New(origin, resolution, nil)
}

// Origin returns the start time of slot 0.
func (s *Series) Origin() time.Time { return s.origin }

// Resolution returns the slot length.
func (s *Series) Resolution() time.Duration { return s.resolution }

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.values) }

// At returns the observation of slot i.
func (s *Series) At(i int) float64 { return s.values[i] }

// Set overwrites the observation of slot i.
func (s *Series) Set(i int, v float64) { s.values[i] = v }

// Append adds observations at the end of the series.
func (s *Series) Append(v ...float64) { s.values = append(s.values, v...) }

// Values returns the underlying observation slice. The slice is shared;
// callers must not modify it unless they own the series.
func (s *Series) Values() []float64 { return s.values }

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	cp := make([]float64, len(s.values))
	copy(cp, s.values)
	return New(s.origin, s.resolution, cp)
}

// Slice returns a view of slots [from, to).
func (s *Series) Slice(from, to int) *Series {
	return &Series{
		origin:     s.TimeOf(from),
		resolution: s.resolution,
		values:     s.values[from:to],
	}
}

// TimeOf returns the wall-clock start time of slot i.
func (s *Series) TimeOf(i int) time.Time {
	return s.origin.Add(time.Duration(i) * s.resolution)
}

// SlotOf returns the slot index containing t. Times before the origin
// yield negative indexes.
func (s *Series) SlotOf(t time.Time) int {
	d := t.Sub(s.origin)
	slot := d / s.resolution
	if d < 0 && d%s.resolution != 0 {
		slot-- // floor division for times before the origin
	}
	return int(slot)
}

// SlotsPerDay returns the number of slots in 24 hours, or an error if the
// resolution does not evenly divide a day.
func (s *Series) SlotsPerDay() (int, error) {
	day := 24 * time.Hour
	if day%s.resolution != 0 {
		return 0, fmt.Errorf("timeseries: resolution %v does not divide a day", s.resolution)
	}
	return int(day / s.resolution), nil
}

// String implements fmt.Stringer with a short summary.
func (s *Series) String() string {
	return fmt.Sprintf("Series{n=%d res=%v origin=%s}", len(s.values), s.resolution, s.origin.Format(time.RFC3339))
}

// Stats holds simple summary statistics of a series.
type Stats struct {
	Min, Max, Mean, Std float64
}

// Summary computes summary statistics. An empty series yields zeros.
func (s *Series) Summary() Stats {
	if len(s.values) == 0 {
		return Stats{}
	}
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range s.values {
		st.Mean += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean /= float64(len(s.values))
	for _, v := range s.values {
		d := v - st.Mean
		st.Std += d * d
	}
	st.Std = math.Sqrt(st.Std / float64(len(s.values)))
	return st
}

// ErrLengthMismatch is returned by metrics when the actual and forecast
// slices differ in length.
var ErrLengthMismatch = errors.New("timeseries: actual and forecast lengths differ")

// SMAPE returns the symmetric mean absolute percentage error between
// actual and forecast, as used in the paper's forecasting experiments
// (Figure 4). The result is in [0, 1]; slots where both values are zero
// contribute zero error.
func SMAPE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range actual {
		denom := math.Abs(actual[i]) + math.Abs(forecast[i])
		if denom == 0 {
			continue
		}
		sum += math.Abs(actual[i]-forecast[i]) / denom
	}
	return sum / float64(len(actual)), nil
}

// MAPE returns the mean absolute percentage error. Slots with a zero
// actual value are skipped to keep the metric finite.
func MAPE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, ErrLengthMismatch
	}
	var sum float64
	n := 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((actual[i] - forecast[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// RMSE returns the root mean squared error.
func RMSE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range actual {
		d := actual[i] - forecast[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(actual))), nil
}

// MAE returns the mean absolute error.
func MAE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range actual {
		sum += math.Abs(actual[i] - forecast[i])
	}
	return sum / float64(len(actual)), nil
}

// SeasonIndex returns the position of slot i inside a season of the given
// length, e.g. SeasonIndex(50, 48) = 2 for the intra-day position of a
// half-hourly series.
func SeasonIndex(slot, seasonLength int) int {
	m := slot % seasonLength
	if m < 0 {
		m += seasonLength
	}
	return m
}

// Aggregate sums k consecutive slots into one, producing a coarser series
// (e.g. 15-minute → hourly with k=4). Trailing slots that do not fill a
// complete group are dropped.
func (s *Series) Aggregate(k int) *Series {
	if k <= 0 {
		panic("timeseries: non-positive aggregation factor")
	}
	n := len(s.values) / k
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < k; j++ {
			sum += s.values[i*k+j]
		}
		out[i] = sum
	}
	return New(s.origin, s.resolution*time.Duration(k), out)
}

// Add returns a new series with the element-wise sum of s and t. The
// series must share resolution and length; origins are taken from s.
func (s *Series) Add(t *Series) (*Series, error) {
	if s.resolution != t.resolution {
		return nil, fmt.Errorf("timeseries: resolution mismatch %v vs %v", s.resolution, t.resolution)
	}
	if len(s.values) != len(t.values) {
		return nil, ErrLengthMismatch
	}
	out := make([]float64, len(s.values))
	for i := range out {
		out[i] = s.values[i] + t.values[i]
	}
	return New(s.origin, s.resolution, out), nil
}

// Scale returns a new series with all values multiplied by f.
func (s *Series) Scale(f float64) *Series {
	out := make([]float64, len(s.values))
	for i := range out {
		out[i] = s.values[i] * f
	}
	return New(s.origin, s.resolution, out)
}
