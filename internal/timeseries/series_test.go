package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var origin = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSlotTimeRoundtrip(t *testing.T) {
	s := NewEmpty(origin, ResolutionHalfHour)
	for _, slot := range []int{0, 1, 47, 48, 1000} {
		got := s.SlotOf(s.TimeOf(slot))
		if got != slot {
			t.Errorf("SlotOf(TimeOf(%d)) = %d", slot, got)
		}
	}
}

func TestSlotOfBeforeOrigin(t *testing.T) {
	s := NewEmpty(origin, ResolutionHour)
	if got := s.SlotOf(origin.Add(-30 * time.Minute)); got != -1 {
		t.Errorf("SlotOf(-30m) = %d, want -1", got)
	}
	if got := s.SlotOf(origin.Add(-time.Hour)); got != -1 {
		t.Errorf("SlotOf(-1h) = %d, want -1", got)
	}
	if got := s.SlotOf(origin.Add(-61 * time.Minute)); got != -2 {
		t.Errorf("SlotOf(-61m) = %d, want -2", got)
	}
}

func TestSlotOfMidSlot(t *testing.T) {
	s := NewEmpty(origin, ResolutionQuarterHour)
	if got := s.SlotOf(origin.Add(16 * time.Minute)); got != 1 {
		t.Errorf("SlotOf(16m) = %d, want 1", got)
	}
}

func TestSlotsPerDay(t *testing.T) {
	for _, tc := range []struct {
		res  time.Duration
		want int
	}{
		{ResolutionQuarterHour, 96},
		{ResolutionHalfHour, 48},
		{ResolutionHour, 24},
	} {
		s := NewEmpty(origin, tc.res)
		got, err := s.SlotsPerDay()
		if err != nil || got != tc.want {
			t.Errorf("SlotsPerDay(%v) = %d, %v; want %d", tc.res, got, err, tc.want)
		}
	}
	s := NewEmpty(origin, 7*time.Minute)
	if _, err := s.SlotsPerDay(); err == nil {
		t.Error("SlotsPerDay(7m) should error")
	}
}

func TestSummary(t *testing.T) {
	s := New(origin, ResolutionHour, []float64{1, 2, 3, 4})
	st := s.Summary()
	if st.Min != 1 || st.Max != 4 || st.Mean != 2.5 {
		t.Errorf("Summary = %+v", st)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(st.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %g, want %g", st.Std, wantStd)
	}
}

func TestSummaryEmpty(t *testing.T) {
	if st := NewEmpty(origin, ResolutionHour).Summary(); st != (Stats{}) {
		t.Errorf("empty Summary = %+v, want zero", st)
	}
}

func TestSMAPE(t *testing.T) {
	got, err := SMAPE([]float64{100, 100}, []float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	// slot 0: 0; slot 1: 50/150 = 1/3; mean = 1/6
	if math.Abs(got-1.0/6.0) > 1e-12 {
		t.Errorf("SMAPE = %g, want %g", got, 1.0/6.0)
	}
}

func TestSMAPEPerfect(t *testing.T) {
	got, err := SMAPE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("perfect SMAPE = %g, %v", got, err)
	}
}

func TestSMAPEZeros(t *testing.T) {
	got, err := SMAPE([]float64{0, 0}, []float64{0, 0})
	if err != nil || got != 0 {
		t.Errorf("all-zero SMAPE = %g, %v", got, err)
	}
}

func TestMetricsLengthMismatch(t *testing.T) {
	if _, err := SMAPE([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("SMAPE mismatch err = %v", err)
	}
	if _, err := MAPE([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("MAPE mismatch err = %v", err)
	}
	if _, err := RMSE([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("RMSE mismatch err = %v", err)
	}
	if _, err := MAE([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("MAE mismatch err = %v", err)
	}
}

func TestMAPESkipsZeroActual(t *testing.T) {
	got, err := MAPE([]float64{0, 100}, []float64{5, 110})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %g, want 0.1", got)
	}
}

func TestRMSEAndMAE(t *testing.T) {
	rmse, _ := RMSE([]float64{0, 0}, []float64{3, 4})
	if math.Abs(rmse-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %g", rmse)
	}
	mae, _ := MAE([]float64{0, 0}, []float64{3, 4})
	if math.Abs(mae-3.5) > 1e-12 {
		t.Errorf("MAE = %g", mae)
	}
}

func TestSeasonIndex(t *testing.T) {
	if got := SeasonIndex(50, 48); got != 2 {
		t.Errorf("SeasonIndex(50,48) = %d", got)
	}
	if got := SeasonIndex(-1, 48); got != 47 {
		t.Errorf("SeasonIndex(-1,48) = %d", got)
	}
	if got := SeasonIndex(96, 48); got != 0 {
		t.Errorf("SeasonIndex(96,48) = %d", got)
	}
}

func TestAggregate(t *testing.T) {
	s := New(origin, ResolutionQuarterHour, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	h := s.Aggregate(4)
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (trailing slot dropped)", h.Len())
	}
	if h.At(0) != 10 || h.At(1) != 26 {
		t.Errorf("values = %v", h.Values())
	}
	if h.Resolution() != time.Hour {
		t.Errorf("resolution = %v", h.Resolution())
	}
}

func TestAddScale(t *testing.T) {
	a := New(origin, ResolutionHour, []float64{1, 2})
	b := New(origin, ResolutionHour, []float64{10, 20})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0) != 11 || sum.At(1) != 22 {
		t.Errorf("Add = %v", sum.Values())
	}
	sc := a.Scale(3)
	if sc.At(0) != 3 || sc.At(1) != 6 {
		t.Errorf("Scale = %v", sc.Values())
	}
}

func TestAddErrors(t *testing.T) {
	a := New(origin, ResolutionHour, []float64{1})
	b := New(origin, ResolutionHalfHour, []float64{1})
	if _, err := a.Add(b); err == nil {
		t.Error("Add with resolution mismatch should error")
	}
	c := New(origin, ResolutionHour, []float64{1, 2})
	if _, err := a.Add(c); err != ErrLengthMismatch {
		t.Errorf("Add length mismatch err = %v", err)
	}
}

func TestSliceView(t *testing.T) {
	s := New(origin, ResolutionHour, []float64{0, 1, 2, 3, 4})
	v := s.Slice(2, 4)
	if v.Len() != 2 || v.At(0) != 2 || v.At(1) != 3 {
		t.Errorf("Slice = %v", v.Values())
	}
	if !v.Origin().Equal(origin.Add(2 * time.Hour)) {
		t.Errorf("Slice origin = %v", v.Origin())
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(origin, ResolutionHour, []float64{1, 2})
	c := s.Clone()
	c.Set(0, 99)
	if s.At(0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

// finiteModest reports whether v is finite and small enough that sums of
// a handful of such values cannot overflow or lose all precision.
func finiteModest(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e150
}

// Property: SMAPE is symmetric in its arguments and bounded by [0, 1].
func TestSMAPEPropertySymmetricBounded(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for i := range a {
			// Skip inputs where |a|+|b| would overflow or is not finite.
			if !finiteModest(a[i]) || !finiteModest(b[i]) {
				return true
			}
		}
		ab, err1 := SMAPE(a, b)
		ba, err2 := SMAPE(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(ab-ba) < 1e-12 && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: aggregating preserves the total sum over complete groups.
func TestAggregatePropertySumPreserved(t *testing.T) {
	f := func(vals []float64, k8 uint8) bool {
		k := int(k8)%6 + 1
		for _, v := range vals {
			if !finiteModest(v) {
				return true
			}
		}
		s := New(origin, ResolutionQuarterHour, vals)
		agg := s.Aggregate(k)
		var want, got, maxAbs float64
		for i := 0; i < agg.Len()*k; i++ {
			want += vals[i]
			if a := math.Abs(vals[i]); a > maxAbs {
				maxAbs = a
			}
		}
		for i := 0; i < agg.Len(); i++ {
			got += agg.At(i)
		}
		// Tolerance scales with the value magnitude: different summation
		// orders legitimately differ by rounding.
		return math.Abs(want-got) <= 1e-9*(1+maxAbs*float64(len(vals)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
