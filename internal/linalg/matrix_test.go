package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAccess(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("At values wrong: %+v", m)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Error("Set failed")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("Transpose = %+v", at)
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Square nonsingular system has exact solution.
	a, _ := FromRows([][]float64{{2, 0}, {0, 3}})
	x, err := SolveLeastSquares(a, []float64{4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 1 + 2t through noisy-free points: recovery must be exact.
	rows := [][]float64{}
	b := []float64{}
	for tIdx := 0; tIdx < 10; tIdx++ {
		rows = append(rows, []float64{1, float64(tIdx)})
		b = append(b, 1+2*float64(tIdx))
	}
	a, _ := FromRows(rows)
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-9) || !almostEq(x[1], 2, 1e-9) {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestSolveLeastSquaresSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Error("singular system should error")
	}
}

func TestSolveLeastSquaresUnderdetermined(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}})
	if _, err := SolveLeastSquares(a, []float64{1}); err == nil {
		t.Error("underdetermined system should error")
	}
}

func TestSolveCholesky(t *testing.T) {
	s, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := SolveCholesky(s, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Verify S·x = b.
	b, _ := s.MulVec(x)
	if !almostEq(b[0], 10, 1e-9) || !almostEq(b[1], 8, 1e-9) {
		t.Errorf("S·x = %v", b)
	}
}

func TestSolveCholeskyNotPD(t *testing.T) {
	s, _ := FromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := SolveCholesky(s, []float64{1, 2}); err == nil {
		t.Error("non-PD matrix should error")
	}
}

func TestRidgeHandlesCollinear(t *testing.T) {
	// Two identical columns: plain OLS is singular, ridge is not.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	x, err := RidgeLeastSquares(a, []float64{2, 4, 6}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction should still be accurate: x0+x1 ≈ 2.
	if !almostEq(x[0]+x[1], 2, 1e-3) {
		t.Errorf("x = %v, x0+x1 = %g", x, x[0]+x[1])
	}
}

func TestRidgeNegativeLambda(t *testing.T) {
	a, _ := FromRows([][]float64{{1}})
	if _, err := RidgeLeastSquares(a, []float64{1}, -1); err == nil {
		t.Error("negative lambda should error")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
}

// Property: for random well-conditioned overdetermined systems, the QR
// solution satisfies the normal equations Aᵀ(Ax − b) ≈ 0.
func TestLeastSquaresPropertyNormalEquations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		rows, cols := 12, 4
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Well-conditioned with high probability; add tiny diagonal boost.
		for j := 0; j < cols; j++ {
			a.Set(j, j, a.At(j, j)+2)
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			return false
		}
		ax, _ := a.MulVec(x)
		res := make([]float64, rows)
		for i := range res {
			res[i] = ax[i] - b[i]
		}
		at := a.Transpose()
		g, _ := at.MulVec(res)
		return Norm2(g) < 1e-8*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: QR and ridge (tiny lambda) agree on well-conditioned systems.
func TestQRAndRidgeAgree(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 20, 5
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err1 := SolveLeastSquares(a, b)
		x2, err2 := RidgeLeastSquares(a, b, 1e-10)
		if err1 != nil || err2 != nil {
			t.Fatalf("solve errors: %v %v", err1, err2)
		}
		for j := range x1 {
			if !almostEq(x1[j], x2[j], 1e-5) {
				t.Errorf("trial %d: QR %v vs ridge %v", trial, x1, x2)
				break
			}
		}
	}
}
