// Package linalg provides the small dense linear algebra substrate needed
// by the EGRV multi-equation forecast models: dense matrices, QR
// factorization and ordinary least squares. It is deliberately minimal —
// just enough numerics, implemented with care, for regression models of a
// few dozen coefficients.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec dimension mismatch: %d cols vs %d vector", m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·n.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("linalg: Mul dimension mismatch: %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols)
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			nrow := n.Row(k)
			orow := out.Row(i)
			for j := range nrow {
				orow[j] += a * nrow[j]
			}
		}
	}
	return out, nil
}

// ErrSingular is returned when a system is (numerically) rank deficient.
var ErrSingular = errors.New("linalg: matrix is singular or rank deficient")

// SolveLeastSquares solves min ‖A·x − b‖₂ via QR factorization with
// Householder reflections. A must have Rows ≥ Cols; returns ErrSingular
// when A is rank deficient.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs has %d rows, want %d", len(b), a.Rows)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	r := a.Clone()
	y := make([]float64, len(b))
	copy(y, b)

	m, n := r.Rows, r.Cols
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := r.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, ErrSingular
		}
		if r.At(k, k) < 0 {
			norm = -norm
		}
		// v = x + sign(x0)*‖x‖*e1, normalized so v[k] = 1 implicitly.
		vk := r.At(k, k) + norm
		if vk == 0 {
			return nil, ErrSingular
		}
		// Store scaled v in a temp slice.
		v := make([]float64, m-k)
		v[0] = 1
		for i := k + 1; i < m; i++ {
			v[i-k] = r.At(i, k) / vk
		}
		beta := vk / norm // 2/(vᵀv) for this scaling
		// Apply H = I − beta·v·vᵀ to R columns k..n−1 and to y.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			dot *= beta
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i-k])
			}
		}
		var dot float64
		for i := k; i < m; i++ {
			dot += v[i-k] * y[i]
		}
		dot *= beta
		for i := k; i < m; i++ {
			y[i] -= dot * v[i-k]
		}
	}

	// Back substitution on the upper-triangular R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		diag := r.At(i, i)
		if math.Abs(diag) < 1e-12 {
			return nil, ErrSingular
		}
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		x[i] = s / diag
	}
	return x, nil
}

// SolveCholesky solves the symmetric positive definite system S·x = b,
// used for normal-equation solves and ridge regression.
func SolveCholesky(s *Matrix, b []float64) ([]float64, error) {
	if s.Rows != s.Cols {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", s.Rows, s.Cols)
	}
	if len(b) != s.Rows {
		return nil, fmt.Errorf("linalg: rhs has %d rows, want %d", len(b), s.Rows)
	}
	n := s.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += l.At(j, k) * l.At(j, k)
		}
		d = s.At(j, j) - d
		if d <= 0 {
			return nil, ErrSingular
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			var sum float64
			for k := 0; k < j; k++ {
				sum += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (s.At(i, j)-sum)/l.At(j, j))
		}
	}
	// Forward substitution L·z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * z[k]
		}
		z[i] = sum / l.At(i, i)
	}
	// Back substitution Lᵀ·x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// RidgeLeastSquares solves min ‖A·x − b‖² + λ‖x‖² via the regularized
// normal equations (AᵀA + λI)x = Aᵀb. λ > 0 guarantees a solution even
// for collinear regressors, which EGRV calendar dummies can produce.
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs has %d rows, want %d", len(b), a.Rows)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge penalty %g", lambda)
	}
	n := a.Cols
	ata := NewMatrix(n, n)
	atb := make([]float64, n)
	for r := 0; r < a.Rows; r++ {
		row := a.Row(r)
		for i := 0; i < n; i++ {
			if row[i] == 0 {
				continue
			}
			atb[i] += row[i] * b[r]
			arow := ata.Row(i)
			for j := i; j < n; j++ {
				arow[j] += row[i] * row[j]
			}
		}
	}
	// Mirror the upper triangle and add the ridge.
	for i := 0; i < n; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
		for j := i + 1; j < n; j++ {
			ata.Set(j, i, ata.At(i, j))
		}
	}
	return SolveCholesky(ata, atb)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
