package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"mirabel/internal/flexoffer"
)

func TestEnvelopeRoundtrip(t *testing.T) {
	offer := &flexoffer.FlexOffer{
		ID: 7, EarliestStart: 10, LatestStart: 20, AssignBefore: 5,
		Profile: []flexoffer.Slice{{EnergyMin: 1, EnergyMax: 2.5}},
	}
	env, err := NewEnvelope(MsgFlexOfferSubmit, "p1", "brp1", FlexOfferSubmit{Offer: offer})
	if err != nil {
		t.Fatal(err)
	}
	var got FlexOfferSubmit
	if err := env.Decode(MsgFlexOfferSubmit, &got); err != nil {
		t.Fatal(err)
	}
	if got.Offer.ID != 7 || got.Offer.Profile[0].EnergyMax != 2.5 {
		t.Errorf("roundtrip = %+v", got.Offer)
	}
}

func TestDecodeWrongType(t *testing.T) {
	env, _ := NewEnvelope(MsgPing, "a", "b", nil)
	var out FlexOfferSubmit
	if err := env.Decode(MsgFlexOfferSubmit, &out); err == nil {
		t.Error("wrong type accepted")
	}
}

func TestBusRequestReply(t *testing.T) {
	bus := NewBus()
	bus.Register("brp1", func(ctx context.Context, env Envelope) (*Envelope, error) {
		reply, err := NewEnvelope(MsgPong, "brp1", env.From, nil)
		return &reply, err
	})
	env, _ := NewEnvelope(MsgPing, "p1", "brp1", nil)
	reply, err := bus.Request(context.Background(), "brp1", env)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgPong {
		t.Errorf("reply = %+v", reply)
	}
}

func TestBusUnreachable(t *testing.T) {
	ctx := context.Background()
	bus := NewBus()
	env, _ := NewEnvelope(MsgPing, "p1", "ghost", nil)
	if err := bus.Send(ctx, "ghost", env); !errors.Is(err, ErrUnreachable) {
		t.Errorf("Send err = %v", err)
	}
	if _, err := bus.Request(ctx, "ghost", env); !errors.Is(err, ErrUnreachable) {
		t.Errorf("Request err = %v", err)
	}
	// A node can drop off the bus (paper: "nodes unreachable").
	bus.Register("x", func(context.Context, Envelope) (*Envelope, error) { return nil, nil })
	bus.Unregister("x")
	if err := bus.Send(ctx, "x", env); !errors.Is(err, ErrUnreachable) {
		t.Errorf("Send after Unregister err = %v", err)
	}
}

func TestBusSendAsync(t *testing.T) {
	bus := NewBus()
	var count atomic.Int32
	done := make(chan struct{})
	bus.Register("sink", func(context.Context, Envelope) (*Envelope, error) {
		if count.Add(1) == 10 {
			close(done)
		}
		return nil, nil
	})
	env, _ := NewEnvelope(MsgPing, "src", "sink", nil)
	for i := 0; i < 10; i++ {
		if err := bus.Send(context.Background(), "sink", env); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("async sends not delivered")
	}
}

func TestBusSendOutlivesCallerCancellation(t *testing.T) {
	// A message accepted by Send is "on the wire": the handler must run
	// even if the caller's context is canceled immediately after.
	bus := NewBus()
	delivered := make(chan struct{})
	bus.Register("sink", func(ctx context.Context, _ Envelope) (*Envelope, error) {
		if err := ctx.Err(); err != nil {
			t.Errorf("handler context already canceled: %v", err)
		}
		close(delivered)
		return nil, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	env, _ := NewEnvelope(MsgPing, "src", "sink", nil)
	if err := bus.Send(ctx, "sink", env); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-delivered:
	case <-time.After(2 * time.Second):
		t.Fatal("send dropped after caller cancellation")
	}
}

func TestBusRequestDeadline(t *testing.T) {
	bus := NewBus()
	bus.Register("slow", func(ctx context.Context, _ Envelope) (*Envelope, error) {
		select {
		case <-time.After(5 * time.Second):
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	env, _ := NewEnvelope(MsgPing, "p", "slow", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := bus.Request(ctx, "slow", env)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestBusConcurrentRegisterAndSend(t *testing.T) {
	bus := NewBus()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("n%d", i)
			bus.Register(name, func(context.Context, Envelope) (*Envelope, error) { return nil, nil })
			env, _ := NewEnvelope(MsgPing, "x", name, nil)
			_ = bus.Send(context.Background(), name, env)
		}(i)
	}
	wg.Wait()
	if got := len(bus.Endpoints()); got != 20 {
		t.Errorf("endpoints = %d", got)
	}
}

func TestTCPRequestReply(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(ctx context.Context, env Envelope) (*Envelope, error) {
		if env.Type != MsgForecastRequest {
			return nil, fmt.Errorf("unexpected %s", env.Type)
		}
		reply, err := NewEnvelope(MsgForecastReply, "brp1", env.From, ForecastReply{
			EnergyType: "demand", FirstSlot: 100, Values: []float64{1, 2, 3},
		})
		return &reply, err
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("brp1", srv.Addr())

	env, _ := NewEnvelope(MsgForecastRequest, "p1", "brp1", ForecastRequest{EnergyType: "demand", Horizon: 3})
	reply, err := client.Request(context.Background(), "brp1", env)
	if err != nil {
		t.Fatal(err)
	}
	var body ForecastReply
	if err := reply.Decode(MsgForecastReply, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Values) != 3 || body.FirstSlot != 100 {
		t.Errorf("reply body = %+v", body)
	}
	if reply.Seq == 0 {
		t.Error("reply lost the correlation id")
	}
}

func TestTCPHandlerErrorPropagates(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(context.Context, Envelope) (*Envelope, error) {
		return nil, fmt.Errorf("no capacity")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("brp1", srv.Addr())
	env, _ := NewEnvelope(MsgPing, "p1", "brp1", nil)
	if _, err := client.Request(context.Background(), "brp1", env); err == nil {
		t.Error("handler error not propagated")
	}
}

func TestTCPFireAndForgetDelivers(t *testing.T) {
	// Send is true fire-and-forget: it returns once the frame is on the
	// wire, so delivery is asynchronous — like Bus.Send — and the
	// server's pong replies are discarded by the demux loop.
	var count atomic.Int32
	srv, err := ListenTCP("127.0.0.1:0", func(context.Context, Envelope) (*Envelope, error) {
		count.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("brp1", srv.Addr())
	env, _ := NewEnvelope(MsgMeasurementReport, "p1", "brp1", MeasurementReport{Actor: "p1", Slot: 3, KWh: 1})
	for i := 0; i < 5; i++ {
		if err := client.Send(context.Background(), "brp1", env); err != nil {
			t.Fatal(err)
		}
	}
	for deadline := time.Now().Add(2 * time.Second); count.Load() != 5; {
		if time.Now().After(deadline) {
			t.Fatalf("delivered = %d, want 5", count.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := client.Stats().Sends; got != 5 {
		t.Errorf("Stats().Sends = %d, want 5", got)
	}
}

func TestTCPNoRoute(t *testing.T) {
	client := NewTCPClient("p1")
	defer client.Close()
	env, _ := NewEnvelope(MsgPing, "p1", "ghost", nil)
	if _, err := client.Request(context.Background(), "ghost", env); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
}

func TestTCPReconnectAfterServerRestart(t *testing.T) {
	handler := func(ctx context.Context, env Envelope) (*Envelope, error) {
		reply, err := NewEnvelope(MsgPong, "srv", env.From, nil)
		return &reply, err
	}
	srv, err := ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("srv", addr)
	env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
	if _, err := client.Request(context.Background(), "srv", env); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address.
	srv.Close()
	srv2, err := ListenTCP(addr, handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	// The pooled connection is stale; the client only classifies the
	// failure, and the retry policy redials through a fresh connection.
	rt := NewRetry(client, RetryConfig{})
	if _, err := rt.Request(context.Background(), "srv", env); err != nil {
		t.Errorf("request after restart: %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(ctx context.Context, env Envelope) (*Envelope, error) {
		reply, err := NewEnvelope(MsgPong, "srv", env.From, nil)
		return &reply, err
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewTCPClient(fmt.Sprintf("c%d", i))
			defer c.Close()
			c.SetRoute("srv", srv.Addr())
			env, _ := NewEnvelope(MsgPing, c.from, "srv", nil)
			for j := 0; j < 20; j++ {
				if _, err := c.Request(context.Background(), "srv", env); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Property: envelopes survive a JSON frame roundtrip bit-exactly for
// arbitrary measurement payloads.
func TestPropertyFrameRoundtrip(t *testing.T) {
	f := func(actor string, slot int32, kwh float64) bool {
		if kwh != kwh { // NaN does not survive JSON
			return true
		}
		env, err := NewEnvelope(MsgMeasurementReport, "a", "b", MeasurementReport{
			Actor: actor, EnergyType: "demand", Slot: flexoffer.Time(slot), KWh: kwh,
		})
		if err != nil {
			return false
		}
		var buf writableBuffer
		if err := writeFrame(&buf, &env); err != nil {
			return false
		}
		got, err := readFrame(&buf)
		if err != nil {
			return false
		}
		var body MeasurementReport
		if err := got.Decode(MsgMeasurementReport, &body); err != nil {
			return false
		}
		return body.Actor == actor && body.Slot == flexoffer.Time(slot) && body.KWh == kwh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	// A body beyond maxFrame must be rejected on write, not sent.
	huge := Envelope{Type: MsgPing, Body: make([]byte, maxFrame+1)}
	var buf writableBuffer
	if err := writeFrame(&buf, &huge); err == nil {
		t.Error("oversized frame written")
	}
	// A forged oversized header must be rejected on read.
	var hdr writableBuffer
	hdr.data = []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := readFrame(&hdr); err == nil {
		t.Error("oversized frame header accepted")
	}
}

func TestErrorEnvelopeKeepsCorrelation(t *testing.T) {
	in := Envelope{Type: MsgPing, From: "p1", To: "brp1", Seq: 42}
	out := ErrorEnvelope(&in, "brp1", "boom")
	if out.Seq != 42 || out.To != "p1" || out.Type != MsgError {
		t.Errorf("error envelope = %+v", out)
	}
	var body ErrorBody
	if err := out.Decode(MsgError, &body); err != nil || body.Message != "boom" {
		t.Errorf("body = %+v, %v", body, err)
	}
}

// writableBuffer is a minimal io.ReadWriter over a byte slice.
type writableBuffer struct{ data []byte }

func (b *writableBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writableBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}
