package comm

import (
	"fmt"
	"sync"
	"time"
)

// Handler processes an incoming envelope and optionally returns a reply.
// Handlers must be safe for concurrent use.
type Handler func(Envelope) (*Envelope, error)

// Transport moves envelopes between named endpoints.
type Transport interface {
	// Send delivers fire-and-forget; the receiver's reply (if any) is
	// discarded.
	Send(to string, env Envelope) error
	// Request delivers and waits for the handler's reply.
	Request(to string, env Envelope, timeout time.Duration) (Envelope, error)
}

// Bus is the in-process transport: a registry of named endpoints, used
// to simulate large node populations in one process. Handlers run on the
// caller's goroutine for Request and on a fresh goroutine for Send —
// matching the asynchrony of a real network without its flakiness.
type Bus struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewBus returns an empty in-process transport.
func NewBus() *Bus {
	return &Bus{handlers: make(map[string]Handler)}
}

// Register attaches an endpoint. Registering an existing name replaces
// its handler (a restarted node).
func (b *Bus) Register(name string, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers[name] = h
}

// Unregister removes an endpoint (an unreachable node; see the paper's
// graceful-degradation scenario).
func (b *Bus) Unregister(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.handlers, name)
}

// ErrUnreachable is wrapped by Send/Request when the destination is not
// registered.
var ErrUnreachable = fmt.Errorf("comm: destination unreachable")

func (b *Bus) handler(name string) (Handler, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	h, ok := b.handlers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, name)
	}
	return h, nil
}

// Send implements Transport.
func (b *Bus) Send(to string, env Envelope) error {
	h, err := b.handler(to)
	if err != nil {
		return err
	}
	go func() {
		_, _ = h(env)
	}()
	return nil
}

// Request implements Transport.
func (b *Bus) Request(to string, env Envelope, timeout time.Duration) (Envelope, error) {
	h, err := b.handler(to)
	if err != nil {
		return Envelope{}, err
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	type outcome struct {
		reply *Envelope
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := h(env)
		ch <- outcome{r, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			return Envelope{}, o.err
		}
		if o.reply == nil {
			return Envelope{}, fmt.Errorf("comm: %s returned no reply", to)
		}
		return *o.reply, nil
	case <-time.After(timeout):
		return Envelope{}, fmt.Errorf("comm: request to %s timed out after %v", to, timeout)
	}
}

// Endpoints returns the registered endpoint names (diagnostics).
func (b *Bus) Endpoints() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.handlers))
	for name := range b.handlers {
		out = append(out, name)
	}
	return out
}
