package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Handler processes an incoming envelope and optionally returns a reply.
// The context carries the request's cancellation and deadline: handlers
// doing slow work should watch ctx.Done() and bail early. Handlers must
// be safe for concurrent use.
type Handler func(ctx context.Context, env Envelope) (*Envelope, error)

// Transport moves envelopes between named endpoints. Cancellation and
// deadlines travel in the context; a transport with no deadline on the
// context applies DefaultTimeout to requests.
type Transport interface {
	// Send delivers fire-and-forget; the receiver's reply (if any) is
	// discarded.
	Send(ctx context.Context, to string, env Envelope) error
	// Request delivers and waits for the handler's reply or ctx
	// expiry, whichever comes first.
	Request(ctx context.Context, to string, env Envelope) (Envelope, error)
}

// DefaultTimeout bounds a Request whose context carries no deadline.
const DefaultTimeout = 5 * time.Second

// ErrUnreachable is wrapped by Send/Request when the destination is not
// registered (Bus) or has no route (TCPClient). Match with errors.Is.
var ErrUnreachable = errors.New("comm: destination unreachable")

// Bus is the in-process transport: a registry of named endpoints, used
// to simulate large node populations in one process. Handlers run on the
// caller's goroutine context for Request and on a fresh goroutine for
// Send — matching the asynchrony of a real network without its
// flakiness.
type Bus struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewBus returns an empty in-process transport.
func NewBus() *Bus {
	return &Bus{handlers: make(map[string]Handler)}
}

// Register attaches an endpoint. Registering an existing name replaces
// its handler (a restarted node).
func (b *Bus) Register(name string, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers[name] = h
}

// Unregister removes an endpoint (an unreachable node; see the paper's
// graceful-degradation scenario).
func (b *Bus) Unregister(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.handlers, name)
}

func (b *Bus) handler(name string) (Handler, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	h, ok := b.handlers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, name)
	}
	return h, nil
}

// Send implements Transport. The handler runs detached from the
// caller's cancellation (the message is already "on the wire") but
// still sees its values.
func (b *Bus) Send(ctx context.Context, to string, env Envelope) error {
	h, err := b.handler(to)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	detached := context.WithoutCancel(ctx)
	go func() {
		_, _ = h(detached, env)
	}()
	return nil
}

// Request implements Transport. The handler observes ctx directly, so a
// canceled request tells the handler to stop; the worker goroutine
// never blocks on delivering its result (buffered channel), so an
// abandoned request cannot leak it.
func (b *Bus) Request(ctx context.Context, to string, env Envelope) (Envelope, error) {
	h, err := b.handler(to)
	if err != nil {
		return Envelope{}, err
	}
	if err := ctx.Err(); err != nil {
		return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, err)
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultTimeout)
		defer cancel()
	}
	type outcome struct {
		reply *Envelope
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := h(ctx, env)
		ch <- outcome{r, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			return Envelope{}, o.err
		}
		if o.reply == nil {
			// Parity with TCPServer: a handler that returns neither reply
			// nor error gets an empty pong, so fire-and-forget message
			// types can also be delivered acked via Request.
			return Envelope{Type: MsgPong, From: to, To: env.From, Seq: env.Seq}, nil
		}
		return *o.reply, nil
	case <-ctx.Done():
		return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, ctx.Err())
	}
}

// Endpoints returns the registered endpoint names (diagnostics).
func (b *Bus) Endpoints() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.handlers))
	for name := range b.handlers {
		out = append(out, name)
	}
	return out
}
