package comm

import (
	"context"
	"sync"

	"mirabel/internal/flexoffer"
)

// DefaultFanOutLimit bounds the concurrency of the Client's batch
// helpers when the caller passes limit <= 0. It trades goroutine and
// connection pressure against wall time: with l slots, a batch of n
// destinations completes in ceil(n/l) waves of the slowest member.
const DefaultFanOutLimit = 32

// fanOut runs fn(i) for every i in [0, n) with at most limit
// invocations in flight and waits for all of them to finish. fn must
// put its outcome somewhere indexed by i; slots are claimed before a
// goroutine is spawned, so at most limit goroutines ever exist.
func fanOut(n, limit int, fn func(i int)) {
	if n == 0 {
		return
	}
	if limit <= 0 {
		limit = DefaultFanOutLimit
	}
	if limit > n {
		limit = n
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// NotifySchedulesAll delivers each owner's schedules concurrently with
// at most limit (default DefaultFanOutLimit) deliveries in flight. The
// returned map holds one entry per destination that failed; an empty
// map means every owner was notified. Because deliveries overlap, the
// wall time of a batch is bounded by its slowest destination (per wave
// of limit), not by the sum over destinations — the scheduling cycle's
// deliver phase depends on this. The property holds end to end on both
// transports: the Bus dispatches handlers on their own goroutines, and
// the TCP client pipelines concurrent operations over pooled
// connections instead of serializing them behind a client-wide lock.
//
// Cancelling ctx fails the remaining deliveries fast with ctx.Err();
// deliveries already on the wire are not recalled.
func (c *Client) NotifySchedulesAll(ctx context.Context, byOwner map[string][]*flexoffer.Schedule, limit int) map[string]error {
	owners := make([]string, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	errs := make([]error, len(owners))
	fanOut(len(owners), limit, func(i int) {
		errs[i] = c.NotifySchedules(ctx, owners[i], byOwner[owners[i]])
	})
	failed := make(map[string]error)
	for i, err := range errs {
		if err != nil {
			failed[owners[i]] = err
		}
	}
	return failed
}

// SubmitResult pairs one offer of a SubmitOffersAll batch with its
// outcome. Exactly one of Decision and Err is meaningful.
type SubmitResult struct {
	Offer    *flexoffer.FlexOffer
	Decision FlexOfferDecision
	Err      error
}

// SubmitOffersAll submits a batch of flex-offers to one destination
// with at most limit (default DefaultFanOutLimit) requests in flight,
// returning one result per offer in input order.
func (c *Client) SubmitOffersAll(ctx context.Context, to string, offers []*flexoffer.FlexOffer, limit int) []SubmitResult {
	out := make([]SubmitResult, len(offers))
	fanOut(len(offers), limit, func(i int) {
		d, err := c.SubmitOffer(ctx, to, offers[i])
		out[i] = SubmitResult{Offer: offers[i], Decision: d, Err: err}
	})
	return out
}
