package comm

import (
	"context"
	"time"
)

// Latency wraps a transport so every Send and Request waits d before
// touching the wire — an artificially slow network for simulations,
// benchmarks and tests (e.g. proving a scheduling cycle's delivery
// fan-out is bounded by the slowest peer, not the sum). Cancelling ctx
// during the wait fails the operation with ctx.Err().
func Latency(t Transport, d time.Duration) Transport {
	return &latencyTransport{inner: t, d: d}
}

type latencyTransport struct {
	inner Transport
	d     time.Duration
}

func (l *latencyTransport) wait(ctx context.Context) error {
	// time.NewTimer + Stop, not time.After: a canceled wait must release
	// its timer immediately instead of leaking it until expiry (benches
	// fan thousands of these out with shared deadlines).
	t := time.NewTimer(l.d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *latencyTransport) Send(ctx context.Context, to string, env Envelope) error {
	if err := l.wait(ctx); err != nil {
		return err
	}
	return l.inner.Send(ctx, to, env)
}

func (l *latencyTransport) Request(ctx context.Context, to string, env Envelope) (Envelope, error) {
	if err := l.wait(ctx); err != nil {
		return Envelope{}, err
	}
	return l.inner.Request(ctx, to, env)
}
