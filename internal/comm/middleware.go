package comm

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Middleware wraps a Handler with cross-cutting behaviour (recovery,
// logging, metrics, rate-limiting, ...). Middlewares compose with
// Chain and apply uniformly to every message type behind a Mux.
type Middleware func(Handler) Handler

// Chain wraps h in mw, outermost first: Chain(h, A, B) runs A(B(h)).
func Chain(h Handler, mw ...Middleware) Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		if mw[i] != nil {
			h = mw[i](h)
		}
	}
	return h
}

// Recover converts a handler panic into an error, keeping one
// malformed message from taking down a node serving millions of peers.
func Recover() Middleware {
	return func(next Handler) Handler {
		return func(ctx context.Context, env Envelope) (reply *Envelope, err error) {
			defer func() {
				if r := recover(); r != nil {
					reply = nil
					err = fmt.Errorf("comm: handler panic on %s from %s: %v\n%s",
						env.Type, env.From, r, debug.Stack())
				}
			}()
			return next(ctx, env)
		}
	}
}

// Logging reports every handled message to logf with its type, sender,
// latency and outcome.
func Logging(logf func(format string, args ...any)) Middleware {
	return func(next Handler) Handler {
		return func(ctx context.Context, env Envelope) (*Envelope, error) {
			t0 := time.Now()
			reply, err := next(ctx, env)
			status := "ok"
			if err != nil {
				status = "error: " + err.Error()
			}
			logf("comm: %s from %s handled in %v (%s)", env.Type, env.From, time.Since(t0), status)
			return reply, err
		}
	}
}

// TypeMetrics accumulates per-message-type handler statistics.
type TypeMetrics struct {
	Handled    uint64        // messages processed
	Errors     uint64        // handler errors (including recovered panics)
	TotalTime  time.Duration // summed handler latency
	MaxLatency time.Duration // worst single handler latency
}

// Metrics counts handled messages per type; attach it to a handler
// chain with Collect. The zero value is ready to use and safe for
// concurrent handlers.
type Metrics struct {
	mu      sync.RWMutex
	perType map[MsgType]*typeCounters
	handled atomic.Uint64
	errors  atomic.Uint64
}

type typeCounters struct {
	handled atomic.Uint64
	errors  atomic.Uint64
	nanos   atomic.Int64
	maxNano atomic.Int64
}

func (m *Metrics) counters(t MsgType) *typeCounters {
	// Fast path: after warm-up the map is read-only, so the per-message
	// cost is a shared read lock plus atomics.
	m.mu.RLock()
	c, ok := m.perType[t]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.perType == nil {
		m.perType = make(map[MsgType]*typeCounters)
	}
	c, ok = m.perType[t]
	if !ok {
		c = &typeCounters{}
		m.perType[t] = c
	}
	return c
}

// Collect returns a Middleware recording each handled message into m.
func (m *Metrics) Collect() Middleware {
	return func(next Handler) Handler {
		return func(ctx context.Context, env Envelope) (*Envelope, error) {
			t0 := time.Now()
			reply, err := next(ctx, env)
			elapsed := time.Since(t0)
			c := m.counters(env.Type)
			c.handled.Add(1)
			c.nanos.Add(int64(elapsed))
			for {
				prev := c.maxNano.Load()
				if int64(elapsed) <= prev || c.maxNano.CompareAndSwap(prev, int64(elapsed)) {
					break
				}
			}
			m.handled.Add(1)
			if err != nil {
				c.errors.Add(1)
				m.errors.Add(1)
			}
			return reply, err
		}
	}
}

// Handled returns the total number of messages processed.
func (m *Metrics) Handled() uint64 { return m.handled.Load() }

// Errors returns the total number of handler errors.
func (m *Metrics) Errors() uint64 { return m.errors.Load() }

// Snapshot returns a consistent copy of the per-type statistics.
func (m *Metrics) Snapshot() map[MsgType]TypeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[MsgType]TypeMetrics, len(m.perType))
	for t, c := range m.perType {
		out[t] = TypeMetrics{
			Handled:    c.handled.Load(),
			Errors:     c.errors.Load(),
			TotalTime:  time.Duration(c.nanos.Load()),
			MaxLatency: time.Duration(c.maxNano.Load()),
		}
	}
	return out
}
