package comm

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds a single message (16 MiB) — a macro flex-offer batch
// fits comfortably; anything larger indicates a protocol error.
const maxFrame = 16 << 20

// writeFrame writes a length-prefixed JSON frame.
func writeFrame(w io.Writer, env *Envelope) error {
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("comm: marshal frame: %w", err)
	}
	if len(raw) > maxFrame {
		return fmt.Errorf("comm: frame of %d bytes exceeds limit", len(raw))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(raw)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// readFrame reads one length-prefixed JSON frame.
func readFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Envelope{}, fmt.Errorf("comm: frame of %d bytes exceeds limit", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return Envelope{}, fmt.Errorf("comm: unmarshal frame: %w", err)
	}
	return env, nil
}

// TCPServer serves a node endpoint over TCP. Handlers receive a context
// that is canceled when the server shuts down, so in-flight work stops
// with the listener.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
}

// ListenTCP starts serving handler on addr (e.g. "127.0.0.1:0"); use
// Addr() for the bound address.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &TCPServer{ln: ln, handler: h, baseCtx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close cancels in-flight handlers, stops the listener, drops open
// connections and waits for their goroutines.
func (s *TCPServer) Close() error {
	s.cancel()
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one connection: a stream of request frames, each
// answered by a reply frame (MsgError on handler failure, an empty pong
// frame for fire-and-forget handlers that return nil).
func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		env, err := readFrame(r)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		reply, err := s.handler(s.baseCtx, env)
		switch {
		case err != nil:
			e := ErrorEnvelope(&env, env.To, err.Error())
			reply = &e
		case reply == nil:
			reply = &Envelope{Type: MsgPong, From: env.To, To: env.From, Seq: env.Seq}
		default:
			reply.Seq = env.Seq
		}
		if err := writeFrame(w, reply); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// TCPClient is a Transport over TCP: it maps endpoint names to addresses
// and keeps one pooled connection per destination.
type TCPClient struct {
	from  string
	mu    sync.Mutex
	addrs map[string]string
	conns map[string]net.Conn
	seq   uint64
}

// NewTCPClient returns a client identifying itself as from.
func NewTCPClient(from string) *TCPClient {
	return &TCPClient{from: from, addrs: make(map[string]string), conns: make(map[string]net.Conn)}
}

// SetRoute maps an endpoint name to a TCP address.
func (c *TCPClient) SetRoute(name, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs[name] = addr
}

// Close drops all pooled connections.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, conn := range c.conns {
		conn.Close()
		delete(c.conns, name)
	}
	return nil
}

// roundTrip sends env and reads the reply over the pooled connection,
// redialing once on a stale connection. The context's deadline maps
// onto the connection deadline; cancellation mid-flight unblocks the
// pending read/write immediately.
func (c *TCPClient) roundTrip(ctx context.Context, to string, env Envelope) (Envelope, error) {
	if err := ctx.Err(); err != nil {
		return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, err)
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultTimeout)
		defer cancel()
	}
	deadline, _ := ctx.Deadline()

	c.mu.Lock()
	defer c.mu.Unlock()
	addr, ok := c.addrs[to]
	if !ok {
		return Envelope{}, fmt.Errorf("%w: no route to %s", ErrUnreachable, to)
	}
	c.seq++
	env.Seq = c.seq
	env.From = c.from
	env.To = to

	for attempt := 0; attempt < 2; attempt++ {
		conn := c.conns[to]
		if conn == nil {
			var err error
			var d net.Dialer
			conn, err = d.DialContext(ctx, "tcp", addr)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return Envelope{}, fmt.Errorf("comm: dial %s: %w", addr, cerr)
				}
				return Envelope{}, fmt.Errorf("comm: dial %s: %w", addr, err)
			}
			c.conns[to] = conn
		}
		conn.SetDeadline(deadline)
		// Cancellation mid-flight: expire the connection deadline so a
		// blocked read/write returns now instead of at the deadline.
		stop := context.AfterFunc(ctx, func() {
			conn.SetDeadline(time.Unix(1, 0))
		})
		if err := writeFrame(conn, &env); err != nil {
			stop()
			conn.Close()
			delete(c.conns, to)
			if cerr := ctx.Err(); cerr != nil {
				return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, cerr)
			}
			continue // stale pooled connection: retry once on a fresh dial
		}
		reply, err := readFrame(conn)
		if !stop() && err == nil {
			// The cancel callback already started: it may expire the
			// deadline after a later request resets it. Don't pool a
			// connection that can be poisoned under the next caller.
			conn.Close()
			delete(c.conns, to)
			return reply, nil
		}
		if err != nil {
			conn.Close()
			delete(c.conns, to)
			if cerr := ctx.Err(); cerr != nil {
				return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, cerr)
			}
			if attempt == 1 {
				return Envelope{}, fmt.Errorf("comm: read reply from %s: %w", to, err)
			}
			continue
		}
		return reply, nil
	}
	return Envelope{}, fmt.Errorf("comm: request to %s failed after retry", to)
}

// Send implements Transport (the reply frame is read and discarded to
// keep the stream in lock-step).
func (c *TCPClient) Send(ctx context.Context, to string, env Envelope) error {
	_, err := c.roundTrip(ctx, to, env)
	return err
}

// Request implements Transport.
func (c *TCPClient) Request(ctx context.Context, to string, env Envelope) (Envelope, error) {
	reply, err := c.roundTrip(ctx, to, env)
	if err != nil {
		return Envelope{}, err
	}
	if reply.Type == MsgError {
		var body ErrorBody
		if derr := reply.Decode(MsgError, &body); derr == nil {
			return reply, fmt.Errorf("comm: remote error from %s: %s", to, body.Message)
		}
		return reply, fmt.Errorf("comm: remote error from %s", to)
	}
	return reply, nil
}
