package comm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxFrame bounds a single message (16 MiB) — a macro flex-offer batch
// fits comfortably; anything larger indicates a protocol error.
const maxFrame = 16 << 20

// maxPooledFrameBuf bounds the encode buffers kept in the frame pool;
// the occasional huge frame is allocated once and dropped instead of
// pinning megabytes behind the pool.
const maxPooledFrameBuf = 1 << 20

// framePool recycles frame encode buffers: steady-state traffic writes
// frames without allocating a fresh payload buffer per message.
var framePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeFrame writes a length-prefixed JSON frame. Header and payload are
// encoded into a pooled buffer and flushed as a single Write, so a frame
// costs one syscall and no per-frame payload allocation.
func writeFrame(w io.Writer, env *Envelope) error {
	buf := framePool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxPooledFrameBuf {
			framePool.Put(buf)
		}
	}()
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := json.NewEncoder(buf).Encode(env); err != nil {
		return fmt.Errorf("comm: marshal frame: %w", err)
	}
	// The encoder's trailing newline stays inside the frame; it is
	// insignificant JSON whitespace to the decoder.
	n := buf.Len() - 4
	if n > maxFrame {
		return fmt.Errorf("comm: frame of %d bytes exceeds limit", n)
	}
	raw := buf.Bytes()
	binary.BigEndian.PutUint32(raw[:4], uint32(n))
	_, err := w.Write(raw)
	return err
}

// readFrameBuf reads one length-prefixed JSON frame, reusing *scratch as
// the payload buffer across calls (it grows to the largest frame seen).
// Reuse is safe because decoding copies every byte it keeps — strings by
// definition and the Body via json.RawMessage's copying UnmarshalJSON.
func readFrameBuf(r io.Reader, scratch *[]byte) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Envelope{}, fmt.Errorf("comm: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	raw := (*scratch)[:n]
	if _, err := io.ReadFull(r, raw); err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return Envelope{}, fmt.Errorf("comm: unmarshal frame: %w", err)
	}
	return env, nil
}

// readFrame reads one length-prefixed JSON frame with a throwaway
// buffer (loops should hold a scratch buffer and use readFrameBuf).
func readFrame(r io.Reader) (Envelope, error) {
	var scratch []byte
	return readFrameBuf(r, &scratch)
}

// DefaultServerConcurrency bounds how many handlers a TCPServer runs
// concurrently per connection, so a pipelined client is not serialized
// server-side while a runaway peer cannot fork unbounded goroutines.
const DefaultServerConcurrency = 32

// TCPServer serves a node endpoint over TCP. Handlers receive a context
// that is canceled when the server shuts down, so in-flight work stops
// with the listener. Requests arriving on one connection are dispatched
// concurrently (bounded by WithServerConcurrency) and replies carry the
// request's Seq, so they may return out of order; clients correlate by
// Seq.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	baseCtx context.Context
	cancel  context.CancelFunc
	perConn int
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
}

// TCPServerOption customizes a TCPServer.
type TCPServerOption func(*TCPServer)

// WithServerConcurrency bounds the handlers dispatched concurrently per
// connection (default DefaultServerConcurrency); 1 restores strictly
// serial per-connection handling.
func WithServerConcurrency(n int) TCPServerOption {
	return func(s *TCPServer) {
		if n > 0 {
			s.perConn = n
		}
	}
}

// ListenTCP starts serving handler on addr (e.g. "127.0.0.1:0"); use
// Addr() for the bound address.
func ListenTCP(addr string, h Handler, opts ...TCPServerOption) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &TCPServer{ln: ln, handler: h, baseCtx: ctx, cancel: cancel, perConn: DefaultServerConcurrency, conns: make(map[net.Conn]struct{})}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close cancels in-flight handlers, stops the listener, drops open
// connections and waits for their goroutines.
func (s *TCPServer) Close() error {
	s.cancel()
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one connection: a stream of request frames, each
// dispatched to a handler goroutine (at most perConn in flight) whose
// reply frame (MsgError on handler failure, an empty pong frame for
// fire-and-forget handlers that return nil) is written back under a
// per-connection write lock, tagged with the request's Seq.
func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var hwg sync.WaitGroup
	defer func() {
		hwg.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	var wmu sync.Mutex // one reply frame at a time onto the shared conn
	sem := make(chan struct{}, s.perConn)
	var scratch []byte
	for {
		env, err := readFrameBuf(r, &scratch)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		sem <- struct{}{}
		hwg.Add(1)
		go func(env Envelope) {
			defer hwg.Done()
			defer func() { <-sem }()
			reply, err := s.handler(s.baseCtx, env)
			switch {
			case err != nil:
				e := ErrorEnvelope(&env, env.To, err.Error())
				reply = &e
			case reply == nil:
				reply = &Envelope{Type: MsgPong, From: env.To, To: env.From, Seq: env.Seq}
			default:
				reply.Seq = env.Seq
			}
			wmu.Lock()
			werr := writeFrame(conn, reply)
			wmu.Unlock()
			if werr != nil {
				conn.Close() // broken pipe: unblock the read loop too
			}
		}(env)
	}
}

// TransportStats counts a TCPClient's connection and request activity.
type TransportStats struct {
	// Dials is the number of connections established.
	Dials uint64
	// Reuses counts operations served over an already-pooled connection.
	Reuses uint64
	// Requests and Sends count round trips and fire-and-forget frames.
	Requests uint64
	Sends    uint64
	// InFlight is the number of requests currently awaiting a correlated
	// reply (point-in-time gauge).
	InFlight int64
}

// DefaultPoolSize is the per-destination connection pool bound of a
// TCPClient. With Seq-correlated pipelining one connection already
// overlaps many requests; a few connections add parallel TCP streams
// (independent head-of-line blocking, kernel buffers) per peer.
const DefaultPoolSize = 4

// TCPClient is a Transport over TCP: it maps endpoint names to addresses
// and keeps a bounded pool of pipelined connections per destination.
//
// Requests are correlated to replies by Envelope.Seq, so any number of
// requests can be in flight on one connection at once: a demux goroutine
// per connection routes each arriving reply to its waiter. The client
// mutex guards only the route and pool maps — never any I/O — so
// concurrent Requests to one or many destinations overlap fully and the
// wall time of a fan-out wave is bounded by its slowest peer, not the
// sum (the property the scheduling cycle's deliver phase depends on,
// now preserved over real TCP).
//
// Send is true fire-and-forget: the frame is written and the server's
// pong is later discarded by the demux loop, so Send never waits for
// the handler to run.
//
// Cancellation: a canceled Request deregisters its waiter and returns
// immediately; the connection stays pooled and healthy (the late reply
// is demuxed to no one and dropped).
//
// The client itself never re-attempts an operation — it only
// classifies failures: errors from before the frame could have reached
// the peer (failed dial, dead pooled connection caught at registration
// or during the frame write) wrap ErrNotSent, everything later is
// ambiguous. Wrap the client in a Retry transport to heal stale pooled
// connections with an immediate redial; that is the single retry code
// path of the fabric.
type TCPClient struct {
	from     string
	poolSize int

	mu    sync.RWMutex // guards addrs and pools maps only
	addrs map[string]string
	pools map[string]*connPool

	seq      atomic.Uint64
	dials    atomic.Uint64
	reuses   atomic.Uint64
	requests atomic.Uint64
	sends    atomic.Uint64
	inFlight atomic.Int64
}

// TCPClientOption customizes a TCPClient.
type TCPClientOption func(*TCPClient)

// WithPoolSize bounds the connections pooled per destination (default
// DefaultPoolSize); 1 pipelines everything over a single connection.
func WithPoolSize(n int) TCPClientOption {
	return func(c *TCPClient) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// NewTCPClient returns a client identifying itself as from.
func NewTCPClient(from string, opts ...TCPClientOption) *TCPClient {
	c := &TCPClient{from: from, poolSize: DefaultPoolSize, addrs: make(map[string]string), pools: make(map[string]*connPool)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// SetRoute maps an endpoint name to a TCP address. Re-routing a name to
// a new address drops the pooled connections to the old one.
func (c *TCPClient) SetRoute(name, addr string) {
	c.mu.Lock()
	c.addrs[name] = addr
	var stale *connPool
	if p, ok := c.pools[name]; ok && p.addr != addr {
		delete(c.pools, name)
		stale = p
	}
	c.mu.Unlock()
	if stale != nil {
		stale.closeAll(errors.New("comm: route replaced"))
	}
}

// Stats returns a point-in-time copy of the client's transport counters.
func (c *TCPClient) Stats() TransportStats {
	return TransportStats{
		Dials:    c.dials.Load(),
		Reuses:   c.reuses.Load(),
		Requests: c.requests.Load(),
		Sends:    c.sends.Load(),
		InFlight: c.inFlight.Load(),
	}
}

// Close drops all pooled connections; in-flight requests fail.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	pools := c.pools
	c.pools = make(map[string]*connPool)
	c.mu.Unlock()
	for _, p := range pools {
		p.closeAll(errors.New("comm: client closed"))
	}
	return nil
}

// pool resolves the destination's connection pool, creating it lazily.
func (c *TCPClient) pool(to string) (*connPool, error) {
	c.mu.RLock()
	p, ok := c.pools[to]
	c.mu.RUnlock()
	if ok {
		return p, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	addr, ok := c.addrs[to]
	if !ok {
		return nil, fmt.Errorf("%w: no route to %s", ErrUnreachable, to)
	}
	if p, ok := c.pools[to]; ok {
		return p, nil
	}
	p = &connPool{client: c, addr: addr, max: c.poolSize}
	c.pools[to] = p
	return p, nil
}

// Send implements Transport: fire-and-forget. The frame is on the wire
// when Send returns; the handler runs asynchronously on the server and
// its pong reply is discarded by the connection's demux loop.
func (c *TCPClient) Send(ctx context.Context, to string, env Envelope) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("comm: send to %s: %w", to, err)
	}
	// Fire-and-forget still bounds its dial and frame write: a stalled
	// peer must not wedge the sender forever just because the caller
	// carried no deadline.
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultTimeout)
		defer cancel()
	}
	pool, err := c.pool(to)
	if err != nil {
		return err
	}
	env.Seq = c.seq.Add(1)
	env.From = c.from
	env.To = to
	conn, err := pool.get(ctx)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("comm: send to %s: %w", to, cerr)
		}
		return fmt.Errorf("comm: dial %s: %w (%w)", pool.addr, err, ErrNotSent)
	}
	if err := conn.write(ctx, &env); err != nil {
		conn.fail(err)
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("comm: send to %s: %w", to, cerr)
		}
		// A failed frame write never delivers a complete frame, so the
		// server drops the connection without running the handler.
		return fmt.Errorf("comm: send to %s: %w (%w)", to, err, ErrNotSent)
	}
	c.sends.Add(1)
	return nil
}

// Request implements Transport.
func (c *TCPClient) Request(ctx context.Context, to string, env Envelope) (Envelope, error) {
	reply, err := c.roundTrip(ctx, to, env)
	if err != nil {
		return Envelope{}, err
	}
	if reply.Type == MsgError {
		var body ErrorBody
		if derr := reply.Decode(MsgError, &body); derr == nil {
			return reply, fmt.Errorf("comm: remote error from %s: %s", to, body.Message)
		}
		return reply, fmt.Errorf("comm: remote error from %s", to)
	}
	return reply, nil
}

// roundTrip sends env and waits for the reply carrying the same Seq.
// The request holds no locks while in flight: it registers a waiter on
// a pooled connection, writes its frame, and blocks on its own reply
// channel, so any number of round trips overlap per connection.
// Cancellation mid-flight deregisters the waiter and returns
// immediately without disturbing the connection.
func (c *TCPClient) roundTrip(ctx context.Context, to string, env Envelope) (Envelope, error) {
	if err := ctx.Err(); err != nil {
		return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, err)
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultTimeout)
		defer cancel()
	}
	pool, err := c.pool(to)
	if err != nil {
		return Envelope{}, err
	}
	c.requests.Add(1)
	seq := c.seq.Add(1)
	env.Seq = seq
	env.From = c.from
	env.To = to

	conn, err := pool.get(ctx)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, cerr)
		}
		return Envelope{}, fmt.Errorf("comm: dial %s: %w (%w)", pool.addr, err, ErrNotSent)
	}
	ch, err := conn.register(seq)
	if err != nil {
		// The pooled connection died between get and register: the frame
		// was never written.
		return Envelope{}, fmt.Errorf("comm: request to %s: %w (%w)", to, err, ErrNotSent)
	}
	c.inFlight.Add(1)
	if err := conn.write(ctx, &env); err != nil {
		c.inFlight.Add(-1)
		conn.deregister(seq)
		conn.fail(err)
		if cerr := ctx.Err(); cerr != nil {
			return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, cerr)
		}
		return Envelope{}, fmt.Errorf("comm: request to %s: %w (%w)", to, err, ErrNotSent)
	}
	select {
	case reply, ok := <-ch:
		c.inFlight.Add(-1)
		if !ok {
			// The connection died before the reply arrived — ambiguous:
			// the server may or may not have processed the frame, so no
			// ErrNotSent here.
			return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, conn.failure())
		}
		return reply, nil
	case <-ctx.Done():
		c.inFlight.Add(-1)
		conn.deregister(seq)
		return Envelope{}, fmt.Errorf("comm: request to %s: %w", to, ctx.Err())
	}
}

// connPool is the bounded set of live connections to one destination.
// Its lock covers only slice bookkeeping and the dial decision — every
// byte of I/O happens outside it, on the connections themselves.
type connPool struct {
	client *TCPClient
	addr   string
	max    int

	mu      sync.Mutex
	dialed  sync.Cond // signaled when an in-progress dial settles
	conns   []*tcpConn
	dialing int // dials in progress, counted against max
	rr      int // round-robin cursor for equally-loaded connections
}

// get picks the least-loaded pooled connection, dialing a new one when
// every pooled connection is busy and the pool is under its bound.
// Callers racing for an empty, fully-dialing pool wait for one of the
// in-progress dials to settle instead of exceeding the bound.
func (p *connPool) get(ctx context.Context) (*tcpConn, error) {
	p.mu.Lock()
	if p.dialed.L == nil {
		p.dialed.L = &p.mu
	}
	for {
		if err := ctx.Err(); err != nil {
			p.mu.Unlock()
			return nil, err
		}
		var best *tcpConn
		bestLoad := 0
		if n := len(p.conns); n > 0 {
			p.rr++
			start := p.rr % n
			best = p.conns[start]
			bestLoad = best.load()
			for i := 1; i < n && bestLoad > 0; i++ {
				c := p.conns[(start+i)%n]
				if l := c.load(); l < bestLoad {
					best, bestLoad = c, l
				}
			}
		}
		saturated := len(p.conns)+p.dialing >= p.max
		if best != nil && (bestLoad == 0 || saturated) {
			p.mu.Unlock()
			p.client.reuses.Add(1)
			return best, nil
		}
		if !saturated {
			break // dial a new connection below
		}
		// No live connection and the bound is consumed by in-progress
		// dials: wait for one to settle (every settling dial
		// broadcasts). The caller's own cancellation broadcasts too, so
		// a canceled waiter wakes immediately — the loop top returns its
		// ctx.Err() — instead of sitting out someone else's dial.
		stop := context.AfterFunc(ctx, func() {
			p.mu.Lock()
			p.dialed.Broadcast()
			p.mu.Unlock()
		})
		p.dialed.Wait()
		stop()
	}
	p.dialing++
	p.mu.Unlock()

	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", p.addr)
	p.mu.Lock()
	p.dialing--
	if err != nil {
		p.dialed.Broadcast()
		p.mu.Unlock()
		return nil, err
	}
	conn := &tcpConn{pool: p, nc: nc, waiters: make(map[uint64]chan Envelope)}
	p.conns = append(p.conns, conn)
	p.dialed.Broadcast()
	p.mu.Unlock()
	p.client.dials.Add(1)
	go conn.readLoop()
	return conn, nil
}

// remove drops a dead connection from the pool.
func (p *connPool) remove(c *tcpConn) {
	p.mu.Lock()
	for i, pc := range p.conns {
		if pc == c {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// closeAll tears down every pooled connection, failing their waiters.
func (p *connPool) closeAll(err error) {
	p.mu.Lock()
	conns := append([]*tcpConn(nil), p.conns...)
	p.mu.Unlock()
	for _, c := range conns {
		c.fail(err)
	}
}

// tcpConn is one pipelined connection. A write mutex serializes outbound
// frames; a demux goroutine owns all reads and routes each reply to the
// waiter registered under its Seq. Replies whose Seq has no waiter — a
// fire-and-forget pong, the late reply of a canceled request, or a
// misbehaving server echoing a wrong Seq — are dropped.
type tcpConn struct {
	pool *connPool
	nc   net.Conn

	wmu sync.Mutex // serializes writeFrame calls onto nc

	mu      sync.Mutex
	waiters map[uint64]chan Envelope
	err     error // set once, when the connection dies
}

// load returns the number of replies this connection is waiting on.
func (c *tcpConn) load() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// register adds a reply waiter for seq; fails if the connection died.
func (c *tcpConn) register(seq uint64) (chan Envelope, error) {
	ch := make(chan Envelope, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	c.waiters[seq] = ch
	return ch, nil
}

// deregister abandons a reply waiter (cancellation); the reply, if it
// ever arrives, is dropped by the demux loop.
func (c *tcpConn) deregister(seq uint64) {
	c.mu.Lock()
	delete(c.waiters, seq)
	c.mu.Unlock()
}

// failure returns the error the connection died with.
func (c *tcpConn) failure() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return errors.New("comm: connection failed")
}

// write sends one frame under the write lock. The context's deadline
// maps onto the write deadline (writes are serialized, so each write
// configures its own); cancellation mid-write expires it early. A
// cancellation that fires in the narrow window after this write
// completes may poison the deadline of the next writer — that write
// fails, tears the connection down and its caller retries on a fresh
// one, so the pool heals itself.
func (c *tcpConn) write(ctx context.Context, env *Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	deadline, _ := ctx.Deadline() // zero time clears any stale deadline
	c.nc.SetWriteDeadline(deadline)
	stop := context.AfterFunc(ctx, func() {
		c.nc.SetWriteDeadline(time.Unix(1, 0))
	})
	err := writeFrame(c.nc, env)
	stop()
	return err
}

// fail kills the connection: removes it from the pool, closes the
// socket (unblocking the demux read) and fails every pending waiter.
func (c *tcpConn) fail(err error) {
	c.pool.remove(c)
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	waiters := c.waiters
	c.waiters = nil
	c.mu.Unlock()
	c.nc.Close()
	for _, ch := range waiters {
		close(ch) // a closed reply channel signals connection failure
	}
}

// readLoop is the connection's demux goroutine: it owns all reads and
// delivers each reply to the waiter registered under its Seq. It exits
// — failing all remaining waiters — when the connection breaks.
func (c *tcpConn) readLoop() {
	r := bufio.NewReader(c.nc)
	var scratch []byte
	for {
		env, err := readFrameBuf(r, &scratch)
		if err != nil {
			c.fail(fmt.Errorf("comm: connection to %s lost: %w", c.pool.addr, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.waiters[env.Seq]
		if ok {
			delete(c.waiters, env.Seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- env // buffered; at most one reply is ever delivered per waiter
		}
	}
}
