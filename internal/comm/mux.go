package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrNoHandler is wrapped when a Mux receives a message type nothing
// registered for. Match with errors.Is.
var ErrNoHandler = errors.New("comm: no handler for message type")

// Mux dispatches envelopes to per-MsgType handlers — the node fabric's
// replacement for monolithic type switches. Register handlers with
// Handle, then attach mux.Serve (optionally wrapped in middleware via
// Chain) to a transport.
type Mux struct {
	mu       sync.RWMutex
	handlers map[MsgType]Handler
	fallback Handler
}

// NewMux returns an empty dispatch registry.
func NewMux() *Mux {
	return &Mux{handlers: make(map[MsgType]Handler)}
}

// Handle registers h for message type t, replacing any previous
// registration. It panics on a nil handler — registration is wiring,
// not data flow.
func (m *Mux) Handle(t MsgType, h Handler) {
	if h == nil {
		panic(fmt.Sprintf("comm: nil handler for %s", t))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[t] = h
}

// HandleFallback registers a handler for message types with no explicit
// registration (nil restores the default ErrNoHandler behaviour).
func (m *Mux) HandleFallback(h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fallback = h
}

// Types returns the registered message types (diagnostics).
func (m *Mux) Types() []MsgType {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]MsgType, 0, len(m.handlers))
	for t := range m.handlers {
		out = append(out, t)
	}
	return out
}

// Serve is a Handler: it routes env to the handler registered for its
// type.
func (m *Mux) Serve(ctx context.Context, env Envelope) (*Envelope, error) {
	m.mu.RLock()
	h, ok := m.handlers[env.Type]
	if !ok {
		h = m.fallback
	}
	m.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoHandler, env.Type)
	}
	return h(ctx, env)
}
