package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedTransport scripts per-call outcomes and counts entries, for
// driving the retry policy without sockets.
type scriptedTransport struct {
	calls    atomic.Int32
	inFlight atomic.Int32
	fn       func(call int) error
	block    chan struct{} // when non-nil, calls park here before returning
}

func (s *scriptedTransport) do(ctx context.Context) error {
	n := int(s.calls.Add(1))
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return s.fn(n)
}

func (s *scriptedTransport) Send(ctx context.Context, to string, env Envelope) error {
	return s.do(ctx)
}

func (s *scriptedTransport) Request(ctx context.Context, to string, env Envelope) (Envelope, error) {
	if err := s.do(ctx); err != nil {
		return Envelope{}, err
	}
	return Envelope{Type: MsgPong, From: to, To: env.From, Seq: env.Seq}, nil
}

func pingEnv(t *testing.T) Envelope {
	t.Helper()
	env, err := NewEnvelope(MsgPing, "a", "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestRetryHealsNotSent: a provably-unsent failure is retried
// immediately — no backoff sleep — matching the old stale-pool heal.
func TestRetryHealsNotSent(t *testing.T) {
	st := &scriptedTransport{fn: func(call int) error {
		if call == 1 {
			return fmt.Errorf("stale conn: %w", ErrNotSent)
		}
		return nil
	}}
	rt := NewRetry(st, RetryConfig{BaseBackoff: time.Second})
	t0 := time.Now()
	if _, err := rt.Request(context.Background(), "b", pingEnv(t)); err != nil {
		t.Fatalf("request: %v", err)
	}
	if d := time.Since(t0); d > 200*time.Millisecond {
		t.Errorf("heal took %v; the first not-sent retry must not sleep", d)
	}
	rs := rt.Stats()
	if rs.Retries != 1 || rs.Backoff != 0 {
		t.Errorf("stats = %+v, want 1 retry with zero backoff", rs)
	}
}

// TestRetryClassification: ambiguous failures retry only idempotent
// message types; a flex-offer submission is abandoned instead of risking
// a duplicate-ID rejection, unless the failure proves it never left.
func TestRetryClassification(t *testing.T) {
	ambiguous := errors.New("connection lost awaiting reply")

	st := &scriptedTransport{fn: func(int) error { return ambiguous }}
	rt := NewRetry(st, RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	offer, _ := NewEnvelope(MsgFlexOfferSubmit, "a", "b", nil)
	if _, err := rt.Request(context.Background(), "b", offer); !errors.Is(err, ambiguous) {
		t.Fatalf("err = %v, want the ambiguous failure surfaced", err)
	}
	if n := st.calls.Load(); n != 1 {
		t.Errorf("inner calls = %d, want 1 (non-idempotent op must not retry)", n)
	}
	if rs := rt.Stats(); rs.NonRetryable != 1 {
		t.Errorf("stats = %+v, want 1 non-retryable", rs)
	}

	// The same ambiguous failure on an idempotent type retries.
	st2 := &scriptedTransport{fn: func(call int) error {
		if call < 3 {
			return ambiguous
		}
		return nil
	}}
	rt2 := NewRetry(st2, RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	if _, err := rt2.Request(context.Background(), "b", pingEnv(t)); err != nil {
		t.Fatalf("request: %v", err)
	}
	if n := st2.calls.Load(); n != 3 {
		t.Errorf("inner calls = %d, want 3", n)
	}

	// A not-sent failure makes even the submission retryable.
	st3 := &scriptedTransport{fn: func(call int) error {
		if call == 1 {
			return fmt.Errorf("dial refused: %w", ErrNotSent)
		}
		return nil
	}}
	rt3 := NewRetry(st3, RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	if _, err := rt3.Request(context.Background(), "b", offer); err != nil {
		t.Fatalf("request: %v", err)
	}
	if n := st3.calls.Load(); n != 2 {
		t.Errorf("inner calls = %d, want 2", n)
	}
}

// TestRetryExhausted: a persistently failing destination consumes
// exactly MaxAttempts inner calls.
func TestRetryExhausted(t *testing.T) {
	st := &scriptedTransport{fn: func(int) error {
		return fmt.Errorf("down: %w", ErrNotSent)
	}}
	rt := NewRetry(st, RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	if _, err := rt.Request(context.Background(), "b", pingEnv(t)); !errors.Is(err, ErrNotSent) {
		t.Fatalf("err = %v, want wrapped ErrNotSent", err)
	}
	if n := st.calls.Load(); n != 3 {
		t.Errorf("inner calls = %d, want 3", n)
	}
	if rs := rt.Stats(); rs.Exhausted != 1 || rs.Retries != 2 {
		t.Errorf("stats = %+v, want exhausted=1 retries=2", rs)
	}
}

// TestRetryBreakerShortCircuit: an open circuit fails the whole call
// instantly — no backoff sleep, no extra traffic at the inner transport.
func TestRetryBreakerShortCircuit(t *testing.T) {
	st := &scriptedTransport{fn: func(int) error { return errors.New("peer down") }}
	br := NewBreaker(st, BreakerConfig{MinSamples: 1, FailureRate: 0.5, Cooldown: time.Hour})
	rt := NewRetry(br, RetryConfig{MaxAttempts: 5, BaseBackoff: 300 * time.Millisecond})

	// First call: attempt 1 fails at the peer and trips the circuit;
	// the retry (after its one backoff sleep) hits the open circuit and
	// aborts the call instead of burning its remaining attempts.
	_, err := rt.Request(context.Background(), "b", pingEnv(t))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen once the circuit trips mid-retry", err)
	}
	if n := st.calls.Load(); n != 1 {
		t.Errorf("inner calls = %d, want 1 (retries must not reach an open circuit)", n)
	}

	// Subsequent calls short-circuit instantly — no backoff sleep (the
	// 300ms base would show), no inner traffic, no retry storm.
	t0 := time.Now()
	if _, err := rt.Request(context.Background(), "b", pingEnv(t)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if d := time.Since(t0); d > 200*time.Millisecond {
		t.Errorf("short-circuit took %v, want instant failure", d)
	}
	if n := st.calls.Load(); n != 1 {
		t.Errorf("inner calls = %d, want still 1", n)
	}
	if rs := rt.Stats(); rs.ShortCircuits != 2 {
		t.Errorf("stats = %+v, want 2 short-circuits", rs)
	}
}

// TestRetryBreakerHalfOpenSingleTrial: after the cooldown, exactly one
// of many concurrent retry-wrapped callers wins the half-open trial; the
// losers short-circuit instead of queuing retries behind it.
func TestRetryBreakerHalfOpenSingleTrial(t *testing.T) {
	release := make(chan struct{})
	var failing atomic.Bool
	failing.Store(true)
	st := &scriptedTransport{fn: func(int) error {
		if failing.Load() {
			return errors.New("peer down")
		}
		return nil
	}}
	br := NewBreaker(st, BreakerConfig{MinSamples: 1, FailureRate: 0.5, Cooldown: 20 * time.Millisecond})
	rt := NewRetry(br, RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond})

	// Trip the circuit.
	if _, err := rt.Request(context.Background(), "b", pingEnv(t)); err == nil {
		t.Fatal("expected failure while peer is down")
	}
	tripCalls := st.calls.Load()
	time.Sleep(40 * time.Millisecond) // let the cooldown elapse

	// Peer heals, but the trial parks at the inner transport so the
	// race window stays open while the other callers arrive.
	failing.Store(false)
	st.block = release

	const callers = 8
	var (
		wg        sync.WaitGroup
		successes atomic.Int32
		rejected  atomic.Int32
	)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := rt.Request(context.Background(), "b", pingEnv(t))
			switch {
			case err == nil:
				successes.Add(1)
			case errors.Is(err, ErrBreakerOpen):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	close(start)

	// Wait for the trial winner to park, then give every loser time to
	// hit the circuit; none may reach the inner transport.
	deadline := time.Now().Add(2 * time.Second)
	for st.inFlight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if n := st.calls.Load() - tripCalls; n != 1 {
		t.Errorf("inner calls during half-open = %d, want exactly the single trial", n)
	}
	close(release)
	wg.Wait()

	if successes.Load() != 1 || rejected.Load() != callers-1 {
		t.Errorf("successes = %d rejected = %d, want 1 and %d", successes.Load(), rejected.Load(), callers-1)
	}
	if s := br.State("b"); s != BreakerClosed {
		t.Errorf("state = %v, want closed after the trial succeeded", s)
	}
}

// TestRetryJitter: the jitter stream is deterministic per seed and stays
// within ±JitterFrac of the nominal backoff.
func TestRetryJitter(t *testing.T) {
	a := NewRetry(nil, RetryConfig{Seed: 42, JitterFrac: 0.5})
	b := NewRetry(nil, RetryConfig{Seed: 42, JitterFrac: 0.5})
	base := 100 * time.Millisecond
	for i := 0; i < 64; i++ {
		da, db := a.jitter(base), b.jitter(base)
		if da != db {
			t.Fatalf("draw %d: %v != %v; same seed must give the same stream", i, da, db)
		}
		if da < 50*time.Millisecond || da > 150*time.Millisecond {
			t.Fatalf("draw %d: %v outside ±50%% of %v", i, da, base)
		}
	}
	c := NewRetry(nil, RetryConfig{Seed: 43, JitterFrac: 0.5})
	same := true
	for i := 0; i < 8; i++ {
		if a.jitter(base) != c.jitter(base) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter streams")
	}
}

// TestRetryDeadlineBudget: the caller's deadline caps the whole retry
// chain, and AttemptTimeout carves per-attempt budgets out of it.
func TestRetryDeadlineBudget(t *testing.T) {
	st := &scriptedTransport{fn: func(int) error {
		return fmt.Errorf("down: %w", ErrNotSent)
	}}
	rt := NewRetry(st, RetryConfig{MaxAttempts: 100, BaseBackoff: 30 * time.Millisecond, Multiplier: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := rt.Request(ctx, "b", pingEnv(t))
	if err == nil {
		t.Fatal("expected failure")
	}
	if d := time.Since(t0); d > time.Second {
		t.Errorf("retry chain ran %v past a 120ms budget", d)
	}
	if n := st.calls.Load(); n >= 100 {
		t.Errorf("inner calls = %d, want far fewer than MaxAttempts within the budget", n)
	}

	// AttemptTimeout: a hung attempt is cut off so the next one runs.
	hung := &scriptedTransport{block: make(chan struct{}), fn: func(int) error { return nil }}
	rt2 := NewRetry(hung, RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond, AttemptTimeout: 20 * time.Millisecond})
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	_, err = rt2.Request(ctx2, "b", pingEnv(t))
	if err == nil {
		t.Fatal("expected failure from hung attempts")
	}
	if n := hung.calls.Load(); n != 3 {
		t.Errorf("inner calls = %d, want 3 (each attempt cut by AttemptTimeout)", n)
	}
}
