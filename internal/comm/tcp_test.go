package comm

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowPongServer serves a handler that sleeps d (or until server
// shutdown) before answering with a pong.
func slowPongServer(t *testing.T, d time.Duration, opts ...TCPServerOption) *TCPServer {
	t.Helper()
	srv, err := ListenTCP("127.0.0.1:0", func(ctx context.Context, env Envelope) (*Envelope, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		reply, err := NewEnvelope(MsgPong, "srv", env.From, nil)
		return &reply, err
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestTCPConcurrentRequestsOverlap is the transport's core promise: K
// parallel Requests over ONE client against a slow handler complete in
// about one slow-peer latency, not K of them — the seed's client mutex
// serialized them into K×delay.
func TestTCPConcurrentRequestsOverlap(t *testing.T) {
	const k = 16
	const delay = 150 * time.Millisecond
	srv := slowPongServer(t, delay)

	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("srv", srv.Addr())

	var wg sync.WaitGroup
	errs := make([]error, k)
	t0 := time.Now()
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
			_, errs[i] = client.Request(context.Background(), "srv", env)
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Serialized this takes k×delay = 2.4 s; overlapped it is one wave
	// of ~delay. Allow generous CI slack while still proving overlap.
	if wall > 8*delay {
		t.Errorf("16 concurrent requests took %v, want ≈%v (serialized would be %v)", wall, delay, k*delay)
	}
	st := client.Stats()
	if st.Dials == 0 || st.Dials > DefaultPoolSize {
		t.Errorf("dials = %d, want 1..%d", st.Dials, DefaultPoolSize)
	}
	if st.Requests != k {
		t.Errorf("requests = %d, want %d", st.Requests, k)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight after completion = %d", st.InFlight)
	}
}

// TestTCPPipeliningOnSingleConnection forces the pool to one connection:
// overlap must then come from Seq-correlated pipelining alone (multiple
// requests in flight on one conn, demuxed by the reader goroutine) plus
// the server's concurrent per-connection dispatch.
func TestTCPPipeliningOnSingleConnection(t *testing.T) {
	const k = 8
	const delay = 100 * time.Millisecond
	srv := slowPongServer(t, delay)

	client := NewTCPClient("p1", WithPoolSize(1))
	defer client.Close()
	client.SetRoute("srv", srv.Addr())

	var wg sync.WaitGroup
	var failed atomic.Int32
	t0 := time.Now()
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
			if _, err := client.Request(context.Background(), "srv", env); err != nil {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d pipelined requests failed", n, k)
	}
	if wall > 4*delay {
		t.Errorf("%d pipelined requests took %v, want ≈%v", k, wall, delay)
	}
	if st := client.Stats(); st.Dials != 1 {
		t.Errorf("dials = %d, want exactly 1 (pool size 1)", st.Dials)
	}
}

// TestTCPSendDoesNotBlockOnSlowHandler: fire-and-forget must return once
// the frame is written, not after the handler ran.
func TestTCPSendDoesNotBlockOnSlowHandler(t *testing.T) {
	const delay = 300 * time.Millisecond
	srv := slowPongServer(t, delay)
	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("srv", srv.Addr())

	env, _ := NewEnvelope(MsgMeasurementReport, "p1", "srv", MeasurementReport{Actor: "p1", Slot: 1, KWh: 2})
	t0 := time.Now()
	if err := client.Send(context.Background(), "srv", env); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(t0); wall > delay/2 {
		t.Errorf("Send blocked %v behind a %v handler", wall, delay)
	}
}

// TestTCPCancelMidFlightKeepsConnectionUsable cancels a request while
// its reply is pending, then reuses the same client: the cancellation
// must surface promptly, the late reply must be dropped by the demux
// loop, and the pooled connection must stay healthy (no redial).
func TestTCPCancelMidFlightKeepsConnectionUsable(t *testing.T) {
	var slow atomic.Bool
	slow.Store(true)
	srv, err := ListenTCP("127.0.0.1:0", func(ctx context.Context, env Envelope) (*Envelope, error) {
		if slow.Load() {
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		reply, err := NewEnvelope(MsgPong, "srv", env.From, nil)
		return &reply, err
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("p1", WithPoolSize(1))
	defer client.Close()
	client.SetRoute("srv", srv.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
	t0 := time.Now()
	_, err = client.Request(ctx, "srv", env)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if wall := time.Since(t0); wall > 300*time.Millisecond {
		t.Errorf("cancellation surfaced after %v, want ≈50ms", wall)
	}

	// The same pooled connection must serve the next request — the
	// cancel must not have poisoned or torn it down — even while the
	// abandoned slow reply is still in flight.
	slow.Store(false)
	if _, err := client.Request(context.Background(), "srv", env); err != nil {
		t.Fatalf("request after cancel: %v", err)
	}
	if st := client.Stats(); st.Dials != 1 {
		t.Errorf("dials = %d, want 1 (cancel must not drop the pooled conn)", st.Dials)
	}
}

// rawFrameServer speaks the wire protocol by hand for fault injection:
// fn receives each inbound envelope and the raw connection.
func rawFrameServer(t *testing.T, fn func(conn net.Conn, env Envelope)) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					env, err := readFrame(conn)
					if err != nil {
						return
					}
					fn(conn, env)
				}
			}(conn)
		}
	}()
	return ln
}

// TestTCPSeqMismatchDoesNotMiscorrelate injects replies with a wrong
// Seq: the client must drop them rather than hand them to the waiting
// request, and must complete once the correctly-tagged reply arrives.
func TestTCPSeqMismatchDoesNotMiscorrelate(t *testing.T) {
	ln := rawFrameServer(t, func(conn net.Conn, env Envelope) {
		// A forged reply under a foreign Seq, then the real one.
		bogus, _ := NewEnvelope(MsgError, "srv", env.From, ErrorBody{Message: "forged"})
		bogus.Seq = env.Seq + 1000
		_ = writeFrame(conn, &bogus)
		good, _ := NewEnvelope(MsgPong, "srv", env.From, nil)
		good.Seq = env.Seq
		_ = writeFrame(conn, &good)
	})

	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("srv", ln.Addr().String())
	env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
	reply, err := client.Request(context.Background(), "srv", env)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if reply.Type != MsgPong {
		t.Errorf("reply = %+v, want the correctly-correlated pong", reply)
	}

	// A reply that ONLY ever carries the wrong Seq must never complete
	// the request: it times out instead of mis-correlating.
	lnBad := rawFrameServer(t, func(conn net.Conn, env Envelope) {
		bogus, _ := NewEnvelope(MsgPong, "srv", env.From, nil)
		bogus.Seq = env.Seq + 7
		_ = writeFrame(conn, &bogus)
	})
	client.SetRoute("bad", lnBad.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := client.Request(ctx, "bad", env); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded (wrong-Seq reply must be dropped)", err)
	}
}

// TestTCPStalePoolRetries kills the connection server-side after the
// request frame is read: the pooled connection fails mid-flight and the
// Retry wrapper — the single retry code path, now that the client never
// re-attempts on its own — must heal it with one extra dial.
func TestTCPStalePoolRetries(t *testing.T) {
	var kills atomic.Int32
	kills.Store(1) // kill exactly the first request
	ln := rawFrameServer(t, func(conn net.Conn, env Envelope) {
		if kills.Add(-1) >= 0 {
			conn.Close() // mid-flight failure: frame consumed, no reply
			return
		}
		reply, _ := NewEnvelope(MsgPong, "srv", env.From, nil)
		reply.Seq = env.Seq
		_ = writeFrame(conn, &reply)
	})

	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("srv", ln.Addr().String())
	rt := NewRetry(client, RetryConfig{})
	env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
	if _, err := rt.Request(context.Background(), "srv", env); err != nil {
		t.Fatalf("request: %v", err)
	}
	if rs := rt.Stats(); rs.Retries == 0 {
		t.Errorf("retry stats = %+v, want a recorded retry", rs)
	}
	if st := client.Stats(); st.Dials != 2 {
		t.Errorf("dials = %d, want 2 (original + retry redial)", st.Dials)
	}

	// A bare client must surface the failure instead of retrying: one
	// dial per call, no hidden second attempt.
	kills.Store(1)
	bare := NewTCPClient("p2")
	defer bare.Close()
	bare.SetRoute("srv", ln.Addr().String())
	if _, err := bare.Request(context.Background(), "srv", env); err == nil {
		t.Fatal("bare client request healed; want classified failure with no internal retry")
	}
	if st := bare.Stats(); st.Dials != 1 {
		t.Errorf("bare dials = %d, want 1", st.Dials)
	}
}

// TestTCPManyDestinationsFanOut overlaps requests across many servers
// through one client: wall time tracks the slowest peer, not the sum.
func TestTCPManyDestinationsFanOut(t *testing.T) {
	const peers = 8
	const delay = 100 * time.Millisecond
	client := NewTCPClient("brp")
	defer client.Close()
	for i := 0; i < peers; i++ {
		srv := slowPongServer(t, delay)
		client.SetRoute(fmt.Sprintf("p%d", i), srv.Addr())
	}
	var wg sync.WaitGroup
	errs := make([]error, peers)
	t0 := time.Now()
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			to := fmt.Sprintf("p%d", i)
			env, _ := NewEnvelope(MsgPing, "brp", to, nil)
			_, errs[i] = client.Request(context.Background(), to, env)
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	if wall > 4*delay {
		t.Errorf("fan-out to %d peers took %v, want ≈%v (sum would be %v)", peers, wall, delay, peers*delay)
	}
}

// TestTCPServerSerialDispatchOption proves WithServerConcurrency(1)
// restores per-connection serialization — the contrast that shows the
// default concurrent dispatch is what un-serializes pipelined clients.
func TestTCPServerSerialDispatchOption(t *testing.T) {
	const k = 4
	const delay = 60 * time.Millisecond
	srv := slowPongServer(t, delay, WithServerConcurrency(1))

	client := NewTCPClient("p1", WithPoolSize(1))
	defer client.Close()
	client.SetRoute("srv", srv.Addr())

	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := client.Request(ctx, "srv", env); err != nil {
				t.Errorf("request: %v", err)
			}
		}()
	}
	wg.Wait()
	if wall := time.Since(t0); wall < time.Duration(k)*delay {
		t.Errorf("serial dispatch finished in %v, faster than %d×%v — not serialized", wall, k, delay)
	}
}
