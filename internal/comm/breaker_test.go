package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// flakyTransport fails destinations listed in down and counts calls.
type flakyTransport struct {
	mu    sync.Mutex
	down  map[string]bool
	calls map[string]int
}

func newFlaky() *flakyTransport {
	return &flakyTransport{down: make(map[string]bool), calls: make(map[string]int)}
}

func (t *flakyTransport) setDown(name string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[name] = down
}

func (t *flakyTransport) callCount(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls[name]
}

func (t *flakyTransport) hit(to string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls[to]++
	if t.down[to] {
		return fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	return nil
}

func (t *flakyTransport) Send(ctx context.Context, to string, env Envelope) error {
	return t.hit(to)
}

func (t *flakyTransport) Request(ctx context.Context, to string, env Envelope) (Envelope, error) {
	if err := t.hit(to); err != nil {
		return Envelope{}, err
	}
	return Envelope{Type: MsgPong, From: to, To: env.From}, nil
}

func testBreaker(inner Transport) *Breaker {
	return NewBreaker(inner, BreakerConfig{
		Origin:      "brp",
		Window:      8,
		MinSamples:  3,
		FailureRate: 0.5,
		Cooldown:    50 * time.Millisecond,
	})
}

func TestBreakerTripsAndFailsFast(t *testing.T) {
	inner := newFlaky()
	inner.setDown("dead", true)
	b := testBreaker(inner)
	ctx := context.Background()
	env, _ := NewEnvelope(MsgPing, "brp", "dead", nil)
	for i := 0; i < 3; i++ {
		if err := b.Send(ctx, "dead", env); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("send %d err = %v, want ErrUnreachable", i, err)
		}
	}
	if got := b.State("dead"); got != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
	before := inner.callCount("dead")
	if err := b.Send(ctx, "dead", env); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("tripped send err = %v, want ErrBreakerOpen", err)
	}
	if inner.callCount("dead") != before {
		t.Fatal("open circuit still reached the transport")
	}
	if got := b.Tripped(); len(got) != 1 || got[0] != "dead" {
		t.Fatalf("Tripped() = %v, want [dead]", got)
	}
}

func TestBreakerHealthyDestinationUnaffected(t *testing.T) {
	inner := newFlaky()
	inner.setDown("dead", true)
	b := testBreaker(inner)
	ctx := context.Background()
	deadEnv, _ := NewEnvelope(MsgPing, "brp", "dead", nil)
	okEnv, _ := NewEnvelope(MsgPing, "brp", "ok", nil)
	for i := 0; i < 5; i++ {
		_ = b.Send(ctx, "dead", deadEnv)
		if err := b.Send(ctx, "ok", okEnv); err != nil {
			t.Fatalf("healthy send %d: %v", i, err)
		}
	}
	if got := b.State("ok"); got != BreakerClosed {
		t.Fatalf("healthy state = %v, want closed", got)
	}
}

func TestBreakerHalfOpenTrialRecloses(t *testing.T) {
	inner := newFlaky()
	inner.setDown("flappy", true)
	b := testBreaker(inner)
	ctx := context.Background()
	env, _ := NewEnvelope(MsgPing, "brp", "flappy", nil)
	for i := 0; i < 3; i++ {
		_ = b.Send(ctx, "flappy", env)
	}
	if b.State("flappy") != BreakerOpen {
		t.Fatal("circuit did not open")
	}
	inner.setDown("flappy", false)
	// Inside the cooldown: still failing fast.
	if err := b.Send(ctx, "flappy", env); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("pre-cooldown err = %v, want ErrBreakerOpen", err)
	}
	time.Sleep(60 * time.Millisecond)
	// The first post-cooldown call is the half-open trial; its success
	// re-closes the circuit.
	if err := b.Send(ctx, "flappy", env); err != nil {
		t.Fatalf("trial send: %v", err)
	}
	if got := b.State("flappy"); got != BreakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", got)
	}
}

func TestBreakerHalfOpenTrialFailureReopens(t *testing.T) {
	inner := newFlaky()
	inner.setDown("dead", true)
	b := testBreaker(inner)
	ctx := context.Background()
	env, _ := NewEnvelope(MsgPing, "brp", "dead", nil)
	for i := 0; i < 3; i++ {
		_ = b.Send(ctx, "dead", env)
	}
	time.Sleep(60 * time.Millisecond)
	if err := b.Send(ctx, "dead", env); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("trial err = %v, want ErrUnreachable", err)
	}
	if got := b.State("dead"); got != BreakerOpen {
		t.Fatalf("state after failed trial = %v, want open again", got)
	}
	// And it fails fast again without touching the transport.
	before := inner.callCount("dead")
	if err := b.Send(ctx, "dead", env); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("post-retrip err = %v, want ErrBreakerOpen", err)
	}
	if inner.callCount("dead") != before {
		t.Fatal("re-opened circuit reached the transport")
	}
}

func TestBreakerCanceledContextNotCounted(t *testing.T) {
	inner := newFlaky()
	b := testBreaker(inner)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	// The bus-style transport surfaces ctx.Err() — simulate by a
	// transport returning context.Canceled.
	cb := NewBreaker(cancelingTransport{}, BreakerConfig{MinSamples: 1, FailureRate: 0.1})
	env, _ := NewEnvelope(MsgPing, "brp", "x", nil)
	for i := 0; i < 5; i++ {
		if err := cb.Send(canceled, "x", env); !errors.Is(err, context.Canceled) {
			t.Fatalf("send err = %v, want context.Canceled", err)
		}
	}
	if got := cb.State("x"); got != BreakerClosed {
		t.Fatalf("state after canceled sends = %v, want closed (not counted)", got)
	}
	_ = b
}

type cancelingTransport struct{}

func (cancelingTransport) Send(ctx context.Context, to string, env Envelope) error {
	return ctx.Err()
}

func (cancelingTransport) Request(ctx context.Context, to string, env Envelope) (Envelope, error) {
	return Envelope{}, ctx.Err()
}

func TestBreakerProbeOpenHeals(t *testing.T) {
	inner := newFlaky()
	inner.setDown("dead", true)
	b := testBreaker(inner)
	ctx := context.Background()
	env, _ := NewEnvelope(MsgPing, "brp", "dead", nil)
	for i := 0; i < 3; i++ {
		_ = b.Send(ctx, "dead", env)
	}
	// Peer comes back; before the cooldown a probe does nothing.
	inner.setDown("dead", false)
	if healed := b.ProbeOpen(ctx); len(healed) != 0 {
		t.Fatalf("pre-cooldown probe healed %v, want none", healed)
	}
	time.Sleep(60 * time.Millisecond)
	if healed := b.ProbeOpen(ctx); len(healed) != 1 || healed[0] != "dead" {
		t.Fatalf("probe healed %v, want [dead]", healed)
	}
	if got := b.State("dead"); got != BreakerClosed {
		t.Fatalf("state after probe = %v, want closed", got)
	}
	if err := b.Send(ctx, "dead", env); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
}

func TestBreakerOverBusFanOut(t *testing.T) {
	// End-to-end over the real Bus: one of three prosumers vanishes;
	// fan-out through the breaker degrades to typed skips instead of
	// repeated unreachable round-trips.
	bus := NewBus()
	pong := func(ctx context.Context, env Envelope) (*Envelope, error) {
		reply, err := NewEnvelope(MsgPong, env.To, env.From, nil)
		return &reply, err
	}
	for _, name := range []string{"p1", "p2"} {
		bus.Register(name, pong)
	}
	b := testBreaker(bus)
	client := NewClient("brp", b)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		for _, name := range []string{"p1", "p2", "p3"} {
			err := client.Ping(ctx, name)
			switch name {
			case "p3":
				if err == nil {
					t.Fatalf("round %d: ping p3 succeeded, want failure", i)
				}
			default:
				if err != nil {
					t.Fatalf("round %d: ping %s: %v", i, name, err)
				}
			}
		}
	}
	if got := b.State("p3"); got != BreakerOpen {
		t.Fatalf("p3 state = %v, want open", got)
	}
	if err := client.Ping(ctx, "p3"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("tripped ping err = %v, want ErrBreakerOpen", err)
	}
	// p3 comes back and a probe readmits it.
	bus.Register("p3", pong)
	time.Sleep(60 * time.Millisecond)
	if healed := b.ProbeOpen(ctx); len(healed) != 1 || healed[0] != "p3" {
		t.Fatalf("probe healed %v, want [p3]", healed)
	}
	if err := client.Ping(ctx, "p3"); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
}
