package comm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mirabel/internal/flexoffer"
)

func fanoutOffer(id flexoffer.ID) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID: id, EarliestStart: 40, LatestStart: 56, AssignBefore: 32,
		Profile: []flexoffer.Slice{{EnergyMin: 0, EnergyMax: 5}},
	}
}

// slowEndpoint registers an endpoint whose handler sleeps before
// answering, and counts the concurrent handlers in flight.
func slowEndpoint(bus *Bus, name string, delay time.Duration, inflight, peak *atomic.Int32) *atomic.Int32 {
	var notified atomic.Int32
	bus.Register(name, func(ctx context.Context, env Envelope) (*Envelope, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inflight.Add(-1)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if env.Type == MsgFlexOfferSubmit {
			var body FlexOfferSubmit
			if err := env.Decode(MsgFlexOfferSubmit, &body); err != nil {
				return nil, err
			}
			reply, err := NewEnvelope(MsgFlexOfferDecision, name, env.From, FlexOfferDecision{
				OfferID: body.Offer.ID, Accept: true,
			})
			return &reply, err
		}
		notified.Add(1)
		return nil, nil
	})
	return &notified
}

func TestNotifySchedulesAllParallelizesDeliveries(t *testing.T) {
	// The latency sits in the transport's Send itself (Bus.Send alone is
	// fire-and-forget and would return instantly even when serialized),
	// so wall time genuinely distinguishes parallel from serial fan-out.
	bus := NewBus()
	const owners = 8
	const delay = 30 * time.Millisecond
	byOwner := make(map[string][]*flexoffer.Schedule)
	for i := 0; i < owners; i++ {
		name := fmt.Sprintf("p%d", i)
		bus.Register(name, func(ctx context.Context, env Envelope) (*Envelope, error) { return nil, nil })
		byOwner[name] = []*flexoffer.Schedule{{OfferID: flexoffer.ID(i), Start: 40, Energy: []float64{1}}}
	}
	c := NewClient("brp", Latency(bus, delay))
	t0 := time.Now()
	failed := c.NotifySchedulesAll(context.Background(), byOwner, owners)
	wall := time.Since(t0)
	if len(failed) != 0 {
		t.Fatalf("failures: %v", failed)
	}
	// All owners in one wave: near one latency; serial would be 8×.
	if wall >= time.Duration(owners)*delay/2 {
		t.Errorf("fan-out wall time %v, want well under serial %v", wall, time.Duration(owners)*delay)
	}
}

func TestSubmitOffersAllBoundsConcurrencyAndKeepsOrder(t *testing.T) {
	bus := NewBus()
	var inflight, peak atomic.Int32
	slowEndpoint(bus, "tso", 20*time.Millisecond, &inflight, &peak)
	c := NewClient("brp", bus)
	offers := make([]*flexoffer.FlexOffer, 9)
	for i := range offers {
		offers[i] = fanoutOffer(flexoffer.ID(i + 1))
	}
	const limit = 3
	t0 := time.Now()
	results := c.SubmitOffersAll(context.Background(), "tso", offers, limit)
	wall := time.Since(t0)
	if got := peak.Load(); got > limit {
		t.Errorf("peak concurrency %d exceeds limit %d", got, limit)
	}
	// 9 requests at 20ms in waves of 3: ~60ms, far below the 180ms sum.
	if wall >= 9*20*time.Millisecond {
		t.Errorf("wall %v not parallel", wall)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("submit %d: %v", i, r.Err)
		}
		if r.Offer.ID != flexoffer.ID(i+1) || r.Decision.OfferID != flexoffer.ID(i+1) {
			t.Errorf("result %d out of order: offer %d decision %d", i, r.Offer.ID, r.Decision.OfferID)
		}
		if !r.Decision.Accept {
			t.Errorf("offer %d rejected", r.Offer.ID)
		}
	}
}

func TestNotifySchedulesAllCollectsPerDestinationErrors(t *testing.T) {
	bus := NewBus()
	var inflight, peak atomic.Int32
	slowEndpoint(bus, "alive", time.Millisecond, &inflight, &peak)
	c := NewClient("brp", bus)
	byOwner := map[string][]*flexoffer.Schedule{
		"alive": {{OfferID: 1, Start: 40, Energy: []float64{1}}},
		"gone1": {{OfferID: 2, Start: 40, Energy: []float64{1}}},
		"gone2": {{OfferID: 3, Start: 40, Energy: []float64{1}}},
	}
	failed := c.NotifySchedulesAll(context.Background(), byOwner, 0)
	if len(failed) != 2 {
		t.Fatalf("failed = %v, want the two unregistered owners", failed)
	}
	for _, owner := range []string{"gone1", "gone2"} {
		if !errors.Is(failed[owner], ErrUnreachable) {
			t.Errorf("%s error = %v, want ErrUnreachable", owner, failed[owner])
		}
	}
}

func TestSubmitOffersAllSurfacesCancellation(t *testing.T) {
	bus := NewBus()
	bus.Register("tso", func(ctx context.Context, _ Envelope) (*Envelope, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	c := NewClient("brp", bus)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	results := c.SubmitOffersAll(ctx, "tso", []*flexoffer.FlexOffer{fanoutOffer(1), fanoutOffer(2)}, 2)
	for i, r := range results {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("result %d err = %v, want DeadlineExceeded", i, r.Err)
		}
	}
}
