package comm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrNotSent is wrapped by transport failures where the request provably
// never reached the peer — a failed dial, a dead pooled connection
// caught before the frame write completed, an unregistered bus endpoint.
// Such operations are always safe to retry, idempotent or not. Failures
// NOT carrying ErrNotSent are ambiguous (the handler may have run), so a
// Retry transport re-attempts them only for idempotent message types.
var ErrNotSent = errors.New("request not sent")

// DefaultIdempotent classifies the message vocabulary for retry safety.
// Measurements are keyed upserts and schedules are keyed by offer ID, so
// re-delivery is harmless; re-submitting a flex-offer whose first copy
// did land would collide with the stored ID and flip an accept into a
// duplicate-ID rejection, so submissions retry only when provably unsent.
var DefaultIdempotent = map[MsgType]bool{
	MsgPing:              true,
	MsgForecastRequest:   true,
	MsgMeasurementReport: true,
	MsgMeasurementBatch:  true,
	MsgScheduleNotify:    true,
}

// RetryConfig tunes a Retry transport.
type RetryConfig struct {
	// MaxAttempts bounds the total attempts per call (default 3).
	MaxAttempts int
	// BaseBackoff is the sleep before the second retry (default 25ms);
	// the first retry of a provably-unsent operation goes immediately,
	// preserving the old stale-pool fast heal.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Multiplier grows the backoff between retries (default 2).
	Multiplier float64
	// JitterFrac spreads each sleep over ±JitterFrac of itself
	// (default 0.5) so synchronized retriers decorrelate.
	JitterFrac float64
	// AttemptTimeout carves a per-attempt deadline out of the caller's
	// overall budget, so one hung attempt cannot consume every retry's
	// time (0 leaves attempts bounded only by the caller's deadline).
	AttemptTimeout time.Duration
	// Seed drives the deterministic jitter stream; runs with the same
	// seed draw the same jitter sequence.
	Seed int64
	// Idempotent overrides DefaultIdempotent when non-nil.
	Idempotent map[MsgType]bool
}

func (c *RetryConfig) fill() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.Multiplier < 1 {
		c.Multiplier = 2
	}
	if c.JitterFrac <= 0 || c.JitterFrac > 1 {
		c.JitterFrac = 0.5
	}
	if c.Idempotent == nil {
		c.Idempotent = DefaultIdempotent
	}
}

// RetryStats counts a Retry transport's activity, surfaced alongside
// TransportStats in node shutdown logs and the sim's degradation report.
type RetryStats struct {
	// Calls is the number of logical operations issued.
	Calls uint64
	// Retries is the number of extra attempts made beyond the first.
	Retries uint64
	// ShortCircuits counts calls aborted instantly because the
	// destination's circuit was open — no backoff, no retry storm.
	ShortCircuits uint64
	// Exhausted counts calls that failed every allowed attempt.
	Exhausted uint64
	// NonRetryable counts failures abandoned because the operation was
	// not idempotent and delivery was ambiguous.
	NonRetryable uint64
	// Backoff is the total time spent sleeping between attempts.
	Backoff time.Duration
}

// Retry wraps a Transport with jittered-exponential-backoff retries.
// It is the single retry code path of the node fabric: the TCP client
// itself never re-attempts, it only classifies failures (ErrNotSent vs
// ambiguous), and Retry decides. Compose it OUTSIDE a Breaker —
// Retry(Breaker(inner)) — so an open circuit fails the whole call
// immediately instead of being hammered by backoff loops.
type Retry struct {
	inner Transport
	cfg   RetryConfig

	jitterSeq     atomic.Uint64
	calls         atomic.Uint64
	retries       atomic.Uint64
	shortCircuits atomic.Uint64
	exhausted     atomic.Uint64
	nonRetryable  atomic.Uint64
	backoffNanos  atomic.Int64
}

// NewRetry wraps inner with the retry policy.
func NewRetry(inner Transport, cfg RetryConfig) *Retry {
	cfg.fill()
	return &Retry{inner: inner, cfg: cfg}
}

// Stats returns a point-in-time copy of the retry counters.
func (r *Retry) Stats() RetryStats {
	return RetryStats{
		Calls:         r.calls.Load(),
		Retries:       r.retries.Load(),
		ShortCircuits: r.shortCircuits.Load(),
		Exhausted:     r.exhausted.Load(),
		NonRetryable:  r.nonRetryable.Load(),
		Backoff:       time.Duration(r.backoffNanos.Load()),
	}
}

// retryable decides whether a failed attempt may be re-issued.
func (r *Retry) retryable(t MsgType, err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, ErrNotSent) || errors.Is(err, ErrUnreachable) {
		return true // provably never delivered
	}
	return r.cfg.Idempotent[t]
}

// splitmix64 is the SplitMix64 mixer: a bijective avalanche over the
// input, giving an independent-looking stream from sequential counters.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitter spreads d over ±JitterFrac deterministically from the seed.
func (r *Retry) jitter(d time.Duration) time.Duration {
	u := splitmix64(uint64(r.cfg.Seed) + r.jitterSeq.Add(1))
	// unit in [0, 1): 53 mantissa bits of the draw.
	unit := float64(u>>11) / float64(1<<53)
	f := 1 + r.cfg.JitterFrac*(2*unit-1)
	return time.Duration(float64(d) * f)
}

// do runs op under the retry policy. op must be re-issuable: each call
// re-enters the inner transport from scratch.
func (r *Retry) do(ctx context.Context, to string, t MsgType, op func(context.Context) error) error {
	r.calls.Add(1)
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultTimeout)
		defer cancel()
	}
	backoff := r.cfg.BaseBackoff
	var err error
	for attempt := 1; ; attempt++ {
		actx, acancel := ctx, context.CancelFunc(func() {})
		if r.cfg.AttemptTimeout > 0 {
			actx, acancel = context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		}
		err = op(actx)
		acancel()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrBreakerOpen) {
			// The circuit already knows the peer is down: fail the whole
			// call now, with zero sleep — retries must never pile onto an
			// open circuit.
			r.shortCircuits.Add(1)
			return err
		}
		if ctx.Err() != nil {
			return err // the caller's budget is spent
		}
		if !r.retryable(t, err) {
			r.nonRetryable.Add(1)
			return err
		}
		if attempt >= r.cfg.MaxAttempts {
			r.exhausted.Add(1)
			return fmt.Errorf("comm: %s to %s failed after %d attempts: %w", t, to, attempt, err)
		}
		r.retries.Add(1)
		if attempt == 1 && errors.Is(err, ErrNotSent) {
			continue // stale-pool heal: one immediate redial, no sleep
		}
		d := r.jitter(backoff)
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
			r.backoffNanos.Add(int64(d))
		case <-ctx.Done():
			timer.Stop()
			return err
		}
		if next := time.Duration(float64(backoff) * r.cfg.Multiplier); next < r.cfg.MaxBackoff {
			backoff = next
		} else {
			backoff = r.cfg.MaxBackoff
		}
	}
}

// Send implements Transport with retries.
func (r *Retry) Send(ctx context.Context, to string, env Envelope) error {
	return r.do(ctx, to, env.Type, func(actx context.Context) error {
		return r.inner.Send(actx, to, env)
	})
}

// Request implements Transport with retries.
func (r *Retry) Request(ctx context.Context, to string, env Envelope) (Envelope, error) {
	var reply Envelope
	err := r.do(ctx, to, env.Type, func(actx context.Context) error {
		rep, err := r.inner.Request(actx, to, env)
		if err == nil {
			reply = rep
		}
		return err
	})
	if err != nil {
		return Envelope{}, err
	}
	return reply, nil
}
