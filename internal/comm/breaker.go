package comm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Send/Request when the
// destination's circuit is open: the peer failed often enough recently
// that traffic to it is cut off until a probe succeeds. Match with
// errors.Is; fan-out callers count these as "skipped", not "failed" —
// graceful degradation instead of stalling on a dead peer.
var ErrBreakerOpen = errors.New("comm: circuit open")

// BreakerState is a destination circuit's position.
type BreakerState int

// Circuit states: Closed passes traffic, Open rejects it, HalfOpen lets
// exactly one trial through to decide between the other two.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// Origin is the From address stamped on probe pings (the wrapping
	// node's own name). Required for ProbeOpen.
	Origin string
	// Window is the per-destination sliding window of recent outcomes
	// (default 16).
	Window int
	// MinSamples is how many outcomes the window needs before the
	// failure rate is trusted (default 3): a single early error must
	// not trip the circuit.
	MinSamples int
	// FailureRate is the window failure fraction that opens the
	// circuit (default 0.5).
	FailureRate float64
	// Cooldown is how long an open circuit rejects traffic before one
	// half-open trial is allowed (default 5s).
	Cooldown time.Duration
}

func (c *BreakerConfig) fill() {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
}

// Breaker wraps a Transport with per-destination circuit breaking:
// closed circuits pass traffic and record outcomes over a sliding
// window; when the window's failure rate crosses FailureRate the
// circuit opens and calls fail fast with ErrBreakerOpen; after Cooldown
// one trial (a real call or a ProbeOpen ping) runs half-open — success
// re-closes the circuit, failure re-opens it.
//
// Outcome accounting is deliberately one-sided: the caller canceling
// its own context says nothing about the peer's health, so
// context.Canceled outcomes are not recorded (the half-open trial slot
// is released for the next attempt).
type Breaker struct {
	inner Transport
	cfg   BreakerConfig

	mu    sync.Mutex
	dests map[string]*circuit

	// now is a test seam.
	now func() time.Time
}

// circuit is one destination's state machine. Its mutex is held only
// for bookkeeping, never across network calls.
type circuit struct {
	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring of outcomes, true = failure
	next     int
	count    int
	fails    int
	openedAt time.Time
	trialing bool // a half-open trial is in flight
}

// NewBreaker wraps inner with circuit breaking.
func NewBreaker(inner Transport, cfg BreakerConfig) *Breaker {
	cfg.fill()
	return &Breaker{inner: inner, cfg: cfg, dests: make(map[string]*circuit), now: time.Now}
}

func (b *Breaker) circuitFor(to string) *circuit {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.dests[to]
	if !ok {
		c = &circuit{window: make([]bool, b.cfg.Window)}
		b.dests[to] = c
	}
	return c
}

// allow decides whether one call may proceed, transitioning
// Open→HalfOpen when the cooldown has elapsed. In half-open, exactly
// one caller wins the trial slot.
func (c *circuit) allow(cfg BreakerConfig, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(c.openedAt) < cfg.Cooldown {
			return false
		}
		c.state = BreakerHalfOpen
		c.trialing = true
		return true
	case BreakerHalfOpen:
		if c.trialing {
			return false
		}
		c.trialing = true
		return true
	}
	return true
}

// record feeds one call's outcome back into the state machine.
func (c *circuit) record(cfg BreakerConfig, err error, now time.Time) {
	// A canceled caller proves nothing about the peer: drop the
	// outcome, but free a held trial slot.
	if errors.Is(err, context.Canceled) {
		c.mu.Lock()
		c.trialing = false
		c.mu.Unlock()
		return
	}
	failed := err != nil
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == BreakerHalfOpen {
		c.trialing = false
		if failed {
			c.state = BreakerOpen
			c.openedAt = now
		} else {
			c.state = BreakerClosed
			c.reset()
		}
		return
	}
	if c.state == BreakerOpen {
		return // stale outcome from a call that raced the trip
	}
	if c.count < len(c.window) {
		c.count++
	} else if c.window[c.next] {
		c.fails--
	}
	c.window[c.next] = failed
	c.next = (c.next + 1) % len(c.window)
	if failed {
		c.fails++
	}
	if c.count >= cfg.MinSamples && float64(c.fails)/float64(c.count) >= cfg.FailureRate {
		c.state = BreakerOpen
		c.openedAt = now
		c.trialing = false
	}
}

func (c *circuit) reset() {
	for i := range c.window {
		c.window[i] = false
	}
	c.next, c.count, c.fails = 0, 0, 0
}

func (c *circuit) currentState() BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Send implements Transport with circuit breaking.
func (b *Breaker) Send(ctx context.Context, to string, env Envelope) error {
	c := b.circuitFor(to)
	if !c.allow(b.cfg, b.now()) {
		return fmt.Errorf("%w: %s", ErrBreakerOpen, to)
	}
	err := b.inner.Send(ctx, to, env)
	c.record(b.cfg, err, b.now())
	return err
}

// Request implements Transport with circuit breaking.
func (b *Breaker) Request(ctx context.Context, to string, env Envelope) (Envelope, error) {
	c := b.circuitFor(to)
	if !c.allow(b.cfg, b.now()) {
		return Envelope{}, fmt.Errorf("%w: %s", ErrBreakerOpen, to)
	}
	reply, err := b.inner.Request(ctx, to, env)
	c.record(b.cfg, err, b.now())
	return reply, err
}

// State reports a destination's circuit state (closed for never-seen
// destinations).
func (b *Breaker) State(to string) BreakerState {
	b.mu.Lock()
	c, ok := b.dests[to]
	b.mu.Unlock()
	if !ok {
		return BreakerClosed
	}
	return c.currentState()
}

// Tripped lists destinations whose circuit is not closed, sorted.
func (b *Breaker) Tripped() []string {
	b.mu.Lock()
	names := make([]string, 0, len(b.dests))
	circuits := make([]*circuit, 0, len(b.dests))
	for name, c := range b.dests {
		names = append(names, name)
		circuits = append(circuits, c)
	}
	b.mu.Unlock()
	var out []string
	for i, c := range circuits {
		if c.currentState() != BreakerClosed {
			out = append(out, names[i])
		}
	}
	sort.Strings(out)
	return out
}

// ProbeOpen pings every tripped destination whose cooldown allows a
// half-open trial and feeds the outcomes back into the circuits; it
// returns the destinations that healed (circuit re-closed). Call it
// between delivery waves so dead peers rejoin without a live request
// paying the trial's latency.
func (b *Breaker) ProbeOpen(ctx context.Context) []string {
	tripped := b.Tripped()
	if len(tripped) == 0 {
		return nil
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		healed []string
	)
	for _, to := range tripped {
		c := b.circuitFor(to)
		if !c.allow(b.cfg, b.now()) {
			continue // still cooling down, or another trial is in flight
		}
		wg.Add(1)
		go func(to string, c *circuit) {
			defer wg.Done()
			env, err := NewEnvelope(MsgPing, b.cfg.Origin, to, nil)
			if err == nil {
				_, err = b.inner.Request(ctx, to, env)
			}
			c.record(b.cfg, err, b.now())
			if err == nil {
				mu.Lock()
				healed = append(healed, to)
				mu.Unlock()
			}
		}(to, c)
	}
	wg.Wait()
	sort.Strings(healed)
	return healed
}
