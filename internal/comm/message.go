// Package comm is the MIRABEL Communication component (paper §3):
// message exchange between LEDMS nodes — "flex-offers, supply and demand
// measurements, forecasts, etc." — for an EDMS that "consists of
// millions of homogeneous nodes".
//
// The package is layered, context-first throughout:
//
//   - Envelope is the wire unit: a typed JSON payload with routing
//     metadata. Two Transports move envelopes: an in-process Bus for
//     population-scale simulation and a TCP transport for real
//     deployments — length-prefixed frames over bounded per-destination
//     connection pools, with requests correlated to replies by
//     Envelope.Seq so any number of round trips pipeline per
//     connection. Concurrent operations on one TCPClient overlap
//     fully (no client-wide lock covers I/O), so a fan-out wave
//     completes in the time of its slowest peer, not the sum. Both
//     transports offer request/response and true fire-and-forget
//     semantics and honor context cancellation and deadlines: a
//     canceled Request returns ctx.Err() promptly on both. On the Bus
//     the serving Handler observes the caller's cancellation directly;
//     over TCP the handler runs under a server-scoped context
//     (canceled on shutdown) and a caller's mid-flight cancel unblocks
//     only the calling side, leaving the pooled connection healthy.
//
//   - Client is the typed RPC surface applications use: SubmitOffer,
//     QueryForecast, NotifySchedules, ReportMeasurement, Ping. It owns
//     envelope construction and reply decoding; callers never touch
//     NewEnvelope/Decode.
//
//   - Mux routes inbound envelopes to per-MsgType Handlers, and
//     Middleware (Recover, Logging, Metrics.Collect — composed with
//     Chain) layers cross-cutting behaviour over every handler
//     uniformly.
//
// A minimal node:
//
//	mux := comm.NewMux()
//	mux.Handle(comm.MsgPing, func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
//		pong, err := comm.NewEnvelope(comm.MsgPong, "me", env.From, nil)
//		return &pong, err
//	})
//	bus.Register("me", comm.Chain(mux.Serve, comm.Recover()))
//
//	client := comm.NewClient("you", bus)
//	err := client.Ping(ctx, "me")
package comm

import (
	"encoding/json"
	"fmt"

	"mirabel/internal/flexoffer"
)

// MsgType tags the payload carried by an envelope.
type MsgType string

// The message vocabulary of the EDMS.
const (
	// MsgFlexOfferSubmit: prosumer → BRP (or BRP → TSO): a new
	// flex-offer.
	MsgFlexOfferSubmit MsgType = "flex_offer_submit"
	// MsgFlexOfferDecision: BRP → prosumer: accept/reject with the
	// negotiated premium.
	MsgFlexOfferDecision MsgType = "flex_offer_decision"
	// MsgScheduleNotify: BRP → prosumer: the scheduled instantiation of
	// a previously accepted flex-offer.
	MsgScheduleNotify MsgType = "schedule_notify"
	// MsgMeasurementBatch: prosumer → BRP: a batch of metered values
	// (one message, one store group commit at the receiver).
	MsgMeasurementBatch MsgType = "measurement_batch"
	// MsgMeasurementReport: prosumer → BRP: metered consumption or
	// production.
	MsgMeasurementReport MsgType = "measurement_report"
	// MsgForecastRequest / MsgForecastReply: explicit forecast queries
	// between nodes.
	MsgForecastRequest MsgType = "forecast_request"
	MsgForecastReply   MsgType = "forecast_reply"
	// MsgPing / MsgPong: liveness.
	MsgPing MsgType = "ping"
	MsgPong MsgType = "pong"
	// MsgError: a transported failure.
	MsgError MsgType = "error"
)

// Envelope is the wire unit: a typed payload with routing metadata.
type Envelope struct {
	Type MsgType         `json:"type"`
	From string          `json:"from"`
	To   string          `json:"to"`
	Seq  uint64          `json:"seq,omitempty"` // correlation id for replies
	Body json.RawMessage `json:"body,omitempty"`
}

// FlexOfferSubmit is the body of MsgFlexOfferSubmit.
type FlexOfferSubmit struct {
	Offer *flexoffer.FlexOffer `json:"offer"`
}

// FlexOfferDecision is the body of MsgFlexOfferDecision.
type FlexOfferDecision struct {
	OfferID flexoffer.ID `json:"offer_id"`
	Accept  bool         `json:"accept"`
	Reason  string       `json:"reason,omitempty"`
	// PremiumEUR is the negotiated flexibility premium per kWh.
	PremiumEUR float64 `json:"premium_eur,omitempty"`
}

// ScheduleNotify is the body of MsgScheduleNotify.
type ScheduleNotify struct {
	Schedules []*flexoffer.Schedule `json:"schedules"`
}

// MeasurementReport is the body of MsgMeasurementReport.
type MeasurementReport struct {
	Actor      string         `json:"actor"`
	EnergyType string         `json:"energy_type"`
	Slot       flexoffer.Time `json:"slot"`
	KWh        float64        `json:"kwh"`
}

// MeasurementBatch is the body of MsgMeasurementBatch.
type MeasurementBatch struct {
	Reports []MeasurementReport `json:"reports"`
}

// ForecastRequest is the body of MsgForecastRequest. An empty Actor
// queries the node-wide forecast source; a non-empty Actor addresses
// one maintained (actor, energy type) series in the node's forecast
// registry.
type ForecastRequest struct {
	Actor      string `json:"actor,omitempty"`
	EnergyType string `json:"energy_type"`
	Horizon    int    `json:"horizon"`
}

// ForecastReply is the body of MsgForecastReply.
type ForecastReply struct {
	EnergyType string         `json:"energy_type"`
	FirstSlot  flexoffer.Time `json:"first_slot"`
	Values     []float64      `json:"values"`
}

// ErrorBody is the body of MsgError.
type ErrorBody struct {
	Message string `json:"message"`
}

// NewEnvelope marshals body into a typed envelope.
func NewEnvelope(t MsgType, from, to string, body any) (Envelope, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return Envelope{}, fmt.Errorf("comm: marshal %s body: %w", t, err)
	}
	return Envelope{Type: t, From: from, To: to, Body: raw}, nil
}

// Decode unmarshals the envelope body into out and verifies the type tag.
func (e *Envelope) Decode(want MsgType, out any) error {
	if e.Type != want {
		return fmt.Errorf("comm: envelope is %s, want %s", e.Type, want)
	}
	if err := json.Unmarshal(e.Body, out); err != nil {
		return fmt.Errorf("comm: decode %s body: %w", e.Type, err)
	}
	return nil
}

// ErrorEnvelope builds an error reply for a received envelope.
func ErrorEnvelope(inReplyTo *Envelope, from string, msg string) Envelope {
	raw, _ := json.Marshal(ErrorBody{Message: msg})
	return Envelope{Type: MsgError, From: from, To: inReplyTo.From, Seq: inReplyTo.Seq, Body: raw}
}
