// Package comm is the MIRABEL Communication component (paper §3):
// message exchange between LEDMS nodes — "flex-offers, supply and demand
// measurements, forecasts, etc." Messages are typed JSON envelopes; two
// transports are provided, an in-process Bus for large simulations and a
// TCP transport (length-prefixed frames) for real deployments, both with
// request/response and fire-and-forget semantics.
package comm

import (
	"encoding/json"
	"fmt"

	"mirabel/internal/flexoffer"
)

// MsgType tags the payload carried by an envelope.
type MsgType string

// The message vocabulary of the EDMS.
const (
	// MsgFlexOfferSubmit: prosumer → BRP (or BRP → TSO): a new
	// flex-offer.
	MsgFlexOfferSubmit MsgType = "flex_offer_submit"
	// MsgFlexOfferDecision: BRP → prosumer: accept/reject with the
	// negotiated premium.
	MsgFlexOfferDecision MsgType = "flex_offer_decision"
	// MsgScheduleNotify: BRP → prosumer: the scheduled instantiation of
	// a previously accepted flex-offer.
	MsgScheduleNotify MsgType = "schedule_notify"
	// MsgMeasurementReport: prosumer → BRP: metered consumption or
	// production.
	MsgMeasurementReport MsgType = "measurement_report"
	// MsgForecastRequest / MsgForecastReply: explicit forecast queries
	// between nodes.
	MsgForecastRequest MsgType = "forecast_request"
	MsgForecastReply   MsgType = "forecast_reply"
	// MsgPing / MsgPong: liveness.
	MsgPing MsgType = "ping"
	MsgPong MsgType = "pong"
	// MsgError: a transported failure.
	MsgError MsgType = "error"
)

// Envelope is the wire unit: a typed payload with routing metadata.
type Envelope struct {
	Type MsgType         `json:"type"`
	From string          `json:"from"`
	To   string          `json:"to"`
	Seq  uint64          `json:"seq,omitempty"` // correlation id for replies
	Body json.RawMessage `json:"body,omitempty"`
}

// FlexOfferSubmit is the body of MsgFlexOfferSubmit.
type FlexOfferSubmit struct {
	Offer *flexoffer.FlexOffer `json:"offer"`
}

// FlexOfferDecision is the body of MsgFlexOfferDecision.
type FlexOfferDecision struct {
	OfferID flexoffer.ID `json:"offer_id"`
	Accept  bool         `json:"accept"`
	Reason  string       `json:"reason,omitempty"`
	// PremiumEUR is the negotiated flexibility premium per kWh.
	PremiumEUR float64 `json:"premium_eur,omitempty"`
}

// ScheduleNotify is the body of MsgScheduleNotify.
type ScheduleNotify struct {
	Schedules []*flexoffer.Schedule `json:"schedules"`
}

// MeasurementReport is the body of MsgMeasurementReport.
type MeasurementReport struct {
	Actor      string         `json:"actor"`
	EnergyType string         `json:"energy_type"`
	Slot       flexoffer.Time `json:"slot"`
	KWh        float64        `json:"kwh"`
}

// ForecastRequest is the body of MsgForecastRequest.
type ForecastRequest struct {
	EnergyType string `json:"energy_type"`
	Horizon    int    `json:"horizon"`
}

// ForecastReply is the body of MsgForecastReply.
type ForecastReply struct {
	EnergyType string         `json:"energy_type"`
	FirstSlot  flexoffer.Time `json:"first_slot"`
	Values     []float64      `json:"values"`
}

// ErrorBody is the body of MsgError.
type ErrorBody struct {
	Message string `json:"message"`
}

// NewEnvelope marshals body into a typed envelope.
func NewEnvelope(t MsgType, from, to string, body any) (Envelope, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return Envelope{}, fmt.Errorf("comm: marshal %s body: %w", t, err)
	}
	return Envelope{Type: t, From: from, To: to, Body: raw}, nil
}

// Decode unmarshals the envelope body into out and verifies the type tag.
func (e *Envelope) Decode(want MsgType, out any) error {
	if e.Type != want {
		return fmt.Errorf("comm: envelope is %s, want %s", e.Type, want)
	}
	if err := json.Unmarshal(e.Body, out); err != nil {
		return fmt.Errorf("comm: decode %s body: %w", e.Type, err)
	}
	return nil
}

// ErrorEnvelope builds an error reply for a received envelope.
func ErrorEnvelope(inReplyTo *Envelope, from string, msg string) Envelope {
	raw, _ := json.Marshal(ErrorBody{Message: msg})
	return Envelope{Type: MsgError, From: from, To: inReplyTo.From, Seq: inReplyTo.Seq, Body: raw}
}
